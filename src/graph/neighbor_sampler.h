// GraphSage-style fixed-fanout neighbor sampling (Algorithm 1, line 3 of
// the paper samples seed nodes and propagates over their neighborhoods).
// The default GNMR trainer uses exact full-graph propagation; this sampler
// backs the optional sampled mode and the scalability benchmarks.
#ifndef GNMR_GRAPH_NEIGHBOR_SAMPLER_H_
#define GNMR_GRAPH_NEIGHBOR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/graph/interaction_graph.h"
#include "src/util/rng.h"

namespace gnmr {
namespace graph {

/// A sampled L-hop computation subgraph rooted at seed users/items.
struct SampledSubgraph {
  /// Unified node ids (users: [0,I), items: I+j) in BFS discovery order;
  /// seeds first.
  std::vector<int64_t> nodes;
  /// For each hop l (size L): edge list (src_pos, dst_pos, behavior) where
  /// positions index into `nodes`. Messages flow src -> dst.
  struct Edge {
    int32_t src_pos;
    int32_t dst_pos;
    int32_t behavior;
  };
  std::vector<std::vector<Edge>> hop_edges;
};

/// Uniform fixed-fanout sampler over the multi-behavior graph.
class NeighborSampler {
 public:
  /// `graph` must outlive the sampler. `fanout` bounds sampled neighbors
  /// per (node, behavior) per hop; degree <= fanout keeps all neighbors.
  NeighborSampler(const MultiBehaviorGraph* graph, int64_t fanout);

  /// Samples an L-hop subgraph rooted at `seed_users` (user ids) and
  /// `seed_items` (item ids).
  SampledSubgraph Sample(const std::vector<int64_t>& seed_users,
                         const std::vector<int64_t>& seed_items, int64_t hops,
                         util::Rng* rng) const;

 private:
  const MultiBehaviorGraph* graph_;
  int64_t fanout_;
};

}  // namespace graph
}  // namespace gnmr

#endif  // GNMR_GRAPH_NEIGHBOR_SAMPLER_H_
