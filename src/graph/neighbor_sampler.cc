#include "src/graph/neighbor_sampler.h"

#include <unordered_map>

#include "src/util/check.h"

namespace gnmr {
namespace graph {

NeighborSampler::NeighborSampler(const MultiBehaviorGraph* graph,
                                 int64_t fanout)
    : graph_(graph), fanout_(fanout) {
  GNMR_CHECK(graph != nullptr);
  GNMR_CHECK_GT(fanout, 0);
}

SampledSubgraph NeighborSampler::Sample(
    const std::vector<int64_t>& seed_users,
    const std::vector<int64_t>& seed_items, int64_t hops,
    util::Rng* rng) const {
  SampledSubgraph sg;
  std::unordered_map<int64_t, int32_t> pos_of;  // unified id -> position
  auto intern = [&](int64_t unified) -> int32_t {
    auto it = pos_of.find(unified);
    if (it != pos_of.end()) return it->second;
    int32_t pos = static_cast<int32_t>(sg.nodes.size());
    sg.nodes.push_back(unified);
    pos_of.emplace(unified, pos);
    return pos;
  };
  int64_t offset = graph_->num_users();
  std::vector<int64_t> frontier;
  for (int64_t u : seed_users) {
    GNMR_CHECK(u >= 0 && u < graph_->num_users());
    intern(u);
    frontier.push_back(u);
  }
  for (int64_t v : seed_items) {
    GNMR_CHECK(v >= 0 && v < graph_->num_items());
    intern(offset + v);
    frontier.push_back(offset + v);
  }

  sg.hop_edges.resize(static_cast<size_t>(hops));
  for (int64_t hop = 0; hop < hops; ++hop) {
    std::vector<int64_t> next_frontier;
    for (int64_t node : frontier) {
      bool is_user = node < offset;
      for (int64_t k = 0; k < graph_->num_behaviors(); ++k) {
        std::vector<int64_t> nbrs =
            is_user ? graph_->ItemsOf(node, k)
                    : graph_->UsersOf(node - offset, k);
        if (static_cast<int64_t>(nbrs.size()) > fanout_) {
          std::vector<int64_t> pick = rng->SampleWithoutReplacement(
              static_cast<int64_t>(nbrs.size()), fanout_);
          std::vector<int64_t> sampled;
          sampled.reserve(static_cast<size_t>(fanout_));
          for (int64_t p : pick) sampled.push_back(nbrs[static_cast<size_t>(p)]);
          nbrs = std::move(sampled);
        }
        int32_t dst_pos = intern(node);
        for (int64_t nb : nbrs) {
          int64_t nb_unified = is_user ? offset + nb : nb;
          bool fresh = pos_of.find(nb_unified) == pos_of.end();
          int32_t src_pos = intern(nb_unified);
          sg.hop_edges[static_cast<size_t>(hop)].push_back(
              {src_pos, dst_pos, static_cast<int32_t>(k)});
          if (fresh) next_frontier.push_back(nb_unified);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  return sg;
}

}  // namespace graph
}  // namespace gnmr
