// The multi-behavior user-item interaction graph G = {U, V, E} of the GNMR
// paper (Section III). Users and items form a bipartite graph with one edge
// set per behavior type k; message passing operates on a unified node space
// [users; items] so a single SpMM per behavior propagates both directions.
#ifndef GNMR_GRAPH_INTERACTION_GRAPH_H_
#define GNMR_GRAPH_INTERACTION_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/tensor/sparse.h"

namespace gnmr {
namespace graph {

/// One observed user-item interaction event under a behavior type.
/// `timestamp` is a per-user logical clock (generation / log order); it is
/// consumed by sequence-based baselines (DIPN) and leave-latest-out splits.
struct Interaction {
  int64_t user = 0;
  int64_t item = 0;
  int64_t behavior = 0;
  int64_t timestamp = 0;
};

/// Neighbor normalisation applied to adjacency values before SpMM.
enum class NeighborNorm {
  /// Plain sum over neighbors (Eq. 2 of the paper, faithful default).
  kSum,
  /// Mean over neighbors (divide by out-degree).
  kMean,
  /// Symmetric 1/sqrt(deg_i * deg_j) (GCN-style, used by the NGCF baseline).
  kSqrtDegree,
};

/// A sparse operator together with its transpose, ready for ad::Spmm.
struct SparseOp {
  tensor::CsrMatrix forward;
  tensor::CsrMatrix backward;  // transpose of `forward`
};

/// Immutable multi-behavior bipartite interaction graph.
///
/// Node id convention for unified adjacencies: users occupy [0, num_users),
/// items occupy [num_users, num_users + num_items).
class MultiBehaviorGraph {
 public:
  /// Builds the graph from interaction events. Duplicate (user, item,
  /// behavior) events collapse into a single edge.
  MultiBehaviorGraph(int64_t num_users, int64_t num_items,
                     int64_t num_behaviors,
                     const std::vector<Interaction>& interactions);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t num_behaviors() const { return num_behaviors_; }
  int64_t num_nodes() const { return num_users_ + num_items_; }
  /// Distinct edges under behavior k.
  int64_t NumEdges(int64_t behavior) const;
  /// Distinct edges across all behaviors (union, multi-edges collapsed).
  int64_t NumEdgesTotal() const;

  /// User->item CSR of behavior k ([num_users, num_items], values 1).
  const tensor::CsrMatrix& UserItem(int64_t behavior) const;
  /// Item->user CSR of behavior k (transpose of UserItem).
  const tensor::CsrMatrix& ItemUser(int64_t behavior) const;

  /// Sorted distinct items user `u` interacted with under behavior k.
  std::vector<int64_t> ItemsOf(int64_t user, int64_t behavior) const;
  /// Sorted distinct users who interacted with item `v` under behavior k.
  std::vector<int64_t> UsersOf(int64_t item, int64_t behavior) const;
  /// True if the (user, item) edge exists under behavior k. O(log deg).
  bool HasEdge(int64_t user, int64_t item, int64_t behavior) const;
  /// True if the (user, item) edge exists under any behavior. O(K log deg).
  bool HasAnyEdge(int64_t user, int64_t item) const;

  /// Degree of user `u` under behavior k.
  int64_t UserDegree(int64_t user, int64_t behavior) const;
  /// Degree of item `v` under behavior k.
  int64_t ItemDegree(int64_t item, int64_t behavior) const;

  /// Unified [N,N] adjacency of behavior k over nodes [users; items] with
  /// the requested normalisation, plus its transpose. Cached after first
  /// use; the returned pointer lives as long as this graph.
  const SparseOp* UnifiedAdjacency(int64_t behavior, NeighborNorm norm) const;

  /// Union of all behaviors' edges as one unified adjacency (baselines that
  /// ignore behavior types, e.g. NGCF). Cached.
  const SparseOp* MergedAdjacency(NeighborNorm norm) const;

  /// Structural validation of all CSR blocks. Aborts on violation.
  void CheckInvariants() const;

 private:
  tensor::CsrMatrix BuildUnified(int64_t behavior, NeighborNorm norm) const;

  int64_t num_users_;
  int64_t num_items_;
  int64_t num_behaviors_;
  std::vector<tensor::CsrMatrix> user_item_;  // per behavior
  std::vector<tensor::CsrMatrix> item_user_;  // per behavior (transpose)
  tensor::CsrMatrix merged_user_item_;        // union over behaviors
  mutable std::map<std::pair<int64_t, int>, std::unique_ptr<SparseOp>>
      unified_cache_;
  mutable std::map<int, std::unique_ptr<SparseOp>> merged_cache_;
};

}  // namespace graph
}  // namespace gnmr

#endif  // GNMR_GRAPH_INTERACTION_GRAPH_H_
