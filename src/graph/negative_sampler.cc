#include "src/graph/negative_sampler.h"

#include <algorithm>

#include "src/util/check.h"

namespace gnmr {
namespace graph {

NegativeSampler::NegativeSampler(const MultiBehaviorGraph* graph,
                                 int64_t target_behavior)
    : graph_(graph), target_behavior_(target_behavior) {
  GNMR_CHECK(graph != nullptr);
  GNMR_CHECK(target_behavior >= 0 &&
             target_behavior < graph->num_behaviors());
}

int64_t NegativeSampler::SampleOne(int64_t user, util::Rng* rng) const {
  int64_t j = graph_->num_items();
  GNMR_CHECK_GT(NumEligible(user), 0)
      << "user " << user << " interacted with every item";
  // Rejection sampling; positive sets are sparse so this terminates fast.
  for (;;) {
    int64_t item = rng->UniformInt(0, j - 1);
    if (!graph_->HasEdge(user, item, target_behavior_)) return item;
  }
}

std::vector<int64_t> NegativeSampler::Sample(int64_t user, int64_t n,
                                             bool distinct,
                                             util::Rng* rng) const {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  if (!distinct) {
    for (int64_t i = 0; i < n; ++i) out.push_back(SampleOne(user, rng));
    return out;
  }
  GNMR_CHECK_GE(NumEligible(user), n)
      << "user " << user << " lacks " << n << " distinct negatives";
  std::vector<bool> taken(static_cast<size_t>(graph_->num_items()), false);
  while (static_cast<int64_t>(out.size()) < n) {
    int64_t item = SampleOne(user, rng);
    if (!taken[static_cast<size_t>(item)]) {
      taken[static_cast<size_t>(item)] = true;
      out.push_back(item);
    }
  }
  return out;
}

int64_t NegativeSampler::NumEligible(int64_t user) const {
  return graph_->num_items() - graph_->UserDegree(user, target_behavior_);
}

}  // namespace graph
}  // namespace gnmr
