// Negative sampling for pairwise training (Eq. 7) and for the evaluation
// protocol (1 positive + 99 sampled negatives, Section IV-A2).
#ifndef GNMR_GRAPH_NEGATIVE_SAMPLER_H_
#define GNMR_GRAPH_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/graph/interaction_graph.h"
#include "src/util/rng.h"

namespace gnmr {
namespace graph {

/// Samples items a user has NOT interacted with under the target behavior.
class NegativeSampler {
 public:
  /// `graph` must outlive the sampler. Negatives are drawn uniformly from
  /// items without a target-behavior edge to the user. Items the user
  /// touched under *auxiliary* behaviors remain eligible — they are exactly
  /// the hard negatives multi-behavior models must rank below true
  /// positives.
  NegativeSampler(const MultiBehaviorGraph* graph, int64_t target_behavior);

  /// One uniform negative item for `user`.
  int64_t SampleOne(int64_t user, util::Rng* rng) const;

  /// `n` negatives for `user`. With `distinct` they are pairwise distinct
  /// (requires enough non-interacted items).
  std::vector<int64_t> Sample(int64_t user, int64_t n, bool distinct,
                              util::Rng* rng) const;

  /// Number of items eligible as negatives for `user`.
  int64_t NumEligible(int64_t user) const;

 private:
  const MultiBehaviorGraph* graph_;
  int64_t target_behavior_;
};

}  // namespace graph
}  // namespace gnmr

#endif  // GNMR_GRAPH_NEGATIVE_SAMPLER_H_
