#include "src/graph/interaction_graph.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace gnmr {
namespace graph {

using tensor::Coo;
using tensor::CsrMatrix;

MultiBehaviorGraph::MultiBehaviorGraph(
    int64_t num_users, int64_t num_items, int64_t num_behaviors,
    const std::vector<Interaction>& interactions)
    : num_users_(num_users),
      num_items_(num_items),
      num_behaviors_(num_behaviors) {
  GNMR_CHECK_GT(num_users, 0);
  GNMR_CHECK_GT(num_items, 0);
  GNMR_CHECK_GT(num_behaviors, 0);

  std::vector<std::vector<Coo>> per_behavior(
      static_cast<size_t>(num_behaviors));
  std::vector<Coo> merged;
  merged.reserve(interactions.size());
  for (const Interaction& e : interactions) {
    GNMR_CHECK(e.user >= 0 && e.user < num_users) << "user " << e.user;
    GNMR_CHECK(e.item >= 0 && e.item < num_items) << "item " << e.item;
    GNMR_CHECK(e.behavior >= 0 && e.behavior < num_behaviors)
        << "behavior " << e.behavior;
    per_behavior[static_cast<size_t>(e.behavior)].push_back(
        {e.user, e.item, 1.0f});
    merged.push_back({e.user, e.item, 1.0f});
  }

  user_item_.reserve(static_cast<size_t>(num_behaviors));
  item_user_.reserve(static_cast<size_t>(num_behaviors));
  for (int64_t k = 0; k < num_behaviors; ++k) {
    CsrMatrix ui =
        CsrMatrix::FromCoo(num_users, num_items,
                           per_behavior[static_cast<size_t>(k)]);
    // Duplicate events collapsed to value 1 (binary adjacency).
    CsrMatrix binary = ui;
    {
      std::vector<Coo> entries;
      entries.reserve(static_cast<size_t>(ui.nnz()));
      for (int64_t r = 0; r < ui.rows(); ++r) {
        for (int64_t p = ui.row_ptr()[static_cast<size_t>(r)];
             p < ui.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
          entries.push_back({r, ui.col_idx()[static_cast<size_t>(p)], 1.0f});
        }
      }
      binary = CsrMatrix::FromCoo(num_users, num_items, entries);
    }
    item_user_.push_back(binary.Transposed());
    user_item_.push_back(std::move(binary));
  }
  {
    CsrMatrix m = CsrMatrix::FromCoo(num_users, num_items, merged);
    std::vector<Coo> entries;
    entries.reserve(static_cast<size_t>(m.nnz()));
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t p = m.row_ptr()[static_cast<size_t>(r)];
           p < m.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        entries.push_back({r, m.col_idx()[static_cast<size_t>(p)], 1.0f});
      }
    }
    merged_user_item_ = CsrMatrix::FromCoo(num_users, num_items, entries);
  }
}

int64_t MultiBehaviorGraph::NumEdges(int64_t behavior) const {
  return UserItem(behavior).nnz();
}

int64_t MultiBehaviorGraph::NumEdgesTotal() const {
  return merged_user_item_.nnz();
}

const CsrMatrix& MultiBehaviorGraph::UserItem(int64_t behavior) const {
  GNMR_CHECK(behavior >= 0 && behavior < num_behaviors_);
  return user_item_[static_cast<size_t>(behavior)];
}

const CsrMatrix& MultiBehaviorGraph::ItemUser(int64_t behavior) const {
  GNMR_CHECK(behavior >= 0 && behavior < num_behaviors_);
  return item_user_[static_cast<size_t>(behavior)];
}

std::vector<int64_t> MultiBehaviorGraph::ItemsOf(int64_t user,
                                                 int64_t behavior) const {
  const CsrMatrix& m = UserItem(behavior);
  GNMR_CHECK(user >= 0 && user < num_users_);
  std::vector<int64_t> out;
  for (int64_t p = m.row_ptr()[static_cast<size_t>(user)];
       p < m.row_ptr()[static_cast<size_t>(user) + 1]; ++p) {
    out.push_back(m.col_idx()[static_cast<size_t>(p)]);
  }
  return out;
}

std::vector<int64_t> MultiBehaviorGraph::UsersOf(int64_t item,
                                                 int64_t behavior) const {
  const CsrMatrix& m = ItemUser(behavior);
  GNMR_CHECK(item >= 0 && item < num_items_);
  std::vector<int64_t> out;
  for (int64_t p = m.row_ptr()[static_cast<size_t>(item)];
       p < m.row_ptr()[static_cast<size_t>(item) + 1]; ++p) {
    out.push_back(m.col_idx()[static_cast<size_t>(p)]);
  }
  return out;
}

bool MultiBehaviorGraph::HasEdge(int64_t user, int64_t item,
                                 int64_t behavior) const {
  const CsrMatrix& m = UserItem(behavior);
  GNMR_CHECK(user >= 0 && user < num_users_);
  GNMR_CHECK(item >= 0 && item < num_items_);
  auto begin = m.col_idx().begin() + m.row_ptr()[static_cast<size_t>(user)];
  auto end = m.col_idx().begin() + m.row_ptr()[static_cast<size_t>(user) + 1];
  return std::binary_search(begin, end, item);
}

bool MultiBehaviorGraph::HasAnyEdge(int64_t user, int64_t item) const {
  const CsrMatrix& m = merged_user_item_;
  auto begin = m.col_idx().begin() + m.row_ptr()[static_cast<size_t>(user)];
  auto end = m.col_idx().begin() + m.row_ptr()[static_cast<size_t>(user) + 1];
  return std::binary_search(begin, end, item);
}

int64_t MultiBehaviorGraph::UserDegree(int64_t user, int64_t behavior) const {
  return UserItem(behavior).RowNnz(user);
}

int64_t MultiBehaviorGraph::ItemDegree(int64_t item, int64_t behavior) const {
  return ItemUser(behavior).RowNnz(item);
}

tensor::CsrMatrix MultiBehaviorGraph::BuildUnified(int64_t behavior,
                                                   NeighborNorm norm) const {
  const CsrMatrix* ui;
  const CsrMatrix* iu;
  if (behavior >= 0) {
    ui = &UserItem(behavior);
    iu = &ItemUser(behavior);
  } else {  // merged graph sentinel
    ui = &merged_user_item_;
    // The merged transpose is computed on the fly (cached by the caller).
    static thread_local CsrMatrix merged_t;
    merged_t = merged_user_item_.Transposed();
    iu = &merged_t;
  }
  std::vector<Coo> entries;
  entries.reserve(static_cast<size_t>(2 * ui->nnz()));
  auto degree_of = [&](bool user_side, int64_t idx) -> int64_t {
    return user_side ? ui->RowNnz(idx) : iu->RowNnz(idx);
  };
  auto edge_value = [&](int64_t row_deg, int64_t col_deg) -> float {
    switch (norm) {
      case NeighborNorm::kSum:
        return 1.0f;
      case NeighborNorm::kMean:
        return row_deg > 0 ? 1.0f / static_cast<float>(row_deg) : 0.0f;
      case NeighborNorm::kSqrtDegree:
        return (row_deg > 0 && col_deg > 0)
                   ? 1.0f / std::sqrt(static_cast<float>(row_deg) *
                                      static_cast<float>(col_deg))
                   : 0.0f;
    }
    return 1.0f;
  };
  // User rows: neighbors are items (offset by num_users_).
  for (int64_t u = 0; u < num_users_; ++u) {
    int64_t du = degree_of(true, u);
    for (int64_t p = ui->row_ptr()[static_cast<size_t>(u)];
         p < ui->row_ptr()[static_cast<size_t>(u) + 1]; ++p) {
      int64_t v = ui->col_idx()[static_cast<size_t>(p)];
      entries.push_back(
          {u, num_users_ + v, edge_value(du, degree_of(false, v))});
    }
  }
  // Item rows: neighbors are users.
  for (int64_t v = 0; v < num_items_; ++v) {
    int64_t dv = degree_of(false, v);
    for (int64_t p = iu->row_ptr()[static_cast<size_t>(v)];
         p < iu->row_ptr()[static_cast<size_t>(v) + 1]; ++p) {
      int64_t u = iu->col_idx()[static_cast<size_t>(p)];
      entries.push_back(
          {num_users_ + v, u, edge_value(dv, degree_of(true, u))});
    }
  }
  return CsrMatrix::FromCoo(num_nodes(), num_nodes(), entries);
}

const SparseOp* MultiBehaviorGraph::UnifiedAdjacency(int64_t behavior,
                                                     NeighborNorm norm) const {
  GNMR_CHECK(behavior >= 0 && behavior < num_behaviors_);
  auto key = std::make_pair(behavior, static_cast<int>(norm));
  auto it = unified_cache_.find(key);
  if (it == unified_cache_.end()) {
    auto op = std::make_unique<SparseOp>();
    op->forward = BuildUnified(behavior, norm);
    op->backward = op->forward.Transposed();
    it = unified_cache_.emplace(key, std::move(op)).first;
  }
  return it->second.get();
}

const SparseOp* MultiBehaviorGraph::MergedAdjacency(NeighborNorm norm) const {
  int key = static_cast<int>(norm);
  auto it = merged_cache_.find(key);
  if (it == merged_cache_.end()) {
    auto op = std::make_unique<SparseOp>();
    op->forward = BuildUnified(-1, norm);
    op->backward = op->forward.Transposed();
    it = merged_cache_.emplace(key, std::move(op)).first;
  }
  return it->second.get();
}

void MultiBehaviorGraph::CheckInvariants() const {
  for (int64_t k = 0; k < num_behaviors_; ++k) {
    user_item_[static_cast<size_t>(k)].CheckInvariants();
    item_user_[static_cast<size_t>(k)].CheckInvariants();
    GNMR_CHECK_EQ(user_item_[static_cast<size_t>(k)].nnz(),
                  item_user_[static_cast<size_t>(k)].nnz());
  }
  merged_user_item_.CheckInvariants();
}

}  // namespace graph
}  // namespace gnmr
