#include "src/eval/evaluator.h"

#include <sstream>

#include "src/eval/metrics.h"
#include "src/util/check.h"
#include "src/util/string_util.h"

namespace gnmr {
namespace eval {

std::string RankingMetrics::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [n, v] : hr) {
    if (!first) os << " ";
    first = false;
    os << util::StrFormat("HR@%lld=%.4f", static_cast<long long>(n), v);
    auto it = ndcg.find(n);
    if (it != ndcg.end()) {
      os << util::StrFormat(" NDCG@%lld=%.4f", static_cast<long long>(n),
                            it->second);
    }
  }
  return os.str();
}

RankingMetrics EvaluateRanking(Scorer* scorer,
                               const std::vector<data::EvalCandidates>& tests,
                               const std::vector<int64_t>& cutoffs) {
  GNMR_CHECK(scorer != nullptr);
  GNMR_CHECK(!cutoffs.empty());
  RankingMetrics out;
  for (int64_t n : cutoffs) {
    out.hr[n] = 0.0;
    out.ndcg[n] = 0.0;
  }
  if (tests.empty()) return out;

  std::vector<int64_t> items;
  std::vector<float> scores;
  for (const data::EvalCandidates& c : tests) {
    items.clear();
    items.push_back(c.positive_item);
    items.insert(items.end(), c.negatives.begin(), c.negatives.end());
    scores.assign(items.size(), 0.0f);
    scorer->ScoreItems(c.user, items, scores.data());
    std::vector<float> neg_scores(scores.begin() + 1, scores.end());
    int64_t rank = RankOfPositive(scores[0], neg_scores);
    for (int64_t n : cutoffs) {
      out.hr[n] += HitRatioAtN(rank, n);
      out.ndcg[n] += NdcgAtN(rank, n);
    }
  }
  out.num_users = static_cast<int64_t>(tests.size());
  for (int64_t n : cutoffs) {
    out.hr[n] /= static_cast<double>(out.num_users);
    out.ndcg[n] /= static_cast<double>(out.num_users);
  }
  return out;
}

}  // namespace eval
}  // namespace gnmr
