#include "src/eval/evaluator.h"

#include <sstream>

#include "src/eval/metrics.h"
#include "src/util/check.h"
#include "src/util/string_util.h"

namespace gnmr {
namespace eval {

std::string RankingMetrics::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [n, v] : hr) {
    if (!first) os << " ";
    first = false;
    os << util::StrFormat("HR@%lld=%.4f", static_cast<long long>(n), v);
    auto it = ndcg.find(n);
    if (it != ndcg.end()) {
      os << util::StrFormat(" NDCG@%lld=%.4f", static_cast<long long>(n),
                            it->second);
    }
  }
  return os.str();
}

RankingMetrics EvaluateRanking(Scorer* scorer,
                               const std::vector<data::EvalCandidates>& tests,
                               const std::vector<int64_t>& cutoffs) {
  GNMR_CHECK(scorer != nullptr);
  GNMR_CHECK(!cutoffs.empty());
  RankingMetrics out;
  for (int64_t n : cutoffs) {
    out.hr[n] = 0.0;
    out.ndcg[n] = 0.0;
  }
  if (tests.empty()) return out;

  // Users are independent, so the scoring loop parallelizes; every
  // registered Scorer only reads trained state from ScoreItems. Each test
  // writes its per-cutoff contributions to its own slot and the reduction
  // below runs serially in index order, so the accumulated metrics are
  // bit-identical to the serial evaluator at any thread count.
  const int64_t num_tests = static_cast<int64_t>(tests.size());
  const int64_t num_cutoffs = static_cast<int64_t>(cutoffs.size());
  std::vector<double> hr_part(static_cast<size_t>(num_tests * num_cutoffs));
  std::vector<double> ndcg_part(static_cast<size_t>(num_tests * num_cutoffs));
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 16) if (num_tests > 1)
#endif
  for (int64_t t = 0; t < num_tests; ++t) {
    const data::EvalCandidates& c = tests[static_cast<size_t>(t)];
    std::vector<int64_t> items;
    items.reserve(c.negatives.size() + 1);
    items.push_back(c.positive_item);
    items.insert(items.end(), c.negatives.begin(), c.negatives.end());
    std::vector<float> scores(items.size(), 0.0f);
    scorer->ScoreItems(c.user, items, scores.data());
    std::vector<float> neg_scores(scores.begin() + 1, scores.end());
    int64_t rank = RankOfPositive(scores[0], neg_scores);
    for (int64_t ci = 0; ci < num_cutoffs; ++ci) {
      size_t slot = static_cast<size_t>(t * num_cutoffs + ci);
      hr_part[slot] = HitRatioAtN(rank, cutoffs[static_cast<size_t>(ci)]);
      ndcg_part[slot] = NdcgAtN(rank, cutoffs[static_cast<size_t>(ci)]);
    }
  }
  for (int64_t t = 0; t < num_tests; ++t) {
    for (int64_t ci = 0; ci < num_cutoffs; ++ci) {
      size_t slot = static_cast<size_t>(t * num_cutoffs + ci);
      out.hr[cutoffs[static_cast<size_t>(ci)]] += hr_part[slot];
      out.ndcg[cutoffs[static_cast<size_t>(ci)]] += ndcg_part[slot];
    }
  }
  out.num_users = num_tests;
  for (int64_t n : cutoffs) {
    out.hr[n] /= static_cast<double>(out.num_users);
    out.ndcg[n] /= static_cast<double>(out.num_users);
  }
  return out;
}

}  // namespace eval
}  // namespace gnmr
