// Ranking metrics: Hit Ratio and NDCG under the single-positive protocol
// (Section IV-A2 of the paper).
#ifndef GNMR_EVAL_METRICS_H_
#define GNMR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace gnmr {
namespace eval {

/// HR@N for a positive ranked at `rank` (0-based) among the candidates:
/// 1 if rank < N else 0.
double HitRatioAtN(int64_t rank, int64_t n);

/// NDCG@N for a single positive at `rank` (0-based): 1/log2(rank+2) if
/// rank < N else 0. With one relevant item the ideal DCG is 1.
double NdcgAtN(int64_t rank, int64_t n);

/// Rank of the positive among candidate scores: the number of negatives
/// scoring strictly higher, plus half the ties (deterministic mid-rank tie
/// handling). `positive_score` vs `negative_scores`.
int64_t RankOfPositive(float positive_score,
                       const std::vector<float>& negative_scores);

}  // namespace eval
}  // namespace gnmr

#endif  // GNMR_EVAL_METRICS_H_
