// Recall harness for approximate retrieval strategies: how much of the
// exact top-k does an index-based retriever recover? This is the number
// that turns "the IVF index seems fine" into a measured quality/cost
// trade-off — tests pin it, and bench/serve_throughput logs it next to
// the speedup it buys.
#ifndef GNMR_EVAL_RETRIEVAL_RECALL_H_
#define GNMR_EVAL_RETRIEVAL_RECALL_H_

#include <cstdint>
#include <vector>

#include "src/serve/retriever.h"

namespace gnmr {
namespace eval {

/// Mean over `users` of |top-k(exact) ∩ top-k(approx)| / |top-k(exact)|,
/// comparing item ids only (both retrievers rank by the same score, so id
/// overlap is the whole story). Users whose exact list is empty (fully
/// seen-filtered catalogue slice) are skipped; returns 1.0 when every
/// evaluated list matches or no user was evaluable. Both retrievers must
/// serve the same catalogue. Deterministic; cost is one RetrieveBatch per
/// retriever.
double RetrievalRecallAtK(const serve::Retriever& exact,
                          const serve::Retriever& approx,
                          const std::vector<int64_t>& users, int64_t k);

}  // namespace eval
}  // namespace gnmr

#endif  // GNMR_EVAL_RETRIEVAL_RECALL_H_
