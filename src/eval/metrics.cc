#include "src/eval/metrics.h"

#include <cmath>

#include "src/util/check.h"

namespace gnmr {
namespace eval {

double HitRatioAtN(int64_t rank, int64_t n) {
  GNMR_CHECK_GE(rank, 0);
  GNMR_CHECK_GT(n, 0);
  return rank < n ? 1.0 : 0.0;
}

double NdcgAtN(int64_t rank, int64_t n) {
  GNMR_CHECK_GE(rank, 0);
  GNMR_CHECK_GT(n, 0);
  if (rank >= n) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

int64_t RankOfPositive(float positive_score,
                       const std::vector<float>& negative_scores) {
  int64_t greater = 0;
  int64_t ties = 0;
  for (float s : negative_scores) {
    if (s > positive_score) {
      ++greater;
    } else if (s == positive_score) {
      ++ties;
    }
  }
  return greater + ties / 2;
}

}  // namespace eval
}  // namespace gnmr
