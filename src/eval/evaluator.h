// Leave-one-out ranking evaluator: score 1 positive + 99 negatives per
// user, report HR@N and NDCG@N averaged over users.
#ifndef GNMR_EVAL_EVALUATOR_H_
#define GNMR_EVAL_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/data/split.h"

namespace gnmr {
namespace eval {

/// Interface every recommender implements for evaluation: score a list of
/// candidate items for one user (higher = more likely interaction under
/// the target behavior).
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Writes items.size() scores into `out`. Implementations must tolerate
  /// concurrent calls for different users (read-only over trained state):
  /// EvaluateRanking fans the per-user loop out across threads under
  /// OpenMP builds.
  virtual void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                          float* out) = 0;
};

/// HR@N / NDCG@N per cutoff, averaged over evaluated users.
struct RankingMetrics {
  std::map<int64_t, double> hr;
  std::map<int64_t, double> ndcg;
  int64_t num_users = 0;

  /// e.g. "HR@10=0.857 NDCG@10=0.575" for all cutoffs.
  std::string ToString() const;
};

/// Scores every candidate set with `scorer` and averages metrics at every
/// cutoff in `cutoffs`. The per-user loop runs OpenMP-parallel when
/// enabled; accumulation reduces per-user partials in index order, so the
/// result is bit-identical to the serial evaluator at any thread count.
RankingMetrics EvaluateRanking(Scorer* scorer,
                               const std::vector<data::EvalCandidates>& tests,
                               const std::vector<int64_t>& cutoffs);

}  // namespace eval
}  // namespace gnmr

#endif  // GNMR_EVAL_EVALUATOR_H_
