#include "src/eval/retrieval_recall.h"

#include <algorithm>

#include "src/util/check.h"

namespace gnmr {
namespace eval {

double RetrievalRecallAtK(const serve::Retriever& exact,
                          const serve::Retriever& approx,
                          const std::vector<int64_t>& users, int64_t k) {
  GNMR_CHECK_GE(k, 1);
  GNMR_CHECK_EQ(exact.model().num_items, approx.model().num_items)
      << "retrievers serve different catalogues";
  if (users.empty()) return 1.0;
  const std::vector<std::vector<serve::RecEntry>> truth =
      exact.RetrieveBatch(users, k);
  const std::vector<std::vector<serve::RecEntry>> got =
      approx.RetrieveBatch(users, k);
  double recall_sum = 0.0;
  int64_t evaluated = 0;
  for (size_t u = 0; u < users.size(); ++u) {
    if (truth[u].empty()) continue;  // nothing retrievable for this user
    // Both lists are small (<= k) and sorted by (score desc, item asc),
    // not by id — collect ids and intersect sorted.
    std::vector<int64_t> a, b;
    a.reserve(truth[u].size());
    b.reserve(got[u].size());
    for (const serve::RecEntry& e : truth[u]) a.push_back(e.item);
    for (const serve::RecEntry& e : got[u]) b.push_back(e.item);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int64_t> common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    recall_sum += static_cast<double>(common.size()) /
                  static_cast<double>(a.size());
    ++evaluated;
  }
  return evaluated == 0 ? 1.0 : recall_sum / static_cast<double>(evaluated);
}

}  // namespace eval
}  // namespace gnmr
