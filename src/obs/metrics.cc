#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace gnmr {
namespace obs {

namespace {

int LeadingBit(uint64_t v) {
  // v >= 1; position of the highest set bit (0-based).
  return 63 - __builtin_clzll(v);
}

void AppendJsonNumber(std::ostringstream* out, double v) {
  // Metrics are ratios and counts; 6 significant digits is plenty and
  // keeps the export diff-stable.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    *out << static_cast<int64_t>(v);
  } else {
    std::ostringstream tmp;
    tmp.precision(6);
    tmp << v;
    *out << tmp.str();
  }
}

}  // namespace

int Histogram::BucketIndex(uint64_t value) {
  if (value < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<int>(value);
  }
  const int h = LeadingBit(value);  // h >= kSubBucketBits
  const int octave = h - kSubBucketBits + 1;
  const int sub = static_cast<int>((value >> (h - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return octave * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int index) {
  GNMR_CHECK(index >= 0 && index < kNumBuckets);
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const int shift = octave - 1;
  return static_cast<uint64_t>(kSubBuckets + sub) << shift;
}

uint64_t Histogram::BucketUpperBound(int index) {
  GNMR_CHECK(index >= 0 && index < kNumBuckets);
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const int shift = octave - 1;
  const uint64_t lower = static_cast<uint64_t>(kSubBuckets + sub) << shift;
  // The bucket spans [lower, lower + 2^shift); its largest member is one
  // below the next bucket's lower bound. The final bucket's upper bound
  // saturates at UINT64_MAX (lower + width overflows by exactly the 1 we
  // subtract).
  return lower + ((static_cast<uint64_t>(1) << shift) - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  // Relaxed tearing across buckets is fine: each bucket count is itself
  // consistent, and the snapshot is diagnostics, not a ledger. count is
  // recomputed from the buckets so count == sum(buckets) always holds
  // within one snapshot even while recorders race.
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.buckets[static_cast<size_t>(b)] =
        buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[static_cast<size_t>(b)];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-quantile in the sorted sample, 1-based: the smallest
  // rank r with r >= q * count (at least 1 so q=0 reports the min bucket).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count) - 1e-9)));
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      // Report the bucket's upper bound so the estimate errs high by at
      // most one bucket width; clamp to the exact max so p99 can never
      // exceed the largest value actually recorded.
      return std::min(Histogram::BucketUpperBound(static_cast<int>(b)), max);
    }
  }
  return max;
}

double HistogramSnapshot::QuantileInterpolated(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = std::max(1.0, q * static_cast<double>(count));
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cum + buckets[b];
    if (static_cast<double>(next) >= rank) {
      const double lower =
          static_cast<double>(Histogram::BucketLowerBound(static_cast<int>(b)));
      const double upper = static_cast<double>(
                               Histogram::BucketUpperBound(static_cast<int>(b))) +
                           1.0;  // half-open width so frac=1 reaches the top
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(buckets[b]);
      return std::min(lower + frac * (upper - lower),
                      static_cast<double>(max));
    }
    cum = next;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.buckets.empty()) return;
  if (buckets.empty()) {
    *this = other;
    return;
  }
  GNMR_CHECK_EQ(buckets.size(), other.buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::string HistogramSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"count\":" << count << ",\"sum\":" << sum << ",\"max\":" << max
      << ",\"mean\":";
  AppendJsonNumber(&out, Mean());
  out << ",\"p50\":" << P50() << ",\"p95\":" << P95() << ",\"p99\":" << P99()
      << "}";
  return out.str();
}

Counter& MetricsRegistry::CounterOf(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GaugeOf(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::HistogramOf(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << "\"" << name << "\":" << counter->Value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ",") << "\"" << name << "\":" << gauge->Value();
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << "\"" << name
        << "\":" << histogram->Snapshot().ToJson();
    first = false;
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace gnmr
