// Lightweight tracing spans for the serving and training hot paths —
// the PyTorch profiler record-function idiom: an RAII span opens at a
// named scope, closes on destruction, and the closed interval lands in a
// bounded event sink that exports chrome://tracing JSON.
//
// Cost model:
//   - Tracing disabled (the default): constructing a TraceSpan is one
//     relaxed atomic load and a predictable branch — cheap enough to
//     leave spans compiled into every hot path. Defining
//     GNMR_DISABLE_TRACING compiles spans out entirely.
//   - Tracing enabled: two steady_clock reads plus one write into the
//     recording thread's own bounded ring buffer (guarded by that
//     thread's otherwise-uncontended mutex, so a concurrent export can
//     read without tearing — the layout ThreadSanitizer holds us to).
//
// Every thread records into its own ring (fixed capacity, oldest events
// overwritten; drops are counted), so recording threads never contend
// with each other. Span nesting is tracked per thread with a depth
// counter; the exporter emits complete ("ph":"X") events whose ts/dur
// containment reproduces the nesting in the chrome://tracing flame view.
#ifndef GNMR_OBS_TRACE_H_
#define GNMR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gnmr {
namespace obs {

/// One closed span. `name` must be a string with static storage duration
/// (span sites pass literals); events are POD so the ring is copy-cheap.
struct TraceEvent {
  const char* name = nullptr;
  /// Start offset from the process trace epoch (first trace-clock use).
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Stable per-thread id in registration order (1-based).
  uint32_t tid = 0;
  /// Nesting depth at open (0 = top-level span on its thread).
  uint32_t depth = 0;
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True while spans record. The inline relaxed load is the entire cost of
/// a span site when tracing is off.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off. Spans already open keep recording their close;
/// spans opened while disabled stay no-ops even if tracing flips on
/// before they close.
void SetTraceEnabled(bool enabled);

/// Nanoseconds since the process trace epoch (monotonic).
uint64_t TraceNowNs();

/// Per-thread ring capacity for threads that START recording after the
/// call (existing rings keep their size). Default 16384 events/thread.
void SetTraceBufferCapacity(int64_t events_per_thread);

/// All retained events across threads, oldest first by start time.
std::vector<TraceEvent> TraceSnapshot();

/// Events overwritten because a thread's ring wrapped.
uint64_t TraceDroppedEvents();

/// Empties every thread's ring (drop counters reset too).
void ClearTrace();

/// chrome://tracing / Perfetto JSON: {"traceEvents":[{"ph":"X",...}]}.
/// Load via chrome://tracing "Load" or ui.perfetto.dev.
std::string TraceToChromeJson();

/// RAII span. Opens on construction when tracing is enabled (and the
/// optional `sampled` gate passes), records on destruction.
class TraceSpan {
 public:
#ifdef GNMR_DISABLE_TRACING
  explicit TraceSpan(const char*) {}
  TraceSpan(const char*, bool) {}
#else
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) Begin(name);
  }
  /// `sampled` lets per-request samplers (RecService) keep ultra-hot
  /// paths under the overhead budget: false skips the span entirely.
  TraceSpan(const char* name, bool sampled) {
    if (sampled && TraceEnabled()) Begin(name);
  }
  ~TraceSpan() {
    if (name_ != nullptr) End();
  }
#endif
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

#define GNMR_OBS_CONCAT_INNER(a, b) a##b
#define GNMR_OBS_CONCAT(a, b) GNMR_OBS_CONCAT_INNER(a, b)
/// Spans the enclosing scope: GNMR_TRACE_SPAN("serve.retrieve");
#define GNMR_TRACE_SPAN(name) \
  ::gnmr::obs::TraceSpan GNMR_OBS_CONCAT(gnmr_trace_span_, __LINE__)(name)

}  // namespace obs
}  // namespace gnmr

#endif  // GNMR_OBS_TRACE_H_
