#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>

namespace gnmr {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

constexpr int64_t kDefaultCapacity = 16384;

/// One thread's bounded event ring. The owning thread appends; an
/// exporter (or ClearTrace) reads under the same mutex. The mutex is
/// uncontended in steady state — only the owner touches it — so a record
/// costs an uncontended lock/unlock, and concurrent export is race-free
/// by construction rather than by luck.
struct ThreadLog {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  /// Monotonic append count; ring slot = head % capacity. head > capacity
  /// means the ring wrapped and (head - capacity) events were dropped.
  uint64_t head = 0;
  uint32_t tid = 0;
};

struct Sink {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  int64_t capacity = kDefaultCapacity;
};

Sink& GlobalSink() {
  static Sink* sink = new Sink();
  return *sink;
}

/// Registered lazily on a thread's first span; the shared_ptr in the sink
/// keeps the log exportable after the thread exits.
ThreadLog& LocalLog() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto fresh = std::make_shared<ThreadLog>();
    Sink& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    fresh->tid = static_cast<uint32_t>(sink.logs.size() + 1);
    fresh->ring.resize(static_cast<size_t>(sink.capacity));
    sink.logs.push_back(fresh);
    return fresh;
  }();
  return *log;
}

thread_local uint32_t t_depth = 0;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

void SetTraceEnabled(bool enabled) {
  TraceEpoch();  // pin the epoch no later than the first enable
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceBufferCapacity(int64_t events_per_thread) {
  Sink& sink = GlobalSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.capacity = std::max<int64_t>(1, events_per_thread);
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  start_ns_ = TraceNowNs();
  ++t_depth;
}

void TraceSpan::End() {
  const uint64_t end_ns = TraceNowNs();
  --t_depth;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  event.depth = t_depth;
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  event.tid = log.tid;
  log.ring[static_cast<size_t>(log.head % log.ring.size())] = event;
  ++log.head;
}

std::vector<TraceEvent> TraceSnapshot() {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    Sink& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    logs = sink.logs;
  }
  std::vector<TraceEvent> out;
  for (const std::shared_ptr<ThreadLog>& log : logs) {
    std::lock_guard<std::mutex> lock(log->mu);
    const uint64_t cap = log->ring.size();
    const uint64_t kept = std::min(log->head, cap);
    // Oldest retained first: when wrapped, that is slot head % cap.
    const uint64_t first = log->head > cap ? log->head % cap : 0;
    for (uint64_t i = 0; i < kept; ++i) {
      out.push_back(log->ring[static_cast<size_t>((first + i) % cap)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

uint64_t TraceDroppedEvents() {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    Sink& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    logs = sink.logs;
  }
  uint64_t dropped = 0;
  for (const std::shared_ptr<ThreadLog>& log : logs) {
    std::lock_guard<std::mutex> lock(log->mu);
    const uint64_t cap = log->ring.size();
    if (log->head > cap) dropped += log->head - cap;
  }
  return dropped;
}

void ClearTrace() {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    Sink& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    logs = sink.logs;
  }
  for (const std::shared_ptr<ThreadLog>& log : logs) {
    std::lock_guard<std::mutex> lock(log->mu);
    log->head = 0;
  }
}

std::string TraceToChromeJson() {
  const std::vector<TraceEvent> events = TraceSnapshot();
  std::ostringstream out;
  // Timestamps grow to ~1e9 us over a long run; 15 significant digits
  // keep the sub-microsecond fraction from rounding away.
  out.precision(15);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    // Complete events; ts/dur are microseconds (chrome://tracing's unit),
    // kept fractional so sub-microsecond spans stay visible.
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"gnmr\",\"ph\":\"X\""
        << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
        << static_cast<double>(e.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3
        << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace gnmr
