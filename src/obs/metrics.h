// Serving-path metrics: named counters, gauges and log-linear latency
// histograms behind a MetricsRegistry.
//
// The record path is lock-free: Counter::Add and Histogram::Record are a
// handful of relaxed atomic adds (plus a CAS loop for the histogram max),
// so they can sit on the per-request serving hot path. Registration
// (name -> metric lookup) takes a mutex and is meant for construction
// time: callers resolve their metrics once and keep the returned pointer,
// which stays valid for the registry's lifetime.
//
// Histogram buckets are log-linear (HdrHistogram style): kSubBuckets
// sub-buckets per power-of-two octave, so any recorded value lands in a
// bucket whose width is at most value / kSubBuckets. Quantiles read from
// the bucket boundaries are therefore within a 1/kSubBuckets relative
// error (12.5% at the default 8 sub-buckets) plus one integer unit — a
// bound tests/obs_test.cc pins against exact sorted samples. Values are
// dimensionless uint64; the serving layer records nanoseconds.
#ifndef GNMR_OBS_METRICS_H_
#define GNMR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gnmr {
namespace obs {

/// Monotonic event counter. Add/Value are lock-free.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, worker count, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram, with quantile accessors. Snapshots
/// with the same bucket layout (all of them — the layout is static) can be
/// merged, which is how per-phase histograms roll up into totals.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Exact largest recorded value (not bucket-rounded).
  uint64_t max = 0;
  /// Per-bucket counts, Histogram::kNumBuckets wide (empty when count==0
  /// snapshots are default-constructed).
  std::vector<uint64_t> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Smallest value v with CDF(v) >= q, reported as the upper bound of its
  /// bucket (clamped to `max`), so the estimate errs high by at most one
  /// bucket width. q in [0, 1]; returns 0 on an empty snapshot.
  uint64_t Quantile(double q) const;
  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }

  /// Like Quantile but linearly interpolated inside the winning bucket,
  /// assuming values spread uniformly across it. Same one-bucket error
  /// bound, but sub-bucket resolution — two nearby distributions compare
  /// smoothly instead of snapping to bucket boundaries (which would make
  /// any difference either 0 or a full 12.5% step). Used by the
  /// tracing-overhead comparison in the load harness.
  double QuantileInterpolated(double q) const;

  /// Adds `other`'s counts into this snapshot (same static layout).
  void MergeFrom(const HistogramSnapshot& other);

  /// {"count":..,"sum":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..}
  std::string ToJson() const;
};

/// Fixed-boundary log-linear histogram of uint64 values. Record is
/// lock-free (wait-free but for the max CAS) and safe from any thread.
class Histogram {
 public:
  /// Sub-buckets per power-of-two octave; 8 bounds the relative bucket
  /// width (and so the quantile error) at 12.5%.
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// The linear [0, kSubBuckets) prefix plus one kSubBuckets-wide group
  /// per octave for leading-bit positions kSubBucketBits..63.
  static constexpr int kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  /// Bucket index of `value` (exposed for tests).
  static int BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index);
  /// Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Name -> metric map. Lookup/creation is mutex-guarded; the returned
/// references are stable for the registry's lifetime, so hot paths resolve
/// once at construction and record lock-free thereafter. Metric kinds
/// share one namespace per kind (a counter and a histogram may share a
/// name; two counters with one name are the same counter).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& CounterOf(const std::string& name);
  Gauge& GaugeOf(const std::string& name);
  Histogram& HistogramOf(const std::string& name);

  /// {"counters":{..},"gauges":{..},"histograms":{name: snapshot json}}
  /// — names sorted, stable across runs.
  std::string ToJson() const;

  /// Process-wide registry for binaries that export one metrics document
  /// (gnmr_serve --metrics_json, the serve_throughput harness). Library
  /// code takes a registry (or defaults to a private one) instead of
  /// assuming this, so tests stay isolated.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace gnmr

#endif  // GNMR_OBS_METRICS_H_
