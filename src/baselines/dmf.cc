#include "src/baselines/dmf.h"

#include <cmath>

#include "src/baselines/common.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

namespace {

// Cosine similarity of matching rows, with norm floor for stability.
ad::Var RowCosine(const ad::Var& a, const ad::Var& b) {
  ad::Var dot = ad::RowDot(a, b);
  ad::Var na = ad::Sqrt(ad::AddScalar(ad::RowDot(a, a), 1e-8f));
  ad::Var nb = ad::Sqrt(ad::AddScalar(ad::RowDot(b, b), 1e-8f));
  return ad::Div(dot, ad::Mul(na, nb));
}

}  // namespace

void DMF::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  auto graph = train.BuildGraph();
  graph::NegativeSampler sampler(graph.get(), train.target_behavior);
  int64_t target = train.target_behavior;

  std::vector<int64_t> user_dims = {graph->num_items()};
  std::vector<int64_t> item_dims = {graph->num_users()};
  for (int64_t h : config_.hidden_dims) {
    user_dims.push_back(h);
    item_dims.push_back(h);
  }
  user_dims.push_back(config_.embedding_dim);
  item_dims.push_back(config_.embedding_dim);
  nn::Mlp user_tower(user_dims, nn::Activation::kRelu, nn::Activation::kNone,
                     &rng);
  nn::Mlp item_tower(item_dims, nn::Activation::kRelu, nn::Activation::kNone,
                     &rng);
  std::vector<ad::Var> params = user_tower.Parameters();
  {
    auto p = item_tower.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  // DMF uses cosine scores in [-1, 1]; scale logits so BCE saturates.
  constexpr float kLogitScale = 5.0f;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SamplePointEpoch(*graph, sampler, target,
                                    config_.batch_size,
                                    config_.negatives_per_positive, &rng,
                                    config_.samples_per_user);
    for (const PointBatch& b : batches) {
      ad::Var u_rows = ad::Var::Constant(UserRows(*graph, b.users, target));
      ad::Var i_rows = ad::Var::Constant(ItemRows(*graph, b.items, target));
      ad::Var pu = user_tower.Forward(u_rows);
      ad::Var qi = item_tower.Forward(i_rows);
      ad::Var logits = ad::MulScalar(RowCosine(pu, qi), kLogitScale);
      tensor::Tensor labels =
          tensor::Tensor::FromData({static_cast<int64_t>(b.size()), 1},
                                   std::vector<float>(b.labels));
      ad::Var loss =
          ad::BceWithLogitsLoss(logits, ad::Var::Constant(std::move(labels)));
      ad::Backward(loss);
      opt.Step(params);
    }
  }

  // Cache tower outputs for every user and item.
  auto encode_all = [&](bool user_side) {
    int64_t count = user_side ? graph->num_users() : graph->num_items();
    tensor::Tensor out({count, config_.embedding_dim});
    int64_t batch = 256;
    for (int64_t start = 0; start < count; start += batch) {
      int64_t end = std::min(count, start + batch);
      std::vector<int64_t> ids;
      for (int64_t i = start; i < end; ++i) ids.push_back(i);
      tensor::Tensor rows = user_side ? UserRows(*graph, ids, target)
                                      : ItemRows(*graph, ids, target);
      const nn::Mlp& tower = user_side ? user_tower : item_tower;
      ad::Var repr = tower.Forward(ad::Var::Constant(std::move(rows)));
      std::copy(repr.value().data(),
                repr.value().data() + repr.value().numel(),
                out.data() + start * config_.embedding_dim);
    }
    return out;
  };
  user_repr_ = encode_all(true);
  item_repr_ = encode_all(false);
}

void DMF::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                     float* out) {
  GNMR_CHECK(!user_repr_.empty()) << "Fit() before ScoreItems()";
  int64_t d = user_repr_.cols();
  const float* u = user_repr_.data() + user * d;
  double un = 0.0;
  for (int64_t c = 0; c < d; ++c) un += static_cast<double>(u[c]) * u[c];
  un = std::sqrt(un + 1e-8);
  for (size_t i = 0; i < items.size(); ++i) {
    const float* v = item_repr_.data() + items[i] * d;
    double dot = 0.0, vn = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      dot += static_cast<double>(u[c]) * v[c];
      vn += static_cast<double>(v[c]) * v[c];
    }
    out[i] = static_cast<float>(dot / (un * std::sqrt(vn + 1e-8)));
  }
}

}  // namespace baselines
}  // namespace gnmr
