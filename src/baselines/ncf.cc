#include "src/baselines/ncf.h"

#include "src/baselines/common.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

std::string NCF::name() const {
  switch (variant_) {
    case NcfVariant::kGmf:
      return "NCF-G";
    case NcfVariant::kMlp:
      return "NCF-M";
    case NcfVariant::kNeuMf:
      return "NCF-N";
  }
  return "NCF";
}

ad::Var NCF::Predict(const std::vector<int64_t>& users,
                     const std::vector<int64_t>& items) const {
  std::vector<ad::Var> features;
  if (gmf_user_) {
    ad::Var p = gmf_user_->Lookup(users);
    ad::Var q = gmf_item_->Lookup(items);
    features.push_back(ad::Mul(p, q));  // element-wise product
  }
  if (mlp_user_) {
    ad::Var p = mlp_user_->Lookup(users);
    ad::Var q = mlp_item_->Lookup(items);
    features.push_back(mlp_->Forward(ad::ConcatCols({p, q})));
  }
  ad::Var joint =
      features.size() == 1 ? features[0] : ad::ConcatCols(features);
  return output_->Forward(joint);
}

std::vector<ad::Var> NCF::Parameters() const {
  std::vector<ad::Var> params;
  auto add = [&params](const nn::Module* m) {
    if (m == nullptr) return;
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  };
  add(gmf_user_.get());
  add(gmf_item_.get());
  add(mlp_user_.get());
  add(mlp_item_.get());
  add(mlp_.get());
  add(output_.get());
  return params;
}

void NCF::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  auto graph = train.BuildGraph();
  graph::NegativeSampler sampler(graph.get(), train.target_behavior);

  int64_t d = config_.embedding_dim;
  bool use_gmf = variant_ != NcfVariant::kMlp;
  bool use_mlp = variant_ != NcfVariant::kGmf;
  int64_t joint_width = 0;
  if (use_gmf) {
    gmf_user_ = std::make_unique<nn::Embedding>(train.num_users, d, &rng);
    gmf_item_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
    joint_width += d;
  }
  if (use_mlp) {
    mlp_user_ = std::make_unique<nn::Embedding>(train.num_users, d, &rng);
    mlp_item_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
    std::vector<int64_t> dims = {2 * d};
    for (int64_t h : config_.hidden_dims) dims.push_back(h);
    mlp_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kRelu,
                                     nn::Activation::kRelu, &rng);
    joint_width += config_.hidden_dims.back();
  }
  output_ =
      std::make_unique<nn::Linear>(joint_width, 1, /*use_bias=*/true, &rng);

  std::vector<ad::Var> params = Parameters();
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SamplePointEpoch(*graph, sampler, train.target_behavior,
                                    config_.batch_size,
                                    config_.negatives_per_positive, &rng,
                                    config_.samples_per_user);
    for (const PointBatch& b : batches) {
      ad::Var logits = Predict(b.users, b.items);
      tensor::Tensor labels = tensor::Tensor::FromData(
          {static_cast<int64_t>(b.size()), 1}, std::vector<float>(b.labels));
      ad::Var loss =
          ad::BceWithLogitsLoss(logits, ad::Var::Constant(std::move(labels)));
      ad::Backward(loss);
      opt.Step(params);
    }
  }
}

void NCF::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                     float* out) {
  GNMR_CHECK(output_ != nullptr) << "Fit() before ScoreItems()";
  std::vector<int64_t> users(items.size(), user);
  ad::Var logits = Predict(users, items);
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = logits.value().at(static_cast<int64_t>(i), 0);
  }
}

}  // namespace baselines
}  // namespace gnmr
