// NCF [He et al., WWW 2017] in its three variants (Table II):
//   NCF-G (GMF)  — generalised matrix factorisation: w^T (p_u ⊙ q_i)
//   NCF-M (MLP)  — multi-layer perceptron over [p_u ; q_i]
//   NCF-N (NeuMF)— fusion of both with a joint prediction layer
// Pointwise BCE training with sampled negatives on the target behavior.
#ifndef GNMR_BASELINES_NCF_H_
#define GNMR_BASELINES_NCF_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/mlp.h"

namespace gnmr {
namespace baselines {

enum class NcfVariant { kGmf, kMlp, kNeuMf };

class NCF : public Recommender {
 public:
  NCF(NcfVariant variant, const BaselineConfig& config)
      : variant_(variant), config_(config) {}
  std::string name() const override;
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  /// Prediction logits for aligned (user, item) id lists.
  ad::Var Predict(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items) const;
  std::vector<ad::Var> Parameters() const;

  NcfVariant variant_;
  BaselineConfig config_;
  // GMF side.
  std::unique_ptr<nn::Embedding> gmf_user_, gmf_item_;
  // MLP side.
  std::unique_ptr<nn::Embedding> mlp_user_, mlp_item_;
  std::unique_ptr<nn::Mlp> mlp_;
  // Joint prediction layer (maps concatenated features to one logit).
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_NCF_H_
