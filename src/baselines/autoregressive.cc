#include "src/baselines/autoregressive.h"

#include <algorithm>
#include <memory>

#include "src/baselines/common.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

namespace {

// Builds a [rows.size(), table_rows] mean-bag CSR operator: row r averages
// the entries listed in rows[r]. Returned ops must outlive Backward().
std::unique_ptr<graph::SparseOp> MeanBag(
    const std::vector<std::vector<int64_t>>& rows, int64_t table_rows) {
  std::vector<tensor::Coo> entries;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].empty()) continue;
    float w = 1.0f / static_cast<float>(rows[r].size());
    for (int64_t id : rows[r]) {
      entries.push_back({static_cast<int64_t>(r), id, w});
    }
  }
  auto op = std::make_unique<graph::SparseOp>();
  op->forward = tensor::CsrMatrix::FromCoo(
      static_cast<int64_t>(rows.size()), table_rows, entries);
  op->backward = op->forward.Transposed();
  return op;
}

// History of `user` under `behavior`, excluding one item (-1 = keep all).
std::vector<int64_t> HistoryExcluding(const graph::MultiBehaviorGraph& g,
                                      int64_t user, int64_t behavior,
                                      int64_t excluded) {
  std::vector<int64_t> items = g.ItemsOf(user, behavior);
  if (excluded >= 0) {
    items.erase(std::remove(items.begin(), items.end(), excluded),
                items.end());
  }
  return items;
}

}  // namespace

// ------------------------------------------------------------------- NADE ----

void NADE::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  graph_ = train.BuildGraph();
  target_behavior_ = train.target_behavior;
  graph::NegativeSampler sampler(graph_.get(), target_behavior_);
  int64_t d = config_.embedding_dim;

  history_emb_ =
      std::make_unique<nn::Embedding>(train.num_items, d, &rng);
  output_emb_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
  output_bias_ =
      std::make_unique<nn::Embedding>(train.num_items, 1, &rng, 0.0f);
  hidden_ = std::make_unique<nn::Linear>(d, d, /*use_bias=*/true, &rng);

  std::vector<ad::Var> params = {history_emb_->table(), output_emb_->table(),
                                 output_bias_->table()};
  {
    auto p = hidden_->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SampleTripletEpoch(*graph_, sampler, target_behavior_,
                                      config_.batch_size,
                                      config_.negatives_per_positive, &rng,
                                      config_.samples_per_user);
    for (const TripletBatch& b : batches) {
      // Encode each user's history with the hidden positive removed (the
      // autoregressive conditional p(pos | rest)).
      std::vector<std::vector<int64_t>> bags(b.size());
      for (size_t r = 0; r < b.size(); ++r) {
        bags[r] = HistoryExcluding(*graph_, b.users[r], target_behavior_,
                                   b.pos_items[r]);
      }
      auto bag_op = MeanBag(bags, graph_->num_items());
      ad::Var mean_hist = ad::Spmm(&bag_op->forward, &bag_op->backward,
                                   history_emb_->table());
      ad::Var h = ad::Tanh(hidden_->Forward(mean_hist));  // [B, d]
      auto score = [&](const std::vector<int64_t>& items) {
        return ad::Add(ad::RowDot(h, output_emb_->Lookup(items)),
                       output_bias_->Lookup(items));
      };
      ad::Var loss = ad::BprLoss(score(b.pos_items), score(b.neg_items));
      ad::Backward(loss);
      opt.Step(params);
    }
  }
}

void NADE::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                      float* out) {
  GNMR_CHECK(hidden_ != nullptr) << "Fit() before ScoreItems()";
  std::vector<std::vector<int64_t>> bags = {
      HistoryExcluding(*graph_, user, target_behavior_, -1)};
  auto bag_op = MeanBag(bags, graph_->num_items());
  ad::Var mean_hist = ad::Spmm(&bag_op->forward, &bag_op->backward,
                               history_emb_->table());
  ad::Var h = ad::Tanh(hidden_->Forward(mean_hist));  // [1, d]
  const tensor::Tensor& hv = h.value();
  const tensor::Tensor& q = output_emb_->table().value();
  const tensor::Tensor& bias = output_bias_->table().value();
  int64_t d = q.cols();
  for (size_t i = 0; i < items.size(); ++i) {
    double acc = bias.at(items[i], 0);
    for (int64_t c = 0; c < d; ++c) {
      acc += static_cast<double>(hv.at(0, c)) * q.at(items[i], c);
    }
    out[i] = static_cast<float>(acc);
  }
}

// ---------------------------------------------------------------- CF-UIcA ----

void CFUIcA::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  graph_ = train.BuildGraph();
  target_behavior_ = train.target_behavior;
  graph::NegativeSampler sampler(graph_.get(), target_behavior_);
  int64_t d = config_.embedding_dim;

  item_hist_emb_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
  user_hidden_ = std::make_unique<nn::Linear>(d, d, true, &rng);
  item_out_emb_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
  user_hist_emb_ = std::make_unique<nn::Embedding>(train.num_users, d, &rng);
  item_hidden_ = std::make_unique<nn::Linear>(d, d, true, &rng);
  user_out_emb_ = std::make_unique<nn::Embedding>(train.num_users, d, &rng);
  item_bias_ = std::make_unique<nn::Embedding>(train.num_items, 1, &rng, 0.0f);

  std::vector<ad::Var> params = {
      item_hist_emb_->table(), item_out_emb_->table(),
      user_hist_emb_->table(), user_out_emb_->table(), item_bias_->table()};
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(user_hidden_.get()),
        static_cast<const nn::Module*>(item_hidden_.get())}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SampleTripletEpoch(*graph_, sampler, target_behavior_,
                                      config_.batch_size,
                                      config_.negatives_per_positive, &rng,
                                      config_.samples_per_user);
    for (const TripletBatch& b : batches) {
      // User-side encoding (positive hidden).
      std::vector<std::vector<int64_t>> user_bags(b.size());
      for (size_t r = 0; r < b.size(); ++r) {
        user_bags[r] = HistoryExcluding(*graph_, b.users[r], target_behavior_,
                                        b.pos_items[r]);
      }
      auto user_bag_op = MeanBag(user_bags, graph_->num_items());
      ad::Var hu = ad::Tanh(user_hidden_->Forward(
          ad::Spmm(&user_bag_op->forward, &user_bag_op->backward,
                   item_hist_emb_->table())));

      // Item-side encodings for positives (user hidden) and negatives.
      auto item_side = [&](const std::vector<int64_t>& items,
                           bool exclude_user) {
        std::vector<std::vector<int64_t>> bags(items.size());
        for (size_t r = 0; r < items.size(); ++r) {
          std::vector<int64_t> users =
              graph_->UsersOf(items[r], target_behavior_);
          if (exclude_user) {
            users.erase(
                std::remove(users.begin(), users.end(), b.users[r]),
                users.end());
          }
          bags[r] = std::move(users);
        }
        auto op = MeanBag(bags, graph_->num_users());
        ad::Var g = ad::Tanh(item_hidden_->Forward(
            ad::Spmm(&op->forward, &op->backward, user_hist_emb_->table())));
        return std::make_pair(std::move(op), g);
      };
      auto [pos_op, g_pos] = item_side(b.pos_items, /*exclude_user=*/true);
      auto [neg_op, g_neg] = item_side(b.neg_items, /*exclude_user=*/false);

      auto score = [&](const std::vector<int64_t>& items, const ad::Var& g) {
        ad::Var s = ad::RowDot(hu, item_out_emb_->Lookup(items));
        s = ad::Add(s, ad::RowDot(g, user_out_emb_->Lookup(b.users)));
        return ad::Add(s, item_bias_->Lookup(items));
      };
      ad::Var loss = ad::BprLoss(score(b.pos_items, g_pos),
                                 score(b.neg_items, g_neg));
      ad::Backward(loss);
      opt.Step(params);
    }
  }
}

void CFUIcA::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                        float* out) {
  GNMR_CHECK(user_hidden_ != nullptr) << "Fit() before ScoreItems()";
  // User-side encoding with full history.
  std::vector<std::vector<int64_t>> user_bags = {
      HistoryExcluding(*graph_, user, target_behavior_, -1)};
  auto user_bag_op = MeanBag(user_bags, graph_->num_items());
  ad::Var hu = ad::Tanh(user_hidden_->Forward(
      ad::Spmm(&user_bag_op->forward, &user_bag_op->backward,
               item_hist_emb_->table())));
  // Item-side encodings.
  std::vector<std::vector<int64_t>> item_bags(items.size());
  for (size_t r = 0; r < items.size(); ++r) {
    item_bags[r] = graph_->UsersOf(items[r], target_behavior_);
  }
  auto item_bag_op = MeanBag(item_bags, graph_->num_users());
  ad::Var g = ad::Tanh(item_hidden_->Forward(
      ad::Spmm(&item_bag_op->forward, &item_bag_op->backward,
               user_hist_emb_->table())));

  const tensor::Tensor& hu_v = hu.value();
  const tensor::Tensor& g_v = g.value();
  const tensor::Tensor& q = item_out_emb_->table().value();
  const tensor::Tensor& p = user_out_emb_->table().value();
  const tensor::Tensor& bias = item_bias_->table().value();
  int64_t d = q.cols();
  for (size_t i = 0; i < items.size(); ++i) {
    double acc = bias.at(items[i], 0);
    for (int64_t c = 0; c < d; ++c) {
      acc += static_cast<double>(hu_v.at(0, c)) * q.at(items[i], c);
      acc += static_cast<double>(g_v.at(static_cast<int64_t>(i), c)) *
             p.at(user, c);
    }
    out[i] = static_cast<float>(acc);
  }
}

}  // namespace baselines
}  // namespace gnmr
