// Autoregressive collaborative filtering baselines.
//
// NADE [Zheng et al., ICML 2016] factorises p(x_u) autoregressively over
// items with shared parameters. Exact training sums over item orderings;
// following the paper's ordering-sampling trick we draw one random split
// of each user's history per step: hide a random positive, encode the rest
// with tied weights, and predict the hidden item against sampled
// negatives. This "subset autoregression" keeps the parameter sharing and
// ordering-average that give NADE its strength at a CPU-tractable cost
// (substitution documented in DESIGN.md).
//
// CF-UIcA [Du et al., AAAI 2018] co-autoregresses over users AND items:
// the score for (u, i) combines a user-side encoding of u's history with
// an item-side encoding of i's history. Implemented with the same
// hidden-positive training scheme on both sides.
#ifndef GNMR_BASELINES_AUTOREGRESSIVE_H_
#define GNMR_BASELINES_AUTOREGRESSIVE_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/graph/interaction_graph.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"

namespace gnmr {
namespace baselines {

class NADE : public Recommender {
 public:
  explicit NADE(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "NADE"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  BaselineConfig config_;
  std::shared_ptr<graph::MultiBehaviorGraph> graph_;
  int64_t target_behavior_ = 0;
  std::unique_ptr<nn::Embedding> history_emb_;  // tied input embeddings
  std::unique_ptr<nn::Embedding> output_emb_;   // item output embeddings
  std::unique_ptr<nn::Embedding> output_bias_;  // per-item bias
  std::unique_ptr<nn::Linear> hidden_;          // shared hidden transform
};

class CFUIcA : public Recommender {
 public:
  explicit CFUIcA(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "CF-UIcA"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  BaselineConfig config_;
  std::shared_ptr<graph::MultiBehaviorGraph> graph_;
  int64_t target_behavior_ = 0;
  // User-side autoregression (encodes u's item history).
  std::unique_ptr<nn::Embedding> item_hist_emb_;
  std::unique_ptr<nn::Linear> user_hidden_;
  std::unique_ptr<nn::Embedding> item_out_emb_;
  // Item-side autoregression (encodes i's user history).
  std::unique_ptr<nn::Embedding> user_hist_emb_;
  std::unique_ptr<nn::Linear> item_hidden_;
  std::unique_ptr<nn::Embedding> user_out_emb_;
  std::unique_ptr<nn::Embedding> item_bias_;
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_AUTOREGRESSIVE_H_
