// DIPN [Guo et al., KDD 2019]: deep intent prediction network. The
// original predicts real-time purchasing intent from browse/purchase
// streams with a bi-RNN + hierarchical attention. Here (substitution
// documented in DESIGN.md): per behavior type, a GRU encodes the user's
// time-ordered item sequence; inter-behavior attention (queried by the
// user embedding) pools the per-behavior states into a user intent
// representation scored against item embeddings. Timestamps come from the
// dataset's per-user logical clocks. Multi-behavior: consumes ALL
// behavior types.
#ifndef GNMR_BASELINES_DIPN_H_
#define GNMR_BASELINES_DIPN_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/graph/interaction_graph.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"

namespace gnmr {
namespace baselines {

/// Minimal batched GRU cell built from the autodiff primitives.
class GruCell : public nn::Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  /// One step: x [B, in], h [B, hid] -> new h [B, hid].
  ad::Var Step(const ad::Var& x, const ad::Var& h) const;

  std::vector<ad::Var> Parameters() const override;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  std::unique_ptr<nn::Linear> xz_, hz_;  // update gate
  std::unique_ptr<nn::Linear> xr_, hr_;  // reset gate
  std::unique_ptr<nn::Linear> xh_, hh_;  // candidate
};

class DIPN : public Recommender {
 public:
  explicit DIPN(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "DIPN"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  /// User intent representations [users.size(), d] from their behavior
  /// sequences.
  ad::Var UserIntent(const std::vector<int64_t>& users) const;
  std::vector<ad::Var> Parameters() const;

  BaselineConfig config_;
  int64_t num_behaviors_ = 0;
  /// sequences_[k][u]: time-ordered item ids of user u under behavior k,
  /// truncated to the most recent max_sequence_length.
  std::vector<std::vector<std::vector<int64_t>>> sequences_;
  std::unique_ptr<nn::Embedding> item_emb_;
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Embedding> item_bias_;
  std::vector<std::unique_ptr<GruCell>> grus_;  // one per behavior
  std::unique_ptr<nn::Linear> attn_state_, attn_user_;  // attention MLP
  std::unique_ptr<nn::Linear> attn_out_;
  tensor::Tensor cached_intent_;  // [I, d] after Fit
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_DIPN_H_
