#include "src/baselines/autoencoders.h"
#include "src/baselines/autoregressive.h"
#include "src/baselines/bias_mf.h"
#include "src/baselines/dipn.h"
#include "src/baselines/dmf.h"
#include "src/baselines/ncf.h"
#include "src/baselines/ngcf.h"
#include "src/baselines/nmtr.h"
#include "src/baselines/recommender.h"
#include "src/baselines/trivial.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

std::unique_ptr<Recommender> MakeBaseline(const std::string& name,
                                          const BaselineConfig& config) {
  if (name == "Random") return std::make_unique<RandomRecommender>(config);
  if (name == "MostPop") {
    return std::make_unique<MostPopularRecommender>(config);
  }
  if (name == "BiasMF") return std::make_unique<BiasMF>(config);
  if (name == "DMF") return std::make_unique<DMF>(config);
  if (name == "NCF-M") {
    return std::make_unique<NCF>(NcfVariant::kMlp, config);
  }
  if (name == "NCF-G") {
    return std::make_unique<NCF>(NcfVariant::kGmf, config);
  }
  if (name == "NCF-N") {
    return std::make_unique<NCF>(NcfVariant::kNeuMf, config);
  }
  if (name == "AutoRec") return std::make_unique<AutoRec>(config);
  if (name == "CDAE") return std::make_unique<CDAE>(config);
  if (name == "NADE") return std::make_unique<NADE>(config);
  if (name == "CF-UIcA") return std::make_unique<CFUIcA>(config);
  if (name == "NGCF") return std::make_unique<NGCF>(config);
  if (name == "NMTR") return std::make_unique<NMTR>(config);
  if (name == "DIPN") return std::make_unique<DIPN>(config);
  GNMR_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

std::vector<std::string> AllBaselineNames() {
  // Table II order.
  return {"BiasMF", "DMF",  "NCF-M",   "NCF-G", "NCF-N", "AutoRec",
          "CDAE",   "NADE", "CF-UIcA", "NGCF",  "NMTR",  "DIPN"};
}

}  // namespace baselines
}  // namespace gnmr
