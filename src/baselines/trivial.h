// Sanity-anchor recommenders: Random and MostPopular. Not in the paper's
// tables, but every evaluation harness needs them — a learned model that
// fails to beat MostPop is broken.
#ifndef GNMR_BASELINES_TRIVIAL_H_
#define GNMR_BASELINES_TRIVIAL_H_

#include <vector>

#include "src/baselines/recommender.h"

namespace gnmr {
namespace baselines {

/// Scores items with a deterministic pseudo-random hash of (user, item).
class RandomRecommender : public Recommender {
 public:
  explicit RandomRecommender(const BaselineConfig& config)
      : seed_(config.seed) {}
  std::string name() const override { return "Random"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  uint64_t seed_;
};

/// Scores every item by its target-behavior interaction count.
class MostPopularRecommender : public Recommender {
 public:
  explicit MostPopularRecommender(const BaselineConfig&) {}
  std::string name() const override { return "MostPop"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  std::vector<float> popularity_;
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_TRIVIAL_H_
