// Common interface for every baseline of Table II, plus shared training
// configuration. All models train on a Dataset and then answer the
// eval::Scorer protocol.
//
// Behavior-data convention (matching the paper's comparison): baselines
// designed for a single interaction type (BiasMF, DMF, NCF-*, AutoRec,
// CDAE, NADE, CF-UIcA, NGCF) consume ONLY the target behavior; the
// multi-behavior baselines (NMTR, DIPN) and GNMR consume all behaviors.
#ifndef GNMR_BASELINES_RECOMMENDER_H_
#define GNMR_BASELINES_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/evaluator.h"

namespace gnmr {
namespace baselines {

/// Shared hyperparameters for baseline training.
struct BaselineConfig {
  int64_t embedding_dim = 16;
  int64_t epochs = 20;
  double learning_rate = 5e-3;
  double weight_decay = 1e-5;
  /// Training examples (triplets or points) per optimisation step.
  int64_t batch_size = 256;
  /// Negative samples per positive for pointwise/pairwise objectives.
  int64_t negatives_per_positive = 2;
  /// Positives sampled per user per epoch (training-volume knob).
  int64_t samples_per_user = 1;
  /// Hidden widths for MLP-based models.
  std::vector<int64_t> hidden_dims = {32, 16};
  /// Propagation depth for graph models (NGCF).
  int64_t num_layers = 2;
  /// Sequence truncation length for sequence models (DIPN).
  int64_t max_sequence_length = 10;
  uint64_t seed = 7;
  bool verbose = false;
};

/// A trainable top-N recommender that can score candidate items.
class Recommender : public eval::Scorer {
 public:
  ~Recommender() override = default;

  /// Model name as used in the paper's tables (e.g. "NCF-N").
  virtual std::string name() const = 0;

  /// Trains on `train`. Must be called exactly once before ScoreItems.
  virtual void Fit(const data::Dataset& train) = 0;
};

/// Factory for every registered baseline. Names (case-sensitive) follow
/// Table II: Random, MostPop, BiasMF, DMF, NCF-M, NCF-G, NCF-N, AutoRec,
/// CDAE, NADE, CF-UIcA, NGCF, NMTR, DIPN.
std::unique_ptr<Recommender> MakeBaseline(const std::string& name,
                                          const BaselineConfig& config);

/// All registered baseline names in Table II order.
std::vector<std::string> AllBaselineNames();

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_RECOMMENDER_H_
