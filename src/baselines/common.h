// Shared helpers for baseline implementations: triplet/pointwise sampling
// and dense interaction-row construction.
#ifndef GNMR_BASELINES_COMMON_H_
#define GNMR_BASELINES_COMMON_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/graph/interaction_graph.h"
#include "src/graph/negative_sampler.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace gnmr {
namespace baselines {

/// A (user, positive, negative) training triplet batch in struct-of-arrays
/// layout, ready for embedding gathers.
struct TripletBatch {
  std::vector<int64_t> users;
  std::vector<int64_t> pos_items;
  std::vector<int64_t> neg_items;
  size_t size() const { return users.size(); }
};

/// A pointwise batch: (user, item, label) with label 1 for observed target
/// interactions and 0 for sampled negatives.
struct PointBatch {
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  std::vector<float> labels;
  size_t size() const { return users.size(); }
};

/// Samples one epoch of triplets: for each user with positives,
/// `samples_per_user` random positives with `negatives_per_positive`
/// sampled negatives each. Order is shuffled.
std::vector<TripletBatch> SampleTripletEpoch(
    const graph::MultiBehaviorGraph& graph,
    const graph::NegativeSampler& sampler, int64_t target_behavior,
    int64_t batch_size, int64_t negatives_per_positive, util::Rng* rng,
    int64_t samples_per_user = 1);

/// Samples one epoch of pointwise batches with the same positive coverage.
std::vector<PointBatch> SamplePointEpoch(
    const graph::MultiBehaviorGraph& graph,
    const graph::NegativeSampler& sampler, int64_t target_behavior,
    int64_t batch_size, int64_t negatives_per_positive, util::Rng* rng,
    int64_t samples_per_user = 1);

/// Dense multi-hot rows over items for the given users under one behavior:
/// out[r][j] = 1 iff users[r] interacted with item j. Used by row-input
/// models (DMF, AutoRec, CDAE, NADE).
tensor::Tensor UserRows(const graph::MultiBehaviorGraph& graph,
                        const std::vector<int64_t>& users, int64_t behavior);

/// Dense multi-hot rows over users for the given items under one behavior.
tensor::Tensor ItemRows(const graph::MultiBehaviorGraph& graph,
                        const std::vector<int64_t>& items, int64_t behavior);

/// All user ids [0, n) as a vector (convenience for full-table passes).
std::vector<int64_t> AllIds(int64_t n);

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_COMMON_H_
