// NGCF [Wang et al., SIGIR 2019]: neural graph collaborative filtering.
// L propagation layers over the (single-behavior) user-item graph with
// symmetric sqrt-degree normalisation:
//
//   H^{l+1} = LeakyReLU( (A_hat H^l) W1 + ((A_hat H^l) o H^l) W2 )
//
// where o is the element-wise (bi-interaction) term; scoring is the dot
// product of the concatenated multi-order embeddings, trained with BPR.
// As a single-behavior baseline it consumes only the target behavior.
#ifndef GNMR_BASELINES_NGCF_H_
#define GNMR_BASELINES_NGCF_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/graph/interaction_graph.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/tensor/tensor.h"

namespace gnmr {
namespace baselines {

class NGCF : public Recommender {
 public:
  explicit NGCF(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "NGCF"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  std::vector<ad::Var> Propagate() const;

  BaselineConfig config_;
  std::shared_ptr<graph::MultiBehaviorGraph> graph_;
  std::unique_ptr<nn::Embedding> node_emb_;           // [I+J, d]
  std::vector<std::unique_ptr<nn::Linear>> w1_;       // per layer
  std::vector<std::unique_ptr<nn::Linear>> w2_;       // per layer
  tensor::Tensor inference_cache_;                    // [I+J, (L+1)d]
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_NGCF_H_
