// DMF [Xue et al., IJCAI 2017]: deep matrix factorisation. Two MLP towers
// embed the user's interaction row and the item's interaction column; the
// match score is their cosine similarity. Pointwise BCE training on the
// target behavior (the paper's normalised cross-entropy reduces to BCE for
// binary implicit feedback).
#ifndef GNMR_BASELINES_DMF_H_
#define GNMR_BASELINES_DMF_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/nn/mlp.h"
#include "src/tensor/tensor.h"

namespace gnmr {
namespace baselines {

class DMF : public Recommender {
 public:
  explicit DMF(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "DMF"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  BaselineConfig config_;
  // Cached tower outputs for all users/items after training.
  tensor::Tensor user_repr_;  // [I, d]
  tensor::Tensor item_repr_;  // [J, d]
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_DMF_H_
