#include "src/baselines/ngcf.h"

#include "src/baselines/common.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

std::vector<ad::Var> NGCF::Propagate() const {
  const graph::SparseOp* adj =
      graph_->MergedAdjacency(graph::NeighborNorm::kSqrtDegree);
  std::vector<ad::Var> layers = {node_emb_->table()};
  for (size_t l = 0; l < w1_.size(); ++l) {
    ad::Var h = layers.back();
    ad::Var agg = ad::Spmm(&adj->forward, &adj->backward, h);
    // Bi-interaction: first-order term plus element-wise interaction with
    // the node's own embedding.
    ad::Var next = ad::Add(w1_[l]->Forward(agg),
                           w2_[l]->Forward(ad::Mul(agg, h)));
    layers.push_back(ad::LeakyRelu(next, 0.2f));
  }
  return layers;
}

void NGCF::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  // Single-behavior baseline: keep only the target behavior's edges.
  data::Dataset target_only = data::OnlyTargetBehavior(train);
  util::Rng rng(config_.seed);
  graph_ = target_only.BuildGraph();
  graph::NegativeSampler sampler(graph_.get(), target_only.target_behavior);

  int64_t d = config_.embedding_dim;
  node_emb_ = std::make_unique<nn::Embedding>(graph_->num_nodes(), d, &rng);
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    w1_.push_back(std::make_unique<nn::Linear>(d, d, true, &rng));
    w2_.push_back(std::make_unique<nn::Linear>(d, d, true, &rng));
  }
  std::vector<ad::Var> params = node_emb_->Parameters();
  for (size_t l = 0; l < w1_.size(); ++l) {
    for (const nn::Module* m :
         {static_cast<const nn::Module*>(w1_[l].get()),
          static_cast<const nn::Module*>(w2_[l].get())}) {
      auto p = m->Parameters();
      params.insert(params.end(), p.begin(), p.end());
    }
  }
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  int64_t offset = graph_->num_users();
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SampleTripletEpoch(*graph_, sampler,
                                      target_only.target_behavior,
                                      config_.batch_size,
                                      config_.negatives_per_positive, &rng,
                                      config_.samples_per_user);
    for (const TripletBatch& b : batches) {
      std::vector<ad::Var> layers = Propagate();
      ad::Var multi = layers.size() == 1 ? layers[0] : ad::ConcatCols(layers);
      std::vector<int64_t> pos_nodes, neg_nodes;
      for (size_t i = 0; i < b.size(); ++i) {
        pos_nodes.push_back(offset + b.pos_items[i]);
        neg_nodes.push_back(offset + b.neg_items[i]);
      }
      ad::Var u = ad::GatherRows(multi, b.users);
      ad::Var pos = ad::RowDot(u, ad::GatherRows(multi, pos_nodes));
      ad::Var neg = ad::RowDot(u, ad::GatherRows(multi, neg_nodes));
      ad::Var loss = ad::BprLoss(pos, neg);
      ad::Backward(loss);
      opt.Step(params);
    }
  }

  // Cache multi-order embeddings for inference.
  std::vector<ad::Var> layers = Propagate();
  std::vector<const tensor::Tensor*> values;
  for (const ad::Var& l : layers) values.push_back(&l.value());
  inference_cache_ = tensor::ops::ConcatCols(values);
}

void NGCF::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                      float* out) {
  GNMR_CHECK(!inference_cache_.empty()) << "Fit() before ScoreItems()";
  int64_t width = inference_cache_.cols();
  const float* u = inference_cache_.data() + user * width;
  int64_t offset = graph_->num_users();
  for (size_t i = 0; i < items.size(); ++i) {
    const float* v = inference_cache_.data() + (offset + items[i]) * width;
    double acc = 0.0;
    for (int64_t c = 0; c < width; ++c) {
      acc += static_cast<double>(u[c]) * v[c];
    }
    out[i] = static_cast<float>(acc);
  }
}

}  // namespace baselines
}  // namespace gnmr
