#include "src/baselines/nmtr.h"

#include "src/baselines/common.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

ad::Var NMTR::CascadeLogit(const std::vector<int64_t>& users,
                           const std::vector<int64_t>& items,
                           size_t upto) const {
  ad::Var p = user_emb_->Lookup(users);
  ad::Var q = item_emb_->Lookup(items);
  ad::Var interaction = ad::Mul(p, q);  // shared GMF feature
  ad::Var logit;
  for (size_t pos = 0; pos <= upto; ++pos) {
    ad::Var head = heads_[pos]->Forward(interaction);  // [n, 1]
    if (logit.defined()) {
      // Couple to the previous stage with a learnable weight.
      logit = ad::Add(head, ad::Mul(logit, couplings_[pos]));
    } else {
      logit = head;
    }
  }
  return logit;
}

void NMTR::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  graph_ = train.BuildGraph();

  // Cascade order: auxiliary behaviors in id order, target last.
  for (int64_t k = 0; k < train.num_behaviors(); ++k) {
    if (k != train.target_behavior) cascade_order_.push_back(k);
  }
  cascade_order_.push_back(train.target_behavior);

  int64_t d = config_.embedding_dim;
  user_emb_ = std::make_unique<nn::Embedding>(train.num_users, d, &rng);
  item_emb_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
  for (size_t pos = 0; pos < cascade_order_.size(); ++pos) {
    heads_.push_back(std::make_unique<nn::Linear>(d, 1, true, &rng));
    couplings_.push_back(
        ad::Var::Param(tensor::Tensor::Full({1, 1}, 0.5f)));
  }
  std::vector<ad::Var> params = {user_emb_->table(), item_emb_->table()};
  for (const auto& head : heads_) {
    auto p = head->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (const auto& c : couplings_) params.push_back(c);
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  // One negative sampler per behavior: negatives are behavior-specific.
  std::vector<std::unique_ptr<graph::NegativeSampler>> samplers;
  for (int64_t k = 0; k < train.num_behaviors(); ++k) {
    samplers.push_back(
        std::make_unique<graph::NegativeSampler>(graph_.get(), k));
  }

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Multi-task pass: each cascade position trains on its own behavior's
    // interactions (all tasks share the embeddings).
    for (size_t pos = 0; pos < cascade_order_.size(); ++pos) {
      int64_t behavior = cascade_order_[pos];
      auto batches = SamplePointEpoch(*graph_, *samplers[static_cast<size_t>(
                                          behavior)],
                                      behavior, config_.batch_size,
                                      config_.negatives_per_positive, &rng,
                                      config_.samples_per_user);
      for (const PointBatch& b : batches) {
        ad::Var logits = CascadeLogit(b.users, b.items, pos);
        tensor::Tensor labels = tensor::Tensor::FromData(
            {static_cast<int64_t>(b.size()), 1},
            std::vector<float>(b.labels));
        ad::Var loss = ad::BceWithLogitsLoss(
            logits, ad::Var::Constant(std::move(labels)));
        ad::Backward(loss);
        opt.Step(params);
      }
    }
  }
}

void NMTR::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                      float* out) {
  GNMR_CHECK(user_emb_ != nullptr) << "Fit() before ScoreItems()";
  std::vector<int64_t> users(items.size(), user);
  ad::Var logits = CascadeLogit(users, items, cascade_order_.size() - 1);
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = logits.value().at(static_cast<int64_t>(i), 0);
  }
}

}  // namespace baselines
}  // namespace gnmr
