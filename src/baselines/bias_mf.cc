#include "src/baselines/bias_mf.h"

#include "src/baselines/common.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

void BiasMF::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  auto graph = train.BuildGraph();
  graph::NegativeSampler sampler(graph.get(), train.target_behavior);

  user_emb_ = std::make_unique<nn::Embedding>(train.num_users,
                                              config_.embedding_dim, &rng);
  item_emb_ = std::make_unique<nn::Embedding>(train.num_items,
                                              config_.embedding_dim, &rng);
  user_bias_ = std::make_unique<nn::Embedding>(train.num_users, 1, &rng, 0.0f);
  item_bias_ = std::make_unique<nn::Embedding>(train.num_items, 1, &rng, 0.0f);

  std::vector<ad::Var> params = {user_emb_->table(), item_emb_->table(),
                                 user_bias_->table(), item_bias_->table()};
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8,
               config_.weight_decay);

  auto score = [&](const std::vector<int64_t>& users,
                   const std::vector<int64_t>& items) {
    ad::Var p = user_emb_->Lookup(users);
    ad::Var q = item_emb_->Lookup(items);
    ad::Var s = ad::RowDot(p, q);
    s = ad::Add(s, user_bias_->Lookup(users));
    s = ad::Add(s, item_bias_->Lookup(items));
    return s;
  };

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SampleTripletEpoch(*graph, sampler, train.target_behavior,
                                      config_.batch_size,
                                      config_.negatives_per_positive, &rng,
                                      config_.samples_per_user);
    for (const TripletBatch& b : batches) {
      ad::Var loss = ad::BprLoss(score(b.users, b.pos_items),
                                 score(b.users, b.neg_items));
      ad::Backward(loss);
      opt.Step(params);
    }
  }
}

void BiasMF::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                        float* out) {
  GNMR_CHECK(user_emb_ != nullptr) << "Fit() before ScoreItems()";
  const tensor::Tensor& p = user_emb_->table().value();
  const tensor::Tensor& q = item_emb_->table().value();
  const tensor::Tensor& bu = user_bias_->table().value();
  const tensor::Tensor& bi = item_bias_->table().value();
  int64_t d = p.cols();
  for (size_t i = 0; i < items.size(); ++i) {
    double acc = bu.at(user, 0) + bi.at(items[i], 0);
    for (int64_t c = 0; c < d; ++c) {
      acc += static_cast<double>(p.at(user, c)) * q.at(items[i], c);
    }
    out[i] = static_cast<float>(acc);
  }
}

}  // namespace baselines
}  // namespace gnmr
