// Autoencoder-based collaborative filtering baselines:
//
//   AutoRec [Sedhain et al., WWW 2015] — user-based autoencoder over the
//   target-behavior interaction row; the reconstruction is the score.
//
//   CDAE [Wu et al., WSDM 2016] — denoising autoencoder with an additive
//   per-user embedding in the bottleneck and input corruption.
#ifndef GNMR_BASELINES_AUTOENCODERS_H_
#define GNMR_BASELINES_AUTOENCODERS_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/tensor/tensor.h"

namespace gnmr {
namespace baselines {

class AutoRec : public Recommender {
 public:
  explicit AutoRec(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "AutoRec"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  BaselineConfig config_;
  tensor::Tensor reconstructions_;  // [I, J] cached after training
};

class CDAE : public Recommender {
 public:
  explicit CDAE(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "CDAE"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  BaselineConfig config_;
  tensor::Tensor reconstructions_;  // [I, J] cached after training
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_AUTOENCODERS_H_
