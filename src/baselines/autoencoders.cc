#include "src/baselines/autoencoders.h"

#include <algorithm>

#include "src/baselines/common.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

namespace {

// Shared user-row autoencoder training. `user_embedding` switches CDAE's
// additive per-user bottleneck term; `corruption` its input denoising.
tensor::Tensor TrainRowAutoencoder(const data::Dataset& train,
                                   const BaselineConfig& config,
                                   bool user_embedding, double corruption) {
  util::Rng rng(config.seed);
  auto graph = train.BuildGraph();
  int64_t target = train.target_behavior;
  int64_t num_users = train.num_users;
  int64_t num_items = train.num_items;
  int64_t hidden = config.hidden_dims.empty() ? 32 : config.hidden_dims[0];

  nn::Linear encoder(num_items, hidden, /*use_bias=*/true, &rng);
  nn::Linear decoder(hidden, num_items, /*use_bias=*/true, &rng);
  std::unique_ptr<nn::Embedding> user_emb;
  std::vector<ad::Var> params = encoder.Parameters();
  {
    auto p = decoder.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  if (user_embedding) {
    user_emb = std::make_unique<nn::Embedding>(num_users, hidden, &rng);
    params.push_back(user_emb->table());
  }
  nn::Adam opt(config.learning_rate, 0.9, 0.999, 1e-8, config.weight_decay);

  std::vector<int64_t> order = AllIds(num_users);
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      std::vector<int64_t> ids(order.begin() + static_cast<int64_t>(start),
                               order.begin() + static_cast<int64_t>(end));
      tensor::Tensor rows = UserRows(*graph, ids, target);
      tensor::Tensor input = rows;
      if (corruption > 0.0) {
        float scale = 1.0f / (1.0f - static_cast<float>(corruption));
        float* d = input.data();
        for (int64_t i = 0; i < input.numel(); ++i) {
          if (d[i] != 0.0f) {
            d[i] = rng.Bernoulli(corruption) ? 0.0f : scale;
          }
        }
      }
      ad::Var x = ad::Var::Constant(std::move(input));
      ad::Var h = encoder.Forward(x);
      if (user_emb) h = ad::Add(h, user_emb->Lookup(ids));
      h = ad::Sigmoid(h);
      ad::Var logits = decoder.Forward(h);
      ad::Var target_rows = ad::Var::Constant(std::move(rows));
      // BCE over the full row: observed entries pulled to 1, the rest to 0
      // (implicit-feedback variant of the reconstruction objective).
      ad::Var loss = ad::BceWithLogitsLoss(logits, target_rows);
      ad::Backward(loss);
      opt.Step(params);
    }
  }

  // Cache reconstructions for all users.
  tensor::Tensor recon({num_users, num_items});
  for (int64_t start = 0; start < num_users;
       start += config.batch_size) {
    int64_t end = std::min(num_users, start + config.batch_size);
    std::vector<int64_t> ids;
    for (int64_t i = start; i < end; ++i) ids.push_back(i);
    tensor::Tensor rows = UserRows(*graph, ids, target);
    ad::Var h = encoder.Forward(ad::Var::Constant(std::move(rows)));
    if (user_emb) h = ad::Add(h, user_emb->Lookup(ids));
    h = ad::Sigmoid(h);
    ad::Var logits = decoder.Forward(h);
    std::copy(logits.value().data(),
              logits.value().data() + logits.value().numel(),
              recon.data() + start * num_items);
  }
  return recon;
}

void ScoreFromReconstruction(const tensor::Tensor& recon, int64_t user,
                             const std::vector<int64_t>& items, float* out) {
  GNMR_CHECK(!recon.empty()) << "Fit() before ScoreItems()";
  GNMR_CHECK(user >= 0 && user < recon.rows());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = recon.at(user, items[i]);
  }
}

}  // namespace

void AutoRec::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  reconstructions_ = TrainRowAutoencoder(train, config_,
                                         /*user_embedding=*/false,
                                         /*corruption=*/0.0);
}

void AutoRec::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                         float* out) {
  ScoreFromReconstruction(reconstructions_, user, items, out);
}

void CDAE::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  reconstructions_ = TrainRowAutoencoder(train, config_,
                                         /*user_embedding=*/true,
                                         /*corruption=*/0.2);
}

void CDAE::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                      float* out) {
  ScoreFromReconstruction(reconstructions_, user, items, out);
}

}  // namespace baselines
}  // namespace gnmr
