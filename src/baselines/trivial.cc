#include "src/baselines/trivial.h"

#include "src/util/check.h"

namespace gnmr {
namespace baselines {

void RandomRecommender::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
}

void RandomRecommender::ScoreItems(int64_t user,
                                   const std::vector<int64_t>& items,
                                   float* out) {
  for (size_t i = 0; i < items.size(); ++i) {
    // SplitMix64-style hash of (seed, user, item) -> [0, 1).
    uint64_t x = seed_ ^ (static_cast<uint64_t>(user) * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<uint64_t>(items[i]) + 0xbf58476d1ce4e5b9ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    out[i] = static_cast<float>(x >> 40) / static_cast<float>(1 << 24);
  }
}

void MostPopularRecommender::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  popularity_.assign(static_cast<size_t>(train.num_items), 0.0f);
  for (const graph::Interaction& e : train.interactions) {
    if (e.behavior == train.target_behavior) {
      popularity_[static_cast<size_t>(e.item)] += 1.0f;
    }
  }
}

void MostPopularRecommender::ScoreItems(int64_t /*user*/,
                                        const std::vector<int64_t>& items,
                                        float* out) {
  for (size_t i = 0; i < items.size(); ++i) {
    GNMR_CHECK(items[i] >= 0 &&
               items[i] < static_cast<int64_t>(popularity_.size()));
    out[i] = popularity_[static_cast<size_t>(items[i])];
  }
}

}  // namespace baselines
}  // namespace gnmr
