#include "src/baselines/common.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace gnmr {
namespace baselines {

namespace {

// Users with at least one target positive and one eligible negative,
// shuffled.
std::vector<int64_t> TrainableUsers(const graph::MultiBehaviorGraph& graph,
                                    const graph::NegativeSampler& sampler,
                                    int64_t target_behavior, util::Rng* rng) {
  std::vector<int64_t> users;
  for (int64_t u = 0; u < graph.num_users(); ++u) {
    if (graph.UserDegree(u, target_behavior) > 0 &&
        sampler.NumEligible(u) > 0) {
      users.push_back(u);
    }
  }
  rng->Shuffle(&users);
  return users;
}

int64_t RandomPositive(const graph::MultiBehaviorGraph& graph, int64_t user,
                       int64_t behavior, util::Rng* rng) {
  std::vector<int64_t> items = graph.ItemsOf(user, behavior);
  GNMR_CHECK(!items.empty());
  return items[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
}

}  // namespace

std::vector<TripletBatch> SampleTripletEpoch(
    const graph::MultiBehaviorGraph& graph,
    const graph::NegativeSampler& sampler, int64_t target_behavior,
    int64_t batch_size, int64_t negatives_per_positive, util::Rng* rng,
    int64_t samples_per_user) {
  GNMR_CHECK_GT(batch_size, 0);
  GNMR_CHECK_GT(samples_per_user, 0);
  std::vector<int64_t> users =
      TrainableUsers(graph, sampler, target_behavior, rng);
  std::vector<TripletBatch> batches;
  TripletBatch current;
  for (int64_t u : users) {
    for (int64_t s = 0; s < samples_per_user; ++s) {
      int64_t pos = RandomPositive(graph, u, target_behavior, rng);
      for (int64_t n = 0; n < negatives_per_positive; ++n) {
        current.users.push_back(u);
        current.pos_items.push_back(pos);
        current.neg_items.push_back(sampler.SampleOne(u, rng));
        if (static_cast<int64_t>(current.size()) >= batch_size) {
          batches.push_back(std::move(current));
          current = TripletBatch();
        }
      }
    }
  }
  if (!current.users.empty()) batches.push_back(std::move(current));
  return batches;
}

std::vector<PointBatch> SamplePointEpoch(
    const graph::MultiBehaviorGraph& graph,
    const graph::NegativeSampler& sampler, int64_t target_behavior,
    int64_t batch_size, int64_t negatives_per_positive, util::Rng* rng,
    int64_t samples_per_user) {
  GNMR_CHECK_GT(batch_size, 0);
  GNMR_CHECK_GT(samples_per_user, 0);
  std::vector<int64_t> users =
      TrainableUsers(graph, sampler, target_behavior, rng);
  std::vector<PointBatch> batches;
  PointBatch current;
  auto flush_if_full = [&]() {
    if (static_cast<int64_t>(current.size()) >= batch_size) {
      batches.push_back(std::move(current));
      current = PointBatch();
    }
  };
  for (int64_t u : users) {
    for (int64_t s = 0; s < samples_per_user; ++s) {
      int64_t pos = RandomPositive(graph, u, target_behavior, rng);
      current.users.push_back(u);
      current.items.push_back(pos);
      current.labels.push_back(1.0f);
      flush_if_full();
      for (int64_t n = 0; n < negatives_per_positive; ++n) {
        current.users.push_back(u);
        current.items.push_back(sampler.SampleOne(u, rng));
        current.labels.push_back(0.0f);
        flush_if_full();
      }
    }
  }
  if (!current.users.empty()) batches.push_back(std::move(current));
  return batches;
}

tensor::Tensor UserRows(const graph::MultiBehaviorGraph& graph,
                        const std::vector<int64_t>& users, int64_t behavior) {
  tensor::Tensor rows(
      {static_cast<int64_t>(users.size()), graph.num_items()});
  float* rd = rows.data();
  int64_t width = graph.num_items();
  for (size_t r = 0; r < users.size(); ++r) {
    for (int64_t j : graph.ItemsOf(users[r], behavior)) {
      rd[static_cast<int64_t>(r) * width + j] = 1.0f;
    }
  }
  return rows;
}

tensor::Tensor ItemRows(const graph::MultiBehaviorGraph& graph,
                        const std::vector<int64_t>& items, int64_t behavior) {
  tensor::Tensor rows(
      {static_cast<int64_t>(items.size()), graph.num_users()});
  float* rd = rows.data();
  int64_t width = graph.num_users();
  for (size_t r = 0; r < items.size(); ++r) {
    for (int64_t u : graph.UsersOf(items[r], behavior)) {
      rd[static_cast<int64_t>(r) * width + u] = 1.0f;
    }
  }
  return rows;
}

std::vector<int64_t> AllIds(int64_t n) {
  std::vector<int64_t> out(static_cast<size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

}  // namespace baselines
}  // namespace gnmr
