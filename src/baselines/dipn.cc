#include "src/baselines/dipn.h"

#include <algorithm>

#include "src/baselines/common.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace baselines {

// -------------------------------------------------------------------- GRU ----

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : hidden_dim_(hidden_dim) {
  xz_ = std::make_unique<nn::Linear>(input_dim, hidden_dim, true, rng);
  hz_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, false, rng);
  xr_ = std::make_unique<nn::Linear>(input_dim, hidden_dim, true, rng);
  hr_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, false, rng);
  xh_ = std::make_unique<nn::Linear>(input_dim, hidden_dim, true, rng);
  hh_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, false, rng);
}

ad::Var GruCell::Step(const ad::Var& x, const ad::Var& h) const {
  ad::Var z = ad::Sigmoid(ad::Add(xz_->Forward(x), hz_->Forward(h)));
  ad::Var r = ad::Sigmoid(ad::Add(xr_->Forward(x), hr_->Forward(h)));
  ad::Var candidate =
      ad::Tanh(ad::Add(xh_->Forward(x), hh_->Forward(ad::Mul(r, h))));
  // h' = (1 - z) * h + z * candidate
  ad::Var keep = ad::Mul(ad::AddScalar(ad::Neg(z), 1.0f), h);
  return ad::Add(keep, ad::Mul(z, candidate));
}

std::vector<ad::Var> GruCell::Parameters() const {
  std::vector<ad::Var> out;
  for (const nn::Linear* l : {xz_.get(), hz_.get(), xr_.get(), hr_.get(),
                              xh_.get(), hh_.get()}) {
    auto p = l->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

// ------------------------------------------------------------------- DIPN ----

ad::Var DIPN::UserIntent(const std::vector<int64_t>& users) const {
  int64_t batch = static_cast<int64_t>(users.size());
  int64_t d = config_.embedding_dim;
  int64_t max_t = config_.max_sequence_length;

  ad::Var p_u = user_emb_->Lookup(users);  // [B, d]

  // Encode each behavior's sequence with its GRU (oldest -> newest),
  // masking padded steps so short sequences keep their last real state.
  std::vector<ad::Var> states;
  states.reserve(static_cast<size_t>(num_behaviors_));
  for (int64_t k = 0; k < num_behaviors_; ++k) {
    ad::Var h = ad::Var::Constant(tensor::Tensor({batch, d}));
    for (int64_t t = 0; t < max_t; ++t) {
      std::vector<int64_t> step_items(static_cast<size_t>(batch), 0);
      tensor::Tensor mask({batch, 1});
      bool any = false;
      for (int64_t b = 0; b < batch; ++b) {
        const auto& seq =
            sequences_[static_cast<size_t>(k)]
                      [static_cast<size_t>(users[static_cast<size_t>(b)])];
        if (t < static_cast<int64_t>(seq.size())) {
          step_items[static_cast<size_t>(b)] = seq[static_cast<size_t>(t)];
          mask.at(b, 0) = 1.0f;
          any = true;
        }
      }
      if (!any) break;
      ad::Var x = item_emb_->Lookup(step_items);
      ad::Var h_new = grus_[static_cast<size_t>(k)]->Step(x, h);
      ad::Var m = ad::Var::Constant(std::move(mask));
      // h = m * h_new + (1 - m) * h
      ad::Var keep = ad::Mul(ad::AddScalar(ad::Neg(m), 1.0f), h);
      h = ad::Add(ad::Mul(m, h_new), keep);
    }
    states.push_back(h);
  }

  // Inter-behavior attention queried by the user embedding.
  std::vector<ad::Var> logits;
  logits.reserve(states.size());
  for (const ad::Var& h : states) {
    ad::Var e = ad::Tanh(ad::Add(attn_state_->Forward(h),
                                 attn_user_->Forward(p_u)));
    logits.push_back(attn_out_->Forward(e));  // [B, 1]
  }
  ad::Var attn = ad::SoftmaxRows(ad::ConcatCols(logits));  // [B, K]
  ad::Var pooled;
  for (size_t k = 0; k < states.size(); ++k) {
    ad::Var w = ad::SliceCols(attn, static_cast<int64_t>(k), 1);
    ad::Var term = ad::Mul(states[k], w);
    pooled = pooled.defined() ? ad::Add(pooled, term) : term;
  }
  return ad::Add(pooled, p_u);
}

std::vector<ad::Var> DIPN::Parameters() const {
  std::vector<ad::Var> out = {item_emb_->table(), user_emb_->table(),
                              item_bias_->table()};
  for (const auto& gru : grus_) {
    auto p = gru->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (const nn::Linear* l :
       {attn_state_.get(), attn_user_.get(), attn_out_.get()}) {
    auto p = l->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void DIPN::Fit(const data::Dataset& train) {
  GNMR_CHECK(train.Validate().ok());
  util::Rng rng(config_.seed);
  auto graph = train.BuildGraph();
  graph::NegativeSampler sampler(graph.get(), train.target_behavior);
  num_behaviors_ = train.num_behaviors();
  int64_t d = config_.embedding_dim;

  // Build per-(behavior, user) time-ordered sequences, truncated to the
  // most recent max_sequence_length events.
  sequences_.assign(
      static_cast<size_t>(num_behaviors_),
      std::vector<std::vector<int64_t>>(static_cast<size_t>(train.num_users)));
  {
    std::vector<graph::Interaction> sorted = train.interactions;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const graph::Interaction& a,
                        const graph::Interaction& b) {
                       return a.timestamp < b.timestamp;
                     });
    for (const graph::Interaction& e : sorted) {
      sequences_[static_cast<size_t>(e.behavior)]
                [static_cast<size_t>(e.user)].push_back(e.item);
    }
    for (auto& per_behavior : sequences_) {
      for (auto& seq : per_behavior) {
        if (static_cast<int64_t>(seq.size()) > config_.max_sequence_length) {
          seq.erase(seq.begin(),
                    seq.end() - config_.max_sequence_length);
        }
      }
    }
  }

  item_emb_ = std::make_unique<nn::Embedding>(train.num_items, d, &rng);
  user_emb_ = std::make_unique<nn::Embedding>(train.num_users, d, &rng);
  item_bias_ = std::make_unique<nn::Embedding>(train.num_items, 1, &rng, 0.0f);
  for (int64_t k = 0; k < num_behaviors_; ++k) {
    grus_.push_back(std::make_unique<GruCell>(d, d, &rng));
  }
  attn_state_ = std::make_unique<nn::Linear>(d, d, true, &rng);
  attn_user_ = std::make_unique<nn::Linear>(d, d, false, &rng);
  attn_out_ = std::make_unique<nn::Linear>(d, 1, false, &rng);

  std::vector<ad::Var> params = Parameters();
  nn::Adam opt(config_.learning_rate, 0.9, 0.999, 1e-8, config_.weight_decay);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto batches = SampleTripletEpoch(*graph, sampler, train.target_behavior,
                                      config_.batch_size,
                                      config_.negatives_per_positive, &rng,
                                      config_.samples_per_user);
    for (const TripletBatch& b : batches) {
      ad::Var intent = UserIntent(b.users);  // [B, d]
      auto score = [&](const std::vector<int64_t>& items) {
        return ad::Add(ad::RowDot(intent, item_emb_->Lookup(items)),
                       item_bias_->Lookup(items));
      };
      ad::Var loss = ad::BprLoss(score(b.pos_items), score(b.neg_items));
      ad::Backward(loss);
      opt.Step(params);
    }
  }

  // Cache the intent representation of every user for fast scoring.
  cached_intent_ = tensor::Tensor({train.num_users, d});
  int64_t batch = 256;
  for (int64_t start = 0; start < train.num_users; start += batch) {
    int64_t end = std::min(train.num_users, start + batch);
    std::vector<int64_t> ids;
    for (int64_t u = start; u < end; ++u) ids.push_back(u);
    ad::Var intent = UserIntent(ids);
    std::copy(intent.value().data(),
              intent.value().data() + intent.value().numel(),
              cached_intent_.data() + start * d);
  }
}

void DIPN::ScoreItems(int64_t user, const std::vector<int64_t>& items,
                      float* out) {
  GNMR_CHECK(!cached_intent_.empty()) << "Fit() before ScoreItems()";
  int64_t d = cached_intent_.cols();
  const float* u = cached_intent_.data() + user * d;
  const tensor::Tensor& q = item_emb_->table().value();
  const tensor::Tensor& bias = item_bias_->table().value();
  for (size_t i = 0; i < items.size(); ++i) {
    double acc = bias.at(items[i], 0);
    for (int64_t c = 0; c < d; ++c) {
      acc += static_cast<double>(u[c]) * q.at(items[i], c);
    }
    out[i] = static_cast<float>(acc);
  }
}

}  // namespace baselines
}  // namespace gnmr
