// BiasMF [Koren et al. 2009]: matrix factorisation with user and item bias
// terms, trained with the pairwise BPR objective on the target behavior.
#ifndef GNMR_BASELINES_BIAS_MF_H_
#define GNMR_BASELINES_BIAS_MF_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/nn/embedding.h"

namespace gnmr {
namespace baselines {

/// score(u, i) = b_u + b_i + p_u . q_i
class BiasMF : public Recommender {
 public:
  explicit BiasMF(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "BiasMF"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  BaselineConfig config_;
  std::unique_ptr<nn::Embedding> user_emb_, item_emb_;
  std::unique_ptr<nn::Embedding> user_bias_, item_bias_;
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_BIAS_MF_H_
