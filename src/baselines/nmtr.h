// NMTR [Gao et al., ICDE 2019]: neural multi-task recommendation from
// multi-behavior data. Users and items share one embedding pair across all
// behavior types; each behavior k gets its own GMF-style interaction
// function, and predictions CASCADE along the engagement chain:
//
//   logit_k(u,i) = h_k^T (p_u o q_i) + b_k + w_k * logit_{k-1}(u,i)
//
// (behaviors ordered with the target last; w_k is a learnable coupling so
// weakly-related behaviors, e.g. "dislike", can decouple). Training is
// multi-task BCE: every behavior contributes its own positives and
// sampled negatives.
#ifndef GNMR_BASELINES_NMTR_H_
#define GNMR_BASELINES_NMTR_H_

#include <memory>

#include "src/baselines/recommender.h"
#include "src/graph/interaction_graph.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"

namespace gnmr {
namespace baselines {

class NMTR : public Recommender {
 public:
  explicit NMTR(const BaselineConfig& config) : config_(config) {}
  std::string name() const override { return "NMTR"; }
  void Fit(const data::Dataset& train) override;
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override;

 private:
  /// Cascaded logits up to and including cascade position `upto`.
  ad::Var CascadeLogit(const std::vector<int64_t>& users,
                       const std::vector<int64_t>& items, size_t upto) const;

  BaselineConfig config_;
  std::shared_ptr<graph::MultiBehaviorGraph> graph_;
  std::unique_ptr<nn::Embedding> user_emb_, item_emb_;
  /// Per cascade position: the GMF head (d -> 1 with bias).
  std::vector<std::unique_ptr<nn::Linear>> heads_;
  /// Learnable cascade couplings w_k (position k couples to k-1).
  std::vector<ad::Var> couplings_;
  /// Behavior ids in cascade order (target last).
  std::vector<int64_t> cascade_order_;
};

}  // namespace baselines
}  // namespace gnmr

#endif  // GNMR_BASELINES_NMTR_H_
