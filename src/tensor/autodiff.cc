#include "src/tensor/autodiff.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "src/tensor/tensor_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace ad {

namespace {
std::atomic<uint64_t> g_next_node_id{1};
}  // namespace

void Node::EnsureGrad() {
  if (grad.empty()) grad = tensor::Tensor(value.shape());
}

void Node::AccumulateGrad(const tensor::Tensor& g) {
  GNMR_CHECK(g.shape() == value.shape())
      << "grad shape " << g.ShapeString() << " vs value "
      << value.ShapeString();
  EnsureGrad();
  float* gd = grad.data();
  const float* sd = g.data();
  int64_t n = grad.numel();
  for (int64_t i = 0; i < n; ++i) gd[i] += sd[i];
}

Var::Var(tensor::Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->id = g_next_node_id.fetch_add(1, std::memory_order_relaxed);
}

const tensor::Tensor& Var::value() const {
  GNMR_CHECK(defined()) << "value() on a null Var";
  return node_->value;
}

tensor::Tensor* Var::mutable_value() {
  GNMR_CHECK(defined()) << "mutable_value() on a null Var";
  return &node_->value;
}

const tensor::Tensor& Var::grad() const {
  GNMR_CHECK(has_grad()) << "grad() on a Var without gradient";
  return node_->grad;
}

void Var::ZeroGrad() {
  GNMR_CHECK(defined());
  if (node_->has_grad()) node_->grad.Fill(0.0f);
}

Var MakeOpVar(tensor::Tensor value, std::vector<Var> inputs,
              std::function<void(Node*)> backward) {
  bool needs_grad = false;
  for (const Var& v : inputs) {
    GNMR_CHECK(v.defined()) << "op input is a null Var";
    needs_grad = needs_grad || v.requires_grad();
  }
  Var out(std::move(value), needs_grad);
  if (needs_grad) {
    auto node = out.node();
    node->inputs.reserve(inputs.size());
    for (const Var& v : inputs) node->inputs.push_back(v.node());
    node->backward_fn = std::move(backward);
  }
  return out;
}

void Backward(const Var& root) {
  GNMR_CHECK(root.defined());
  GNMR_CHECK_EQ(root.value().numel(), 1)
      << "Backward() root must be scalar; use BackwardWithGrad";
  BackwardWithGrad(root, tensor::Tensor::Ones(root.value().shape()));
}

void BackwardWithGrad(const Var& root, const tensor::Tensor& seed) {
  GNMR_CHECK(root.defined());
  GNMR_CHECK(seed.shape() == root.value().shape());
  if (!root.requires_grad()) return;

  // Iterative post-order DFS to collect reachable grad-requiring nodes.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  Node* root_node = root.node().get();
  stack.push_back({root_node, 0});
  visited.insert(root_node);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.node->inputs.size()) {
      Node* child = f.node->inputs[f.next_input++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  // Post-order gives children before parents; run parents first.
  // Creation ids are monotone along dataflow, so sorting by id descending is
  // also a valid reverse-topological order and keeps execution deterministic
  // regardless of DFS tie-breaking.
  std::sort(order.begin(), order.end(),
            [](const Node* a, const Node* b) { return a->id > b->id; });

  root_node->AccumulateGrad(seed);
  for (Node* n : order) {
    if (n->backward_fn && n->has_grad()) {
      n->backward_fn(n);
    }
  }
}

}  // namespace ad
}  // namespace gnmr
