#include "src/tensor/kmeans.h"

#include <algorithm>

#include "src/tensor/backend.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace gnmr {
namespace tensor {

namespace {

// Argmin of squared distance per row, ties to the lowest centroid id.
// ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 and ||x||^2 is constant per row,
// so rows compare on cnorm[j] - 2 * cross[i][j]. cross and cnorm come out
// of the backend kernels bit-identical on every backend, and this
// reduction is a pure function of them, so the winning id is too.
int64_t AssignRows(const float* cross, const float* cnorm, int64_t n,
                   int64_t k, std::vector<int64_t>* assignments) {
  int64_t changed = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float* crow = cross + i * k;
    int64_t best = 0;
    double best_d = static_cast<double>(cnorm[0]) - 2.0 * crow[0];
    for (int64_t j = 1; j < k; ++j) {
      double dj = static_cast<double>(cnorm[j]) - 2.0 * crow[j];
      if (dj < best_d) {
        best = j;
        best_d = dj;
      }
    }
    if ((*assignments)[static_cast<size_t>(i)] != best) {
      (*assignments)[static_cast<size_t>(i)] = best;
      ++changed;
    }
  }
  return changed;
}

// k-means++ D^2 seeding. Distances compose in double from the backend's
// float RowDot norms and QueryDot cross terms — both bit-identical on
// every backend — and the draws come from the caller's fixed-seed Rng, so
// the seed set is a pure function of (data, seed) like the uniform draw.
std::vector<int64_t> PlusPlusSeeds(const KernelBackend& backend,
                                   const float* rows, int64_t n, int64_t d,
                                   int64_t k, util::Rng* rng) {
  std::vector<float> norms(static_cast<size_t>(n));
  backend.RowDot(rows, rows, norms.data(), n, d);
  std::vector<float> dots(static_cast<size_t>(n));
  // Squared distance to the nearest chosen center so far; doubles as the
  // unnormalised D^2 weight vector (chosen rows pin to exactly 0).
  std::vector<double> best_d2(static_cast<size_t>(n));
  std::vector<char> chosen(static_cast<size_t>(n), 0);
  std::vector<int64_t> seeds;
  seeds.reserve(static_cast<size_t>(k));
  seeds.push_back(rng->UniformInt(0, n - 1));
  chosen[static_cast<size_t>(seeds.back())] = 1;
  double total = 0.0;
  while (true) {
    // Fold the latest center into the nearest-center distances:
    // ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, clamped against the float
    // cancellation that could push a tiny true distance below zero.
    const int64_t c = seeds.back();
    backend.QueryDot(rows + c * d, rows, dots.data(), n, d);
    const double cnorm = static_cast<double>(norms[static_cast<size_t>(c)]);
    total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const size_t si = static_cast<size_t>(i);
      double dist = chosen[si]
                        ? 0.0
                        : static_cast<double>(norms[si]) -
                              2.0 * static_cast<double>(dots[si]) + cnorm;
      if (dist < 0.0) dist = 0.0;
      if (seeds.size() > 1) dist = std::min(dist, best_d2[si]);
      best_d2[si] = dist;
      total += dist;
    }
    if (static_cast<int64_t>(seeds.size()) == k) break;
    int64_t next = -1;
    if (total > 0.0) {
      next = static_cast<int64_t>(rng->Categorical(best_d2));
    }
    if (next < 0 || chosen[static_cast<size_t>(next)]) {
      // Every remaining row coincides with a center (total == 0), or the
      // draw landed on a zero-weight bucket at the numerical edge: take
      // the lowest unchosen row — deterministic either way.
      for (int64_t i = 0; i < n; ++i) {
        if (!chosen[static_cast<size_t>(i)]) {
          next = i;
          break;
        }
      }
    }
    seeds.push_back(next);
    chosen[static_cast<size_t>(next)] = 1;
  }
  return seeds;
}

}  // namespace

KMeansResult KMeansRows(const float* rows, int64_t n, int64_t d, int64_t k,
                        const KMeansOptions& options) {
  GNMR_CHECK(rows != nullptr);
  GNMR_CHECK_GE(n, 1);
  GNMR_CHECK_GE(d, 1);
  GNMR_CHECK(k >= 1 && k <= n) << "k must be in [1, n], got k=" << k
                               << " n=" << n;
  GNMR_CHECK_GE(options.max_iters, 1);
  const KernelBackend& backend = GetBackend();

  KMeansResult result;
  result.centroids = Tensor({k, d});
  result.assignments.assign(static_cast<size_t>(n), -1);
  result.sizes.assign(static_cast<size_t>(k), 0);

  // Initial centroids: k distinct input rows, drawn by the fixed seed
  // (uniformly or by D^2 sampling) and sorted so centroid ids are
  // independent of the draw order.
  util::Rng rng(options.seed);
  std::vector<int64_t> seeds =
      options.plusplus_init
          ? PlusPlusSeeds(backend, rows, n, d, k, &rng)
          : rng.SampleWithoutReplacement(n, k);
  std::sort(seeds.begin(), seeds.end());
  backend.GatherRows(rows, d, seeds.data(), k, result.centroids.data());

  Tensor centroids_t({d, k});      // centroids^T, rebuilt per iteration
  Tensor cross({n, k});            // rows x centroids^T
  std::vector<float> cnorm(static_cast<size_t>(k));
  Tensor sums({k, d});

  for (int64_t iter = 0; iter < options.max_iters; ++iter) {
    // Assign: distances through MatMul + RowDot.
    const float* c = result.centroids.data();
    float* ct = centroids_t.data();
    for (int64_t j = 0; j < k; ++j) {
      for (int64_t col = 0; col < d; ++col) {
        ct[col * k + j] = c[j * d + col];
      }
    }
    cross.Fill(0.0f);
    backend.MatMul(rows, centroids_t.data(), cross.data(), n, d, k);
    backend.RowDot(c, c, cnorm.data(), k, d);
    int64_t changed =
        AssignRows(cross.data(), cnorm.data(), n, k, &result.assignments);
    result.iterations = iter + 1;
    if (changed == 0) {
      // The centroids already reflect these assignments (previous update
      // pass) — Lloyd's fixed point.
      result.converged = true;
      break;
    }

    // Update: per-cluster sums through ScatterAddRows, then a float divide
    // per element. Empty clusters keep their previous centroid.
    sums.Fill(0.0f);
    backend.ScatterAddRows(sums.data(), k, d, result.assignments.data(), n,
                           rows);
    std::fill(result.sizes.begin(), result.sizes.end(), int64_t{0});
    for (int64_t i = 0; i < n; ++i) {
      ++result.sizes[static_cast<size_t>(result.assignments[
          static_cast<size_t>(i)])];
    }
    float* cm = result.centroids.data();
    const float* sm = sums.data();
    for (int64_t j = 0; j < k; ++j) {
      const int64_t count = result.sizes[static_cast<size_t>(j)];
      if (count == 0) continue;
      const float inv = 1.0f / static_cast<float>(count);
      for (int64_t col = 0; col < d; ++col) {
        cm[j * d + col] = sm[j * d + col] * inv;
      }
    }
  }

  // sizes already reflect the final assignments on every exit path: the
  // converged break fires only when the assign pass changed nothing (so
  // the previous update pass counted exactly these assignments), and the
  // max_iters exit runs its update pass last.
  return result;
}

KMeansResult KMeansRows(const Tensor& rows, int64_t k,
                        const KMeansOptions& options) {
  GNMR_CHECK_EQ(rows.rank(), 2);
  return KMeansRows(rows.data(), rows.rows(), rows.cols(), k, options);
}

}  // namespace tensor
}  // namespace gnmr
