// Optional BLAS-backed MatMul behind the "blas" backend, compiled only
// when configured with -DGNMR_BLAS=ON and a BLAS library is found (see
// the root CMakeLists.txt). Benchmark-only: vendor sgemm blocks and
// re-associates the k-sum however it likes, so this is the one registered
// backend that does NOT honor the bit-identical-to-serial contract —
// bit_exact() is false, results agree with serial only to rounding.
// Everything except MatMul runs the shared serial reference bodies.
//
// The Fortran sgemm_ symbol is declared directly instead of going through
// cblas.h so any reference BLAS / OpenBLAS / vendor library links without
// needing its C headers installed.
#include "src/tensor/backend.h"

#ifdef GNMR_HAVE_BLAS

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/tensor/backend_kernels.h"
#include "src/tensor/kernel_tunables.h"

extern "C" void sgemm_(const char* transa, const char* transb, const int* m,
                       const int* n, const int* k, const float* alpha,
                       const float* a, const int* lda, const float* b,
                       const int* ldb, const float* beta, float* c,
                       const int* ldc);

namespace gnmr {
namespace tensor {

namespace {

class BlasBackend : public KernelBackend {
 public:
  const char* name() const override { return "blas"; }
  bool bit_exact() const override { return false; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    if (n == 0 || m == 0) return;
    if (k == 0) return;  // out stays zero-initialised
    // Row-major C = A*B via the column-major identity C^T = B^T * A^T:
    // a row-major array read column-major IS its transpose, so pass
    // (b, a) and receive C^T laid out exactly as row-major C.
    const int im = static_cast<int>(m);
    const int in_ = static_cast<int>(n);
    const int ik = static_cast<int>(k);
    const float alpha = 1.0f;
    const float beta = 0.0f;
    sgemm_("N", "N", &im, &in_, &ik, &alpha, b, &im, a, &ik, &beta, out,
           &im);
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    for (int64_t i = 0; i < a.rows(); ++i) {
      kernels::SpmmRow(a, x, out + i * d, i, d);
    }
  }

  void GatherRows(const float* a, int64_t m, const int64_t* idx,
                  int64_t count, float* out) const override {
    kernels::GatherRowRange(a, m, idx, out, 0, count);
  }

  void ScatterAddRows(float* target, int64_t rows, int64_t m,
                      const int64_t* idx, int64_t count,
                      const float* src) const override {
    kernels::ScatterAddRowRange(target, m, idx, count, src, 0, rows);
  }

  void RowDot(const float* a, const float* b, float* out, int64_t n,
              int64_t m) const override {
    for (int64_t i = 0; i < n; ++i) {
      out[i] =
          static_cast<float>(kernels::RowDotOne(a + i * m, b + i * m, m));
    }
  }

  void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                  float p) const override {
    f(in, out, n, p);
  }

  void EltwiseZip(const float* a, const float* b, float* out, int64_t n,
                  ZipFn f, float p) const override {
    f(a, b, out, n, p);
  }

  double ReduceSum(const float* in, int64_t n) const override {
    double total = 0.0;
    for (int64_t start = 0; start < n; start += kReduceSumChunk) {
      total +=
          kernels::ChunkSum(in, start, std::min(n, start + kReduceSumChunk));
    }
    return total;
  }
};

}  // namespace

const KernelBackend* BlasBackendInstance() {
  static const BlasBackend backend;
  return &backend;
}

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_HAVE_BLAS
