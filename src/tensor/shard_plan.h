// Row-range shard plans: how the sharded execution layer partitions the
// row dimension of a kernel across workers.
//
// A ShardPlan is an ordered list of disjoint, covering [begin, end) row
// ranges. Two partitioners are provided:
//
//   Uniform      — equal row counts; right for dense kernels whose cost is
//                  proportional to the row count (MatMul, GatherRows,
//                  RowDot, elementwise ranges).
//   NnzBalanced  — equal stored-entry counts over a CSR row_ptr; right for
//                  SpMM over power-law interaction graphs, where a handful
//                  of heavy users would otherwise serialize one shard.
//
// Both partitioners respect a minimum shard width and never produce more
// shards than rows, so a plan is safe to hand straight to the shard pool.
// Plans are plain data: building one never touches the matrix values, and
// CsrMatrix::RowRangeView turns a range into a zero-copy view for the
// worker that owns it.
#ifndef GNMR_TENSOR_SHARD_PLAN_H_
#define GNMR_TENSOR_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/tensor/sparse.h"

namespace gnmr {
namespace tensor {

/// One contiguous row range [begin, end) plus the stored-entry count the
/// partitioner attributed to it (0 for uniform plans without a matrix).
struct ShardRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t nnz = 0;

  int64_t rows() const { return end - begin; }
};

/// An ordered, disjoint, covering partition of [0, total_rows).
class ShardPlan {
 public:
  ShardPlan() = default;

  /// Partition [0, rows) into at most `num_shards` equal-width ranges of at
  /// least `min_rows` rows each (the last range absorbs the remainder).
  /// rows == 0 yields an empty plan; num_shards < 1 is clamped to 1.
  static ShardPlan Uniform(int64_t rows, int64_t num_shards,
                           int64_t min_rows = 1);

  /// Partition [0, rows) so every range holds roughly total_nnz/num_shards
  /// stored entries, where row r holds row_ptr[r+1] - row_ptr[r] entries.
  /// Greedy with an adaptive target: each cut re-aims at the remaining
  /// nnz / remaining shards, so light prefixes don't starve the tail.
  /// Ranges keep at least `min_rows` rows (subject to num_shards * min_rows
  /// <= rows, else the shard count shrinks).
  static ShardPlan NnzBalanced(const int64_t* row_ptr, int64_t rows,
                               int64_t num_shards, int64_t min_rows = 1);

  /// NnzBalanced over a CSR matrix's row pointer.
  static ShardPlan NnzBalanced(const CsrMatrix& m, int64_t num_shards,
                               int64_t min_rows = 1);

  int64_t num_shards() const { return static_cast<int64_t>(ranges_.size()); }
  int64_t total_rows() const { return total_rows_; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }
  const ShardRange& shard(int64_t s) const {
    return ranges_[static_cast<size_t>(s)];
  }

  /// Aborts unless the ranges are ordered, disjoint, non-empty and exactly
  /// cover [0, total_rows). Cheap; called by tests and debug paths.
  void CheckInvariants() const;

 private:
  int64_t total_rows_ = 0;
  std::vector<ShardRange> ranges_;
};

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_SHARD_PLAN_H_
