#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace gnmr {
namespace tensor {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  GNMR_CHECK(!shape.empty()) << "rank-0 shapes are not supported";
  int64_t n = 1;
  for (int64_t d : shape) {
    GNMR_CHECK_GT(d, 0) << "shape dims must be positive";
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeNumel(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data) {
  int64_t n = ShapeNumel(shape);
  GNMR_CHECK_EQ(n, static_cast<int64_t>(data.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::FromView(std::vector<int64_t> shape, const float* data,
                        std::shared_ptr<const void> keepalive) {
  int64_t n = ShapeNumel(shape);
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = Storage<float>::View(data, n, std::move(keepalive));
  return t;
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, util::Rng* rng,
                            float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data_.mutable_data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng->Normal(mean, stddev);
  return t;
}

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, util::Rng* rng,
                             float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data_.mutable_data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng->Uniform(lo, hi);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  GNMR_CHECK_GE(i, 0);
  GNMR_CHECK_LT(i, rank());
  return shape_[static_cast<size_t>(i)];
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

int64_t Tensor::rows() const {
  GNMR_CHECK_EQ(rank(), 2);
  return shape_[0];
}

int64_t Tensor::cols() const {
  GNMR_CHECK_EQ(rank(), 2);
  return shape_[1];
}

float& Tensor::at(int64_t i) {
  GNMR_CHECK_EQ(rank(), 1);
  GNMR_CHECK(i >= 0 && i < shape_[0]) << "index " << i;
  return data_.mutable_data()[i];
}

float Tensor::at(int64_t i) const {
  GNMR_CHECK_EQ(rank(), 1);
  GNMR_CHECK(i >= 0 && i < shape_[0]) << "index " << i;
  return data_[static_cast<size_t>(i)];
}

float& Tensor::at(int64_t i, int64_t j) {
  GNMR_CHECK_EQ(rank(), 2);
  GNMR_CHECK(i >= 0 && i < shape_[0]) << "row " << i;
  GNMR_CHECK(j >= 0 && j < shape_[1]) << "col " << j;
  return data_.mutable_data()[i * shape_[1] + j];
}

float Tensor::at(int64_t i, int64_t j) const {
  GNMR_CHECK_EQ(rank(), 2);
  GNMR_CHECK(i >= 0 && i < shape_[0]) << "row " << i;
  GNMR_CHECK(j >= 0 && j < shape_[1]) << "col " << j;
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  GNMR_CHECK_EQ(rank(), 3);
  GNMR_CHECK(i >= 0 && i < shape_[0]) << "dim0 " << i;
  GNMR_CHECK(j >= 0 && j < shape_[1]) << "dim1 " << j;
  GNMR_CHECK(k >= 0 && k < shape_[2]) << "dim2 " << k;
  return data_.mutable_data()[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  GNMR_CHECK_EQ(rank(), 3);
  GNMR_CHECK(i >= 0 && i < shape_[0]) << "dim0 " << i;
  GNMR_CHECK(j >= 0 && j < shape_[1]) << "dim1 " << j;
  GNMR_CHECK(k >= 0 && k < shape_[2]) << "dim2 " << k;
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

void Tensor::Fill(float value) {
  float* p = data_.mutable_data();
  std::fill(p, p + numel(), value);
}

Tensor Tensor::OwnedCopy() const {
  std::vector<float> copy(data_.begin(), data_.end());
  return FromData(shape_, std::move(copy));
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  GNMR_CHECK_EQ(ShapeNumel(new_shape), numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

float Tensor::SumValue() const {
  // Double accumulation: reductions feed metrics and losses, keep them
  // stable.
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v);
  return static_cast<float>(sum);
}

float Tensor::MeanValue() const {
  GNMR_CHECK_GT(numel(), 0);
  return SumValue() / static_cast<float>(numel());
}

float Tensor::MaxValue() const {
  GNMR_CHECK_GT(numel(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::MinValue() const {
  GNMR_CHECK_GT(numel(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::L2Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

bool Tensor::HasNonFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace tensor
}  // namespace gnmr
