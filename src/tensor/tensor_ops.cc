#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/tensor/backend.h"
#include "src/tensor/element_ops.h"

namespace gnmr {
namespace tensor {
namespace ops {

namespace {

// Pads `shape` on the left with 1s to `rank` dims.
std::vector<int64_t> PadShape(const std::vector<int64_t>& shape, size_t rank) {
  GNMR_CHECK_LE(shape.size(), rank);
  std::vector<int64_t> out(rank, 1);
  std::copy(shape.begin(), shape.end(),
            out.begin() + static_cast<int64_t>(rank - shape.size()));
  return out;
}

// Row-major strides with 0 stride on broadcast (size-1) dims.
std::vector<int64_t> BroadcastStrides(const std::vector<int64_t>& padded,
                                      const std::vector<int64_t>& out_shape) {
  std::vector<int64_t> strides(padded.size(), 0);
  int64_t s = 1;
  for (int64_t i = static_cast<int64_t>(padded.size()) - 1; i >= 0; --i) {
    size_t ui = static_cast<size_t>(i);
    strides[ui] = (padded[ui] == 1 && out_shape[ui] != 1) ? 0 : s;
    s *= padded[ui];
  }
  return strides;
}

// Element bodies live in element_ops.h (shared with ad_ops.cc and the SIMD
// backend's vector twins) and parameterize the shared MapLoop/ZipLoop
// templates (backend.h) as compile-time constants: the backend receives a
// pointer to an instantiated loop whose per-element body is fully inlined
// and vectorised, and pays one indirect call per range.
using ElMapFn = float (*)(float x, float p);
using ElZipFn = float (*)(float x, float y, float p);

// Binary elementwise with broadcasting. The contiguous same-shape case —
// the hot path (layer outputs, gradients) — dispatches to the backend's
// EltwiseZip; strided broadcasts (bias rows, column vectors) stay serial
// here since they touch little data.
template <ElZipFn F>
Tensor BinaryBroadcast(const Tensor& a, const Tensor& b, float p = 0.0f) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    GetBackend().EltwiseZip(a.data(), b.data(), out.data(), a.numel(),
                            ZipLoop<F>, p);
    return out;
  }
  std::vector<int64_t> out_shape = BroadcastShapes(a.shape(), b.shape());
  size_t rank = out_shape.size();
  std::vector<int64_t> pa = PadShape(a.shape(), rank);
  std::vector<int64_t> pb = PadShape(b.shape(), rank);
  std::vector<int64_t> sa = BroadcastStrides(pa, out_shape);
  std::vector<int64_t> sb = BroadcastStrides(pb, out_shape);

  Tensor out(out_shape);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();

  if (rank == 1) {
    for (int64_t i = 0; i < out_shape[0]; ++i) {
      od[i] = F(ad[i * sa[0]], bd[i * sb[0]], p);
    }
    return out;
  }
  GNMR_CHECK_EQ(rank, 2u) << "broadcast supports rank <= 2";
  int64_t n = out_shape[0];
  int64_t m = out_shape[1];
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = ad + i * sa[0];
    const float* brow = bd + i * sb[0];
    float* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] = F(arow[j * sa[1]], brow[j * sb[1]], p);
    }
  }
  return out;
}

template <ElMapFn F>
Tensor UnaryOp(const Tensor& a, float p = 0.0f) {
  Tensor out(a.shape());
  GetBackend().EltwiseMap(a.data(), out.data(), a.numel(), MapLoop<F>, p);
  return out;
}

}  // namespace

std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b) {
  GNMR_CHECK(!a.empty() && !b.empty());
  GNMR_CHECK(a.size() <= 2 && b.size() <= 2)
      << "broadcast supports rank <= 2";
  size_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> pa = PadShape(a, rank);
  std::vector<int64_t> pb = PadShape(b, rank);
  std::vector<int64_t> out(rank);
  for (size_t i = 0; i < rank; ++i) {
    if (pa[i] == pb[i]) {
      out[i] = pa[i];
    } else if (pa[i] == 1) {
      out[i] = pb[i];
    } else if (pb[i] == 1) {
      out[i] = pa[i];
    } else {
      GNMR_CHECK(false) << "incompatible broadcast dims " << pa[i] << " vs "
                        << pb[i];
    }
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t,
                     const std::vector<int64_t>& target_shape) {
  // Verify target broadcasts to t's shape.
  std::vector<int64_t> check = BroadcastShapes(t.shape(), target_shape);
  GNMR_CHECK(check == t.shape())
      << "target " << Tensor::Zeros(target_shape).ShapeString()
      << " does not broadcast to " << t.ShapeString();
  if (t.shape() == target_shape) return t;

  size_t rank = t.shape().size();
  std::vector<int64_t> pt = PadShape(target_shape, rank);
  Tensor out(pt);
  const float* td = t.data();
  float* od = out.data();
  if (rank == 1) {
    // target dim is 1, t dim is n
    double acc = 0.0;
    for (int64_t i = 0; i < t.dim(0); ++i) acc += td[i];
    od[0] = static_cast<float>(acc);
  } else {
    int64_t n = t.dim(0);
    int64_t m = t.dim(1);
    bool reduce_rows = (pt[0] == 1 && n != 1);
    bool reduce_cols = (pt[1] == 1 && m != 1);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        int64_t oi = reduce_rows ? 0 : i;
        int64_t oj = reduce_cols ? 0 : j;
        od[oi * pt[1] + oj] += td[i * m + j];
      }
    }
  }
  // If the caller's target had lower rank, reshape down.
  if (target_shape.size() != rank) return out.Reshaped(target_shape);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast<&elops::AddEl>(a, b);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast<&elops::SubEl>(a, b);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast<&elops::MulEl>(a, b);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcast<&elops::DivEl>(a, b);
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp<&elops::AddScalarEl>(a, s);
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp<&elops::MulScalarEl>(a, s);
}

Tensor Neg(const Tensor& a) { return UnaryOp<&elops::NegEl>(a); }

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GNMR_CHECK_EQ(a.rank(), 2);
  GNMR_CHECK_EQ(b.rank(), 2);
  GNMR_CHECK_EQ(a.cols(), b.rows())
      << a.ShapeString() << " x " << b.ShapeString();
  int64_t n = a.rows();
  int64_t k = a.cols();
  int64_t m = b.cols();
  Tensor out({n, m});
  GetBackend().MatMul(a.data(), b.data(), out.data(), n, k, m);
  return out;
}

Tensor Transpose(const Tensor& a) {
  GNMR_CHECK_EQ(a.rank(), 2);
  int64_t n = a.rows();
  int64_t m = a.cols();
  Tensor out({m, n});
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      od[j * n + i] = ad[i * m + j];
    }
  }
  return out;
}

Tensor Relu(const Tensor& a) { return UnaryOp<&elops::ReluEl>(a); }

Tensor LeakyRelu(const Tensor& a, float alpha) {
  return UnaryOp<&elops::LeakyReluEl>(a, alpha);
}

Tensor Sigmoid(const Tensor& a) { return UnaryOp<&elops::SigmoidEl>(a); }

Tensor Tanh(const Tensor& a) { return UnaryOp<&elops::TanhEl>(a); }

Tensor Exp(const Tensor& a) { return UnaryOp<&elops::ExpEl>(a); }

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp<&elops::LogEl>(a, eps);
}

Tensor Sqrt(const Tensor& a) { return UnaryOp<&elops::SqrtEl>(a); }

Tensor Square(const Tensor& a) { return UnaryOp<&elops::SquareEl>(a); }

Tensor Softplus(const Tensor& a) { return UnaryOp<&elops::SoftplusEl>(a); }

Tensor SoftmaxRows(const Tensor& a) {
  GNMR_CHECK_EQ(a.rank(), 2);
  int64_t n = a.rows();
  int64_t m = a.cols();
  Tensor out({n, m});
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = ad + i * m;
    float* orow = od + i * m;
    float mx = arow[0];
    for (int64_t j = 1; j < m; ++j) mx = std::max(mx, arow[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] = std::exp(arow[j] - mx);
      denom += orow[j];
    }
    float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < m; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& a) {
  GNMR_CHECK_EQ(a.rank(), 2);
  int64_t n = a.rows();
  int64_t m = a.cols();
  Tensor out({n, m});
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = ad + i * m;
    float* orow = od + i * m;
    float mx = arow[0];
    for (int64_t j = 1; j < m; ++j) mx = std::max(mx, arow[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < m; ++j) denom += std::exp(arow[j] - mx);
    float lse = mx + static_cast<float>(std::log(denom));
    for (int64_t j = 0; j < m; ++j) orow[j] = arow[j] - lse;
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  return Tensor::Scalar(
      static_cast<float>(GetBackend().ReduceSum(a.data(), a.numel())));
}

Tensor MeanAll(const Tensor& a) {
  GNMR_CHECK_GT(a.numel(), 0);
  return Tensor::Scalar(
      static_cast<float>(GetBackend().ReduceSum(a.data(), a.numel()) /
                         static_cast<double>(a.numel())));
}

Tensor SumAxis(const Tensor& a, int axis) {
  GNMR_CHECK_EQ(a.rank(), 2);
  GNMR_CHECK(axis == 0 || axis == 1);
  int64_t n = a.rows();
  int64_t m = a.cols();
  const float* ad = a.data();
  if (axis == 0) {
    Tensor out({1, m});
    float* od = out.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) od[j] += ad[i * m + j];
    }
    return out;
  }
  Tensor out({n, 1});
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < m; ++j) acc += ad[i * m + j];
    od[i] = static_cast<float>(acc);
  }
  return out;
}

Tensor MeanAxis(const Tensor& a, int axis) {
  Tensor s = SumAxis(a, axis);
  float denom = axis == 0 ? static_cast<float>(a.rows())
                          : static_cast<float>(a.cols());
  return MulScalar(s, 1.0f / denom);
}

Tensor ConcatCols(const std::vector<const Tensor*>& parts) {
  GNMR_CHECK(!parts.empty());
  int64_t n = parts[0]->rows();
  int64_t total_cols = 0;
  for (const Tensor* p : parts) {
    GNMR_CHECK_EQ(p->rank(), 2);
    GNMR_CHECK_EQ(p->rows(), n);
    total_cols += p->cols();
  }
  Tensor out({n, total_cols});
  float* od = out.data();
  int64_t col_off = 0;
  for (const Tensor* p : parts) {
    int64_t m = p->cols();
    const float* pd = p->data();
    for (int64_t i = 0; i < n; ++i) {
      std::copy(pd + i * m, pd + (i + 1) * m, od + i * total_cols + col_off);
    }
    col_off += m;
  }
  return out;
}

Tensor ConcatRows(const std::vector<const Tensor*>& parts) {
  GNMR_CHECK(!parts.empty());
  int64_t m = parts[0]->cols();
  int64_t total_rows = 0;
  for (const Tensor* p : parts) {
    GNMR_CHECK_EQ(p->rank(), 2);
    GNMR_CHECK_EQ(p->cols(), m);
    total_rows += p->rows();
  }
  Tensor out({total_rows, m});
  float* od = out.data();
  int64_t row_off = 0;
  for (const Tensor* p : parts) {
    std::copy(p->data(), p->data() + p->numel(), od + row_off * m);
    row_off += p->rows();
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  GNMR_CHECK_EQ(a.rank(), 2);
  GNMR_CHECK_GE(start, 0);
  GNMR_CHECK_GT(len, 0);
  GNMR_CHECK_LE(start + len, a.cols());
  int64_t n = a.rows();
  int64_t m = a.cols();
  Tensor out({n, len});
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    std::copy(ad + i * m + start, ad + i * m + start + len, od + i * len);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  GNMR_CHECK_EQ(a.rank(), 2);
  GNMR_CHECK_GE(start, 0);
  GNMR_CHECK_GT(len, 0);
  GNMR_CHECK_LE(start + len, a.rows());
  int64_t m = a.cols();
  Tensor out({len, m});
  std::copy(a.data() + start * m, a.data() + (start + len) * m, out.data());
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& idx) {
  GNMR_CHECK_EQ(a.rank(), 2);
  int64_t n = a.rows();
  int64_t m = a.cols();
  for (int64_t src : idx) {
    GNMR_CHECK(src >= 0 && src < n) << "gather index " << src;
  }
  Tensor out({static_cast<int64_t>(idx.size()), m});
  GetBackend().GatherRows(a.data(), m, idx.data(),
                          static_cast<int64_t>(idx.size()), out.data());
  return out;
}

void ScatterAddRows(Tensor* target, const std::vector<int64_t>& idx,
                    const Tensor& src) {
  GNMR_CHECK_EQ(target->rank(), 2);
  GNMR_CHECK_EQ(src.rank(), 2);
  GNMR_CHECK_EQ(src.rows(), static_cast<int64_t>(idx.size()));
  GNMR_CHECK_EQ(src.cols(), target->cols());
  int64_t n = target->rows();
  for (int64_t dst : idx) {
    GNMR_CHECK(dst >= 0 && dst < n) << "scatter index " << dst;
  }
  GetBackend().ScatterAddRows(target->data(), n, target->cols(), idx.data(),
                              static_cast<int64_t>(idx.size()), src.data());
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  GNMR_CHECK_EQ(a.rank(), 2);
  GNMR_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  int64_t n = a.rows();
  int64_t m = a.cols();
  Tensor out({n, 1});
  GetBackend().RowDot(a.data(), b.data(), out.data(), n, m);
  return out;
}

}  // namespace ops
}  // namespace tensor
}  // namespace gnmr
