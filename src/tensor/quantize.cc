#include "src/tensor/quantize.h"

#include <cmath>

namespace gnmr {
namespace tensor {
namespace quant {

float QuantizeRowI8(const float* row, int64_t m, int8_t* codes) {
  float maxabs = 0.0f;
  for (int64_t j = 0; j < m; ++j) {
    const float a = std::fabs(row[j]);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0f) {
    for (int64_t j = 0; j < m; ++j) codes[j] = 0;
    return 0.0f;
  }
  const float scale = maxabs / static_cast<float>(kI8QuantMaxCode);
  const float inv = 1.0f / scale;
  for (int64_t j = 0; j < m; ++j) {
    // lrintf honours the default round-to-nearest-even mode; the clamp
    // keeps -128 (and NaN's unspecified lrintf result) out of the code
    // space so the signed dot is saturation-free on every kernel.
    long code = std::lrintf(row[j] * inv);
    if (code > kI8QuantMaxCode) code = kI8QuantMaxCode;
    if (code < -kI8QuantMaxCode) code = -kI8QuantMaxCode;
    codes[j] = static_cast<int8_t>(code);
  }
  return scale;
}

void QuantizeRowsI8(const float* rows, int64_t n, int64_t m, int8_t* codes,
                    float* scales) {
  for (int64_t i = 0; i < n; ++i) {
    scales[i] = QuantizeRowI8(rows + i * m, m, codes + i * m);
  }
}

QuantizedQuery QuantizeQueryI8(const float* row, int64_t m) {
  QuantizedQuery q;
  q.codes.resize(static_cast<size_t>(m));
  q.scale = QuantizeRowI8(row, m, q.codes.data());
  return q;
}

}  // namespace quant
}  // namespace tensor
}  // namespace gnmr
