#include "src/tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/tensor/backend_kernels.h"
#include "src/tensor/backend_simd.h"
#include "src/tensor/element_ops.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/quantize.h"
#include "src/tensor/shard_plan.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"
#include "src/util/cpu_features.h"
#include "src/util/logging.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gnmr {
namespace tensor {

namespace {

using kernels::ChunkSum;
using kernels::MatMulRow;
using kernels::RowDotOne;
using kernels::ScatterAddRowRange;
using kernels::SpmmRow;

// ---- SerialBackend ----------------------------------------------------------

class SerialBackend : public KernelBackend {
 public:
  const char* name() const override { return "serial"; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    for (int64_t i = 0; i < n; ++i) {
      MatMulRow(a + i * k, b, out + i * m, k, m);
    }
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    for (int64_t i = 0; i < a.rows(); ++i) {
      SpmmRow(a, x, out + i * d, i, d);
    }
  }

  void GatherRows(const float* a, int64_t m, const int64_t* idx,
                  int64_t count, float* out) const override {
    for (int64_t r = 0; r < count; ++r) {
      std::copy(a + idx[r] * m, a + (idx[r] + 1) * m, out + r * m);
    }
  }

  void ScatterAddRows(float* target, int64_t rows, int64_t m,
                      const int64_t* idx, int64_t count,
                      const float* src) const override {
    ScatterAddRowRange(target, m, idx, count, src, 0, rows);
  }

  void RowDot(const float* a, const float* b, float* out, int64_t n,
              int64_t m) const override {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = static_cast<float>(RowDotOne(a + i * m, b + i * m, m));
    }
  }

  void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                  float p) const override {
    f(in, out, n, p);
  }

  void EltwiseZip(const float* a, const float* b, float* out, int64_t n,
                  ZipFn f, float p) const override {
    f(a, b, out, n, p);
  }

  double ReduceSum(const float* in, int64_t n) const override {
    double total = 0.0;
    for (int64_t start = 0; start < n; start += kReduceSumChunk) {
      total += ChunkSum(in, start, std::min(n, start + kReduceSumChunk));
    }
    return total;
  }
};

// ---- OmpBackend -------------------------------------------------------------
// Row/chunk fan-out with the serial per-row bodies; deterministic at any
// thread count. Compiles without OpenMP too (the pragmas vanish and every
// kernel degrades to its serial loop), so GNMR_BACKEND=omp is always a
// valid selection.

class OmpBackend : public KernelBackend {
 public:
  const char* name() const override { return "omp"; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    // Rows of the output are independent; parallelizing the outer loop
    // keeps each row's accumulation order unchanged.
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (n > 1 && n * k * m >= kParallelMatMulMinWork)
#endif
    for (int64_t i = 0; i < n; ++i) {
      MatMulRow(a + i * k, b, out + i * m, k, m);
    }
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    int64_t n = a.rows();
    // Dynamic chunks balance skewed per-row nnz (power-law degrees).
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, kSpmmRowChunk) \
    if (n > 1 && a.nnz() * d >= kParallelSpmmMinWork)
#endif
    for (int64_t i = 0; i < n; ++i) {
      SpmmRow(a, x, out + i * d, i, d);
    }
  }

  void GatherRows(const float* a, int64_t m, const int64_t* idx,
                  int64_t count, float* out) const override {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (count > 1 && count * m >= kParallelRowsMinWork)
#endif
    for (int64_t r = 0; r < count; ++r) {
      std::copy(a + idx[r] * m, a + (idx[r] + 1) * m, out + r * m);
    }
  }

  void ScatterAddRows(float* target, int64_t rows, int64_t m,
                      const int64_t* idx, int64_t count,
                      const float* src) const override {
    // Duplicate destinations make the source loop unsafe to split, so
    // partition *target* rows across threads instead: every thread scans
    // the whole index list and applies only its own rows. Accumulation
    // order per target row stays ascending-r — bit-identical to serial.
#ifdef _OPENMP
    if (rows > 1 && count * m >= kParallelRowsMinWork) {
#pragma omp parallel
      {
        int64_t nt = omp_get_num_threads();
        int64_t tid = omp_get_thread_num();
        int64_t lo = rows * tid / nt;
        int64_t hi = rows * (tid + 1) / nt;
        ScatterAddRowRange(target, m, idx, count, src, lo, hi);
      }
      return;
    }
#endif
    ScatterAddRowRange(target, m, idx, count, src, 0, rows);
  }

  void RowDot(const float* a, const float* b, float* out, int64_t n,
              int64_t m) const override {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (n > 1 && n * m >= kParallelRowsMinWork)
#endif
    for (int64_t i = 0; i < n; ++i) {
      out[i] = static_cast<float>(RowDotOne(a + i * m, b + i * m, m));
    }
  }

  void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                  float p) const override {
#ifdef _OPENMP
    if (n >= kParallelEltwiseMinWork) {
      // Contiguous per-thread ranges; the kernel runs once per range.
#pragma omp parallel
      {
        int64_t nt = omp_get_num_threads();
        int64_t tid = omp_get_thread_num();
        int64_t lo = n * tid / nt;
        int64_t hi = n * (tid + 1) / nt;
        f(in + lo, out + lo, hi - lo, p);
      }
      return;
    }
#endif
    f(in, out, n, p);
  }

  void EltwiseZip(const float* a, const float* b, float* out, int64_t n,
                  ZipFn f, float p) const override {
#ifdef _OPENMP
    if (n >= kParallelEltwiseMinWork) {
#pragma omp parallel
      {
        int64_t nt = omp_get_num_threads();
        int64_t tid = omp_get_thread_num();
        int64_t lo = n * tid / nt;
        int64_t hi = n * (tid + 1) / nt;
        f(a + lo, b + lo, out + lo, hi - lo, p);
      }
      return;
    }
#endif
    f(a, b, out, n, p);
  }

  double ReduceSum(const float* in, int64_t n) const override {
    int64_t num_chunks = (n + kReduceSumChunk - 1) / kReduceSumChunk;
    if (num_chunks <= 1) return ChunkSum(in, 0, n);
    // Chunk partials in parallel, combined serially in chunk order: the
    // association is fixed by kReduceSumChunk, not the thread count.
    std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t begin = c * kReduceSumChunk;
      partial[static_cast<size_t>(c)] =
          ChunkSum(in, begin, std::min(n, begin + kReduceSumChunk));
    }
    double total = 0.0;
    for (double v : partial) total += v;
    return total;
  }
};

// ---- BlockedBackend ---------------------------------------------------------

// One output row with the k loop unrolled kMatMulKUnroll-wide: the
// combined update orow[j] = (((orow[j] + a0*b0[j]) + a1*b1[j]) + ...)
// amortises the output row's load/store over four multiply-adds instead
// of one, while evaluating in exactly the serial ascending-k order, so
// results stay numerically identical to MatMulRow (FMA contraction under
// -march=native being the only permitted divergence).
void MatMulRowBlocked(const float* a_row, const float* b, float* out_row,
                      int64_t k, int64_t m) {
  static_assert(kMatMulKUnroll == 4, "unrolled body matches the tunable");
  int64_t kk = 0;
  for (; kk + kMatMulKUnroll <= k; kk += kMatMulKUnroll) {
    float a0 = a_row[kk];
    float a1 = a_row[kk + 1];
    float a2 = a_row[kk + 2];
    float a3 = a_row[kk + 3];
    if (a0 == 0.0f || a1 == 0.0f || a2 == 0.0f || a3 == 0.0f) {
      // Preserve the serial reference's zero-skip (it matters when b holds
      // non-finite values: 0*inf would poison the row). Rare, so the
      // group falls back to the single-k form; same accumulation order.
      for (int64_t p = kk; p < kk + kMatMulKUnroll; ++p) {
        float av = a_row[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * m;
        for (int64_t j = 0; j < m; ++j) out_row[j] += av * brow[j];
      }
      continue;
    }
    const float* b0 = b + kk * m;
    const float* b1 = b0 + m;
    const float* b2 = b1 + m;
    const float* b3 = b2 + m;
    for (int64_t j = 0; j < m; ++j) {
      out_row[j] = (((out_row[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) +
                   a3 * b3[j];
    }
  }
  for (; kk < k; ++kk) {
    float av = a_row[kk];
    if (av == 0.0f) continue;
    const float* brow = b + kk * m;
    for (int64_t j = 0; j < m; ++j) out_row[j] += av * brow[j];
  }
}

class BlockedBackend : public OmpBackend {
 public:
  const char* name() const override { return "blocked"; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    // Rows are independent, so the OpenMP fan-out composes with the
    // blocked row kernel (single-threaded builds just run the loop).
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (n > 1 && n * k * m >= kParallelMatMulMinWork)
#endif
    for (int64_t i = 0; i < n; ++i) {
      MatMulRowBlocked(a + i * k, b, out + i * m, k, m);
    }
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    int64_t n = a.rows();
    if (n <= 1 || a.nnz() * d < kParallelSpmmMinWork) {
      for (int64_t i = 0; i < n; ++i) SpmmRow(a, x, out + i * d, i, d);
      return;
    }
    // Row-binned schedule: contiguous row ranges of ~kSpmmBinNnz nonzeros
    // each, so a few power-law heavy rows can't serialize a whole static
    // chunk. Per-row arithmetic is untouched — results match serial.
    const auto& row_ptr = a.row_ptr();
    std::vector<int64_t> bin_start;
    bin_start.push_back(0);
    int64_t bin_nnz = 0;
    for (int64_t i = 0; i < n; ++i) {
      bin_nnz +=
          row_ptr[static_cast<size_t>(i) + 1] - row_ptr[static_cast<size_t>(i)];
      if (bin_nnz >= kSpmmBinNnz) {
        bin_start.push_back(i + 1);
        bin_nnz = 0;
      }
    }
    if (bin_start.back() != n) bin_start.push_back(n);
    int64_t num_bins = static_cast<int64_t>(bin_start.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_bins > 1)
#endif
    for (int64_t bin = 0; bin < num_bins; ++bin) {
      for (int64_t i = bin_start[static_cast<size_t>(bin)];
           i < bin_start[static_cast<size_t>(bin) + 1]; ++i) {
        SpmmRow(a, x, out + i * d, i, d);
      }
    }
  }
};

// ---- ShardedBackend ---------------------------------------------------------
// Row-range partitioning over the persistent shard pool (shard_pool.h):
// every kernel cuts its row (or chunk) dimension with a ShardPlan and runs
// the serial body per shard, so results are bit-identical to serial at any
// worker count — including 1, where plans collapse to a single inline
// range. No OpenMP anywhere: this is the execution layer the ROADMAP's
// sharding item calls for, and the seam future multi-process / NUMA
// sharding slots into.

class ShardedBackend : public KernelBackend {
 public:
  const char* name() const override { return "sharded"; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    if (n <= 1 || n * k * m < kParallelMatMulMinWork) {
      for (int64_t i = 0; i < n; ++i) {
        MatMulRow(a + i * k, b, out + i * m, k, m);
      }
      return;
    }
    RunUniform(n, kShardMinRowsPerShard, [=](const ShardRange& r) {
      for (int64_t i = r.begin; i < r.end; ++i) {
        MatMulRow(a + i * k, b, out + i * m, k, m);
      }
    });
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    int64_t n = a.rows();
    if (n <= 1 || a.nnz() * d < kParallelSpmmMinWork) {
      for (int64_t i = 0; i < n; ++i) SpmmRow(a, x, out + i * d, i, d);
      return;
    }
    std::shared_ptr<ShardPool> pool = ShardPool::Global();
    ShardPlan plan = PlanForSpmm(a, pool->workers());
    RunPlan(*pool, plan, [&a, x, out, d](const ShardRange& r) {
      // Each worker walks a zero-copy row-range view of its shard; the
      // per-row entry order matches the serial loop exactly.
      CsrRowRange view = a.RowRangeView(r.begin, r.end);
      kernels::SpmmRange(view, x, out + r.begin * d, d);
    });
  }

  void GatherRows(const float* a, int64_t m, const int64_t* idx,
                  int64_t count, float* out) const override {
    if (count <= 1 || count * m < kParallelRowsMinWork) {
      kernels::GatherRowRange(a, m, idx, out, 0, count);
      return;
    }
    RunUniform(count, kShardMinRowsPerShard, [=](const ShardRange& r) {
      kernels::GatherRowRange(a, m, idx, out, r.begin, r.end);
    });
  }

  void ScatterAddRows(float* target, int64_t rows, int64_t m,
                      const int64_t* idx, int64_t count,
                      const float* src) const override {
    // Target-row partitioning (same trick as the omp backend): duplicate
    // destinations make splitting the source loop unsafe, so each shard
    // scans the full index list and applies only its own target rows.
    if (rows <= 1 || count * m < kParallelRowsMinWork) {
      ScatterAddRowRange(target, m, idx, count, src, 0, rows);
      return;
    }
    RunUniform(rows, kShardMinRowsPerShard, [=](const ShardRange& r) {
      ScatterAddRowRange(target, m, idx, count, src, r.begin, r.end);
    });
  }

  void RowDot(const float* a, const float* b, float* out, int64_t n,
              int64_t m) const override {
    if (n <= 1 || n * m < kParallelRowsMinWork) {
      for (int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(RowDotOne(a + i * m, b + i * m, m));
      }
      return;
    }
    RunUniform(n, kShardMinRowsPerShard, [=](const ShardRange& r) {
      for (int64_t i = r.begin; i < r.end; ++i) {
        out[i] = static_cast<float>(RowDotOne(a + i * m, b + i * m, m));
      }
    });
  }

  void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                  float p) const override {
    if (n < kParallelEltwiseMinWork) {
      f(in, out, n, p);
      return;
    }
    RunUniform(n, kShardMinElemsPerShard, [=](const ShardRange& r) {
      f(in + r.begin, out + r.begin, r.end - r.begin, p);
    });
  }

  void EltwiseZip(const float* a, const float* b, float* out, int64_t n,
                  ZipFn f, float p) const override {
    if (n < kParallelEltwiseMinWork) {
      f(a, b, out, n, p);
      return;
    }
    RunUniform(n, kShardMinElemsPerShard, [=](const ShardRange& r) {
      f(a + r.begin, b + r.begin, out + r.begin, r.end - r.begin, p);
    });
  }

  double ReduceSum(const float* in, int64_t n) const override {
    int64_t num_chunks = (n + kReduceSumChunk - 1) / kReduceSumChunk;
    if (num_chunks <= 1) return ChunkSum(in, 0, n);
    // Fixed-chunk double partials, chunk indices sharded across workers,
    // combined serially in chunk order — the association is set by
    // kReduceSumChunk alone, so sums match every other backend exactly.
    std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
    double* partials = partial.data();
    RunUniform(num_chunks, 1, [=](const ShardRange& r) {
      for (int64_t c = r.begin; c < r.end; ++c) {
        int64_t begin = c * kReduceSumChunk;
        partials[c] = ChunkSum(in, begin, std::min(n, begin + kReduceSumChunk));
      }
    });
    double total = 0.0;
    for (double v : partial) total += v;
    return total;
  }

 private:
  /// Dispatches one task per shard to `pool`; single-shard plans run
  /// inline (no dispatch latency for small inputs).
  template <typename Fn>
  void RunPlan(ShardPool& pool, const ShardPlan& plan, const Fn& fn) const {
    if (plan.num_shards() <= 1) {
      for (const ShardRange& r : plan.ranges()) fn(r);
      return;
    }
    std::function<void(int64_t)> task = [&plan, &fn](int64_t s) {
      fn(plan.shard(s));
    };
    pool.Run(plan.num_shards(), task);
  }

  /// Uniform row plan sized and dispatched on ONE Global() snapshot, so a
  /// concurrent SetShardWorkers can neither mismatch plan and pool nor
  /// tear the pool down mid-dispatch (and the global slot lock is taken
  /// once per op, not twice).
  template <typename Fn>
  void RunUniform(int64_t n, int64_t min_per_shard, const Fn& fn) const {
    std::shared_ptr<ShardPool> pool = ShardPool::Global();
    ShardPlan plan = ShardPlan::Uniform(n, pool->workers(), min_per_shard);
    RunPlan(*pool, plan, fn);
  }

  /// Cached per-matrix SpMM plan: propagation re-runs the same per-behavior
  /// adjacency every step, and the nnz-balanced cut only needs row_ptr, so
  /// build it once and reuse while the matrix (and worker count) is
  /// unchanged. Keyed by the row_ptr storage address; a stale hit after a
  /// matrix is freed and another allocated in its place is detected by the
  /// rows/nnz/workers fingerprint — and even an undetected collision would
  /// still be a valid (merely unbalanced) partition of [0, rows).
  ShardPlan PlanForSpmm(const CsrMatrix& a, int64_t workers) const {
    const int64_t* key = a.row_ptr().data();
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      auto it = plan_cache_.find(key);
      if (it != plan_cache_.end() && it->second.rows == a.rows() &&
          it->second.nnz == a.nnz() && it->second.workers == workers) {
        return it->second.plan;
      }
    }
    ShardPlan plan =
        kShardSpmmNnzBalanced
            ? ShardPlan::NnzBalanced(a, workers, kShardMinRowsPerShard)
            : ShardPlan::Uniform(a.rows(), workers, kShardMinRowsPerShard);
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      if (plan_cache_.size() >= kMaxCachedPlans) plan_cache_.clear();
      plan_cache_[key] = {a.rows(), a.nnz(), workers, plan};
    }
    return plan;
  }

  struct CachedPlan {
    int64_t rows = 0;
    int64_t nnz = 0;
    int64_t workers = 0;
    ShardPlan plan;
  };
  static constexpr size_t kMaxCachedPlans = 64;

  mutable std::mutex plan_mu_;
  mutable std::unordered_map<const int64_t*, CachedPlan> plan_cache_;
};

// ---- SimdFallbackBackend ----------------------------------------------------
// What the "simd" name resolves to on hosts whose runtime cpuid probe
// (util/cpu_features.h) lacks AVX2+FMA — and in builds where the vector
// TU was compiled out. Serial kernels under the simd name, plus a
// one-time warning on first use, so a requested-but-unavailable vector
// tier shows up in logs as a visible downgrade instead of silently slow
// numbers (running the AVX2 code anyway would SIGILL).

class SimdFallbackBackend : public SerialBackend {
 public:
  const char* name() const override { return "simd"; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    WarnOnce();
    SerialBackend::MatMul(a, b, out, n, k, m);
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    WarnOnce();
    SerialBackend::Spmm(a, x, out, d);
  }

  void GatherRows(const float* a, int64_t m, const int64_t* idx,
                  int64_t count, float* out) const override {
    WarnOnce();
    SerialBackend::GatherRows(a, m, idx, count, out);
  }

  void ScatterAddRows(float* target, int64_t rows, int64_t m,
                      const int64_t* idx, int64_t count,
                      const float* src) const override {
    WarnOnce();
    SerialBackend::ScatterAddRows(target, rows, m, idx, count, src);
  }

  void RowDot(const float* a, const float* b, float* out, int64_t n,
              int64_t m) const override {
    WarnOnce();
    SerialBackend::RowDot(a, b, out, n, m);
  }

  void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                  float p) const override {
    WarnOnce();
    SerialBackend::EltwiseMap(in, out, n, f, p);
  }

  void EltwiseZip(const float* a, const float* b, float* out, int64_t n,
                  ZipFn f, float p) const override {
    WarnOnce();
    SerialBackend::EltwiseZip(a, b, out, n, f, p);
  }

  double ReduceSum(const float* in, int64_t n) const override {
    WarnOnce();
    return SerialBackend::ReduceSum(in, n);
  }

 private:
  void WarnOnce() const {
    std::call_once(warned_, [] {
      GNMR_LOG(WARNING)
          << "backend 'simd' selected but this host lacks AVX2+FMA; "
             "falling back to the serial reference kernels";
    });
  }
  mutable std::once_flag warned_;
};

// ---- Registry ---------------------------------------------------------------

// Portable MapLoop/ZipLoop instantiations for every element_ops.h X-macro
// body, in list order — the exact function pointers tensor_ops.cc and
// ad_ops.cc pass to EltwiseMap/EltwiseZip (template instantiations
// COMDAT-merge across the portable TUs, so the addresses agree). The simd
// backend keys its vector-twin substitution on this table; see
// backend_simd.h for why it cannot instantiate the templates itself.
constexpr KernelBackend::MapFn kSimdMapKeys[] = {
#define GNMR_MAP_KEY(name, expr) &MapLoop<&elops::name##El>,
    GNMR_ELTWISE_MAP_BODIES(GNMR_MAP_KEY)
#undef GNMR_MAP_KEY
};
constexpr KernelBackend::ZipFn kSimdZipKeys[] = {
#define GNMR_ZIP_KEY(name, expr) &ZipLoop<&elops::name##El>,
    GNMR_ELTWISE_ZIP_BODIES(GNMR_ZIP_KEY)
#undef GNMR_ZIP_KEY
};

const SerialBackend kSerialBackend;
const OmpBackend kOmpBackend;
const BlockedBackend kBlockedBackend;
const ShardedBackend kShardedBackend;
const SimdFallbackBackend kSimdFallbackBackend;

// The backend registered as "simd": the native vectorized implementation
// when both the build (backend_simd.cc compiled with AVX2) and the host
// (runtime cpuid) support it, the warning fallback otherwise. The cpuid
// check happens BEFORE touching the vector TU, so no AVX2 instruction can
// execute on an unsupported host.
const KernelBackend* SimdBackendInstance() {
  static const KernelBackend* const instance = [] {
    const util::CpuFeatures& cpu = util::HostCpuFeatures();
    if (cpu.avx2 && cpu.fma) {
      simd::EltwiseKeyTable keys;
      keys.map_keys = kSimdMapKeys;
      keys.num_map =
          static_cast<int>(sizeof(kSimdMapKeys) / sizeof(kSimdMapKeys[0]));
      keys.zip_keys = kSimdZipKeys;
      keys.num_zip =
          static_cast<int>(sizeof(kSimdZipKeys) / sizeof(kSimdZipKeys[0]));
      const KernelBackend* native = simd::NativeSimdBackend(keys);
      if (native != nullptr) return native;
    }
    return static_cast<const KernelBackend*>(&kSimdFallbackBackend);
  }();
  return instance;
}

std::atomic<const KernelBackend*> g_backend{nullptr};

// Registered backend names for error messages, in registration order.
std::string AvailableNames() {
  std::string names;
  for (const KernelBackend* b : AllBackends()) {
    if (!names.empty()) names += ", ";
    names += b->name();
  }
  return names;
}

const KernelBackend* DefaultBackend() {
  if (const char* env = std::getenv("GNMR_BACKEND")) {
    if (*env != '\0') {
      const KernelBackend* b = FindBackend(env);
      if (b != nullptr) return b;
      GNMR_CHECK(false) << "unknown GNMR_BACKEND '" << env
                        << "' (available: " << AvailableNames() << ")";
    }
  }
#ifdef _OPENMP
  return &kOmpBackend;
#else
  return &kSerialBackend;
#endif
}

}  // namespace

// ---- Serving scan ops: serial base implementations --------------------------
// Non-pure with reference bodies so only backends that accelerate these
// override them (today: the simd backend); everyone else — including the
// bench-only blas backend, which cross-backend probe-determinism tests
// iterate — inherits the exact reference. Per-output-element results, no
// cross-row accumulation, so any override is bit-identical by construction
// as long as it keeps the lane-partial (float) / plain-int32 (code) dot.

void KernelBackend::QueryDot(const float* q, const float* rows, float* out,
                             int64_t n, int64_t m) const {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(LanePartialDot(q, rows + i * m, m));
  }
}

void KernelBackend::QueryDotIndexed(const float* q, const float* base,
                                    const int64_t* idx, float* out, int64_t n,
                                    int64_t m) const {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(LanePartialDot(q, base + idx[i] * m, m));
  }
}

void KernelBackend::I8QueryDot(const int8_t* q, const int8_t* codes,
                               int32_t* out, int64_t n, int64_t m) const {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = quant::I8Dot(q, codes + i * m, m);
  }
}

#ifdef GNMR_HAVE_BLAS
// Defined in backend_blas.cc, compiled only when -DGNMR_BLAS=ON finds a
// BLAS library at configure time.
const KernelBackend* BlasBackendInstance();
#endif

const std::vector<const KernelBackend*>& AllBackends() {
  static const std::vector<const KernelBackend*> all = [] {
    std::vector<const KernelBackend*> v = {&kSerialBackend, &kOmpBackend,
                                           &kBlockedBackend, &kShardedBackend,
                                           SimdBackendInstance()};
#ifdef GNMR_HAVE_BLAS
    v.push_back(BlasBackendInstance());
#endif
    return v;
  }();
  return all;
}

const KernelBackend* SimdFallbackForTest() { return &kSimdFallbackBackend; }

const KernelBackend* FindBackend(const std::string& name) {
  for (const KernelBackend* b : AllBackends()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

const KernelBackend& GetBackend() {
  const KernelBackend* b = g_backend.load(std::memory_order_acquire);
  if (b == nullptr) {
    b = DefaultBackend();
    const KernelBackend* expected = nullptr;
    // First caller wins; a concurrent first call resolves identically.
    g_backend.compare_exchange_strong(expected, b, std::memory_order_acq_rel);
  }
  return *b;
}

void SetBackend(const std::string& name) {
  const KernelBackend* b = FindBackend(name);
  GNMR_CHECK(b != nullptr) << "unknown backend '" << name
                           << "' (available: " << AvailableNames() << ")";
  g_backend.store(b, std::memory_order_release);
}

ScopedBackend::ScopedBackend(const std::string& name)
    : previous_(&GetBackend()) {
  SetBackend(name);
}

ScopedBackend::~ScopedBackend() {
  g_backend.store(previous_, std::memory_order_release);
}

}  // namespace tensor
}  // namespace gnmr
