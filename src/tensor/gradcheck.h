// Finite-difference gradient verification used by the op test suite.
#ifndef GNMR_TENSOR_GRADCHECK_H_
#define GNMR_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/autodiff.h"

namespace gnmr {
namespace ad {

/// Outcome of a finite-difference check over all parameter elements.
struct GradCheckReport {
  /// max |analytic - numeric| over all checked elements.
  double max_abs_err = 0.0;
  /// max |analytic - numeric| / max(denom_floor, |analytic| + |numeric|).
  double max_rel_err = 0.0;
  /// Number of elements compared.
  int64_t elements = 0;
  /// Location of the worst relative error, e.g. "param 1 elem 7".
  std::string worst;
  /// (abs_err, rel_err) per checked element, in parameter order.
  std::vector<std::pair<double, double>> per_element;

  /// Element-wise acceptance: every element must satisfy
  /// rel_err <= rel_tol OR abs_err <= abs_tol (tiny gradients are
  /// absolute-error dominated, e.g. at ReLU kinks).
  bool Accept(double rel_tol, double abs_tol) const;
};

/// Verifies d(loss)/d(param) for every element of every param.
///
/// `loss_fn` must rebuild the loss from the current parameter values on
/// each call and be deterministic. Central differences with step `eps`.
/// float32 storage bounds the achievable accuracy: use eps ~1e-2 and
/// rel_tol ~2e-2 in tests.
GradCheckReport GradCheck(const std::function<Var()>& loss_fn,
                          std::vector<Var> params, float eps = 1e-2f);

}  // namespace ad
}  // namespace gnmr

#endif  // GNMR_TENSOR_GRADCHECK_H_
