// Forward-only math kernels on raw Tensors. The autodiff layer (ad_ops.h)
// wraps these with gradient rules; tests exercise them directly.
//
// The hot entry points (MatMul, GatherRows, ScatterAddRows, RowDot, the
// elementwise ops and the whole-tensor reductions) validate shapes here
// and dispatch the actual loops through the active tensor::KernelBackend
// (backend.h); shape plumbing (transpose/concat/slice/softmax) stays
// local.
//
// Broadcasting: binary elementwise ops follow NumPy semantics restricted to
// rank <= 2 — shapes are right-aligned, each dim must match or be 1.
// Examples of legal pairs: [n,d]+[n,d], [n,d]+[1,d], [n,d]+[d], [n,d]+[n,1],
// [n,d]+[1].
#ifndef GNMR_TENSOR_TENSOR_OPS_H_
#define GNMR_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace gnmr {
namespace tensor {
namespace ops {

/// Shape resulting from broadcasting `a` against `b`; checks compatibility.
std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b);

/// Sums `t` down to `target_shape` (inverse of broadcasting); used by
/// gradient rules of broadcast ops. `target_shape` must be broadcastable to
/// t.shape().
Tensor ReduceToShape(const Tensor& t, const std::vector<int64_t>& target_shape);

// Binary elementwise with broadcasting ---------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
/// Division; denominator entries must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);

// Scalar forms ----------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

// Linear algebra --------------------------------------------------------------

/// [n,k] x [k,m] -> [n,m].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Rank-2 transpose.
Tensor Transpose(const Tensor& a);

// Elementwise unary -----------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float alpha);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped below at `eps` for stability.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
/// log(1 + e^x), numerically stable.
Tensor Softplus(const Tensor& a);

// Row-wise softmax ------------------------------------------------------------

/// Softmax over the last axis of a rank-2 tensor (per row), max-subtracted.
Tensor SoftmaxRows(const Tensor& a);
/// Log-softmax over the last axis of a rank-2 tensor.
Tensor LogSoftmaxRows(const Tensor& a);

// Reductions ------------------------------------------------------------------

/// Sum of all elements -> shape {1}.
Tensor SumAll(const Tensor& a);
/// Mean of all elements -> shape {1}.
Tensor MeanAll(const Tensor& a);
/// Sum over `axis` (0 or 1) of a rank-2 tensor, keeping the reduced dim as 1:
/// axis=0: [n,d]->[1,d]; axis=1: [n,d]->[n,1].
Tensor SumAxis(const Tensor& a, int axis);
/// Mean over `axis` with the same shape conventions as SumAxis.
Tensor MeanAxis(const Tensor& a, int axis);

// Shape manipulation ----------------------------------------------------------

/// Concatenates rank-2 tensors along columns; all must share rows.
Tensor ConcatCols(const std::vector<const Tensor*>& parts);
/// Concatenates rank-2 tensors along rows; all must share cols.
Tensor ConcatRows(const std::vector<const Tensor*>& parts);
/// Column slice [start, start+len) of a rank-2 tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);
/// Row slice [start, start+len) of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);

// Indexed access --------------------------------------------------------------

/// Gathers rows of a rank-2 tensor: out[r, :] = a[idx[r], :].
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& idx);
/// target[idx[r], :] += src[r, :]. Duplicate indices accumulate.
void ScatterAddRows(Tensor* target, const std::vector<int64_t>& idx,
                    const Tensor& src);

/// Row-wise dot product of two same-shape rank-2 tensors -> [n,1].
Tensor RowDot(const Tensor& a, const Tensor& b);

}  // namespace ops
}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_TENSOR_OPS_H_
