// Elementwise op bodies shared by the ops layer (tensor_ops.cc), the
// backward zips (ad_ops.cc) and the SIMD backend's vector twins
// (backend_simd.cc).
//
// The cheap arithmetic bodies are defined through X-macros carrying the
// *expression itself*, so three things are generated from one list and can
// never drift apart:
//   1. the portable inline functions below (elops::AddEl, ...), which
//      parameterize the shared MapLoop/ZipLoop templates (backend.h);
//   2. the key tables in backend.cc — the exact MapFn/ZipFn pointers the
//      ops layer passes to EltwiseMap/EltwiseZip;
//   3. the AVX2-compiled twin loops in backend_simd.cc, which the simd
//      backend substitutes after a pointer lookup in (2).
// Bit-exactness of the substitution rests on the expressions being single
// IEEE ops (or compare+select), evaluated per element in both copies; the
// simd translation unit is compiled with -ffp-contract=off so no twin can
// fuse a mul+add pair the portable copy keeps separate.
//
// The transcendental bodies (sigmoid, tanh, exp, ...) are plain functions:
// they are libm-bound, gain nothing from vectorization, and have no twins.
//
// Map expressions may reference `x` (element) and `p` (scalar parameter);
// zip expressions may reference `x` (first input), `y` (second input) and
// `p`. For the backward zips dispatched by ad_ops.cc, `x` is the cached
// forward value and `y` is the upstream gradient.
#ifndef GNMR_TENSOR_ELEMENT_OPS_H_
#define GNMR_TENSOR_ELEMENT_OPS_H_

#include <cmath>

// clang-format off
#define GNMR_ELTWISE_MAP_BODIES(X)             \
  X(AddScalar, x + p)                          \
  X(MulScalar, x * p)                          \
  X(Neg, -x)                                   \
  X(Relu, x > 0.0f ? x : 0.0f)                 \
  X(LeakyRelu, x > 0.0f ? x : p * x)           \
  X(Square, x * x)                             \
  X(Sqrt, std::sqrt(x))

#define GNMR_ELTWISE_ZIP_BODIES(X)             \
  X(Add, x + y)                                \
  X(Sub, x - y)                                \
  X(Mul, x * y)                                \
  X(Div, x / y)                                \
  X(ReluBwd, x > 0.0f ? y : 0.0f)              \
  X(LeakyReluBwd, x > 0.0f ? y : p * y)        \
  X(SigmoidBwd, (y * x) * (1.0f - x))          \
  X(TanhBwd, y * (1.0f - x * x))               \
  X(LogBwd, x > p ? y / x : 0.0f)              \
  X(SqrtBwd, x > 0.0f ? (0.5f * y) / x : 0.0f)
// clang-format on

namespace gnmr {
namespace tensor {
namespace elops {

#define GNMR_DEFINE_MAP_BODY(name, expr)  \
  inline float name##El(float x, float p) { \
    (void)p;                                \
    return (expr);                          \
  }
GNMR_ELTWISE_MAP_BODIES(GNMR_DEFINE_MAP_BODY)
#undef GNMR_DEFINE_MAP_BODY

#define GNMR_DEFINE_ZIP_BODY(name, expr)           \
  inline float name##El(float x, float y, float p) { \
    (void)p;                                         \
    return (expr);                                   \
  }
GNMR_ELTWISE_ZIP_BODIES(GNMR_DEFINE_ZIP_BODY)
#undef GNMR_DEFINE_ZIP_BODY

// ---- Transcendental map bodies (no SIMD twins) ------------------------------

inline float SigmoidEl(float x, float) {
  // Branch on sign for numerical stability.
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}
inline float TanhEl(float x, float) { return std::tanh(x); }
inline float ExpEl(float x, float) { return std::exp(x); }
inline float LogEl(float x, float p) { return std::log(std::max(x, p)); }
inline float SoftplusEl(float x, float) {
  // log(1+e^x) = max(x,0) + log1p(e^{-|x|})
  return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
}

}  // namespace elops
}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_ELEMENT_OPS_H_
