// Shared serial kernel bodies for the pluggable backends (backend.h).
//
// These loops ARE the reference semantics: SerialBackend runs them over
// [0, rows), and the omp / sharded backends run the same bodies over
// disjoint row ranges, so fan-out never changes an output element's
// accumulation order and every backend stays bit-identical to serial.
// Internal header — include only from backend implementation files.
#ifndef GNMR_TENSOR_BACKEND_KERNELS_H_
#define GNMR_TENSOR_BACKEND_KERNELS_H_

#include <algorithm>
#include <cstdint>

#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/sparse.h"

namespace gnmr {
namespace tensor {
namespace kernels {

// One dense output row: out_row += a_row * b ([k] x [k,m]).
inline void MatMulRow(const float* a_row, const float* b, float* out_row,
                      int64_t k, int64_t m) {
  for (int64_t kk = 0; kk < k; ++kk) {
    float av = a_row[kk];
    if (av == 0.0f) continue;
    const float* brow = b + kk * m;
    for (int64_t j = 0; j < m; ++j) out_row[j] += av * brow[j];
  }
}

// One sparse output row: out_row += A[i, :] * x.
inline void SpmmRow(const CsrMatrix& a, const float* x, float* out_row,
                    int64_t i, int64_t d) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (int64_t p = row_ptr[static_cast<size_t>(i)];
       p < row_ptr[static_cast<size_t>(i) + 1]; ++p) {
    float v = values[static_cast<size_t>(p)];
    const float* xrow = x + col_idx[static_cast<size_t>(p)] * d;
    for (int64_t j = 0; j < d; ++j) out_row[j] += v * xrow[j];
  }
}

// SpMM over one zero-copy row-range view: out rows are the view's rows, in
// view order. Per-row arithmetic matches SpmmRow exactly (same entries,
// same ascending order), so a partitioned run concatenates to the serial
// result bit-for-bit.
inline void SpmmRange(const CsrRowRange& view, const float* x, float* out,
                      int64_t d) {
  const int64_t* col_idx = view.col_idx();
  const float* values = view.values();
  for (int64_t r = 0; r < view.rows(); ++r) {
    float* out_row = out + r * d;
    for (int64_t p = view.RowBegin(r); p < view.RowEnd(r); ++p) {
      float v = values[p];
      const float* xrow = x + col_idx[p] * d;
      for (int64_t j = 0; j < d; ++j) out_row[j] += v * xrow[j];
    }
  }
}

// Scatter-add restricted to target rows in [row_lo, row_hi): scans all
// source rows in ascending order and applies only in-range ones, so each
// target row sees the same accumulation order as the serial loop no matter
// how [0, rows) is partitioned.
inline void ScatterAddRowRange(float* target, int64_t m, const int64_t* idx,
                               int64_t count, const float* src,
                               int64_t row_lo, int64_t row_hi) {
  for (int64_t r = 0; r < count; ++r) {
    int64_t dst = idx[r];
    if (dst < row_lo || dst >= row_hi) continue;
    const float* srow = src + r * m;
    float* trow = target + dst * m;
    for (int64_t j = 0; j < m; ++j) trow[j] += srow[j];
  }
}

inline void GatherRowRange(const float* a, int64_t m, const int64_t* idx,
                           float* out, int64_t lo, int64_t hi) {
  for (int64_t r = lo; r < hi; ++r) {
    std::copy(a + idx[r] * m, a + (idx[r] + 1) * m, out + r * m);
  }
}

// One row dot product in double, accumulated as kReduceLanes fixed lane
// partials (lane l sums elements j with j % kReduceLanes == l) combined in
// ascending lane order. The lane shape — not plain left-to-right
// accumulation — is the op's contract: it is exactly the association a
// vector unit computes with the row cut into kReduceLanes-wide groups, so
// the SIMD backend can vectorize RowDot while every backend (this scalar
// body included) produces bit-identical sums.
inline double RowDotOne(const float* a_row, const float* b_row, int64_t m) {
  // The lane-partial reference moved to backend.h (LanePartialDot) when
  // the serving scans adopted the same contract; this is the same body.
  return LanePartialDot(a_row, b_row, m);
}

// Double partial over one fixed-width chunk (the unit of ReduceSum's
// backend-independent association, kReduceSumChunk), accumulated with the
// same fixed kReduceLanes lane-partial shape as RowDotOne and for the same
// reason.
inline double ChunkSum(const float* in, int64_t begin, int64_t end) {
  double lane[kReduceLanes] = {0.0};
  int64_t i = begin;
  for (; i + kReduceLanes <= end; i += kReduceLanes) {
    for (int64_t l = 0; l < kReduceLanes; ++l) {
      lane[l] += static_cast<double>(in[i + l]);
    }
  }
  for (int64_t l = 0; i + l < end; ++l) {
    lane[l] += static_cast<double>(in[i + l]);
  }
  double acc = 0.0;
  for (int64_t l = 0; l < kReduceLanes; ++l) acc += lane[l];
  return acc;
}

}  // namespace kernels
}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_BACKEND_KERNELS_H_
