#include "src/tensor/gradcheck.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/string_util.h"

namespace gnmr {
namespace ad {

bool GradCheckReport::Accept(double rel_tol, double abs_tol) const {
  for (const auto& [abs_err, rel_err] : per_element) {
    if (rel_err > rel_tol && abs_err > abs_tol) return false;
  }
  return true;
}

GradCheckReport GradCheck(const std::function<Var()>& loss_fn,
                          std::vector<Var> params, float eps) {
  GNMR_CHECK(!params.empty());
  GNMR_CHECK_GT(eps, 0.0f);

  // Analytic pass.
  for (Var& p : params) p.ZeroGrad();
  Var loss = loss_fn();
  GNMR_CHECK_EQ(loss.value().numel(), 1);
  Backward(loss);

  std::vector<tensor::Tensor> analytic;
  analytic.reserve(params.size());
  for (Var& p : params) {
    GNMR_CHECK(p.requires_grad()) << "gradcheck param must require grad";
    analytic.push_back(p.has_grad() ? p.grad()
                                    : tensor::Tensor(p.value().shape()));
  }

  GradCheckReport report;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    float* data = params[pi].mutable_value()->data();
    int64_t n = params[pi].value().numel();
    for (int64_t e = 0; e < n; ++e) {
      float saved = data[e];
      data[e] = saved + eps;
      double lp = static_cast<double>(loss_fn().value().data()[0]);
      data[e] = saved - eps;
      double lm = static_cast<double>(loss_fn().value().data()[0]);
      data[e] = saved;
      double numeric = (lp - lm) / (2.0 * static_cast<double>(eps));
      double a = static_cast<double>(analytic[pi].data()[e]);
      double abs_err = std::fabs(a - numeric);
      double rel_err = abs_err / std::max(1e-3, std::fabs(a) + std::fabs(numeric));
      report.elements += 1;
      report.per_element.emplace_back(abs_err, rel_err);
      if (abs_err > report.max_abs_err) report.max_abs_err = abs_err;
      if (rel_err > report.max_rel_err) {
        report.max_rel_err = rel_err;
        report.worst = util::StrFormat("param %zu elem %lld (analytic=%g numeric=%g)",
                                       pi, static_cast<long long>(e), a, numeric);
      }
    }
  }
  return report;
}

}  // namespace ad
}  // namespace gnmr
