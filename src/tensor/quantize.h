// Symmetric per-row int8 scalar quantization of embedding rows, and the
// serial reference kernels of the quantized code scan.
//
// The quantized IVF tier (serve::IvfRetriever) stores every posting-list
// item row as width int8 codes plus one float scale, scans the codes to
// pick an exact-rerank candidate pool, and streams ~4x fewer bytes than
// the float scan. Everything here is deterministic:
//
//   scale = maxabs(row) / kI8QuantMaxCode        (0 for an all-zero row)
//   code  = clamp(lrintf(x / scale), -127, 127)  (round half to even)
//
// and the code dot product is pure int32 arithmetic — exact, so every
// backend's I8QueryDot (backend.h) is trivially bit-identical to the
// I8Dot reference below, including the AVX2 maddubs kernel in
// backend_simd.cc (codes never reach -128, so the pairwise int16 sums
// cannot saturate). The approximate score is then one float expression,
// I8DotScore, evaluated identically everywhere.
#ifndef GNMR_TENSOR_QUANTIZE_H_
#define GNMR_TENSOR_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/kernel_tunables.h"

namespace gnmr {
namespace tensor {
namespace quant {

/// Quantizes one `m`-wide row into `codes[0, m)` and returns its scale.
/// Deterministic for any input, including non-finite values (NaN/inf
/// maxabs yields scale inf/NaN; codes still land in [-127, 127] via the
/// clamp). `codes` must hold m entries.
float QuantizeRowI8(const float* row, int64_t m, int8_t* codes);

/// QuantizeRowI8 over `n` contiguous rows: codes is [n, m] row-major,
/// scales has n entries.
void QuantizeRowsI8(const float* rows, int64_t n, int64_t m, int8_t* codes,
                    float* scales);

/// Serial reference int8 dot: plain int32 accumulation. Integer math is
/// associative, so this is THE result, not one association of it — any
/// vector reordering (the simd backend sums 8 int32 lanes) produces the
/// identical value.
inline int32_t I8Dot(const int8_t* a, const int8_t* b, int64_t m) {
  int32_t acc = 0;
  for (int64_t j = 0; j < m; ++j) {
    acc += static_cast<int32_t>(a[j]) * static_cast<int32_t>(b[j]);
  }
  return acc;
}

/// The approximate score of the quantized scan: the exact integer dot
/// dequantized by both scales. One multiply order — (q_scale * c_scale)
/// first — so every call site computes the bit-identical float.
inline float I8DotScore(const int8_t* q, float q_scale, const int8_t* c,
                        float c_scale, int64_t m) {
  return static_cast<float>(I8Dot(q, c, m)) * (q_scale * c_scale);
}

/// Query-side quantization of one embedding row (done once per request by
/// the quantized IVF scan).
struct QuantizedQuery {
  std::vector<int8_t> codes;
  float scale = 0.0f;
};

QuantizedQuery QuantizeQueryI8(const float* row, int64_t m);

}  // namespace quant
}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_QUANTIZE_H_
