// Differentiable operations on Vars. Every op here has an exact gradient
// rule verified by finite-difference tests (tests/tensor_grad_test.cc).
#ifndef GNMR_TENSOR_AD_OPS_H_
#define GNMR_TENSOR_AD_OPS_H_

#include <vector>

#include "src/tensor/autodiff.h"
#include "src/tensor/sparse.h"
#include "src/util/rng.h"

namespace gnmr {
namespace ad {

// Binary elementwise (broadcasting per tensor_ops.h rules) -------------------

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// Scalar forms ----------------------------------------------------------------

Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);
Var Neg(const Var& a);

// Linear algebra --------------------------------------------------------------

/// [n,k] x [k,m] -> [n,m].
Var MatMul(const Var& a, const Var& b);
/// Rank-2 transpose.
Var Transpose(const Var& a);
/// Sparse-dense product out = A * x. `a` and `a_transposed` must stay alive
/// until Backward() completes (the graph module owns them for the duration
/// of training).
Var Spmm(const tensor::CsrMatrix* a, const tensor::CsrMatrix* a_transposed,
         const Var& x);

// Elementwise unary -----------------------------------------------------------

Var Relu(const Var& a);
Var LeakyRelu(const Var& a, float alpha);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
/// Natural log with input clamping at `eps`; gradient is 0 where clamped.
Var Log(const Var& a, float eps = 1e-12f);
Var Sqrt(const Var& a);
Var Square(const Var& a);
Var Softplus(const Var& a);

// Softmax ---------------------------------------------------------------------

/// Row-wise softmax of a rank-2 tensor.
Var SoftmaxRows(const Var& a);
/// Row-wise log-softmax of a rank-2 tensor.
Var LogSoftmaxRows(const Var& a);

// Reductions ------------------------------------------------------------------

Var SumAll(const Var& a);
Var MeanAll(const Var& a);
/// axis=0: [n,d]->[1,d]; axis=1: [n,d]->[n,1].
Var SumAxis(const Var& a, int axis);
Var MeanAxis(const Var& a, int axis);

// Shape manipulation ----------------------------------------------------------

Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int64_t start, int64_t len);
Var SliceRows(const Var& a, int64_t start, int64_t len);
Var Reshape(const Var& a, std::vector<int64_t> new_shape);

// Indexed ---------------------------------------------------------------------

/// out[r,:] = table[idx[r],:]; gradient scatter-adds into the table.
Var GatherRows(const Var& table, std::vector<int64_t> idx);

/// Row-wise dot product of same-shape rank-2 tensors -> [n,1].
Var RowDot(const Var& a, const Var& b);

// Regularisation --------------------------------------------------------------

/// Inverted dropout: zeroes entries with prob p and scales the rest by
/// 1/(1-p). Identity when !training or p == 0.
Var Dropout(const Var& a, float p, bool training, util::Rng* rng);

// Loss conveniences (compositions of the primitives above) --------------------

/// mean over entries of max(0, margin - pos + neg); pos/neg both [n,1].
/// This is Eq. 7 of the GNMR paper (margin = 1 there).
Var PairwiseHingeLoss(const Var& pos_scores, const Var& neg_scores,
                      float margin = 1.0f);

/// Pairwise BPR loss: mean(-log sigmoid(pos - neg)).
Var BprLoss(const Var& pos_scores, const Var& neg_scores);

/// mean(softplus(logits) - logits * targets); targets in [0,1].
Var BceWithLogitsLoss(const Var& logits, const Var& targets);

/// mean((pred - target)^2).
Var MseLoss(const Var& pred, const Var& target);

/// Sum of squared L2 norms of the given parameters, scaled by lambda.
Var L2Penalty(const std::vector<Var>& params, float lambda);

}  // namespace ad
}  // namespace gnmr

#endif  // GNMR_TENSOR_AD_OPS_H_
