// Internal glue between the portable backend registry (backend.cc) and the
// AVX2/FMA-compiled translation unit (backend_simd.cc). Include only from
// backend implementation files and tests.
//
// backend_simd.cc is the one TU in the build compiled with -mavx2 -mfma
// (and -ffp-contract=off, so explicit mul+add intrinsic pairs are never
// re-fused into FMAs — fusing would change rounding and break bit-parity
// with serial). Everything vector lives there behind internal linkage;
// this header only carries portable declarations, so including it never
// leaks vector code into portable TUs.
//
// The eltwise key table exists because EltwiseMap/EltwiseZip receive a
// *function pointer* (an instantiated MapLoop/ZipLoop from a portable TU).
// The simd backend cannot instantiate those shared templates itself — a
// COMDAT-merged AVX2 copy could be picked by the linker and then run in the
// serial path of a non-AVX2 host — so backend.cc (portable) instantiates
// the loops for every body in element_ops.h's X-macro lists and passes
// their addresses here once; the simd backend compares incoming pointers
// against the keys and substitutes its own internal-linkage vector twin,
// falling back to calling the given pointer for unknown bodies (e.g.
// test-local lambdas), which is still bit-identical — just not vectorized.
#ifndef GNMR_TENSOR_BACKEND_SIMD_H_
#define GNMR_TENSOR_BACKEND_SIMD_H_

#include "src/tensor/backend.h"

namespace gnmr {
namespace tensor {
namespace simd {

/// Portable MapLoop/ZipLoop instantiations for the X-macro bodies in
/// element_ops.h, in list order — the exact pointers the ops layer passes
/// to EltwiseMap/EltwiseZip. Built by backend.cc.
struct EltwiseKeyTable {
  const KernelBackend::MapFn* map_keys = nullptr;
  int num_map = 0;
  const KernelBackend::ZipFn* zip_keys = nullptr;
  int num_zip = 0;
};

/// The vectorized backend, constructed on first call with the portable key
/// table. Returns nullptr when backend_simd.cc was compiled without AVX2
/// support (non-x86 target or missing per-TU flags) — the registry then
/// installs the serial fallback under the "simd" name. The caller must
/// ensure the host really supports AVX2+FMA (util::HostCpuFeatures) before
/// routing kernels through the returned backend; constructing it is safe
/// anywhere.
const KernelBackend* NativeSimdBackend(const EltwiseKeyTable& keys);

/// Test hook: when false, MatMul uses the AVX2 16-column tiles even on
/// AVX-512 hosts, so the parity suite can cover both tile paths in one
/// run. Enabling it on a host without avx512f is a no-op (the runtime
/// probe still gates the wide path). Default true.
void SetSimdAvx512TilesEnabledForTest(bool enabled);

}  // namespace simd
}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_BACKEND_SIMD_H_
