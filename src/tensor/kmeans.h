// Deterministic Lloyd's k-means over the rows of a dense matrix.
//
// This is the clustering primitive underneath the IVF retrieval index
// (core::BuildIvfIndex): item embedding rows are partitioned into nlist
// clusters offline, and the serving path probes only the clusters nearest
// a user's query vector. Both hot steps run through the active
// tensor::KernelBackend —
//
//   assign:  row-to-centroid distances via one MatMul (rows x centroids^T)
//            plus RowDot centroid norms; argmin per row with ties broken by
//            the LOWEST centroid id,
//   update:  per-cluster sums via ScatterAddRows keyed by the assignments,
//
// so clustering inherits serial / omp / blocked / sharded execution for
// free and — because every backend accumulates each output element in the
// reference order — produces bit-identical centroids and assignments on
// every backend at any thread or worker count.
//
// Determinism: initial centroids are `k` distinct input rows drawn by a
// fixed-seed util::Rng (uniformly, or by k-means++ D^2 sampling when
// KMeansOptions::plusplus_init is set) and sorted ascending by row index,
// empty clusters
// deterministically keep their previous centroid, and iteration stops on
// the first assign pass that changes nothing (or at max_iters). Same data,
// same options -> the same result, run to run and backend to backend.
#ifndef GNMR_TENSOR_KMEANS_H_
#define GNMR_TENSOR_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace gnmr {
namespace tensor {

struct KMeansOptions {
  /// Upper bound on Lloyd iterations (assign + update passes).
  int64_t max_iters = 25;
  /// Seed of the initial-centroid draw; the only stochastic step.
  uint64_t seed = 1021;
  /// k-means++ (D^2) seeding instead of the uniform draw: the first
  /// center is uniform, each next is drawn with probability proportional
  /// to the row's squared distance to its nearest chosen center (Arthur &
  /// Vassilvitskii 2007) — spread-out seeds that cut Lloyd iterations and
  /// within-cluster variance on skewed catalogues. Same determinism
  /// contract as the default: distances flow through the backend's
  /// QueryDot/RowDot kernels (bit-identical everywhere) and the draws
  /// through the fixed-seed Rng, so same data + same options -> the same
  /// seeds on every backend. Off by default — flipping it changes every
  /// persisted IVF index built from the same seed.
  bool plusplus_init = false;
};

struct KMeansResult {
  /// [k, d] cluster centers.
  Tensor centroids;
  /// assignments[i] in [0, k): the centroid row i belongs to. Ties in
  /// distance go to the lowest centroid id.
  std::vector<int64_t> assignments;
  /// sizes[c] = number of rows assigned to centroid c (sums to n).
  std::vector<int64_t> sizes;
  /// Assign passes executed (>= 1).
  int64_t iterations = 0;
  /// True when the final assign pass changed no assignment (fixed point
  /// reached before max_iters ran out).
  bool converged = false;
};

/// Clusters the `n` rows of `rows` ([n, d] row-major) into `k` groups by
/// squared Euclidean distance. Requires 1 <= k <= n and d >= 1.
KMeansResult KMeansRows(const float* rows, int64_t n, int64_t d, int64_t k,
                        const KMeansOptions& options = KMeansOptions());

/// Convenience overload over a rank-2 tensor.
KMeansResult KMeansRows(const Tensor& rows, int64_t k,
                        const KMeansOptions& options = KMeansOptions());

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_KMEANS_H_
