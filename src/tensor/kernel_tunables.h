// Shared size thresholds and tile shapes for the kernel backends
// (backend.h). Every backend reads its cutoffs from here so "when is it
// worth fanning out / blocking" is decided in exactly one place.
//
// The parallel thresholds were measured on the seed container (see
// BENCH_micro_kernels.json): below them, thread fork/join overhead exceeds
// the kernel's serial runtime. They were previously duplicated inline at
// the two OpenMP call sites in tensor_ops.cc and sparse.cc.
#ifndef GNMR_TENSOR_KERNEL_TUNABLES_H_
#define GNMR_TENSOR_KERNEL_TUNABLES_H_

#include <cstdint>

namespace gnmr {
namespace tensor {

// ---- Parallel fan-out thresholds (OmpBackend, BlockedBackend) ---------------

/// MatMul fans out only when n*k*m (multiply-adds) reaches this.
inline constexpr int64_t kParallelMatMulMinWork = int64_t{1} << 16;

/// SpMM fans out only when nnz*d (multiply-adds) reaches this.
inline constexpr int64_t kParallelSpmmMinWork = int64_t{1} << 16;

/// Row-indexed kernels (GatherRows / ScatterAddRows / RowDot) fan out only
/// when rows*cols (floats moved) reaches this.
inline constexpr int64_t kParallelRowsMinWork = int64_t{1} << 15;

/// Elementwise map/zip kernels fan out only at this many elements.
inline constexpr int64_t kParallelEltwiseMinWork = int64_t{1} << 15;

/// Chunk size of the dynamic row schedule in parallel SpMM; balances
/// power-law per-row nnz skew against scheduling overhead.
inline constexpr int64_t kSpmmRowChunk = 64;

// ---- Deterministic reductions ----------------------------------------------

/// ReduceSum accumulates double partials over fixed chunks of this many
/// elements, then combines partials in chunk order. The chunking is part of
/// the op's contract (independent of backend and thread count), so every
/// backend produces bit-identical sums.
inline constexpr int64_t kReduceSumChunk = 4096;

/// Lane count of the fixed lane-partial accumulation inside a ReduceSum
/// chunk and across a RowDot row: lane l accumulates elements j with
/// j % lanes == l, and lanes are combined in ascending order. Like
/// kReduceSumChunk, the lane shape is part of the op contract — the scalar
/// reference in backend_kernels.h evaluates the exact association the SIMD
/// backend computes with two 4-wide double vectors, so every backend stays
/// bit-identical. 8 = one AVX2 register of floats widened to two of doubles;
/// changing it breaks bit-compatibility with previously recorded results.
inline constexpr int64_t kReduceLanes = 8;

// ---- BlockedBackend tile shapes --------------------------------------------

/// MatMul k-loop unroll width: the blocked row kernel folds this many
/// rank-1 updates into one pass over the output row, dividing the output
/// load/store traffic by the same factor while preserving ascending-k
/// accumulation order.
inline constexpr int64_t kMatMulKUnroll = 4;

/// Blocked SpMM groups rows into bins of roughly this many nonzeros; bins
/// are the scheduling unit, so skewed rows can't serialize a whole chunk.
inline constexpr int64_t kSpmmBinNnz = int64_t{1} << 12;

// ---- SimdBackend tile/panel shapes (backend_simd.cc) ------------------------
// The simd backend's determinism contract is "same per-element accumulation
// order as serial, unfused mul+add" — so the tile shapes below only choose
// which output elements are computed together in registers, never the order
// of a single element's k-sum. They can be retuned freely without breaking
// bit-compatibility; the *lane* constants (kReduceLanes above) cannot.

/// Rows per MatMul register tile. 6 rows x 2 column vectors = 12 live
/// accumulators, leaving headroom in 16 ymm registers for the b-panel loads
/// and the broadcast.
inline constexpr int64_t kSimdMatMulRowTile = 6;

/// Columns per MatMul tile on the AVX2 path (2 x 8-float ymm).
inline constexpr int64_t kSimdMatMulColTileAvx2 = 16;

/// Columns per MatMul tile on the AVX-512 path (2 x 16-float zmm). The
/// wider tile is what clears the >=4x-serial acceptance bar on AVX-512
/// hosts; without FMA (which would change results), AVX2 mul+add peaks
/// around 3x serial on current Intel cores.
inline constexpr int64_t kSimdMatMulColTileAvx512 = 32;

/// Column panel width of the SpMM inner loop: up to 4 ymm accumulators per
/// output row panel, re-walking the row's nonzeros once per panel.
inline constexpr int64_t kSimdSpmmColPanel = 32;

// ---- ShardedBackend (shard_plan.h / shard_pool.h) ---------------------------

/// Worker-thread count of the global shard pool. 0 means "one per hardware
/// thread". Overridable at process start via the GNMR_SHARD_WORKERS
/// environment variable, and at runtime via tensor::SetShardWorkers().
inline constexpr int64_t kShardWorkersDefault = 0;

/// Row-indexed kernels never split below this many rows per shard; tiny
/// matrices stay on one worker instead of paying dispatch latency.
inline constexpr int64_t kShardMinRowsPerShard = 8;

/// Elementwise / reduction kernels never split below this many elements
/// per shard.
inline constexpr int64_t kShardMinElemsPerShard = int64_t{1} << 12;

/// The sharded ExactRetriever never splits the catalogue below this many
/// items per shard (one retrieval tile, see ExactRetriever::kItemBlock).
inline constexpr int64_t kShardMinItemsPerShard = 256;

/// Whether sharded SpMM partitions rows nnz-balanced (true) or uniformly
/// (false). Nnz balancing absorbs power-law degree skew at the cost of one
/// pass over row_ptr when a plan is first built for a matrix.
inline constexpr bool kShardSpmmNnzBalanced = true;

// ---- IVF retrieval (core::BuildIvfIndex, serve::IvfRetriever) ---------------

/// Default cluster count of the IVF index when the caller passes nlist <= 0
/// (clamped to the catalogue size). Sized for the 10k-100k item catalogues
/// the serve bench exercises; larger catalogues should pass ~sqrt(items).
inline constexpr int64_t kIvfDefaultNlist = 64;

/// Default number of clusters probed per request. nlist/8 keeps the
/// scanned fraction well under the exact scan while the bench's measured
/// recall stays high; raise per deployment for tighter recall targets.
inline constexpr int64_t kIvfDefaultNprobe = 8;

/// Deployment guidance threshold: below this many items one blocked exact
/// pass is already cheaper than centroid probing plus posting-list
/// indirection, so serving frontends (gnmr_serve) fall back to the exact
/// strategy. BuildIvfIndex itself indexes any catalogue — tests and
/// offline tooling legitimately cluster small ones.
inline constexpr int64_t kIvfMinItemsForIndex = 1024;

/// Lloyd iteration cap of the offline k-means behind BuildIvfIndex.
inline constexpr int64_t kIvfKMeansMaxIters = 25;

// ---- Quantized IVF scan (tensor/quantize.h, serve::IvfRetriever) ------------

/// Largest code magnitude of the symmetric per-row int8 quantizer: codes
/// live in [-127, 127] (the -128 slot is unused, keeping negation exact and
/// the AVX2 maddubs pair sums inside int16 range: 2 * 127 * 127 < 32767).
/// Scale policy: scale = maxabs(row) / kI8QuantMaxCode, code =
/// clamp(lrintf(x / scale)); an all-zero row gets scale 0 and zero codes.
inline constexpr int64_t kI8QuantMaxCode = 127;

/// Default size of the exact-rerank candidate pool of the quantized IVF
/// scan when the caller passes rerank_k <= 0. The int8 code scan keeps the
/// best rerank_k candidates by approximate score, then the float path
/// rescores exactly those; ~10x a typical top-10 request keeps measured
/// recall at the float-scan level while the rerank stays a rounding error
/// next to the code scan.
inline constexpr int64_t kIvfDefaultRerankK = 128;

/// Deployment guidance threshold: below this many items the float posting
/// lists fit in cache and the code-scan indirection buys nothing, so
/// serving frontends (gnmr_serve, RecService auto-building on swap-in)
/// skip quantization. BuildIvfIndex(..., quantize=true) itself quantizes
/// any catalogue — tests and offline tooling legitimately compress small
/// ones.
inline constexpr int64_t kIvfQuantizeMinItems = 2048;

// ---- HNSW retrieval (core::BuildHnswIndex, serve::HnswRetriever) ------------

/// Default max neighbors per node on levels >= 1 when the caller passes
/// m <= 0; level 0 keeps up to 2*m. 16 is the ballpark every production
/// HNSW deployment starts from: recall on the bench catalogues saturates
/// past it while build time and graph bytes keep growing linearly.
inline constexpr int64_t kHnswDefaultM = 16;

/// Default construction beam width (candidates tracked per layer while
/// inserting) when the caller passes ef_construction <= 0. Build is
/// offline, so this leans toward graph quality over build speed.
inline constexpr int64_t kHnswDefaultEfConstruction = 128;

/// Default search beam width per request when the caller passes
/// ef_search <= 0 (always raised to the request's k). 64 holds the
/// in-tree recall@10 gate at >= 0.95 on the pinned clustered config
/// while evaluating well under 10% of the catalogue.
inline constexpr int64_t kHnswDefaultEfSearch = 64;

/// Fixed seed of the per-item level hash. Levels are a pure function of
/// (item id, this constant) — independent of insertion order and of every
/// runtime knob — so the same catalogue always gets the same level
/// assignment. Changing it changes every persisted graph.
inline constexpr uint64_t kHnswLevelSeed = 0x9e3779b97f4a7c15ull;

/// Hard cap on the level assignment: the geometric tail could in principle
/// hash to an absurd level, and each level costs one greedy descent per
/// query. 2^32 items at m = 16 occupy ~8 levels, so 32 is unreachable in
/// practice and only bounds the pathological case.
inline constexpr int64_t kHnswMaxLevel = 32;

/// Deployment guidance threshold: below this many items one blocked exact
/// pass beats the graph walk's pointer chasing, so serving frontends
/// (gnmr_serve) fall back to the exact strategy — the same policy split as
/// kIvfMinItemsForIndex. BuildHnswIndex itself indexes any catalogue.
inline constexpr int64_t kHnswMinItemsForIndex = 1024;

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_KERNEL_TUNABLES_H_
