// Reverse-mode automatic differentiation over dense Tensors.
//
// A Var is a handle to a node in an implicitly-built computation graph.
// Calling an op in ad_ops.h creates a new node whose backward closure knows
// how to push gradients to its inputs. Backward(root) runs the closures in
// reverse topological order.
//
// The graph is rebuilt on every training step (define-by-run); parameter
// Vars persist across steps and accumulate gradients until ZeroGrad().
#ifndef GNMR_TENSOR_AUTODIFF_H_
#define GNMR_TENSOR_AUTODIFF_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace gnmr {
namespace ad {

/// Graph node: value, accumulated gradient, inputs, and the backward rule.
/// Library users interact with Var; Node is exposed for op implementations.
class Node {
 public:
  tensor::Tensor value;
  /// Lazily allocated gradient buffer with value's shape.
  tensor::Tensor grad;
  bool requires_grad = false;
  /// Creation sequence number; defines the topological order.
  uint64_t id = 0;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Pushes this node's grad into inputs' grads. Empty for leaves.
  std::function<void(Node*)> backward_fn;

  /// Allocates grad as zeros if not yet allocated.
  void EnsureGrad();
  /// grad += g (allocating if needed). g must broadcast-match value's shape
  /// exactly (no broadcasting here; callers reduce first).
  void AccumulateGrad(const tensor::Tensor& g);
  bool has_grad() const { return !grad.empty(); }
};

/// Value-semantics handle to a graph Node.
class Var {
 public:
  /// Null handle; most operations on it abort.
  Var() = default;

  /// Wraps a tensor as a leaf node.
  explicit Var(tensor::Tensor value, bool requires_grad = false);

  /// Leaf that participates in optimisation (requires_grad = true).
  static Var Param(tensor::Tensor value) { return Var(std::move(value), true); }
  /// Leaf excluded from differentiation.
  static Var Constant(tensor::Tensor value) {
    return Var(std::move(value), false);
  }

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const;
  /// In-place value mutation (optimiser updates). Never changes shape.
  tensor::Tensor* mutable_value();
  /// Accumulated gradient; requires has_grad().
  const tensor::Tensor& grad() const;
  bool has_grad() const { return node_ != nullptr && node_->has_grad(); }
  bool requires_grad() const { return node_ != nullptr && node_->requires_grad; }
  /// Clears the gradient buffer (keeps allocation).
  void ZeroGrad();

  const std::vector<int64_t>& shape() const { return value().shape(); }

  std::shared_ptr<Node> node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Creates an op-output Var. `backward` receives the output node and must
/// push gradients into the inputs. The output requires grad iff any input
/// does; backward closures are dropped otherwise (no-grad fast path).
Var MakeOpVar(tensor::Tensor value, std::vector<Var> inputs,
              std::function<void(Node*)> backward);

/// Runs reverse-mode accumulation from `root`, which must be a scalar
/// (numel == 1). Seeds d(root)/d(root) = 1.
void Backward(const Var& root);

/// As Backward(root) but seeds with an explicit gradient of root's shape.
void BackwardWithGrad(const Var& root, const tensor::Tensor& seed);

}  // namespace ad
}  // namespace gnmr

#endif  // GNMR_TENSOR_AUTODIFF_H_
