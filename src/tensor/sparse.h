// Compressed sparse row (CSR) matrices and sparse-dense matrix products.
// The multi-behavior interaction graph is lowered to one CsrMatrix per
// behavior type; graph message passing is an SpMM against node embeddings.
#ifndef GNMR_TENSOR_SPARSE_H_
#define GNMR_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/storage.h"
#include "src/tensor/tensor.h"

namespace gnmr {
namespace tensor {

/// A (row, col, value) coordinate entry used to build CSR matrices.
struct Coo {
  int64_t row = 0;
  int64_t col = 0;
  float value = 1.0f;
};

class CsrMatrix;

/// Zero-copy view of a contiguous row range [first_row, first_row + rows)
/// of a CsrMatrix. The view borrows the parent's row_ptr/col_idx/values
/// storage — no allocation — and exposes row extents re-based to the view:
/// RowBegin/RowEnd index into col_idx()/values(), whose element 0 is the
/// first stored entry of the view's first row. This is the partition
/// boundary the sharded execution layer cuts along (shard_plan.h): each
/// worker walks one view exactly as the serial kernel walks the parent's
/// rows, so per-row arithmetic is untouched.
///
/// The view is invalidated by destroying or mutating the parent matrix.
class CsrRowRange {
 public:
  CsrRowRange() = default;

  /// Rows in the view (may be 0).
  int64_t rows() const { return rows_; }
  /// Column count inherited from the parent.
  int64_t cols() const { return cols_; }
  /// Stored entries covered by the view.
  int64_t nnz() const { return rows_ == 0 ? 0 : row_ptr_[rows_] - base_; }
  /// First parent row covered; view row r is parent row first_row() + r.
  int64_t first_row() const { return first_row_; }

  /// Offset-adjusted extent of view row r within col_idx()/values().
  int64_t RowBegin(int64_t r) const { return row_ptr_[r] - base_; }
  int64_t RowEnd(int64_t r) const { return row_ptr_[r + 1] - base_; }
  int64_t RowNnz(int64_t r) const { return RowEnd(r) - RowBegin(r); }

  /// Column indices / values of the view's entries; valid in
  /// [0, nnz()), addressed via RowBegin/RowEnd.
  const int64_t* col_idx() const { return col_idx_; }
  const float* values() const { return values_; }

 private:
  friend class CsrMatrix;
  CsrRowRange(int64_t first_row, int64_t rows, int64_t cols,
              const int64_t* row_ptr, const int64_t* col_idx,
              const float* values)
      : first_row_(first_row),
        rows_(rows),
        cols_(cols),
        base_(rows == 0 ? 0 : row_ptr[0]),
        row_ptr_(row_ptr),
        col_idx_(col_idx + base_),
        values_(values + base_) {}

  int64_t first_row_ = 0;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t base_ = 0;               // parent row_ptr[first_row]
  const int64_t* row_ptr_ = nullptr;  // parent row_ptr + first_row
  const int64_t* col_idx_ = nullptr;  // parent col_idx + base
  const float* values_ = nullptr;     // parent values + base
};

/// Immutable CSR sparse matrix of shape [rows, cols].
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate entries. Duplicate (row, col) pairs are summed.
  /// Entries may arrive in any order.
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           const std::vector<Coo>& entries);

  /// Non-owning view over externally kept-alive CSR arrays (row_ptr of
  /// size rows+1, col_idx/values of size nnz). `keepalive` — e.g. a
  /// util::MappedFile — is held by the matrix and every copy of it.
  /// Structural invariants are the caller's responsibility; run
  /// CheckInvariants() on untrusted input.
  static CsrMatrix FromView(int64_t rows, int64_t cols, int64_t nnz,
                            const int64_t* row_ptr, const int64_t* col_idx,
                            const float* values,
                            std::shared_ptr<const void> keepalive);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return col_idx_.size(); }
  /// False when the arrays are views over external memory (FromView).
  bool owns_storage() const { return !col_idx_.is_view(); }

  const Storage<int64_t>& row_ptr() const { return row_ptr_; }
  const Storage<int64_t>& col_idx() const { return col_idx_; }
  const Storage<float>& values() const { return values_; }

  /// Number of stored entries in row `r`.
  int64_t RowNnz(int64_t r) const;

  /// Zero-copy view of rows [begin, end); requires 0 <= begin <= end <=
  /// rows(). The view shares this matrix's storage and must not outlive it.
  CsrRowRange RowRangeView(int64_t begin, int64_t end) const;

  /// Transposed copy (CSR of the transpose, i.e. CSC view materialised).
  CsrMatrix Transposed() const;

  /// Returns a copy whose stored values are rescaled row-wise:
  ///   out[i,j] = values[i,j] * scale[i].
  CsrMatrix RowScaled(const std::vector<float>& scale) const;

  /// Row sums of stored values (the weighted out-degree of each row).
  std::vector<float> RowSums() const;

  /// Structural validation: monotone row_ptr, in-range columns, sorted and
  /// duplicate-free column indices per row. Aborts on violation.
  void CheckInvariants() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  Storage<int64_t> row_ptr_;   // size rows_+1
  Storage<int64_t> col_idx_;   // size nnz, sorted within each row
  Storage<float> values_;      // size nnz
};

namespace ops {

/// Sparse-dense product: out = A * x, A: [n,m] CSR, x: [m,d] -> out: [n,d].
/// Executes through the active tensor::KernelBackend (backend.h).
Tensor Spmm(const CsrMatrix& a, const Tensor& x);

}  // namespace ops

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_SPARSE_H_
