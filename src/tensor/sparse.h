// Compressed sparse row (CSR) matrices and sparse-dense matrix products.
// The multi-behavior interaction graph is lowered to one CsrMatrix per
// behavior type; graph message passing is an SpMM against node embeddings.
#ifndef GNMR_TENSOR_SPARSE_H_
#define GNMR_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace gnmr {
namespace tensor {

/// A (row, col, value) coordinate entry used to build CSR matrices.
struct Coo {
  int64_t row = 0;
  int64_t col = 0;
  float value = 1.0f;
};

/// Immutable CSR sparse matrix of shape [rows, cols].
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate entries. Duplicate (row, col) pairs are summed.
  /// Entries may arrive in any order.
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           const std::vector<Coo>& entries);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Number of stored entries in row `r`.
  int64_t RowNnz(int64_t r) const;

  /// Transposed copy (CSR of the transpose, i.e. CSC view materialised).
  CsrMatrix Transposed() const;

  /// Returns a copy whose stored values are rescaled row-wise:
  ///   out[i,j] = values[i,j] * scale[i].
  CsrMatrix RowScaled(const std::vector<float>& scale) const;

  /// Row sums of stored values (the weighted out-degree of each row).
  std::vector<float> RowSums() const;

  /// Structural validation: monotone row_ptr, in-range columns, sorted and
  /// duplicate-free column indices per row. Aborts on violation.
  void CheckInvariants() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows_+1
  std::vector<int64_t> col_idx_;   // size nnz, sorted within each row
  std::vector<float> values_;      // size nnz
};

namespace ops {

/// Sparse-dense product: out = A * x, A: [n,m] CSR, x: [m,d] -> out: [n,d].
/// Executes through the active tensor::KernelBackend (backend.h).
Tensor Spmm(const CsrMatrix& a, const Tensor& x);

}  // namespace ops

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_SPARSE_H_
