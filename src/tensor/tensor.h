// Dense row-major float32 tensor with value semantics. This is the storage
// type underneath the autodiff layer (see autodiff.h); forward-only math on
// raw tensors lives in tensor_ops.h. The buffer behind a tensor is a
// Storage<float> (storage.h): owned heap memory by default, or a read-only
// view over externally kept-alive memory (FromView) — the mechanism that
// lets model_io serve embeddings straight out of a memory-mapped artifact.
#ifndef GNMR_TENSOR_TENSOR_H_
#define GNMR_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/storage.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace gnmr {
namespace tensor {

/// Dense row-major float tensor. Rank 0 is disallowed; scalars are
/// represented as shape {1}. Copying copies the buffer (value semantics);
/// moves are O(1).
class Tensor {
 public:
  /// Empty tensor (numel 0, rank 0). Only assignable/queryable.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape. All dims must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  /// Factory helpers -------------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// Scalar tensor of shape {1}.
  static Tensor Scalar(float value);
  /// Takes ownership of `data`; data.size() must equal the shape's numel.
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data);
  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor RandomNormal(std::vector<int64_t> shape, util::Rng* rng,
                             float mean = 0.0f, float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor RandomUniform(std::vector<int64_t> shape, util::Rng* rng,
                              float lo = 0.0f, float hi = 1.0f);
  /// Non-owning read-only view of the shape's numel floats at `data`.
  /// `keepalive` (e.g. a util::MappedFile) is held by the tensor and every
  /// copy of it, so the memory outlives all views. The tensor is
  /// immutable: mutating accessors abort.
  static Tensor FromView(std::vector<int64_t> shape, const float* data,
                         std::shared_ptr<const void> keepalive);

  /// Shape queries ----------------------------------------------------------

  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }
  /// e.g. "[3, 4]".
  std::string ShapeString() const;

  /// Rank-2 conveniences. Require rank() == 2.
  int64_t rows() const;
  int64_t cols() const;

  /// Element access ---------------------------------------------------------

  /// Mutable access aborts on view tensors (see FromView); code that only
  /// reads should go through a const reference / std::as_const.
  float* data() { return data_.mutable_data(); }
  const float* data() const { return data_.data(); }

  /// False when the buffer is a view over external memory (FromView /
  /// memory-mapped artifacts); such tensors are read-only.
  bool owns_storage() const { return !data_.is_view(); }

  /// Bounds-checked element access for rank-1 tensors.
  float& at(int64_t i);
  float at(int64_t i) const;
  /// Bounds-checked element access for rank-2 tensors.
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  /// Bounds-checked element access for rank-3 tensors.
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;

  /// Mutation helpers -------------------------------------------------------

  /// Sets every element to `value`. Aborts on view tensors.
  void Fill(float value);
  /// Copy (same as copy-construction; provided for call-site clarity).
  /// Deep for owned tensors; O(1) keepalive-sharing for views.
  Tensor Clone() const { return *this; }
  /// Deep copy into freshly owned storage, even when this is a view.
  Tensor OwnedCopy() const;
  /// Returns a tensor with the same data viewed under a new shape.
  /// numel must be preserved. Copies owned data; shares a view's buffer.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Whole-tensor reductions (forward-only conveniences) --------------------

  float SumValue() const;
  float MeanValue() const;
  float MaxValue() const;
  float MinValue() const;
  /// Frobenius / L2 norm of all elements.
  float L2Norm() const;
  /// True if any element is NaN or +-inf.
  bool HasNonFinite() const;

 private:
  std::vector<int64_t> shape_;
  Storage<float> data_;
};

/// Computes the number of elements implied by a shape; checks positivity.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_TENSOR_H_
