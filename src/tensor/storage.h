// Owned-or-view buffer underneath Tensor and CsrMatrix. A Storage<T>
// either owns a heap std::vector<T> (the default, value semantics) or is
// a non-owning read-only view over memory kept alive by a shared keepalive
// — typically a util::MappedFile, so a whole serving model can be served
// straight out of the page cache with zero copies (model_io.h, v3
// artifacts).
//
// Views are immutable: every mutating accessor aborts with a clear
// message. Copying a view is O(1) and shares the keepalive; copying an
// owned storage deep-copies, exactly like the std::vector it wraps.
#ifndef GNMR_TENSOR_STORAGE_H_
#define GNMR_TENSOR_STORAGE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace gnmr {
namespace tensor {

template <typename T>
class Storage {
 public:
  /// Empty owned storage.
  Storage() = default;

  /// Owned storage adopting `data`. Intentionally implicit so call sites
  /// can assign a freshly built std::vector directly.
  Storage(std::vector<T> data)  // NOLINT(runtime/explicit)
      : owned_(std::move(data)) {}

  /// Non-owning read-only view of `size` elements at `data`. `keepalive`
  /// is held for the lifetime of this storage (and every copy of it) so
  /// the underlying memory — e.g. an mmap'ed artifact — cannot be
  /// unmapped while any view is alive. `data` may be null only when
  /// size == 0.
  static Storage View(const T* data, int64_t size,
                      std::shared_ptr<const void> keepalive) {
    GNMR_CHECK_GE(size, 0);
    GNMR_CHECK(data != nullptr || size == 0) << "null view with size " << size;
    Storage s;
    s.view_ = data;
    s.view_size_ = size;
    s.keepalive_ = std::move(keepalive);
    s.is_view_ = true;
    return s;
  }

  bool is_view() const { return is_view_; }

  int64_t size() const {
    return is_view_ ? view_size_ : static_cast<int64_t>(owned_.size());
  }
  bool empty() const { return size() == 0; }

  const T* data() const { return is_view_ ? view_ : owned_.data(); }

  /// Mutable access; aborts on views — view-backed tensors (memory-mapped
  /// model state) are read-only by construction.
  T* mutable_data() {
    GNMR_CHECK(!is_view_) << "attempt to mutate view (mmap-backed) storage";
    return owned_.data();
  }

  /// Replaces the contents with `n` copies of `value`; owned storage only.
  void assign(size_t n, const T& value) {
    GNMR_CHECK(!is_view_) << "attempt to mutate view (mmap-backed) storage";
    owned_.assign(n, value);
  }

  const T& operator[](size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }

  /// Iteration is read-only regardless of ownership.
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// Element-wise content equality, ignoring ownership.
  bool operator==(const Storage& other) const {
    if (size() != other.size()) return false;
    const T* a = data();
    const T* b = other.data();
    for (int64_t i = 0; i < size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  bool operator!=(const Storage& other) const { return !(*this == other); }

  /// The keepalive anchoring a view's memory (null for owned storage).
  const std::shared_ptr<const void>& keepalive() const { return keepalive_; }

 private:
  std::vector<T> owned_;
  const T* view_ = nullptr;
  int64_t view_size_ = 0;
  std::shared_ptr<const void> keepalive_;
  bool is_view_ = false;
};

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_STORAGE_H_
