// Persistent worker pool backing the "sharded" kernel backend.
//
// Plain std::thread — no OpenMP dependency — so sharded execution behaves
// identically in serial and OpenMP builds. Each worker owns its own task
// queue (one mutex + condvar per worker, no shared run queue), and Run()
// deals tasks round-robin across the queues: when the task count equals
// the worker count — the common case, one ShardPlan range per worker —
// every worker receives exactly one task with no cross-worker contention.
//
// Work stealing: a worker whose own queue drains scans its siblings and
// steals the BACK of the first non-empty queue it finds (the owner pops
// the front, so thief and owner contend on opposite ends). This absorbs
// duration skew beyond what nnz-balanced planning can see — a shard that
// turns out heavy at runtime no longer serializes the dispatch while its
// siblings idle. Stealing is best-effort (a worker that finds nothing
// sleeps until its own queue is refilled) and preserves exactly-once: a
// task lives in exactly one queue and is popped under that queue's mutex,
// whoever pops it.
//
// Determinism: the pool never reorders or splits a task; whatever
// accumulation order the task body uses is preserved — a stolen task runs
// the same body on the same range, just on a different thread. Combined
// with the serial per-row kernel bodies (backend_kernels.h) this is what
// keeps the sharded backend bit-identical to the serial reference.
//
// Re-entrancy: a task that calls Run() again (e.g. a sharded retriever
// block landing on a pool worker) executes the nested tasks inline on the
// calling worker instead of enqueueing — queueing to ourselves while the
// outer Run() holds the completion would deadlock.
#ifndef GNMR_TENSOR_SHARD_POOL_H_
#define GNMR_TENSOR_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gnmr {
namespace tensor {

/// Cumulative pool counters (monotonic since pool construction; snapshot
/// twice and subtract to attribute work to a phase, e.g. one train epoch).
struct ShardPoolStats {
  int64_t workers = 0;
  /// Run() calls that fanned out to the pool (inline runs not counted).
  uint64_t dispatches = 0;
  /// Shard tasks executed on pool workers.
  uint64_t tasks = 0;
  /// Tasks an idle worker stole from a sibling's queue (a subset of
  /// `tasks`); nonzero means the dispatch was skewed enough for stealing
  /// to pay.
  uint64_t steals = 0;
  /// Per-worker busy time (nanoseconds spent inside task bodies).
  std::vector<uint64_t> worker_busy_ns;
};

/// Fixed-size pool of shard workers with per-worker task queues.
class ShardPool {
 public:
  explicit ShardPool(int64_t workers);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int64_t workers() const { return static_cast<int64_t>(workers_.size()); }

  /// Executes fn(0) .. fn(num_tasks - 1), each exactly once, and returns
  /// when all have finished. Tasks deal round-robin from a per-dispatch
  /// rotating start worker, so a plan with one range per worker still
  /// maps ranges to workers 1:1 while concurrent small dispatches spread
  /// across the pool instead of piling onto worker 0. Safe to call
  /// concurrently from multiple threads; called from a pool worker it
  /// degrades to an inline loop (see header comment). If a task throws,
  /// the remaining tasks still run and the first exception is rethrown
  /// here on the calling thread (never std::terminate on a worker).
  void Run(int64_t num_tasks, const std::function<void(int64_t)>& fn);

  ShardPoolStats stats() const;

  /// The process-wide pool used by the sharded backend and the sharded
  /// retriever. Sized on first use from GNMR_SHARD_WORKERS, else
  /// kShardWorkersDefault, else std::thread::hardware_concurrency().
  /// Returns a snapshot: hold the shared_ptr across use so a concurrent
  /// SetShardWorkers cannot destroy the pool mid-Run (the old pool stays
  /// alive until its last holder releases it).
  static std::shared_ptr<ShardPool> Global();

 private:
  /// Completion latch shared by all tasks of one Run() call (shard_pool.cc).
  struct Completion;

  struct Task {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t index = 0;
    Completion* completion = nullptr;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;
    std::thread thread;
    /// This worker's position in workers_ (steal scans start at index+1).
    size_t index = 0;
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> tasks_stolen{0};
    bool stop = false;
  };

  void WorkerLoop(Worker* w);
  /// Runs one task body on `w` with the exception-capture, timing and
  /// completion accounting every task gets, owned or stolen.
  void ExecuteTask(Worker* w, const Task& task);
  /// Pops the back of the first non-empty sibling queue (scan starts after
  /// `w`); false when every sibling is drained.
  bool TrySteal(Worker* w, Task* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> dispatches_{0};
  /// Rotates which worker a dispatch starts dealing tasks to.
  std::atomic<uint64_t> next_start_{0};
};

/// Worker count of the global pool.
int64_t ShardWorkers();

/// Stats of the global pool WITHOUT instantiating it: all-zero (workers ==
/// 0) while no kernel has dispatched yet. Lets diagnostics snapshot pool
/// activity for free when sharded execution is idle or unused.
ShardPoolStats GlobalShardPoolStats();

/// Replaces the global pool: `workers` >= 1 sizes it exactly; <= 0
/// re-applies the default sizing (GNMR_SHARD_WORKERS, else
/// kShardWorkersDefault, else one thread per hardware thread). Safe
/// against in-flight sharded kernels: they finish on the pool snapshot
/// they hold, which is torn down once its last holder releases it.
void SetShardWorkers(int64_t workers);

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_SHARD_POOL_H_
