#include "src/tensor/sparse.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/tensor/backend.h"
#include "src/util/check.h"

namespace gnmr {
namespace tensor {

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             const std::vector<Coo>& entries) {
  GNMR_CHECK_GE(rows, 0);
  GNMR_CHECK_GE(cols, 0);
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;

  // Count entries per row, then bucket-place; O(nnz log nnz) due to the
  // per-row sort for deterministic layout and duplicate merging.
  std::vector<Coo> sorted = entries;
  for (const Coo& e : sorted) {
    GNMR_CHECK(e.row >= 0 && e.row < rows) << "row " << e.row;
    GNMR_CHECK(e.col >= 0 && e.col < cols) << "col " << e.col;
  }
  std::sort(sorted.begin(), sorted.end(), [](const Coo& a, const Coo& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  std::vector<int64_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    float acc = 0.0f;
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      acc += sorted[j].value;
      ++j;
    }
    col_idx.push_back(sorted[i].col);
    values.push_back(acc);
    row_ptr[static_cast<size_t>(sorted[i].row) + 1] += 1;
    i = j;
  }
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::FromView(int64_t rows, int64_t cols, int64_t nnz,
                              const int64_t* row_ptr, const int64_t* col_idx,
                              const float* values,
                              std::shared_ptr<const void> keepalive) {
  GNMR_CHECK_GE(rows, 0);
  GNMR_CHECK_GE(cols, 0);
  GNMR_CHECK_GE(nnz, 0);
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = Storage<int64_t>::View(row_ptr, rows + 1, keepalive);
  m.col_idx_ = Storage<int64_t>::View(col_idx, nnz, keepalive);
  m.values_ = Storage<float>::View(values, nnz, std::move(keepalive));
  return m;
}

int64_t CsrMatrix::RowNnz(int64_t r) const {
  GNMR_CHECK(r >= 0 && r < rows_);
  return row_ptr_[static_cast<size_t>(r) + 1] - row_ptr_[static_cast<size_t>(r)];
}

CsrRowRange CsrMatrix::RowRangeView(int64_t begin, int64_t end) const {
  GNMR_CHECK(begin >= 0 && begin <= end && end <= rows_)
      << "row range [" << begin << ", " << end << ") out of [0, " << rows_
      << ")";
  return CsrRowRange(begin, end - begin, cols_, row_ptr_.data() + begin,
                     col_idx_.data(), values_.data());
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  std::vector<int64_t> t_row_ptr(static_cast<size_t>(cols_) + 1, 0);
  std::vector<int64_t> t_col_idx(static_cast<size_t>(nnz()), 0);
  std::vector<float> t_values(static_cast<size_t>(nnz()), 0.0f);

  // Counting pass.
  for (int64_t c : col_idx_) t_row_ptr[static_cast<size_t>(c) + 1] += 1;
  for (size_t r = 0; r < static_cast<size_t>(cols_); ++r) {
    t_row_ptr[r + 1] += t_row_ptr[r];
  }
  // Placement pass; iterating source rows in order keeps target columns
  // sorted within each target row.
  std::vector<int64_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      int64_t c = col_idx_[static_cast<size_t>(p)];
      int64_t dst = cursor[static_cast<size_t>(c)]++;
      t_col_idx[static_cast<size_t>(dst)] = r;
      t_values[static_cast<size_t>(dst)] = values_[static_cast<size_t>(p)];
    }
  }
  t.row_ptr_ = std::move(t_row_ptr);
  t.col_idx_ = std::move(t_col_idx);
  t.values_ = std::move(t_values);
  return t;
}

CsrMatrix CsrMatrix::RowScaled(const std::vector<float>& scale) const {
  GNMR_CHECK_EQ(static_cast<int64_t>(scale.size()), rows_);
  // The result owns fresh values even when this matrix is a view; the
  // structure arrays are shared via Storage's cheap copy.
  CsrMatrix out = *this;
  std::vector<float> scaled(values_.begin(), values_.end());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      scaled[static_cast<size_t>(p)] *= scale[static_cast<size_t>(r)];
    }
  }
  out.values_ = std::move(scaled);
  return out;
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(static_cast<size_t>(rows_), 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      acc += values_[static_cast<size_t>(p)];
    }
    sums[static_cast<size_t>(r)] = static_cast<float>(acc);
  }
  return sums;
}

void CsrMatrix::CheckInvariants() const {
  GNMR_CHECK_EQ(static_cast<int64_t>(row_ptr_.size()), rows_ + 1);
  GNMR_CHECK_EQ(row_ptr_.front(), 0);
  GNMR_CHECK_EQ(row_ptr_.back(), nnz());
  GNMR_CHECK_EQ(col_idx_.size(), values_.size());
  for (size_t r = 0; r < static_cast<size_t>(rows_); ++r) {
    GNMR_CHECK_LE(row_ptr_[r], row_ptr_[r + 1]) << "row_ptr not monotone";
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      size_t up = static_cast<size_t>(p);
      GNMR_CHECK(col_idx_[up] >= 0 && col_idx_[up] < cols_)
          << "col out of range in row " << r;
      if (p > row_ptr_[r]) {
        GNMR_CHECK_LT(col_idx_[up - 1], col_idx_[up])
            << "cols not strictly sorted in row " << r;
      }
    }
  }
}

namespace ops {

Tensor Spmm(const CsrMatrix& a, const Tensor& x) {
  GNMR_CHECK_EQ(x.rank(), 2);
  GNMR_CHECK_EQ(a.cols(), x.rows())
      << "Spmm shape mismatch: A cols " << a.cols() << " vs x rows "
      << x.rows();
  Tensor out({a.rows(), x.cols()});
  GetBackend().Spmm(a, x.data(), out.data(), x.cols());
  return out;
}

}  // namespace ops

}  // namespace tensor
}  // namespace gnmr
