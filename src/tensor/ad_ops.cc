#include "src/tensor/ad_ops.h"

#include <cmath>
#include <utility>

#include "src/tensor/backend.h"
#include "src/tensor/element_ops.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace ad {

namespace top = tensor::ops;
using tensor::Tensor;

namespace {

// Backward rules of the unary activations are elementwise zips of the
// upstream grad against the cached input/output; they dispatch through
// the kernel backend like their forward counterparts. The element bodies
// (elops::ReluBwdEl, ...) live in element_ops.h — shared with the SIMD
// backend's vector twins — and are baked into the shared tensor::ZipLoop
// instantiations (backend.h) so the backend pays one indirect call per
// range, not per element. The zip convention is x = cached forward value,
// y = upstream gradient.
using ElZipFn = float (*)(float a, float g, float p);

template <ElZipFn F>
Tensor BackwardZip(const Tensor& a, const Tensor& grad, float p = 0.0f) {
  Tensor out(grad.shape());
  tensor::GetBackend().EltwiseZip(a.data(), grad.data(), out.data(),
                                  grad.numel(), tensor::ZipLoop<F>, p);
  return out;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  Tensor out = top::Add(a.value(), b.value());
  return MakeOpVar(std::move(out), {a, b}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    Node* b_node = self->inputs[1].get();
    if (a_node->requires_grad) {
      a_node->AccumulateGrad(top::ReduceToShape(self->grad,
                                                a_node->value.shape()));
    }
    if (b_node->requires_grad) {
      b_node->AccumulateGrad(top::ReduceToShape(self->grad,
                                                b_node->value.shape()));
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = top::Sub(a.value(), b.value());
  return MakeOpVar(std::move(out), {a, b}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    Node* b_node = self->inputs[1].get();
    if (a_node->requires_grad) {
      a_node->AccumulateGrad(top::ReduceToShape(self->grad,
                                                a_node->value.shape()));
    }
    if (b_node->requires_grad) {
      b_node->AccumulateGrad(
          top::ReduceToShape(top::Neg(self->grad), b_node->value.shape()));
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = top::Mul(a.value(), b.value());
  return MakeOpVar(std::move(out), {a, b}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    Node* b_node = self->inputs[1].get();
    if (a_node->requires_grad) {
      a_node->AccumulateGrad(top::ReduceToShape(
          top::Mul(self->grad, b_node->value), a_node->value.shape()));
    }
    if (b_node->requires_grad) {
      b_node->AccumulateGrad(top::ReduceToShape(
          top::Mul(self->grad, a_node->value), b_node->value.shape()));
    }
  });
}

Var Div(const Var& a, const Var& b) {
  Tensor out = top::Div(a.value(), b.value());
  return MakeOpVar(std::move(out), {a, b}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    Node* b_node = self->inputs[1].get();
    if (a_node->requires_grad) {
      a_node->AccumulateGrad(top::ReduceToShape(
          top::Div(self->grad, b_node->value), a_node->value.shape()));
    }
    if (b_node->requires_grad) {
      // d/db (a/b) = -a / b^2
      Tensor db = top::Neg(top::Div(top::Mul(self->grad, a_node->value),
                                    top::Square(b_node->value)));
      b_node->AccumulateGrad(top::ReduceToShape(db, b_node->value.shape()));
    }
  });
}

Var AddScalar(const Var& a, float s) {
  Tensor out = top::AddScalar(a.value(), s);
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    self->inputs[0]->AccumulateGrad(self->grad);
  });
}

Var MulScalar(const Var& a, float s) {
  Tensor out = top::MulScalar(a.value(), s);
  return MakeOpVar(std::move(out), {a}, [s](Node* self) {
    self->inputs[0]->AccumulateGrad(top::MulScalar(self->grad, s));
  });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var MatMul(const Var& a, const Var& b) {
  Tensor out = top::MatMul(a.value(), b.value());
  return MakeOpVar(std::move(out), {a, b}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    Node* b_node = self->inputs[1].get();
    if (a_node->requires_grad) {
      a_node->AccumulateGrad(
          top::MatMul(self->grad, top::Transpose(b_node->value)));
    }
    if (b_node->requires_grad) {
      b_node->AccumulateGrad(
          top::MatMul(top::Transpose(a_node->value), self->grad));
    }
  });
}

Var Transpose(const Var& a) {
  Tensor out = top::Transpose(a.value());
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    self->inputs[0]->AccumulateGrad(top::Transpose(self->grad));
  });
}

Var Spmm(const tensor::CsrMatrix* a, const tensor::CsrMatrix* a_transposed,
         const Var& x) {
  GNMR_CHECK(a != nullptr && a_transposed != nullptr);
  GNMR_CHECK_EQ(a->rows(), a_transposed->cols());
  GNMR_CHECK_EQ(a->cols(), a_transposed->rows());
  Tensor out = top::Spmm(*a, x.value());
  return MakeOpVar(std::move(out), {x}, [a_transposed](Node* self) {
    self->inputs[0]->AccumulateGrad(top::Spmm(*a_transposed, self->grad));
  });
}

Var Relu(const Var& a) {
  Tensor out = top::Relu(a.value());
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    a_node->AccumulateGrad(
        BackwardZip<&tensor::elops::ReluBwdEl>(a_node->value, self->grad));
  });
}

Var LeakyRelu(const Var& a, float alpha) {
  Tensor out = top::LeakyRelu(a.value(), alpha);
  return MakeOpVar(std::move(out), {a}, [alpha](Node* self) {
    Node* a_node = self->inputs[0].get();
    a_node->AccumulateGrad(BackwardZip<&tensor::elops::LeakyReluBwdEl>(
        a_node->value, self->grad, alpha));
  });
}

Var Sigmoid(const Var& a) {
  Tensor out = top::Sigmoid(a.value());
  Tensor y = out;  // cache output for backward
  return MakeOpVar(std::move(out), {a}, [y = std::move(y)](Node* self) {
    self->inputs[0]->AccumulateGrad(
        BackwardZip<&tensor::elops::SigmoidBwdEl>(y, self->grad));
  });
}

Var Tanh(const Var& a) {
  Tensor out = top::Tanh(a.value());
  Tensor y = out;
  return MakeOpVar(std::move(out), {a}, [y = std::move(y)](Node* self) {
    self->inputs[0]->AccumulateGrad(
        BackwardZip<&tensor::elops::TanhBwdEl>(y, self->grad));
  });
}

Var Exp(const Var& a) {
  Tensor out = top::Exp(a.value());
  Tensor y = out;
  return MakeOpVar(std::move(out), {a}, [y = std::move(y)](Node* self) {
    self->inputs[0]->AccumulateGrad(top::Mul(self->grad, y));
  });
}

Var Log(const Var& a, float eps) {
  Tensor out = top::Log(a.value(), eps);
  return MakeOpVar(std::move(out), {a}, [eps](Node* self) {
    Node* a_node = self->inputs[0].get();
    a_node->AccumulateGrad(
        BackwardZip<&tensor::elops::LogBwdEl>(a_node->value, self->grad, eps));
  });
}

Var Sqrt(const Var& a) {
  Tensor out = top::Sqrt(a.value());
  Tensor y = out;
  return MakeOpVar(std::move(out), {a}, [y = std::move(y)](Node* self) {
    self->inputs[0]->AccumulateGrad(
        BackwardZip<&tensor::elops::SqrtBwdEl>(y, self->grad));
  });
}

Var Square(const Var& a) {
  Tensor out = top::Square(a.value());
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    a_node->AccumulateGrad(
        top::MulScalar(top::Mul(self->grad, a_node->value), 2.0f));
  });
}

Var Softplus(const Var& a) {
  Tensor out = top::Softplus(a.value());
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    a_node->AccumulateGrad(
        top::Mul(self->grad, top::Sigmoid(a_node->value)));
  });
}

Var SoftmaxRows(const Var& a) {
  Tensor out = top::SoftmaxRows(a.value());
  Tensor y = out;
  return MakeOpVar(std::move(out), {a}, [y = std::move(y)](Node* self) {
    // da = y * (g - rowsum(g * y))
    Tensor gy = top::Mul(self->grad, y);
    Tensor row = top::SumAxis(gy, 1);                 // [n,1]
    Tensor da = top::Mul(y, top::Sub(self->grad, row));
    self->inputs[0]->AccumulateGrad(da);
  });
}

Var LogSoftmaxRows(const Var& a) {
  Tensor out = top::LogSoftmaxRows(a.value());
  Tensor y = out;
  return MakeOpVar(std::move(out), {a}, [y = std::move(y)](Node* self) {
    // da = g - softmax(a) * rowsum(g)
    Tensor softmax = top::Exp(y);
    Tensor row = top::SumAxis(self->grad, 1);         // [n,1]
    Tensor da = top::Sub(self->grad, top::Mul(softmax, row));
    self->inputs[0]->AccumulateGrad(da);
  });
}

Var SumAll(const Var& a) {
  Tensor out = top::SumAll(a.value());
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    float g = self->grad.data()[0];
    a_node->AccumulateGrad(Tensor::Full(a_node->value.shape(), g));
  });
}

Var MeanAll(const Var& a) {
  Tensor out = top::MeanAll(a.value());
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    float g = self->grad.data()[0] /
              static_cast<float>(a_node->value.numel());
    a_node->AccumulateGrad(Tensor::Full(a_node->value.shape(), g));
  });
}

Var SumAxis(const Var& a, int axis) {
  Tensor out = top::SumAxis(a.value(), axis);
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    // Broadcast the reduced grad back to input shape.
    Tensor zeros(a_node->value.shape());
    a_node->AccumulateGrad(top::Add(zeros, self->grad));
  });
}

Var MeanAxis(const Var& a, int axis) {
  Tensor out = top::MeanAxis(a.value(), axis);
  float denom = axis == 0 ? static_cast<float>(a.value().rows())
                          : static_cast<float>(a.value().cols());
  return MakeOpVar(std::move(out), {a}, [denom](Node* self) {
    Node* a_node = self->inputs[0].get();
    Tensor zeros(a_node->value.shape());
    a_node->AccumulateGrad(
        top::Add(zeros, top::MulScalar(self->grad, 1.0f / denom)));
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  GNMR_CHECK(!parts.empty());
  std::vector<const Tensor*> raw;
  raw.reserve(parts.size());
  for (const Var& p : parts) raw.push_back(&p.value());
  Tensor out = top::ConcatCols(raw);
  return MakeOpVar(std::move(out), parts, [](Node* self) {
    int64_t off = 0;
    for (auto& in : self->inputs) {
      int64_t w = in->value.cols();
      if (in->requires_grad) {
        in->AccumulateGrad(top::SliceCols(self->grad, off, w));
      }
      off += w;
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  GNMR_CHECK(!parts.empty());
  std::vector<const Tensor*> raw;
  raw.reserve(parts.size());
  for (const Var& p : parts) raw.push_back(&p.value());
  Tensor out = top::ConcatRows(raw);
  return MakeOpVar(std::move(out), parts, [](Node* self) {
    int64_t off = 0;
    for (auto& in : self->inputs) {
      int64_t h = in->value.rows();
      if (in->requires_grad) {
        in->AccumulateGrad(top::SliceRows(self->grad, off, h));
      }
      off += h;
    }
  });
}

Var SliceCols(const Var& a, int64_t start, int64_t len) {
  Tensor out = top::SliceCols(a.value(), start, len);
  return MakeOpVar(std::move(out), {a}, [start, len](Node* self) {
    Node* a_node = self->inputs[0].get();
    Tensor da(a_node->value.shape());
    int64_t n = da.rows();
    int64_t m = da.cols();
    const float* g = self->grad.data();
    float* d = da.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < len; ++j) {
        d[i * m + start + j] = g[i * len + j];
      }
    }
    a_node->AccumulateGrad(da);
  });
}

Var SliceRows(const Var& a, int64_t start, int64_t len) {
  Tensor out = top::SliceRows(a.value(), start, len);
  return MakeOpVar(std::move(out), {a}, [start, len](Node* self) {
    Node* a_node = self->inputs[0].get();
    Tensor da(a_node->value.shape());
    int64_t m = da.cols();
    std::copy(self->grad.data(), self->grad.data() + len * m,
              da.data() + start * m);
    a_node->AccumulateGrad(da);
  });
}

Var Reshape(const Var& a, std::vector<int64_t> new_shape) {
  Tensor out = a.value().Reshaped(new_shape);
  return MakeOpVar(std::move(out), {a}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    a_node->AccumulateGrad(self->grad.Reshaped(a_node->value.shape()));
  });
}

Var GatherRows(const Var& table, std::vector<int64_t> idx) {
  Tensor out = top::GatherRows(table.value(), idx);
  return MakeOpVar(std::move(out), {table},
                   [idx = std::move(idx)](Node* self) {
                     Node* t = self->inputs[0].get();
                     Tensor dt(t->value.shape());
                     top::ScatterAddRows(&dt, idx, self->grad);
                     t->AccumulateGrad(dt);
                   });
}

Var RowDot(const Var& a, const Var& b) {
  Tensor out = top::RowDot(a.value(), b.value());
  return MakeOpVar(std::move(out), {a, b}, [](Node* self) {
    Node* a_node = self->inputs[0].get();
    Node* b_node = self->inputs[1].get();
    // grad is [n,1]; broadcast-multiply against the other operand.
    if (a_node->requires_grad) {
      a_node->AccumulateGrad(top::Mul(b_node->value, self->grad));
    }
    if (b_node->requires_grad) {
      b_node->AccumulateGrad(top::Mul(a_node->value, self->grad));
    }
  });
}

Var Dropout(const Var& a, float p, bool training, util::Rng* rng) {
  GNMR_CHECK(p >= 0.0f && p < 1.0f) << "dropout rate " << p;
  if (!training || p == 0.0f) return a;
  GNMR_CHECK(rng != nullptr);
  Tensor mask(a.value().shape());
  float scale = 1.0f / (1.0f - p);
  float* md = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    md[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  Tensor out = top::Mul(a.value(), mask);
  return MakeOpVar(std::move(out), {a}, [mask = std::move(mask)](Node* self) {
    self->inputs[0]->AccumulateGrad(top::Mul(self->grad, mask));
  });
}

Var PairwiseHingeLoss(const Var& pos_scores, const Var& neg_scores,
                      float margin) {
  // mean(relu(margin - pos + neg))
  Var diff = AddScalar(Sub(neg_scores, pos_scores), margin);
  return MeanAll(Relu(diff));
}

Var BprLoss(const Var& pos_scores, const Var& neg_scores) {
  // -log sigmoid(pos - neg) == softplus(neg - pos)
  return MeanAll(Softplus(Sub(neg_scores, pos_scores)));
}

Var BceWithLogitsLoss(const Var& logits, const Var& targets) {
  GNMR_CHECK(logits.value().SameShape(targets.value()));
  return MeanAll(Sub(Softplus(logits), Mul(logits, targets)));
}

Var MseLoss(const Var& pred, const Var& target) {
  GNMR_CHECK(pred.value().SameShape(target.value()));
  return MeanAll(Square(Sub(pred, target)));
}

Var L2Penalty(const std::vector<Var>& params, float lambda) {
  GNMR_CHECK(!params.empty());
  Var total;
  for (const Var& p : params) {
    Var term = SumAll(Square(p));
    total = total.defined() ? Add(total, term) : term;
  }
  return MulScalar(total, lambda);
}

}  // namespace ad
}  // namespace gnmr
