// Hand-vectorized AVX2/FMA micro-kernels behind the "simd" backend.
//
// This is the only translation unit built with -mavx2 -mfma (plus
// -ffp-contract=off and -O3; see src/CMakeLists.txt), so everything that
// can emit vector instructions lives here behind internal linkage. Two
// hard rules keep a mixed binary safe on hosts without AVX2:
//
//   1. No shared inline kernel bodies. backend_kernels.h is deliberately
//      NOT included and the elops:: inline functions are never odr-used:
//      an external-linkage inline function compiled here would be a
//      COMDAT candidate, and if the linker kept *this* TU's AVX2 copy it
//      would also run inside the portable serial path — SIGILL on a
//      non-AVX2 host. Every helper below is internal-linkage.
//   2. The registry (backend.cc) only calls NativeSimdBackend() after the
//      runtime cpuid probe (util::HostCpuFeatures) confirms AVX2+FMA, so
//      no code from this TU executes on hosts that lack them.
//
// Determinism contract (same as every other backend): each output element
// is accumulated in exactly the serial reference order, with mul and add
// kept unfused. The tile/panel shapes below only pick which *elements*
// share registers, never the order within one element's sum:
//   - MatMul: a register tile covers kSimdMatMulRowTile output rows x
//     16/32 columns and sweeps the full k range ascending; each output
//     element sees the same ascending-k mul+add chain as MatMulRow,
//     including its zero-skip (a per-row-tile zero scan picks a guarded
//     tile kernel when needed, so 0 * inf can never poison a row).
//   - SpMM: column panels re-walk a row's nonzeros once per panel; each
//     output element still accumulates in ascending entry order.
//   - RowDot / ReduceSum / QueryDot(Indexed): the kReduceLanes=8
//     lane-partial association (backend.h LanePartialDot — never odr-used
//     here, see rule 1) IS what two 4-wide double accumulators compute, so
//     the vector loop reproduces the scalar reference bit-for-bit by
//     construction.
//   - I8QueryDot: pure int32 arithmetic is associative, so the maddubs
//     reduction equals quant::I8Dot exactly — no association contract
//     needed, just the no--128-codes precondition that keeps the pairwise
//     int16 sums saturation-free.
//   - EltwiseMap/Zip: per-element single-expression bodies have no
//     accumulation to reorder; the twins here are generated from the same
//     X-macro expressions as the portable copies (element_ops.h) and are
//     bit-identical under -ffp-contract=off, just compiled where the
//     autovectorizer may use AVX2.
#include "src/tensor/backend_simd.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>

#include "src/tensor/element_ops.h"
#include "src/tensor/kernel_tunables.h"
#include "src/util/cpu_features.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gnmr {
namespace tensor {
namespace simd {
namespace {

constexpr int kRT = static_cast<int>(kSimdMatMulRowTile);
constexpr int64_t kCT2 = kSimdMatMulColTileAvx2;
constexpr int64_t kCT5 = kSimdMatMulColTileAvx512;

std::atomic<bool> g_avx512_tiles{true};

// ---- MatMul -----------------------------------------------------------------

// True if any of `count` floats starting at `p` is (+/-)0.0f. One row
// tile's slice of A is contiguous (kRT rows x k), so MatMul scans it once
// per row tile to choose between the branch-free and the guarded tile
// kernels below.
bool AnyZero(const float* p, int64_t count) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256 eq = _mm256_cmp_ps(_mm256_loadu_ps(p + i), zero, _CMP_EQ_OQ);
    if (_mm256_movemask_ps(eq) != 0) return true;
  }
  for (; i < count; ++i) {
    if (p[i] == 0.0f) return true;
  }
  return false;
}

// Serial-order rows restricted to columns [j0, j1): the row/column tails
// around the register tiles. Identical loop structure (and zero-skip) to
// the serial MatMulRow, so tail elements match the reference exactly.
void ScalarMatMulRows(const float* a, const float* b, float* out, int64_t i0,
                      int64_t i1, int64_t k, int64_t m, int64_t j0,
                      int64_t j1) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * m;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * m;
      for (int64_t j = j0; j < j1; ++j) out_row[j] += av * brow[j];
    }
  }
}

// kRT x 16 register tile, branch-free: valid only when the tile's slice
// of A holds no zeros (AnyZero above), since it skips the serial
// reference's zero-skip. Unfused mul+add, ascending k.
void Tile6x16(const float* a, const float* b, float* out, int64_t i0,
              int64_t j0, int64_t k, int64_t m) {
  __m256 acc[kRT][2];
  for (int r = 0; r < kRT; ++r) {
    acc[r][0] = _mm256_loadu_ps(out + (i0 + r) * m + j0);
    acc[r][1] = _mm256_loadu_ps(out + (i0 + r) * m + j0 + 8);
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    __m256 b0 = _mm256_loadu_ps(b + kk * m + j0);
    __m256 b1 = _mm256_loadu_ps(b + kk * m + j0 + 8);
    for (int r = 0; r < kRT; ++r) {
      __m256 av = _mm256_broadcast_ss(a + (i0 + r) * k + kk);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
    }
  }
  for (int r = 0; r < kRT; ++r) {
    _mm256_storeu_ps(out + (i0 + r) * m + j0, acc[r][0]);
    _mm256_storeu_ps(out + (i0 + r) * m + j0 + 8, acc[r][1]);
  }
}

// Guarded kRT x 16 tile: per (k, row) zero test reproducing the serial
// zero-skip exactly. Used only for row tiles whose A slice contains
// zeros.
void Tile6x16Guarded(const float* a, const float* b, float* out, int64_t i0,
                     int64_t j0, int64_t k, int64_t m) {
  __m256 acc[kRT][2];
  for (int r = 0; r < kRT; ++r) {
    acc[r][0] = _mm256_loadu_ps(out + (i0 + r) * m + j0);
    acc[r][1] = _mm256_loadu_ps(out + (i0 + r) * m + j0 + 8);
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    __m256 b0 = _mm256_loadu_ps(b + kk * m + j0);
    __m256 b1 = _mm256_loadu_ps(b + kk * m + j0 + 8);
    for (int r = 0; r < kRT; ++r) {
      float av = a[(i0 + r) * k + kk];
      if (av == 0.0f) continue;
      __m256 avv = _mm256_set1_ps(av);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(avv, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(avv, b1));
    }
  }
  for (int r = 0; r < kRT; ++r) {
    _mm256_storeu_ps(out + (i0 + r) * m + j0, acc[r][0]);
    _mm256_storeu_ps(out + (i0 + r) * m + j0 + 8, acc[r][1]);
  }
}

// kRT x 32 tiles for AVX-512 hosts: with mul+add kept unfused (FMA would
// change rounding), AVX2 peaks around 3x serial on current cores; the
// 2x-wider zmm tile is what clears the >=4x target. Runtime-dispatched on
// cpuid avx512f — these two functions are the only AVX-512 code in the
// binary.
__attribute__((target("avx512f"))) void Tile6x32(const float* a,
                                                 const float* b, float* out,
                                                 int64_t i0, int64_t j0,
                                                 int64_t k, int64_t m) {
  __m512 acc[kRT][2];
  for (int r = 0; r < kRT; ++r) {
    acc[r][0] = _mm512_loadu_ps(out + (i0 + r) * m + j0);
    acc[r][1] = _mm512_loadu_ps(out + (i0 + r) * m + j0 + 16);
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    __m512 b0 = _mm512_loadu_ps(b + kk * m + j0);
    __m512 b1 = _mm512_loadu_ps(b + kk * m + j0 + 16);
    for (int r = 0; r < kRT; ++r) {
      __m512 av = _mm512_set1_ps(a[(i0 + r) * k + kk]);
      acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_mul_ps(av, b0));
      acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_mul_ps(av, b1));
    }
  }
  for (int r = 0; r < kRT; ++r) {
    _mm512_storeu_ps(out + (i0 + r) * m + j0, acc[r][0]);
    _mm512_storeu_ps(out + (i0 + r) * m + j0 + 16, acc[r][1]);
  }
}

__attribute__((target("avx512f"))) void Tile6x32Guarded(
    const float* a, const float* b, float* out, int64_t i0, int64_t j0,
    int64_t k, int64_t m) {
  __m512 acc[kRT][2];
  for (int r = 0; r < kRT; ++r) {
    acc[r][0] = _mm512_loadu_ps(out + (i0 + r) * m + j0);
    acc[r][1] = _mm512_loadu_ps(out + (i0 + r) * m + j0 + 16);
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    __m512 b0 = _mm512_loadu_ps(b + kk * m + j0);
    __m512 b1 = _mm512_loadu_ps(b + kk * m + j0 + 16);
    for (int r = 0; r < kRT; ++r) {
      float av = a[(i0 + r) * k + kk];
      if (av == 0.0f) continue;
      __m512 avv = _mm512_set1_ps(av);
      acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_mul_ps(avv, b0));
      acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_mul_ps(avv, b1));
    }
  }
  for (int r = 0; r < kRT; ++r) {
    _mm512_storeu_ps(out + (i0 + r) * m + j0, acc[r][0]);
    _mm512_storeu_ps(out + (i0 + r) * m + j0 + 16, acc[r][1]);
  }
}

// One full row tile (rows [i0, i0 + kRT)): zero-scan once, then cascade
// 32-wide tiles (AVX-512 hosts), 16-wide tiles, scalar column tail. Each
// output element is computed by exactly one kernel over the full k range.
void MatMulRowTile(const float* a, const float* b, float* out, int64_t i0,
                   int64_t k, int64_t m, bool use512) {
  const bool zeros = AnyZero(a + i0 * k, kRT * k);
  int64_t j0 = 0;
  if (use512) {
    for (; j0 + kCT5 <= m; j0 += kCT5) {
      if (zeros) {
        Tile6x32Guarded(a, b, out, i0, j0, k, m);
      } else {
        Tile6x32(a, b, out, i0, j0, k, m);
      }
    }
  }
  for (; j0 + kCT2 <= m; j0 += kCT2) {
    if (zeros) {
      Tile6x16Guarded(a, b, out, i0, j0, k, m);
    } else {
      Tile6x16(a, b, out, i0, j0, k, m);
    }
  }
  if (j0 < m) ScalarMatMulRows(a, b, out, i0, i0 + kRT, k, m, j0, m);
}

// ---- SpMM -------------------------------------------------------------------

// One output row, column-paneled: up to 4 ymm accumulators per panel,
// re-walking the row's nonzeros (ascending, like the serial SpmmRow) once
// per panel. Unfused mul+add.
void SpmmRowSimd(const int64_t* row_ptr, const int64_t* col_idx,
                 const float* values, const float* x, float* out_row,
                 int64_t i, int64_t d) {
  const int64_t p0 = row_ptr[i];
  const int64_t p1 = row_ptr[i + 1];
  int64_t j0 = 0;
  for (; j0 + kSimdSpmmColPanel <= d; j0 += kSimdSpmmColPanel) {
    __m256 acc0 = _mm256_loadu_ps(out_row + j0);
    __m256 acc1 = _mm256_loadu_ps(out_row + j0 + 8);
    __m256 acc2 = _mm256_loadu_ps(out_row + j0 + 16);
    __m256 acc3 = _mm256_loadu_ps(out_row + j0 + 24);
    for (int64_t p = p0; p < p1; ++p) {
      __m256 v = _mm256_set1_ps(values[p]);
      const float* xr = x + col_idx[p] * d + j0;
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(v, _mm256_loadu_ps(xr)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 8)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 16)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 24)));
    }
    _mm256_storeu_ps(out_row + j0, acc0);
    _mm256_storeu_ps(out_row + j0 + 8, acc1);
    _mm256_storeu_ps(out_row + j0 + 16, acc2);
    _mm256_storeu_ps(out_row + j0 + 24, acc3);
  }
  for (; j0 + 8 <= d; j0 += 8) {
    __m256 acc = _mm256_loadu_ps(out_row + j0);
    for (int64_t p = p0; p < p1; ++p) {
      __m256 v = _mm256_set1_ps(values[p]);
      const float* xr = x + col_idx[p] * d + j0;
      acc = _mm256_add_ps(acc, _mm256_mul_ps(v, _mm256_loadu_ps(xr)));
    }
    _mm256_storeu_ps(out_row + j0, acc);
  }
  if (j0 < d) {
    for (int64_t p = p0; p < p1; ++p) {
      float v = values[p];
      const float* xr = x + col_idx[p] * d;
      for (int64_t j = j0; j < d; ++j) out_row[j] += v * xr[j];
    }
  }
}

// ---- Scatter-add ------------------------------------------------------------

// Target rows in [lo, hi) only, sources applied in ascending r (same
// order as the serial reference for every target row, however [0, rows)
// is partitioned). The row add is elementwise — one IEEE add per element
// — so vector width cannot change results.
void ScatterAddRange(float* target, int64_t m, const int64_t* idx,
                     int64_t count, const float* src, int64_t lo,
                     int64_t hi) {
  for (int64_t r = 0; r < count; ++r) {
    int64_t dst = idx[r];
    if (dst < lo || dst >= hi) continue;
    const float* srow = src + r * m;
    float* trow = target + dst * m;
    int64_t j = 0;
    for (; j + 8 <= m; j += 8) {
      _mm256_storeu_ps(trow + j, _mm256_add_ps(_mm256_loadu_ps(trow + j),
                                               _mm256_loadu_ps(srow + j)));
    }
    for (; j < m; ++j) trow[j] += srow[j];
  }
}

// ---- Lane-partial reductions ------------------------------------------------

// Row dot in double via two 4-wide double accumulators. After the vector
// loop, accumulator lanes spill to lane[0..7] where lane l holds exactly
// the elements j with j % 8 == l — the association backend_kernels.h's
// scalar RowDotOne is specified to compute — then tail elements and the
// ascending lane combine proceed identically to the scalar reference.
double LaneDot(const float* a_row, const float* b_row, int64_t m) {
  static_assert(kReduceLanes == 8,
                "two 4-wide double accumulators per 8-float group");
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  int64_t j = 0;
  for (; j + 8 <= m; j += 8) {
    __m256 av = _mm256_loadu_ps(a_row + j);
    __m256 bv = _mm256_loadu_ps(b_row + j);
    __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(av));
    __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1));
    __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
    __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
    lo = _mm256_add_pd(lo, _mm256_mul_pd(a_lo, b_lo));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(a_hi, b_hi));
  }
  double lane[kReduceLanes];
  _mm256_storeu_pd(lane, lo);
  _mm256_storeu_pd(lane + 4, hi);
  for (int64_t l = 0; j + l < m; ++l) {
    lane[l] += static_cast<double>(a_row[j + l]) * b_row[j + l];
  }
  double acc = 0.0;
  for (int64_t l = 0; l < kReduceLanes; ++l) acc += lane[l];
  return acc;
}

// ChunkSum twin: identical shape to LaneDot without the multiply.
double LaneSum(const float* in, int64_t begin, int64_t end) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  int64_t i = begin;
  for (; i + 8 <= end; i += 8) {
    __m256 v = _mm256_loadu_ps(in + i);
    lo = _mm256_add_pd(lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    hi = _mm256_add_pd(hi, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double lane[kReduceLanes];
  _mm256_storeu_pd(lane, lo);
  _mm256_storeu_pd(lane + 4, hi);
  for (int64_t l = 0; i + l < end; ++l) {
    lane[l] += static_cast<double>(in[i + l]);
  }
  double acc = 0.0;
  for (int64_t l = 0; l < kReduceLanes; ++l) acc += lane[l];
  return acc;
}

// ---- Int8 code scan ---------------------------------------------------------

// One quantized code dot, 32 codes per iteration. maddubs needs one
// unsigned operand, so compute |q| (u8) against sign(c, q): pairwise int16
// sums of u8*i8 products. QuantizeRowI8 clamps codes to [-127, 127], so a
// pair is at most 2 * 127 * 127 = 32258 < 32767 — no int16 saturation —
// and madd against ones widens to int32 exactly. Integer addition is
// associative, so the 8-lane reduction equals the serial quant::I8Dot for
// any lane order. (A -128 code would break both the abs and the
// saturation bound; backend.h documents the precondition.)
int32_t I8DotAvx2(const int8_t* q, const int8_t* c, int64_t m) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  int64_t j = 0;
  for (; j + 32 <= m; j += 32) {
    __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + j));
    __m256i cv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j));
    __m256i pairs =
        _mm256_maddubs_epi16(_mm256_abs_epi8(qv), _mm256_sign_epi8(cv, qv));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t total = _mm_cvtsi128_si32(s);
  for (; j < m; ++j) {
    total += static_cast<int32_t>(q[j]) * static_cast<int32_t>(c[j]);
  }
  return total;
}

// ---- Eltwise twins ----------------------------------------------------------
// Internal-linkage copies of the element_ops.h bodies, generated from the
// same X-macro expressions, compiled in this TU so the autovectorizer may
// emit AVX2 for them. Per-element single expressions with no accumulation:
// bit-identical to the portable copies under -ffp-contract=off whether or
// not a given loop vectorizes.

#define GNMR_SIMD_MAP_TWIN(name, expr)                                  \
  void name##MapTwin(const float* in, float* out, int64_t n, float p) { \
    (void)p;                                                            \
    for (int64_t i = 0; i < n; ++i) {                                   \
      float x = in[i];                                                  \
      out[i] = (expr);                                                  \
    }                                                                   \
  }
GNMR_ELTWISE_MAP_BODIES(GNMR_SIMD_MAP_TWIN)
#undef GNMR_SIMD_MAP_TWIN

#define GNMR_SIMD_ZIP_TWIN(name, expr)                                       \
  void name##ZipTwin(const float* a, const float* b, float* out, int64_t n,  \
                     float p) {                                              \
    (void)p;                                                                 \
    for (int64_t i = 0; i < n; ++i) {                                        \
      float x = a[i];                                                        \
      float y = b[i];                                                        \
      out[i] = (expr);                                                       \
    }                                                                        \
  }
GNMR_ELTWISE_ZIP_BODIES(GNMR_SIMD_ZIP_TWIN)
#undef GNMR_SIMD_ZIP_TWIN

// Twin tables in X-macro list order — index-aligned with the key tables
// backend.cc builds from the same lists.
constexpr KernelBackend::MapFn kMapTwins[] = {
#define GNMR_SIMD_MAP_ENTRY(name, expr) &name##MapTwin,
    GNMR_ELTWISE_MAP_BODIES(GNMR_SIMD_MAP_ENTRY)
#undef GNMR_SIMD_MAP_ENTRY
};
constexpr KernelBackend::ZipFn kZipTwins[] = {
#define GNMR_SIMD_ZIP_ENTRY(name, expr) &name##ZipTwin,
    GNMR_ELTWISE_ZIP_BODIES(GNMR_SIMD_ZIP_ENTRY)
#undef GNMR_SIMD_ZIP_ENTRY
};
constexpr int kNumMapTwins =
    static_cast<int>(sizeof(kMapTwins) / sizeof(kMapTwins[0]));
constexpr int kNumZipTwins =
    static_cast<int>(sizeof(kZipTwins) / sizeof(kZipTwins[0]));

// ---- SimdBackend ------------------------------------------------------------

class SimdBackend : public KernelBackend {
 public:
  explicit SimdBackend(const EltwiseKeyTable& keys)
      : keys_(keys), avx512_(util::HostCpuFeatures().avx512f) {}

  const char* name() const override { return "simd"; }

  void MatMul(const float* a, const float* b, float* out, int64_t n,
              int64_t k, int64_t m) const override {
    const bool use512 =
        avx512_ && g_avx512_tiles.load(std::memory_order_relaxed);
    const int64_t num_tiles =
        (n + kSimdMatMulRowTile - 1) / kSimdMatMulRowTile;
    // Row tiles are independent (each covers its rows' full k sweep), so
    // the OpenMP fan-out composes with the register tiling exactly like
    // the omp backend's row fan-out.
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (num_tiles > 1 && n * k * m >= kParallelMatMulMinWork)
#endif
    for (int64_t t = 0; t < num_tiles; ++t) {
      int64_t i0 = t * kSimdMatMulRowTile;
      if (i0 + kSimdMatMulRowTile <= n) {
        MatMulRowTile(a, b, out, i0, k, m, use512);
      } else {
        ScalarMatMulRows(a, b, out, i0, n, k, m, 0, m);
      }
    }
  }

  void Spmm(const CsrMatrix& a, const float* x, float* out,
            int64_t d) const override {
    const int64_t n = a.rows();
    const int64_t* row_ptr = a.row_ptr().data();
    const int64_t* col_idx = a.col_idx().data();
    const float* values = a.values().data();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, kSpmmRowChunk) \
    if (n > 1 && a.nnz() * d >= kParallelSpmmMinWork)
#endif
    for (int64_t i = 0; i < n; ++i) {
      SpmmRowSimd(row_ptr, col_idx, values, x, out + i * d, i, d);
    }
  }

  void GatherRows(const float* a, int64_t m, const int64_t* idx,
                  int64_t count, float* out) const override {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (count > 1 && count * m >= kParallelRowsMinWork)
#endif
    for (int64_t r = 0; r < count; ++r) {
      std::memcpy(out + r * m, a + idx[r] * m,
                  static_cast<size_t>(m) * sizeof(float));
    }
  }

  void ScatterAddRows(float* target, int64_t rows, int64_t m,
                      const int64_t* idx, int64_t count,
                      const float* src) const override {
    // Same target-row partition as the omp backend: duplicates make the
    // source loop unsafe to split, so each thread scans all sources and
    // applies only its own target rows.
#ifdef _OPENMP
    if (rows > 1 && count * m >= kParallelRowsMinWork) {
#pragma omp parallel
      {
        int64_t nt = omp_get_num_threads();
        int64_t tid = omp_get_thread_num();
        int64_t lo = rows * tid / nt;
        int64_t hi = rows * (tid + 1) / nt;
        ScatterAddRange(target, m, idx, count, src, lo, hi);
      }
      return;
    }
#endif
    ScatterAddRange(target, m, idx, count, src, 0, rows);
  }

  void RowDot(const float* a, const float* b, float* out, int64_t n,
              int64_t m) const override {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (n > 1 && n * m >= kParallelRowsMinWork)
#endif
    for (int64_t i = 0; i < n; ++i) {
      out[i] = static_cast<float>(LaneDot(a + i * m, b + i * m, m));
    }
  }

  void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                  float p) const override {
    MapFn g = TranslateMap(f);
#ifdef _OPENMP
    if (n >= kParallelEltwiseMinWork) {
#pragma omp parallel
      {
        int64_t nt = omp_get_num_threads();
        int64_t tid = omp_get_thread_num();
        int64_t lo = n * tid / nt;
        int64_t hi = n * (tid + 1) / nt;
        g(in + lo, out + lo, hi - lo, p);
      }
      return;
    }
#endif
    g(in, out, n, p);
  }

  void EltwiseZip(const float* a, const float* b, float* out, int64_t n,
                  ZipFn f, float p) const override {
    ZipFn g = TranslateZip(f);
#ifdef _OPENMP
    if (n >= kParallelEltwiseMinWork) {
#pragma omp parallel
      {
        int64_t nt = omp_get_num_threads();
        int64_t tid = omp_get_thread_num();
        int64_t lo = n * tid / nt;
        int64_t hi = n * (tid + 1) / nt;
        g(a + lo, b + lo, out + lo, hi - lo, p);
      }
      return;
    }
#endif
    g(a, b, out, n, p);
  }

  // The serving scans stay single-threaded inside one call: they run on
  // serving request threads (already fanned out per request), where an
  // inner OpenMP region would only add latency jitter.
  void QueryDot(const float* q, const float* rows, float* out, int64_t n,
                int64_t m) const override {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = static_cast<float>(LaneDot(q, rows + i * m, m));
    }
  }

  void QueryDotIndexed(const float* q, const float* base, const int64_t* idx,
                       float* out, int64_t n, int64_t m) const override {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = static_cast<float>(LaneDot(q, base + idx[i] * m, m));
    }
  }

  void I8QueryDot(const int8_t* q, const int8_t* codes, int32_t* out,
                  int64_t n, int64_t m) const override {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = I8DotAvx2(q, codes + i * m, m);
    }
  }

  double ReduceSum(const float* in, int64_t n) const override {
    int64_t num_chunks = (n + kReduceSumChunk - 1) / kReduceSumChunk;
    if (num_chunks <= 1) return LaneSum(in, 0, n);
    // Fixed-chunk double partials combined in chunk order, exactly like
    // every other backend; only the per-chunk body is vectorized.
    std::unique_ptr<double[]> partial(new double[num_chunks]);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t begin = c * kReduceSumChunk;
      partial[c] = LaneSum(in, begin, std::min(n, begin + kReduceSumChunk));
    }
    double total = 0.0;
    for (int64_t c = 0; c < num_chunks; ++c) total += partial[c];
    return total;
  }

 private:
  // Swap a portable MapLoop/ZipLoop instantiation for its AVX2-compiled
  // twin; unknown pointers (test lambdas, future bodies without twins)
  // run as given — still correct, just not vectorized here.
  MapFn TranslateMap(MapFn f) const {
    int n = keys_.num_map < kNumMapTwins ? keys_.num_map : kNumMapTwins;
    for (int i = 0; i < n; ++i) {
      if (keys_.map_keys[i] == f) return kMapTwins[i];
    }
    return f;
  }

  ZipFn TranslateZip(ZipFn f) const {
    int n = keys_.num_zip < kNumZipTwins ? keys_.num_zip : kNumZipTwins;
    for (int i = 0; i < n; ++i) {
      if (keys_.zip_keys[i] == f) return kZipTwins[i];
    }
    return f;
  }

  EltwiseKeyTable keys_;
  bool avx512_;
};

}  // namespace

const KernelBackend* NativeSimdBackend(const EltwiseKeyTable& keys) {
  static const SimdBackend backend(keys);
  return &backend;
}

void SetSimdAvx512TilesEnabledForTest(bool enabled) {
  g_avx512_tiles.store(enabled, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace tensor
}  // namespace gnmr

#else  // !(__AVX2__ && __FMA__ && __x86_64__)

// Non-x86 target or the per-TU vector flags were not applied: no native
// backend; the registry installs the serial fallback under "simd".

namespace gnmr {
namespace tensor {
namespace simd {

const KernelBackend* NativeSimdBackend(const EltwiseKeyTable& /*keys*/) {
  return nullptr;
}

void SetSimdAvx512TilesEnabledForTest(bool /*enabled*/) {}

}  // namespace simd
}  // namespace tensor
}  // namespace gnmr

#endif
