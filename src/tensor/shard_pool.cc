#include "src/tensor/shard_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "src/obs/trace.h"
#include "src/tensor/kernel_tunables.h"
#include "src/util/check.h"

namespace gnmr {
namespace tensor {

namespace {

/// Set for the lifetime of every pool worker thread; Run() uses it to
/// detect re-entrant dispatch and fall back to an inline loop.
thread_local bool t_on_pool_worker = false;

int64_t ResolvedDefaultWorkers() {
  if (const char* env = std::getenv("GNMR_SHARD_WORKERS")) {
    if (*env != '\0') {
      int64_t n = std::strtoll(env, nullptr, 10);
      GNMR_CHECK_GT(n, 0) << "GNMR_SHARD_WORKERS must be a positive integer, "
                          << "got '" << env << "'";
      return std::min<int64_t>(n, 1024);
    }
  }
  if (kShardWorkersDefault > 0) return kShardWorkersDefault;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

/// Serializes pool creation and replacement only; readers go through the
/// atomic shared_ptr accessors below.
std::mutex g_pool_mu;
std::shared_ptr<ShardPool>& GlobalSlot() {
  static std::shared_ptr<ShardPool> pool;
  return pool;
}

}  // namespace

/// Completion latch shared by all tasks of one Run() call.
struct ShardPool::Completion {
  std::atomic<int64_t> remaining{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  /// First exception a task threw (later ones are dropped); rethrown on
  /// the dispatching thread after every task has finished.
  std::exception_ptr error;
};

ShardPool::ShardPool(int64_t workers) {
  GNMR_CHECK_GE(workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int64_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = static_cast<size_t>(w);
  }
  // Start threads only after the vector is fully built: from its first
  // loop iteration a worker may scan EVERY sibling's queue to steal
  // (TrySteal walks workers_), so no thread may run while the vector is
  // still growing.
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
  }
}

ShardPool::~ShardPool() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ShardPool::ExecuteTask(Worker* w, const Task& task) {
  // One span per task on the worker that ran it (owner or thief), so the
  // trace shows how a dispatch actually spread across the pool.
  GNMR_TRACE_SPAN("shard.task");
  auto start = std::chrono::steady_clock::now();
  try {
    (*task.fn)(task.index);
  } catch (...) {
    // A throwing task (e.g. bad_alloc) must not escape a worker thread —
    // that would std::terminate the process. Hand the exception to the
    // dispatching Run() caller, whose own unwind machinery (such as
    // RecService's FlightLease) is built for exactly this. Identical for
    // owned and stolen tasks: the Completion belongs to the dispatch, not
    // to the queue the task sat in.
    std::lock_guard<std::mutex> lock(task.completion->mu);
    if (task.completion->error == nullptr) {
      task.completion->error = std::current_exception();
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  w->busy_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  w->tasks_run.fetch_add(1, std::memory_order_relaxed);
  if (task.completion->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
      1) {
    std::lock_guard<std::mutex> lock(task.completion->mu);
    task.completion->done = true;
    task.completion->cv.notify_all();
  }
}

bool ShardPool::TrySteal(Worker* w, Task* task) {
  const size_t nw = workers_.size();
  for (size_t off = 1; off < nw; ++off) {
    Worker* victim = workers_[(w->index + off) % nw].get();
    std::lock_guard<std::mutex> lock(victim->mu);
    if (victim->queue.empty()) continue;
    // Steal the back: the owner pops the front, so under contention thief
    // and owner take opposite ends of the deque.
    *task = victim->queue.back();
    victim->queue.pop_back();
    w->tasks_stolen.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ShardPool::WorkerLoop(Worker* w) {
  t_on_pool_worker = true;
  for (;;) {
    Task task;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(w->mu);
      if (!w->queue.empty()) {
        task = w->queue.front();
        w->queue.pop_front();
        have = true;
      } else if (w->stop) {
        return;  // stop requested and own queue drained
      }
    }
    if (!have) {
      // Own queue drained: scan the siblings before sleeping. Best-effort —
      // a task enqueued to a sibling after this scan is the owner's to run
      // (its cv was notified), so nothing is lost by going to sleep.
      have = TrySteal(w, &task);
      if (!have) {
        std::unique_lock<std::mutex> lock(w->mu);
        w->cv.wait(lock, [w] { return w->stop || !w->queue.empty(); });
        if (w->queue.empty()) return;  // stop requested and drained
        task = w->queue.front();
        w->queue.pop_front();
      }
    }
    ExecuteTask(w, task);
  }
}

void ShardPool::Run(int64_t num_tasks,
                    const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  if (t_on_pool_worker || num_tasks == 1 || workers() == 1) {
    // Nested dispatch, nothing to fan out, or a single-worker pool (where
    // a thread handoff buys nothing): run inline. Same results, no
    // self-deadlock.
    for (int64_t t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  // Covers enqueue through completion-wait: the gap between this span and
  // the shard.task spans it fans out is queueing + wake-up latency.
  GNMR_TRACE_SPAN("shard.dispatch");
  Completion completion;
  completion.remaining.store(num_tasks, std::memory_order_relaxed);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nw = workers();
  // Rotate the starting worker per dispatch: concurrent Run() calls with
  // fewer tasks than workers (small plans) would otherwise all pile onto
  // workers 0..num_tasks-1 and serialize there while the rest idle.
  const uint64_t base = next_start_.fetch_add(1, std::memory_order_relaxed);
  for (int64_t t = 0; t < num_tasks; ++t) {
    Worker* w = workers_[static_cast<size_t>(
                             (base + static_cast<uint64_t>(t)) %
                             static_cast<uint64_t>(nw))]
                    .get();
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->queue.push_back(Task{&fn, t, &completion});
    }
    w->cv.notify_one();
  }
  {
    std::unique_lock<std::mutex> lock(completion.mu);
    completion.cv.wait(lock, [&completion] { return completion.done; });
  }
  if (completion.error != nullptr) std::rethrow_exception(completion.error);
}

ShardPoolStats ShardPool::stats() const {
  ShardPoolStats out;
  out.workers = workers();
  out.dispatches = dispatches_.load(std::memory_order_relaxed);
  out.worker_busy_ns.reserve(workers_.size());
  for (const auto& w : workers_) {
    out.tasks += w->tasks_run.load(std::memory_order_relaxed);
    out.steals += w->tasks_stolen.load(std::memory_order_relaxed);
    out.worker_busy_ns.push_back(w->busy_ns.load(std::memory_order_relaxed));
  }
  return out;
}

std::shared_ptr<ShardPool> ShardPool::Global() {
  // Fast path: every sharded kernel dispatch and sharded retrieval
  // snapshots the pool, so reads go through the atomic shared_ptr
  // accessors (in libstdc++ an address-hashed internal spinlock — not
  // truly lock-free, but a copy-only critical section) instead of
  // g_pool_mu, which is reserved for the slow work: creating the pool on
  // first use or swapping it in SetShardWorkers.
  std::shared_ptr<ShardPool> pool = std::atomic_load_explicit(
      &GlobalSlot(), std::memory_order_acquire);
  if (pool != nullptr) return pool;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  pool = std::atomic_load_explicit(&GlobalSlot(), std::memory_order_acquire);
  if (pool == nullptr) {
    pool = std::make_shared<ShardPool>(ResolvedDefaultWorkers());
    std::atomic_store_explicit(&GlobalSlot(), pool,
                               std::memory_order_release);
  }
  return pool;
}

int64_t ShardWorkers() { return ShardPool::Global()->workers(); }

ShardPoolStats GlobalShardPoolStats() {
  std::shared_ptr<ShardPool> pool = std::atomic_load_explicit(
      &GlobalSlot(), std::memory_order_acquire);
  return pool == nullptr ? ShardPoolStats{} : pool->stats();
}

void SetShardWorkers(int64_t workers) {
  if (workers <= 0) workers = ResolvedDefaultWorkers();
  // Build the replacement outside the slot lock (thread spawn is slow),
  // then swap. Threads that snapshotted the old pool via Global() keep a
  // shared_ptr, so in-flight Run() calls finish on it; the pool joins its
  // workers when the last holder lets go — `old` is released outside the
  // lock because that join must not block Global() readers or creators.
  auto next = std::make_shared<ShardPool>(workers);
  std::shared_ptr<ShardPool> old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    old = std::atomic_exchange_explicit(&GlobalSlot(), std::move(next),
                                        std::memory_order_acq_rel);
  }
}

}  // namespace tensor
}  // namespace gnmr
