#include "src/tensor/shard_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/tensor/kernel_tunables.h"
#include "src/util/check.h"

namespace gnmr {
namespace tensor {

namespace {

/// Set for the lifetime of every pool worker thread; Run() uses it to
/// detect re-entrant dispatch and fall back to an inline loop.
thread_local bool t_on_pool_worker = false;

int64_t ResolvedDefaultWorkers() {
  if (const char* env = std::getenv("GNMR_SHARD_WORKERS")) {
    if (*env != '\0') {
      int64_t n = std::strtoll(env, nullptr, 10);
      GNMR_CHECK_GT(n, 0) << "GNMR_SHARD_WORKERS must be a positive integer, "
                          << "got '" << env << "'";
      return std::min<int64_t>(n, 1024);
    }
  }
  if (kShardWorkersDefault > 0) return kShardWorkersDefault;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

std::mutex g_pool_mu;
std::unique_ptr<ShardPool>& GlobalSlot() {
  static std::unique_ptr<ShardPool> pool;
  return pool;
}

}  // namespace

/// Completion latch shared by all tasks of one Run() call.
struct ShardPool::Completion {
  std::atomic<int64_t> remaining{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

ShardPool::ShardPool(int64_t workers) {
  GNMR_CHECK_GE(workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int64_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start threads only after the vector is fully built: a worker never
  // touches its siblings, but the loop captures `this`.
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
  }
}

ShardPool::~ShardPool() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ShardPool::WorkerLoop(Worker* w) {
  t_on_pool_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait(lock, [w] { return w->stop || !w->queue.empty(); });
      if (w->queue.empty()) return;  // stop requested and drained
      task = w->queue.front();
      w->queue.pop_front();
    }
    auto start = std::chrono::steady_clock::now();
    (*task.fn)(task.index);
    auto elapsed = std::chrono::steady_clock::now() - start;
    w->busy_ns.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    w->tasks_run.fetch_add(1, std::memory_order_relaxed);
    if (task.completion->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      std::lock_guard<std::mutex> lock(task.completion->mu);
      task.completion->done = true;
      task.completion->cv.notify_all();
    }
  }
}

void ShardPool::Run(int64_t num_tasks,
                    const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  if (t_on_pool_worker || num_tasks == 1 || workers() == 1) {
    // Nested dispatch, nothing to fan out, or a single-worker pool (where
    // a thread handoff buys nothing): run inline. Same results, no
    // self-deadlock.
    for (int64_t t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  Completion completion;
  completion.remaining.store(num_tasks, std::memory_order_relaxed);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nw = workers();
  for (int64_t t = 0; t < num_tasks; ++t) {
    Worker* w = workers_[static_cast<size_t>(t % nw)].get();
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->queue.push_back(Task{&fn, t, &completion});
    }
    w->cv.notify_one();
  }
  std::unique_lock<std::mutex> lock(completion.mu);
  completion.cv.wait(lock, [&completion] { return completion.done; });
}

ShardPoolStats ShardPool::stats() const {
  ShardPoolStats out;
  out.workers = workers();
  out.dispatches = dispatches_.load(std::memory_order_relaxed);
  out.worker_busy_ns.reserve(workers_.size());
  for (const auto& w : workers_) {
    out.tasks += w->tasks_run.load(std::memory_order_relaxed);
    out.worker_busy_ns.push_back(w->busy_ns.load(std::memory_order_relaxed));
  }
  return out;
}

ShardPool& ShardPool::Global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  std::unique_ptr<ShardPool>& slot = GlobalSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ShardPool>(ResolvedDefaultWorkers());
  }
  return *slot;
}

int64_t ShardWorkers() { return ShardPool::Global().workers(); }

ShardPoolStats GlobalShardPoolStats() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const std::unique_ptr<ShardPool>& slot = GlobalSlot();
  return slot == nullptr ? ShardPoolStats{} : slot->stats();
}

void SetShardWorkers(int64_t workers) {
  workers = std::max<int64_t>(workers, 1);
  // Build the replacement outside the slot lock (thread spawn is slow),
  // then swap; the old pool joins its workers on destruction.
  auto next = std::make_unique<ShardPool>(workers);
  std::unique_ptr<ShardPool> old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    old = std::move(GlobalSlot());
    GlobalSlot() = std::move(next);
  }
}

}  // namespace tensor
}  // namespace gnmr
