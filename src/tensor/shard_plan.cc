#include "src/tensor/shard_plan.h"

#include <algorithm>

#include "src/util/check.h"

namespace gnmr {
namespace tensor {

namespace {

// Largest shard count that keeps every shard at least min_rows wide.
int64_t ClampShardCount(int64_t rows, int64_t num_shards, int64_t min_rows) {
  GNMR_CHECK_GE(rows, 0);
  num_shards = std::max<int64_t>(num_shards, 1);
  min_rows = std::max<int64_t>(min_rows, 1);
  return std::max<int64_t>(1, std::min(num_shards, rows / min_rows));
}

}  // namespace

ShardPlan ShardPlan::Uniform(int64_t rows, int64_t num_shards,
                             int64_t min_rows) {
  ShardPlan plan;
  plan.total_rows_ = rows;
  if (rows == 0) return plan;
  int64_t shards = ClampShardCount(rows, num_shards, min_rows);
  plan.ranges_.reserve(static_cast<size_t>(shards));
  for (int64_t s = 0; s < shards; ++s) {
    // The i*rows/shards split is exactly the OpenMP-static partition the
    // omp backend uses, so shard boundaries line up across backends.
    plan.ranges_.push_back({rows * s / shards, rows * (s + 1) / shards, 0});
  }
  return plan;
}

ShardPlan ShardPlan::NnzBalanced(const int64_t* row_ptr, int64_t rows,
                                 int64_t num_shards, int64_t min_rows) {
  ShardPlan plan;
  plan.total_rows_ = rows;
  if (rows == 0) return plan;
  GNMR_CHECK(row_ptr != nullptr);
  min_rows = std::max<int64_t>(min_rows, 1);
  int64_t shards = ClampShardCount(rows, num_shards, min_rows);
  plan.ranges_.reserve(static_cast<size_t>(shards));
  int64_t begin = 0;
  int64_t remaining_nnz = row_ptr[rows] - row_ptr[0];
  for (int64_t s = 0; s < shards; ++s) {
    int64_t remaining_shards = shards - s;
    int64_t end;
    if (remaining_shards == 1) {
      end = rows;
    } else {
      // Re-aimed target: whatever nnz is left, split evenly over the
      // shards still to cut. Rows after max_end are reserved so every
      // later shard keeps its min_rows floor.
      int64_t target =
          (remaining_nnz + remaining_shards - 1) / remaining_shards;
      int64_t max_end = rows - (remaining_shards - 1) * min_rows;
      end = std::min(begin + min_rows, max_end);
      while (end < max_end && row_ptr[end] - row_ptr[begin] < target) {
        ++end;
      }
    }
    int64_t range_nnz = row_ptr[end] - row_ptr[begin];
    plan.ranges_.push_back({begin, end, range_nnz});
    remaining_nnz -= range_nnz;
    begin = end;
  }
  return plan;
}

ShardPlan ShardPlan::NnzBalanced(const CsrMatrix& m, int64_t num_shards,
                                 int64_t min_rows) {
  return NnzBalanced(m.row_ptr().data(), m.rows(), num_shards, min_rows);
}

void ShardPlan::CheckInvariants() const {
  if (total_rows_ == 0) {
    GNMR_CHECK(ranges_.empty()) << "empty plan must have no shards";
    return;
  }
  GNMR_CHECK(!ranges_.empty());
  GNMR_CHECK_EQ(ranges_.front().begin, 0);
  GNMR_CHECK_EQ(ranges_.back().end, total_rows_);
  for (size_t s = 0; s < ranges_.size(); ++s) {
    GNMR_CHECK_LT(ranges_[s].begin, ranges_[s].end)
        << "shard " << s << " is empty";
    if (s > 0) {
      GNMR_CHECK_EQ(ranges_[s - 1].end, ranges_[s].begin)
          << "gap/overlap before shard " << s;
    }
  }
}

}  // namespace tensor
}  // namespace gnmr
