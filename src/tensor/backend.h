// Pluggable kernel backends for the compute hot path. tensor::ops (dense)
// and tensor::ops::Spmm (sparse) dispatch every hot kernel — MatMul, SpMM,
// GatherRows, ScatterAddRows, RowDot, elementwise map/zip and the scalar
// reduction — through the active KernelBackend, so swapping the execution
// strategy (serial reference, OpenMP fan-out, cache-blocked) never touches
// the call sites. The serving read path dispatches here too: QueryDot /
// QueryDotIndexed are the one-query-against-many-rows scans behind
// ExactRetriever and IvfRetriever, and I8QueryDot is the int8 code scan of
// the quantized IVF tier (tensor/quantize.h). This is the cut point the
// ROADMAP names for future BLAS, SIMD and sharded implementations.
//
// Registered backends:
//   "serial"  — straight-line loops; the bit-exact reference.
//   "omp"     — OpenMP fan-out over rows/chunks with deterministic
//               (thread-count independent) accumulation order. Compiles in
//               every build; without OpenMP it degrades to serial loops.
//   "blocked" — cache-blocked kernels (k-unrolled MatMul, nnz-binned SpMM)
//               layered on the OpenMP fan-out; the blocking also pays off
//               single-threaded.
//   "sharded" — row-range partitioning (shard_plan.h) over a persistent
//               std::thread worker pool (shard_pool.h); no OpenMP
//               dependency. Serial bodies per shard, so bit-identical to
//               "serial" at any worker count (GNMR_SHARD_WORKERS /
//               SetShardWorkers).
//   "simd"    — hand-vectorized AVX2/FMA micro-kernels (backend_simd.cc):
//               register-tiled MatMul, column-paneled SpMM, lane-partial
//               RowDot/ReduceSum/query scans, a maddubs int8 code scan,
//               AVX2-compiled eltwise twins — all keeping serial's
//               per-element accumulation order with
//               unfused mul+add, so still bit-identical. On hosts without
//               AVX2+FMA (runtime cpuid, util/cpu_features.h) the name
//               resolves to a serial fallback that logs one warning.
//   "blas"    — only when built with -DGNMR_BLAS=ON and a BLAS is found:
//               vendor sgemm MatMul, serial everything else. The one
//               backend that is NOT bit-exact (bit_exact() is false);
//               benchmark comparisons only, never selected by default.
//
// Selection: SetBackend()/ScopedBackend at runtime, or the GNMR_BACKEND
// environment variable read on first use (bench/example binaries also map
// a --backend= flag onto SetBackend). Default: "omp" in OpenMP builds,
// "serial" otherwise — matching the pre-backend behavior of each build.
//
// Contract: all kernels are pure (no hidden state), write into
// caller-allocated zero-initialised outputs, and must accumulate each
// output element in the same order as the serial reference, so results are
// bit-identical across backends and thread counts (ReduceSum re-associates
// across fixed chunks — see kReduceSumChunk — identically in every
// backend). Bounds checking happens in the ops layer before dispatch.
#ifndef GNMR_TENSOR_BACKEND_H_
#define GNMR_TENSOR_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/kernel_tunables.h"
#include "src/tensor/sparse.h"

namespace gnmr {
namespace tensor {

/// Portable scalar reference of the fixed lane-partial dot product — THE
/// serving-score contract: lane l accumulates elements j with
/// j % kReduceLanes == l in double, lanes combine in ascending order. The
/// lane shape (not plain left-to-right accumulation) is exactly the
/// association a vector unit computes with the row cut into
/// kReduceLanes-wide groups, so the simd backend can vectorize query scans
/// while every backend — and every scalar score call site
/// (ServingModel::Score, serve::DotScore) — produces bit-identical floats.
/// backend_simd.cc must NOT odr-use this function (see the ODR rules in
/// backend_simd.h); its internal-linkage LaneDot computes the identical
/// association with two 4-wide double vectors.
inline double LanePartialDot(const float* a, const float* b, int64_t m) {
  double lane[kReduceLanes] = {0.0};
  int64_t j = 0;
  for (; j + kReduceLanes <= m; j += kReduceLanes) {
    for (int64_t l = 0; l < kReduceLanes; ++l) {
      lane[l] += static_cast<double>(a[j + l]) * b[j + l];
    }
  }
  for (int64_t l = 0; j + l < m; ++l) {
    lane[l] += static_cast<double>(a[j + l]) * b[j + l];
  }
  double acc = 0.0;
  for (int64_t l = 0; l < kReduceLanes; ++l) acc += lane[l];
  return acc;
}

/// Strategy interface over the raw hot-path kernels.
class KernelBackend {
 public:
  /// Elementwise map kernel over a contiguous range: out[i] = f(in[i], p)
  /// for i in [0, n). `p` carries the op's scalar parameter (AddScalar's
  /// addend, LeakyRelu's slope, ...), 0 when unused. The granularity is a
  /// *range*, not an element: backends split [0, n) and make one indirect
  /// call per chunk, while the ops layer instantiates the pointed-to loop
  /// from a template (tensor_ops.cc MapLoop/ZipLoop) so the per-element
  /// body stays fully inlined and vectorised.
  using MapFn = void (*)(const float* in, float* out, int64_t n, float p);
  /// Elementwise zip kernel: out[i] = f(a[i], b[i], p) for i in [0, n).
  using ZipFn = void (*)(const float* a, const float* b, float* out,
                         int64_t n, float p);

  virtual ~KernelBackend() = default;

  /// Registry name ("serial", "omp", "blocked", "sharded", "simd", ...).
  virtual const char* name() const = 0;

  /// True when this backend honors the bit-identical-to-serial contract
  /// (every registered backend except "blas"). Cross-backend bit-compare
  /// loops filter on this; non-bit-exact backends are benchmark-only.
  virtual bool bit_exact() const { return true; }

  /// Dense [n,k] x [k,m] -> out [n,m]; out is zero-initialised.
  virtual void MatMul(const float* a, const float* b, float* out, int64_t n,
                      int64_t k, int64_t m) const = 0;

  /// Sparse-dense product a [n,m] x x [m,d] -> out [n,d]; out zeroed.
  virtual void Spmm(const CsrMatrix& a, const float* x, float* out,
                    int64_t d) const = 0;

  /// out[r, :] = a[idx[r], :]; a has `m` columns, idx has `count` entries
  /// (pre-validated by the caller).
  virtual void GatherRows(const float* a, int64_t m, const int64_t* idx,
                          int64_t count, float* out) const = 0;

  /// target[idx[r], :] += src[r, :] for r in [0, count), applied in
  /// ascending r order per target row (duplicates accumulate
  /// deterministically). target has `rows` x `m`.
  virtual void ScatterAddRows(float* target, int64_t rows, int64_t m,
                              const int64_t* idx, int64_t count,
                              const float* src) const = 0;

  /// out[i] = dot(a[i, :], b[i, :]) in double, for i in [0, n).
  virtual void RowDot(const float* a, const float* b, float* out, int64_t n,
                      int64_t m) const = 0;

  /// Runs the map kernel over [0, n), possibly split across threads.
  virtual void EltwiseMap(const float* in, float* out, int64_t n, MapFn f,
                          float p) const = 0;

  /// Runs the zip kernel over [0, n), possibly split across threads.
  virtual void EltwiseZip(const float* a, const float* b, float* out,
                          int64_t n, ZipFn f, float p) const = 0;

  /// Sum of all elements via fixed-chunk double partials (kReduceSumChunk);
  /// bit-identical across backends and thread counts.
  virtual double ReduceSum(const float* in, int64_t n) const = 0;

  // ---- Serving scan ops -----------------------------------------------------
  // One query row against many embedding rows — the shape of a top-N
  // retrieval scan, which RowDot (pairwise rows) does not cover. These have
  // serial base implementations (the lane-partial / integer references), so
  // a backend only overrides what it accelerates; every implementation must
  // stay bit-identical to the base (per-element output, no cross-row
  // accumulation to reorder).

  /// out[i] = float(LanePartialDot(q, rows + i*m, m)) for i in [0, n):
  /// `q` against n CONTIGUOUS rows.
  virtual void QueryDot(const float* q, const float* rows, float* out,
                        int64_t n, int64_t m) const;

  /// Gather flavour: out[i] = float(LanePartialDot(q, base + idx[i]*m, m)).
  /// Row indices are pre-validated by the caller.
  virtual void QueryDotIndexed(const float* q, const float* base,
                               const int64_t* idx, float* out, int64_t n,
                               int64_t m) const;

  /// Quantized code scan: out[i] = quant::I8Dot(q, codes + i*m, m) for i in
  /// [0, n) — pure int32 arithmetic, exact on every backend. Callers
  /// dequantize with quant::I8DotScore's multiply order. Precondition: all
  /// codes were produced by quant::QuantizeRowI8 (clamped to [-127, 127]);
  /// a -128 code would saturate the simd backend's pairwise maddubs sums.
  virtual void I8QueryDot(const int8_t* q, const int8_t* codes, int32_t* out,
                          int64_t n, int64_t m) const;
};

// ---- Range-kernel instantiation helpers -------------------------------------
// Element bodies are named functions passed as compile-time constants;
// these templates instantiate the MapFn/ZipFn range kernels with the body
// fully inlined and vectorised — one indirect call per range, none per
// element. Shared by tensor_ops.cc (forward ops) and ad_ops.cc (backward
// zips).

template <float (*F)(float x, float p)>
void MapLoop(const float* in, float* out, int64_t n, float p) {
  for (int64_t i = 0; i < n; ++i) out[i] = F(in[i], p);
}

template <float (*F)(float x, float y, float p)>
void ZipLoop(const float* a, const float* b, float* out, int64_t n,
             float p) {
  for (int64_t i = 0; i < n; ++i) out[i] = F(a[i], b[i], p);
}

/// The active backend (GNMR_BACKEND env or build default until SetBackend).
/// Thread-safe to call; kernels themselves are pure and may run from any
/// thread.
const KernelBackend& GetBackend();

/// Selects the active backend by name; aborts on unknown names. Intended
/// for startup/flag wiring — do not race it against in-flight kernels.
void SetBackend(const std::string& name);

/// Backend by name, or nullptr if not registered. Lets tests and benches
/// drive a specific implementation without switching the global.
const KernelBackend* FindBackend(const std::string& name);

/// All registered backends, in registration order.
const std::vector<const KernelBackend*>& AllBackends();

/// The serial fallback that "simd" resolves to on hosts without AVX2+FMA
/// (it logs a one-time warning, then runs the serial kernels). Exposed so
/// tests can exercise the fallback path on any host; on supported hosts
/// the registry serves the native vectorized backend instead.
const KernelBackend* SimdFallbackForTest();

/// RAII backend switch for tests: sets on construction, restores the
/// previous backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const KernelBackend* previous_;
};

}  // namespace tensor
}  // namespace gnmr

#endif  // GNMR_TENSOR_BACKEND_H_
