// Per-user seen-item sets for retrieval-time filtering. A recommender
// serving top-N lists must usually exclude items the user already
// interacted with; this is the compact read-only structure the serving
// path consults for that, built once from the training Dataset.
#ifndef GNMR_SERVE_SEEN_ITEMS_H_
#define GNMR_SERVE_SEEN_ITEMS_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"

namespace gnmr {
namespace serve {

/// Immutable per-user sorted item sets in CSR layout. Default-constructed
/// instances are empty (no user has seen anything), which disables
/// filtering cheaply.
class SeenItems {
 public:
  SeenItems() = default;

  /// Collects each user's distinct items from `dataset`. With
  /// `target_behavior_only`, only events under dataset.target_behavior
  /// count as seen (auxiliary views/carts stay recommendable); otherwise
  /// any behavior marks the item seen.
  static SeenItems FromDataset(const data::Dataset& dataset,
                               bool target_behavior_only = true);

  /// True if `user` has interacted with `item`. Users outside the range
  /// this was built for have seen nothing. O(log degree).
  bool Contains(int64_t user, int64_t item) const;

  /// Sorted distinct items of `user` (empty for out-of-range users).
  std::vector<int64_t> ItemsOf(int64_t user) const;

  int64_t num_users() const {
    return offsets_.empty() ? 0
                            : static_cast<int64_t>(offsets_.size()) - 1;
  }
  /// Total (user, item) pairs stored.
  int64_t num_pairs() const { return static_cast<int64_t>(items_.size()); }
  bool empty() const { return items_.empty(); }

 private:
  /// offsets_[u] .. offsets_[u+1] indexes user u's slice of items_.
  std::vector<int64_t> offsets_;
  std::vector<int64_t> items_;
};

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_SEEN_ITEMS_H_
