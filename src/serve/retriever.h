// Retrieval-strategy interface of the serving read path.
//
// RecService (and anything else answering top-N requests over a
// ServingModel snapshot) programs against this interface instead of a
// concrete scan: ExactRetriever (exact_retriever.h) is the full-catalogue
// blocked scan, IvfRetriever (ivf_retriever.h) probes a clustered index
// and scans a fraction of the catalogue, HnswRetriever (hnsw_retriever.h)
// walks a navigable-small-world graph and evaluates a sub-linear slice.
// Future index types (LSH, disk-resident) drop in behind the same calls.
//
// Contract every strategy honours:
//   - scores are the dot product of ServingModel::Score — the lane-partial
//     double association of tensor::LanePartialDot (backend.h), which every
//     KernelBackend's QueryDot/QueryDotIndexed computes bit-identically —
//     so an item scanned by any strategy, through any backend, gets the
//     bit-identical score;
//   - output is sorted by BetterThan (score desc, ties by ascending item
//     id) and excludes the user's seen items;
//   - all methods are const and thread-safe; implementations share
//     ownership of the model snapshot so they outlive hot swaps.
#ifndef GNMR_SERVE_RETRIEVER_H_
#define GNMR_SERVE_RETRIEVER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/model_io.h"
#include "src/serve/seen_items.h"
#include "src/tensor/backend.h"

namespace gnmr {
namespace serve {

/// One recommended item with its dot-product score.
struct RecEntry {
  int64_t item = 0;
  float score = 0.0f;

  bool operator==(const RecEntry& other) const {
    return item == other.item && score == other.score;
  }
};

/// Total order used for ranking: higher score first, ties by item id.
inline bool BetterThan(const RecEntry& a, const RecEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

// ---- Shared scan primitives -------------------------------------------------
// Every strategy scores and ranks with the same primitives — DotScore for
// single rows, the active KernelBackend's QueryDot/QueryDotIndexed for
// bulk scans — so "an item scanned by any strategy gets the bit-identical
// score and tie order" is enforced structurally instead of by keeping
// per-strategy copies in sync.

/// Dot product of `urow` and `vrow`: the lane-partial double association
/// of backend.h — exactly ServingModel::Score and one output element of
/// KernelBackend::QueryDot.
inline float DotScore(const float* urow, const float* vrow, int64_t width) {
  return static_cast<float>(tensor::LanePartialDot(urow, vrow, width));
}

/// Offers `e` to a worst-on-top bounded heap of capacity `k`: with
/// BetterThan as the "less" comparator the std heap front is the entry no
/// other beats, i.e. the current worst. The kept set is the range's top-k
/// under the BetterThan total order regardless of insertion order. The
/// capacity check runs BEFORE the seen lookup, so entries that cannot
/// make the cut skip it.
inline void OfferToBoundedHeap(std::vector<RecEntry>* heap, int64_t k,
                               const RecEntry& e, const SeenItems* seen,
                               int64_t user) {
  if (static_cast<int64_t>(heap->size()) == k &&
      !BetterThan(e, heap->front())) {
    return;
  }
  if (seen != nullptr && seen->Contains(user, e.item)) return;
  if (static_cast<int64_t>(heap->size()) < k) {
    heap->push_back(e);
    std::push_heap(heap->begin(), heap->end(), BetterThan);
  } else {
    std::pop_heap(heap->begin(), heap->end(), BetterThan);
    heap->back() = e;
    std::push_heap(heap->begin(), heap->end(), BetterThan);
  }
}

/// Whether a retriever splits its scan across the shard pool.
enum class ItemShardMode {
  /// Shard when the active kernel backend is "sharded" (checked per call).
  kAuto,
  /// Always shard (tests / benches driving the pool directly).
  kOn,
  /// Never shard; the single-threaded scan.
  kOff,
};

/// True when `mode` means "split this call across the shard pool" under
/// the currently active kernel backend.
bool ItemShardingActive(ItemShardMode mode);

/// Cumulative per-retriever counters (monotonic since construction; the
/// service snapshots them into ServiceStats). `scanned_items` counts item
/// rows scored before seen-filtering; for the exact strategy it is
/// requests * catalogue size, for an approximate strategy the gap to that
/// product is exactly the work the index saved.
struct RetrieverStats {
  /// Single-user retrievals served (a batch counts once per user).
  uint64_t requests = 0;
  /// Item rows scored across all requests.
  uint64_t scanned_items = 0;
  /// Embedding bytes streamed to produce those scores: scanned item rows
  /// plus, for IVF, the centroid rows read by every cluster probe. This
  /// is the memory-bandwidth cost of the scan — the number that matters
  /// when the model is served out of a shared mmap.
  uint64_t scanned_bytes = 0;
  /// IVF only: posting lists visited across all requests (0 for exact).
  uint64_t probed_clusters = 0;
  /// Quantized IVF only: bytes of int8 codes + per-row scales streamed by
  /// the approximate phase (a subset of scanned_bytes, which also counts
  /// centroid probes and the float rows the exact rerank re-reads).
  uint64_t scanned_code_bytes = 0;
  /// Quantized IVF only: candidates re-scored by the exact float rerank.
  uint64_t reranked_items = 0;
  /// HNSW only: graph nodes expanded (neighbor lists walked) across all
  /// requests — the pointer-chasing depth of the search, next to
  /// scanned_items which counts the distance evaluations those hops
  /// triggered (0 for the scan strategies).
  uint64_t hops = 0;
};

/// Read-only top-K retrieval strategy over a ServingModel snapshot.
class Retriever {
 public:
  virtual ~Retriever() = default;

  /// Strategy name ("exact", "ivf").
  virtual const char* name() const = 0;

  /// Top-k items for `user`, best first by BetterThan, excluding the
  /// user's seen items. k is clamped to the catalogue size; fewer than k
  /// entries come back when filtering (or a sparse index probe) leaves
  /// fewer candidates.
  virtual std::vector<RecEntry> RetrieveTopN(int64_t user,
                                             int64_t k) const = 0;

  /// RetrieveTopN for every user in `users`; output order matches input
  /// order and every per-user result is identical to a RetrieveTopN call
  /// at any thread/worker count.
  virtual std::vector<std::vector<RecEntry>> RetrieveBatch(
      const std::vector<int64_t>& users, int64_t k) const = 0;

  /// Counter snapshot (thread-safe).
  virtual RetrieverStats Stats() const = 0;

  /// eval::Scorer adapter sharing the model snapshot; safe to use after
  /// this retriever goes away. Scores are bit-identical to
  /// ServingModel::Score regardless of strategy.
  virtual std::unique_ptr<eval::Scorer> MakeScorer() const = 0;

  virtual const core::ServingModel& model() const = 0;
  virtual std::shared_ptr<const core::ServingModel> model_ptr() const = 0;
  /// Null when seen-item filtering is disabled.
  virtual const SeenItems* seen() const = 0;
  virtual std::shared_ptr<const SeenItems> seen_ptr() const = 0;
};

/// Merges per-shard bounded-heap winners into the global top-k. The global
/// top-k is a subset of the union of per-shard top-k's, and BetterThan is a
/// total order (ties broken by item id), so sorting the concatenation
/// reproduces the unsharded scan exactly. Consumes `parts`.
inline std::vector<RecEntry> MergeShardTopK(
    std::vector<std::vector<RecEntry>>* parts, int64_t k) {
  size_t total = 0;
  for (const std::vector<RecEntry>& part : *parts) total += part.size();
  std::vector<RecEntry> merged;
  merged.reserve(total);
  for (std::vector<RecEntry>& part : *parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(), BetterThan);
  if (static_cast<int64_t>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_RETRIEVER_H_
