#include "src/serve/seen_items.h"

#include <algorithm>

#include "src/util/check.h"

namespace gnmr {
namespace serve {

SeenItems SeenItems::FromDataset(const data::Dataset& dataset,
                                 bool target_behavior_only) {
  GNMR_CHECK(dataset.Validate().ok());
  std::vector<std::vector<int64_t>> per_user(
      static_cast<size_t>(dataset.num_users));
  for (const graph::Interaction& ev : dataset.interactions) {
    if (target_behavior_only && ev.behavior != dataset.target_behavior) {
      continue;
    }
    per_user[static_cast<size_t>(ev.user)].push_back(ev.item);
  }
  SeenItems out;
  out.offsets_.resize(static_cast<size_t>(dataset.num_users) + 1, 0);
  for (size_t u = 0; u < per_user.size(); ++u) {
    std::vector<int64_t>& items = per_user[u];
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    out.offsets_[u + 1] =
        out.offsets_[u] + static_cast<int64_t>(items.size());
  }
  out.items_.reserve(static_cast<size_t>(out.offsets_.back()));
  for (const std::vector<int64_t>& items : per_user) {
    out.items_.insert(out.items_.end(), items.begin(), items.end());
  }
  return out;
}

bool SeenItems::Contains(int64_t user, int64_t item) const {
  if (user < 0 || user >= num_users()) return false;
  const int64_t* begin = items_.data() + offsets_[static_cast<size_t>(user)];
  const int64_t* end = items_.data() + offsets_[static_cast<size_t>(user) + 1];
  return std::binary_search(begin, end, item);
}

std::vector<int64_t> SeenItems::ItemsOf(int64_t user) const {
  if (user < 0 || user >= num_users()) return {};
  return std::vector<int64_t>(
      items_.begin() + offsets_[static_cast<size_t>(user)],
      items_.begin() + offsets_[static_cast<size_t>(user) + 1]);
}

}  // namespace serve
}  // namespace gnmr
