#include "src/serve/ivf_retriever.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/quantize.h"
#include "src/tensor/shard_plan.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"

namespace gnmr {
namespace serve {

namespace {
// Scattered candidate rows (and code rows) are scored through the backend
// in fixed-size blocks: one dispatch per block amortises the indirect
// call, and the stack score buffer stays cache-resident. Block boundaries
// cannot change results — every output element is an independent dot.
constexpr int64_t kScanBlock = 256;
}  // namespace

IvfRetriever::IvfRetriever(std::shared_ptr<const core::ServingModel> model,
                           std::shared_ptr<const SeenItems> seen,
                           int64_t nprobe, ItemShardMode shard_mode,
                           bool quantized, int64_t rerank_k)
    : model_(std::move(model)),
      seen_(std::move(seen)),
      shard_mode_(shard_mode) {
  GNMR_CHECK(model_ != nullptr);
  GNMR_CHECK(model_->num_users > 0 && model_->num_items > 0);
  GNMR_CHECK(model_->embeddings.rows() ==
             model_->num_users + model_->num_items)
      << "inconsistent serving model";
  GNMR_CHECK(model_->has_ivf())
      << "IvfRetriever needs a model with an IVF index "
         "(core::BuildIvfIndex)";
  ivf_ = model_->ivf;
  // Shape checks only: the O(num_items) structural walk
  // (IvfIndex::CheckConsistent) already ran where the index was produced
  // — BuildIvfIndex, LoadServingModel and SaveServingModel all validate —
  // and RecService constructs retrievers under its swap lock, so this
  // constructor must stay cheap.
  GNMR_CHECK_GE(ivf_->nlist(), 1);
  GNMR_CHECK_EQ(static_cast<int64_t>(ivf_->list_items.size()),
                model_->num_items);
  GNMR_CHECK(ivf_->centroids.rank() == 2 &&
             ivf_->centroids.rows() == ivf_->nlist() &&
             ivf_->centroids.cols() == model_->embeddings.cols())
      << "ivf centroid shape mismatch";
  if (seen_ != nullptr && !seen_->empty()) {
    GNMR_CHECK_LE(seen_->num_users(), model_->num_users);
  }
  if (nprobe <= 0) nprobe = tensor::kIvfDefaultNprobe;
  nprobe_ = std::min(nprobe, ivf_->nlist());
  // The quantized scan needs codes; without them the request degrades to
  // the float scan (quantized() exposes the effective state).
  quantized_ = quantized && ivf_->has_codes();
  if (rerank_k <= 0) rerank_k = tensor::kIvfDefaultRerankK;
  rerank_k_ = std::min(rerank_k, model_->num_items);
}

std::vector<int64_t> IvfRetriever::ProbeClusters(int64_t user) const {
  GNMR_TRACE_SPAN("ivf.probe");
  const int64_t width = model_->embeddings.cols();
  const float* urow = model_->embeddings.data() + user * width;
  const float* centroids = ivf_->centroids.data();
  const int64_t nlist = ivf_->nlist();
  // Inner-product centroid scores through the backend's QueryDot (the same
  // lane-partial accumulation as item scoring); selection is a pure
  // function of them, so the probe set is deterministic across backends
  // and worker counts.
  std::vector<float> scores(static_cast<size_t>(nlist));
  tensor::GetBackend().QueryDot(urow, centroids, scores.data(), nlist, width);
  std::vector<std::pair<float, int64_t>> ranked(static_cast<size_t>(nlist));
  for (int64_t c = 0; c < nlist; ++c) {
    ranked[static_cast<size_t>(c)] = {scores[static_cast<size_t>(c)], c};
  }
  // Only the first nprobe_ winners matter: partial_sort under the same
  // (score desc, id asc) strict weak ordering yields the identical probe
  // set and order at O(nlist log nprobe) instead of a full sort — this is
  // the per-request hot path, and nlist grows as ~sqrt(items).
  std::partial_sort(ranked.begin(), ranked.begin() + nprobe_, ranked.end(),
                    [](const std::pair<float, int64_t>& a,
                       const std::pair<float, int64_t>& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int64_t> probes(static_cast<size_t>(nprobe_));
  for (int64_t p = 0; p < nprobe_; ++p) {
    probes[static_cast<size_t>(p)] = ranked[static_cast<size_t>(p)].second;
  }
  return probes;
}

void IvfRetriever::ScanCandidates(int64_t user, const int64_t* candidates,
                                  int64_t count, int64_t k,
                                  std::vector<RecEntry>* heap) const {
  // Per posting-list (or per shard range) scan unit; nests under
  // ivf.retrieve in the trace the way exact.scan nests under
  // exact.retrieve.
  GNMR_TRACE_SPAN("ivf.scan");
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + model_->num_users * width;
  const float* urow = emb + user * width;
  const SeenItems* seen = seen_.get();

  // The backend's QueryDotIndexed scores candidates exactly as the exact
  // scan's QueryDot does (one lane-partial sum per row); the kept set is
  // the range's top-k under the BetterThan total order, so it does not
  // depend on the candidate traversal order — which is what makes
  // posting-list shards mergeable and nprobe == nlist bit-identical to
  // the full catalogue scan. Only the item indirection differs from
  // RetrieveBlock: candidate rows are scattered, not a contiguous tile.
  heap->reserve(static_cast<size_t>(k) + 1);
  const tensor::KernelBackend& backend = tensor::GetBackend();
  float scores[kScanBlock];
  for (int64_t p = 0; p < count; p += kScanBlock) {
    const int64_t block = std::min(kScanBlock, count - p);
    backend.QueryDotIndexed(urow, item_base, candidates + p, scores, block,
                            width);
    for (int64_t q = 0; q < block; ++q) {
      OfferToBoundedHeap(heap, k, RecEntry{candidates[p + q], scores[q]},
                         seen, user);
    }
  }
}

std::vector<RecEntry> IvfRetriever::RetrieveOneQuantized(
    int64_t user, int64_t k, const std::vector<int64_t>& probes) const {
  GNMR_TRACE_SPAN("ivf.qscan");
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + model_->num_users * width;
  const float* urow = emb + user * width;
  const SeenItems* seen = seen_.get();
  const tensor::KernelBackend& backend = tensor::GetBackend();

  int64_t total = 0;
  for (int64_t c : probes) total += ivf_->ListSize(c);

  // Phase 1: scan the probed lists' int8 codes into a bounded pool of the
  // best approximate candidates. The integer dots are exact on every
  // backend and the dequantization is one fixed float expression
  // (quant::I8DotScore's multiply order), so the pool — a top-pool_k set
  // under the BetterThan total order — is deterministic across backends
  // and traversal-order independent. Codes sit in posting-list position
  // order, so each probed list streams contiguously.
  const tensor::quant::QuantizedQuery q =
      tensor::quant::QuantizeQueryI8(urow, width);
  const int64_t pool_k = std::max(rerank_k_, k);
  std::vector<RecEntry> pool;
  pool.reserve(static_cast<size_t>(pool_k) + 1);
  int32_t dots[kScanBlock];
  for (int64_t c : probes) {
    const int64_t begin = ivf_->list_offsets[static_cast<size_t>(c)];
    const int64_t size = ivf_->ListSize(c);
    const int8_t* codes = ivf_->codes.data() + begin * width;
    const float* scales = ivf_->code_scales.data() + begin;
    const int64_t* items = ivf_->list_items.data() + begin;
    for (int64_t p = 0; p < size; p += kScanBlock) {
      const int64_t block = std::min(kScanBlock, size - p);
      backend.I8QueryDot(q.codes.data(), codes + p * width, dots, block,
                         width);
      for (int64_t j = 0; j < block; ++j) {
        const float approx =
            static_cast<float>(dots[j]) * (q.scale * scales[p + j]);
        OfferToBoundedHeap(&pool, pool_k, RecEntry{items[p + j], approx},
                           seen, user);
      }
    }
  }

  // Phase 2: exact float rerank of the survivors — the same lane-partial
  // scores and BetterThan order as the float scan, so quantization can
  // only affect which items reached the pool, never how survivors rank.
  const int64_t reranked = static_cast<int64_t>(pool.size());
  std::vector<RecEntry> out;
  if (reranked > 0) {
    std::vector<int64_t> ids(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) ids[i] = pool[i].item;
    std::vector<float> exact(pool.size());
    for (int64_t p = 0; p < reranked; p += kScanBlock) {
      const int64_t block = std::min(kScanBlock, reranked - p);
      backend.QueryDotIndexed(urow, item_base, ids.data() + p,
                              exact.data() + p, block, width);
    }
    out.reserve(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      out.push_back(RecEntry{ids[i], exact[i]});
    }
    std::sort(out.begin(), out.end(), BetterThan);
    if (static_cast<int64_t>(out.size()) > k) {
      out.resize(static_cast<size_t>(k));
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  probed_clusters_.fetch_add(static_cast<uint64_t>(probes.size()),
                             std::memory_order_relaxed);
  scanned_items_.fetch_add(static_cast<uint64_t>(total),
                           std::memory_order_relaxed);
  // Bandwidth: all nlist centroid rows (the probe), then width code bytes
  // + one float scale per scanned item, then a full float row per
  // reranked survivor. The code phase's share is also tracked on its own
  // so the ~4x cut is observable directly.
  const uint64_t code_bytes = static_cast<uint64_t>(total) *
                              (static_cast<uint64_t>(width) + sizeof(float));
  scanned_code_bytes_.fetch_add(code_bytes, std::memory_order_relaxed);
  reranked_items_.fetch_add(static_cast<uint64_t>(reranked),
                            std::memory_order_relaxed);
  scanned_bytes_.fetch_add(
      static_cast<uint64_t>(ivf_->nlist() * width) * sizeof(float) +
          code_bytes +
          static_cast<uint64_t>(reranked * width) * sizeof(float),
      std::memory_order_relaxed);
  return out;
}

std::vector<RecEntry> IvfRetriever::RetrieveOne(int64_t user, int64_t k,
                                                bool allow_shard) const {
  GNMR_CHECK(user >= 0 && user < model_->num_users);
  const std::vector<int64_t> probes = ProbeClusters(user);
  if (quantized_) return RetrieveOneQuantized(user, k, probes);

  int64_t total = 0;
  for (int64_t c : probes) total += ivf_->ListSize(c);
  requests_.fetch_add(1, std::memory_order_relaxed);
  probed_clusters_.fetch_add(static_cast<uint64_t>(probes.size()),
                             std::memory_order_relaxed);
  scanned_items_.fetch_add(static_cast<uint64_t>(total),
                           std::memory_order_relaxed);
  // Bytes streamed: the probed candidates' item rows plus every centroid
  // row read by ProbeClusters (the probe scans all nlist centroids).
  const int64_t width = model_->embeddings.cols();
  scanned_bytes_.fetch_add(
      static_cast<uint64_t>((total + ivf_->nlist()) * width) * sizeof(float),
      std::memory_order_relaxed);

  std::vector<RecEntry> out;
  if (total == 0) return out;
  if (allow_shard && ItemShardingActive(shard_mode_)) {
    // One Global() snapshot serves both sizing and dispatch, and pins the
    // pool against a concurrent SetShardWorkers swap.
    std::shared_ptr<tensor::ShardPool> pool = tensor::ShardPool::Global();
    tensor::ShardPlan plan = tensor::ShardPlan::Uniform(
        total, pool->workers(), tensor::kShardMinItemsPerShard);
    const int64_t num_shards = plan.num_shards();
    if (num_shards > 1) {
      // Only the sharded path pays for a flat candidate copy: the plan
      // cuts plain [begin, end) ranges, which need contiguous storage
      // spanning all probed lists.
      std::vector<int64_t> candidates;
      candidates.reserve(static_cast<size_t>(total));
      for (int64_t c : probes) {
        const int64_t begin = ivf_->list_offsets[static_cast<size_t>(c)];
        const int64_t end = ivf_->list_offsets[static_cast<size_t>(c) + 1];
        candidates.insert(candidates.end(), ivf_->list_items.begin() + begin,
                          ivf_->list_items.begin() + end);
      }
      // Per-shard heaps stay unsorted; MergeShardTopK sorts the union.
      std::vector<std::vector<RecEntry>> parts(
          static_cast<size_t>(num_shards));
      pool->Run(num_shards, [&](int64_t s) {
        const tensor::ShardRange& r = plan.shard(s);
        ScanCandidates(user, candidates.data() + r.begin, r.rows(), k,
                       &parts[static_cast<size_t>(s)]);
      });
      return MergeShardTopK(&parts, k);
    }
  }
  // Unsharded: feed each probed posting list through one bounded heap in
  // place — no per-request candidate copy.
  for (int64_t c : probes) {
    ScanCandidates(user,
                   ivf_->list_items.data() +
                       ivf_->list_offsets[static_cast<size_t>(c)],
                   ivf_->ListSize(c), k, &out);
  }
  std::sort(out.begin(), out.end(), BetterThan);
  return out;
}

std::vector<RecEntry> IvfRetriever::RetrieveTopN(int64_t user,
                                                 int64_t k) const {
  GNMR_TRACE_SPAN("ivf.retrieve");
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  return RetrieveOne(user, k, /*allow_shard=*/true);
}

std::vector<std::vector<RecEntry>> IvfRetriever::RetrieveBatch(
    const std::vector<int64_t>& users, int64_t k) const {
  GNMR_TRACE_SPAN("ivf.batch");
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  const int64_t n = static_cast<int64_t>(users.size());
  std::vector<std::vector<RecEntry>> outs(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kUserBlock - 1) / kUserBlock;
  // Every user probes a different cluster set, so batching buys outer
  // parallelism only; each block's users run the inline (unsharded)
  // single-user path so one dispatch level does all the fanning out.
  if (ItemShardingActive(shard_mode_)) {
    if (num_blocks == 1) {
      // Too few users to fan blocks out: let each user's scan shard its
      // own candidate range instead, so the pool still gets work.
      for (int64_t i = 0; i < n; ++i) {
        outs[static_cast<size_t>(i)] = RetrieveOne(
            users[static_cast<size_t>(i)], k, /*allow_shard=*/true);
      }
      return outs;
    }
    tensor::ShardPool::Global()->Run(num_blocks, [&](int64_t b) {
      const int64_t start = b * kUserBlock;
      const int64_t count = std::min(kUserBlock, n - start);
      for (int64_t u = 0; u < count; ++u) {
        outs[static_cast<size_t>(start + u)] = RetrieveOne(
            users[static_cast<size_t>(start + u)], k, /*allow_shard=*/false);
      }
    });
    return outs;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_blocks > 1)
#endif
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t start = b * kUserBlock;
    const int64_t count = std::min(kUserBlock, n - start);
    for (int64_t u = 0; u < count; ++u) {
      outs[static_cast<size_t>(start + u)] = RetrieveOne(
          users[static_cast<size_t>(start + u)], k, /*allow_shard=*/false);
    }
  }
  return outs;
}

RetrieverStats IvfRetriever::Stats() const {
  RetrieverStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.scanned_items = scanned_items_.load(std::memory_order_relaxed);
  out.scanned_bytes = scanned_bytes_.load(std::memory_order_relaxed);
  out.probed_clusters = probed_clusters_.load(std::memory_order_relaxed);
  out.scanned_code_bytes =
      scanned_code_bytes_.load(std::memory_order_relaxed);
  out.reranked_items = reranked_items_.load(std::memory_order_relaxed);
  return out;
}

std::unique_ptr<eval::Scorer> IvfRetriever::MakeScorer() const {
  return core::MakeSharedScorer(model_);
}

}  // namespace serve
}  // namespace gnmr
