#include "src/serve/ivf_retriever.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/shard_plan.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"

namespace gnmr {
namespace serve {

IvfRetriever::IvfRetriever(std::shared_ptr<const core::ServingModel> model,
                           std::shared_ptr<const SeenItems> seen,
                           int64_t nprobe, ItemShardMode shard_mode)
    : model_(std::move(model)),
      seen_(std::move(seen)),
      shard_mode_(shard_mode) {
  GNMR_CHECK(model_ != nullptr);
  GNMR_CHECK(model_->num_users > 0 && model_->num_items > 0);
  GNMR_CHECK(model_->embeddings.rows() ==
             model_->num_users + model_->num_items)
      << "inconsistent serving model";
  GNMR_CHECK(model_->has_ivf())
      << "IvfRetriever needs a model with an IVF index "
         "(core::BuildIvfIndex)";
  ivf_ = model_->ivf;
  // Shape checks only: the O(num_items) structural walk
  // (IvfIndex::CheckConsistent) already ran where the index was produced
  // — BuildIvfIndex, LoadServingModel and SaveServingModel all validate —
  // and RecService constructs retrievers under its swap lock, so this
  // constructor must stay cheap.
  GNMR_CHECK_GE(ivf_->nlist(), 1);
  GNMR_CHECK_EQ(static_cast<int64_t>(ivf_->list_items.size()),
                model_->num_items);
  GNMR_CHECK(ivf_->centroids.rank() == 2 &&
             ivf_->centroids.rows() == ivf_->nlist() &&
             ivf_->centroids.cols() == model_->embeddings.cols())
      << "ivf centroid shape mismatch";
  if (seen_ != nullptr && !seen_->empty()) {
    GNMR_CHECK_LE(seen_->num_users(), model_->num_users);
  }
  if (nprobe <= 0) nprobe = tensor::kIvfDefaultNprobe;
  nprobe_ = std::min(nprobe, ivf_->nlist());
}

std::vector<int64_t> IvfRetriever::ProbeClusters(int64_t user) const {
  GNMR_TRACE_SPAN("ivf.probe");
  const int64_t width = model_->embeddings.cols();
  const float* urow = model_->embeddings.data() + user * width;
  const float* centroids = ivf_->centroids.data();
  const int64_t nlist = ivf_->nlist();
  // Inner-product centroid scores in double (same accumulation discipline
  // as item scoring); selection is a pure function of them, so the probe
  // set is deterministic across backends and worker counts.
  std::vector<std::pair<float, int64_t>> ranked(static_cast<size_t>(nlist));
  for (int64_t c = 0; c < nlist; ++c) {
    const float* crow = centroids + c * width;
    double acc = 0.0;
    for (int64_t j = 0; j < width; ++j) {
      acc += static_cast<double>(urow[j]) * crow[j];
    }
    ranked[static_cast<size_t>(c)] = {static_cast<float>(acc), c};
  }
  // Only the first nprobe_ winners matter: partial_sort under the same
  // (score desc, id asc) strict weak ordering yields the identical probe
  // set and order at O(nlist log nprobe) instead of a full sort — this is
  // the per-request hot path, and nlist grows as ~sqrt(items).
  std::partial_sort(ranked.begin(), ranked.begin() + nprobe_, ranked.end(),
                    [](const std::pair<float, int64_t>& a,
                       const std::pair<float, int64_t>& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int64_t> probes(static_cast<size_t>(nprobe_));
  for (int64_t p = 0; p < nprobe_; ++p) {
    probes[static_cast<size_t>(p)] = ranked[static_cast<size_t>(p)].second;
  }
  return probes;
}

void IvfRetriever::ScanCandidates(int64_t user, const int64_t* candidates,
                                  int64_t count, int64_t k,
                                  std::vector<RecEntry>* heap) const {
  // Per posting-list (or per shard range) scan unit; nests under
  // ivf.retrieve in the trace the way exact.scan nests under
  // exact.retrieve.
  GNMR_TRACE_SPAN("ivf.scan");
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + model_->num_users * width;
  const float* urow = emb + user * width;
  const SeenItems* seen = seen_.get();

  // The shared scan primitives (retriever.h) score and rank candidates
  // exactly as the exact scan does; the kept set is the range's top-k
  // under the BetterThan total order, so it does not depend on the
  // candidate traversal order — which is what makes posting-list shards
  // mergeable and nprobe == nlist bit-identical to the full catalogue
  // scan. Only the item indirection differs from RetrieveBlock: candidate
  // rows are scattered, not a contiguous tile.
  heap->reserve(static_cast<size_t>(k) + 1);
  float scores[4];
  int64_t p = 0;
  while (p < count) {
    const int64_t quad = std::min<int64_t>(4, count - p);
    if (quad == 4) {
      QuadDotScores(urow, item_base + candidates[p] * width,
                    item_base + candidates[p + 1] * width,
                    item_base + candidates[p + 2] * width,
                    item_base + candidates[p + 3] * width, width, scores);
    } else {
      for (int64_t q = 0; q < quad; ++q) {
        scores[q] =
            DotScore(urow, item_base + candidates[p + q] * width, width);
      }
    }
    for (int64_t q = 0; q < quad; ++q) {
      OfferToBoundedHeap(heap, k, RecEntry{candidates[p + q], scores[q]},
                         seen, user);
    }
    p += quad;
  }
}

std::vector<RecEntry> IvfRetriever::RetrieveOne(int64_t user, int64_t k,
                                                bool allow_shard) const {
  GNMR_CHECK(user >= 0 && user < model_->num_users);
  const std::vector<int64_t> probes = ProbeClusters(user);

  int64_t total = 0;
  for (int64_t c : probes) total += ivf_->ListSize(c);
  requests_.fetch_add(1, std::memory_order_relaxed);
  probed_clusters_.fetch_add(static_cast<uint64_t>(probes.size()),
                             std::memory_order_relaxed);
  scanned_items_.fetch_add(static_cast<uint64_t>(total),
                           std::memory_order_relaxed);
  // Bytes streamed: the probed candidates' item rows plus every centroid
  // row read by ProbeClusters (the probe scans all nlist centroids).
  const int64_t width = model_->embeddings.cols();
  scanned_bytes_.fetch_add(
      static_cast<uint64_t>((total + ivf_->nlist()) * width) * sizeof(float),
      std::memory_order_relaxed);

  std::vector<RecEntry> out;
  if (total == 0) return out;
  if (allow_shard && ItemShardingActive(shard_mode_)) {
    // One Global() snapshot serves both sizing and dispatch, and pins the
    // pool against a concurrent SetShardWorkers swap.
    std::shared_ptr<tensor::ShardPool> pool = tensor::ShardPool::Global();
    tensor::ShardPlan plan = tensor::ShardPlan::Uniform(
        total, pool->workers(), tensor::kShardMinItemsPerShard);
    const int64_t num_shards = plan.num_shards();
    if (num_shards > 1) {
      // Only the sharded path pays for a flat candidate copy: the plan
      // cuts plain [begin, end) ranges, which need contiguous storage
      // spanning all probed lists.
      std::vector<int64_t> candidates;
      candidates.reserve(static_cast<size_t>(total));
      for (int64_t c : probes) {
        const int64_t begin = ivf_->list_offsets[static_cast<size_t>(c)];
        const int64_t end = ivf_->list_offsets[static_cast<size_t>(c) + 1];
        candidates.insert(candidates.end(), ivf_->list_items.begin() + begin,
                          ivf_->list_items.begin() + end);
      }
      // Per-shard heaps stay unsorted; MergeShardTopK sorts the union.
      std::vector<std::vector<RecEntry>> parts(
          static_cast<size_t>(num_shards));
      pool->Run(num_shards, [&](int64_t s) {
        const tensor::ShardRange& r = plan.shard(s);
        ScanCandidates(user, candidates.data() + r.begin, r.rows(), k,
                       &parts[static_cast<size_t>(s)]);
      });
      return MergeShardTopK(&parts, k);
    }
  }
  // Unsharded: feed each probed posting list through one bounded heap in
  // place — no per-request candidate copy.
  for (int64_t c : probes) {
    ScanCandidates(user,
                   ivf_->list_items.data() +
                       ivf_->list_offsets[static_cast<size_t>(c)],
                   ivf_->ListSize(c), k, &out);
  }
  std::sort(out.begin(), out.end(), BetterThan);
  return out;
}

std::vector<RecEntry> IvfRetriever::RetrieveTopN(int64_t user,
                                                 int64_t k) const {
  GNMR_TRACE_SPAN("ivf.retrieve");
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  return RetrieveOne(user, k, /*allow_shard=*/true);
}

std::vector<std::vector<RecEntry>> IvfRetriever::RetrieveBatch(
    const std::vector<int64_t>& users, int64_t k) const {
  GNMR_TRACE_SPAN("ivf.batch");
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  const int64_t n = static_cast<int64_t>(users.size());
  std::vector<std::vector<RecEntry>> outs(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kUserBlock - 1) / kUserBlock;
  // Every user probes a different cluster set, so batching buys outer
  // parallelism only; each block's users run the inline (unsharded)
  // single-user path so one dispatch level does all the fanning out.
  if (ItemShardingActive(shard_mode_)) {
    if (num_blocks == 1) {
      // Too few users to fan blocks out: let each user's scan shard its
      // own candidate range instead, so the pool still gets work.
      for (int64_t i = 0; i < n; ++i) {
        outs[static_cast<size_t>(i)] = RetrieveOne(
            users[static_cast<size_t>(i)], k, /*allow_shard=*/true);
      }
      return outs;
    }
    tensor::ShardPool::Global()->Run(num_blocks, [&](int64_t b) {
      const int64_t start = b * kUserBlock;
      const int64_t count = std::min(kUserBlock, n - start);
      for (int64_t u = 0; u < count; ++u) {
        outs[static_cast<size_t>(start + u)] = RetrieveOne(
            users[static_cast<size_t>(start + u)], k, /*allow_shard=*/false);
      }
    });
    return outs;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_blocks > 1)
#endif
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t start = b * kUserBlock;
    const int64_t count = std::min(kUserBlock, n - start);
    for (int64_t u = 0; u < count; ++u) {
      outs[static_cast<size_t>(start + u)] = RetrieveOne(
          users[static_cast<size_t>(start + u)], k, /*allow_shard=*/false);
    }
  }
  return outs;
}

RetrieverStats IvfRetriever::Stats() const {
  RetrieverStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.scanned_items = scanned_items_.load(std::memory_order_relaxed);
  out.scanned_bytes = scanned_bytes_.load(std::memory_order_relaxed);
  out.probed_clusters = probed_clusters_.load(std::memory_order_relaxed);
  return out;
}

std::unique_ptr<eval::Scorer> IvfRetriever::MakeScorer() const {
  return core::MakeSharedScorer(model_);
}

}  // namespace serve
}  // namespace gnmr
