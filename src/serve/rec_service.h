// Recommendation service facade: model snapshot double-buffering + cache.
//
// RecService owns the online read path end to end: requests are answered
// from the RecCache when possible, otherwise from the current Retriever
// snapshot (exact full-catalogue scan, IVF approximate retrieval, or the
// HNSW graph walk — Options::retriever picks the strategy, and the
// service never touches a concrete scan type beyond constructing it). Model hot-swaps are
// zero-downtime — the next snapshot is built (or loaded from disk) while
// the current one keeps serving, then an atomic pointer swap + O(1) cache
// invalidation cut traffic over; in-flight requests finish on the snapshot
// they started with (shared_ptr pinning).
//
// Exact fallback: an approximate-backed (IVF or HNSW) service also keeps
// an ExactRetriever over the same snapshot; Recommend/RecommendBatch take a per-request
// `exact` knob that bypasses the approximate index (and the cache, whose
// entries are strategy-shaped) for callers that need the guaranteed
// full-catalogue answer — e.g. spot-checking recall in production.
#ifndef GNMR_SERVE_REC_SERVICE_H_
#define GNMR_SERVE_REC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/exact_retriever.h"
#include "src/serve/rec_cache.h"
#include "src/serve/retriever.h"
#include "src/tensor/kernel_tunables.h"
#include "src/util/status.h"

namespace gnmr {
namespace serve {

/// Retrieval strategy served by RecService (see retriever.h).
enum class RetrieverKind {
  /// ExactRetriever: full-catalogue blocked scan.
  kExact,
  /// IvfRetriever: clustered approximate retrieval. The serving model must
  /// carry an IVF index (core::BuildIvfIndex); LoadAndSwap builds one on
  /// the fly for artifacts that lack it.
  kIvf,
  /// HnswRetriever: graph-walk approximate retrieval, sub-linear per
  /// query. The serving model must carry an HNSW graph
  /// (core::BuildHnswIndex); LoadAndSwap builds one on the fly for
  /// artifacts that lack it.
  kHnsw,
};

/// Service-level counters. Latency covers Recommend/RecommendBatch
/// end-to-end (cache lookup + retrieval), per single-user request.
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  /// Requests that piggybacked on another thread's in-flight retrieval of
  /// the same (user, k) instead of recomputing it (single-flight misses).
  uint64_t coalesced = 0;
  /// Requests that forced the exact scan on an IVF-backed service (the
  /// per-request `exact` knob).
  uint64_t exact_fallbacks = 0;
  uint64_t swaps = 0;
  /// Cumulative request latency in integer nanoseconds from the monotonic
  /// clock — the same readings the latency histograms record, so the mean
  /// here and the histogram quantiles describe one population.
  uint64_t latency_ns_total = 0;
  /// Version of the currently served snapshot (bumps on every swap).
  uint64_t model_version = 0;
  /// Cache counters summed across every cache generation this service has
  /// owned: each swap installs a fresh cache (eagerly freeing the stale
  /// lists) and retires the outgoing generation's hits/misses/evictions
  /// here, the way `retrieval` aggregates retired retrievers. `entries`
  /// counts only the live generation — retired entries are freed.
  CacheStats cache;
  /// Retrieval-side counters summed across every retriever this service
  /// has owned (current + retired snapshots): items scanned, clusters
  /// probed. scanned_items / (requests * catalogue) is the scan fraction
  /// the index saved.
  RetrieverStats retrieval;

  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) / requests;
  }
  double MeanLatencyUs() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(latency_ns_total) / 1e3 / requests;
  }
};

/// Thread-safe top-N recommendation service over ServingModel snapshots.
class RecService {
 public:
  struct Options {
    int64_t cache_capacity_per_shard = 4096;
    int64_t cache_shards = 8;
    /// Retrieval strategy of the primary (cached) path.
    RetrieverKind retriever = RetrieverKind::kExact;
    /// kIvf: clusters probed per request (<= 0 picks the default, clamped
    /// to the index's nlist).
    int64_t nprobe = tensor::kIvfDefaultNprobe;
    /// kIvf: cluster count used when LoadAndSwap must build an index for
    /// an artifact that lacks one (<= 0 picks the default).
    int64_t nlist = 0;
    /// kIvf: serve the two-phase quantized scan (int8 code scan + exact
    /// rerank) when the snapshot's index carries codes. When LoadAndSwap
    /// builds an index for a codeless artifact it also quantizes —
    /// provided the catalogue clears tensor::kIvfQuantizeMinItems (below
    /// that the code tier's fixed overheads outweigh the bandwidth win).
    /// A snapshot whose index lacks codes silently serves the float scan
    /// (IvfRetriever::quantized() exposes the effective state).
    bool quantized = false;
    /// kIvf + quantized: exact-rerank pool size per request (<= 0 picks
    /// tensor::kIvfDefaultRerankK).
    int64_t rerank_k = 0;
    /// kHnsw: level-0 beam width per request (<= 0 picks
    /// tensor::kHnswDefaultEfSearch; a request's k can still raise the
    /// effective beam per call).
    int64_t ef_search = 0;
    /// kHnsw: neighbor cap used when LoadAndSwap must build a graph for an
    /// artifact that lacks one (<= 0 picks tensor::kHnswDefaultM).
    int64_t hnsw_m = 0;
    /// LoadAndSwap opens v3 artifacts zero-copy (LoadServingModelMapped):
    /// the snapshot serves straight out of the page cache and load time is
    /// O(1) in the table size. Pre-v3 artifacts silently fall back to the
    /// owned-storage loader. Snapshot lifetime is unchanged — the mapping
    /// lives as long as any in-flight request pins the snapshot.
    bool mmap_artifacts = false;
    /// Registry the per-phase latency histograms live in
    /// ("serve.latency.hit" / ".coalesced" / ".miss" / ".exact" /
    /// ".batch", nanoseconds). nullptr (the default) gives the service a
    /// private registry so tests and co-hosted services stay isolated;
    /// binaries that export one metrics document pass
    /// &obs::MetricsRegistry::Global().
    obs::MetricsRegistry* metrics = nullptr;
    /// Trace-span sampling on the per-request fast path: with tracing
    /// enabled, 1 request in `trace_sample_period` (per thread) opens
    /// spans. Cache hits finish in ~1-2us, so spanning every one would
    /// dominate the path it measures; sampling keeps the overhead in the
    /// noise while the flame view stays representative. <= 1 spans every
    /// request.
    int64_t trace_sample_period = 16;
  };

  /// Serves from `model` (non-null), filtering each user's `seen` items
  /// when provided. `seen` is shared across swaps: LoadAndSwap keeps it,
  /// SwapModel may replace it. With Options::retriever == kIvf the model
  /// must carry an IVF index; with kHnsw, an HNSW graph.
  RecService(std::shared_ptr<const core::ServingModel> model,
             std::shared_ptr<const SeenItems> seen, Options options);
  explicit RecService(std::shared_ptr<const core::ServingModel> model,
                      std::shared_ptr<const SeenItems> seen = nullptr);

  /// Top-k for `user` under the configured strategy (best first, seen
  /// items excluded), served from cache when fresh. Concurrent misses for
  /// the same (user, k) coalesce: one thread retrieves while the rest wait
  /// on its in-flight result, so a thundering herd costs one retrieval
  /// instead of N; if the leader unwinds before publishing, waiters re-run
  /// the miss path (one is promoted to leader, the rest coalesce onto it)
  /// instead of surfacing its empty placeholder. `exact` forces the
  /// full-catalogue scan on an IVF-backed service, bypassing cache and
  /// flights (a no-op on an exact-backed service). `user` must fit in 32
  /// bits (the cache/flight key packing — checked). Thread-safe.
  std::vector<RecEntry> Recommend(int64_t user, int64_t k,
                                  bool exact = false);

  /// Batched Recommend: cache lookups first, then one blocked retrieval
  /// pass over the misses. Output order matches `users`; the same 32-bit
  /// user-id constraint and `exact` semantics as Recommend apply.
  std::vector<std::vector<RecEntry>> RecommendBatch(
      const std::vector<int64_t>& users, int64_t k, bool exact = false);

  /// Hot-swaps the served snapshot and invalidates the cache atomically.
  /// Pass `seen` to replace the filter sets (nullptr keeps the current
  /// ones). On a kIvf service the new model must carry an IVF index; on a
  /// kHnsw service, an HNSW graph.
  /// Concurrent Recommend calls never block on retrieval: they either
  /// finish on the old snapshot or start on the new one.
  void SwapModel(std::shared_ptr<const core::ServingModel> next,
                 std::shared_ptr<const SeenItems> seen = nullptr);

  /// Loads a ServingModel artifact (SaveServingModel format, v1 or v2) and
  /// swaps it in; the current snapshot serves until the load completes.
  /// Keeps the current seen sets. On a kIvf service an artifact without an
  /// index gets one built (Options::nlist) before the swap; on a kHnsw
  /// service an artifact without a graph gets one built (Options::hnsw_m).
  /// On error the service is untouched.
  util::Status LoadAndSwap(const std::string& path);

  /// The retrieval strategy currently serving (pin it by holding the
  /// returned ptr).
  std::shared_ptr<const Retriever> retriever() const;
  /// The exact-scan fallback over the same snapshot (the primary itself on
  /// an exact-backed service).
  std::shared_ptr<const ExactRetriever> exact_retriever() const;

  ServiceStats stats() const;
  uint64_t model_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// The registry holding this service's latency histograms — the one
  /// passed via Options::metrics, else the service's private registry.
  obs::MetricsRegistry& metrics() const {
    return options_.metrics != nullptr ? *options_.metrics : *owned_metrics_;
  }

  /// Drops all cached lists without swapping the model (e.g. after an
  /// out-of-band seen-set update). O(1): the version bump invalidates
  /// lazily, unlike a swap (which replaces the cache generation).
  void InvalidateCache();

 private:
  /// White-box access for tests/serve_test.cc (flight registry races are
  /// not reachable deterministically through the public API).
  friend class RecServiceTestPeer;

  /// One in-flight retrieval for a (user, k) key; later misses for the
  /// same key block on it instead of recomputing (see rec_service.cc).
  struct Flight;

  /// JoinOrLead result: the flight registered under the key, plus whether
  /// this thread created it (and so must publish or abandon it).
  struct FlightSlot {
    std::shared_ptr<Flight> flight;
    bool leader = false;
  };

  /// How RetrieveCoalesced answered a request — picks the latency
  /// histogram the request lands in.
  enum class Outcome { kHit, kCoalesced, kLead };

  /// (retriever, cache generation, cache version) as one consistent
  /// triple: a leader Puts into the SAME generation whose version it
  /// captured, so a list computed pre-swap can never surface post-swap
  /// (the retired generation is unreachable from new readers).
  struct ServingSnapshot {
    std::shared_ptr<const Retriever> retriever;
    std::shared_ptr<RecCache> cache;
    uint64_t cache_version = 0;
  };
  ServingSnapshot Snapshot() const;

  /// The cache generation currently serving reads.
  std::shared_ptr<RecCache> CurrentCache() const {
    return std::atomic_load(&cache_);
  }

  /// Whether this request's spans record (see Options::trace_sample_period).
  bool SampleTrace() const;

  /// Resolves the per-request `exact` knob: the pinned exact fallback when
  /// it is a DIFFERENT strategy than the primary (i.e. the knob changes
  /// anything), else nullptr — the single place the fallback rule lives
  /// for both Recommend and RecommendBatch.
  std::shared_ptr<const ExactRetriever> ExactFallbackIfRequested(bool exact);

  /// Replaces the snapshot + invalidates the cache; swap_mu_ must be held.
  /// Retires the outgoing retrievers' counters into retired_retrieval_.
  void InstallLocked(std::shared_ptr<const core::ServingModel> next,
                     std::shared_ptr<const SeenItems> seen);

  /// Joins the in-flight retrieval for `key` if one exists, else registers
  /// a fresh flight with this thread as its leader (who must then publish
  /// or abandon that exact flight).
  FlightSlot JoinOrLead(uint64_t key);

  /// The shared request path: serve (user, k) from the cache, by
  /// coalescing onto another thread's in-flight retrieval, or by leading
  /// one; accounts the cache_hits_/coalesced_ stats for whichever way it
  /// went. Loops back to the cache check when a joined leader unwinds
  /// before publishing, so coalescing survives an abandon (one waiter
  /// re-elects itself leader, the rest join that new flight).
  /// `outcome` (optional) reports which way the request resolved;
  /// `sampled` gates this request's trace spans.
  std::vector<RecEntry> RetrieveCoalesced(int64_t user, int64_t k,
                                          bool sampled,
                                          Outcome* outcome = nullptr);

  /// Publishes the leader's result and wakes the waiters; unregisters
  /// `key`. `flight` must be the one this thread leads under `key`.
  void PublishFlight(uint64_t key, const std::shared_ptr<Flight>& flight,
                     const std::vector<RecEntry>& result);

  /// Unwind path for a leader that dies before publishing: unregisters
  /// `key` and marks `flight` abandoned so waiters unblock and re-run the
  /// miss path. The registry erase is identity-compared — a stale lease
  /// must not tear down a NEW flight another thread registered under the
  /// same key after this one was published (ABA across a publish +
  /// re-lead) — but a not-yet-done flight is always released, covering a
  /// PublishFlight that unwound between its erase and setting done.
  void AbandonFlight(uint64_t key, const std::shared_ptr<Flight>& flight);

  /// Scope guard leading one or more flights: each (key, flight) pair is
  /// abandoned on destruction unless the normal PublishFlight ran first
  /// (which unregisters it, making the abandon an identity-checked no-op).
  class FlightLease {
   public:
    explicit FlightLease(RecService* service) : service_(service) {}
    ~FlightLease() {
      for (const Led& led : led_) service_->AbandonFlight(led.key, led.flight);
    }
    FlightLease(const FlightLease&) = delete;
    FlightLease& operator=(const FlightLease&) = delete;
    /// Call with the lead count upper bound BEFORE JoinOrLead registers
    /// anything: with capacity in hand Add cannot throw, so a freshly
    /// registered flight can never miss its lease entry (which would
    /// leave it in the registry forever, hanging all future joiners).
    void Reserve(size_t n) { led_.reserve(n); }
    void Add(uint64_t key, std::shared_ptr<Flight> flight) {
      led_.push_back({key, std::move(flight)});
    }

   private:
    struct Led {
      uint64_t key;
      std::shared_ptr<Flight> flight;
    };
    RecService* service_;
    std::vector<Led> led_;
  };

  static uint64_t FlightKey(int64_t user, int64_t k) {
    // Same packing as RecCache: user in the high 32 bits, k below. The
    // 32-bit ranges are enforced at the public entry points (see
    // CheckKeyRanges in rec_service.cc), so distinct (user, k) pairs
    // never share a key.
    return (static_cast<uint64_t>(user) << 32) ^ static_cast<uint64_t>(k);
  }

  Options options_;
  /// Guards retriever_/exact_ replacement (readers copy the shared_ptr).
  mutable std::mutex swap_mu_;
  /// The strategy serving the cached path (== exact_ on a kExact service).
  std::shared_ptr<const Retriever> retriever_;
  /// Exact fallback over the same snapshot.
  std::shared_ptr<const ExactRetriever> exact_;
  /// Counters of retrievers already swapped out; guarded by swap_mu_.
  RetrieverStats retired_retrieval_;
  /// Counters of cache generations already swapped out (entries always 0 —
  /// a retired generation's lists are freed); guarded by swap_mu_.
  CacheStats retired_cache_;
  /// The live cache generation. Replaced wholesale on every swap (stale
  /// lists are reclaimed eagerly instead of lingering until LRU pushes
  /// them out); all access goes through std::atomic_load/atomic_store so
  /// readers never touch swap_mu_. In-flight leaders pin their generation
  /// via ServingSnapshot.
  std::shared_ptr<RecCache> cache_;
  /// Catalogue size of the current snapshot (k is clamped against it
  /// before cache lookups, off the lock).
  std::atomic<int64_t> num_items_{0};
  std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> exact_fallbacks_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> latency_ns_{0};
  /// Backing storage when Options::metrics is null (see Options).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  /// Per-phase end-to-end latency histograms (nanoseconds), resolved once
  /// at construction; Record is lock-free so they sit on the hot path.
  obs::Histogram* lat_hit_ = nullptr;
  obs::Histogram* lat_coalesced_ = nullptr;
  obs::Histogram* lat_miss_ = nullptr;
  obs::Histogram* lat_exact_ = nullptr;
  obs::Histogram* lat_batch_ = nullptr;
  /// Guards flights_; held only for map lookups/insert/erase, never across
  /// a retrieval.
  std::mutex flights_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Flight>> flights_;
};

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_REC_SERVICE_H_
