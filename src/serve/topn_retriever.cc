#include "src/serve/topn_retriever.h"

#include <algorithm>
#include <cstring>

#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/shard_plan.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"

namespace gnmr {
namespace serve {

TopNRetriever::TopNRetriever(std::shared_ptr<const core::ServingModel> model,
                             std::shared_ptr<const SeenItems> seen,
                             ItemShardMode shard_mode)
    : model_(std::move(model)),
      seen_(std::move(seen)),
      shard_mode_(shard_mode) {
  GNMR_CHECK(model_ != nullptr);
  GNMR_CHECK(model_->num_users > 0 && model_->num_items > 0);
  GNMR_CHECK(model_->embeddings.rows() ==
             model_->num_users + model_->num_items)
      << "inconsistent serving model";
  if (seen_ != nullptr && !seen_->empty()) {
    GNMR_CHECK_LE(seen_->num_users(), model_->num_users);
  }
}

bool TopNRetriever::UseItemSharding() const {
  switch (shard_mode_) {
    case ItemShardMode::kOn:
      return true;
    case ItemShardMode::kOff:
      return false;
    case ItemShardMode::kAuto:
      // Follow the kernel-backend selection: if compute runs sharded, so
      // does retrieval. strcmp against the registry name, not a string
      // compare per entry — this is on the per-request path.
      return std::strcmp(tensor::GetBackend().name(), "sharded") == 0;
  }
  return false;
}

void TopNRetriever::RetrieveBlock(const int64_t* users, int64_t count,
                                  int64_t k, int64_t item_begin,
                                  int64_t item_end,
                                  std::vector<RecEntry>* outs) const {
  GNMR_CHECK(count >= 1 && count <= kUserBlock);
  GNMR_CHECK(item_begin >= 0 && item_begin <= item_end &&
             item_end <= model_->num_items);
  const int64_t num_users = model_->num_users;
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + num_users * width;
  const SeenItems* seen = seen_.get();

  // Worst-on-top bounded heaps: with BetterThan as the "less" comparator
  // the std heap front is the entry no other beats, i.e. the current worst.
  std::vector<RecEntry> heaps[kUserBlock];
  for (int64_t u = 0; u < count; ++u) {
    GNMR_CHECK(users[u] >= 0 && users[u] < num_users);
    heaps[u].reserve(static_cast<size_t>(k) + 1);
  }

  float scores[kUserBlock * kItemBlock];
  for (int64_t i0 = item_begin; i0 < item_end; i0 += kItemBlock) {
    const int64_t tile = std::min(kItemBlock, item_end - i0);
    // Blocked matmul tile: `count` user rows x `tile` item rows. Scoring
    // every user in the block against the same item tile keeps the tile
    // resident in cache. Four items advance together so their accumulation
    // chains pipeline, but each item's sum still runs over c in ascending
    // order in double — exactly ServingModel::Score — so every score is
    // bit-identical to the per-item path (and independent of where the
    // item range starts, which is what makes shard outputs mergeable).
    for (int64_t u = 0; u < count; ++u) {
      const float* urow = emb + users[u] * width;
      float* srow = scores + u * kItemBlock;
      int64_t j = 0;
      for (; j + 4 <= tile; j += 4) {
        const float* v0 = item_base + (i0 + j) * width;
        const float* v1 = v0 + width;
        const float* v2 = v1 + width;
        const float* v3 = v2 + width;
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (int64_t c = 0; c < width; ++c) {
          const double uc = static_cast<double>(urow[c]);
          a0 += uc * v0[c];
          a1 += uc * v1[c];
          a2 += uc * v2[c];
          a3 += uc * v3[c];
        }
        srow[j] = static_cast<float>(a0);
        srow[j + 1] = static_cast<float>(a1);
        srow[j + 2] = static_cast<float>(a2);
        srow[j + 3] = static_cast<float>(a3);
      }
      for (; j < tile; ++j) {
        const float* vrow = item_base + (i0 + j) * width;
        double acc = 0.0;
        for (int64_t c = 0; c < width; ++c) {
          acc += static_cast<double>(urow[c]) * vrow[c];
        }
        srow[j] = static_cast<float>(acc);
      }
    }
    for (int64_t u = 0; u < count; ++u) {
      std::vector<RecEntry>& heap = heaps[u];
      const float* srow = scores + u * kItemBlock;
      for (int64_t j = 0; j < tile; ++j) {
        RecEntry e{i0 + j, srow[j]};
        if (static_cast<int64_t>(heap.size()) == k &&
            !BetterThan(e, heap.front())) {
          continue;  // cannot enter the top-k; skip the seen lookup
        }
        if (seen != nullptr && seen->Contains(users[u], e.item)) continue;
        if (static_cast<int64_t>(heap.size()) < k) {
          heap.push_back(e);
          std::push_heap(heap.begin(), heap.end(), BetterThan);
        } else {
          std::pop_heap(heap.begin(), heap.end(), BetterThan);
          heap.back() = e;
          std::push_heap(heap.begin(), heap.end(), BetterThan);
        }
      }
    }
  }

  for (int64_t u = 0; u < count; ++u) {
    std::sort(heaps[u].begin(), heaps[u].end(), BetterThan);
    outs[u] = std::move(heaps[u]);
  }
}

namespace {

// Merges per-shard bounded-heap winners into the global top-k. The global
// top-k is a subset of the union of per-shard top-k's, and BetterThan is a
// total order (ties broken by item id), so sorting the concatenation
// reproduces the unsharded scan exactly.
std::vector<RecEntry> MergeShardTopK(std::vector<std::vector<RecEntry>>* parts,
                                     int64_t k) {
  size_t total = 0;
  for (const std::vector<RecEntry>& part : *parts) total += part.size();
  std::vector<RecEntry> merged;
  merged.reserve(total);
  for (std::vector<RecEntry>& part : *parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(), BetterThan);
  if (static_cast<int64_t>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

}  // namespace

void TopNRetriever::RetrieveBlockItemSharded(
    const int64_t* users, int64_t count, int64_t k,
    std::vector<RecEntry>* outs) const {
  const int64_t num_items = model_->num_items;
  // One Global() snapshot serves both sizing and dispatch, and pins the
  // pool against a concurrent SetShardWorkers swap.
  std::shared_ptr<tensor::ShardPool> pool = tensor::ShardPool::Global();
  tensor::ShardPlan plan = tensor::ShardPlan::Uniform(
      num_items, pool->workers(), tensor::kShardMinItemsPerShard);
  const int64_t num_shards = plan.num_shards();
  if (num_shards <= 1) {
    RetrieveBlock(users, count, k, 0, num_items, outs);
    return;
  }
  // Each worker scans its own catalogue range for the whole user block
  // with bounded heaps (candidates[s][u]), then the per-shard winners
  // merge per user.
  std::vector<std::vector<std::vector<RecEntry>>> candidates(
      static_cast<size_t>(num_shards),
      std::vector<std::vector<RecEntry>>(static_cast<size_t>(count)));
  pool->Run(num_shards, [&](int64_t s) {
    const tensor::ShardRange& r = plan.shard(s);
    RetrieveBlock(users, count, k, r.begin, r.end,
                  candidates[static_cast<size_t>(s)].data());
  });
  std::vector<std::vector<RecEntry>> parts(static_cast<size_t>(num_shards));
  for (int64_t u = 0; u < count; ++u) {
    for (int64_t s = 0; s < num_shards; ++s) {
      parts[static_cast<size_t>(s)] = std::move(
          candidates[static_cast<size_t>(s)][static_cast<size_t>(u)]);
    }
    outs[u] = MergeShardTopK(&parts, k);
  }
}

std::vector<RecEntry> TopNRetriever::RetrieveTopN(int64_t user,
                                                  int64_t k) const {
  GNMR_CHECK_GE(k, 1);
  const int64_t num_items = model_->num_items;
  k = std::min(k, num_items);
  std::vector<RecEntry> out;
  if (UseItemSharding()) {
    RetrieveBlockItemSharded(&user, 1, k, &out);
  } else {
    RetrieveBlock(&user, 1, k, 0, num_items, &out);
  }
  return out;
}

std::vector<std::vector<RecEntry>> TopNRetriever::RetrieveBatch(
    const std::vector<int64_t>& users, int64_t k) const {
  GNMR_CHECK_GE(k, 1);
  const int64_t num_items = model_->num_items;
  k = std::min(k, num_items);
  const int64_t n = static_cast<int64_t>(users.size());
  std::vector<std::vector<RecEntry>> outs(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kUserBlock - 1) / kUserBlock;
  // User blocks are independent (each writes its own output slots), so the
  // block loop parallelizes without changing any per-user result.
  if (UseItemSharding()) {
    if (num_blocks == 1) {
      // Too few users to fan blocks out (the common shape of a warm
      // RecService miss list): shard the ITEM range once for the whole
      // block instead, so each item tile is streamed a single time for
      // all n users and the pool is dispatched once — not a full
      // catalogue pass per user.
      RetrieveBlockItemSharded(users.data(), n, k, outs.data());
      return outs;
    }
    // Sharded execution: fan whole user blocks over the shard pool — with
    // many users in flight, outer parallelism keeps every worker on its
    // own block instead of splitting each block's item range. On a pool
    // worker (nested dispatch) this degrades to the inline loop.
    tensor::ShardPool::Global()->Run(num_blocks, [&](int64_t b) {
      const int64_t start = b * kUserBlock;
      const int64_t count = std::min(kUserBlock, n - start);
      RetrieveBlock(users.data() + start, count, k, 0, num_items,
                    outs.data() + start);
    });
    return outs;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_blocks > 1)
#endif
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t start = b * kUserBlock;
    const int64_t count = std::min(kUserBlock, n - start);
    RetrieveBlock(users.data() + start, count, k, 0, num_items,
                  outs.data() + start);
  }
  return outs;
}

std::unique_ptr<eval::Scorer> TopNRetriever::MakeScorer() const {
  return core::MakeSharedScorer(model_);
}

}  // namespace serve
}  // namespace gnmr
