#include "src/serve/topn_retriever.h"

#include <algorithm>

#include "src/util/check.h"

namespace gnmr {
namespace serve {

TopNRetriever::TopNRetriever(std::shared_ptr<const core::ServingModel> model,
                             std::shared_ptr<const SeenItems> seen)
    : model_(std::move(model)), seen_(std::move(seen)) {
  GNMR_CHECK(model_ != nullptr);
  GNMR_CHECK(model_->num_users > 0 && model_->num_items > 0);
  GNMR_CHECK(model_->embeddings.rows() ==
             model_->num_users + model_->num_items)
      << "inconsistent serving model";
  if (seen_ != nullptr && !seen_->empty()) {
    GNMR_CHECK_LE(seen_->num_users(), model_->num_users);
  }
}

void TopNRetriever::RetrieveBlock(const int64_t* users, int64_t count,
                                  int64_t k,
                                  std::vector<RecEntry>* outs) const {
  GNMR_CHECK(count >= 1 && count <= kUserBlock);
  const int64_t num_users = model_->num_users;
  const int64_t num_items = model_->num_items;
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + num_users * width;
  const SeenItems* seen = seen_.get();

  // Worst-on-top bounded heaps: with BetterThan as the "less" comparator
  // the std heap front is the entry no other beats, i.e. the current worst.
  std::vector<RecEntry> heaps[kUserBlock];
  for (int64_t u = 0; u < count; ++u) {
    GNMR_CHECK(users[u] >= 0 && users[u] < num_users);
    heaps[u].reserve(static_cast<size_t>(k) + 1);
  }

  float scores[kUserBlock * kItemBlock];
  for (int64_t i0 = 0; i0 < num_items; i0 += kItemBlock) {
    const int64_t tile = std::min(kItemBlock, num_items - i0);
    // Blocked matmul tile: `count` user rows x `tile` item rows. Scoring
    // every user in the block against the same item tile keeps the tile
    // resident in cache. Four items advance together so their accumulation
    // chains pipeline, but each item's sum still runs over c in ascending
    // order in double — exactly ServingModel::Score — so every score is
    // bit-identical to the per-item path.
    for (int64_t u = 0; u < count; ++u) {
      const float* urow = emb + users[u] * width;
      float* srow = scores + u * kItemBlock;
      int64_t j = 0;
      for (; j + 4 <= tile; j += 4) {
        const float* v0 = item_base + (i0 + j) * width;
        const float* v1 = v0 + width;
        const float* v2 = v1 + width;
        const float* v3 = v2 + width;
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (int64_t c = 0; c < width; ++c) {
          const double uc = static_cast<double>(urow[c]);
          a0 += uc * v0[c];
          a1 += uc * v1[c];
          a2 += uc * v2[c];
          a3 += uc * v3[c];
        }
        srow[j] = static_cast<float>(a0);
        srow[j + 1] = static_cast<float>(a1);
        srow[j + 2] = static_cast<float>(a2);
        srow[j + 3] = static_cast<float>(a3);
      }
      for (; j < tile; ++j) {
        const float* vrow = item_base + (i0 + j) * width;
        double acc = 0.0;
        for (int64_t c = 0; c < width; ++c) {
          acc += static_cast<double>(urow[c]) * vrow[c];
        }
        srow[j] = static_cast<float>(acc);
      }
    }
    for (int64_t u = 0; u < count; ++u) {
      std::vector<RecEntry>& heap = heaps[u];
      const float* srow = scores + u * kItemBlock;
      for (int64_t j = 0; j < tile; ++j) {
        RecEntry e{i0 + j, srow[j]};
        if (static_cast<int64_t>(heap.size()) == k &&
            !BetterThan(e, heap.front())) {
          continue;  // cannot enter the top-k; skip the seen lookup
        }
        if (seen != nullptr && seen->Contains(users[u], e.item)) continue;
        if (static_cast<int64_t>(heap.size()) < k) {
          heap.push_back(e);
          std::push_heap(heap.begin(), heap.end(), BetterThan);
        } else {
          std::pop_heap(heap.begin(), heap.end(), BetterThan);
          heap.back() = e;
          std::push_heap(heap.begin(), heap.end(), BetterThan);
        }
      }
    }
  }

  for (int64_t u = 0; u < count; ++u) {
    std::sort(heaps[u].begin(), heaps[u].end(), BetterThan);
    outs[u] = std::move(heaps[u]);
  }
}

std::vector<RecEntry> TopNRetriever::RetrieveTopN(int64_t user,
                                                  int64_t k) const {
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  std::vector<RecEntry> out;
  RetrieveBlock(&user, 1, k, &out);
  return out;
}

std::vector<std::vector<RecEntry>> TopNRetriever::RetrieveBatch(
    const std::vector<int64_t>& users, int64_t k) const {
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  const int64_t n = static_cast<int64_t>(users.size());
  std::vector<std::vector<RecEntry>> outs(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kUserBlock - 1) / kUserBlock;
  // User blocks are independent (each writes its own output slots), so the
  // block loop parallelizes without changing any per-user result.
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_blocks > 1)
#endif
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t start = b * kUserBlock;
    const int64_t count = std::min(kUserBlock, n - start);
    RetrieveBlock(users.data() + start, count, k, outs.data() + start);
  }
  return outs;
}

std::unique_ptr<eval::Scorer> TopNRetriever::MakeScorer() const {
  return core::MakeSharedScorer(model_);
}

}  // namespace serve
}  // namespace gnmr
