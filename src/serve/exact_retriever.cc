#include "src/serve/exact_retriever.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/shard_plan.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"

namespace gnmr {
namespace serve {

ExactRetriever::ExactRetriever(std::shared_ptr<const core::ServingModel> model,
                               std::shared_ptr<const SeenItems> seen,
                               ItemShardMode shard_mode)
    : model_(std::move(model)),
      seen_(std::move(seen)),
      shard_mode_(shard_mode) {
  GNMR_CHECK(model_ != nullptr);
  GNMR_CHECK(model_->num_users > 0 && model_->num_items > 0);
  GNMR_CHECK(model_->embeddings.rows() ==
             model_->num_users + model_->num_items)
      << "inconsistent serving model";
  if (seen_ != nullptr && !seen_->empty()) {
    GNMR_CHECK_LE(seen_->num_users(), model_->num_users);
  }
}

void ExactRetriever::RetrieveBlock(const int64_t* users, int64_t count,
                                   int64_t k, int64_t item_begin,
                                   int64_t item_end,
                                   std::vector<RecEntry>* outs) const {
  // The innermost scan unit — on a sharded retrieval each pool worker
  // opens its own exact.scan, so the trace shows the per-shard fan-out
  // nested under the retrieve span that dispatched it.
  GNMR_TRACE_SPAN("exact.scan");
  GNMR_CHECK(count >= 1 && count <= kUserBlock);
  GNMR_CHECK(item_begin >= 0 && item_begin <= item_end &&
             item_end <= model_->num_items);
  const int64_t num_users = model_->num_users;
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + num_users * width;
  const SeenItems* seen = seen_.get();
  const tensor::KernelBackend& backend = tensor::GetBackend();

  // Worst-on-top bounded heaps: with BetterThan as the "less" comparator
  // the std heap front is the entry no other beats, i.e. the current worst.
  std::vector<RecEntry> heaps[kUserBlock];
  for (int64_t u = 0; u < count; ++u) {
    GNMR_CHECK(users[u] >= 0 && users[u] < num_users);
    heaps[u].reserve(static_cast<size_t>(k) + 1);
  }

  float scores[kUserBlock * kItemBlock];
  for (int64_t i0 = item_begin; i0 < item_end; i0 += kItemBlock) {
    const int64_t tile = std::min(kItemBlock, item_end - i0);
    // Blocked matmul tile: `count` user rows x `tile` item rows, scored
    // through the active backend's QueryDot. Scoring every user in the
    // block against the same item tile keeps the tile resident in cache;
    // the backend contract (one lane-partial sum per output element) makes
    // every score bit-identical to DotScore and independent of where the
    // item range starts — which is what makes shard outputs mergeable.
    for (int64_t u = 0; u < count; ++u) {
      const float* urow = emb + users[u] * width;
      backend.QueryDot(urow, item_base + i0 * width, scores + u * kItemBlock,
                       tile, width);
    }
    for (int64_t u = 0; u < count; ++u) {
      std::vector<RecEntry>& heap = heaps[u];
      const float* srow = scores + u * kItemBlock;
      for (int64_t j = 0; j < tile; ++j) {
        OfferToBoundedHeap(&heap, k, RecEntry{i0 + j, srow[j]}, seen,
                           users[u]);
      }
    }
  }

  for (int64_t u = 0; u < count; ++u) {
    std::sort(heaps[u].begin(), heaps[u].end(), BetterThan);
    outs[u] = std::move(heaps[u]);
  }
}

void ExactRetriever::RetrieveBlockItemSharded(
    const int64_t* users, int64_t count, int64_t k,
    std::vector<RecEntry>* outs) const {
  const int64_t num_items = model_->num_items;
  // One Global() snapshot serves both sizing and dispatch, and pins the
  // pool against a concurrent SetShardWorkers swap.
  std::shared_ptr<tensor::ShardPool> pool = tensor::ShardPool::Global();
  tensor::ShardPlan plan = tensor::ShardPlan::Uniform(
      num_items, pool->workers(), tensor::kShardMinItemsPerShard);
  const int64_t num_shards = plan.num_shards();
  if (num_shards <= 1) {
    RetrieveBlock(users, count, k, 0, num_items, outs);
    return;
  }
  // Each worker scans its own catalogue range for the whole user block
  // with bounded heaps (candidates[s][u]), then the per-shard winners
  // merge per user.
  std::vector<std::vector<std::vector<RecEntry>>> candidates(
      static_cast<size_t>(num_shards),
      std::vector<std::vector<RecEntry>>(static_cast<size_t>(count)));
  pool->Run(num_shards, [&](int64_t s) {
    const tensor::ShardRange& r = plan.shard(s);
    RetrieveBlock(users, count, k, r.begin, r.end,
                  candidates[static_cast<size_t>(s)].data());
  });
  std::vector<std::vector<RecEntry>> parts(static_cast<size_t>(num_shards));
  for (int64_t u = 0; u < count; ++u) {
    for (int64_t s = 0; s < num_shards; ++s) {
      parts[static_cast<size_t>(s)] = std::move(
          candidates[static_cast<size_t>(s)][static_cast<size_t>(u)]);
    }
    outs[u] = MergeShardTopK(&parts, k);
  }
}

std::vector<RecEntry> ExactRetriever::RetrieveTopN(int64_t user,
                                                   int64_t k) const {
  GNMR_TRACE_SPAN("exact.retrieve");
  GNMR_CHECK_GE(k, 1);
  const int64_t num_items = model_->num_items;
  k = std::min(k, num_items);
  requests_.fetch_add(1, std::memory_order_relaxed);
  scanned_items_.fetch_add(static_cast<uint64_t>(num_items),
                           std::memory_order_relaxed);
  scanned_bytes_.fetch_add(
      static_cast<uint64_t>(num_items * model_->embeddings.cols()) *
          sizeof(float),
      std::memory_order_relaxed);
  std::vector<RecEntry> out;
  if (ItemShardingActive(shard_mode_)) {
    RetrieveBlockItemSharded(&user, 1, k, &out);
  } else {
    RetrieveBlock(&user, 1, k, 0, num_items, &out);
  }
  return out;
}

std::vector<std::vector<RecEntry>> ExactRetriever::RetrieveBatch(
    const std::vector<int64_t>& users, int64_t k) const {
  GNMR_TRACE_SPAN("exact.batch");
  GNMR_CHECK_GE(k, 1);
  const int64_t num_items = model_->num_items;
  k = std::min(k, num_items);
  const int64_t n = static_cast<int64_t>(users.size());
  requests_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  scanned_items_.fetch_add(static_cast<uint64_t>(n * num_items),
                           std::memory_order_relaxed);
  scanned_bytes_.fetch_add(
      static_cast<uint64_t>(n * num_items * model_->embeddings.cols()) *
          sizeof(float),
      std::memory_order_relaxed);
  std::vector<std::vector<RecEntry>> outs(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kUserBlock - 1) / kUserBlock;
  // User blocks are independent (each writes its own output slots), so the
  // block loop parallelizes without changing any per-user result.
  if (ItemShardingActive(shard_mode_)) {
    if (num_blocks == 1) {
      // Too few users to fan blocks out (the common shape of a warm
      // RecService miss list): shard the ITEM range once for the whole
      // block instead, so each item tile is streamed a single time for
      // all n users and the pool is dispatched once — not a full
      // catalogue pass per user.
      RetrieveBlockItemSharded(users.data(), n, k, outs.data());
      return outs;
    }
    // Sharded execution: fan whole user blocks over the shard pool — with
    // many users in flight, outer parallelism keeps every worker on its
    // own block instead of splitting each block's item range. On a pool
    // worker (nested dispatch) this degrades to the inline loop.
    tensor::ShardPool::Global()->Run(num_blocks, [&](int64_t b) {
      const int64_t start = b * kUserBlock;
      const int64_t count = std::min(kUserBlock, n - start);
      RetrieveBlock(users.data() + start, count, k, 0, num_items,
                    outs.data() + start);
    });
    return outs;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_blocks > 1)
#endif
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t start = b * kUserBlock;
    const int64_t count = std::min(kUserBlock, n - start);
    RetrieveBlock(users.data() + start, count, k, 0, num_items,
                  outs.data() + start);
  }
  return outs;
}

RetrieverStats ExactRetriever::Stats() const {
  RetrieverStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.scanned_items = scanned_items_.load(std::memory_order_relaxed);
  out.scanned_bytes = scanned_bytes_.load(std::memory_order_relaxed);
  return out;
}

std::unique_ptr<eval::Scorer> ExactRetriever::MakeScorer() const {
  return core::MakeSharedScorer(model_);
}

}  // namespace serve
}  // namespace gnmr
