// Sharded, versioned LRU cache of per-user top-N lists.
//
// Heavy read traffic is dominated by repeat requests for the same (user, k)
// pair, so the serving path memoizes retrieval results. The cache is
// striped into shards (each with its own mutex and LRU list) so concurrent
// readers rarely contend, and every entry is stamped with the model
// version it was computed under: hot-swapping a new model bumps the
// version in O(1), instantly invalidating every cached list without
// touching the shards (stale entries fall out lazily via LRU).
#ifndef GNMR_SERVE_REC_CACHE_H_
#define GNMR_SERVE_REC_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/serve/retriever.h"

namespace gnmr {
namespace serve {

/// Aggregate cache counters (summed over shards at read time).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe memoization of top-N lists keyed by (user, k). All methods
/// may be called concurrently from any thread.
class RecCache {
 public:
  /// `capacity_per_shard` bounds each shard's entry count; `num_shards`
  /// stripes the key space (user id modulo shard count).
  explicit RecCache(int64_t capacity_per_shard, int64_t num_shards = 8);

  RecCache(const RecCache&) = delete;
  RecCache& operator=(const RecCache&) = delete;

  /// Returns true and fills `out` if a list for (user, k) computed under
  /// the CURRENT version is cached; refreshes its LRU position. Entries
  /// from older versions are treated (and counted) as misses and erased.
  bool Get(int64_t user, int64_t k, std::vector<RecEntry>* out);

  /// Inserts a list stamped with `version`. Entries stamped with anything
  /// but the current version are dropped immediately — a Put racing a
  /// model swap must never surface pre-swap results (the caller reads the
  /// version BEFORE retrieving, see RecService).
  void Put(int64_t user, int64_t k, uint64_t version,
           std::vector<RecEntry> recs);

  /// Bumps the version, invalidating every cached entry in O(1). Returns
  /// the new version.
  uint64_t Invalidate();

  /// The version new entries must be stamped with to be servable.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  CacheStats stats() const;

  int64_t num_shards() const { return static_cast<int64_t>(shards_.size()); }
  int64_t capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    int64_t user = 0;
    int64_t k = 0;
    uint64_t version = 0;
    std::vector<RecEntry> recs;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    LruList lru;
    std::unordered_map<uint64_t, LruList::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static uint64_t KeyOf(int64_t user, int64_t k) {
    // Pack the pair into one map key; k is catalogue-bounded (< 2^32),
    // so placing user in the high bits is collision-free.
    return (static_cast<uint64_t>(user) << 32) ^ static_cast<uint64_t>(k);
  }

  Shard& ShardOf(int64_t user) {
    return *shards_[static_cast<size_t>(user) % shards_.size()];
  }

  int64_t capacity_per_shard_;
  std::atomic<uint64_t> version_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_REC_CACHE_H_
