// HNSW (hierarchical navigable small world) approximate top-N retrieval —
// the graph-based Retriever strategy (retriever.h), and the first whose
// per-query work is sub-linear in the catalogue.
//
// The ServingModel carries an offline-built layered proximity graph
// (core::BuildHnswIndex): every item is a level-0 node with up to 2*m
// neighbors, a geometrically-thinning subset of items also occupies the
// upper levels with up to m neighbors each, and levels are a pure
// fixed-seed function of the item id. A request starts at the persisted
// entry point, greedily descends the upper levels (one closest node per
// level — the zoom-in), then runs a best-first beam of width
// ef = max(ef_search, k) over level 0, offering every scored node to the
// same bounded heap the scan strategies use. Scores flow through
// KernelBackend::QueryDot/QueryDotIndexed and rank under the shared
// BetterThan total order, so an item the walk reaches gets the
// bit-identical score and tie order the exact scan would give it — the
// approximation is purely in coverage (whether the walk reaches the true
// top-k), measured by eval::RetrievalRecallAtK and bounded in-tree by the
// recall@10 gate in hnsw_retriever_test.
//
// Unlike the scan strategies a single query never shards: the walk is
// inherently sequential (each hop's frontier depends on the last), and at
// ef_search-scale candidate counts a fan-out would cost more than the
// scan it saves. Batches fan user blocks out over the shard pool /
// OpenMP exactly like IvfRetriever::RetrieveBatch.
//
// Stats: `hops` counts nodes whose neighbor lists were walked,
// `scanned_items` the distance evaluations those hops triggered — the
// eval count over the catalogue size is the sub-linearity ratio the
// bench (BENCH_retrieval_hnsw.json) and the in-tree gate report.
#ifndef GNMR_SERVE_HNSW_RETRIEVER_H_
#define GNMR_SERVE_HNSW_RETRIEVER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/serve/retriever.h"

namespace gnmr {
namespace serve {

/// Read-only approximate top-K retriever over a ServingModel snapshot
/// carrying an HNSW graph. Shares ownership of model and seen sets like
/// the scan retrievers; all methods are const and thread-safe.
class HnswRetriever : public Retriever {
 public:
  /// `model` must be non-null, consistent, and carry an HNSW graph
  /// (model->has_hnsw()). `ef_search` is the level-0 beam width;
  /// <= 0 picks tensor::kHnswDefaultEfSearch, and the effective beam
  /// never drops below the request's k.
  explicit HnswRetriever(std::shared_ptr<const core::ServingModel> model,
                         std::shared_ptr<const SeenItems> seen = nullptr,
                         int64_t ef_search = 0);

  const char* name() const override { return "hnsw"; }

  /// Approximate top-k for `user`: the exact ranking restricted to the
  /// nodes the graph walk evaluates. Best first, ties by ascending item
  /// id, seen items excluded; k is clamped to the catalogue size. Fewer
  /// than k entries come back only when seen-filtering eats into the
  /// beam's survivors.
  std::vector<RecEntry> RetrieveTopN(int64_t user, int64_t k) const override;

  /// RetrieveTopN per user; user blocks fan out over the shard pool when
  /// sharding is active, OpenMP otherwise. Output order matches input;
  /// per-user results are identical to RetrieveTopN at any thread/worker
  /// count (each user's walk is sequential and deterministic).
  std::vector<std::vector<RecEntry>> RetrieveBatch(
      const std::vector<int64_t>& users, int64_t k) const override;

  RetrieverStats Stats() const override;

  std::unique_ptr<eval::Scorer> MakeScorer() const override;

  const core::ServingModel& model() const override { return *model_; }
  std::shared_ptr<const core::ServingModel> model_ptr() const override {
    return model_;
  }
  const SeenItems* seen() const override { return seen_.get(); }
  std::shared_ptr<const SeenItems> seen_ptr() const override { return seen_; }

  /// Effective beam width (post defaulting; a request's k can still raise
  /// it per call).
  int64_t ef_search() const { return ef_search_; }

  /// Users per parallel work unit in RetrieveBatch (same tile as
  /// IvfRetriever).
  static constexpr int64_t kUserBlock = 8;

 private:
  /// Full single-user retrieval (sequential walk; batch blocks call it
  /// directly).
  std::vector<RecEntry> RetrieveOne(int64_t user, int64_t k) const;

  std::shared_ptr<const core::ServingModel> model_;
  std::shared_ptr<const SeenItems> seen_;
  std::shared_ptr<const core::HnswIndex> hnsw_;
  int64_t ef_search_ = 0;
  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> scanned_items_{0};
  mutable std::atomic<uint64_t> scanned_bytes_{0};
  mutable std::atomic<uint64_t> hops_{0};
};

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_HNSW_RETRIEVER_H_
