#include "src/serve/retriever.h"

#include <cstring>

#include "src/tensor/backend.h"

namespace gnmr {
namespace serve {

bool ItemShardingActive(ItemShardMode mode) {
  switch (mode) {
    case ItemShardMode::kOn:
      return true;
    case ItemShardMode::kOff:
      return false;
    case ItemShardMode::kAuto:
      // Follow the kernel-backend selection: if compute runs sharded, so
      // does retrieval. strcmp against the registry name, not a string
      // compare per entry — this is on the per-request path.
      return std::strcmp(tensor::GetBackend().name(), "sharded") == 0;
  }
  return false;
}

}  // namespace serve
}  // namespace gnmr
