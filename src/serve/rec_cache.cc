#include "src/serve/rec_cache.h"

#include "src/util/check.h"

namespace gnmr {
namespace serve {

RecCache::RecCache(int64_t capacity_per_shard, int64_t num_shards)
    : capacity_per_shard_(capacity_per_shard) {
  GNMR_CHECK_GE(capacity_per_shard, 1);
  GNMR_CHECK_GE(num_shards, 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool RecCache::Get(int64_t user, int64_t k, std::vector<RecEntry>* out) {
  GNMR_CHECK(out != nullptr);
  GNMR_CHECK_GE(user, 0);
  const uint64_t key = KeyOf(user, k);
  Shard& shard = ShardOf(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  if (it->second->version != version()) {
    // Stale snapshot: erase eagerly so the slot frees up.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  *out = shard.lru.front().recs;
  return true;
}

void RecCache::Put(int64_t user, int64_t k, uint64_t version,
                   std::vector<RecEntry> recs) {
  GNMR_CHECK_GE(user, 0);
  if (version != this->version()) return;  // lost a race with a swap
  Shard& shard = ShardOf(user);
  const uint64_t key = KeyOf(user, k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->version = version;
    it->second->recs = std::move(recs);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{user, k, version, std::move(recs)});
  shard.index[key] = shard.lru.begin();
  if (static_cast<int64_t>(shard.lru.size()) > capacity_per_shard_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(KeyOf(victim.user, victim.k));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

uint64_t RecCache::Invalidate() {
  return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

CacheStats RecCache::stats() const {
  CacheStats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace serve
}  // namespace gnmr
