#include "src/serve/rec_service.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace gnmr {
namespace serve {

RecService::RecService(std::shared_ptr<const core::ServingModel> model,
                       std::shared_ptr<const SeenItems> seen,
                       Options options)
    : options_(options),
      retriever_(std::make_shared<const TopNRetriever>(std::move(model),
                                                       std::move(seen))),
      cache_(options.cache_capacity_per_shard, options.cache_shards) {
  num_items_.store(retriever_->model().num_items, std::memory_order_relaxed);
}

RecService::RecService(std::shared_ptr<const core::ServingModel> model,
                       std::shared_ptr<const SeenItems> seen)
    : RecService(std::move(model), std::move(seen), Options()) {}

std::pair<std::shared_ptr<const TopNRetriever>, uint64_t>
RecService::Snapshot() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return {retriever_, cache_.version()};
}

std::vector<RecEntry> RecService::Recommend(int64_t user, int64_t k) {
  util::Stopwatch timer;
  // Clamp before the cache lookup: the cache packs k into the low 32 key
  // bits, and unclamped k would also cache the same full-catalogue list
  // under many keys.
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, num_items_.load(std::memory_order_relaxed));
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::vector<RecEntry> out;
  if (cache_.Get(user, k, &out)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Snapshot pins the model: a concurrent swap cannot free it from under
    // this retrieval, and the version captured here matches the snapshot,
    // so the Put below can never surface a pre-swap list post-swap.
    auto [retriever, version] = Snapshot();
    out = retriever->RetrieveTopN(user, k);
    cache_.Put(user, k, version, out);
  }
  latency_us_.fetch_add(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3),
                        std::memory_order_relaxed);
  return out;
}

std::vector<std::vector<RecEntry>> RecService::RecommendBatch(
    const std::vector<int64_t>& users, int64_t k) {
  util::Stopwatch timer;
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, num_items_.load(std::memory_order_relaxed));
  const int64_t n = static_cast<int64_t>(users.size());
  requests_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  std::vector<std::vector<RecEntry>> out(static_cast<size_t>(n));
  std::vector<int64_t> miss_users;
  std::vector<int64_t> miss_slots;
  for (int64_t i = 0; i < n; ++i) {
    if (cache_.Get(users[static_cast<size_t>(i)], k,
                   &out[static_cast<size_t>(i)])) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      miss_users.push_back(users[static_cast<size_t>(i)]);
      miss_slots.push_back(i);
    }
  }
  if (!miss_users.empty()) {
    auto [retriever, version] = Snapshot();
    std::vector<std::vector<RecEntry>> fetched =
        retriever->RetrieveBatch(miss_users, k);
    for (size_t m = 0; m < miss_users.size(); ++m) {
      cache_.Put(miss_users[m], k, version, fetched[m]);
      out[static_cast<size_t>(miss_slots[m])] = std::move(fetched[m]);
    }
  }
  latency_us_.fetch_add(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3),
                        std::memory_order_relaxed);
  return out;
}

void RecService::InstallLocked(
    std::shared_ptr<const core::ServingModel> next,
    std::shared_ptr<const SeenItems> seen) {
  // Caller holds swap_mu_. The TopNRetriever constructor is O(1) (shared
  // handles + invariant checks), so holding the lock across it is cheap;
  // readers copying the shared_ptr keep serving the old snapshot until
  // the assignment below.
  num_items_.store(next->num_items, std::memory_order_relaxed);
  retriever_ = std::make_shared<const TopNRetriever>(std::move(next),
                                                     std::move(seen));
  cache_.Invalidate();
  version_.fetch_add(1, std::memory_order_acq_rel);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

void RecService::SwapModel(std::shared_ptr<const core::ServingModel> next,
                           std::shared_ptr<const SeenItems> seen) {
  GNMR_CHECK(next != nullptr);
  std::lock_guard<std::mutex> lock(swap_mu_);
  if (seen == nullptr) seen = retriever_->seen_ptr();
  InstallLocked(std::move(next), std::move(seen));
}

util::Status RecService::LoadAndSwap(const std::string& path) {
  // Load v+1 while v keeps serving; nothing above the lock blocks readers,
  // and validation + install happen in one critical section so no
  // concurrent swap can slip a shape change between them.
  util::Result<core::ServingModel> loaded = core::LoadServingModel(path);
  if (!loaded.ok()) return loaded.status();
  auto model = std::make_shared<const core::ServingModel>(
      std::move(loaded).value());
  std::lock_guard<std::mutex> lock(swap_mu_);
  const core::ServingModel& current = retriever_->model();
  if (model->num_users != current.num_users ||
      model->num_items != current.num_items) {
    return util::Status::FailedPrecondition(
        "snapshot shape mismatch: serving " +
        std::to_string(current.num_users) + "x" +
        std::to_string(current.num_items) + " users x items, loaded " +
        std::to_string(model->num_users) + "x" +
        std::to_string(model->num_items));
  }
  InstallLocked(std::move(model), retriever_->seen_ptr());
  return util::Status::OK();
}

std::shared_ptr<const TopNRetriever> RecService::retriever() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return retriever_;
}

ServiceStats RecService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.swaps = swaps_.load(std::memory_order_relaxed);
  out.latency_us_total = latency_us_.load(std::memory_order_relaxed);
  out.model_version = model_version();
  out.cache = cache_.stats();
  return out;
}

}  // namespace serve
}  // namespace gnmr
