#include "src/serve/rec_service.h"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "src/obs/trace.h"
#include "src/serve/hnsw_retriever.h"
#include "src/serve/ivf_retriever.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace gnmr {
namespace serve {

// Single-flight state for one (user, k) retrieval. Waiters copy `result`
// under `mu` once `done` flips; the leader is the thread that created the
// entry in flights_. A waiter may receive a result computed on the
// snapshot that was current when the LEADER started — the same staleness
// window any request that began before a hot swap already has.
struct RecService::Flight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  /// Set when the leader unwound before publishing: `result` is a
  /// meaningless placeholder and waiters must retrieve for themselves.
  bool abandoned = false;
  std::vector<RecEntry> result;
};

namespace {

// RecCache and the flight registry pack (user, k) into one 64-bit key
// with user in the high 32 bits; ids outside that range would silently
// collide and coalesce DIFFERENT users onto one flight (serving one
// user's list to another), so reject them loudly at the entry points.
void CheckKeyRanges(int64_t user, int64_t k) {
  GNMR_CHECK_GE(user, 0);
  GNMR_CHECK_LT(user, int64_t{1} << 32)
      << "user id does not fit the 32-bit (user, k) key packing";
  GNMR_CHECK_LT(k, int64_t{1} << 32)
      << "k does not fit the 32-bit (user, k) key packing";
}

void AddInto(RetrieverStats* into, const RetrieverStats& s) {
  into->requests += s.requests;
  into->scanned_items += s.scanned_items;
  into->scanned_bytes += s.scanned_bytes;
  into->probed_clusters += s.probed_clusters;
  into->scanned_code_bytes += s.scanned_code_bytes;
  into->reranked_items += s.reranked_items;
  into->hops += s.hops;
}

}  // namespace

RecService::RecService(std::shared_ptr<const core::ServingModel> model,
                       std::shared_ptr<const SeenItems> seen,
                       Options options)
    : options_(options),
      cache_(std::make_shared<RecCache>(options.cache_capacity_per_shard,
                                        options.cache_shards)) {
  if (options_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  obs::MetricsRegistry& reg = metrics();
  lat_hit_ = &reg.HistogramOf("serve.latency.hit");
  lat_coalesced_ = &reg.HistogramOf("serve.latency.coalesced");
  lat_miss_ = &reg.HistogramOf("serve.latency.miss");
  lat_exact_ = &reg.HistogramOf("serve.latency.exact");
  lat_batch_ = &reg.HistogramOf("serve.latency.batch");
  // Same construction path a hot swap takes, minus the version bump: the
  // service has never served anything yet, so this is version 0.
  exact_ = std::make_shared<const ExactRetriever>(model, seen);
  if (options_.retriever == RetrieverKind::kIvf) {
    GNMR_CHECK(model->has_ivf())
        << "RetrieverKind::kIvf needs a model with an IVF index "
           "(core::BuildIvfIndex)";
    retriever_ = std::make_shared<const IvfRetriever>(
        std::move(model), std::move(seen), options_.nprobe,
        ItemShardMode::kAuto, options_.quantized, options_.rerank_k);
  } else if (options_.retriever == RetrieverKind::kHnsw) {
    GNMR_CHECK(model->has_hnsw())
        << "RetrieverKind::kHnsw needs a model with an HNSW graph "
           "(core::BuildHnswIndex)";
    retriever_ = std::make_shared<const HnswRetriever>(
        std::move(model), std::move(seen), options_.ef_search);
  } else {
    retriever_ = exact_;
  }
  num_items_.store(retriever_->model().num_items, std::memory_order_relaxed);
}

RecService::RecService(std::shared_ptr<const core::ServingModel> model,
                       std::shared_ptr<const SeenItems> seen)
    : RecService(std::move(model), std::move(seen), Options()) {}

RecService::ServingSnapshot RecService::Snapshot() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  // swap_mu_ orders this against InstallLocked, so the retriever and the
  // cache generation are the same swap's pair; the version is read from
  // that generation so the triple is self-consistent.
  std::shared_ptr<RecCache> cache = std::atomic_load(&cache_);
  const uint64_t version = cache->version();
  return {retriever_, std::move(cache), version};
}

bool RecService::SampleTrace() const {
  if (!obs::TraceEnabled()) return false;
  if (options_.trace_sample_period <= 1) return true;
  thread_local uint64_t counter = 0;
  return (counter++ % static_cast<uint64_t>(options_.trace_sample_period)) ==
         0;
}

void RecService::InvalidateCache() { CurrentCache()->Invalidate(); }

std::shared_ptr<const ExactRetriever> RecService::ExactFallbackIfRequested(
    bool exact) {
  if (!exact) return nullptr;
  std::lock_guard<std::mutex> lock(swap_mu_);
  // Identity compare: on an exact-backed service the knob changes nothing
  // and the normal (cached, coalesced) path serves the request.
  return exact_.get() != retriever_.get() ? exact_ : nullptr;
}

RecService::FlightSlot RecService::JoinOrLead(uint64_t key) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  std::shared_ptr<Flight>& slot = flights_[key];
  if (slot != nullptr) return {slot, /*leader=*/false};  // join: wait
  slot = std::make_shared<Flight>();
  return {slot, /*leader=*/true};  // lead: compute and publish
}

void RecService::PublishFlight(uint64_t key,
                               const std::shared_ptr<Flight>& flight,
                               const std::vector<RecEntry>& result) {
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    GNMR_CHECK(it != flights_.end() && it->second == flight)
        << "publishing a flight this thread does not lead";
    // Unregister before waking waiters: a request arriving after this
    // point starts fresh (and will usually hit the cache anyway).
    flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
}

void RecService::AbandonFlight(uint64_t key,
                               const std::shared_ptr<Flight>& flight) {
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    // Identity compare, not just key: once this flight was published and
    // erased, `key` may map to a NEW live flight led by another thread —
    // tearing that one down would feed its waiters a bogus empty result
    // and make its leader's PublishFlight abort. Only the erase is gated,
    // though: the wake-up below must still run for a flight PublishFlight
    // erased but failed to mark done (e.g. the result copy threw).
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    if (flight->done) return;  // published: stale lease, nothing to wake
    flight->abandoned = true;
    flight->done = true;  // result stays the empty placeholder
  }
  flight->cv.notify_all();
}

std::vector<RecEntry> RecService::RetrieveCoalesced(int64_t user, int64_t k,
                                                    bool sampled,
                                                    Outcome* outcome) {
  const uint64_t key = FlightKey(user, k);
  std::vector<RecEntry> out;
  for (;;) {
    // Re-checked every round: a racing leader (including another waiter
    // promoted after an abandon) publishes to the cache before waking
    // anyone, so a hit here is always fresher than re-scanning.
    {
      obs::TraceSpan probe("serve.cache_probe", sampled);
      if (CurrentCache()->Get(user, k, &out)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (outcome != nullptr) *outcome = Outcome::kHit;
        return out;
      }
    }
    // Leader unwind protection (e.g. allocation failure mid-retrieval):
    // the lease abandons the flight so waiters don't hang on a dead key.
    // Constructed + reserved before JoinOrLead so the flight is under
    // lease cover from the instant it becomes visible in the registry.
    FlightLease lease(this);
    lease.Reserve(1);
    FlightSlot slot = JoinOrLead(key);
    if (slot.leader) {
      obs::TraceSpan lead("serve.flight_lead", sampled);
      lease.Add(key, slot.flight);
      // Snapshot pins the model AND the cache generation: a concurrent
      // swap cannot free the model from under this retrieval, and the Put
      // goes into the generation whose version was captured — if a swap
      // lands mid-retrieval, the list is parked in the retired (now
      // unreachable) generation instead of surfacing post-swap.
      ServingSnapshot snap = Snapshot();
      {
        obs::TraceSpan retrieve("serve.retrieve", sampled);
        out = snap.retriever->RetrieveTopN(user, k);
      }
      obs::TraceSpan publish("serve.publish", sampled);
      snap.cache->Put(user, k, snap.cache_version, out);
      PublishFlight(key, slot.flight, out);
      if (outcome != nullptr) *outcome = Outcome::kLead;
      return out;
    }
    // Another thread is already retrieving this exact list; wait for its
    // result instead of burning a full catalogue scan on the same key.
    obs::TraceSpan join("serve.flight_join", sampled);
    std::unique_lock<std::mutex> lock(slot.flight->mu);
    slot.flight->cv.wait(lock, [&slot] { return slot.flight->done; });
    if (!slot.flight->abandoned) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) *outcome = Outcome::kCoalesced;
      return slot.flight->result;
    }
    // The leader unwound before publishing; its empty placeholder is not
    // a real recommendation list — go around again (cache, join, or lead).
  }
}

std::vector<RecEntry> RecService::Recommend(int64_t user, int64_t k,
                                            bool exact) {
  const bool sampled = SampleTrace();
  obs::TraceSpan span("serve.recommend", sampled);
  util::Stopwatch timer;
  // Clamp before the cache lookup: the cache packs k into the low 32 key
  // bits, and unclamped k would also cache the same full-catalogue list
  // under many keys.
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, num_items_.load(std::memory_order_relaxed));
  CheckKeyRanges(user, k);
  requests_.fetch_add(1, std::memory_order_relaxed);
  // The exact knob bypasses cache AND flights: cached lists are shaped by
  // the primary strategy, and mixing exact results into them would make a
  // (user, k) entry depend on which caller populated it.
  std::shared_ptr<const ExactRetriever> fallback =
      ExactFallbackIfRequested(exact);
  std::vector<RecEntry> out;
  Outcome outcome = Outcome::kLead;
  obs::Histogram* histogram = nullptr;
  if (fallback != nullptr) {
    exact_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    out = fallback->RetrieveTopN(user, k);
    histogram = lat_exact_;
  } else {
    out = RetrieveCoalesced(user, k, sampled, &outcome);
    histogram = outcome == Outcome::kHit         ? lat_hit_
                : outcome == Outcome::kCoalesced ? lat_coalesced_
                                                 : lat_miss_;
  }
  // One clock reading feeds both the cumulative total and the per-phase
  // histogram, so the reported mean and quantiles agree exactly.
  const uint64_t elapsed_ns = timer.ElapsedNanos();
  latency_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  histogram->Record(elapsed_ns);
  return out;
}

std::vector<std::vector<RecEntry>> RecService::RecommendBatch(
    const std::vector<int64_t>& users, int64_t k, bool exact) {
  const bool sampled = SampleTrace();
  obs::TraceSpan span("serve.recommend_batch", sampled);
  util::Stopwatch timer;
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, num_items_.load(std::memory_order_relaxed));
  for (int64_t user : users) CheckKeyRanges(user, k);
  const int64_t n = static_cast<int64_t>(users.size());
  requests_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  std::shared_ptr<const ExactRetriever> fallback =
      ExactFallbackIfRequested(exact);
  if (fallback != nullptr) {
    // Forced-exact batch: straight through the fallback scan, no cache
    // interaction (see Recommend).
    exact_fallbacks_.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
    std::vector<std::vector<RecEntry>> out = fallback->RetrieveBatch(users, k);
    const uint64_t elapsed_ns = timer.ElapsedNanos();
    latency_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
    lat_exact_->Record(elapsed_ns);
    return out;
  }
  std::vector<std::vector<RecEntry>> out(static_cast<size_t>(n));
  std::vector<int64_t> miss_users;
  std::vector<int64_t> miss_slots;
  {
    obs::TraceSpan probe("serve.cache_probe", sampled);
    std::shared_ptr<RecCache> cache = CurrentCache();
    for (int64_t i = 0; i < n; ++i) {
      if (cache->Get(users[static_cast<size_t>(i)], k,
                     &out[static_cast<size_t>(i)])) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        miss_users.push_back(users[static_cast<size_t>(i)]);
        miss_slots.push_back(i);
      }
    }
  }
  if (!miss_users.empty()) {
    // Split the misses into leads (this batch computes them) and joins
    // (another thread is already computing them). A duplicated user within
    // this batch leads once and joins its own flight — safe, because every
    // lead publishes before any join waits.
    std::vector<int64_t> lead_users;
    std::vector<int64_t> lead_slots;
    std::vector<std::shared_ptr<Flight>> lead_flights;
    struct Join {
      int64_t slot;
      int64_t user;
      std::shared_ptr<Flight> flight;
    };
    std::vector<Join> joins;
    FlightLease lease(this);
    // Reserved for every miss up front so Add below cannot throw between
    // JoinOrLead registering a flight and the lease covering it.
    lease.Reserve(miss_users.size());
    for (size_t m = 0; m < miss_users.size(); ++m) {
      uint64_t key = FlightKey(miss_users[m], k);
      FlightSlot fs = JoinOrLead(key);
      if (!fs.leader) {
        joins.push_back({miss_slots[m], miss_users[m], std::move(fs.flight)});
      } else {
        lease.Add(key, fs.flight);
        lead_users.push_back(miss_users[m]);
        lead_slots.push_back(miss_slots[m]);
        lead_flights.push_back(std::move(fs.flight));
      }
    }
    if (!lead_users.empty()) {
      ServingSnapshot snap = Snapshot();
      std::vector<std::vector<RecEntry>> fetched;
      {
        obs::TraceSpan retrieve("serve.retrieve", sampled);
        fetched = snap.retriever->RetrieveBatch(lead_users, k);
      }
      obs::TraceSpan publish("serve.publish", sampled);
      for (size_t m = 0; m < lead_users.size(); ++m) {
        snap.cache->Put(lead_users[m], k, snap.cache_version, fetched[m]);
        PublishFlight(FlightKey(lead_users[m], k), lead_flights[m],
                      fetched[m]);
        out[static_cast<size_t>(lead_slots[m])] = std::move(fetched[m]);
      }
    }
    for (Join& join : joins) {
      obs::TraceSpan wait_span("serve.flight_join", sampled);
      std::unique_lock<std::mutex> lock(join.flight->mu);
      join.flight->cv.wait(lock,
                           [&join] { return join.flight->done; });
      if (join.flight->abandoned) {
        // Leader unwound before publishing: run this user back through
        // the coalescing miss path rather than returning its empty
        // placeholder as a real list.
        lock.unlock();
        out[static_cast<size_t>(join.slot)] =
            RetrieveCoalesced(join.user, k, sampled);
      } else {
        out[static_cast<size_t>(join.slot)] = join.flight->result;
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // The batch is one timed unit (matching the single requests_ += n /
  // latency += elapsed accounting): the histogram sees one end-to-end
  // batch latency, not n synthetic per-user shares.
  const uint64_t elapsed_ns = timer.ElapsedNanos();
  latency_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  lat_batch_->Record(elapsed_ns);
  return out;
}

void RecService::InstallLocked(
    std::shared_ptr<const core::ServingModel> next,
    std::shared_ptr<const SeenItems> seen) {
  GNMR_TRACE_SPAN("serve.install");
  // Caller holds swap_mu_. Retriever construction is O(1) for exact and
  // O(1) shape checks for IVF (the O(num_items) index validation runs
  // where the index is produced — BuildIvfIndex / LoadServingModel — not
  // here), so holding the lock across it is cheap; readers copying the
  // shared_ptr keep serving the old snapshot until the assignments below.
  AddInto(&retired_retrieval_, retriever_->Stats());
  if (exact_.get() != retriever_.get()) {
    AddInto(&retired_retrieval_, exact_->Stats());
  }
  num_items_.store(next->num_items, std::memory_order_relaxed);
  exact_ = std::make_shared<const ExactRetriever>(next, seen);
  if (options_.retriever == RetrieverKind::kIvf) {
    GNMR_CHECK(next->has_ivf())
        << "swapping a model without an IVF index into a kIvf service";
    retriever_ = std::make_shared<const IvfRetriever>(
        std::move(next), std::move(seen), options_.nprobe,
        ItemShardMode::kAuto, options_.quantized, options_.rerank_k);
  } else if (options_.retriever == RetrieverKind::kHnsw) {
    GNMR_CHECK(next->has_hnsw())
        << "swapping a model without an HNSW graph into a kHnsw service";
    retriever_ = std::make_shared<const HnswRetriever>(
        std::move(next), std::move(seen), options_.ef_search);
  } else {
    retriever_ = exact_;
  }
  // Replace the cache generation instead of version-bumping it: the
  // outgoing generation's counters are retired (mirroring
  // retired_retrieval_) and its stale lists are freed as soon as the last
  // in-flight leader drops its pin, rather than lingering until LRU churn
  // pushes them out. `entries` is deliberately not carried over — a
  // retired generation holds no servable entries.
  std::shared_ptr<RecCache> outgoing = std::atomic_load(&cache_);
  const CacheStats retired = outgoing->stats();
  retired_cache_.hits += retired.hits;
  retired_cache_.misses += retired.misses;
  retired_cache_.evictions += retired.evictions;
  std::atomic_store(&cache_,
                    std::make_shared<RecCache>(
                        options_.cache_capacity_per_shard,
                        options_.cache_shards));
  version_.fetch_add(1, std::memory_order_acq_rel);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

void RecService::SwapModel(std::shared_ptr<const core::ServingModel> next,
                           std::shared_ptr<const SeenItems> seen) {
  GNMR_CHECK(next != nullptr);
  std::lock_guard<std::mutex> lock(swap_mu_);
  if (seen == nullptr) seen = retriever_->seen_ptr();
  InstallLocked(std::move(next), std::move(seen));
}

util::Status RecService::LoadAndSwap(const std::string& path) {
  GNMR_TRACE_SPAN("serve.load_and_swap");
  // Load v+1 while v keeps serving; nothing above the lock blocks readers,
  // and validation + install happen in one critical section so no
  // concurrent swap can slip a shape change between them.
  util::Result<core::ServingModel> loaded =
      options_.mmap_artifacts ? core::LoadServingModelMapped(path)
                              : core::LoadServingModel(path);
  if (!loaded.ok()) return loaded.status();
  core::ServingModel next = std::move(loaded).value();
  if (options_.retriever == RetrieverKind::kIvf && !next.has_ivf()) {
    // v1 artifact on an IVF service: build the index here (offline work,
    // off the swap lock) so the swap below installs a complete snapshot.
    GNMR_TRACE_SPAN("serve.build_ivf");
    // Quantization policy: only catalogues past the deployment threshold
    // pay for the code tier (the mechanism itself has no minimum).
    const bool quantize =
        options_.quantized &&
        next.num_items >= tensor::kIvfQuantizeMinItems;
    util::Status built = core::BuildIvfIndex(&next, options_.nlist, quantize);
    if (!built.ok()) return built;
  }
  if (options_.retriever == RetrieverKind::kHnsw && !next.has_hnsw()) {
    // Graph-less artifact on an HNSW service: same policy as the IVF
    // branch — build offline here, install a complete snapshot below.
    GNMR_TRACE_SPAN("serve.build_hnsw");
    util::Status built = core::BuildHnswIndex(
        &next, options_.hnsw_m, /*ef_construction=*/0);
    if (!built.ok()) return built;
  }
  auto model = std::make_shared<const core::ServingModel>(std::move(next));
  std::lock_guard<std::mutex> lock(swap_mu_);
  const core::ServingModel& current = retriever_->model();
  if (model->num_users != current.num_users ||
      model->num_items != current.num_items) {
    return util::Status::FailedPrecondition(
        "snapshot shape mismatch: serving " +
        std::to_string(current.num_users) + "x" +
        std::to_string(current.num_items) + " users x items, loaded " +
        std::to_string(model->num_users) + "x" +
        std::to_string(model->num_items));
  }
  InstallLocked(std::move(model), retriever_->seen_ptr());
  return util::Status::OK();
}

std::shared_ptr<const Retriever> RecService::retriever() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return retriever_;
}

std::shared_ptr<const ExactRetriever> RecService::exact_retriever() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return exact_;
}

ServiceStats RecService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.exact_fallbacks =
      exact_fallbacks_.load(std::memory_order_relaxed);
  out.swaps = swaps_.load(std::memory_order_relaxed);
  out.latency_ns_total = latency_ns_.load(std::memory_order_relaxed);
  out.model_version = model_version();
  std::lock_guard<std::mutex> lock(swap_mu_);
  // Retired generations first (their entries are 0 by construction), then
  // the live generation on top — same shape as the retrieval aggregation.
  out.cache = retired_cache_;
  const CacheStats live = std::atomic_load(&cache_)->stats();
  out.cache.hits += live.hits;
  out.cache.misses += live.misses;
  out.cache.evictions += live.evictions;
  out.cache.entries = live.entries;
  out.retrieval = retired_retrieval_;
  AddInto(&out.retrieval, retriever_->Stats());
  if (exact_.get() != retriever_.get()) {
    AddInto(&out.retrieval, exact_->Stats());
  }
  return out;
}

}  // namespace serve
}  // namespace gnmr
