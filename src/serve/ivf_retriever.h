// IVF (inverted-file) approximate top-N retrieval — the first index-based
// Retriever strategy (retriever.h).
//
// The ServingModel carries an offline-built IVF index (core::BuildIvfIndex):
// item embeddings clustered by deterministic k-means, one posting list of
// item ids per cluster. A request scores the user row against the nlist
// centroids, keeps the top `nprobe` clusters by (dot score desc, centroid
// id asc), and runs the exact bounded-heap scan over only those clusters'
// posting lists — the same double-accumulation score and (score desc, item
// asc) tie order as ExactRetriever, so every scanned item ranks exactly as
// the full scan would rank it. The approximation is purely in coverage:
// with nprobe == nlist every posting list is scanned and the output is
// bit-identical to ExactRetriever; smaller nprobe trades recall
// (eval::RetrievalRecallAtK measures it) for scanning ~nprobe/nlist of the
// catalogue.
//
// Sharding: when item sharding is active (same ItemShardMode/backend rule
// as the exact scan), the probed posting lists fan out over the global
// ShardPool in contiguous candidate ranges, each with its own bounded
// heap, merged by the shared (score, item) total order — output unchanged
// at any worker count.
//
// Quantized tier: when the index carries int8 codes (BuildIvfIndex with
// quantize = true) and the retriever is constructed with quantized = true,
// retrieval runs two phases. Phase 1 scans the probed lists' int8 codes
// (KernelBackend::I8QueryDot — exact integer dots, dequantized by one
// fixed float expression) into a bounded pool of the rerank_k best
// approximate candidates, streaming ~width bytes per item instead of
// 4*width. Phase 2 re-scores only the pool with the exact float path and
// ranks under the same BetterThan order, so the final ordering semantics
// are unchanged — the quantization can only affect WHICH items reach the
// rerank pool, a recall effect measured by eval::RetrievalRecallAtK, not
// an ordering effect. With rerank_k covering every scanned candidate the
// output is bit-identical to the float IVF scan at the same nprobe. The
// code scan always runs inline (unsharded): it streams ~4x fewer bytes,
// so the shard fan-out's merge overhead outweighs its win here.
#ifndef GNMR_SERVE_IVF_RETRIEVER_H_
#define GNMR_SERVE_IVF_RETRIEVER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/serve/retriever.h"

namespace gnmr {
namespace serve {

/// Read-only approximate top-K retriever over a ServingModel snapshot
/// carrying an IVF index. Shares ownership of model and seen sets like
/// ExactRetriever; all methods are const and thread-safe.
class IvfRetriever : public Retriever {
 public:
  /// `model` must be non-null, consistent, and carry an IVF index
  /// (model->has_ivf()). `nprobe` is clamped to [1, nlist]; nprobe <= 0
  /// picks tensor::kIvfDefaultNprobe. `quantized` requests the two-phase
  /// code scan — honoured only when the index actually carries codes
  /// (check quantized() for the effective state). `rerank_k` bounds the
  /// exact-rerank candidate pool; <= 0 picks tensor::kIvfDefaultRerankK,
  /// and the pool never drops below the request's k.
  explicit IvfRetriever(std::shared_ptr<const core::ServingModel> model,
                        std::shared_ptr<const SeenItems> seen = nullptr,
                        int64_t nprobe = 0,
                        ItemShardMode shard_mode = ItemShardMode::kAuto,
                        bool quantized = false, int64_t rerank_k = 0);

  const char* name() const override { return "ivf"; }

  /// Approximate top-k for `user`: the exact ranking restricted to the
  /// top-nprobe clusters' posting lists. Best first, ties by ascending
  /// item id, seen items excluded; k is clamped to the catalogue size.
  /// Fewer than k entries come back when the probed lists (after
  /// filtering) hold fewer items.
  std::vector<RecEntry> RetrieveTopN(int64_t user, int64_t k) const override;

  /// RetrieveTopN per user (probe sets differ per user, so there is no
  /// shared tile to amortise); user blocks fan out over the shard pool
  /// when sharding is active, OpenMP otherwise. Output order matches
  /// input; per-user results are identical to RetrieveTopN at any
  /// thread/worker count.
  std::vector<std::vector<RecEntry>> RetrieveBatch(
      const std::vector<int64_t>& users, int64_t k) const override;

  RetrieverStats Stats() const override;

  std::unique_ptr<eval::Scorer> MakeScorer() const override;

  const core::ServingModel& model() const override { return *model_; }
  std::shared_ptr<const core::ServingModel> model_ptr() const override {
    return model_;
  }
  const SeenItems* seen() const override { return seen_.get(); }
  std::shared_ptr<const SeenItems> seen_ptr() const override { return seen_; }

  /// Effective probe count (post clamping).
  int64_t nprobe() const { return nprobe_; }
  int64_t nlist() const { return ivf_->nlist(); }
  /// True when the two-phase quantized scan is active (requested AND the
  /// index carries codes).
  bool quantized() const { return quantized_; }
  /// Effective rerank pool bound (post defaulting/clamping).
  int64_t rerank_k() const { return rerank_k_; }

  /// Users per parallel work unit in RetrieveBatch.
  static constexpr int64_t kUserBlock = 8;

 private:
  /// Ids of the nprobe clusters whose centroids score highest against
  /// `user`'s embedding row (score desc, ties by ascending centroid id).
  std::vector<int64_t> ProbeClusters(int64_t user) const;

  /// Offers the scores of candidates[0, count) (item ids) to `*heap` — a
  /// worst-on-top bounded heap of capacity k, seen items skipped. Pure
  /// accumulation: callers sort the finished heap best-first themselves
  /// (or hand the per-shard heaps to MergeShardTopK, which sorts). The
  /// kept set is traversal-order independent, so the unsharded path can
  /// feed the probed posting lists through one heap in place, list by
  /// list, with no per-request candidate copy.
  void ScanCandidates(int64_t user, const int64_t* candidates, int64_t count,
                      int64_t k, std::vector<RecEntry>* heap) const;

  /// Full single-user retrieval; `allow_shard` false keeps the scan inline
  /// (used per user inside an already-fanned-out batch block).
  std::vector<RecEntry> RetrieveOne(int64_t user, int64_t k,
                                    bool allow_shard) const;

  /// The two-phase quantized retrieval (code scan -> exact rerank) for the
  /// already-selected probe set; does its own stat accounting.
  std::vector<RecEntry> RetrieveOneQuantized(
      int64_t user, int64_t k, const std::vector<int64_t>& probes) const;

  std::shared_ptr<const core::ServingModel> model_;
  std::shared_ptr<const SeenItems> seen_;
  std::shared_ptr<const core::IvfIndex> ivf_;
  int64_t nprobe_ = 0;
  ItemShardMode shard_mode_ = ItemShardMode::kAuto;
  bool quantized_ = false;
  int64_t rerank_k_ = 0;
  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> scanned_items_{0};
  mutable std::atomic<uint64_t> scanned_bytes_{0};
  mutable std::atomic<uint64_t> probed_clusters_{0};
  mutable std::atomic<uint64_t> scanned_code_bytes_{0};
  mutable std::atomic<uint64_t> reranked_items_{0};
};

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_IVF_RETRIEVER_H_
