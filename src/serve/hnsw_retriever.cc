#include "src/serve/hnsw_retriever.h"

#include <algorithm>
#include <queue>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"

namespace gnmr {
namespace serve {

namespace {

/// Frontier ordering for the best-first walk: std::priority_queue keeps
/// its "greatest" element on top, so comparing with BetterThan reversed
/// puts the best unexpanded candidate there.
struct WorseThan {
  bool operator()(const RecEntry& a, const RecEntry& b) const {
    return BetterThan(b, a);
  }
};

bool TestAndSet(std::vector<uint64_t>* bits, int64_t i) {
  uint64_t& word = (*bits)[static_cast<size_t>(i >> 6)];
  const uint64_t mask = uint64_t{1} << (i & 63);
  if ((word & mask) != 0) return true;
  word |= mask;
  return false;
}

}  // namespace

HnswRetriever::HnswRetriever(std::shared_ptr<const core::ServingModel> model,
                             std::shared_ptr<const SeenItems> seen,
                             int64_t ef_search)
    : model_(std::move(model)), seen_(std::move(seen)) {
  GNMR_CHECK(model_ != nullptr);
  GNMR_CHECK(model_->num_users > 0 && model_->num_items > 0);
  GNMR_CHECK(model_->embeddings.rows() ==
             model_->num_users + model_->num_items)
      << "inconsistent serving model";
  GNMR_CHECK(model_->has_hnsw())
      << "HnswRetriever needs a model with an HNSW graph "
         "(core::BuildHnswIndex)";
  hnsw_ = model_->hnsw;
  // Shape checks only: the O(edges) structural walk
  // (HnswIndex::CheckConsistent) already ran where the graph was produced
  // — BuildHnswIndex, LoadServingModel and SaveServingModel all validate —
  // and RecService constructs retrievers under its swap lock, so this
  // constructor must stay cheap.
  GNMR_CHECK_GE(hnsw_->num_levels, 1);
  GNMR_CHECK(hnsw_->entry_point >= 0 &&
             hnsw_->entry_point < model_->num_items);
  GNMR_CHECK_EQ(static_cast<int64_t>(hnsw_->neighbor_offsets.size()),
                hnsw_->num_levels * (model_->num_items + 1));
  if (seen_ != nullptr && !seen_->empty()) {
    GNMR_CHECK_LE(seen_->num_users(), model_->num_users);
  }
  if (ef_search <= 0) ef_search = tensor::kHnswDefaultEfSearch;
  ef_search_ = std::min(ef_search, model_->num_items);
}

std::vector<RecEntry> HnswRetriever::RetrieveOne(int64_t user,
                                                 int64_t k) const {
  GNMR_CHECK(user >= 0 && user < model_->num_users);
  GNMR_TRACE_SPAN("hnsw.search");
  const int64_t n = model_->num_items;
  const int64_t width = model_->embeddings.cols();
  const float* emb = model_->embeddings.data();
  const float* item_base = emb + model_->num_users * width;
  const float* urow = emb + user * width;
  const int64_t stride = n + 1;
  const int64_t* offsets = hnsw_->neighbor_offsets.data();
  const int64_t* adjacency = hnsw_->neighbors.data();
  const tensor::KernelBackend& backend = tensor::GetBackend();
  const SeenItems* seen = seen_.get();

  uint64_t hops = 0;
  uint64_t evals = 0;
  std::vector<int64_t> fresh;
  std::vector<float> scores;

  // Zoom-in: greedy descent with a beam of one. Each step scores the
  // current node's whole neighbor list and moves to its best entry while
  // that improves on the current node under BetterThan — the fixed total
  // order makes the path (and thus the level-0 entry) deterministic.
  RecEntry cur{hnsw_->entry_point,
               DotScore(urow, item_base + hnsw_->entry_point * width, width)};
  ++evals;
  for (int64_t level = hnsw_->num_levels - 1; level >= 1; --level) {
    bool moved = true;
    while (moved) {
      moved = false;
      const int64_t base = level * stride + cur.item;
      const int64_t begin = offsets[base];
      const int64_t count = offsets[base + 1] - begin;
      if (count == 0) break;
      ++hops;
      scores.resize(static_cast<size_t>(count));
      backend.QueryDotIndexed(urow, item_base, adjacency + begin,
                              scores.data(), count, width);
      evals += static_cast<uint64_t>(count);
      for (int64_t j = 0; j < count; ++j) {
        const RecEntry cand{adjacency[begin + j],
                            scores[static_cast<size_t>(j)]};
        if (BetterThan(cand, cur)) {
          cur = cand;
          moved = true;
        }
      }
    }
  }

  // Level-0 beam: best-first expansion bounded by ef candidates. The
  // working set `beam` ignores seen-filtering — dropping seen items from
  // the frontier would change which regions the walk explores and make
  // recall depend on the user's history — while the k-bounded output heap
  // applies it through the shared OfferToBoundedHeap, exactly like the
  // scan strategies.
  const int64_t ef = std::min(std::max(ef_search_, k), n);
  std::vector<uint64_t> visited(static_cast<size_t>((n + 63) / 64), 0);
  TestAndSet(&visited, cur.item);
  std::priority_queue<RecEntry, std::vector<RecEntry>, WorseThan> frontier;
  frontier.push(cur);
  std::vector<RecEntry> beam;
  beam.reserve(static_cast<size_t>(ef) + 1);
  OfferToBoundedHeap(&beam, ef, cur, nullptr, user);
  std::vector<RecEntry> out;
  out.reserve(static_cast<size_t>(k) + 1);
  OfferToBoundedHeap(&out, k, cur, seen, user);
  while (!frontier.empty()) {
    const RecEntry c = frontier.top();
    frontier.pop();
    // Termination: the best unexpanded candidate cannot beat the beam's
    // current worst, so no expansion can improve the kept set.
    if (static_cast<int64_t>(beam.size()) == ef &&
        !BetterThan(c, beam.front())) {
      break;
    }
    ++hops;
    const int64_t begin = offsets[c.item];
    const int64_t end = offsets[c.item + 1];
    fresh.clear();
    for (int64_t p = begin; p < end; ++p) {
      if (!TestAndSet(&visited, adjacency[p])) fresh.push_back(adjacency[p]);
    }
    if (fresh.empty()) continue;
    scores.resize(fresh.size());
    backend.QueryDotIndexed(urow, item_base, fresh.data(), scores.data(),
                            static_cast<int64_t>(fresh.size()), width);
    evals += static_cast<uint64_t>(fresh.size());
    for (size_t j = 0; j < fresh.size(); ++j) {
      const RecEntry cand{fresh[j], scores[j]};
      frontier.push(cand);
      OfferToBoundedHeap(&beam, ef, cand, nullptr, user);
      OfferToBoundedHeap(&out, k, cand, seen, user);
    }
  }
  std::sort(out.begin(), out.end(), BetterThan);

  requests_.fetch_add(1, std::memory_order_relaxed);
  hops_.fetch_add(hops, std::memory_order_relaxed);
  scanned_items_.fetch_add(evals, std::memory_order_relaxed);
  // Bandwidth: one float embedding row per distance evaluation (the
  // neighbor-id reads are noise next to the rows). No centroid/codes
  // terms — the graph IS the index.
  scanned_bytes_.fetch_add(evals * static_cast<uint64_t>(width) *
                               sizeof(float),
                           std::memory_order_relaxed);
  return out;
}

std::vector<RecEntry> HnswRetriever::RetrieveTopN(int64_t user,
                                                  int64_t k) const {
  GNMR_TRACE_SPAN("hnsw.retrieve");
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  return RetrieveOne(user, k);
}

std::vector<std::vector<RecEntry>> HnswRetriever::RetrieveBatch(
    const std::vector<int64_t>& users, int64_t k) const {
  GNMR_TRACE_SPAN("hnsw.batch");
  GNMR_CHECK_GE(k, 1);
  k = std::min(k, model_->num_items);
  const int64_t n = static_cast<int64_t>(users.size());
  std::vector<std::vector<RecEntry>> outs(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kUserBlock - 1) / kUserBlock;
  // A single walk never shards (each hop depends on the last), so the
  // batch is pure outer parallelism over user blocks — the same fan-out
  // shape as IvfRetriever::RetrieveBatch.
  if (ItemShardingActive(ItemShardMode::kAuto) && num_blocks > 1) {
    tensor::ShardPool::Global()->Run(num_blocks, [&](int64_t b) {
      const int64_t start = b * kUserBlock;
      const int64_t count = std::min(kUserBlock, n - start);
      for (int64_t u = 0; u < count; ++u) {
        outs[static_cast<size_t>(start + u)] =
            RetrieveOne(users[static_cast<size_t>(start + u)], k);
      }
    });
    return outs;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (num_blocks > 1)
#endif
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t start = b * kUserBlock;
    const int64_t count = std::min(kUserBlock, n - start);
    for (int64_t u = 0; u < count; ++u) {
      outs[static_cast<size_t>(start + u)] =
          RetrieveOne(users[static_cast<size_t>(start + u)], k);
    }
  }
  return outs;
}

RetrieverStats HnswRetriever::Stats() const {
  RetrieverStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.scanned_items = scanned_items_.load(std::memory_order_relaxed);
  out.scanned_bytes = scanned_bytes_.load(std::memory_order_relaxed);
  out.hops = hops_.load(std::memory_order_relaxed);
  return out;
}

std::unique_ptr<eval::Scorer> HnswRetriever::MakeScorer() const {
  return core::MakeSharedScorer(model_);
}

}  // namespace serve
}  // namespace gnmr
