// Synthetic serving traffic: Zipf-distributed user request streams.
// Real recommendation read traffic is repeat-heavy — a small head of
// users produces most requests — which is the shape that makes per-user
// caching pay off. The serve bench and the gnmr_serve example both replay
// streams drawn here.
#ifndef GNMR_SERVE_ZIPF_STREAM_H_
#define GNMR_SERVE_ZIPF_STREAM_H_

#include <cstdint>
#include <vector>

namespace gnmr {
namespace serve {

/// Draws `count` user ids from [0, num_users) with P(u) proportional to
/// 1/(u+1)^exponent. Deterministic in `seed`.
std::vector<int64_t> ZipfRequestStream(int64_t num_users, int64_t count,
                                       double exponent, uint64_t seed);

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_ZIPF_STREAM_H_
