// Exact top-N retrieval over a ServingModel snapshot — the reference
// Retriever strategy (retriever.h).
//
// The offline artifact (core::ServingModel) holds the multi-order node
// embeddings; online recommendation is a dot-product scan of one user row
// against every item row. ExactRetriever replaces the per-item virtual
// eval::Scorer path with a blocked user-block x item-embedding matmul that
// keeps a bounded heap per user row, so full-catalogue retrieval streams
// through the embedding table instead of re-touching it per candidate.
//
// Results are exact: scores are accumulated in double in the same order as
// ServingModel::Score, and ties break by ascending item id, so the output
// is bit-identical to brute-force scoring + std::sort at any thread count.
// Every other strategy (IvfRetriever, future LSH/graph indexes) is
// measured against this scan — eval::RetrievalRecallAtK quantifies the
// gap.
//
// Item sharding: when the "sharded" kernel backend is active (or sharding
// is forced via ItemShardMode::kOn), single-user retrieval partitions the
// catalogue with a ShardPlan and scans the shards on the global shard
// pool; each shard keeps its own bounded heap and the per-shard top-k
// candidates merge by (score desc, item asc) — the same total order as the
// unsharded scan, so the output stays bit-identical. Batched retrieval
// fans user blocks over the same pool instead (outer parallelism beats
// splitting the item range when many users are in flight).
#ifndef GNMR_SERVE_EXACT_RETRIEVER_H_
#define GNMR_SERVE_EXACT_RETRIEVER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/serve/retriever.h"

namespace gnmr {
namespace serve {

/// Read-only exact top-K retriever over a ServingModel snapshot. Shares
/// ownership of the model (and optionally of per-user seen sets), so it
/// stays valid while any caller holds it — the property the hot-swapping
/// RecService relies on. All methods are const and thread-safe.
class ExactRetriever : public Retriever {
 public:
  /// `model` must be non-null and consistent. `seen` (optional) marks
  /// items to exclude per user; pass nullptr to disable filtering.
  /// `shard_mode` controls catalogue sharding (see ItemShardMode).
  explicit ExactRetriever(std::shared_ptr<const core::ServingModel> model,
                          std::shared_ptr<const SeenItems> seen = nullptr,
                          ItemShardMode shard_mode = ItemShardMode::kAuto);

  const char* name() const override { return "exact"; }

  /// Exact top-k items for `user`, best first, ties by ascending item id,
  /// excluding the user's seen items. k is clamped to the catalogue size;
  /// fewer than k entries come back when filtering leaves fewer items.
  std::vector<RecEntry> RetrieveTopN(int64_t user, int64_t k) const override;

  /// RetrieveTopN for every user in `users`, parallel across user blocks
  /// (shard pool when item sharding is active, OpenMP otherwise). Output
  /// order matches input order; results are identical to per-user
  /// RetrieveTopN calls at any thread/worker count.
  std::vector<std::vector<RecEntry>> RetrieveBatch(
      const std::vector<int64_t>& users, int64_t k) const override;

  RetrieverStats Stats() const override;

  /// eval::Scorer adapter on the fast path; holds a model snapshot, so it
  /// is safe to use after this retriever (or the caller's model handle)
  /// goes away. Scores are bit-identical to ServingModel::Score.
  std::unique_ptr<eval::Scorer> MakeScorer() const override;

  const core::ServingModel& model() const override { return *model_; }
  std::shared_ptr<const core::ServingModel> model_ptr() const override {
    return model_;
  }
  /// Null when seen-item filtering is disabled.
  const SeenItems* seen() const override { return seen_.get(); }
  std::shared_ptr<const SeenItems> seen_ptr() const override { return seen_; }

  /// Users per parallel work unit; item rows are re-streamed once per user
  /// block, so larger blocks amortise memory traffic.
  static constexpr int64_t kUserBlock = 8;
  /// Items scored per inner tile (tile of item rows kept hot in cache).
  static constexpr int64_t kItemBlock = 256;

 private:
  /// Retrieves over the item range [item_begin, item_end) for
  /// users[0..count) (count <= kUserBlock) into outs[0..count): each out is
  /// the range's top-k (at most k entries), sorted best-first by
  /// BetterThan. [0, num_items) yields the final answer directly; a shard's
  /// sub-range yields candidates for the deterministic merge.
  void RetrieveBlock(const int64_t* users, int64_t count, int64_t k,
                     int64_t item_begin, int64_t item_end,
                     std::vector<RecEntry>* outs) const;

  /// Item-sharded RetrieveBlock over the full catalogue: partitions
  /// [0, num_items) across the shard pool, scans every shard range for
  /// all `count` users at once (each item tile streamed a single time for
  /// the block), and merges the per-shard winners per user — bit-identical
  /// to the unsharded scan, which single-shard plans fall back to. Serves
  /// both single-user retrieval (count == 1) and single-block batches.
  void RetrieveBlockItemSharded(const int64_t* users, int64_t count,
                                int64_t k, std::vector<RecEntry>* outs) const;

  std::shared_ptr<const core::ServingModel> model_;
  std::shared_ptr<const SeenItems> seen_;
  ItemShardMode shard_mode_ = ItemShardMode::kAuto;
  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> scanned_items_{0};
  mutable std::atomic<uint64_t> scanned_bytes_{0};
};

}  // namespace serve
}  // namespace gnmr

#endif  // GNMR_SERVE_EXACT_RETRIEVER_H_
