#include "src/serve/zipf_stream.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace gnmr {
namespace serve {

std::vector<int64_t> ZipfRequestStream(int64_t num_users, int64_t count,
                                       double exponent, uint64_t seed) {
  GNMR_CHECK_GE(num_users, 1);
  GNMR_CHECK_GE(count, 0);
  util::Rng rng(seed);
  std::vector<double> weights(static_cast<size_t>(num_users));
  for (int64_t u = 0; u < num_users; ++u) {
    weights[static_cast<size_t>(u)] =
        1.0 / std::pow(static_cast<double>(u + 1), exponent);
  }
  std::vector<int64_t> users(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    users[static_cast<size_t>(i)] =
        static_cast<int64_t>(rng.Categorical(weights));
  }
  return users;
}

}  // namespace serve
}  // namespace gnmr
