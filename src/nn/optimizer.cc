#include "src/nn/optimizer.h"

#include <cmath>

#include "src/util/check.h"

namespace gnmr {
namespace nn {

void Optimizer::Step(const std::vector<ad::Var>& params) {
  for (ad::Var p : params) {
    if (!p.defined() || !p.has_grad()) continue;
    Update(&p);
    p.ZeroGrad();
  }
}

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::Update(ad::Var* param) {
  tensor::Tensor* value = param->mutable_value();
  const tensor::Tensor& grad = param->grad();
  float* v = value->data();
  const float* g = grad.data();
  int64_t n = value->numel();
  float lr = static_cast<float>(lr_);
  float wd = static_cast<float>(weight_decay_);
  if (momentum_ > 0.0) {
    auto [it, inserted] =
        velocity_.try_emplace(param->node().get(),
                              tensor::Tensor(value->shape()));
    float* vel = it->second.data();
    float mu = static_cast<float>(momentum_);
    for (int64_t i = 0; i < n; ++i) {
      vel[i] = mu * vel[i] + g[i];
      v[i] -= lr * (vel[i] + wd * v[i]);
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      v[i] -= lr * (g[i] + wd * v[i]);
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : Optimizer(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::Update(ad::Var* param) {
  tensor::Tensor* value = param->mutable_value();
  const tensor::Tensor& grad = param->grad();
  auto [it, inserted] = state_.try_emplace(param->node().get());
  State& s = it->second;
  if (inserted) {
    s.m = tensor::Tensor(value->shape());
    s.v = tensor::Tensor(value->shape());
  }
  s.t += 1;
  float* v = value->data();
  const float* g = grad.data();
  float* m_buf = s.m.data();
  float* v_buf = s.v.data();
  int64_t n = value->numel();
  float b1 = static_cast<float>(beta1_);
  float b2 = static_cast<float>(beta2_);
  float lr = static_cast<float>(lr_);
  float eps = static_cast<float>(eps_);
  float wd = static_cast<float>(weight_decay_);
  float bias1 = 1.0f - std::pow(b1, static_cast<float>(s.t));
  float bias2 = 1.0f - std::pow(b2, static_cast<float>(s.t));
  for (int64_t i = 0; i < n; ++i) {
    m_buf[i] = b1 * m_buf[i] + (1.0f - b1) * g[i];
    v_buf[i] = b2 * v_buf[i] + (1.0f - b2) * g[i] * g[i];
    float m_hat = m_buf[i] / bias1;
    float v_hat = v_buf[i] / bias2;
    v[i] -= lr * (m_hat / (std::sqrt(v_hat) + eps) + wd * v[i]);
  }
}

double GlobalGradNorm(const std::vector<ad::Var>& params) {
  double total = 0.0;
  for (const ad::Var& p : params) {
    if (!p.defined() || !p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  return std::sqrt(total);
}

void ClipGradNorm(const std::vector<ad::Var>& params, double max_norm) {
  GNMR_CHECK_GT(max_norm, 0.0);
  double norm = GlobalGradNorm(params);
  if (norm <= max_norm || norm == 0.0) return;
  float scale = static_cast<float>(max_norm / norm);
  for (ad::Var p : params) {
    if (!p.defined() || !p.has_grad()) continue;
    // In-place scale of the gradient buffer.
    tensor::Tensor& g = const_cast<tensor::Tensor&>(p.grad());
    float* gd = g.data();
    for (int64_t i = 0; i < g.numel(); ++i) gd[i] *= scale;
  }
}

}  // namespace nn
}  // namespace gnmr
