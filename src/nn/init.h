// Weight initialisation schemes.
#ifndef GNMR_NN_INIT_H_
#define GNMR_NN_INIT_H_

#include <cstdint>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace gnmr {
namespace nn {

/// Xavier/Glorot uniform: U[-a, a], a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor XavierUniform(int64_t fan_in, int64_t fan_out, util::Rng* rng);

/// Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out)).
tensor::Tensor XavierNormal(int64_t fan_in, int64_t fan_out, util::Rng* rng);

/// He/Kaiming normal: N(0, 2 / fan_in); preferred before ReLU.
tensor::Tensor HeNormal(int64_t fan_in, int64_t fan_out, util::Rng* rng);

/// Small-scale normal embedding init: N(0, stddev^2).
tensor::Tensor EmbeddingNormal(int64_t count, int64_t dim, float stddev,
                               util::Rng* rng);

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_INIT_H_
