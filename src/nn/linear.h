// Fully connected layer.
#ifndef GNMR_NN_LINEAR_H_
#define GNMR_NN_LINEAR_H_

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace gnmr {
namespace nn {

/// y = x W + b with W: [in, out], b: [1, out] (optional).
class Linear : public Module {
 public:
  /// Xavier-uniform weight init; zero bias.
  Linear(int64_t in_features, int64_t out_features, bool use_bias,
         util::Rng* rng);

  /// x: [n, in] -> [n, out].
  ad::Var Forward(const ad::Var& x) const;

  std::vector<ad::Var> Parameters() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const ad::Var& weight() const { return weight_; }
  const ad::Var& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ad::Var weight_;
  ad::Var bias_;  // undefined when !use_bias
};

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_LINEAR_H_
