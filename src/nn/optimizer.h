// First-order optimisers. The GNMR paper trains with Adam (lr 1e-3, batch
// 32) and a 0.96 exponential learning-rate decay (Section IV-A4); the L2
// term of Eq. 7 is applied as decoupled weight decay.
#ifndef GNMR_NN_OPTIMIZER_H_
#define GNMR_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "src/tensor/autodiff.h"

namespace gnmr {
namespace nn {

/// Base optimiser: applies updates to params with gradients, then clears
/// those gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Updates every param that accumulated a gradient and zeroes its grad.
  void Step(const std::vector<ad::Var>& params);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }
  /// Multiplies the learning rate by `factor` (exponential decay schedule).
  void DecayLearningRate(double factor) { lr_ *= factor; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  virtual void Update(ad::Var* param) = 0;

  double lr_;
};

/// Plain SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);

 protected:
  void Update(ad::Var* param) override;

 private:
  double momentum_;
  double weight_decay_;
  std::unordered_map<const ad::Node*, tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with decoupled weight decay (AdamW).
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);

 protected:
  void Update(ad::Var* param) override;

 private:
  struct State {
    tensor::Tensor m;
    tensor::Tensor v;
    int64_t t = 0;
  };
  double beta1_, beta2_, eps_, weight_decay_;
  std::unordered_map<const ad::Node*, State> state_;
};

/// Global L2 norm over all parameter gradients (0 if none).
double GlobalGradNorm(const std::vector<ad::Var>& params);

/// Scales all gradients so the global norm is at most `max_norm`.
void ClipGradNorm(const std::vector<ad::Var>& params, double max_norm);

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_OPTIMIZER_H_
