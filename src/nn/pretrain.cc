#include "src/nn/pretrain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/nn/linear.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace nn {

namespace {

// Fills a dense multi-hot row block for entities `ids` given per-behavior
// adjacency. Row width = neighbor_count * num_behaviors.
tensor::Tensor BuildRows(const graph::MultiBehaviorGraph& g, bool user_side,
                         const std::vector<int64_t>& ids,
                         int64_t neighbor_count) {
  int64_t k_count = g.num_behaviors();
  tensor::Tensor rows(
      {static_cast<int64_t>(ids.size()), neighbor_count * k_count});
  float* rd = rows.data();
  int64_t width = neighbor_count * k_count;
  for (size_t r = 0; r < ids.size(); ++r) {
    for (int64_t k = 0; k < k_count; ++k) {
      std::vector<int64_t> nbrs = user_side ? g.ItemsOf(ids[r], k)
                                            : g.UsersOf(ids[r], k);
      for (int64_t nb : nbrs) {
        rd[static_cast<int64_t>(r) * width + k * neighbor_count + nb] = 1.0f;
      }
    }
  }
  return rows;
}

// Trains one autoencoder over rows of one side and returns encoder outputs
// for all entities on that side.
tensor::Tensor TrainSide(const graph::MultiBehaviorGraph& g, bool user_side,
                         const PretrainConfig& cfg, util::Rng* rng) {
  int64_t count = user_side ? g.num_users() : g.num_items();
  int64_t neighbor_count = user_side ? g.num_items() : g.num_users();
  int64_t in_dim = neighbor_count * g.num_behaviors();

  Linear encoder(in_dim, cfg.dim, /*use_bias=*/true, rng);
  Linear decoder(cfg.dim, in_dim, /*use_bias=*/true, rng);
  std::vector<ad::Var> params = encoder.Parameters();
  {
    auto dp = decoder.Parameters();
    params.insert(params.end(), dp.begin(), dp.end());
  }
  Adam opt(cfg.learning_rate);

  std::vector<int64_t> order(static_cast<size_t>(count));
  std::iota(order.begin(), order.end(), 0);
  for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (int64_t start = 0; start < count; start += cfg.batch_size) {
      int64_t end = std::min(count, start + cfg.batch_size);
      std::vector<int64_t> ids(order.begin() + start, order.begin() + end);
      tensor::Tensor rows = BuildRows(g, user_side, ids, neighbor_count);
      tensor::Tensor input = rows;
      if (cfg.corruption > 0.0) {
        float* d = input.data();
        for (int64_t i = 0; i < input.numel(); ++i) {
          if (d[i] != 0.0f && rng->Bernoulli(cfg.corruption)) d[i] = 0.0f;
        }
      }
      ad::Var x = ad::Var::Constant(std::move(input));
      ad::Var target = ad::Var::Constant(std::move(rows));
      ad::Var h = ad::Relu(encoder.Forward(x));
      ad::Var recon = decoder.Forward(h);
      ad::Var loss = ad::MseLoss(recon, target);
      ad::Backward(loss);
      opt.Step(params);
    }
  }

  // Encode all rows (in batches to bound memory).
  tensor::Tensor out({count, cfg.dim});
  for (int64_t start = 0; start < count; start += cfg.batch_size) {
    int64_t end = std::min(count, start + cfg.batch_size);
    std::vector<int64_t> ids;
    for (int64_t i = start; i < end; ++i) ids.push_back(i);
    tensor::Tensor rows = BuildRows(g, user_side, ids, neighbor_count);
    ad::Var h = ad::Relu(encoder.Forward(ad::Var::Constant(std::move(rows))));
    const tensor::Tensor& hv = h.value();
    std::copy(hv.data(), hv.data() + hv.numel(),
              out.data() + start * cfg.dim);
  }
  // Small-norm rescale: downstream layers expect embedding-scale inputs.
  float norm = out.L2Norm();
  if (norm > 0.0f) {
    float scale =
        0.1f * std::sqrt(static_cast<float>(out.numel())) / norm;
    float* d = out.data();
    for (int64_t i = 0; i < out.numel(); ++i) d[i] *= scale;
  }
  return out;
}

}  // namespace

PretrainedEmbeddings PretrainEmbeddings(const data::Dataset& dataset,
                                        const PretrainConfig& config,
                                        util::Rng* rng) {
  GNMR_CHECK_GT(config.dim, 0);
  auto graph = dataset.BuildGraph();
  PretrainedEmbeddings out;
  out.user = TrainSide(*graph, /*user_side=*/true, config, rng);
  out.item = TrainSide(*graph, /*user_side=*/false, config, rng);
  return out;
}

}  // namespace nn
}  // namespace gnmr
