// Multi-layer perceptron with configurable activations and dropout.
#ifndef GNMR_NN_MLP_H_
#define GNMR_NN_MLP_H_

#include <memory>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace gnmr {
namespace nn {

enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Applies an activation to a Var (kNone is identity).
ad::Var ApplyActivation(const ad::Var& x, Activation act);

/// Stack of Linear layers with `act` between them.
class Mlp : public Module {
 public:
  /// `dims` = {in, h1, ..., out}; at least 2 entries. `final_act` applies
  /// after the last layer; hidden layers use `act`.
  Mlp(std::vector<int64_t> dims, Activation act, Activation final_act,
      util::Rng* rng, float dropout = 0.0f);

  /// Forward pass. `training` enables dropout (which then needs `rng`).
  ad::Var Forward(const ad::Var& x, bool training = false,
                  util::Rng* rng = nullptr) const;

  std::vector<ad::Var> Parameters() const override;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation act_;
  Activation final_act_;
  float dropout_;
};

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_MLP_H_
