// Trainable embedding table.
#ifndef GNMR_NN_EMBEDDING_H_
#define GNMR_NN_EMBEDDING_H_

#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace gnmr {
namespace nn {

/// A [count, dim] table. Lookup gathers rows (sparse-gradient); table()
/// exposes the full table for full-graph propagation models.
class Embedding : public Module {
 public:
  /// N(0, stddev^2) init.
  Embedding(int64_t count, int64_t dim, util::Rng* rng, float stddev = 0.1f);

  /// Builds an embedding around an externally produced table (e.g. the
  /// autoencoder pre-training of the GNMR paper, Section III-A).
  explicit Embedding(tensor::Tensor table);

  /// Gathers rows: ids -> [ids.size(), dim].
  ad::Var Lookup(const std::vector<int64_t>& ids) const;

  /// The full table as a Var (for whole-graph SpMM propagation).
  const ad::Var& table() const { return table_; }

  int64_t count() const { return table_.value().rows(); }
  int64_t dim() const { return table_.value().cols(); }

  std::vector<ad::Var> Parameters() const override { return {table_}; }

 private:
  ad::Var table_;
};

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_EMBEDDING_H_
