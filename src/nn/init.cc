#include "src/nn/init.h"

#include <cmath>

namespace gnmr {
namespace nn {

tensor::Tensor XavierUniform(int64_t fan_in, int64_t fan_out,
                             util::Rng* rng) {
  float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::RandomUniform({fan_in, fan_out}, rng, -a, a);
}

tensor::Tensor XavierNormal(int64_t fan_in, int64_t fan_out, util::Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::RandomNormal({fan_in, fan_out}, rng, 0.0f, stddev);
}

tensor::Tensor HeNormal(int64_t fan_in, int64_t fan_out, util::Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Tensor::RandomNormal({fan_in, fan_out}, rng, 0.0f, stddev);
}

tensor::Tensor EmbeddingNormal(int64_t count, int64_t dim, float stddev,
                               util::Rng* rng) {
  return tensor::Tensor::RandomNormal({count, dim}, rng, 0.0f, stddev);
}

}  // namespace nn
}  // namespace gnmr
