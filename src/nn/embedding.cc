#include "src/nn/embedding.h"

#include "src/nn/init.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace nn {

Embedding::Embedding(int64_t count, int64_t dim, util::Rng* rng,
                     float stddev) {
  table_ = ad::Var::Param(EmbeddingNormal(count, dim, stddev, rng));
}

Embedding::Embedding(tensor::Tensor table) {
  GNMR_CHECK_EQ(table.rank(), 2);
  table_ = ad::Var::Param(std::move(table));
}

ad::Var Embedding::Lookup(const std::vector<int64_t>& ids) const {
  return ad::GatherRows(table_, ids);
}

}  // namespace nn
}  // namespace gnmr
