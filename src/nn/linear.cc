#include "src/nn/linear.h"

#include "src/nn/init.h"
#include "src/tensor/ad_ops.h"

namespace gnmr {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool use_bias,
               util::Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = ad::Var::Param(XavierUniform(in_features, out_features, rng));
  if (use_bias) {
    bias_ = ad::Var::Param(tensor::Tensor({1, out_features}));
  }
}

ad::Var Linear::Forward(const ad::Var& x) const {
  ad::Var y = ad::MatMul(x, weight_);
  if (bias_.defined()) y = ad::Add(y, bias_);
  return y;
}

std::vector<ad::Var> Linear::Parameters() const {
  std::vector<ad::Var> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

}  // namespace nn
}  // namespace gnmr
