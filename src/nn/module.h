// Base class for neural modules: a named bag of trainable parameters.
#ifndef GNMR_NN_MODULE_H_
#define GNMR_NN_MODULE_H_

#include <vector>

#include "src/tensor/autodiff.h"

namespace gnmr {
namespace nn {

/// Anything holding trainable Vars. Parameters() returns handles to the
/// persistent parameter nodes (not copies), so optimisers mutate in place.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (and submodules).
  virtual std::vector<ad::Var> Parameters() const = 0;

  /// Total number of scalar parameters.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const ad::Var& p : Parameters()) n += p.value().numel();
    return n;
  }

  /// Clears gradients of all parameters.
  void ZeroGrad() {
    for (ad::Var p : Parameters()) p.ZeroGrad();
  }
};

/// Concatenates parameter lists of several modules.
inline std::vector<ad::Var> CollectParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<ad::Var> out;
  for (const Module* m : modules) {
    auto params = m->Parameters();
    out.insert(out.end(), params.begin(), params.end());
  }
  return out;
}

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_MODULE_H_
