#include "src/nn/mlp.h"

#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace nn {

ad::Var ApplyActivation(const ad::Var& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ad::Relu(x);
    case Activation::kLeakyRelu:
      return ad::LeakyRelu(x, 0.1f);
    case Activation::kSigmoid:
      return ad::Sigmoid(x);
    case Activation::kTanh:
      return ad::Tanh(x);
  }
  return x;
}

Mlp::Mlp(std::vector<int64_t> dims, Activation act, Activation final_act,
         util::Rng* rng, float dropout)
    : act_(act), final_act_(final_act), dropout_(dropout) {
  GNMR_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(
        std::make_unique<Linear>(dims[i], dims[i + 1], /*use_bias=*/true,
                                 rng));
  }
}

ad::Var Mlp::Forward(const ad::Var& x, bool training, util::Rng* rng) const {
  ad::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    bool last = (i + 1 == layers_.size());
    h = ApplyActivation(h, last ? final_act_ : act_);
    if (!last && dropout_ > 0.0f) {
      h = ad::Dropout(h, dropout_, training, rng);
    }
  }
  return h;
}

std::vector<ad::Var> Mlp::Parameters() const {
  std::vector<ad::Var> out;
  for (const auto& layer : layers_) {
    auto p = layer->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace nn
}  // namespace gnmr
