// Autoencoder-based embedding pre-training. The GNMR paper initialises the
// layer-0 node embeddings H^0 from an autoencoder over the multi-behavior
// interaction tensor X (Section III-A, citing AutoRec [9]). This module
// implements that scheme: one autoencoder over user rows of the flattened
// [items x behaviors] matrix, one over item rows of [users x behaviors].
#ifndef GNMR_NN_PRETRAIN_H_
#define GNMR_NN_PRETRAIN_H_

#include <utility>

#include "src/data/dataset.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace gnmr {
namespace nn {

/// Configuration for autoencoder pre-training.
struct PretrainConfig {
  int64_t dim = 16;
  int64_t epochs = 3;
  int64_t batch_size = 64;
  double learning_rate = 5e-3;
  /// Input corruption probability (denoising flavor); 0 disables.
  double corruption = 0.0;
};

/// Result of pre-training: initial user and item embedding tables.
struct PretrainedEmbeddings {
  tensor::Tensor user;  // [num_users, dim]
  tensor::Tensor item;  // [num_items, dim]
};

/// Trains the two autoencoders on `dataset` and returns the encoder
/// activations as initial embeddings. Deterministic given `rng`.
PretrainedEmbeddings PretrainEmbeddings(const data::Dataset& dataset,
                                        const PretrainConfig& config,
                                        util::Rng* rng);

}  // namespace nn
}  // namespace gnmr

#endif  // GNMR_NN_PRETRAIN_H_
