#include "src/data/statistics.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/util/string_util.h"

namespace gnmr {
namespace data {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats s;
  s.name = dataset.name;
  s.num_users = dataset.num_users;
  s.num_items = dataset.num_items;
  s.num_interactions = static_cast<int64_t>(dataset.interactions.size());
  std::vector<int64_t> behavior_counts(
      static_cast<size_t>(dataset.num_behaviors()), 0);
  std::vector<int64_t> item_counts(static_cast<size_t>(dataset.num_items), 0);
  std::set<int64_t> users_with_target;
  for (const graph::Interaction& e : dataset.interactions) {
    behavior_counts[static_cast<size_t>(e.behavior)] += 1;
    item_counts[static_cast<size_t>(e.item)] += 1;
    if (e.behavior == dataset.target_behavior) users_with_target.insert(e.user);
  }
  for (int64_t k = 0; k < dataset.num_behaviors(); ++k) {
    s.per_behavior.emplace_back(dataset.behavior_names[static_cast<size_t>(k)],
                                behavior_counts[static_cast<size_t>(k)]);
  }
  double cells = static_cast<double>(dataset.num_users) *
                 static_cast<double>(dataset.num_items) *
                 static_cast<double>(dataset.num_behaviors());
  s.density = cells > 0 ? static_cast<double>(s.num_interactions) / cells : 0;
  s.avg_interactions_per_user =
      dataset.num_users > 0
          ? static_cast<double>(s.num_interactions) /
                static_cast<double>(dataset.num_users)
          : 0;
  // Gini over item counts: G = (2*sum(i*x_i) / (n*sum(x)) ) - (n+1)/n with
  // x sorted ascending and i 1-based.
  std::sort(item_counts.begin(), item_counts.end());
  double total = 0.0, weighted = 0.0;
  for (size_t i = 0; i < item_counts.size(); ++i) {
    total += static_cast<double>(item_counts[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(item_counts[i]);
  }
  double n = static_cast<double>(item_counts.size());
  s.item_gini =
      total > 0 ? (2.0 * weighted) / (n * total) - (n + 1.0) / n : 0.0;
  s.target_user_coverage =
      dataset.num_users > 0
          ? static_cast<double>(users_with_target.size()) /
                static_cast<double>(dataset.num_users)
          : 0;
  return s;
}

std::string StatsToString(const DatasetStats& s) {
  std::ostringstream os;
  os << "Dataset " << s.name << ": users=" << s.num_users
     << " items=" << s.num_items << " interactions=" << s.num_interactions
     << "\n  behaviors:";
  for (const auto& [name, count] : s.per_behavior) {
    os << " " << name << "=" << count;
  }
  os << "\n  "
     << util::StrFormat(
            "density=%.5f avg_per_user=%.1f item_gini=%.3f target_cov=%.3f",
            s.density, s.avg_interactions_per_user, s.item_gini,
            s.target_user_coverage);
  return os.str();
}

}  // namespace data
}  // namespace gnmr
