#include "src/data/split.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace gnmr {
namespace data {

TrainTestSplit LeaveLatestOut(const Dataset& full,
                              int64_t min_target_interactions,
                              double aux_holdout_prob, util::Rng* rng) {
  GNMR_CHECK_GE(min_target_interactions, 1);
  GNMR_CHECK(aux_holdout_prob == 0.0 || rng != nullptr)
      << "aux_holdout_prob needs an rng";
  // Locate, per user, the latest target-behavior event (stable on ties:
  // the one appearing last in the event list wins).
  std::vector<int64_t> latest_idx(static_cast<size_t>(full.num_users), -1);
  std::vector<int64_t> target_count(static_cast<size_t>(full.num_users), 0);
  for (size_t i = 0; i < full.interactions.size(); ++i) {
    const graph::Interaction& e = full.interactions[i];
    if (e.behavior != full.target_behavior) continue;
    size_t u = static_cast<size_t>(e.user);
    target_count[u] += 1;
    if (latest_idx[u] < 0 ||
        e.timestamp >=
            full.interactions[static_cast<size_t>(latest_idx[u])].timestamp) {
      latest_idx[u] = static_cast<int64_t>(i);
    }
  }

  TrainTestSplit split;
  split.train.name = full.name + "-train";
  split.train.num_users = full.num_users;
  split.train.num_items = full.num_items;
  split.train.behavior_names = full.behavior_names;
  split.train.target_behavior = full.target_behavior;

  std::unordered_set<int64_t> held_out;
  // Pairs whose auxiliary events are also dropped (future-session model).
  std::unordered_set<int64_t> aux_dropped_pairs;  // user * num_items + item
  for (int64_t u = 0; u < full.num_users; ++u) {
    size_t su = static_cast<size_t>(u);
    if (target_count[su] >= min_target_interactions && latest_idx[su] >= 0) {
      held_out.insert(latest_idx[su]);
      const graph::Interaction& e =
          full.interactions[static_cast<size_t>(latest_idx[su])];
      split.test.push_back({e.user, e.item});
      if (aux_holdout_prob > 0.0 && rng->Bernoulli(aux_holdout_prob)) {
        aux_dropped_pairs.insert(e.user * full.num_items + e.item);
      }
    }
  }
  split.train.interactions.reserve(full.interactions.size() -
                                   held_out.size());
  for (size_t i = 0; i < full.interactions.size(); ++i) {
    if (held_out.count(static_cast<int64_t>(i)) > 0) continue;
    const graph::Interaction& e = full.interactions[i];
    if (!aux_dropped_pairs.empty() &&
        aux_dropped_pairs.count(e.user * full.num_items + e.item) > 0) {
      continue;
    }
    split.train.interactions.push_back(e);
  }
  return split;
}

std::vector<EvalCandidates> BuildEvalCandidates(
    const Dataset& train, const std::vector<EvalInstance>& test,
    int64_t num_negatives, util::Rng* rng) {
  GNMR_CHECK_GT(num_negatives, 0);
  auto graph = train.BuildGraph();
  std::vector<EvalCandidates> out;
  out.reserve(test.size());
  for (const EvalInstance& inst : test) {
    EvalCandidates c;
    c.user = inst.user;
    c.positive_item = inst.positive_item;
    // Distinct negatives: no train-time target edge, not the positive.
    std::unordered_set<int64_t> chosen;
    GNMR_CHECK_GE(
        train.num_items -
            graph->UserDegree(inst.user, train.target_behavior) - 1,
        num_negatives)
        << "user " << inst.user << " lacks eligible negatives";
    while (static_cast<int64_t>(c.negatives.size()) < num_negatives) {
      int64_t item = rng->UniformInt(0, train.num_items - 1);
      if (item == inst.positive_item) continue;
      if (chosen.count(item) > 0) continue;
      if (graph->HasEdge(inst.user, item, train.target_behavior)) continue;
      chosen.insert(item);
      c.negatives.push_back(item);
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace data
}  // namespace gnmr
