#include "src/data/loader.h"

#include <algorithm>

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace gnmr {
namespace data {

namespace {
constexpr char kMagic[] = "gnmr-v1";
}  // namespace

util::Status SaveDataset(const Dataset& dataset, const std::string& path) {
  GNMR_RETURN_IF_ERROR(dataset.Validate());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(dataset.interactions.size() + 1);
  std::string behaviors;
  for (size_t k = 0; k < dataset.behavior_names.size(); ++k) {
    if (k > 0) behaviors += '|';
    behaviors += dataset.behavior_names[k];
  }
  rows.push_back({kMagic, dataset.name, std::to_string(dataset.num_users),
                  std::to_string(dataset.num_items),
                  std::to_string(dataset.target_behavior), behaviors});
  for (const graph::Interaction& e : dataset.interactions) {
    rows.push_back({std::to_string(e.user), std::to_string(e.item),
                    std::to_string(e.behavior), std::to_string(e.timestamp)});
  }
  return util::WriteDelimited(path, rows, '\t');
}

util::Result<Dataset> LoadDataset(const std::string& path) {
  auto rows_or = util::ReadDelimited(path, '\t');
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty() || rows[0].size() != 6 || rows[0][0] != kMagic) {
    return util::Status::ParseError("missing gnmr-v1 header in " + path);
  }
  Dataset d;
  d.name = rows[0][1];
  auto users = util::ParseInt64(rows[0][2]);
  auto items = util::ParseInt64(rows[0][3]);
  auto target = util::ParseInt64(rows[0][4]);
  if (!users.ok() || !items.ok() || !target.ok()) {
    return util::Status::ParseError("bad header numbers in " + path);
  }
  d.num_users = users.value();
  d.num_items = items.value();
  d.target_behavior = target.value();
  for (const std::string& n : util::Split(rows[0][5], '|')) {
    d.behavior_names.push_back(n);
  }
  d.interactions.reserve(rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 4) {
      return util::Status::ParseError(
          util::StrFormat("row %zu has %zu fields, want 4", i,
                          rows[i].size()));
    }
    auto u = util::ParseInt64(rows[i][0]);
    auto v = util::ParseInt64(rows[i][1]);
    auto b = util::ParseInt64(rows[i][2]);
    auto t = util::ParseInt64(rows[i][3]);
    if (!u.ok() || !v.ok() || !b.ok() || !t.ok()) {
      return util::Status::ParseError(
          util::StrFormat("row %zu has non-integer fields", i));
    }
    d.interactions.push_back({u.value(), v.value(), b.value(), t.value()});
  }
  GNMR_RETURN_IF_ERROR(d.Validate());
  return d;
}

util::Result<Dataset> LoadRawTsv(const std::string& path,
                                 std::vector<std::string> behavior_names,
                                 int64_t target_behavior,
                                 const std::string& name) {
  auto rows_or = util::ReadDelimited(path, '\t');
  if (!rows_or.ok()) return rows_or.status();
  Dataset d;
  d.name = name;
  d.behavior_names = std::move(behavior_names);
  d.target_behavior = target_behavior;
  int64_t ts = 0;
  for (size_t i = 0; i < rows_or.value().size(); ++i) {
    const auto& row = rows_or.value()[i];
    if (row.size() != 3 && row.size() != 4) {
      return util::Status::ParseError(
          util::StrFormat("row %zu has %zu fields, want 3 or 4", i,
                          row.size()));
    }
    auto u = util::ParseInt64(row[0]);
    auto v = util::ParseInt64(row[1]);
    auto b = util::ParseInt64(row[2]);
    if (!u.ok() || !v.ok() || !b.ok()) {
      return util::Status::ParseError(
          util::StrFormat("row %zu has non-integer fields", i));
    }
    int64_t timestamp = ts++;
    if (row.size() == 4) {
      auto t = util::ParseInt64(row[3]);
      if (!t.ok()) return t.status();
      timestamp = t.value();
    }
    d.num_users = std::max(d.num_users, u.value() + 1);
    d.num_items = std::max(d.num_items, v.value() + 1);
    d.interactions.push_back({u.value(), v.value(), b.value(), timestamp});
  }
  GNMR_RETURN_IF_ERROR(d.Validate());
  return d;
}

}  // namespace data
}  // namespace gnmr
