// Dataset statistics, reproducing Table I of the paper and backing the
// synthetic-generator validation tests.
#ifndef GNMR_DATA_STATISTICS_H_
#define GNMR_DATA_STATISTICS_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace gnmr {
namespace data {

/// Aggregate statistics over a dataset.
struct DatasetStats {
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_interactions = 0;
  /// (behavior name, event count) in behavior-id order.
  std::vector<std::pair<std::string, int64_t>> per_behavior;
  /// Interactions / (users * items * behaviors).
  double density = 0.0;
  double avg_interactions_per_user = 0.0;
  /// Gini coefficient of item interaction counts (1 = all mass on one
  /// item); real recommendation data is heavily skewed (> 0.4).
  double item_gini = 0.0;
  /// Fraction of users with at least one target-behavior event.
  double target_user_coverage = 0.0;
};

/// Computes statistics in one pass over the events.
DatasetStats ComputeStats(const Dataset& dataset);

/// Renders a Table-I-style summary block for one dataset.
std::string StatsToString(const DatasetStats& stats);

}  // namespace data
}  // namespace gnmr

#endif  // GNMR_DATA_STATISTICS_H_
