#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "src/util/check.h"

namespace gnmr {
namespace data {

namespace {

// Latent ground truth shared by both generation styles.
struct LatentWorld {
  std::vector<std::vector<float>> user_factors;
  std::vector<std::vector<float>> item_factors;
  // Per behavior-slot, per item: factors of that behavior's own subspace
  // (only allocated for behaviors with subspace_blend > 0).
  std::map<int64_t, std::vector<std::vector<float>>> view_factors;
  std::vector<double> item_pop_weight;   // Zipf sampling weights
  std::vector<double> item_pop_score;    // standardised log popularity
  std::vector<double> pop_cumulative;    // prefix sums for sampling
};

// Blends the shared affinity with the behavior's own-subspace affinity,
// preserving variance: sqrt(1-b^2) * shared + b * own.
double BlendedAffinity(const LatentWorld& w, int64_t behavior_slot,
                       double blend, double shared, int64_t user,
                       int64_t item) {
  if (blend <= 0.0) return shared;
  const auto& vf = w.view_factors.at(behavior_slot);
  const auto& uf = w.user_factors[static_cast<size_t>(user)];
  const auto& rf = vf[static_cast<size_t>(item)];
  double own = 0.0;
  for (size_t d = 0; d < uf.size(); ++d) {
    own += static_cast<double>(uf[d]) * rf[d];
  }
  return std::sqrt(1.0 - blend * blend) * shared + blend * own;
}

void AllocateViewFactors(const SyntheticConfig& cfg, LatentWorld* w,
                         int64_t behavior_slot, util::Rng* rng) {
  float factor_std = 1.0f / std::sqrt(static_cast<float>(cfg.latent_dim));
  auto& vf = w->view_factors[behavior_slot];
  vf.resize(static_cast<size_t>(cfg.num_items));
  for (auto& f : vf) {
    f.resize(static_cast<size_t>(cfg.latent_dim));
    for (float& v : f) v = rng->Normal(0.0f, factor_std);
  }
}

LatentWorld BuildWorld(const SyntheticConfig& cfg, util::Rng* rng) {
  LatentWorld w;
  float factor_std = 1.0f / std::sqrt(static_cast<float>(cfg.latent_dim));
  w.user_factors.resize(static_cast<size_t>(cfg.num_users));
  for (auto& f : w.user_factors) {
    f.resize(static_cast<size_t>(cfg.latent_dim));
    for (float& v : f) v = rng->Normal(0.0f, factor_std);
  }
  w.item_factors.resize(static_cast<size_t>(cfg.num_items));
  for (auto& f : w.item_factors) {
    f.resize(static_cast<size_t>(cfg.latent_dim));
    for (float& v : f) v = rng->Normal(0.0f, factor_std);
  }
  // Zipf popularity over a random permutation of items.
  std::vector<int64_t> ranks(static_cast<size_t>(cfg.num_items));
  std::iota(ranks.begin(), ranks.end(), 0);
  rng->Shuffle(&ranks);
  w.item_pop_weight.resize(static_cast<size_t>(cfg.num_items));
  w.item_pop_score.resize(static_cast<size_t>(cfg.num_items));
  for (int64_t j = 0; j < cfg.num_items; ++j) {
    double rank = static_cast<double>(ranks[static_cast<size_t>(j)]) + 1.0;
    w.item_pop_weight[static_cast<size_t>(j)] =
        std::pow(rank, -cfg.popularity_exponent);
    w.item_pop_score[static_cast<size_t>(j)] = -std::log(rank);
  }
  // Standardise pop_score to zero mean / unit variance.
  double mean = 0.0, var = 0.0;
  for (double s : w.item_pop_score) mean += s;
  mean /= static_cast<double>(cfg.num_items);
  for (double s : w.item_pop_score) var += (s - mean) * (s - mean);
  var /= static_cast<double>(cfg.num_items);
  double stddev = std::sqrt(std::max(var, 1e-12));
  for (double& s : w.item_pop_score) s = (s - mean) / stddev;

  w.pop_cumulative.resize(static_cast<size_t>(cfg.num_items));
  double acc = 0.0;
  for (int64_t j = 0; j < cfg.num_items; ++j) {
    acc += w.item_pop_weight[static_cast<size_t>(j)];
    w.pop_cumulative[static_cast<size_t>(j)] = acc;
  }
  return w;
}

int64_t SamplePopularItem(const LatentWorld& w, util::Rng* rng) {
  double r = rng->UniformDouble() * w.pop_cumulative.back();
  auto it =
      std::lower_bound(w.pop_cumulative.begin(), w.pop_cumulative.end(), r);
  return static_cast<int64_t>(it - w.pop_cumulative.begin());
}

double Affinity(const SyntheticConfig& cfg, const LatentWorld& w, int64_t u,
                int64_t j, util::Rng* rng) {
  const auto& uf = w.user_factors[static_cast<size_t>(u)];
  const auto& jf = w.item_factors[static_cast<size_t>(j)];
  double dot = 0.0;
  for (size_t d = 0; d < uf.size(); ++d) {
    dot += static_cast<double>(uf[d]) * jf[d];
  }
  return dot + cfg.popularity_weight * w.item_pop_score[static_cast<size_t>(j)] +
         rng->Normal(0.0f, static_cast<float>(cfg.affinity_noise));
}

// A (user, item, affinity) candidate exposure.
struct Candidate {
  int64_t user;
  int64_t item;
  double z;
};

std::vector<Candidate> SampleCandidates(const SyntheticConfig& cfg,
                                        const LatentWorld& w,
                                        util::Rng* rng) {
  std::vector<Candidate> all;
  // Per-user breadth is capped at a quarter of the catalogue so the
  // 99-negative evaluation protocol always has eligible items, matching the
  // sparsity of the real datasets (users touch ~1% of items there).
  int64_t max_per_user =
      std::max<int64_t>(1, std::min(cfg.max_items_per_user,
                                    cfg.num_items / 4));
  int64_t min_per_user =
      std::max<int64_t>(1, std::min(cfg.min_items_per_user, max_per_user));
  double log_lo = std::log(static_cast<double>(min_per_user));
  double log_hi = std::log(static_cast<double>(max_per_user));
  for (int64_t u = 0; u < cfg.num_users; ++u) {
    int64_t n = static_cast<int64_t>(std::lround(
        std::exp(log_lo + (log_hi - log_lo) * rng->UniformDouble())));
    n = std::min(n, cfg.num_items);
    std::vector<bool> seen(static_cast<size_t>(cfg.num_items), false);
    int64_t got = 0;
    int64_t attempts = 0;
    while (got < n && attempts < n * 30) {
      ++attempts;
      int64_t j = SamplePopularItem(w, rng);
      if (seen[static_cast<size_t>(j)]) continue;
      seen[static_cast<size_t>(j)] = true;
      all.push_back({u, j, Affinity(cfg, w, u, j, rng)});
      ++got;
    }
  }
  return all;
}

// Returns the value cutting the z-distribution at quantile q.
double QuantileCutoff(std::vector<double> sorted_z, double q) {
  GNMR_CHECK(!sorted_z.empty());
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_z.size()));
  if (idx >= sorted_z.size()) idx = sorted_z.size() - 1;
  return sorted_z[idx];
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& cfg) {
  GNMR_CHECK_GT(cfg.num_users, 0);
  GNMR_CHECK_GT(cfg.num_items, 0);
  GNMR_CHECK_GE(cfg.max_items_per_user, cfg.min_items_per_user);
  GNMR_CHECK_GE(cfg.min_items_per_user, 1);
  util::Rng rng(cfg.seed);

  Dataset out;
  out.name = cfg.name;
  out.num_users = cfg.num_users;
  out.num_items = cfg.num_items;

  LatentWorld world = BuildWorld(cfg, &rng);
  if (cfg.style == SyntheticConfig::Style::kRatings) {
    for (size_t x = 0; x < cfg.extras.size(); ++x) {
      if (cfg.extras[x].subspace_blend > 0.0) {
        AllocateViewFactors(cfg, &world,
                            static_cast<int64_t>(cfg.buckets.size() + x),
                            &rng);
      }
    }
  } else {
    for (size_t st = 0; st < cfg.stages.size(); ++st) {
      if (cfg.stages[st].subspace_blend > 0.0) {
        AllocateViewFactors(cfg, &world, static_cast<int64_t>(st), &rng);
      }
    }
  }
  std::vector<Candidate> cands = SampleCandidates(cfg, world, &rng);

  std::vector<double> sorted_z;
  sorted_z.reserve(cands.size());
  for (const Candidate& c : cands) sorted_z.push_back(c.z);
  std::sort(sorted_z.begin(), sorted_z.end());

  int64_t target_behavior = -1;

  if (cfg.style == SyntheticConfig::Style::kRatings) {
    GNMR_CHECK(!cfg.buckets.empty()) << "ratings style needs buckets";
    // Behavior layout: buckets, then extras.
    std::vector<double> lo_cut, hi_cut;
    for (size_t b = 0; b < cfg.buckets.size(); ++b) {
      out.behavior_names.push_back(cfg.buckets[b].name);
      lo_cut.push_back(QuantileCutoff(sorted_z, cfg.buckets[b].lo_q));
      hi_cut.push_back(QuantileCutoff(sorted_z, cfg.buckets[b].hi_q));
      if (cfg.buckets[b].is_target) {
        target_behavior = static_cast<int64_t>(b);
      }
    }
    std::vector<double> extra_cut;
    for (const ExtraBehaviorSpec& ex : cfg.extras) {
      out.behavior_names.push_back(ex.name);
      extra_cut.push_back(QuantileCutoff(sorted_z, ex.min_q));
    }
    GNMR_CHECK_GE(target_behavior, 0) << "no target bucket flagged";

    int64_t ts = 0;
    for (const Candidate& c : cands) {
      // Exactly one bucket per rated pair (ratings are partitioned, matching
      // the paper's MovieLens/Yelp setup).
      for (size_t b = 0; b < cfg.buckets.size(); ++b) {
        bool top_bucket = cfg.buckets[b].hi_q >= 1.0;
        bool in_range = c.z >= lo_cut[b] && (top_bucket || c.z < hi_cut[b]);
        if (in_range && rng.Bernoulli(cfg.buckets[b].keep_prob)) {
          out.interactions.push_back(
              {c.user, c.item, static_cast<int64_t>(b), ts});
          break;
        }
      }
      for (size_t x = 0; x < cfg.extras.size(); ++x) {
        double zx = BlendedAffinity(
            world, static_cast<int64_t>(cfg.buckets.size() + x),
            cfg.extras[x].subspace_blend, c.z, c.user, c.item);
        if (zx >= extra_cut[x] && rng.Bernoulli(cfg.extras[x].prob)) {
          out.interactions.push_back(
              {c.user, c.item,
               static_cast<int64_t>(cfg.buckets.size() + x), ts});
        }
      }
      ++ts;
    }
  } else {  // kFunnel
    GNMR_CHECK(!cfg.stages.empty()) << "funnel style needs stages";
    std::vector<double> cut;
    for (size_t s = 0; s < cfg.stages.size(); ++s) {
      out.behavior_names.push_back(cfg.stages[s].name);
      cut.push_back(QuantileCutoff(sorted_z, cfg.stages[s].min_q));
      if (cfg.stages[s].is_target) target_behavior = static_cast<int64_t>(s);
    }
    GNMR_CHECK_GE(target_behavior, 0) << "no target stage flagged";

    int64_t ts = 0;
    std::vector<bool> fired(cfg.stages.size());
    for (const Candidate& c : cands) {
      std::fill(fired.begin(), fired.end(), false);
      for (size_t s = 0; s < cfg.stages.size(); ++s) {
        const FunnelStageSpec& stage = cfg.stages[s];
        int64_t gate = stage.gate_stage == -2
                           ? static_cast<int64_t>(s) - 1
                           : stage.gate_stage;
        if (gate >= 0 && !fired[static_cast<size_t>(gate)] &&
            !rng.Bernoulli(stage.gate_bypass_prob)) {
          continue;
        }
        double zs =
            BlendedAffinity(world, static_cast<int64_t>(s),
                            stage.subspace_blend, c.z, c.user, c.item) +
            rng.Normal(0.0f, static_cast<float>(stage.extra_noise));
        if (zs < cut[s]) continue;
        if (!rng.Bernoulli(stage.keep_prob)) continue;
        fired[s] = true;
        out.interactions.push_back(
            {c.user, c.item, static_cast<int64_t>(s),
             ts * static_cast<int64_t>(cfg.stages.size()) +
                 static_cast<int64_t>(s)});
      }
      ++ts;
    }
  }

  out.target_behavior = target_behavior;

  // Guarantee min_target_per_user: promote the user's highest-affinity
  // candidates (and, for funnels, their whole gate chain).
  if (cfg.min_target_per_user > 0) {
    std::vector<std::vector<const Candidate*>> per_user(
        static_cast<size_t>(cfg.num_users));
    for (const Candidate& c : cands) {
      per_user[static_cast<size_t>(c.user)].push_back(&c);
    }
    std::vector<std::vector<int64_t>> user_target_items(
        static_cast<size_t>(cfg.num_users));
    // For the ratings style, promotion must CONVERT an existing bucket
    // event (ratings partition the interactions, so a pair cannot carry
    // two buckets). Track each pair's bucket-event index.
    std::map<std::pair<int64_t, int64_t>, size_t> bucket_event_of;
    for (size_t i = 0; i < out.interactions.size(); ++i) {
      const graph::Interaction& e = out.interactions[i];
      if (e.behavior == target_behavior) {
        user_target_items[static_cast<size_t>(e.user)].push_back(e.item);
      }
      if (cfg.style == SyntheticConfig::Style::kRatings &&
          e.behavior < static_cast<int64_t>(cfg.buckets.size())) {
        bucket_event_of[{e.user, e.item}] = i;
      }
    }
    int64_t ts = static_cast<int64_t>(cands.size()) *
                 std::max<int64_t>(1, out.num_behaviors());
    for (int64_t u = 0; u < cfg.num_users; ++u) {
      auto& have = user_target_items[static_cast<size_t>(u)];
      if (static_cast<int64_t>(have.size()) >= cfg.min_target_per_user) {
        continue;
      }
      auto& cand_list = per_user[static_cast<size_t>(u)];
      std::sort(cand_list.begin(), cand_list.end(),
                [](const Candidate* a, const Candidate* b) {
                  return a->z > b->z;
                });
      for (const Candidate* c : cand_list) {
        if (static_cast<int64_t>(have.size()) >= cfg.min_target_per_user) {
          break;
        }
        if (std::find(have.begin(), have.end(), c->item) != have.end()) {
          continue;
        }
        if (cfg.style == SyntheticConfig::Style::kFunnel) {
          // Emit the full gate chain ending at the target stage.
          int64_t s = target_behavior;
          std::vector<int64_t> chain;
          while (s >= 0) {
            chain.push_back(s);
            const FunnelStageSpec& st = cfg.stages[static_cast<size_t>(s)];
            s = st.gate_stage == -2 ? s - 1 : st.gate_stage;
          }
          std::reverse(chain.begin(), chain.end());
          for (int64_t b : chain) {
            out.interactions.push_back({u, c->item, b, ts++});
          }
        } else {
          auto it = bucket_event_of.find({u, c->item});
          if (it != bucket_event_of.end()) {
            out.interactions[it->second].behavior = target_behavior;
          } else {
            out.interactions.push_back({u, c->item, target_behavior, ts++});
          }
        }
        have.push_back(c->item);
      }
    }
  }
  return out;
}

SyntheticConfig MovieLensLike(double scale, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "ml10m-like";
  cfg.num_users = std::max<int64_t>(50, static_cast<int64_t>(900 * scale));
  cfg.num_items = std::max<int64_t>(40, static_cast<int64_t>(420 * scale));
  cfg.latent_dim = 8;
  cfg.popularity_exponent = 1.0;
  cfg.popularity_weight = 0.12;
  cfg.affinity_noise = 0.25;
  cfg.min_items_per_user = 12;
  cfg.max_items_per_user = 110;
  cfg.seed = seed;
  cfg.style = SyntheticConfig::Style::kRatings;
  // Rating-score partition used by the paper: r<=2 dislike, 2<r<4 neutral,
  // r>=4 like. The quantile masses mirror the MovieLens rating histogram.
  cfg.buckets = {
      {"dislike", 0.00, 0.20, 1.0, false},
      {"neutral", 0.20, 0.78, 1.0, false},
      {"like", 0.78, 1.00, 1.0, true},
  };
  return cfg;
}

SyntheticConfig YelpLike(double scale, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "yelp-like";
  cfg.num_users = std::max<int64_t>(50, static_cast<int64_t>(800 * scale));
  cfg.num_items = std::max<int64_t>(60, static_cast<int64_t>(1000 * scale));
  cfg.latent_dim = 8;
  cfg.popularity_exponent = 0.8;
  cfg.popularity_weight = 0.10;
  cfg.affinity_noise = 0.30;
  cfg.min_items_per_user = 8;
  cfg.max_items_per_user = 70;
  cfg.seed = seed;
  cfg.style = SyntheticConfig::Style::kRatings;
  cfg.buckets = {
      {"dislike", 0.00, 0.20, 1.0, false},
      {"neutral", 0.20, 0.70, 1.0, false},
      {"like", 0.70, 1.00, 1.0, true},
  };
  // Tips happen on venues users feel strongly positive about, with a
  // tip-specific taste component (what people tip about != what they like).
  cfg.extras = {{"tip", 0.60, 0.35, 0.20}};
  return cfg;
}

SyntheticConfig TaobaoLike(double scale, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "taobao-like";
  cfg.num_users = std::max<int64_t>(60, static_cast<int64_t>(1100 * scale));
  cfg.num_items = std::max<int64_t>(80, static_cast<int64_t>(1300 * scale));
  cfg.latent_dim = 8;
  cfg.popularity_exponent = 0.9;  // e-commerce exposure is skewed
  // Popularity drives EXPOSURE (page views) but barely predicts purchase:
  // that is what makes the real Taobao data the hardest of the three.
  cfg.popularity_weight = 0.10;
  cfg.affinity_noise = 0.30;
  cfg.min_items_per_user = 10;
  cfg.max_items_per_user = 80;
  cfg.seed = seed;
  cfg.style = SyntheticConfig::Style::kFunnel;
  // page_view keep_prob < 1 models unlogged views; child-stage bypasses
  // let carts/purchases appear without the logged view, so the funnel is
  // informative but not a perfect superset (nesting ~0.8).
  // Browse interest and purchase intent overlap but are not identical:
  // upper-funnel stages carry a growing own-subspace component.
  cfg.stages = {
      {"page_view", 0.10, 0.25, 0.80, -1, 0.0, 0.50, false},
      {"favorite", 0.55, 0.35, 0.45, 0, 0.30, 0.40, false},
      {"cart", 0.72, 0.40, 0.60, 0, 0.40, 0.30, false},
      {"purchase", 0.88, 0.60, 0.55, 0, 0.50, 0.00, true},
  };
  return cfg;
}

}  // namespace data
}  // namespace gnmr
