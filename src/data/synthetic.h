// Synthetic multi-behavior dataset generators.
//
// The paper evaluates on MovieLens-10M, Yelp and Taobao, which cannot be
// redistributed with this repository. These generators produce statistically
// matched substitutes from a latent-factor ground-truth model (documented in
// DESIGN.md):
//
//   affinity(i,j) = u_i . q_j + w_pop * pop_j + noise
//
// Every behavior type is a different noisy view of the same affinity, so
// auxiliary behaviors carry real signal about the target behavior — the
// property the paper's multi-behavior experiments depend on. Item exposure
// follows a Zipf popularity law, matching the heavy-tailed degree
// distributions of the real datasets.
//
// Two generation styles cover the paper's datasets:
//  * kRatings — every sampled (user, item) pair is a rating, bucketed into
//    mutually exclusive behaviors by affinity quantile (MovieLens: dislike /
//    neutral / like; Yelp adds an "extra" tip behavior fired on
//    high-affinity pairs).
//  * kFunnel — nested engagement stages (Taobao: page-view > favorite >
//    cart > purchase); stage s fires only if its gate stage fired, with
//    fresh per-stage noise so the funnel leaks realistically.
#ifndef GNMR_DATA_SYNTHETIC_H_
#define GNMR_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace gnmr {
namespace data {

/// A mutually exclusive affinity-quantile bucket (ratings style).
struct RatingBucketSpec {
  std::string name;
  /// Bucket covers affinities in quantile range [lo_q, hi_q).
  double lo_q = 0.0;
  double hi_q = 1.0;
  /// Probability an event in this bucket is actually observed.
  double keep_prob = 1.0;
  bool is_target = false;
};

/// An additional non-exclusive behavior (ratings style), e.g. Yelp "tip".
struct ExtraBehaviorSpec {
  std::string name;
  /// Fires only on pairs with affinity quantile >= min_q ...
  double min_q = 0.5;
  /// ... with this probability.
  double prob = 0.3;
  /// Fraction of this behavior's driving signal that lives in its own
  /// latent subspace (0 = purely the shared affinity). Heterogeneous
  /// subspaces are what make behavior-type-aware models (attention, gates)
  /// outperform uniform behavior fusion.
  double subspace_blend = 0.0;
};

/// One stage of an engagement funnel (funnel style).
struct FunnelStageSpec {
  std::string name;
  /// Fires when affinity + fresh noise exceeds this quantile cutoff.
  double min_q = 0.0;
  /// Stddev of the fresh per-stage noise.
  double extra_noise = 0.2;
  /// Probability the stage is observed given it qualifies.
  double keep_prob = 1.0;
  /// Index of the stage that must have fired first; -1 = unconditional
  /// (only valid for stage 0). Defaults to the previous stage.
  int64_t gate_stage = -2;  // -2 = "previous stage" sentinel
  /// Probability the stage may fire even when its gate did not (funnel
  /// leakage: direct purchases, views from other devices, ...).
  double gate_bypass_prob = 0.0;
  /// Fraction of this stage's driving signal living in a stage-specific
  /// latent subspace (browse interest != purchase intent); see
  /// ExtraBehaviorSpec::subspace_blend.
  double subspace_blend = 0.0;
  bool is_target = false;
};

/// Full generator configuration. Behavior ids: ratings style lays out
/// buckets first then extras; funnel style lays out stages in order.
struct SyntheticConfig {
  enum class Style { kRatings, kFunnel };

  std::string name = "synthetic";
  int64_t num_users = 1000;
  int64_t num_items = 800;
  int64_t latent_dim = 8;
  /// Zipf exponent of item exposure popularity (higher = more skewed).
  double popularity_exponent = 1.0;
  /// Weight of (standardised log-) popularity inside the affinity score.
  double popularity_weight = 0.35;
  /// Observation noise added to the base affinity per (user, item) pair.
  double affinity_noise = 0.25;
  /// Candidate-set size per user is log-uniform in [min, max].
  int64_t min_items_per_user = 8;
  int64_t max_items_per_user = 64;
  /// Every user is guaranteed at least this many target events (so a
  /// leave-one-out split retains train signal).
  int64_t min_target_per_user = 2;
  uint64_t seed = 42;
  Style style = Style::kRatings;
  std::vector<RatingBucketSpec> buckets;
  std::vector<ExtraBehaviorSpec> extras;
  std::vector<FunnelStageSpec> stages;
};

/// Generates a dataset from the config. Deterministic in config.seed.
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// MovieLens-10M-shaped preset: 3 rating buckets {dislike, neutral, like},
/// like is the target; items fewer than users; dense per-user profiles.
/// `scale` multiplies user/item counts (1.0 ~ CPU-minutes benchmarks).
SyntheticConfig MovieLensLike(double scale = 1.0, uint64_t seed = 42);

/// Yelp-shaped preset: {tip, dislike, neutral, like}, like is the target;
/// more items than users; sparser profiles.
SyntheticConfig YelpLike(double scale = 1.0, uint64_t seed = 43);

/// Taobao-shaped preset: funnel {page_view, favorite, cart, purchase},
/// purchase is the target and is rare (hardest dataset, as in the paper).
SyntheticConfig TaobaoLike(double scale = 1.0, uint64_t seed = 44);

}  // namespace data
}  // namespace gnmr

#endif  // GNMR_DATA_SYNTHETIC_H_
