// In-memory multi-behavior recommendation dataset: the tensor X of the
// paper (Section II) in event-list form, plus behavior metadata.
#ifndef GNMR_DATA_DATASET_H_
#define GNMR_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/interaction_graph.h"
#include "src/util/status.h"

namespace gnmr {
namespace data {

/// A multi-behavior interaction dataset. Users/items are dense 0-based ids.
struct Dataset {
  /// Display name (e.g. "ml10m-like").
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  /// Behavior type names, index == behavior id (e.g. {"dislike", "neutral",
  /// "like"}).
  std::vector<std::string> behavior_names;
  /// Behavior the recommender is evaluated on ("like" / "purchase").
  int64_t target_behavior = 0;
  /// All observed events.
  std::vector<graph::Interaction> interactions;

  int64_t num_behaviors() const {
    return static_cast<int64_t>(behavior_names.size());
  }

  /// Checks ids are in range, the target exists, and names are non-empty.
  util::Status Validate() const;

  /// Builds the interaction graph over this dataset's events.
  std::shared_ptr<graph::MultiBehaviorGraph> BuildGraph() const;

  /// Number of events under behavior k.
  int64_t CountBehavior(int64_t behavior) const;
};

/// Returns a copy of `dataset` keeping only behaviors with keep[k] == true.
/// Behavior ids are re-indexed densely; the target behavior must be kept.
/// This implements the "w/o <behavior>" variants of Table IV.
Dataset FilterBehaviors(const Dataset& dataset, const std::vector<bool>& keep);

/// Returns a copy keeping only the target behavior ("only like" in
/// Table IV).
Dataset OnlyTargetBehavior(const Dataset& dataset);

}  // namespace data
}  // namespace gnmr

#endif  // GNMR_DATA_DATASET_H_
