// Leave-one-out train/test splitting and the 99-negative evaluation
// candidate protocol (Section IV-A2 of the paper).
#ifndef GNMR_DATA_SPLIT_H_
#define GNMR_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace gnmr {
namespace data {

/// A held-out test positive for one user.
struct EvalInstance {
  int64_t user = 0;
  int64_t positive_item = 0;
};

/// Train events + held-out target-behavior positives.
struct TrainTestSplit {
  Dataset train;
  std::vector<EvalInstance> test;
};

/// Holds out the latest target-behavior interaction of every user with at
/// least `min_target_interactions` target events (so train retains signal).
///
/// `aux_holdout_prob` removes the held-out pair's auxiliary-behavior events
/// from train with the given probability. The synthetic generator has no
/// real time axis, while in the real datasets the auxiliary events of the
/// held-out (latest) target interaction mostly happen in the same future
/// session — leaving them in train would leak a direct flag on the test
/// positive. 0 keeps all auxiliary events (paper-faithful for timestamped
/// real data); benches use 0.75 (see DESIGN.md).
TrainTestSplit LeaveLatestOut(const Dataset& full,
                              int64_t min_target_interactions = 2,
                              double aux_holdout_prob = 0.0,
                              util::Rng* rng = nullptr);

/// The candidate set scored at evaluation time: the positive plus
/// `negatives` items the user never touched under the target behavior.
struct EvalCandidates {
  int64_t user = 0;
  int64_t positive_item = 0;
  std::vector<int64_t> negatives;
};

/// Samples `num_negatives` distinct negatives per test instance, excluding
/// the user's train-time target-behavior items and the held-out positive.
/// Deterministic for a given rng state.
std::vector<EvalCandidates> BuildEvalCandidates(
    const Dataset& train, const std::vector<EvalInstance>& test,
    int64_t num_negatives, util::Rng* rng);

}  // namespace data
}  // namespace gnmr

#endif  // GNMR_DATA_SPLIT_H_
