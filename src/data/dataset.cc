#include "src/data/dataset.h"

#include "src/util/check.h"
#include "src/util/string_util.h"

namespace gnmr {
namespace data {

util::Status Dataset::Validate() const {
  if (num_users <= 0 || num_items <= 0) {
    return util::Status::InvalidArgument("dataset has no users or items");
  }
  if (behavior_names.empty()) {
    return util::Status::InvalidArgument("dataset has no behavior types");
  }
  if (target_behavior < 0 || target_behavior >= num_behaviors()) {
    return util::Status::InvalidArgument(
        util::StrFormat("target behavior %lld out of range",
                        static_cast<long long>(target_behavior)));
  }
  for (const std::string& n : behavior_names) {
    if (n.empty()) {
      return util::Status::InvalidArgument("empty behavior name");
    }
  }
  for (const graph::Interaction& e : interactions) {
    if (e.user < 0 || e.user >= num_users || e.item < 0 ||
        e.item >= num_items || e.behavior < 0 ||
        e.behavior >= num_behaviors()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "interaction out of range: user=%lld item=%lld behavior=%lld",
          static_cast<long long>(e.user), static_cast<long long>(e.item),
          static_cast<long long>(e.behavior)));
    }
  }
  return util::Status::OK();
}

std::shared_ptr<graph::MultiBehaviorGraph> Dataset::BuildGraph() const {
  return std::make_shared<graph::MultiBehaviorGraph>(
      num_users, num_items, num_behaviors(), interactions);
}

int64_t Dataset::CountBehavior(int64_t behavior) const {
  GNMR_CHECK(behavior >= 0 && behavior < num_behaviors());
  int64_t count = 0;
  for (const graph::Interaction& e : interactions) {
    if (e.behavior == behavior) ++count;
  }
  return count;
}

Dataset FilterBehaviors(const Dataset& dataset,
                        const std::vector<bool>& keep) {
  GNMR_CHECK_EQ(static_cast<int64_t>(keep.size()), dataset.num_behaviors());
  GNMR_CHECK(keep[static_cast<size_t>(dataset.target_behavior)])
      << "cannot filter out the target behavior";
  Dataset out;
  out.name = dataset.name + "-filtered";
  out.num_users = dataset.num_users;
  out.num_items = dataset.num_items;
  std::vector<int64_t> remap(keep.size(), -1);
  for (size_t k = 0; k < keep.size(); ++k) {
    if (keep[k]) {
      remap[k] = static_cast<int64_t>(out.behavior_names.size());
      out.behavior_names.push_back(dataset.behavior_names[k]);
    }
  }
  out.target_behavior = remap[static_cast<size_t>(dataset.target_behavior)];
  out.interactions.reserve(dataset.interactions.size());
  for (const graph::Interaction& e : dataset.interactions) {
    if (keep[static_cast<size_t>(e.behavior)]) {
      graph::Interaction copy = e;
      copy.behavior = remap[static_cast<size_t>(e.behavior)];
      out.interactions.push_back(copy);
    }
  }
  return out;
}

Dataset OnlyTargetBehavior(const Dataset& dataset) {
  std::vector<bool> keep(static_cast<size_t>(dataset.num_behaviors()), false);
  keep[static_cast<size_t>(dataset.target_behavior)] = true;
  Dataset out = FilterBehaviors(dataset, keep);
  out.name = dataset.name + "-only-target";
  return out;
}

}  // namespace data
}  // namespace gnmr
