// TSV persistence for datasets, so experiments can run on real exported
// interaction logs as well as on the synthetic generators.
#ifndef GNMR_DATA_LOADER_H_
#define GNMR_DATA_LOADER_H_

#include <string>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace gnmr {
namespace data {

/// File format (tab-separated):
///   gnmr-v1 <name> <num_users> <num_items> <target_behavior> <b1|b2|...>
///   <user> <item> <behavior> <timestamp>
///   ...
/// Lines starting with '#' and blank lines are ignored.
util::Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by SaveDataset; validates it before returning.
util::Result<Dataset> LoadDataset(const std::string& path);

/// Loads a raw triple/quadruple file: `user item behavior [timestamp]` per
/// line, with user/item/behavior as dense 0-based ids. num_users/items are
/// inferred from the max ids; behavior names are supplied by the caller.
util::Result<Dataset> LoadRawTsv(const std::string& path,
                                 std::vector<std::string> behavior_names,
                                 int64_t target_behavior,
                                 const std::string& name = "raw");

}  // namespace data
}  // namespace gnmr

#endif  // GNMR_DATA_LOADER_H_
