// Small string helpers shared across modules.
#ifndef GNMR_UTIL_STRING_UTIL_H_
#define GNMR_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace gnmr {
namespace util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a signed 64-bit integer; whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins elements with `sep` using operator<< formatting.
std::string JoinInts(const std::vector<int64_t>& v, std::string_view sep);

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_STRING_UTIL_H_
