// Invariant-checking macros for programmer errors (out-of-contract calls,
// shape mismatches, broken internal state). These abort with a diagnostic;
// they are NOT for recoverable errors — use util::Status for those.
#ifndef GNMR_UTIL_CHECK_H_
#define GNMR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gnmr {
namespace util {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "GNMR_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream collector so call sites can write GNMR_CHECK(x) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace util
}  // namespace gnmr

/// Aborts with a diagnostic if `cond` is false. Usable as a stream:
///   GNMR_CHECK(i < n) << "index " << i << " out of range " << n;
#define GNMR_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else /* NOLINT */                                                \
    ::gnmr::util::internal::CheckMessageBuilder(__FILE__, __LINE__,  \
                                                "(" #cond ")")

#define GNMR_CHECK_EQ(a, b) GNMR_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define GNMR_CHECK_NE(a, b) GNMR_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define GNMR_CHECK_LT(a, b) GNMR_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define GNMR_CHECK_LE(a, b) GNMR_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define GNMR_CHECK_GT(a, b) GNMR_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define GNMR_CHECK_GE(a, b) GNMR_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

#endif  // GNMR_UTIL_CHECK_H_
