#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace gnmr {
namespace util {

Rng::Rng(uint64_t seed, uint64_t stream) {
  state_ = 0u;
  inc_ = (stream << 1u) | 1u;
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
}

uint32_t Rng::UniformUint32(uint32_t bound) {
  GNMR_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint32_t threshold = (~bound + 1u) % bound;
  for (;;) {
    uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GNMR_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested; compose two draws
    uint64_t r = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
    return static_cast<int64_t>(r);
  }
  if (range <= UINT32_MAX) {
    return lo + static_cast<int64_t>(UniformUint32(static_cast<uint32_t>(range)));
  }
  // Wide range: rejection on 64-bit draws.
  uint64_t threshold = (~range + 1u) % range;
  for (;;) {
    uint64_t r = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
    if (r >= threshold) return lo + static_cast<int64_t>(r % range);
  }
}

float Rng::UniformFloat() {
  // 24 high bits -> [0,1) with full float precision.
  return (NextUint32() >> 8) * (1.0f / 16777216.0f);
}

double Rng::UniformDouble() {
  uint64_t hi = NextUint32();
  uint64_t lo = NextUint32();
  uint64_t bits = ((hi << 32) | lo) >> 11;  // 53 bits
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

float Rng::Uniform(float lo, float hi) {
  return lo + (hi - lo) * UniformFloat();
}

float Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  float u1 = 0.0f;
  do {
    u1 = UniformFloat();
  } while (u1 <= 1e-12f);
  float u2 = UniformFloat();
  float mag = std::sqrt(-2.0f * std::log(u1));
  float two_pi_u2 = 6.28318530717958647692f * u2;
  spare_normal_ = mag * std::sin(two_pi_u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi_u2);
}

float Rng::Normal(float mean, float stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GNMR_CHECK_GE(w, 0.0);
    total += w;
  }
  GNMR_CHECK_GT(total, 0.0) << "Categorical needs a positive total weight";
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t population,
                                                   int64_t n) {
  GNMR_CHECK_GE(population, n);
  GNMR_CHECK_GE(n, 0);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  if (n == 0) return out;
  if (n * 3 >= population) {
    // Dense case: shuffle a full index range and take a prefix.
    std::vector<int64_t> all(static_cast<size_t>(population));
    for (int64_t i = 0; i < population; ++i) all[static_cast<size_t>(i)] = i;
    Shuffle(&all);
    all.resize(static_cast<size_t>(n));
    return all;
  }
  // Sparse case: Floyd's algorithm with linear membership probe (n is small).
  auto contains = [&out](int64_t v) {
    for (int64_t x : out)
      if (x == v) return true;
    return false;
  };
  for (int64_t j = population - n; j < population; ++j) {
    int64_t t = UniformInt(0, j);
    if (!contains(t)) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::Fork() {
  uint64_t seed = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  uint64_t stream = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return Rng(seed, stream | 1u);
}

}  // namespace util
}  // namespace gnmr
