// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used for artifact
// section checksums in model_io. Software table implementation — artifact
// validation is an offline/load-time path, not a serving hot path.
#ifndef GNMR_UTIL_CRC32_H_
#define GNMR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gnmr {
namespace util {

/// CRC-32 of `size` bytes at `data`. `seed` is a previous Crc32 result,
/// allowing incremental computation over discontiguous buffers:
///   Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b), na + nb).
/// Known answer: Crc32("123456789", 9) == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_CRC32_H_
