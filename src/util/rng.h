// Deterministic pseudo-random number generation (PCG32). Every stochastic
// component in the library (initialisers, samplers, generators, dropout)
// takes an explicit Rng so experiments are reproducible bit-for-bit.
#ifndef GNMR_UTIL_RNG_H_
#define GNMR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gnmr {
namespace util {

/// PCG32 generator (O'Neill 2014): small state, good statistical quality,
/// fully deterministic across platforms for a given seed/stream.
class Rng {
 public:
  /// Creates a generator from a seed and an optional stream id. Two Rngs
  /// with the same seed and different streams produce independent sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Next raw 32-bit value.
  uint32_t NextUint32();

  /// Uniform integer in [0, bound), bias-free via rejection sampling.
  /// Requires bound > 0.
  uint32_t UniformUint32(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Standard normal via Box-Muller (caches the spare value).
  float Normal();

  /// Normal with given mean and stddev.
  float Normal(float mean, float stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index from an (unnormalised) non-negative weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformUint32(static_cast<uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws `n` distinct values uniformly from [0, population), n <= population.
  /// Uses Floyd's algorithm; O(n) expected for n << population.
  std::vector<int64_t> SampleWithoutReplacement(int64_t population, int64_t n);

  /// Forks a child generator with an independent stream derived from this
  /// generator's state; useful for giving each worker its own stream.
  Rng Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_normal_ = false;
  float spare_normal_ = 0.0f;
};

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_RNG_H_
