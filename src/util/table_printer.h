// Aligned plain-text table output used by the bench harnesses to print
// paper-style result tables.
#ifndef GNMR_UTIL_TABLE_PRINTER_H_
#define GNMR_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace gnmr {
namespace util {

/// Accumulates rows of string cells and renders them with aligned columns.
///
///   TablePrinter t({"Model", "HR@10", "NDCG@10"});
///   t.AddRow({"GNMR", "0.857", "0.575"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; its size must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table. Columns are left-aligned for the first column and
  /// right-aligned for the rest (numeric convention).
  std::string ToString() const;

  /// Formats a double with `digits` fractional digits.
  static std::string Num(double v, int digits = 4);

  /// Formats a percentage change such as "-12.3%".
  static std::string Pct(double v, int digits = 1);

 private:
  std::vector<std::string> header_;
  // Sentinel row of size 0 encodes a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_TABLE_PRINTER_H_
