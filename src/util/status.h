// Lightweight Status / Result<T> error handling, in the spirit of
// RocksDB's rocksdb::Status and Arrow's arrow::Result. Used for fallible
// operations (I/O, parsing, user-supplied configuration). Programmer-error
// invariants use GNMR_CHECK (see check.h) instead.
#ifndef GNMR_UTIL_STATUS_H_
#define GNMR_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace gnmr {
namespace util {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kParseError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A Status is either OK or an (code, message) pair describing a failure.
///
/// Typical use:
///   Status s = LoadDataset(path, &out);
///   if (!s.ok()) { LOG(ERROR) << s.ToString(); return s; }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value of type T or an error Status.
///
/// Typical use:
///   Result<Dataset> r = LoadTsv(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so
  /// functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. Intentionally implicit so
  /// functions can `return Status::IOError(...)`. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value access. Requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace gnmr

/// Propagates a non-OK Status from the current function.
#define GNMR_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::gnmr::util::Status _gnmr_status = (expr);    \
    if (!_gnmr_status.ok()) return _gnmr_status;   \
  } while (0)

#endif  // GNMR_UTIL_STATUS_H_
