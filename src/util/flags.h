// Tiny command-line flag parser for bench/example binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
#ifndef GNMR_UTIL_FLAGS_H_
#define GNMR_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gnmr {
namespace util {

/// Parsed command-line flags with typed accessors and defaults.
///
///   Flags flags(argc, argv);
///   int epochs = flags.GetInt("epochs", 20);
///   bool fast = flags.GetBool("fast", false);
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_FLAGS_H_
