// Wall-clock stopwatch for experiment timing.
#ifndef GNMR_UTIL_STOPWATCH_H_
#define GNMR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace gnmr {
namespace util {

/// Starts at construction; ElapsedSeconds()/ElapsedMillis() read the clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Integer nanoseconds from the monotonic clock — the reading latency
  /// accounting feeds both the cumulative total and the histograms, so
  /// means and quantiles agree to the tick (no double round-trip).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_STOPWATCH_H_
