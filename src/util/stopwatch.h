// Wall-clock stopwatch for experiment timing.
#ifndef GNMR_UTIL_STOPWATCH_H_
#define GNMR_UTIL_STOPWATCH_H_

#include <chrono>

namespace gnmr {
namespace util {

/// Starts at construction; ElapsedSeconds()/ElapsedMillis() read the clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_STOPWATCH_H_
