#include "src/util/flags.h"

#include "src/util/string_util.h"

namespace gnmr {
namespace util {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (StartsWith(body, "no-")) {
      values_[body.substr(3)] = "false";
      continue;
    }
    // --name value (if next token is not a flag) else boolean --name.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt64(it->second);
  return parsed.ok() ? parsed.value() : default_value;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? parsed.value() : default_value;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace util
}  // namespace gnmr
