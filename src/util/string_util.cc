#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <sstream>

namespace gnmr {
namespace util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
          s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  int64_t v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end == nullptr || *end != '\0')
    return Status::ParseError("trailing characters in integer: " + buf);
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty float field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("float out of range: " + buf);
  if (end == nullptr || *end != '\0')
    return Status::ParseError("trailing characters in float: " + buf);
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinInts(const std::vector<int64_t>& v, std::string_view sep) {
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << sep;
    os << v[i];
  }
  return os.str();
}

}  // namespace util
}  // namespace gnmr
