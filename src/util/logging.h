// Minimal leveled logging to stderr. Intended for library diagnostics and
// experiment progress lines; not a general-purpose logging framework.
#ifndef GNMR_UTIL_LOGGING_H_
#define GNMR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace gnmr {
namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

// Severity aliases consumed by the GNMR_LOG token-pasting macro.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARNING = LogLevel::kWarning;
inline constexpr LogLevel kERROR = LogLevel::kError;

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace util
}  // namespace gnmr

/// Usage: GNMR_LOG(INFO) << "epoch " << epoch << " loss=" << loss;
#define GNMR_LOG(severity)                                      \
  ::gnmr::util::internal::LogMessage(                           \
      ::gnmr::util::internal::k##severity, __FILE__, __LINE__)

#endif  // GNMR_UTIL_LOGGING_H_
