// Runtime CPU feature probe for the SIMD kernel tier (tensor/backend_simd.cc).
//
// Compile-time ISA macros (__AVX2__/__FMA__) only say what the *binary* was
// allowed to use; whether the *host* can execute those instructions is a
// runtime question. The backend registry consults this probe before exposing
// the vectorized "simd" backend, so a binary built with AVX2 kernels falls
// back to serial loops (with a one-time warning) instead of dying on SIGILL
// when it lands on an older machine.
#ifndef GNMR_UTIL_CPU_FEATURES_H_
#define GNMR_UTIL_CPU_FEATURES_H_

namespace gnmr {
namespace util {

/// Host ISA capabilities, detected once via cpuid (all false on non-x86).
/// The avx512f probe includes the OS XSAVE check, so "true" means the
/// registers are actually usable, not just advertised.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// The host's features; probed on first call and cached for the process.
const CpuFeatures& HostCpuFeatures();

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_CPU_FEATURES_H_
