#include "src/util/cpu_features.h"

namespace gnmr {
namespace util {

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports reads libgcc's cpuid snapshot, which also
    // verifies OS support (XGETBV) for the wide register states, so an
    // avx512f "yes" is safe to act on.
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
    return f;
  }();
  return features;
}

}  // namespace util
}  // namespace gnmr
