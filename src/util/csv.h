// Delimited text (CSV/TSV) reading and writing used by dataset loaders and
// by bench output. Deliberately simple: no quoting support; fields must not
// contain the delimiter.
#ifndef GNMR_UTIL_CSV_H_
#define GNMR_UTIL_CSV_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace gnmr {
namespace util {

/// Reads a delimited file into rows of string fields.
/// Skips empty lines and lines starting with '#'.
Result<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delim);

/// Writes rows of fields joined by `delim`, one row per line.
Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delim);

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, replacing existing content.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_CSV_H_
