#include "src/util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"
#include "src/util/string_util.h"

namespace gnmr {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  GNMR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  GNMR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& os) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      const std::string& cell = row[c];
      size_t pad = widths[c] - cell.size();
      if (c == 0) {
        os << cell << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cell;
      }
      os << " |";
    }
    os << '\n';
  };
  auto render_sep = [&](std::ostringstream& os) {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
    }
    os << '\n';
  };
  std::ostringstream os;
  render_sep(os);
  render_row(header_, os);
  render_sep(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_sep(os);
    } else {
      render_row(row, os);
    }
  }
  render_sep(os);
  return os.str();
}

std::string TablePrinter::Num(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string TablePrinter::Pct(double v, int digits) {
  return StrFormat("%+.*f%%", digits, v);
}

}  // namespace util
}  // namespace gnmr
