#include "src/util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GNMR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace gnmr {
namespace util {

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  // shared_ptr with access to the private ctor.
  std::shared_ptr<MappedFile> file(new MappedFile());
  file->path_ = path;
#if GNMR_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " +
                           std::strerror(errno));
  }
  file->size_ = static_cast<int64_t>(st.st_size);
  if (file->size_ > 0) {
    void* base = ::mmap(nullptr, static_cast<size_t>(file->size_), PROT_READ,
                        MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("cannot mmap " + path + ": " +
                             std::strerror(errno));
    }
    file->data_ = static_cast<const uint8_t*>(base);
    file->mapped_ = true;
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  file->fallback_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file->fallback_.data()), size)) {
    return Status::IOError("cannot read " + path);
  }
  file->size_ = static_cast<int64_t>(size);
  file->data_ = file->fallback_.data();
#endif
  return std::shared_ptr<const MappedFile>(std::move(file));
}

MappedFile::~MappedFile() {
#if GNMR_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), static_cast<size_t>(size_));
  }
#endif
}

}  // namespace util
}  // namespace gnmr
