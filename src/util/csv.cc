#include "src/util/csv.h"

#include <fstream>
#include <sstream>

#include "src/util/string_util.h"

namespace gnmr {
namespace util {

Result<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    rows.push_back(Split(trimmed, delim));
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  return rows;
}

Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delim) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << delim;
      out << row[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read error on " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  out << content;
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return Status::OK();
}

}  // namespace util
}  // namespace gnmr
