// Read-only memory-mapped file. The mapping lives as long as the
// MappedFile object; tensor views over it hold the object via a
// shared_ptr keepalive (tensor/storage.h), so the address range cannot be
// unmapped while any view — e.g. a retired serving snapshot with requests
// still in flight — is alive.
//
// On POSIX the file is mapped MAP_SHARED | PROT_READ: pages are demand-
// faulted from the page cache and shared read-only across every process
// mapping the same artifact, which is what makes N serving processes hold
// one physical copy of the model. On other platforms Open falls back to
// reading the file into heap memory (same interface, no sharing).
#ifndef GNMR_UTIL_MMAP_FILE_H_
#define GNMR_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace gnmr {
namespace util {

class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IOError if the file cannot be
  /// opened, stat'ed or mapped. Empty files map to data() == nullptr,
  /// size() == 0.
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  int64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// True when backed by a real mmap (false on the heap-read fallback).
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  int64_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;  // heap copy on non-POSIX platforms
  std::string path_;
};

}  // namespace util
}  // namespace gnmr

#endif  // GNMR_UTIL_MMAP_FILE_H_
