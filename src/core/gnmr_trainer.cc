#include "src/core/gnmr_trainer.h"

#include <algorithm>

#include "src/tensor/ad_ops.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace gnmr {
namespace core {

GnmrTrainer::GnmrTrainer(const GnmrConfig& config, const data::Dataset& train)
    : config_(config),
      target_behavior_(train.target_behavior),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {
  model_ = std::make_unique<GnmrModel>(config, train);
  negative_sampler_ = std::make_unique<graph::NegativeSampler>(
      &model_->graph(), train.target_behavior);
  optimizer_ = std::make_unique<nn::Adam>(config.learning_rate, 0.9, 0.999,
                                          1e-8, config.weight_decay);
  params_ = model_->Parameters();
  for (int64_t u = 0; u < model_->num_users(); ++u) {
    if (model_->graph().UserDegree(u, train.target_behavior) > 0 &&
        negative_sampler_->NumEligible(u) > 0) {
      trainable_users_.push_back(u);
    }
  }
  GNMR_CHECK(!trainable_users_.empty())
      << "no users with target-behavior positives";
}

EpochStats GnmrTrainer::TrainEpoch() {
  util::Stopwatch timer;
  EpochStats stats;
  stats.epoch = epoch_;

  std::vector<int64_t> order = trainable_users_;
  rng_.Shuffle(&order);

  double loss_sum = 0.0;
  int64_t steps = 0;

  for (size_t start = 0; start < order.size();
       start += static_cast<size_t>(config_.batch_users)) {
    size_t end = std::min(order.size(),
                          start + static_cast<size_t>(config_.batch_users));
    std::vector<int64_t> users, pos_items, neg_items;
    for (size_t i = start; i < end; ++i) {
      int64_t u = order[i];
      std::vector<int64_t> positives =
          model_->graph().ItemsOf(u, target_behavior_);
      if (positives.empty()) continue;
      for (int64_t s = 0; s < config_.positives_per_user; ++s) {
        int64_t pos = positives[static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(positives.size()) - 1))];
        for (int64_t n = 0; n < config_.negatives_per_positive; ++n) {
          users.push_back(u);
          pos_items.push_back(pos);
          neg_items.push_back(negative_sampler_->SampleOne(u, &rng_));
        }
      }
    }
    if (users.empty()) continue;

    std::vector<ad::Var> layers = model_->Propagate();
    ad::Var pos_scores = model_->ScorePairs(layers, users, pos_items);
    ad::Var neg_scores = model_->ScorePairs(layers, users, neg_items);
    ad::Var loss =
        ad::PairwiseHingeLoss(pos_scores, neg_scores, config_.margin);
    GNMR_CHECK(!loss.value().HasNonFinite()) << "loss diverged (NaN/inf)";
    loss_sum += static_cast<double>(loss.value().at(0));
    ++steps;

    ad::Backward(loss);
    if (config_.grad_clip > 0.0) {
      nn::ClipGradNorm(params_, config_.grad_clip);
    }
    stats.grad_norm = nn::GlobalGradNorm(params_);
    optimizer_->Step(params_);
  }

  optimizer_->DecayLearningRate(config_.lr_decay);
  stats.mean_loss = steps > 0 ? loss_sum / static_cast<double>(steps) : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  if (config_.verbose) {
    GNMR_LOG(INFO) << "epoch " << epoch_ << " loss=" << stats.mean_loss
                   << " grad=" << stats.grad_norm << " ("
                   << stats.seconds << "s)";
  }
  ++epoch_;
  return stats;
}

void GnmrTrainer::Train(
    const std::function<void(const EpochStats&)>& on_epoch) {
  for (int64_t e = 0; e < config_.epochs; ++e) {
    EpochStats stats = TrainEpoch();
    if (on_epoch) on_epoch(stats);
  }
}

std::unique_ptr<eval::Scorer> GnmrTrainer::MakeScorer() {
  model_->RefreshInferenceCache();
  return model_->MakeScorer();
}

}  // namespace core
}  // namespace gnmr
