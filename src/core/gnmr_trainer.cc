#include "src/core/gnmr_trainer.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/obs/trace.h"
#include "src/tensor/ad_ops.h"
#include "src/tensor/shard_pool.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace gnmr {
namespace core {

namespace {

/// Producer-ahead bound: how many prepared batches may sit between the
/// sampling thread and the training thread. 2 = classic double buffering
/// plus one slot of slack against bursty batch costs.
constexpr size_t kPipelineDepth = 2;

/// Salt separating the per-batch sampling streams from every other
/// consumer of the config seed (model init, epoch shuffle).
constexpr uint64_t kBatchStreamSalt = 0x51ed270b9f8f2a4bULL;

/// Pool activity between two snapshots, as per-worker busy seconds. The
/// counters are process-global, so concurrent pool users (e.g. a serving
/// thread) are attributed too — epoch stats are diagnostics, not an exact
/// ledger. A worker-count change mid-epoch means the pool was rebuilt and
/// its counters restarted from zero: the delta then reports the NEW
/// pool's full activity, one entry per new-pool worker.
ShardEpochStats ShardDelta(const tensor::ShardPoolStats& before,
                           const tensor::ShardPoolStats& after) {
  // Saturating deltas: if the pool was rebuilt (SetShardWorkers) between
  // the snapshots, its counters restarted from zero — attribute only the
  // new pool's activity instead of wrapping.
  auto delta_of = [](uint64_t b, uint64_t a) { return a >= b ? a - b : a; };
  ShardEpochStats delta;
  delta.workers = after.workers;
  delta.dispatches = delta_of(before.dispatches, after.dispatches);
  delta.tasks = delta_of(before.tasks, after.tasks);
  bool same_pool = before.worker_busy_ns.size() == after.worker_busy_ns.size();
  delta.busy_seconds.reserve(after.worker_busy_ns.size());
  for (size_t w = 0; w < after.worker_busy_ns.size(); ++w) {
    uint64_t b = same_pool ? before.worker_busy_ns[w] : 0;
    delta.busy_seconds.push_back(
        static_cast<double>(delta_of(b, after.worker_busy_ns[w])) * 1e-9);
  }
  return delta;
}

}  // namespace

GnmrTrainer::GnmrTrainer(const GnmrConfig& config, const data::Dataset& train)
    : config_(config),
      target_behavior_(train.target_behavior),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {
  model_ = std::make_unique<GnmrModel>(config, train);
  negative_sampler_ = std::make_unique<graph::NegativeSampler>(
      &model_->graph(), train.target_behavior);
  optimizer_ = std::make_unique<nn::Adam>(config.learning_rate, 0.9, 0.999,
                                          1e-8, config.weight_decay);
  params_ = model_->Parameters();
  for (int64_t u = 0; u < model_->num_users(); ++u) {
    if (model_->graph().UserDegree(u, train.target_behavior) > 0 &&
        negative_sampler_->NumEligible(u) > 0) {
      trainable_users_.push_back(u);
    }
  }
  GNMR_CHECK(!trainable_users_.empty())
      << "no users with target-behavior positives";
}

util::Rng GnmrTrainer::BatchRng(int64_t epoch, int64_t batch_index) const {
  return util::Rng(config_.seed ^ kBatchStreamSalt,
                   (static_cast<uint64_t>(epoch) << 32) |
                       static_cast<uint64_t>(batch_index));
}

GnmrTrainer::TripletBatch GnmrTrainer::BuildBatch(
    const std::vector<int64_t>& order, size_t start, size_t end,
    util::Rng* rng) const {
  // Under the pipelined epoch loop this span lands on the producer
  // thread's ring, so the trace shows sampling overlapping TrainStep.
  GNMR_TRACE_SPAN("train.build_batch");
  TripletBatch batch;
  size_t samples_per_user = static_cast<size_t>(config_.positives_per_user *
                                                config_.negatives_per_positive);
  batch.users.reserve((end - start) * samples_per_user);
  batch.pos_items.reserve((end - start) * samples_per_user);
  batch.neg_items.reserve((end - start) * samples_per_user);
  for (size_t i = start; i < end; ++i) {
    int64_t u = order[i];
    std::vector<int64_t> positives =
        model_->graph().ItemsOf(u, target_behavior_);
    if (positives.empty()) continue;
    for (int64_t s = 0; s < config_.positives_per_user; ++s) {
      int64_t pos = positives[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(positives.size()) - 1))];
      for (int64_t n = 0; n < config_.negatives_per_positive; ++n) {
        batch.users.push_back(u);
        batch.pos_items.push_back(pos);
        batch.neg_items.push_back(negative_sampler_->SampleOne(u, rng));
      }
    }
  }
  return batch;
}

void GnmrTrainer::TrainStep(const TripletBatch& batch, double* loss_sum,
                            int64_t* steps, EpochStats* stats) {
  GNMR_TRACE_SPAN("train.step");
  if (batch.users.empty()) return;
  std::vector<ad::Var> layers = model_->Propagate();
  ad::Var pos_scores = model_->ScorePairs(layers, batch.users,
                                          batch.pos_items);
  ad::Var neg_scores = model_->ScorePairs(layers, batch.users,
                                          batch.neg_items);
  ad::Var loss =
      ad::PairwiseHingeLoss(pos_scores, neg_scores, config_.margin);
  GNMR_CHECK(!loss.value().HasNonFinite()) << "loss diverged (NaN/inf)";
  *loss_sum += static_cast<double>(loss.value().at(0));
  ++*steps;

  ad::Backward(loss);
  if (config_.grad_clip > 0.0) {
    nn::ClipGradNorm(params_, config_.grad_clip);
  }
  stats->grad_norm = nn::GlobalGradNorm(params_);
  optimizer_->Step(params_);
}

EpochStats GnmrTrainer::TrainEpoch() {
  GNMR_TRACE_SPAN("train.epoch");
  util::Stopwatch timer;
  EpochStats stats;
  stats.epoch = epoch_;
  // Per-shard attribution: under the "sharded" backend every propagation
  // pass (each behavior's SpMM plus the dense layer kernels) fans out over
  // the shard pool; the delta of these snapshots is this epoch's per-worker
  // busy time. Reading the stats never instantiates the pool, so the other
  // backends pay nothing.
  tensor::ShardPoolStats shard_before = tensor::GlobalShardPoolStats();

  std::vector<int64_t> order = trainable_users_;
  rng_.Shuffle(&order);

  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t start = 0; start < order.size();
       start += static_cast<size_t>(config_.batch_users)) {
    ranges.emplace_back(start,
                        std::min(order.size(),
                                 start + static_cast<size_t>(
                                             config_.batch_users)));
  }

  double loss_sum = 0.0;
  int64_t steps = 0;

  if (!config_.pipeline_batches || ranges.size() <= 1) {
    for (size_t b = 0; b < ranges.size(); ++b) {
      util::Rng batch_rng = BatchRng(epoch_, static_cast<int64_t>(b));
      TripletBatch batch =
          BuildBatch(order, ranges[b].first, ranges[b].second, &batch_rng);
      TrainStep(batch, &loss_sum, &steps, &stats);
    }
  } else {
    // Two-stage pipeline: the producer samples batch b+1 (read-only graph
    // and sampler state, its own RNG stream) while this thread trains on
    // batch b. Batches arrive in range order through a bounded queue, so
    // optimizer updates happen in exactly the serial-loop order.
    std::mutex mu;
    std::condition_variable queue_has_room;
    std::condition_variable queue_has_batch;
    std::deque<TripletBatch> queue;
    bool producer_done = false;

    std::thread producer([&] {
      for (size_t b = 0; b < ranges.size(); ++b) {
        util::Rng batch_rng = BatchRng(epoch_, static_cast<int64_t>(b));
        TripletBatch batch =
            BuildBatch(order, ranges[b].first, ranges[b].second, &batch_rng);
        std::unique_lock<std::mutex> lock(mu);
        queue_has_room.wait(lock,
                            [&] { return queue.size() < kPipelineDepth; });
        queue.push_back(std::move(batch));
        queue_has_batch.notify_one();
      }
      std::lock_guard<std::mutex> lock(mu);
      producer_done = true;
      queue_has_batch.notify_one();
    });

    for (;;) {
      TripletBatch batch;
      {
        std::unique_lock<std::mutex> lock(mu);
        queue_has_batch.wait(
            lock, [&] { return !queue.empty() || producer_done; });
        if (queue.empty()) break;  // producer_done and drained
        batch = std::move(queue.front());
        queue.pop_front();
      }
      queue_has_room.notify_one();
      TrainStep(batch, &loss_sum, &steps, &stats);
    }
    producer.join();
  }

  optimizer_->DecayLearningRate(config_.lr_decay);
  stats.mean_loss = steps > 0 ? loss_sum / static_cast<double>(steps) : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  stats.shard = ShardDelta(shard_before, tensor::GlobalShardPoolStats());
  if (config_.verbose) {
    GNMR_LOG(INFO) << "epoch " << epoch_ << " loss=" << stats.mean_loss
                   << " grad=" << stats.grad_norm << " ("
                   << stats.seconds << "s)";
    if (stats.shard.dispatches > 0) {
      GNMR_LOG(INFO) << "  shard pool: " << stats.shard.workers
                     << " workers, " << stats.shard.dispatches
                     << " dispatches, " << stats.shard.tasks
                     << " tasks, busy max=" << stats.shard.MaxBusySeconds()
                     << "s total=" << stats.shard.TotalBusySeconds() << "s";
    }
  }
  ++epoch_;
  return stats;
}

void GnmrTrainer::Train(
    const std::function<void(const EpochStats&)>& on_epoch) {
  for (int64_t e = 0; e < config_.epochs; ++e) {
    EpochStats stats = TrainEpoch();
    if (on_epoch) on_epoch(stats);
  }
}

std::unique_ptr<eval::Scorer> GnmrTrainer::MakeScorer() {
  model_->RefreshInferenceCache();
  return model_->MakeScorer();
}

}  // namespace core
}  // namespace gnmr
