// The GNMR model: L stacked propagation layers over the multi-behavior
// interaction graph, with multi-order matching for scoring (Algorithm 1).
#ifndef GNMR_CORE_GNMR_MODEL_H_
#define GNMR_CORE_GNMR_MODEL_H_

#include <memory>
#include <vector>

#include "src/core/gnmr_config.h"
#include "src/core/gnmr_layers.h"
#include "src/data/dataset.h"
#include "src/eval/evaluator.h"
#include "src/nn/embedding.h"
#include "src/nn/module.h"

namespace gnmr {
namespace core {

/// Full GNMR model bound to one training dataset/graph.
class GnmrModel : public nn::Module {
 public:
  /// Builds the graph, the (optionally pre-trained) H^0 embeddings and the
  /// layer stack. `train` is copied into the model's graph; the dataset
  /// itself is not retained.
  GnmrModel(const GnmrConfig& config, const data::Dataset& train);

  /// Runs the L-layer propagation. Returns L+1 tensors: {H^0, ..., H^L},
  /// each [num_nodes, d] over the unified node space [users; items].
  std::vector<ad::Var> Propagate() const;

  /// Multi-order matching: Pr(i,j) = sum_l dot(H_i^(l), H_j^(l)) for the
  /// given (user, item) pairs. `layers` comes from Propagate().
  /// users.size() must equal items.size(); returns [n, 1] scores.
  ad::Var ScorePairs(const std::vector<ad::Var>& layers,
                     const std::vector<int64_t>& users,
                     const std::vector<int64_t>& items) const;

  /// Recomputes and caches the concatenated multi-order embeddings for
  /// inference-time scoring (Score / scorer()).
  void RefreshInferenceCache();

  /// Inference score from the cache; requires RefreshInferenceCache().
  float Score(int64_t user, int64_t item) const;

  /// The cached multi-order embeddings ([num_nodes, width]); requires
  /// RefreshInferenceCache(). Copy it to checkpoint the scoring state.
  const tensor::Tensor& inference_cache() const;

  /// Restores a previously copied inference cache (e.g. the best
  /// validation checkpoint); shape must match this model's cache layout.
  void RestoreInferenceCache(tensor::Tensor cache);

  /// eval::Scorer adapter over the inference cache. The returned object
  /// borrows this model; call RefreshInferenceCache() first.
  std::unique_ptr<eval::Scorer> MakeScorer();

  std::vector<ad::Var> Parameters() const override;

  const GnmrConfig& config() const { return config_; }
  const graph::MultiBehaviorGraph& graph() const { return *graph_; }
  int64_t num_users() const { return graph_->num_users(); }
  int64_t num_items() const { return graph_->num_items(); }

 private:
  GnmrConfig config_;
  std::shared_ptr<graph::MultiBehaviorGraph> graph_;
  std::unique_ptr<nn::Embedding> node_embedding_;  // H^0, [I+J, d]
  std::vector<std::unique_ptr<GnmrLayer>> layers_;
  tensor::Tensor inference_cache_;  // [I+J, (L+1)*d]
  bool cache_valid_ = false;
};

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_GNMR_MODEL_H_
