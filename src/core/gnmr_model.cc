#include "src/core/gnmr_model.h"

#include "src/nn/pretrain.h"
#include "src/tensor/ad_ops.h"
#include "src/tensor/backend.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace core {

namespace {

// eval::Scorer over the model's inference cache.
class CachedScorer : public eval::Scorer {
 public:
  explicit CachedScorer(const GnmrModel* model) : model_(model) {}
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override {
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = model_->Score(user, items[i]);
    }
  }

 private:
  const GnmrModel* model_;
};

}  // namespace

GnmrModel::GnmrModel(const GnmrConfig& config, const data::Dataset& train)
    : config_(config) {
  GNMR_CHECK_EQ(config.embedding_dim % config.num_heads, 0);
  GNMR_CHECK_GE(config.num_layers, 0);
  GNMR_CHECK(train.Validate().ok());
  graph_ = train.BuildGraph();
  util::Rng rng(config.seed);

  if (config.use_pretrain) {
    nn::PretrainConfig pcfg;
    pcfg.dim = config.embedding_dim;
    pcfg.epochs = config.pretrain_epochs;
    nn::PretrainedEmbeddings pre = nn::PretrainEmbeddings(train, pcfg, &rng);
    tensor::Tensor table =
        tensor::ops::ConcatRows({&pre.user, &pre.item});
    // Rescale to the configured init magnitude (the pre-trainer emits
    // 0.1-scale activations) and blend with noise so no two nodes start
    // identical.
    table = tensor::ops::MulScalar(table, config.embedding_init_std / 0.1f);
    tensor::Tensor noise = tensor::Tensor::RandomNormal(
        table.shape(), &rng, 0.0f, 0.2f * config.embedding_init_std);
    node_embedding_ = std::make_unique<nn::Embedding>(
        tensor::ops::Add(table, noise));
  } else {
    node_embedding_ = std::make_unique<nn::Embedding>(
        graph_->num_nodes(), config.embedding_dim, &rng,
        config.embedding_init_std);
  }

  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<GnmrLayer>(config_, graph_.get(),
                                                  &rng));
  }
}

std::vector<ad::Var> GnmrModel::Propagate() const {
  std::vector<ad::Var> out;
  out.reserve(layers_.size() + 1);
  out.push_back(node_embedding_->table());
  for (const auto& layer : layers_) {
    out.push_back(layer->Forward(out.back()));
  }
  return out;
}

ad::Var GnmrModel::ScorePairs(const std::vector<ad::Var>& layers,
                              const std::vector<int64_t>& users,
                              const std::vector<int64_t>& items) const {
  GNMR_CHECK_EQ(users.size(), items.size());
  GNMR_CHECK(!layers.empty());
  std::vector<int64_t> item_nodes;
  item_nodes.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    GNMR_CHECK(users[i] >= 0 && users[i] < num_users());
    GNMR_CHECK(items[i] >= 0 && items[i] < num_items());
    item_nodes.push_back(num_users() + items[i]);
  }
  // Multi-order matching readout (see GnmrConfig::Readout).
  ad::Var multi_order;
  if (config_.readout == GnmrConfig::Readout::kConcat || layers.size() == 1) {
    multi_order = layers.size() == 1 ? layers[0] : ad::ConcatCols(layers);
  } else {
    multi_order = layers[0];
    for (size_t l = 1; l < layers.size(); ++l) {
      multi_order = ad::Add(multi_order, layers[l]);
    }
  }
  ad::Var user_rows = ad::GatherRows(multi_order, users);
  ad::Var item_rows = ad::GatherRows(multi_order, item_nodes);
  return ad::RowDot(user_rows, item_rows);
}

void GnmrModel::RefreshInferenceCache() {
  std::vector<ad::Var> layers = Propagate();
  if (config_.readout == GnmrConfig::Readout::kConcat || layers.size() == 1) {
    std::vector<const tensor::Tensor*> values;
    values.reserve(layers.size());
    for (const ad::Var& l : layers) values.push_back(&l.value());
    inference_cache_ = tensor::ops::ConcatCols(values);
  } else {
    tensor::Tensor sum = layers[0].value();
    for (size_t l = 1; l < layers.size(); ++l) {
      sum = tensor::ops::Add(sum, layers[l].value());
    }
    inference_cache_ = std::move(sum);
  }
  cache_valid_ = true;
}

float GnmrModel::Score(int64_t user, int64_t item) const {
  GNMR_CHECK(cache_valid_) << "call RefreshInferenceCache() before Score()";
  GNMR_CHECK(user >= 0 && user < num_users());
  GNMR_CHECK(item >= 0 && item < num_items());
  int64_t width = inference_cache_.cols();
  const float* u = inference_cache_.data() + user * width;
  const float* v = inference_cache_.data() + (num_users() + item) * width;
  // Same lane-partial association as ServingModel::Score and the serving
  // scans (backend.h), so trainer-side and serving-side evaluation stay
  // bit-identical.
  return static_cast<float>(tensor::LanePartialDot(u, v, width));
}

const tensor::Tensor& GnmrModel::inference_cache() const {
  GNMR_CHECK(cache_valid_) << "call RefreshInferenceCache() first";
  return inference_cache_;
}

void GnmrModel::RestoreInferenceCache(tensor::Tensor cache) {
  GNMR_CHECK_EQ(cache.rank(), 2);
  GNMR_CHECK_EQ(cache.rows(), graph_->num_nodes());
  inference_cache_ = std::move(cache);
  cache_valid_ = true;
}

std::unique_ptr<eval::Scorer> GnmrModel::MakeScorer() {
  GNMR_CHECK(cache_valid_) << "call RefreshInferenceCache() first";
  return std::make_unique<CachedScorer>(this);
}

std::vector<ad::Var> GnmrModel::Parameters() const {
  std::vector<ad::Var> out = node_embedding_->Parameters();
  for (const auto& layer : layers_) {
    auto p = layer->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace core
}  // namespace gnmr
