// Training loop for GNMR (Algorithm 1 of the paper): pairwise hinge loss
// over sampled (user, positive, negative) triplets, Adam with exponential
// learning-rate decay, full-graph propagation per step.
#ifndef GNMR_CORE_GNMR_TRAINER_H_
#define GNMR_CORE_GNMR_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/gnmr_model.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"

namespace gnmr {
namespace core {

/// Per-epoch training diagnostics.
struct EpochStats {
  int64_t epoch = 0;
  double mean_loss = 0.0;
  double grad_norm = 0.0;
  double seconds = 0.0;
};

/// Owns a GnmrModel plus its optimiser and sampling state.
class GnmrTrainer {
 public:
  /// `train` is the training split (target behavior included). The trainer
  /// keeps a copy of the per-user positive lists and the negative sampler.
  GnmrTrainer(const GnmrConfig& config, const data::Dataset& train);

  /// Runs one epoch over all users (shuffled, batched). Returns stats.
  EpochStats TrainEpoch();

  /// Runs config.epochs epochs. `on_epoch` (optional) observes progress.
  void Train(const std::function<void(const EpochStats&)>& on_epoch = {});

  /// Refreshes the model's inference cache and returns a scorer.
  std::unique_ptr<eval::Scorer> MakeScorer();

  GnmrModel& model() { return *model_; }
  const GnmrModel& model() const { return *model_; }

 private:
  GnmrConfig config_;
  std::unique_ptr<GnmrModel> model_;
  std::unique_ptr<graph::NegativeSampler> negative_sampler_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<ad::Var> params_;
  /// Users with at least one target-behavior positive.
  std::vector<int64_t> trainable_users_;
  int64_t target_behavior_ = 0;
  util::Rng rng_;
  int64_t epoch_ = 0;
};

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_GNMR_TRAINER_H_
