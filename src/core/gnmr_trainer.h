// Training loop for GNMR (Algorithm 1 of the paper): pairwise hinge loss
// over sampled (user, positive, negative) triplets, Adam with exponential
// learning-rate decay, full-graph propagation per step.
//
// Batch preparation (positive/negative sampling and index-list assembly)
// is decoupled from the compute pass: each batch is sampled from its own
// seeded RNG stream derived from (seed, epoch, batch index), so with
// GnmrConfig::pipeline_batches a producer thread prepares batch b+1 while
// the consumer runs forward/backward/Adam on batch b — and the loss
// trajectory is bit-identical to the non-pipelined loop.
#ifndef GNMR_CORE_GNMR_TRAINER_H_
#define GNMR_CORE_GNMR_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/gnmr_model.h"
#include "src/graph/negative_sampler.h"
#include "src/nn/optimizer.h"

namespace gnmr {
namespace core {

/// Shard-execution diagnostics for one epoch, snapshotted from the global
/// shard pool (tensor/shard_pool.h). All-zero unless kernels dispatched to
/// the pool during the epoch — i.e. unless the "sharded" backend (or the
/// item-sharded retriever) ran. busy_seconds[w] is worker w's time inside
/// shard task bodies; the spread between min and max is the epoch's load
/// imbalance.
struct ShardEpochStats {
  int64_t workers = 0;
  /// Kernel dispatches that fanned out to the pool.
  uint64_t dispatches = 0;
  /// Shard tasks executed across all workers.
  uint64_t tasks = 0;
  /// Per-worker busy seconds during the epoch.
  std::vector<double> busy_seconds;

  double TotalBusySeconds() const {
    double total = 0.0;
    for (double s : busy_seconds) total += s;
    return total;
  }
  double MaxBusySeconds() const {
    double worst = 0.0;
    for (double s : busy_seconds) worst = s > worst ? s : worst;
    return worst;
  }
};

/// Per-epoch training diagnostics.
struct EpochStats {
  int64_t epoch = 0;
  double mean_loss = 0.0;
  double grad_norm = 0.0;
  double seconds = 0.0;
  /// Shard-pool activity attributed to this epoch (see ShardEpochStats).
  ShardEpochStats shard;
};

/// Alias for callers that track training-run rather than epoch
/// granularity; the record is the same.
using TrainStats = EpochStats;

/// Owns a GnmrModel plus its optimiser and sampling state.
class GnmrTrainer {
 public:
  /// `train` is the training split (target behavior included). The trainer
  /// keeps a copy of the per-user positive lists and the negative sampler.
  GnmrTrainer(const GnmrConfig& config, const data::Dataset& train);

  /// Runs one epoch over all users (shuffled, batched). Returns stats.
  /// With config.pipeline_batches the next batch is sampled on a producer
  /// thread while the current one trains; results are identical either way.
  EpochStats TrainEpoch();

  /// Runs config.epochs epochs. `on_epoch` (optional) observes progress.
  void Train(const std::function<void(const EpochStats&)>& on_epoch = {});

  /// Refreshes the model's inference cache and returns a scorer.
  std::unique_ptr<eval::Scorer> MakeScorer();

  GnmrModel& model() { return *model_; }
  const GnmrModel& model() const { return *model_; }

 private:
  /// One prepared training batch: aligned (user, positive, negative)
  /// triplet columns, ready for ScorePairs.
  struct TripletBatch {
    std::vector<int64_t> users;
    std::vector<int64_t> pos_items;
    std::vector<int64_t> neg_items;
  };

  /// Independent RNG stream for one batch, derived from (config seed,
  /// epoch, batch index) only — execution order and pipelining cannot
  /// change what a batch samples.
  util::Rng BatchRng(int64_t epoch, int64_t batch_index) const;

  /// Samples triplets for order[start, end) (producer stage; touches only
  /// read-only graph/sampler state plus its own RNG).
  TripletBatch BuildBatch(const std::vector<int64_t>& order, size_t start,
                          size_t end, util::Rng* rng) const;

  /// Forward/backward/Adam on one batch (consumer stage). Updates the
  /// running loss sum and step count; records the gradient norm in
  /// `stats`. No-op on an empty batch.
  void TrainStep(const TripletBatch& batch, double* loss_sum, int64_t* steps,
                 EpochStats* stats);

  GnmrConfig config_;
  std::unique_ptr<GnmrModel> model_;
  std::unique_ptr<graph::NegativeSampler> negative_sampler_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<ad::Var> params_;
  /// Users with at least one target-behavior positive.
  std::vector<int64_t> trainable_users_;
  int64_t target_behavior_ = 0;
  /// Epoch-level RNG (user shuffle); batch sampling uses BatchRng streams.
  util::Rng rng_;
  int64_t epoch_ = 0;
};

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_GNMR_TRAINER_H_
