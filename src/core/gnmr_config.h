// Hyperparameters and ablation switches of the GNMR model.
#ifndef GNMR_CORE_GNMR_CONFIG_H_
#define GNMR_CORE_GNMR_CONFIG_H_

#include <cstdint>

#include "src/graph/interaction_graph.h"

namespace gnmr {
namespace core {

/// Configuration mirroring Section IV-A4 of the paper where stated
/// (d = 16, C = 8 memory channels, Adam lr 1e-3, decay 0.96), with
/// documented choices elsewhere.
struct GnmrConfig {
  // ---- Architecture -------------------------------------------------------
  /// Embedding dimension d.
  int64_t embedding_dim = 16;
  /// C: channels of the gated multi-dimensional projection in eta (Eq. 2);
  /// the paper's "latent dimensions in our memory neural module".
  int64_t num_channels = 8;
  /// S: attention heads of the cross-behavior recalibration xi (Eq. 3).
  /// Must divide embedding_dim.
  int64_t num_heads = 2;
  /// L: number of propagation layers (Fig. 3 sweeps 0..3; 2 is default).
  int64_t num_layers = 2;
  /// Neighbor aggregation normalisation. Eq. 2 uses a plain sum (kSum);
  /// symmetric sqrt-degree is the default here for training stability and
  /// accuracy at high degree — DESIGN.md documents the deviation, and kSum
  /// / kMean are tested and supported.
  graph::NeighborNorm neighbor_norm = graph::NeighborNorm::kSqrtDegree;

  /// Multi-order matching readout (Algorithm 1 line 16). kSumLayers scores
  /// with dot(sum_l H^l_u, sum_l H^l_i), which includes cross-order terms
  /// (e.g. H^1_u . H^0_i — the direct auxiliary-edge signal); kConcat
  /// scores with the concatenated per-layer embeddings (NGCF-style, no
  /// cross terms).
  enum class Readout { kSumLayers, kConcat };
  Readout readout = Readout::kConcat;
  /// Hidden width d' of the gate MLP in psi (Eq. 5); 0 = embedding_dim.
  int64_t gate_hidden_dim = 0;

  // ---- Ablation switches (Figure 2) ---------------------------------------
  /// false => GNMR-be: drop the type-specific gated projection eta.
  bool use_type_embedding = true;
  /// false => GNMR-ma: drop the cross-behavior relation attention xi.
  bool use_relation_attention = true;
  /// false => replace the softmax gate psi with a uniform average
  /// (extra ablation beyond the paper).
  bool use_behavior_gate = true;

  // ---- Initialisation ------------------------------------------------------
  /// Autoencoder pre-training of H^0 (Section III-A). false = random init.
  bool use_pretrain = true;
  int64_t pretrain_epochs = 2;
  /// Stddev of the random H^0 init (and scale of the pre-trained H^0).
  /// Larger values shorten the flat-hinge warm-up of deep multiplicative
  /// scoring at the cost of stability; 0.3 works well at bench scales.
  float embedding_init_std = 0.1f;

  // ---- Optimisation (Eq. 7 + Section IV-A4) -------------------------------
  int64_t epochs = 30;
  double learning_rate = 1e-3;
  /// Exponential LR decay applied once per epoch.
  double lr_decay = 0.96;
  /// lambda of Eq. 7, applied as decoupled weight decay.
  double weight_decay = 1e-5;
  /// Hinge margin of Eq. 7.
  float margin = 1.0f;
  /// Users per training step (paper: 32; larger is faster on CPU because
  /// every step pays one full-graph propagation).
  int64_t batch_users = 128;
  /// S of Algorithm 1: positives sampled per user per epoch.
  int64_t positives_per_user = 1;
  /// Negatives sampled per positive.
  int64_t negatives_per_positive = 1;
  /// Global gradient-norm clip; 0 disables.
  double grad_clip = 5.0;
  /// Overlap batch preparation (shuffle slice, negative sampling, index
  /// lists) with the forward/backward/Adam pass of the previous batch on a
  /// producer thread. Batches are sampled from per-batch seeded RNG streams
  /// either way, so the loss trajectory for a fixed seed is identical with
  /// the pipeline on or off.
  bool pipeline_batches = true;

  uint64_t seed = 123;
  /// Log per-epoch loss at INFO level.
  bool verbose = false;
};

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_GNMR_CONFIG_H_
