#include "src/core/gnmr_layers.h"

#include <cmath>

#include "src/nn/init.h"
#include "src/tensor/ad_ops.h"
#include "src/util/check.h"

namespace gnmr {
namespace core {

// ------------------------------------------------------ TypeBehaviorEmbedding

TypeBehaviorEmbedding::TypeBehaviorEmbedding(int64_t dim, int64_t channels,
                                             util::Rng* rng)
    : channels_(channels) {
  GNMR_CHECK_GT(channels, 0);
  w1_ = ad::Var::Param(nn::XavierUniform(dim, channels, rng));
  b1_ = ad::Var::Param(tensor::Tensor({1, channels}));
  w2_.reserve(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    w2_.push_back(ad::Var::Param(nn::XavierUniform(dim, dim, rng)));
  }
}

ad::Var TypeBehaviorEmbedding::Forward(const ad::Var& s) const {
  // alpha = ReLU(s W1 + b1): [N, C]
  ad::Var alpha = ad::Relu(ad::Add(ad::MatMul(s, w1_), b1_));
  ad::Var out;
  for (int64_t c = 0; c < channels_; ++c) {
    // alpha[:, c] broadcasts over the projected embedding.
    ad::Var gate = ad::SliceCols(alpha, c, 1);                  // [N, 1]
    ad::Var proj = ad::MatMul(s, w2_[static_cast<size_t>(c)]);  // [N, d]
    ad::Var term = ad::Mul(proj, gate);
    out = out.defined() ? ad::Add(out, term) : term;
  }
  return out;
}

std::vector<ad::Var> TypeBehaviorEmbedding::Parameters() const {
  std::vector<ad::Var> out = {w1_, b1_};
  out.insert(out.end(), w2_.begin(), w2_.end());
  return out;
}

// -------------------------------------------------- BehaviorRelationAttention

BehaviorRelationAttention::BehaviorRelationAttention(int64_t dim,
                                                     int64_t heads,
                                                     util::Rng* rng)
    : heads_(heads) {
  GNMR_CHECK_GT(heads, 0);
  GNMR_CHECK_EQ(dim % heads, 0) << "heads must divide embedding dim";
  head_dim_ = dim / heads;
  for (int64_t s = 0; s < heads; ++s) {
    q_.push_back(ad::Var::Param(nn::XavierUniform(dim, head_dim_, rng)));
    k_.push_back(ad::Var::Param(nn::XavierUniform(dim, head_dim_, rng)));
    v_.push_back(ad::Var::Param(nn::XavierUniform(dim, head_dim_, rng)));
  }
}

std::vector<ad::Var> BehaviorRelationAttention::Forward(
    const std::vector<ad::Var>& behaviors) const {
  GNMR_CHECK(!behaviors.empty());
  int64_t num_k = static_cast<int64_t>(behaviors.size());
  float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // Pre-project every behavior embedding under every head.
  std::vector<std::vector<ad::Var>> queries(static_cast<size_t>(heads_));
  std::vector<std::vector<ad::Var>> keys(static_cast<size_t>(heads_));
  std::vector<std::vector<ad::Var>> values(static_cast<size_t>(heads_));
  for (int64_t s = 0; s < heads_; ++s) {
    for (int64_t k = 0; k < num_k; ++k) {
      const ad::Var& h = behaviors[static_cast<size_t>(k)];
      queries[static_cast<size_t>(s)].push_back(
          ad::MatMul(h, q_[static_cast<size_t>(s)]));
      keys[static_cast<size_t>(s)].push_back(
          ad::MatMul(h, k_[static_cast<size_t>(s)]));
      values[static_cast<size_t>(s)].push_back(
          ad::MatMul(h, v_[static_cast<size_t>(s)]));
    }
  }

  std::vector<ad::Var> out;
  out.reserve(static_cast<size_t>(num_k));
  for (int64_t k = 0; k < num_k; ++k) {
    std::vector<ad::Var> head_msgs;
    head_msgs.reserve(static_cast<size_t>(heads_));
    for (int64_t s = 0; s < heads_; ++s) {
      // beta^s_{k,k'} per node: [N, K] logits.
      std::vector<ad::Var> logit_cols;
      logit_cols.reserve(static_cast<size_t>(num_k));
      for (int64_t kp = 0; kp < num_k; ++kp) {
        ad::Var dot = ad::RowDot(queries[static_cast<size_t>(s)][static_cast<size_t>(k)],
                                 keys[static_cast<size_t>(s)][static_cast<size_t>(kp)]);
        logit_cols.push_back(ad::MulScalar(dot, scale));
      }
      ad::Var attn = ad::SoftmaxRows(ad::ConcatCols(logit_cols));  // [N, K]
      ad::Var msg;
      for (int64_t kp = 0; kp < num_k; ++kp) {
        ad::Var w = ad::SliceCols(attn, kp, 1);  // [N, 1]
        ad::Var term =
            ad::Mul(values[static_cast<size_t>(s)][static_cast<size_t>(kp)], w);
        msg = msg.defined() ? ad::Add(msg, term) : term;
      }
      head_msgs.push_back(msg);  // [N, d/S]
    }
    // Concatenate heads, then residual back to the type-specific embedding
    // (the element-wise addition of Section III-B).
    ad::Var recalibrated = ad::ConcatCols(head_msgs);  // [N, d]
    out.push_back(ad::Add(recalibrated, behaviors[static_cast<size_t>(k)]));
  }
  return out;
}

std::vector<ad::Var> BehaviorRelationAttention::Parameters() const {
  std::vector<ad::Var> out;
  out.insert(out.end(), q_.begin(), q_.end());
  out.insert(out.end(), k_.begin(), k_.end());
  out.insert(out.end(), v_.begin(), v_.end());
  return out;
}

// --------------------------------------------------------------- BehaviorGate

BehaviorGate::BehaviorGate(int64_t dim, int64_t hidden_dim, util::Rng* rng) {
  GNMR_CHECK_GT(hidden_dim, 0);
  w3_ = ad::Var::Param(nn::XavierUniform(dim, hidden_dim, rng));
  b2_ = ad::Var::Param(tensor::Tensor({1, hidden_dim}));
  w2_ = ad::Var::Param(nn::XavierUniform(hidden_dim, 1, rng));
  b3_ = ad::Var::Param(tensor::Tensor({1, 1}));
}

ad::Var BehaviorGate::Forward(const std::vector<ad::Var>& behaviors) const {
  GNMR_CHECK(!behaviors.empty());
  int64_t num_k = static_cast<int64_t>(behaviors.size());
  std::vector<ad::Var> logit_cols;
  logit_cols.reserve(static_cast<size_t>(num_k));
  for (const ad::Var& h : behaviors) {
    ad::Var hidden = ad::Relu(ad::Add(ad::MatMul(h, w3_), b2_));  // [N, d']
    logit_cols.push_back(ad::Add(ad::MatMul(hidden, w2_), b3_));  // [N, 1]
  }
  ad::Var gate = ad::SoftmaxRows(ad::ConcatCols(logit_cols));  // [N, K]
  ad::Var out;
  for (int64_t k = 0; k < num_k; ++k) {
    ad::Var w = ad::SliceCols(gate, k, 1);
    ad::Var term = ad::Mul(behaviors[static_cast<size_t>(k)], w);
    out = out.defined() ? ad::Add(out, term) : term;
  }
  return out;
}

std::vector<ad::Var> BehaviorGate::Parameters() const {
  return {w3_, b2_, w2_, b3_};
}

// ------------------------------------------------------------------ GnmrLayer

GnmrLayer::GnmrLayer(const GnmrConfig& config,
                     const graph::MultiBehaviorGraph* graph, util::Rng* rng)
    : config_(&config), graph_(graph) {
  GNMR_CHECK(graph != nullptr);
  int64_t d = config.embedding_dim;
  if (config.use_type_embedding) {
    type_embedding_ =
        std::make_unique<TypeBehaviorEmbedding>(d, config.num_channels, rng);
  }
  if (config.use_relation_attention) {
    relation_attn_ =
        std::make_unique<BehaviorRelationAttention>(d, config.num_heads, rng);
  }
  if (config.use_behavior_gate) {
    int64_t hidden = config.gate_hidden_dim > 0 ? config.gate_hidden_dim : d;
    gate_ = std::make_unique<BehaviorGate>(d, hidden, rng);
  }
}

ad::Var GnmrLayer::Forward(const ad::Var& h) const {
  int64_t num_k = graph_->num_behaviors();
  std::vector<ad::Var> per_behavior;
  per_behavior.reserve(static_cast<size_t>(num_k));
  for (int64_t k = 0; k < num_k; ++k) {
    const graph::SparseOp* adj =
        graph_->UnifiedAdjacency(k, config_->neighbor_norm);
    ad::Var summary = ad::Spmm(&adj->forward, &adj->backward, h);
    per_behavior.push_back(type_embedding_ ? type_embedding_->Forward(summary)
                                           : summary);
  }
  if (relation_attn_) {
    per_behavior = relation_attn_->Forward(per_behavior);
  }
  if (gate_) {
    return gate_->Forward(per_behavior);
  }
  // Ablation fallback: uniform average across behavior types.
  ad::Var sum;
  for (const ad::Var& b : per_behavior) {
    sum = sum.defined() ? ad::Add(sum, b) : b;
  }
  return ad::MulScalar(sum, 1.0f / static_cast<float>(num_k));
}

std::vector<ad::Var> GnmrLayer::Parameters() const {
  std::vector<ad::Var> out;
  auto append = [&out](const nn::Module* m) {
    if (m == nullptr) return;
    auto p = m->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  };
  append(type_embedding_.get());
  append(relation_attn_.get());
  append(gate_.get());
  return out;
}

}  // namespace core
}  // namespace gnmr
