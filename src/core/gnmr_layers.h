// The three building blocks of one GNMR propagation layer (Section III):
//
//   eta  (Eq. 2)  TypeBehaviorEmbedding — gated C-channel projection of the
//                 per-behavior neighborhood summary ("memory" module).
//   xi   (Eq. 3)  BehaviorRelationAttention — multi-head dot-product
//                 attention across the K behavior types at every node,
//                 with residual.
//   psi  (Eq. 4-5) BehaviorGate — softmax gating network fusing the K
//                 recalibrated type-specific embeddings.
//
// GnmrLayer wires them together over the unified [users; items] node space.
#ifndef GNMR_CORE_GNMR_LAYERS_H_
#define GNMR_CORE_GNMR_LAYERS_H_

#include <memory>
#include <vector>

#include "src/core/gnmr_config.h"
#include "src/graph/interaction_graph.h"
#include "src/nn/module.h"
#include "src/util/rng.h"

namespace gnmr {
namespace core {

/// eta (Eq. 2): out = sum_c alpha_c * (s W2_c), alpha = ReLU(s W1 + b1),
/// where s is the [N,d] neighborhood summary of one behavior type.
/// Parameters are shared across behavior types, as in the paper's
/// equations (type specificity enters through the per-behavior input).
class TypeBehaviorEmbedding : public nn::Module {
 public:
  TypeBehaviorEmbedding(int64_t dim, int64_t channels, util::Rng* rng);

  /// s: [N, d] -> [N, d].
  ad::Var Forward(const ad::Var& s) const;

  std::vector<ad::Var> Parameters() const override;

 private:
  int64_t channels_;
  ad::Var w1_;                 // [d, C]
  ad::Var b1_;                 // [1, C]
  std::vector<ad::Var> w2_;    // C x [d, d]
};

/// xi (Eq. 3): per node, multi-head attention across the K behavior-type
/// embeddings; output is the concatenated head messages plus a residual
/// connection to the original type-specific embedding.
class BehaviorRelationAttention : public nn::Module {
 public:
  BehaviorRelationAttention(int64_t dim, int64_t heads, util::Rng* rng);

  /// Inputs: K tensors [N, d]. Returns K recalibrated tensors [N, d].
  std::vector<ad::Var> Forward(const std::vector<ad::Var>& behaviors) const;

  std::vector<ad::Var> Parameters() const override;

 private:
  int64_t heads_;
  int64_t head_dim_;
  std::vector<ad::Var> q_;  // S x [d, d/S]
  std::vector<ad::Var> k_;  // S x [d, d/S]
  std::vector<ad::Var> v_;  // S x [d, d/S]
};

/// psi (Eq. 4-5): gamma_k = w2^T ReLU(W3 H_k + b2) + b3; softmax over k;
/// output = sum_k gamma_hat_k * H_k.
class BehaviorGate : public nn::Module {
 public:
  BehaviorGate(int64_t dim, int64_t hidden_dim, util::Rng* rng);

  /// Inputs: K tensors [N, d]. Returns the fused [N, d] embedding.
  ad::Var Forward(const std::vector<ad::Var>& behaviors) const;

  std::vector<ad::Var> Parameters() const override;

 private:
  ad::Var w3_;  // [d, d']
  ad::Var b2_;  // [1, d']
  ad::Var w2_;  // [d', 1]
  ad::Var b3_;  // [1, 1]
};

/// One full GNMR propagation layer over the unified node space.
class GnmrLayer : public nn::Module {
 public:
  /// `graph` must outlive the layer (it owns the cached sparse operators).
  GnmrLayer(const GnmrConfig& config, const graph::MultiBehaviorGraph* graph,
            util::Rng* rng);

  /// H: [N, d] node embeddings -> next-layer [N, d] embeddings.
  ad::Var Forward(const ad::Var& h) const;

  std::vector<ad::Var> Parameters() const override;

 private:
  const GnmrConfig* config_;
  const graph::MultiBehaviorGraph* graph_;
  std::unique_ptr<TypeBehaviorEmbedding> type_embedding_;     // eta
  std::unique_ptr<BehaviorRelationAttention> relation_attn_;  // xi
  std::unique_ptr<BehaviorGate> gate_;                        // psi
};

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_GNMR_LAYERS_H_
