// Serving-oriented model persistence. Training happens offline; what a
// serving path needs is the multi-order node embeddings (the inference
// cache) plus enough metadata to validate compatibility. This module
// writes/reads that state in a self-describing binary format.
#ifndef GNMR_CORE_MODEL_IO_H_
#define GNMR_CORE_MODEL_IO_H_

#include <memory>
#include <string>

#include "src/core/gnmr_model.h"
#include "src/util/status.h"

namespace gnmr {
namespace core {

/// The deployable scoring artifact: multi-order embeddings + shape info.
struct ServingModel {
  int64_t num_users = 0;
  int64_t num_items = 0;
  /// [num_users + num_items, width] multi-order embeddings.
  tensor::Tensor embeddings;

  /// Dot-product score; user/item must be in range.
  float Score(int64_t user, int64_t item) const;

  /// eval::Scorer adapter that BORROWS this object: the scorer must not
  /// outlive it, and this ServingModel must not be moved-from (or
  /// reassigned) while the scorer is in use — either invalidates the
  /// borrowed embeddings and is undefined behavior. For scorers that must
  /// survive independently (serving hot-swap, background evaluation), put
  /// the model in a shared_ptr and use MakeSharedScorer below.
  std::unique_ptr<eval::Scorer> MakeScorer() const;
};

/// eval::Scorer that shares ownership of `model`: valid even after every
/// other handle to the model is dropped. `model` must be non-null.
std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model);

/// Snapshots a trained model's inference cache into a ServingModel.
/// The model must have a fresh inference cache.
ServingModel ExportServingModel(const GnmrModel& model);

/// Binary format: magic "GNMRSM01", then int64 num_users, num_items,
/// width, then row-major float32 embeddings.
util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path);

/// Loads a model written by SaveServingModel; validates header and size.
util::Result<ServingModel> LoadServingModel(const std::string& path);

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_MODEL_IO_H_
