// Serving-oriented model persistence. Training happens offline; what a
// serving path needs is the multi-order node embeddings (the inference
// cache) plus enough metadata to validate compatibility. This module
// writes/reads that state in a self-describing binary format.
//
// Artifact versions:
//   v1 ("GNMRSM01") — header (num_users, num_items, width) + row-major
//     float32 embeddings. Written when the model carries no index; every
//     v1 file ever written keeps loading unchanged.
//   v2 ("GNMRSM02") — the v1 payload followed by an IVF index section:
//     nlist, the [nlist, width] centroid tensor, and CSR item-to-cluster
//     posting lists (offsets + item ids, ascending within each cluster).
//     Written when the model carries an index (see BuildIvfIndex).
//   v3 ("GNMRSM03") — fixed-layout, alignment-friendly container designed
//     for zero-copy loading: magic + int64 header (num_users, num_items,
//     width, section_count) + a section table of (id, offset, length,
//     crc32) entries + the section payloads, each starting at a 64-byte-
//     aligned file offset. Sections: 1 = embeddings, and — when the model
//     carries an index — 2 = IVF centroids, 3 = IVF list offsets,
//     4 = IVF list items, in that order. Because mmap bases are page-
//     aligned, 64-byte file alignment gives 64-byte memory alignment, so
//     LoadServingModelMapped can construct every tensor as a view
//     straight over the mapping (see tensor/storage.h) with O(1) load
//     time. Written by SaveServingModelV3.
//   v4 ("GNMRSM04") — the v3 container with two more sections when the
//     IVF index carries quantized codes (BuildIvfIndex(..., quantize =
//     true)): 5 = int8 posting-list codes ([num_items, width], posting-
//     list position order), 6 = per-row float scales (num_items entries,
//     same order). Same table layout, alignment, checksum and zero-copy
//     rules as v3; section_count is exactly 6. Written by
//     SaveServingModelV3 (which picks the magic from has_codes), and by
//     SaveServingModel when codes are present (quantized state has no
//     v1/v2 encoding).
//   v5 ("GNMRSM05") — the v3/v4 container with three more sections when
//     the model carries an HNSW graph (BuildHnswIndex): 7 = graph metadata
//     (int64[4]: m, ef_construction, entry_point, num_levels), 8 = the
//     per-level CSR neighbor offsets (num_levels * (num_items + 1) int64
//     entries; level l's row for item i sits at l * (num_items + 1) + i,
//     and offsets are monotone across the whole array), 9 = the
//     concatenated neighbor item ids those offsets index. The IVF/code
//     sections 2-6 remain optional and keep their v3/v4 rules, so a v5
//     file holds sections {1,7,8,9}, {1..4,7,8,9} or {1..6,7,8,9}, always
//     in ascending id order. Same alignment, checksum and zero-copy rules;
//     written by SaveServingModelV3 (magic from has_hnsw/has_codes) and by
//     SaveServingModel when a graph is present (no v1/v2 encoding).
#ifndef GNMR_CORE_MODEL_IO_H_
#define GNMR_CORE_MODEL_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/gnmr_model.h"
#include "src/tensor/storage.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"

namespace gnmr {
namespace core {

/// Inverted-file index over the item embedding rows: items are clustered
/// offline (deterministic k-means, tensor/kmeans.h) and the serving path
/// scans only the posting lists of the clusters nearest a user's query
/// vector. Immutable once attached to a ServingModel.
struct IvfIndex {
  /// [nlist, width] cluster centers in the item embedding space.
  tensor::Tensor centroids;
  /// list_offsets[c] .. list_offsets[c+1] delimits cluster c's slice of
  /// list_items; size nlist + 1, list_offsets[nlist] == num_items.
  /// Storage so a mapped artifact can expose the lists as views.
  tensor::Storage<int64_t> list_offsets;
  /// Item ids grouped by cluster, ascending within each cluster; every
  /// catalogue item appears exactly once.
  tensor::Storage<int64_t> list_items;
  /// Optional quantized scan tier (tensor/quantize.h): [num_items, width]
  /// int8 codes in POSTING-LIST POSITION order — codes[pos * width ..)
  /// quantizes the embedding row of item list_items[pos] — so the code
  /// scan streams each probed list contiguously. Empty when the index was
  /// built without quantization.
  tensor::Storage<int8_t> codes;
  /// Per-row dequantization scales, same posting-list position order as
  /// `codes` (num_items entries). scale 0 marks an all-zero row.
  tensor::Storage<float> code_scales;

  int64_t nlist() const {
    return list_offsets.empty()
               ? 0
               : static_cast<int64_t>(list_offsets.size()) - 1;
  }
  int64_t ListSize(int64_t c) const {
    return list_offsets[static_cast<size_t>(c) + 1] -
           list_offsets[static_cast<size_t>(c)];
  }
  bool has_codes() const { return !codes.empty(); }

  /// Aborts unless the index is structurally sound for a catalogue of
  /// `num_items` items with `width`-dim embeddings: monotone offsets
  /// covering exactly one entry per item, in-range ascending items per
  /// list, matching centroid shape.
  void CheckConsistent(int64_t num_items, int64_t width) const;
};

/// Hierarchical navigable-small-world graph over the item embedding rows
/// (serve::HnswRetriever walks it greedily instead of scanning posting
/// lists). Levels are assigned per item by a fixed-seed hash
/// (tensor::kHnswLevelSeed), so the same catalogue always produces the
/// same layer structure; neighbors are selected by the heuristic prune
/// with all distances computed through the backend scan ops, making the
/// whole graph bit-identical on every backend. Immutable once attached.
struct HnswIndex {
  /// Max neighbors per node on levels >= 1; level 0 keeps up to 2*m.
  int64_t m = 0;
  /// Construction beam width the graph was built with (provenance only —
  /// search quality is set per request by ef_search).
  int64_t ef_construction = 0;
  /// Item id the layered descent starts from (a node of the top level).
  int64_t entry_point = 0;
  /// Number of graph layers; level 0 holds every item.
  int64_t num_levels = 0;
  /// Per-level CSR offsets into `neighbors`, num_levels * (num_items + 1)
  /// entries: level l's slice for item i is neighbors[o .. o') with
  /// o = neighbor_offsets[l * (num_items + 1) + i]. Offsets are monotone
  /// across the whole array (level l's last offset equals level l+1's
  /// first), items absent from a level simply have an empty slice.
  /// Storage so a mapped artifact can expose the graph as views.
  tensor::Storage<int64_t> neighbor_offsets;
  /// Concatenated neighbor item ids, ascending within each node's slice.
  tensor::Storage<int64_t> neighbors;

  /// Begin offset of item `i`'s neighbor slice at `level`.
  int64_t SliceBegin(int64_t level, int64_t num_items, int64_t i) const {
    return neighbor_offsets[static_cast<size_t>(level * (num_items + 1) + i)];
  }

  /// Aborts unless the graph is structurally sound for a catalogue of
  /// `num_items` items: positive m/num_levels, entry point in range,
  /// monotone offsets covering `neighbors` exactly, in-range ascending
  /// neighbor ids with no self-edges, per-level degree caps respected.
  void CheckConsistent(int64_t num_items) const;
};

/// The deployable scoring artifact: multi-order embeddings + shape info,
/// optionally carrying an IVF index for approximate retrieval.
struct ServingModel {
  int64_t num_users = 0;
  int64_t num_items = 0;
  /// [num_users + num_items, width] multi-order embeddings.
  tensor::Tensor embeddings;
  /// Optional IVF index over the item rows; null = exact retrieval only.
  /// Shared so snapshot copies (hot-swap double buffering) stay O(1).
  std::shared_ptr<const IvfIndex> ivf;
  /// Optional HNSW graph over the item rows (core::BuildHnswIndex); may
  /// coexist with the IVF index — each retrieval strategy reads its own.
  std::shared_ptr<const HnswIndex> hnsw;
  /// Non-null when the model was opened via LoadServingModelMapped: the
  /// tensors above are views over this mapping. Each view also holds the
  /// mapping as its keepalive, so the memory stays valid for as long as
  /// any tensor copy lives — this member makes the backing explicit and
  /// queryable (e.g. for serving diagnostics).
  std::shared_ptr<const util::MappedFile> storage_file;

  bool has_ivf() const { return ivf != nullptr; }
  bool has_hnsw() const { return hnsw != nullptr; }
  bool is_mapped() const { return storage_file != nullptr; }

  /// Dot-product score; user/item must be in range.
  float Score(int64_t user, int64_t item) const;

  /// eval::Scorer adapter that BORROWS this object: the scorer must not
  /// outlive it, and this ServingModel must not be moved-from (or
  /// reassigned) while the scorer is in use — either invalidates the
  /// borrowed embeddings and is undefined behavior. For scorers that must
  /// survive independently (serving hot-swap, background evaluation), put
  /// the model in a shared_ptr and use MakeSharedScorer below.
  std::unique_ptr<eval::Scorer> MakeScorer() const;
};

/// eval::Scorer that shares ownership of `model`: valid even after every
/// other handle to the model is dropped. `model` must be non-null.
std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model);

/// Snapshots a trained model's inference cache into a ServingModel.
/// The model must have a fresh inference cache.
ServingModel ExportServingModel(const GnmrModel& model);

/// Clusters the item embedding rows into `nlist` posting lists
/// (deterministic k-means through the active kernel backend) and attaches
/// the index to `model`. nlist <= 0 picks tensor::kIvfDefaultNlist; the
/// value is clamped to the catalogue size. The model must be consistent
/// (embeddings covering num_users + num_items rows). Replaces any index
/// already attached. Offline cost: O(max_iters * num_items * nlist * width).
///
/// quantize = true additionally stores symmetric per-row int8 codes of the
/// posting-list item rows (tensor/quantize.h) so IvfRetriever can run its
/// two-phase quantized scan. Always quantizes when asked — the
/// tensor::kIvfQuantizeMinItems threshold is deployment policy applied by
/// the serving frontends, not by this builder.
util::Status BuildIvfIndex(ServingModel* model, int64_t nlist,
                           bool quantize = false);

/// Builds the HNSW graph over the item embedding rows and attaches it to
/// `model` (replacing any graph already attached; an IVF index on the same
/// model is untouched). m <= 0 picks tensor::kHnswDefaultM,
/// ef_construction <= 0 tensor::kHnswDefaultEfConstruction (both floored
/// at 1 / m respectively after defaulting). The model must be consistent.
///
/// Deterministic by construction: levels come from the fixed-seed per-item
/// hash, items are inserted in ascending id order, every candidate
/// distance is a KernelBackend::QueryDotIndexed score (bit-identical on
/// all backends) ranked under the serving (score desc, id asc) total
/// order, and the heuristic prune breaks its ties the same way — so the
/// same embeddings yield the byte-identical graph on every backend, run
/// to run. Offline cost: O(num_items * ef_construction * m * width).
util::Status BuildHnswIndex(ServingModel* model, int64_t m,
                            int64_t ef_construction);

/// Binary format: see the version notes at the top of this header. Writes
/// v1 when `model` has no IVF index (bit-compatible with old readers) and
/// v2 when it has one. Quantized codes have no v1/v2 encoding, so a model
/// whose index carries codes delegates to the v3/v4 container writer.
util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path);

/// Writes the v3 zero-copy container (see the version notes above), with
/// a CRC32 checksum per section — v4 magic and the two code sections when
/// the index is quantized. Readers of every version accept it via
/// LoadServingModel; LoadServingModelMapped serves it without copying.
util::Status SaveServingModelV3(const ServingModel& model,
                                const std::string& path);

/// Loads a model written by SaveServingModel or SaveServingModelV3 into
/// owned heap storage; validates header, sizes, the structural invariants
/// of the index, and — for v3 — every section checksum.
util::Result<ServingModel> LoadServingModel(const std::string& path);

/// Opens a v3 artifact zero-copy: the file is mmap'ed once and every
/// tensor is constructed as a read-only view over the mapping, which is
/// kept alive by the returned model (and by every copy of its tensors).
/// Load time is O(1) in the embedding-table size — pages fault in on
/// first touch and are shared read-only across processes.
///
/// Section checksums are NOT verified by default (verifying would touch
/// every page and defeat the O(1) load); pass verify_checksums = true to
/// pay one sequential read for the integrity check, or load through
/// LoadServingModel which always verifies. Structural validation of the
/// header, section table and IVF posting lists always runs.
///
/// v1/v2 artifacts are accepted and silently fall back to the owned-
/// storage loader (check is_mapped() on the result).
util::Result<ServingModel> LoadServingModelMapped(
    const std::string& path, bool verify_checksums = false);

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_MODEL_IO_H_
