// Serving-oriented model persistence. Training happens offline; what a
// serving path needs is the multi-order node embeddings (the inference
// cache) plus enough metadata to validate compatibility. This module
// writes/reads that state in a self-describing binary format.
//
// Artifact versions:
//   v1 ("GNMRSM01") — header (num_users, num_items, width) + row-major
//     float32 embeddings. Written when the model carries no index; every
//     v1 file ever written keeps loading unchanged.
//   v2 ("GNMRSM02") — the v1 payload followed by an IVF index section:
//     nlist, the [nlist, width] centroid tensor, and CSR item-to-cluster
//     posting lists (offsets + item ids, ascending within each cluster).
//     Written when the model carries an index (see BuildIvfIndex).
#ifndef GNMR_CORE_MODEL_IO_H_
#define GNMR_CORE_MODEL_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/gnmr_model.h"
#include "src/util/status.h"

namespace gnmr {
namespace core {

/// Inverted-file index over the item embedding rows: items are clustered
/// offline (deterministic k-means, tensor/kmeans.h) and the serving path
/// scans only the posting lists of the clusters nearest a user's query
/// vector. Immutable once attached to a ServingModel.
struct IvfIndex {
  /// [nlist, width] cluster centers in the item embedding space.
  tensor::Tensor centroids;
  /// list_offsets[c] .. list_offsets[c+1] delimits cluster c's slice of
  /// list_items; size nlist + 1, list_offsets[nlist] == num_items.
  std::vector<int64_t> list_offsets;
  /// Item ids grouped by cluster, ascending within each cluster; every
  /// catalogue item appears exactly once.
  std::vector<int64_t> list_items;

  int64_t nlist() const {
    return list_offsets.empty()
               ? 0
               : static_cast<int64_t>(list_offsets.size()) - 1;
  }
  int64_t ListSize(int64_t c) const {
    return list_offsets[static_cast<size_t>(c) + 1] -
           list_offsets[static_cast<size_t>(c)];
  }

  /// Aborts unless the index is structurally sound for a catalogue of
  /// `num_items` items with `width`-dim embeddings: monotone offsets
  /// covering exactly one entry per item, in-range ascending items per
  /// list, matching centroid shape.
  void CheckConsistent(int64_t num_items, int64_t width) const;
};

/// The deployable scoring artifact: multi-order embeddings + shape info,
/// optionally carrying an IVF index for approximate retrieval.
struct ServingModel {
  int64_t num_users = 0;
  int64_t num_items = 0;
  /// [num_users + num_items, width] multi-order embeddings.
  tensor::Tensor embeddings;
  /// Optional IVF index over the item rows; null = exact retrieval only.
  /// Shared so snapshot copies (hot-swap double buffering) stay O(1).
  std::shared_ptr<const IvfIndex> ivf;

  bool has_ivf() const { return ivf != nullptr; }

  /// Dot-product score; user/item must be in range.
  float Score(int64_t user, int64_t item) const;

  /// eval::Scorer adapter that BORROWS this object: the scorer must not
  /// outlive it, and this ServingModel must not be moved-from (or
  /// reassigned) while the scorer is in use — either invalidates the
  /// borrowed embeddings and is undefined behavior. For scorers that must
  /// survive independently (serving hot-swap, background evaluation), put
  /// the model in a shared_ptr and use MakeSharedScorer below.
  std::unique_ptr<eval::Scorer> MakeScorer() const;
};

/// eval::Scorer that shares ownership of `model`: valid even after every
/// other handle to the model is dropped. `model` must be non-null.
std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model);

/// Snapshots a trained model's inference cache into a ServingModel.
/// The model must have a fresh inference cache.
ServingModel ExportServingModel(const GnmrModel& model);

/// Clusters the item embedding rows into `nlist` posting lists
/// (deterministic k-means through the active kernel backend) and attaches
/// the index to `model`. nlist <= 0 picks tensor::kIvfDefaultNlist; the
/// value is clamped to the catalogue size. The model must be consistent
/// (embeddings covering num_users + num_items rows). Replaces any index
/// already attached. Offline cost: O(max_iters * num_items * nlist * width).
util::Status BuildIvfIndex(ServingModel* model, int64_t nlist);

/// Binary format: see the version notes at the top of this header. Writes
/// v1 when `model` has no IVF index (bit-compatible with old readers) and
/// v2 when it has one.
util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path);

/// Loads a model written by SaveServingModel (either version); validates
/// header, sizes and — for v2 — the structural invariants of the index.
util::Result<ServingModel> LoadServingModel(const std::string& path);

}  // namespace core
}  // namespace gnmr

#endif  // GNMR_CORE_MODEL_IO_H_
