#include "src/core/model_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/kmeans.h"
#include "src/tensor/quantize.h"
#include "src/util/check.h"
#include "src/util/crc32.h"

namespace gnmr {
namespace core {

namespace {

constexpr char kMagicV1[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '1'};
constexpr char kMagicV2[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '2'};
constexpr char kMagicV3[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '3'};
constexpr char kMagicV4[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '4'};

// v3 container layout constants. Payload sections start at 64-byte-
// aligned file offsets so that, under a page-aligned mmap base, every
// tensor view is 64-byte-aligned in memory (cache-line / SIMD friendly).
constexpr int64_t kV3Align = 64;
constexpr int64_t kV3HeaderBytes = 8 + 4 * 8;  // magic + 4 int64 fields
constexpr int64_t kV3EntryBytes = 4 * 8;       // id, offset, length, crc

// Section ids, in their mandatory file order.
constexpr int64_t kSecEmbeddings = 1;
constexpr int64_t kSecIvfCentroids = 2;
constexpr int64_t kSecIvfOffsets = 3;
constexpr int64_t kSecIvfItems = 4;
// v4 only: the quantized scan tier (posting-list position order).
constexpr int64_t kSecIvfCodes = 5;
constexpr int64_t kSecIvfScales = 6;

int64_t AlignUp64(int64_t offset) {
  return (offset + kV3Align - 1) / kV3Align * kV3Align;
}

struct SectionEntry {
  int64_t id = 0;
  int64_t offset = 0;
  int64_t length = 0;
  int64_t crc = 0;  // CRC32 of the payload bytes, in the low 32 bits
};

// Borrowing adapter: `keepalive` is null for MakeScorer() (caller
// guarantees the model outlives the scorer) and owns the model for
// MakeSharedScorer().
class ServingScorer : public eval::Scorer {
 public:
  ServingScorer(const ServingModel* model,
                std::shared_ptr<const ServingModel> keepalive)
      : model_(model), keepalive_(std::move(keepalive)) {}
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override {
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = model_->Score(user, items[i]);
    }
  }

 private:
  const ServingModel* model_;
  std::shared_ptr<const ServingModel> keepalive_;
};

template <typename T>
void WritePod(std::ofstream& out, const T* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* data, size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good();
}

// Structural validation shared by LoadServingModel and CheckConsistent;
// returns a message ("" = sound) instead of aborting so the loader can
// surface a ParseError for a corrupt file.
std::string IvfProblem(const IvfIndex& ivf, int64_t num_items,
                       int64_t width) {
  const int64_t nlist = ivf.nlist();
  if (nlist < 1) return "ivf index has no lists";
  if (ivf.centroids.rank() != 2 || ivf.centroids.rows() != nlist ||
      ivf.centroids.cols() != width) {
    return "ivf centroid shape mismatch";
  }
  if (static_cast<int64_t>(ivf.list_items.size()) != num_items) {
    return "ivf posting lists do not cover the catalogue";
  }
  if (ivf.list_offsets.front() != 0 || ivf.list_offsets.back() != num_items) {
    return "ivf offsets do not span [0, num_items]";
  }
  std::vector<bool> seen(static_cast<size_t>(num_items), false);
  for (int64_t c = 0; c < nlist; ++c) {
    const int64_t begin = ivf.list_offsets[static_cast<size_t>(c)];
    const int64_t end = ivf.list_offsets[static_cast<size_t>(c) + 1];
    if (begin > end) return "ivf offsets not monotone";
    // Bound every offset BEFORE walking the list: front()/back() checks
    // alone would let a corrupt intermediate offset index list_items far
    // out of bounds (heap over-read) instead of surfacing a ParseError.
    if (begin < 0 || end > num_items) return "ivf offset out of range";
    for (int64_t p = begin; p < end; ++p) {
      const int64_t item = ivf.list_items[static_cast<size_t>(p)];
      if (item < 0 || item >= num_items) return "ivf item out of range";
      if (seen[static_cast<size_t>(item)]) return "ivf item duplicated";
      seen[static_cast<size_t>(item)] = true;
      if (p > begin && ivf.list_items[static_cast<size_t>(p) - 1] >= item) {
        return "ivf posting list not ascending";
      }
    }
  }
  // Quantized tier: codes and scales travel together, sized for one
  // width-wide code row (plus one scale) per posting-list position.
  const int64_t num_codes = static_cast<int64_t>(ivf.codes.size());
  const int64_t num_scales = static_cast<int64_t>(ivf.code_scales.size());
  if ((num_codes == 0) != (num_scales == 0)) {
    return "ivf codes and scales must be present together";
  }
  if (num_codes != 0) {
    if (num_codes != num_items * width) return "ivf code size mismatch";
    if (num_scales != num_items) return "ivf scale count mismatch";
  }
  return "";
}

// True if the first 8 bytes of `data` (size permitting) carry the v3 or
// v4 container magic — the two formats ParseV3 understands.
bool HasV3FamilyMagic(const uint8_t* data, int64_t size) {
  if (size < static_cast<int64_t>(sizeof(kMagicV3))) return false;
  return std::memcmp(data, kMagicV3, sizeof(kMagicV3)) == 0 ||
         std::memcmp(data, kMagicV4, sizeof(kMagicV4)) == 0;
}

// Parses a v3/v4 container from a contiguous byte range. With
// `copy_into_owned`, tensors are deep-copied into heap storage; otherwise
// they are constructed as views with `keepalive` (the mapping) anchoring
// the memory. Structural validation always runs; payload checksums only
// when `verify_checksums` (they touch every byte).
util::Result<ServingModel> ParseV3(
    const uint8_t* base, int64_t file_size, const std::string& path,
    bool copy_into_owned, bool verify_checksums,
    std::shared_ptr<const util::MappedFile> keepalive) {
  if (file_size < kV3HeaderBytes) {
    return util::Status::ParseError("truncated v3 header in " + path);
  }
  GNMR_CHECK(HasV3FamilyMagic(base, file_size));
  const bool is_v4 = std::memcmp(base, kMagicV4, sizeof(kMagicV4)) == 0;
  int64_t header[4];
  std::memcpy(header, base + 8, sizeof(header));
  ServingModel model;
  model.num_users = header[0];
  model.num_items = header[1];
  const int64_t width = header[2];
  const int64_t section_count = header[3];
  if (model.num_users <= 0 || model.num_items <= 0 || width <= 0) {
    return util::Status::ParseError("invalid dimensions in v3 header");
  }
  // v3: just embeddings, or embeddings plus the three IVF sections. v4:
  // those four plus the two quantized-code sections, always.
  if (is_v4 ? section_count != 6
            : (section_count != 1 && section_count != 4)) {
    return util::Status::ParseError("invalid v3 section count");
  }
  const int64_t table_end = kV3HeaderBytes + section_count * kV3EntryBytes;
  if (file_size < table_end) {
    return util::Status::ParseError("truncated v3 section table in " + path);
  }
  std::vector<SectionEntry> entries(static_cast<size_t>(section_count));
  std::memcpy(entries.data(), base + kV3HeaderBytes,
              static_cast<size_t>(section_count * kV3EntryBytes));

  // The writer lays sections out back-to-back at the next 64-byte-aligned
  // offset, in fixed id order, with nothing after the last one; enforce
  // exactly that, which also rejects trailing bytes.
  int64_t expected_offset = AlignUp64(table_end);
  for (int64_t i = 0; i < section_count; ++i) {
    const SectionEntry& e = entries[static_cast<size_t>(i)];
    if (e.id != i + 1) {
      return util::Status::ParseError("unexpected v3 section id");
    }
    if (e.length < 0 || e.offset != expected_offset ||
        e.offset > file_size - e.length) {
      return util::Status::ParseError("v3 section out of bounds");
    }
    if (e.crc < 0 || e.crc > 0xFFFFFFFFll) {
      return util::Status::ParseError("invalid v3 section crc");
    }
    expected_offset = AlignUp64(e.offset + e.length);
  }
  const SectionEntry& last = entries.back();
  if (last.offset + last.length != file_size) {
    return util::Status::ParseError("trailing bytes in " + path);
  }

  const int64_t rows = model.num_users + model.num_items;
  if (entries[0].length != rows * width * static_cast<int64_t>(sizeof(float))) {
    return util::Status::ParseError("v3 embeddings size mismatch");
  }
  int64_t nlist = 0;
  if (section_count >= 4) {
    const SectionEntry& off = entries[2];
    if (off.length < 2 * static_cast<int64_t>(sizeof(int64_t)) ||
        off.length % static_cast<int64_t>(sizeof(int64_t)) != 0) {
      return util::Status::ParseError("v3 ivf offsets size mismatch");
    }
    nlist = off.length / static_cast<int64_t>(sizeof(int64_t)) - 1;
    if (nlist < 1 || nlist > model.num_items) {
      return util::Status::ParseError("invalid v3 ivf nlist");
    }
    if (entries[1].length !=
        nlist * width * static_cast<int64_t>(sizeof(float))) {
      return util::Status::ParseError("v3 ivf centroids size mismatch");
    }
    if (entries[3].length !=
        model.num_items * static_cast<int64_t>(sizeof(int64_t))) {
      return util::Status::ParseError("v3 ivf items size mismatch");
    }
  }
  if (section_count == 6) {
    if (entries[4].length != model.num_items * width) {
      return util::Status::ParseError("v4 ivf codes size mismatch");
    }
    if (entries[5].length !=
        model.num_items * static_cast<int64_t>(sizeof(float))) {
      return util::Status::ParseError("v4 ivf scales size mismatch");
    }
  }

  if (verify_checksums) {
    for (const SectionEntry& e : entries) {
      const uint32_t got =
          util::Crc32(base + e.offset, static_cast<size_t>(e.length));
      if (got != static_cast<uint32_t>(e.crc)) {
        return util::Status::ParseError(
            "checksum mismatch in section " + std::to_string(e.id) + " of " +
            path);
      }
    }
  }

  const auto float_view = [&](const SectionEntry& e,
                              std::vector<int64_t> shape) {
    const float* p = reinterpret_cast<const float*>(base + e.offset);
    if (copy_into_owned) {
      tensor::Tensor t(std::move(shape));
      std::memcpy(t.data(), p, static_cast<size_t>(e.length));
      return t;
    }
    return tensor::Tensor::FromView(std::move(shape), p, keepalive);
  };
  const auto int_view = [&](const SectionEntry& e) {
    const int64_t* p = reinterpret_cast<const int64_t*>(base + e.offset);
    const int64_t n = e.length / static_cast<int64_t>(sizeof(int64_t));
    if (copy_into_owned) {
      return tensor::Storage<int64_t>(std::vector<int64_t>(p, p + n));
    }
    return tensor::Storage<int64_t>::View(p, n, keepalive);
  };
  const auto i8_view = [&](const SectionEntry& e) {
    const int8_t* p = reinterpret_cast<const int8_t*>(base + e.offset);
    if (copy_into_owned) {
      return tensor::Storage<int8_t>(std::vector<int8_t>(p, p + e.length));
    }
    return tensor::Storage<int8_t>::View(p, e.length, keepalive);
  };
  const auto f32_view = [&](const SectionEntry& e) {
    const float* p = reinterpret_cast<const float*>(base + e.offset);
    const int64_t n = e.length / static_cast<int64_t>(sizeof(float));
    if (copy_into_owned) {
      return tensor::Storage<float>(std::vector<float>(p, p + n));
    }
    return tensor::Storage<float>::View(p, n, keepalive);
  };

  model.embeddings = float_view(entries[0], {rows, width});
  if (section_count >= 4) {
    auto ivf = std::make_shared<IvfIndex>();
    ivf->centroids = float_view(entries[1], {nlist, width});
    ivf->list_offsets = int_view(entries[2]);
    ivf->list_items = int_view(entries[3]);
    if (section_count == 6) {
      ivf->codes = i8_view(entries[4]);
      ivf->code_scales = f32_view(entries[5]);
    }
    const std::string problem = IvfProblem(*ivf, model.num_items, width);
    if (!problem.empty()) {
      return util::Status::ParseError("corrupt ivf index: " + problem);
    }
    model.ivf = std::move(ivf);
  }
  if (!copy_into_owned) model.storage_file = std::move(keepalive);
  return model;
}

}  // namespace

void IvfIndex::CheckConsistent(int64_t num_items, int64_t width) const {
  const std::string problem = IvfProblem(*this, num_items, width);
  GNMR_CHECK(problem.empty()) << problem;
}

float ServingModel::Score(int64_t user, int64_t item) const {
  GNMR_CHECK(user >= 0 && user < num_users);
  GNMR_CHECK(item >= 0 && item < num_items);
  int64_t width = embeddings.cols();
  const float* u = embeddings.data() + user * width;
  const float* v = embeddings.data() + (num_users + item) * width;
  // The lane-partial association (backend.h) — the same contract every
  // serving scan computes, so single scores match scanned scores
  // bit-for-bit.
  return static_cast<float>(tensor::LanePartialDot(u, v, width));
}

std::unique_ptr<eval::Scorer> ServingModel::MakeScorer() const {
  return std::make_unique<ServingScorer>(this, nullptr);
}

std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model) {
  GNMR_CHECK(model != nullptr);
  const ServingModel* raw = model.get();
  return std::make_unique<ServingScorer>(raw, std::move(model));
}

ServingModel ExportServingModel(const GnmrModel& model) {
  ServingModel out;
  out.num_users = model.num_users();
  out.num_items = model.num_items();
  out.embeddings = model.inference_cache().Clone();
  return out;
}

util::Status BuildIvfIndex(ServingModel* model, int64_t nlist,
                           bool quantize) {
  GNMR_CHECK(model != nullptr);
  if (model->embeddings.empty() ||
      model->embeddings.rows() != model->num_users + model->num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  if (nlist <= 0) nlist = tensor::kIvfDefaultNlist;
  nlist = std::min(nlist, model->num_items);

  const int64_t width = model->embeddings.cols();
  // Read through const data(): the model may be view-backed (mmap), in
  // which case the mutable accessor would abort.
  const float* item_rows =
      std::as_const(model->embeddings).data() + model->num_users * width;
  tensor::KMeansOptions options;
  options.max_iters = tensor::kIvfKMeansMaxIters;
  tensor::KMeansResult clusters =
      tensor::KMeansRows(item_rows, model->num_items, width, nlist, options);

  auto ivf = std::make_shared<IvfIndex>();
  ivf->centroids = std::move(clusters.centroids);
  std::vector<int64_t> list_offsets(static_cast<size_t>(nlist) + 1, 0);
  for (int64_t c = 0; c < nlist; ++c) {
    list_offsets[static_cast<size_t>(c) + 1] =
        list_offsets[static_cast<size_t>(c)] +
        clusters.sizes[static_cast<size_t>(c)];
  }
  // Counting sort by cluster: walking items in ascending id order makes
  // each posting list ascending by construction.
  std::vector<int64_t> list_items(static_cast<size_t>(model->num_items));
  std::vector<int64_t> cursor(list_offsets.begin(), list_offsets.end() - 1);
  for (int64_t item = 0; item < model->num_items; ++item) {
    const int64_t c = clusters.assignments[static_cast<size_t>(item)];
    list_items[static_cast<size_t>(cursor[static_cast<size_t>(c)]++)] = item;
  }
  ivf->list_offsets = std::move(list_offsets);
  ivf->list_items = std::move(list_items);
  if (quantize) {
    // Codes live in posting-list position order so the serving scan
    // streams each probed list contiguously: position pos quantizes the
    // embedding row of item list_items[pos].
    std::vector<int8_t> codes(
        static_cast<size_t>(model->num_items * width));
    std::vector<float> scales(static_cast<size_t>(model->num_items));
    for (int64_t pos = 0; pos < model->num_items; ++pos) {
      const int64_t item = ivf->list_items[static_cast<size_t>(pos)];
      scales[static_cast<size_t>(pos)] = tensor::quant::QuantizeRowI8(
          item_rows + item * width, width,
          codes.data() + pos * width);
    }
    ivf->codes = std::move(codes);
    ivf->code_scales = std::move(scales);
  }
  ivf->CheckConsistent(model->num_items, width);
  model->ivf = std::move(ivf);
  return util::Status::OK();
}

util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path) {
  // Quantized codes have no v1/v2 encoding; such models round-trip
  // through the v4 container (which every loader here accepts).
  if (model.has_ivf() && model.ivf->has_codes()) {
    return SaveServingModelV3(model, path);
  }
  GNMR_TRACE_SPAN("io.save");
  if (model.embeddings.empty() ||
      model.embeddings.rows() != model.num_users + model.num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  if (model.has_ivf()) {
    model.ivf->CheckConsistent(model.num_items, model.embeddings.cols());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IOError("cannot open " + path);
  // A model without an index round-trips as v1, byte-identical to what
  // pre-index builds wrote, so their readers keep working.
  out.write(model.has_ivf() ? kMagicV2 : kMagicV1, sizeof(kMagicV1));
  int64_t header[3] = {model.num_users, model.num_items,
                       model.embeddings.cols()};
  WritePod(out, header, 3);
  WritePod(out, model.embeddings.data(),
           static_cast<size_t>(model.embeddings.numel()));
  if (model.has_ivf()) {
    const IvfIndex& ivf = *model.ivf;
    const int64_t nlist = ivf.nlist();
    WritePod(out, &nlist, 1);
    WritePod(out, ivf.centroids.data(),
             static_cast<size_t>(ivf.centroids.numel()));
    WritePod(out, ivf.list_offsets.data(),
             static_cast<size_t>(ivf.list_offsets.size()));
    WritePod(out, ivf.list_items.data(),
             static_cast<size_t>(ivf.list_items.size()));
  }
  out.flush();
  if (!out.good()) return util::Status::IOError("write error on " + path);
  return util::Status::OK();
}

util::Status SaveServingModelV3(const ServingModel& model,
                                const std::string& path) {
  GNMR_TRACE_SPAN("io.save");
  if (model.embeddings.empty() ||
      model.embeddings.rows() != model.num_users + model.num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  const int64_t width = model.embeddings.cols();
  if (model.has_ivf()) model.ivf->CheckConsistent(model.num_items, width);

  struct Payload {
    int64_t id;
    const void* data;
    int64_t length;
  };
  const tensor::Tensor& emb = model.embeddings;
  std::vector<Payload> payloads = {
      {kSecEmbeddings, std::as_const(emb).data(),
       emb.numel() * static_cast<int64_t>(sizeof(float))}};
  if (model.has_ivf()) {
    const IvfIndex& ivf = *model.ivf;
    payloads.push_back(
        {kSecIvfCentroids, std::as_const(ivf.centroids).data(),
         ivf.centroids.numel() * static_cast<int64_t>(sizeof(float))});
    payloads.push_back(
        {kSecIvfOffsets, ivf.list_offsets.data(),
         ivf.list_offsets.size() * static_cast<int64_t>(sizeof(int64_t))});
    payloads.push_back(
        {kSecIvfItems, ivf.list_items.data(),
         ivf.list_items.size() * static_cast<int64_t>(sizeof(int64_t))});
    if (ivf.has_codes()) {
      payloads.push_back({kSecIvfCodes, ivf.codes.data(),
                          static_cast<int64_t>(ivf.codes.size())});
      payloads.push_back(
          {kSecIvfScales, ivf.code_scales.data(),
           static_cast<int64_t>(ivf.code_scales.size() * sizeof(float))});
    }
  }
  const bool quantized = model.has_ivf() && model.ivf->has_codes();

  const int64_t section_count = static_cast<int64_t>(payloads.size());
  std::vector<SectionEntry> entries;
  int64_t offset = AlignUp64(kV3HeaderBytes + section_count * kV3EntryBytes);
  for (const Payload& p : payloads) {
    SectionEntry e;
    e.id = p.id;
    e.offset = offset;
    e.length = p.length;
    e.crc = static_cast<int64_t>(
        util::Crc32(p.data, static_cast<size_t>(p.length)));
    entries.push_back(e);
    offset = AlignUp64(offset + p.length);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IOError("cannot open " + path);
  out.write(quantized ? kMagicV4 : kMagicV3, sizeof(kMagicV3));
  int64_t header[4] = {model.num_users, model.num_items, width,
                       section_count};
  WritePod(out, header, 4);
  WritePod(out, entries.data(), entries.size());
  int64_t pos = kV3HeaderBytes + section_count * kV3EntryBytes;
  static constexpr char kZeros[kV3Align] = {};
  for (size_t i = 0; i < payloads.size(); ++i) {
    const int64_t pad = entries[i].offset - pos;
    GNMR_CHECK(pad >= 0 && pad < kV3Align);
    out.write(kZeros, static_cast<std::streamsize>(pad));
    out.write(static_cast<const char*>(payloads[i].data),
              static_cast<std::streamsize>(payloads[i].length));
    pos = entries[i].offset + entries[i].length;
  }
  out.flush();
  if (!out.good()) return util::Status::IOError("write error on " + path);
  return util::Status::OK();
}

util::Result<ServingModel> LoadServingModelMapped(const std::string& path,
                                                  bool verify_checksums) {
  GNMR_TRACE_SPAN("io.load_mapped");
  auto mapped = util::MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const util::MappedFile> file = std::move(mapped).value();
  if (!HasV3FamilyMagic(file->data(), file->size())) {
    // Pre-v3 artifacts have no alignment guarantees; load them the
    // classic way into owned storage.
    return LoadServingModel(path);
  }
  return ParseV3(file->data(), file->size(), path, /*copy_into_owned=*/false,
                 verify_checksums, file);
}

util::Result<ServingModel> LoadServingModel(const std::string& path) {
  GNMR_TRACE_SPAN("io.load");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IOError("cannot open " + path);
  char magic[8];
  if (!ReadPod(in, magic, sizeof(magic))) {
    return util::Status::ParseError("bad magic in " + path);
  }
  bool has_ivf = false;
  if (HasV3FamilyMagic(reinterpret_cast<const uint8_t*>(magic),
                       static_cast<int64_t>(sizeof(magic)))) {
    // v3/v4 is parsed from a contiguous mapping (same parser as the
    // zero-copy path), then deep-copied into owned storage with every
    // section checksum verified.
    in.close();
    auto mapped = util::MappedFile::Open(path);
    if (!mapped.ok()) return mapped.status();
    std::shared_ptr<const util::MappedFile> file = std::move(mapped).value();
    return ParseV3(file->data(), file->size(), path,
                   /*copy_into_owned=*/true, /*verify_checksums=*/true,
                   nullptr);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    has_ivf = true;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }
  int64_t header[3];
  if (!ReadPod(in, header, 3)) {
    return util::Status::ParseError("truncated header");
  }
  ServingModel model;
  model.num_users = header[0];
  model.num_items = header[1];
  int64_t width = header[2];
  if (model.num_users <= 0 || model.num_items <= 0 || width <= 0) {
    return util::Status::ParseError("invalid dimensions in header");
  }
  int64_t rows = model.num_users + model.num_items;
  model.embeddings = tensor::Tensor({rows, width});
  if (!ReadPod(in, model.embeddings.data(),
               static_cast<size_t>(model.embeddings.numel()))) {
    return util::Status::ParseError("truncated embeddings");
  }
  if (has_ivf) {
    int64_t nlist = 0;
    if (!ReadPod(in, &nlist, 1)) {
      return util::Status::ParseError("truncated ivf header");
    }
    if (nlist < 1 || nlist > model.num_items) {
      return util::Status::ParseError("invalid ivf nlist");
    }
    auto ivf = std::make_shared<IvfIndex>();
    ivf->centroids = tensor::Tensor({nlist, width});
    std::vector<int64_t> list_offsets(static_cast<size_t>(nlist) + 1);
    std::vector<int64_t> list_items(static_cast<size_t>(model.num_items));
    if (!ReadPod(in, ivf->centroids.data(),
                 static_cast<size_t>(ivf->centroids.numel())) ||
        !ReadPod(in, list_offsets.data(), list_offsets.size()) ||
        !ReadPod(in, list_items.data(), list_items.size())) {
      return util::Status::ParseError("truncated ivf index");
    }
    ivf->list_offsets = std::move(list_offsets);
    ivf->list_items = std::move(list_items);
    const std::string problem = IvfProblem(*ivf, model.num_items, width);
    if (!problem.empty()) {
      return util::Status::ParseError("corrupt ivf index: " + problem);
    }
    model.ivf = std::move(ivf);
  }
  // Must be at EOF now.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) return util::Status::ParseError("trailing bytes in " + path);
  return model;
}

}  // namespace core
}  // namespace gnmr
