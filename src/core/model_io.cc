#include "src/core/model_io.h"

#include <cstring>
#include <fstream>

#include "src/util/check.h"

namespace gnmr {
namespace core {

namespace {

constexpr char kMagic[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '1'};

// Borrowing adapter: `keepalive` is null for MakeScorer() (caller
// guarantees the model outlives the scorer) and owns the model for
// MakeSharedScorer().
class ServingScorer : public eval::Scorer {
 public:
  ServingScorer(const ServingModel* model,
                std::shared_ptr<const ServingModel> keepalive)
      : model_(model), keepalive_(std::move(keepalive)) {}
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override {
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = model_->Score(user, items[i]);
    }
  }

 private:
  const ServingModel* model_;
  std::shared_ptr<const ServingModel> keepalive_;
};

}  // namespace

float ServingModel::Score(int64_t user, int64_t item) const {
  GNMR_CHECK(user >= 0 && user < num_users);
  GNMR_CHECK(item >= 0 && item < num_items);
  int64_t width = embeddings.cols();
  const float* u = embeddings.data() + user * width;
  const float* v = embeddings.data() + (num_users + item) * width;
  double acc = 0.0;
  for (int64_t c = 0; c < width; ++c) {
    acc += static_cast<double>(u[c]) * v[c];
  }
  return static_cast<float>(acc);
}

std::unique_ptr<eval::Scorer> ServingModel::MakeScorer() const {
  return std::make_unique<ServingScorer>(this, nullptr);
}

std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model) {
  GNMR_CHECK(model != nullptr);
  const ServingModel* raw = model.get();
  return std::make_unique<ServingScorer>(raw, std::move(model));
}

ServingModel ExportServingModel(const GnmrModel& model) {
  ServingModel out;
  out.num_users = model.num_users();
  out.num_items = model.num_items();
  out.embeddings = model.inference_cache().Clone();
  return out;
}

util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path) {
  if (model.embeddings.empty() ||
      model.embeddings.rows() != model.num_users + model.num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IOError("cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  int64_t header[3] = {model.num_users, model.num_items,
                       model.embeddings.cols()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(model.embeddings.data()),
            static_cast<std::streamsize>(model.embeddings.numel() *
                                         sizeof(float)));
  out.flush();
  if (!out.good()) return util::Status::IOError("write error on " + path);
  return util::Status::OK();
}

util::Result<ServingModel> LoadServingModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IOError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }
  int64_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in.good()) return util::Status::ParseError("truncated header");
  ServingModel model;
  model.num_users = header[0];
  model.num_items = header[1];
  int64_t width = header[2];
  if (model.num_users <= 0 || model.num_items <= 0 || width <= 0) {
    return util::Status::ParseError("invalid dimensions in header");
  }
  int64_t rows = model.num_users + model.num_items;
  model.embeddings = tensor::Tensor({rows, width});
  in.read(reinterpret_cast<char*>(model.embeddings.data()),
          static_cast<std::streamsize>(model.embeddings.numel() *
                                       sizeof(float)));
  if (!in.good()) return util::Status::ParseError("truncated embeddings");
  // Must be at EOF now.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) return util::Status::ParseError("trailing bytes in " + path);
  return model;
}

}  // namespace core
}  // namespace gnmr
