#include "src/core/model_io.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <queue>
#include <utility>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/kmeans.h"
#include "src/tensor/quantize.h"
#include "src/util/check.h"
#include "src/util/crc32.h"

namespace gnmr {
namespace core {

namespace {

constexpr char kMagicV1[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '1'};
constexpr char kMagicV2[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '2'};
constexpr char kMagicV3[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '3'};
constexpr char kMagicV4[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '4'};
constexpr char kMagicV5[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '5'};

// v3 container layout constants. Payload sections start at 64-byte-
// aligned file offsets so that, under a page-aligned mmap base, every
// tensor view is 64-byte-aligned in memory (cache-line / SIMD friendly).
constexpr int64_t kV3Align = 64;
constexpr int64_t kV3HeaderBytes = 8 + 4 * 8;  // magic + 4 int64 fields
constexpr int64_t kV3EntryBytes = 4 * 8;       // id, offset, length, crc

// Section ids, in their mandatory file order.
constexpr int64_t kSecEmbeddings = 1;
constexpr int64_t kSecIvfCentroids = 2;
constexpr int64_t kSecIvfOffsets = 3;
constexpr int64_t kSecIvfItems = 4;
// v4 only: the quantized scan tier (posting-list position order).
constexpr int64_t kSecIvfCodes = 5;
constexpr int64_t kSecIvfScales = 6;
// v5 only: the HNSW graph tier (meta, per-level CSR offsets, neighbors).
constexpr int64_t kSecHnswMeta = 7;
constexpr int64_t kSecHnswOffsets = 8;
constexpr int64_t kSecHnswNeighbors = 9;
constexpr int64_t kSecMaxId = 9;
// The meta section's int64 payload: {m, ef_construction, entry_point,
// num_levels}.
constexpr int64_t kHnswMetaFields = 4;

int64_t AlignUp64(int64_t offset) {
  return (offset + kV3Align - 1) / kV3Align * kV3Align;
}

struct SectionEntry {
  int64_t id = 0;
  int64_t offset = 0;
  int64_t length = 0;
  int64_t crc = 0;  // CRC32 of the payload bytes, in the low 32 bits
};

// Borrowing adapter: `keepalive` is null for MakeScorer() (caller
// guarantees the model outlives the scorer) and owns the model for
// MakeSharedScorer().
class ServingScorer : public eval::Scorer {
 public:
  ServingScorer(const ServingModel* model,
                std::shared_ptr<const ServingModel> keepalive)
      : model_(model), keepalive_(std::move(keepalive)) {}
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override {
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = model_->Score(user, items[i]);
    }
  }

 private:
  const ServingModel* model_;
  std::shared_ptr<const ServingModel> keepalive_;
};

template <typename T>
void WritePod(std::ofstream& out, const T* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* data, size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good();
}

// Structural validation shared by LoadServingModel and CheckConsistent;
// returns a message ("" = sound) instead of aborting so the loader can
// surface a ParseError for a corrupt file.
std::string IvfProblem(const IvfIndex& ivf, int64_t num_items,
                       int64_t width) {
  const int64_t nlist = ivf.nlist();
  if (nlist < 1) return "ivf index has no lists";
  if (ivf.centroids.rank() != 2 || ivf.centroids.rows() != nlist ||
      ivf.centroids.cols() != width) {
    return "ivf centroid shape mismatch";
  }
  if (static_cast<int64_t>(ivf.list_items.size()) != num_items) {
    return "ivf posting lists do not cover the catalogue";
  }
  if (ivf.list_offsets.front() != 0 || ivf.list_offsets.back() != num_items) {
    return "ivf offsets do not span [0, num_items]";
  }
  std::vector<bool> seen(static_cast<size_t>(num_items), false);
  for (int64_t c = 0; c < nlist; ++c) {
    const int64_t begin = ivf.list_offsets[static_cast<size_t>(c)];
    const int64_t end = ivf.list_offsets[static_cast<size_t>(c) + 1];
    if (begin > end) return "ivf offsets not monotone";
    // Bound every offset BEFORE walking the list: front()/back() checks
    // alone would let a corrupt intermediate offset index list_items far
    // out of bounds (heap over-read) instead of surfacing a ParseError.
    if (begin < 0 || end > num_items) return "ivf offset out of range";
    for (int64_t p = begin; p < end; ++p) {
      const int64_t item = ivf.list_items[static_cast<size_t>(p)];
      if (item < 0 || item >= num_items) return "ivf item out of range";
      if (seen[static_cast<size_t>(item)]) return "ivf item duplicated";
      seen[static_cast<size_t>(item)] = true;
      if (p > begin && ivf.list_items[static_cast<size_t>(p) - 1] >= item) {
        return "ivf posting list not ascending";
      }
    }
  }
  // Quantized tier: codes and scales travel together, sized for one
  // width-wide code row (plus one scale) per posting-list position.
  const int64_t num_codes = static_cast<int64_t>(ivf.codes.size());
  const int64_t num_scales = static_cast<int64_t>(ivf.code_scales.size());
  if ((num_codes == 0) != (num_scales == 0)) {
    return "ivf codes and scales must be present together";
  }
  if (num_codes != 0) {
    if (num_codes != num_items * width) return "ivf code size mismatch";
    if (num_scales != num_items) return "ivf scale count mismatch";
  }
  return "";
}

// Structural validation of the HNSW graph, mirroring IvfProblem: returns
// a message ("" = sound) so the loader can surface a ParseError for a
// corrupt neighbor section instead of aborting.
std::string HnswProblem(const HnswIndex& hnsw, int64_t num_items) {
  if (hnsw.m < 1) return "hnsw m invalid";
  if (hnsw.ef_construction < 1) return "hnsw ef_construction invalid";
  if (hnsw.num_levels < 1 ||
      hnsw.num_levels > tensor::kHnswMaxLevel + 1) {
    return "hnsw level count out of range";
  }
  if (hnsw.entry_point < 0 || hnsw.entry_point >= num_items) {
    return "hnsw entry point out of range";
  }
  const int64_t stride = num_items + 1;
  if (static_cast<int64_t>(hnsw.neighbor_offsets.size()) !=
      hnsw.num_levels * stride) {
    return "hnsw offset table size mismatch";
  }
  if (hnsw.neighbor_offsets.front() != 0 ||
      hnsw.neighbor_offsets.back() !=
          static_cast<int64_t>(hnsw.neighbors.size())) {
    return "hnsw offsets do not span the neighbor array";
  }
  const int64_t num_edges = static_cast<int64_t>(hnsw.neighbors.size());
  for (int64_t l = 0; l < hnsw.num_levels; ++l) {
    // Level 0 keeps up to 2*m neighbors per node, upper levels m.
    const int64_t cap = l == 0 ? 2 * hnsw.m : hnsw.m;
    const int64_t base = l * stride;
    // Levels must tile the neighbor array back to back: a gap between one
    // level's end and the next level's start would leave edges no offset
    // references (and monotonicity alone would not catch it).
    if (l > 0 && hnsw.neighbor_offsets[static_cast<size_t>(base)] !=
                     hnsw.neighbor_offsets[static_cast<size_t>(base - 1)]) {
      return "hnsw levels not contiguous";
    }
    for (int64_t i = 0; i < num_items; ++i) {
      const int64_t begin =
          hnsw.neighbor_offsets[static_cast<size_t>(base + i)];
      const int64_t end =
          hnsw.neighbor_offsets[static_cast<size_t>(base + i) + 1];
      if (begin > end) return "hnsw offsets not monotone";
      // Bound every offset BEFORE walking the slice (same over-read guard
      // as the IVF lists).
      if (begin < 0 || end > num_edges) return "hnsw offset out of range";
      if (end - begin > cap) return "hnsw degree over cap";
      for (int64_t p = begin; p < end; ++p) {
        const int64_t nb = hnsw.neighbors[static_cast<size_t>(p)];
        if (nb < 0 || nb >= num_items) return "hnsw neighbor out of range";
        if (nb == i) return "hnsw self edge";
        if (p > begin && hnsw.neighbors[static_cast<size_t>(p) - 1] >= nb) {
          return "hnsw neighbor list not ascending";
        }
      }
    }
  }
  return "";
}

// True if the first 8 bytes of `data` (size permitting) carry the v3, v4
// or v5 container magic — the formats ParseV3 understands.
bool HasV3FamilyMagic(const uint8_t* data, int64_t size) {
  if (size < static_cast<int64_t>(sizeof(kMagicV3))) return false;
  return std::memcmp(data, kMagicV3, sizeof(kMagicV3)) == 0 ||
         std::memcmp(data, kMagicV4, sizeof(kMagicV4)) == 0 ||
         std::memcmp(data, kMagicV5, sizeof(kMagicV5)) == 0;
}

// Parses a v3/v4 container from a contiguous byte range. With
// `copy_into_owned`, tensors are deep-copied into heap storage; otherwise
// they are constructed as views with `keepalive` (the mapping) anchoring
// the memory. Structural validation always runs; payload checksums only
// when `verify_checksums` (they touch every byte).
util::Result<ServingModel> ParseV3(
    const uint8_t* base, int64_t file_size, const std::string& path,
    bool copy_into_owned, bool verify_checksums,
    std::shared_ptr<const util::MappedFile> keepalive) {
  if (file_size < kV3HeaderBytes) {
    return util::Status::ParseError("truncated v3 header in " + path);
  }
  GNMR_CHECK(HasV3FamilyMagic(base, file_size));
  const bool is_v4 = std::memcmp(base, kMagicV4, sizeof(kMagicV4)) == 0;
  const bool is_v5 = std::memcmp(base, kMagicV5, sizeof(kMagicV5)) == 0;
  int64_t header[4];
  std::memcpy(header, base + 8, sizeof(header));
  ServingModel model;
  model.num_users = header[0];
  model.num_items = header[1];
  const int64_t width = header[2];
  const int64_t section_count = header[3];
  if (model.num_users <= 0 || model.num_items <= 0 || width <= 0) {
    return util::Status::ParseError("invalid dimensions in v3 header");
  }
  if (section_count < 1 || section_count > kSecMaxId) {
    return util::Status::ParseError("invalid v3 section count");
  }
  const int64_t table_end = kV3HeaderBytes + section_count * kV3EntryBytes;
  if (file_size < table_end) {
    return util::Status::ParseError("truncated v3 section table in " + path);
  }
  std::vector<SectionEntry> entries(static_cast<size_t>(section_count));
  std::memcpy(entries.data(), base + kV3HeaderBytes,
              static_cast<size_t>(section_count * kV3EntryBytes));

  // The writer lays sections out back-to-back at the next 64-byte-aligned
  // offset, in ascending id order, with nothing after the last one;
  // enforce exactly that, which also rejects trailing bytes. `sec` maps
  // each known id to its entry (null = absent) for the checks below.
  const SectionEntry* sec[kSecMaxId + 1] = {nullptr};
  int64_t expected_offset = AlignUp64(table_end);
  int64_t prev_id = 0;
  for (int64_t i = 0; i < section_count; ++i) {
    const SectionEntry& e = entries[static_cast<size_t>(i)];
    if (e.id <= prev_id || e.id > kSecMaxId) {
      return util::Status::ParseError("unexpected v3 section id");
    }
    prev_id = e.id;
    sec[e.id] = &e;
    if (e.length < 0 || e.offset != expected_offset ||
        e.offset > file_size - e.length) {
      return util::Status::ParseError("v3 section out of bounds");
    }
    if (e.crc < 0 || e.crc > 0xFFFFFFFFll) {
      return util::Status::ParseError("invalid v3 section crc");
    }
    expected_offset = AlignUp64(e.offset + e.length);
  }
  const SectionEntry& last = entries.back();
  if (last.offset + last.length != file_size) {
    return util::Status::ParseError("trailing bytes in " + path);
  }

  // Tier presence: IVF travels as all three sections or none, codes as
  // both or neither (and only on top of IVF), HNSW as all three or none —
  // and the magic must match the content. v3: embeddings, optionally IVF.
  // v4: exactly the six IVF + code sections. v5: an HNSW graph on top of
  // any v3/v4 combination.
  const bool has_ivf_secs = sec[kSecIvfCentroids] != nullptr;
  const bool has_code_secs = sec[kSecIvfCodes] != nullptr;
  const bool has_hnsw_secs = sec[kSecHnswMeta] != nullptr;
  if (sec[kSecEmbeddings] == nullptr ||
      has_ivf_secs != (sec[kSecIvfOffsets] != nullptr) ||
      has_ivf_secs != (sec[kSecIvfItems] != nullptr) ||
      has_code_secs != (sec[kSecIvfScales] != nullptr) ||
      (has_code_secs && !has_ivf_secs) ||
      has_hnsw_secs != (sec[kSecHnswOffsets] != nullptr) ||
      has_hnsw_secs != (sec[kSecHnswNeighbors] != nullptr)) {
    return util::Status::ParseError("incomplete v3 section set");
  }
  if (is_v5 ? !has_hnsw_secs
            : (has_hnsw_secs || (is_v4 != has_code_secs))) {
    return util::Status::ParseError("v3 magic does not match sections");
  }

  const int64_t rows = model.num_users + model.num_items;
  if (sec[kSecEmbeddings]->length !=
      rows * width * static_cast<int64_t>(sizeof(float))) {
    return util::Status::ParseError("v3 embeddings size mismatch");
  }
  int64_t nlist = 0;
  if (has_ivf_secs) {
    const SectionEntry& off = *sec[kSecIvfOffsets];
    if (off.length < 2 * static_cast<int64_t>(sizeof(int64_t)) ||
        off.length % static_cast<int64_t>(sizeof(int64_t)) != 0) {
      return util::Status::ParseError("v3 ivf offsets size mismatch");
    }
    nlist = off.length / static_cast<int64_t>(sizeof(int64_t)) - 1;
    if (nlist < 1 || nlist > model.num_items) {
      return util::Status::ParseError("invalid v3 ivf nlist");
    }
    if (sec[kSecIvfCentroids]->length !=
        nlist * width * static_cast<int64_t>(sizeof(float))) {
      return util::Status::ParseError("v3 ivf centroids size mismatch");
    }
    if (sec[kSecIvfItems]->length !=
        model.num_items * static_cast<int64_t>(sizeof(int64_t))) {
      return util::Status::ParseError("v3 ivf items size mismatch");
    }
  }
  if (has_code_secs) {
    if (sec[kSecIvfCodes]->length != model.num_items * width) {
      return util::Status::ParseError("v4 ivf codes size mismatch");
    }
    if (sec[kSecIvfScales]->length !=
        model.num_items * static_cast<int64_t>(sizeof(float))) {
      return util::Status::ParseError("v4 ivf scales size mismatch");
    }
  }
  int64_t hnsw_meta[kHnswMetaFields] = {0, 0, 0, 0};
  if (has_hnsw_secs) {
    if (sec[kSecHnswMeta]->length !=
        kHnswMetaFields * static_cast<int64_t>(sizeof(int64_t))) {
      return util::Status::ParseError("v5 hnsw meta size mismatch");
    }
    std::memcpy(hnsw_meta, base + sec[kSecHnswMeta]->offset,
                sizeof(hnsw_meta));
    const int64_t num_levels = hnsw_meta[3];
    if (num_levels < 1 || num_levels > tensor::kHnswMaxLevel + 1) {
      return util::Status::ParseError("invalid v5 hnsw level count");
    }
    if (sec[kSecHnswOffsets]->length !=
        num_levels * (model.num_items + 1) *
            static_cast<int64_t>(sizeof(int64_t))) {
      return util::Status::ParseError("v5 hnsw offsets size mismatch");
    }
    if (sec[kSecHnswNeighbors]->length %
            static_cast<int64_t>(sizeof(int64_t)) !=
        0) {
      return util::Status::ParseError("v5 hnsw neighbors size mismatch");
    }
  }

  if (verify_checksums) {
    for (const SectionEntry& e : entries) {
      const uint32_t got =
          util::Crc32(base + e.offset, static_cast<size_t>(e.length));
      if (got != static_cast<uint32_t>(e.crc)) {
        return util::Status::ParseError(
            "checksum mismatch in section " + std::to_string(e.id) + " of " +
            path);
      }
    }
  }

  const auto float_view = [&](const SectionEntry& e,
                              std::vector<int64_t> shape) {
    const float* p = reinterpret_cast<const float*>(base + e.offset);
    if (copy_into_owned) {
      tensor::Tensor t(std::move(shape));
      std::memcpy(t.data(), p, static_cast<size_t>(e.length));
      return t;
    }
    return tensor::Tensor::FromView(std::move(shape), p, keepalive);
  };
  const auto int_view = [&](const SectionEntry& e) {
    const int64_t* p = reinterpret_cast<const int64_t*>(base + e.offset);
    const int64_t n = e.length / static_cast<int64_t>(sizeof(int64_t));
    if (copy_into_owned) {
      return tensor::Storage<int64_t>(std::vector<int64_t>(p, p + n));
    }
    return tensor::Storage<int64_t>::View(p, n, keepalive);
  };
  const auto i8_view = [&](const SectionEntry& e) {
    const int8_t* p = reinterpret_cast<const int8_t*>(base + e.offset);
    if (copy_into_owned) {
      return tensor::Storage<int8_t>(std::vector<int8_t>(p, p + e.length));
    }
    return tensor::Storage<int8_t>::View(p, e.length, keepalive);
  };
  const auto f32_view = [&](const SectionEntry& e) {
    const float* p = reinterpret_cast<const float*>(base + e.offset);
    const int64_t n = e.length / static_cast<int64_t>(sizeof(float));
    if (copy_into_owned) {
      return tensor::Storage<float>(std::vector<float>(p, p + n));
    }
    return tensor::Storage<float>::View(p, n, keepalive);
  };

  model.embeddings = float_view(*sec[kSecEmbeddings], {rows, width});
  if (has_ivf_secs) {
    auto ivf = std::make_shared<IvfIndex>();
    ivf->centroids = float_view(*sec[kSecIvfCentroids], {nlist, width});
    ivf->list_offsets = int_view(*sec[kSecIvfOffsets]);
    ivf->list_items = int_view(*sec[kSecIvfItems]);
    if (has_code_secs) {
      ivf->codes = i8_view(*sec[kSecIvfCodes]);
      ivf->code_scales = f32_view(*sec[kSecIvfScales]);
    }
    const std::string problem = IvfProblem(*ivf, model.num_items, width);
    if (!problem.empty()) {
      return util::Status::ParseError("corrupt ivf index: " + problem);
    }
    model.ivf = std::move(ivf);
  }
  if (has_hnsw_secs) {
    auto hnsw = std::make_shared<HnswIndex>();
    hnsw->m = hnsw_meta[0];
    hnsw->ef_construction = hnsw_meta[1];
    hnsw->entry_point = hnsw_meta[2];
    hnsw->num_levels = hnsw_meta[3];
    hnsw->neighbor_offsets = int_view(*sec[kSecHnswOffsets]);
    hnsw->neighbors = int_view(*sec[kSecHnswNeighbors]);
    const std::string problem = HnswProblem(*hnsw, model.num_items);
    if (!problem.empty()) {
      return util::Status::ParseError("corrupt hnsw graph: " + problem);
    }
    model.hnsw = std::move(hnsw);
  }
  if (!copy_into_owned) model.storage_file = std::move(keepalive);
  return model;
}

}  // namespace

void IvfIndex::CheckConsistent(int64_t num_items, int64_t width) const {
  const std::string problem = IvfProblem(*this, num_items, width);
  GNMR_CHECK(problem.empty()) << problem;
}

void HnswIndex::CheckConsistent(int64_t num_items) const {
  const std::string problem = HnswProblem(*this, num_items);
  GNMR_CHECK(problem.empty()) << problem;
}

float ServingModel::Score(int64_t user, int64_t item) const {
  GNMR_CHECK(user >= 0 && user < num_users);
  GNMR_CHECK(item >= 0 && item < num_items);
  int64_t width = embeddings.cols();
  const float* u = embeddings.data() + user * width;
  const float* v = embeddings.data() + (num_users + item) * width;
  // The lane-partial association (backend.h) — the same contract every
  // serving scan computes, so single scores match scanned scores
  // bit-for-bit.
  return static_cast<float>(tensor::LanePartialDot(u, v, width));
}

std::unique_ptr<eval::Scorer> ServingModel::MakeScorer() const {
  return std::make_unique<ServingScorer>(this, nullptr);
}

std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model) {
  GNMR_CHECK(model != nullptr);
  const ServingModel* raw = model.get();
  return std::make_unique<ServingScorer>(raw, std::move(model));
}

ServingModel ExportServingModel(const GnmrModel& model) {
  ServingModel out;
  out.num_users = model.num_users();
  out.num_items = model.num_items();
  out.embeddings = model.inference_cache().Clone();
  return out;
}

util::Status BuildIvfIndex(ServingModel* model, int64_t nlist,
                           bool quantize) {
  GNMR_CHECK(model != nullptr);
  if (model->embeddings.empty() ||
      model->embeddings.rows() != model->num_users + model->num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  if (nlist <= 0) nlist = tensor::kIvfDefaultNlist;
  nlist = std::min(nlist, model->num_items);

  const int64_t width = model->embeddings.cols();
  // Read through const data(): the model may be view-backed (mmap), in
  // which case the mutable accessor would abort.
  const float* item_rows =
      std::as_const(model->embeddings).data() + model->num_users * width;
  tensor::KMeansOptions options;
  options.max_iters = tensor::kIvfKMeansMaxIters;
  tensor::KMeansResult clusters =
      tensor::KMeansRows(item_rows, model->num_items, width, nlist, options);

  auto ivf = std::make_shared<IvfIndex>();
  ivf->centroids = std::move(clusters.centroids);
  std::vector<int64_t> list_offsets(static_cast<size_t>(nlist) + 1, 0);
  for (int64_t c = 0; c < nlist; ++c) {
    list_offsets[static_cast<size_t>(c) + 1] =
        list_offsets[static_cast<size_t>(c)] +
        clusters.sizes[static_cast<size_t>(c)];
  }
  // Counting sort by cluster: walking items in ascending id order makes
  // each posting list ascending by construction.
  std::vector<int64_t> list_items(static_cast<size_t>(model->num_items));
  std::vector<int64_t> cursor(list_offsets.begin(), list_offsets.end() - 1);
  for (int64_t item = 0; item < model->num_items; ++item) {
    const int64_t c = clusters.assignments[static_cast<size_t>(item)];
    list_items[static_cast<size_t>(cursor[static_cast<size_t>(c)]++)] = item;
  }
  ivf->list_offsets = std::move(list_offsets);
  ivf->list_items = std::move(list_items);
  if (quantize) {
    // Codes live in posting-list position order so the serving scan
    // streams each probed list contiguously: position pos quantizes the
    // embedding row of item list_items[pos].
    std::vector<int8_t> codes(
        static_cast<size_t>(model->num_items * width));
    std::vector<float> scales(static_cast<size_t>(model->num_items));
    for (int64_t pos = 0; pos < model->num_items; ++pos) {
      const int64_t item = ivf->list_items[static_cast<size_t>(pos)];
      scales[static_cast<size_t>(pos)] = tensor::quant::QuantizeRowI8(
          item_rows + item * width, width,
          codes.data() + pos * width);
    }
    ivf->codes = std::move(codes);
    ivf->code_scales = std::move(scales);
  }
  ivf->CheckConsistent(model->num_items, width);
  model->ivf = std::move(ivf);
  return util::Status::OK();
}

namespace {

// A scored graph-build candidate under the serving total order (score
// desc, ties by ascending item id) — the same contract as
// serve::BetterThan, restated here because core cannot depend on serve.
struct HnswCand {
  int64_t id = 0;
  float score = 0.0f;
};

bool HnswBetter(const HnswCand& a, const HnswCand& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

// splitmix64 of (item, kHnswLevelSeed): the level draw must be a pure
// per-item function — independent of insertion order, backend and every
// runtime knob — so the layer structure is reproducible by construction.
uint64_t HnswItemHash(int64_t item) {
  uint64_t z = static_cast<uint64_t>(item) + tensor::kHnswLevelSeed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Geometric level assignment: floor(-ln(u) / ln(m)) with u uniform in
// (0, 1] from the item hash — each level keeps ~1/m of the one below.
int64_t HnswLevelForItem(int64_t item, double inv_log_m) {
  const uint64_t bits = HnswItemHash(item) >> 11;  // top 53 bits
  const double u =
      (static_cast<double>(bits) + 1.0) * (1.0 / 9007199254740992.0);
  const double level = -std::log(u) * inv_log_m;
  return std::min(static_cast<int64_t>(level), tensor::kHnswMaxLevel);
}

// Offline HNSW construction state. Every distance is an inner-product
// score through KernelBackend::QueryDotIndexed (single dots via
// tensor::LanePartialDot — the identical accumulation), ranked under the
// HnswBetter total order, so the finished graph is bit-identical on every
// backend.
class HnswBuilder {
 public:
  HnswBuilder(const float* item_rows, int64_t n, int64_t width, int64_t m,
              int64_t ef_construction)
      : rows_(item_rows),
        n_(n),
        width_(width),
        m_(m),
        ef_(ef_construction),
        levels_(static_cast<size_t>(n)),
        visited_(static_cast<size_t>(n), 0) {
    const double inv_log_m = 1.0 / std::log(static_cast<double>(m_));
    int64_t max_level = 0;
    for (int64_t i = 0; i < n_; ++i) {
      levels_[static_cast<size_t>(i)] = HnswLevelForItem(i, inv_log_m);
      max_level = std::max(max_level, levels_[static_cast<size_t>(i)]);
    }
    adj_.resize(static_cast<size_t>(max_level) + 1);
    for (auto& level : adj_) level.resize(static_cast<size_t>(n));
  }

  void InsertAll() {
    // Hash-shuffled insertion order (a second splitmix64 pass over the
    // level hash, ties by id): catalogues often lay correlated items out
    // contiguously — think one category's items in one id range — and
    // inserting them in id order starts every such region with no graph
    // structure near it, fragmenting the region into components the
    // search cannot cross. Shuffling makes every insertion prefix a
    // uniform sample of the catalogue. Still a pure function of the item
    // ids, so the graph stays reproducible by construction.
    std::vector<int64_t> order(static_cast<size_t>(n_));
    for (int64_t i = 0; i < n_; ++i) order[static_cast<size_t>(i)] = i;
    std::vector<uint64_t> keys(static_cast<size_t>(n_));
    for (int64_t i = 0; i < n_; ++i) {
      uint64_t z = HnswItemHash(i) + 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      keys[static_cast<size_t>(i)] = z ^ (z >> 31);
    }
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      const uint64_t ka = keys[static_cast<size_t>(a)];
      const uint64_t kb = keys[static_cast<size_t>(b)];
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (int64_t q : order) Insert(q);
  }

  int64_t entry_point() const { return entry_; }
  int64_t num_levels() const { return static_cast<int64_t>(adj_.size()); }

  /// Flattens the adjacency into the persisted CSR form: per-level rows of
  /// ascending neighbor ids, levels tiled back to back.
  void Flatten(std::vector<int64_t>* offsets,
               std::vector<int64_t>* neighbors) const {
    const int64_t stride = n_ + 1;
    offsets->assign(static_cast<size_t>(num_levels() * stride), 0);
    size_t total = 0;
    for (const auto& level : adj_) {
      for (const auto& list : level) total += list.size();
    }
    neighbors->clear();
    neighbors->reserve(total);
    int64_t pos = 0;
    for (int64_t l = 0; l < num_levels(); ++l) {
      for (int64_t i = 0; i < n_; ++i) {
        (*offsets)[static_cast<size_t>(l * stride + i)] = pos;
        std::vector<int64_t> sorted = adj_[static_cast<size_t>(l)]
                                          [static_cast<size_t>(i)];
        std::sort(sorted.begin(), sorted.end());
        neighbors->insert(neighbors->end(), sorted.begin(), sorted.end());
        pos += static_cast<int64_t>(sorted.size());
      }
      (*offsets)[static_cast<size_t>(l * stride + n_)] = pos;
    }
  }

 private:
  const float* Row(int64_t item) const { return rows_ + item * width_; }

  HnswCand ScoreOne(const float* qrow, int64_t item) const {
    return {item,
            static_cast<float>(tensor::LanePartialDot(qrow, Row(item),
                                                      width_))};
  }

  void Insert(int64_t q) {
    GNMR_TRACE_SPAN("hnsw.insert");
    const int64_t q_level = levels_[static_cast<size_t>(q)];
    if (entry_ < 0) {  // the first node seeds every layer it occupies
      entry_ = q;
      max_level_ = q_level;
      return;
    }
    const float* qrow = Row(q);
    std::vector<HnswCand> eps = {ScoreOne(qrow, entry_)};
    // Greedy descent through the layers above q: ef = 1 keeps only the
    // closest node per layer, the classic zoom-in phase.
    for (int64_t l = max_level_; l > q_level; --l) {
      eps = SearchLayer(qrow, eps, 1, l);
    }
    for (int64_t l = std::min(q_level, max_level_); l >= 0; --l) {
      std::vector<HnswCand> found = SearchLayer(qrow, eps, ef_, l);
      const int64_t cap = l == 0 ? 2 * m_ : m_;
      const std::vector<HnswCand> chosen =
          SelectNeighbors(found, m_, Row(q));
      std::vector<int64_t>& q_list =
          adj_[static_cast<size_t>(l)][static_cast<size_t>(q)];
      for (const HnswCand& s : chosen) {
        q_list.push_back(s.id);
        LinkBack(l, s.id, q, cap);
      }
      eps = std::move(found);
    }
    if (q_level > max_level_) {
      entry_ = q;
      max_level_ = q_level;
    }
  }

  /// Best-first beam search over one layer: expands the closest frontier
  /// node until the best unexpanded candidate cannot improve the
  /// ef-bounded result set. Returns the results sorted best first.
  std::vector<HnswCand> SearchLayer(const float* qrow,
                                    const std::vector<HnswCand>& entries,
                                    int64_t ef, int64_t level) {
    ++epoch_;
    const auto worse = [](const HnswCand& a, const HnswCand& b) {
      return HnswBetter(b, a);
    };
    std::priority_queue<HnswCand, std::vector<HnswCand>, decltype(worse)>
        frontier(worse);
    std::vector<HnswCand> best;  // worst-on-top bounded heap of size ef
    best.reserve(static_cast<size_t>(ef) + 1);
    for (const HnswCand& e : entries) {
      if (visited_[static_cast<size_t>(e.id)] == epoch_) continue;
      visited_[static_cast<size_t>(e.id)] = epoch_;
      frontier.push(e);
      OfferBounded(&best, ef, e);
    }
    const auto& level_adj = adj_[static_cast<size_t>(level)];
    std::vector<int64_t> fresh;
    std::vector<float> scores;
    while (!frontier.empty()) {
      const HnswCand c = frontier.top();
      frontier.pop();
      if (static_cast<int64_t>(best.size()) == ef &&
          !HnswBetter(c, best.front())) {
        break;
      }
      fresh.clear();
      for (int64_t nb : level_adj[static_cast<size_t>(c.id)]) {
        if (visited_[static_cast<size_t>(nb)] == epoch_) continue;
        visited_[static_cast<size_t>(nb)] = epoch_;
        fresh.push_back(nb);
      }
      if (fresh.empty()) continue;
      scores.resize(fresh.size());
      tensor::GetBackend().QueryDotIndexed(
          qrow, rows_, fresh.data(), scores.data(),
          static_cast<int64_t>(fresh.size()), width_);
      for (size_t i = 0; i < fresh.size(); ++i) {
        const HnswCand cand{fresh[i], scores[i]};
        frontier.push(cand);
        OfferBounded(&best, ef, cand);
      }
    }
    std::sort(best.begin(), best.end(), HnswBetter);
    return best;
  }

  /// serve::OfferToBoundedHeap restated for build candidates (no seen
  /// filtering): worst-on-top heap, kept set independent of offer order.
  static void OfferBounded(std::vector<HnswCand>* heap, int64_t k,
                           const HnswCand& e) {
    if (static_cast<int64_t>(heap->size()) == k &&
        !HnswBetter(e, heap->front())) {
      return;
    }
    if (static_cast<int64_t>(heap->size()) < k) {
      heap->push_back(e);
      std::push_heap(heap->begin(), heap->end(), HnswBetter);
    } else {
      std::pop_heap(heap->begin(), heap->end(), HnswBetter);
      heap->back() = e;
      std::push_heap(heap->begin(), heap->end(), HnswBetter);
    }
  }

  /// The heuristic prune (Malkov & Yashunin, Algorithm 4) in inner-product
  /// form: walking candidates best first, keep c only when no
  /// already-selected s is closer to c than the new node is (dot(c, s) <=
  /// dot(c, q)) — selected neighbors spread across directions instead of
  /// crowding one cluster. Dominated candidates backfill remaining slots
  /// (keep-pruned-connections), preserving degree for connectivity.
  std::vector<HnswCand> SelectNeighbors(const std::vector<HnswCand>& cands,
                                        int64_t cap,
                                        const float* qrow) const {
    (void)qrow;
    std::vector<HnswCand> selected;
    selected.reserve(static_cast<size_t>(cap));
    for (const HnswCand& c : cands) {
      if (static_cast<int64_t>(selected.size()) == cap) break;
      const float* crow = Row(c.id);
      bool keep = true;
      for (const HnswCand& s : selected) {
        const float cs = static_cast<float>(
            tensor::LanePartialDot(crow, Row(s.id), width_));
        if (cs > c.score) {
          keep = false;
          break;
        }
      }
      if (keep) selected.push_back(c);
    }
    if (static_cast<int64_t>(selected.size()) < cap) {
      for (const HnswCand& c : cands) {
        if (static_cast<int64_t>(selected.size()) == cap) break;
        bool present = false;
        for (const HnswCand& s : selected) {
          if (s.id == c.id) {
            present = true;
            break;
          }
        }
        if (!present) selected.push_back(c);
      }
    }
    return selected;
  }

  /// Adds the back edge s -> q, re-pruning s's list when it exceeds the
  /// level cap (scored against s, same heuristic as the forward edges).
  void LinkBack(int64_t level, int64_t s, int64_t q, int64_t cap) {
    std::vector<int64_t>& list =
        adj_[static_cast<size_t>(level)][static_cast<size_t>(s)];
    list.push_back(q);
    if (static_cast<int64_t>(list.size()) <= cap) return;
    const float* srow = Row(s);
    std::vector<float> scores(list.size());
    tensor::GetBackend().QueryDotIndexed(srow, rows_, list.data(),
                                         scores.data(),
                                         static_cast<int64_t>(list.size()),
                                         width_);
    std::vector<HnswCand> cands(list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      cands[i] = {list[i], scores[i]};
    }
    std::sort(cands.begin(), cands.end(), HnswBetter);
    const std::vector<HnswCand> kept = SelectNeighbors(cands, cap, srow);
    list.clear();
    for (const HnswCand& c : kept) list.push_back(c.id);
  }

  const float* rows_;
  const int64_t n_;
  const int64_t width_;
  const int64_t m_;
  const int64_t ef_;
  std::vector<int64_t> levels_;
  /// adj_[level][item] = current neighbor ids (unordered during build).
  std::vector<std::vector<std::vector<int64_t>>> adj_;
  /// Epoch-stamped visited set: one int64 compare per lookup, no O(n)
  /// clear between the ~n * levels SearchLayer calls of a build.
  std::vector<int64_t> visited_;
  int64_t epoch_ = 0;
  int64_t entry_ = -1;
  int64_t max_level_ = 0;
};

}  // namespace

util::Status BuildHnswIndex(ServingModel* model, int64_t m,
                            int64_t ef_construction) {
  GNMR_CHECK(model != nullptr);
  if (model->embeddings.empty() ||
      model->embeddings.rows() != model->num_users + model->num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  GNMR_TRACE_SPAN("hnsw.build");
  if (m <= 0) m = tensor::kHnswDefaultM;
  // m = 1 would make the level draw degenerate (ln 1 = 0) and the graph a
  // chain; two neighbors is the meaningful floor.
  m = std::max<int64_t>(m, 2);
  if (ef_construction <= 0) {
    ef_construction = tensor::kHnswDefaultEfConstruction;
  }
  // The beam must at least cover one full neighbor selection.
  ef_construction = std::max(ef_construction, m);

  const int64_t width = model->embeddings.cols();
  // Read through const data(): the model may be view-backed (mmap), in
  // which case the mutable accessor would abort.
  const float* item_rows =
      std::as_const(model->embeddings).data() + model->num_users * width;
  HnswBuilder builder(item_rows, model->num_items, width, m,
                      ef_construction);
  builder.InsertAll();

  auto hnsw = std::make_shared<HnswIndex>();
  hnsw->m = m;
  hnsw->ef_construction = ef_construction;
  hnsw->entry_point = builder.entry_point();
  hnsw->num_levels = builder.num_levels();
  std::vector<int64_t> offsets;
  std::vector<int64_t> neighbors;
  builder.Flatten(&offsets, &neighbors);
  hnsw->neighbor_offsets = std::move(offsets);
  hnsw->neighbors = std::move(neighbors);
  hnsw->CheckConsistent(model->num_items);
  model->hnsw = std::move(hnsw);
  return util::Status::OK();
}

util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path) {
  // Quantized codes and HNSW graphs have no v1/v2 encoding; such models
  // round-trip through the v4/v5 container (which every loader here
  // accepts).
  if ((model.has_ivf() && model.ivf->has_codes()) || model.has_hnsw()) {
    return SaveServingModelV3(model, path);
  }
  GNMR_TRACE_SPAN("io.save");
  if (model.embeddings.empty() ||
      model.embeddings.rows() != model.num_users + model.num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  if (model.has_ivf()) {
    model.ivf->CheckConsistent(model.num_items, model.embeddings.cols());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IOError("cannot open " + path);
  // A model without an index round-trips as v1, byte-identical to what
  // pre-index builds wrote, so their readers keep working.
  out.write(model.has_ivf() ? kMagicV2 : kMagicV1, sizeof(kMagicV1));
  int64_t header[3] = {model.num_users, model.num_items,
                       model.embeddings.cols()};
  WritePod(out, header, 3);
  WritePod(out, model.embeddings.data(),
           static_cast<size_t>(model.embeddings.numel()));
  if (model.has_ivf()) {
    const IvfIndex& ivf = *model.ivf;
    const int64_t nlist = ivf.nlist();
    WritePod(out, &nlist, 1);
    WritePod(out, ivf.centroids.data(),
             static_cast<size_t>(ivf.centroids.numel()));
    WritePod(out, ivf.list_offsets.data(),
             static_cast<size_t>(ivf.list_offsets.size()));
    WritePod(out, ivf.list_items.data(),
             static_cast<size_t>(ivf.list_items.size()));
  }
  out.flush();
  if (!out.good()) return util::Status::IOError("write error on " + path);
  return util::Status::OK();
}

util::Status SaveServingModelV3(const ServingModel& model,
                                const std::string& path) {
  GNMR_TRACE_SPAN("io.save");
  if (model.embeddings.empty() ||
      model.embeddings.rows() != model.num_users + model.num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  const int64_t width = model.embeddings.cols();
  if (model.has_ivf()) model.ivf->CheckConsistent(model.num_items, width);
  if (model.has_hnsw()) model.hnsw->CheckConsistent(model.num_items);

  struct Payload {
    int64_t id;
    const void* data;
    int64_t length;
  };
  const tensor::Tensor& emb = model.embeddings;
  std::vector<Payload> payloads = {
      {kSecEmbeddings, std::as_const(emb).data(),
       emb.numel() * static_cast<int64_t>(sizeof(float))}};
  if (model.has_ivf()) {
    const IvfIndex& ivf = *model.ivf;
    payloads.push_back(
        {kSecIvfCentroids, std::as_const(ivf.centroids).data(),
         ivf.centroids.numel() * static_cast<int64_t>(sizeof(float))});
    payloads.push_back(
        {kSecIvfOffsets, ivf.list_offsets.data(),
         ivf.list_offsets.size() * static_cast<int64_t>(sizeof(int64_t))});
    payloads.push_back(
        {kSecIvfItems, ivf.list_items.data(),
         ivf.list_items.size() * static_cast<int64_t>(sizeof(int64_t))});
    if (ivf.has_codes()) {
      payloads.push_back({kSecIvfCodes, ivf.codes.data(),
                          static_cast<int64_t>(ivf.codes.size())});
      payloads.push_back(
          {kSecIvfScales, ivf.code_scales.data(),
           static_cast<int64_t>(ivf.code_scales.size() * sizeof(float))});
    }
  }
  // The meta buffer must outlive the write loop below, so it sits outside
  // the has_hnsw() branch.
  int64_t hnsw_meta[kHnswMetaFields] = {0, 0, 0, 0};
  if (model.has_hnsw()) {
    const HnswIndex& hnsw = *model.hnsw;
    hnsw_meta[0] = hnsw.m;
    hnsw_meta[1] = hnsw.ef_construction;
    hnsw_meta[2] = hnsw.entry_point;
    hnsw_meta[3] = hnsw.num_levels;
    payloads.push_back({kSecHnswMeta, hnsw_meta,
                        kHnswMetaFields *
                            static_cast<int64_t>(sizeof(int64_t))});
    payloads.push_back({kSecHnswOffsets, hnsw.neighbor_offsets.data(),
                        static_cast<int64_t>(hnsw.neighbor_offsets.size() *
                                             sizeof(int64_t))});
    payloads.push_back({kSecHnswNeighbors, hnsw.neighbors.data(),
                        static_cast<int64_t>(hnsw.neighbors.size() *
                                             sizeof(int64_t))});
  }
  const bool quantized = model.has_ivf() && model.ivf->has_codes();

  const int64_t section_count = static_cast<int64_t>(payloads.size());
  std::vector<SectionEntry> entries;
  int64_t offset = AlignUp64(kV3HeaderBytes + section_count * kV3EntryBytes);
  for (const Payload& p : payloads) {
    SectionEntry e;
    e.id = p.id;
    e.offset = offset;
    e.length = p.length;
    e.crc = static_cast<int64_t>(
        util::Crc32(p.data, static_cast<size_t>(p.length)));
    entries.push_back(e);
    offset = AlignUp64(offset + p.length);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IOError("cannot open " + path);
  out.write(model.has_hnsw() ? kMagicV5 : (quantized ? kMagicV4 : kMagicV3),
            sizeof(kMagicV3));
  int64_t header[4] = {model.num_users, model.num_items, width,
                       section_count};
  WritePod(out, header, 4);
  WritePod(out, entries.data(), entries.size());
  int64_t pos = kV3HeaderBytes + section_count * kV3EntryBytes;
  static constexpr char kZeros[kV3Align] = {};
  for (size_t i = 0; i < payloads.size(); ++i) {
    const int64_t pad = entries[i].offset - pos;
    GNMR_CHECK(pad >= 0 && pad < kV3Align);
    out.write(kZeros, static_cast<std::streamsize>(pad));
    out.write(static_cast<const char*>(payloads[i].data),
              static_cast<std::streamsize>(payloads[i].length));
    pos = entries[i].offset + entries[i].length;
  }
  out.flush();
  if (!out.good()) return util::Status::IOError("write error on " + path);
  return util::Status::OK();
}

util::Result<ServingModel> LoadServingModelMapped(const std::string& path,
                                                  bool verify_checksums) {
  GNMR_TRACE_SPAN("io.load_mapped");
  auto mapped = util::MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const util::MappedFile> file = std::move(mapped).value();
  if (!HasV3FamilyMagic(file->data(), file->size())) {
    // Pre-v3 artifacts have no alignment guarantees; load them the
    // classic way into owned storage.
    return LoadServingModel(path);
  }
  return ParseV3(file->data(), file->size(), path, /*copy_into_owned=*/false,
                 verify_checksums, file);
}

util::Result<ServingModel> LoadServingModel(const std::string& path) {
  GNMR_TRACE_SPAN("io.load");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IOError("cannot open " + path);
  char magic[8];
  if (!ReadPod(in, magic, sizeof(magic))) {
    return util::Status::ParseError("bad magic in " + path);
  }
  bool has_ivf = false;
  if (HasV3FamilyMagic(reinterpret_cast<const uint8_t*>(magic),
                       static_cast<int64_t>(sizeof(magic)))) {
    // v3/v4 is parsed from a contiguous mapping (same parser as the
    // zero-copy path), then deep-copied into owned storage with every
    // section checksum verified.
    in.close();
    auto mapped = util::MappedFile::Open(path);
    if (!mapped.ok()) return mapped.status();
    std::shared_ptr<const util::MappedFile> file = std::move(mapped).value();
    return ParseV3(file->data(), file->size(), path,
                   /*copy_into_owned=*/true, /*verify_checksums=*/true,
                   nullptr);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    has_ivf = true;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }
  int64_t header[3];
  if (!ReadPod(in, header, 3)) {
    return util::Status::ParseError("truncated header");
  }
  ServingModel model;
  model.num_users = header[0];
  model.num_items = header[1];
  int64_t width = header[2];
  if (model.num_users <= 0 || model.num_items <= 0 || width <= 0) {
    return util::Status::ParseError("invalid dimensions in header");
  }
  int64_t rows = model.num_users + model.num_items;
  model.embeddings = tensor::Tensor({rows, width});
  if (!ReadPod(in, model.embeddings.data(),
               static_cast<size_t>(model.embeddings.numel()))) {
    return util::Status::ParseError("truncated embeddings");
  }
  if (has_ivf) {
    int64_t nlist = 0;
    if (!ReadPod(in, &nlist, 1)) {
      return util::Status::ParseError("truncated ivf header");
    }
    if (nlist < 1 || nlist > model.num_items) {
      return util::Status::ParseError("invalid ivf nlist");
    }
    auto ivf = std::make_shared<IvfIndex>();
    ivf->centroids = tensor::Tensor({nlist, width});
    std::vector<int64_t> list_offsets(static_cast<size_t>(nlist) + 1);
    std::vector<int64_t> list_items(static_cast<size_t>(model.num_items));
    if (!ReadPod(in, ivf->centroids.data(),
                 static_cast<size_t>(ivf->centroids.numel())) ||
        !ReadPod(in, list_offsets.data(), list_offsets.size()) ||
        !ReadPod(in, list_items.data(), list_items.size())) {
      return util::Status::ParseError("truncated ivf index");
    }
    ivf->list_offsets = std::move(list_offsets);
    ivf->list_items = std::move(list_items);
    const std::string problem = IvfProblem(*ivf, model.num_items, width);
    if (!problem.empty()) {
      return util::Status::ParseError("corrupt ivf index: " + problem);
    }
    model.ivf = std::move(ivf);
  }
  // Must be at EOF now.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) return util::Status::ParseError("trailing bytes in " + path);
  return model;
}

}  // namespace core
}  // namespace gnmr
