#include "src/core/model_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "src/tensor/kernel_tunables.h"
#include "src/tensor/kmeans.h"
#include "src/util/check.h"

namespace gnmr {
namespace core {

namespace {

constexpr char kMagicV1[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '1'};
constexpr char kMagicV2[8] = {'G', 'N', 'M', 'R', 'S', 'M', '0', '2'};

// Borrowing adapter: `keepalive` is null for MakeScorer() (caller
// guarantees the model outlives the scorer) and owns the model for
// MakeSharedScorer().
class ServingScorer : public eval::Scorer {
 public:
  ServingScorer(const ServingModel* model,
                std::shared_ptr<const ServingModel> keepalive)
      : model_(model), keepalive_(std::move(keepalive)) {}
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override {
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = model_->Score(user, items[i]);
    }
  }

 private:
  const ServingModel* model_;
  std::shared_ptr<const ServingModel> keepalive_;
};

template <typename T>
void WritePod(std::ofstream& out, const T* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* data, size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good();
}

// Structural validation shared by LoadServingModel and CheckConsistent;
// returns a message ("" = sound) instead of aborting so the loader can
// surface a ParseError for a corrupt file.
std::string IvfProblem(const IvfIndex& ivf, int64_t num_items,
                       int64_t width) {
  const int64_t nlist = ivf.nlist();
  if (nlist < 1) return "ivf index has no lists";
  if (ivf.centroids.rank() != 2 || ivf.centroids.rows() != nlist ||
      ivf.centroids.cols() != width) {
    return "ivf centroid shape mismatch";
  }
  if (static_cast<int64_t>(ivf.list_items.size()) != num_items) {
    return "ivf posting lists do not cover the catalogue";
  }
  if (ivf.list_offsets.front() != 0 || ivf.list_offsets.back() != num_items) {
    return "ivf offsets do not span [0, num_items]";
  }
  std::vector<bool> seen(static_cast<size_t>(num_items), false);
  for (int64_t c = 0; c < nlist; ++c) {
    const int64_t begin = ivf.list_offsets[static_cast<size_t>(c)];
    const int64_t end = ivf.list_offsets[static_cast<size_t>(c) + 1];
    if (begin > end) return "ivf offsets not monotone";
    // Bound every offset BEFORE walking the list: front()/back() checks
    // alone would let a corrupt intermediate offset index list_items far
    // out of bounds (heap over-read) instead of surfacing a ParseError.
    if (begin < 0 || end > num_items) return "ivf offset out of range";
    for (int64_t p = begin; p < end; ++p) {
      const int64_t item = ivf.list_items[static_cast<size_t>(p)];
      if (item < 0 || item >= num_items) return "ivf item out of range";
      if (seen[static_cast<size_t>(item)]) return "ivf item duplicated";
      seen[static_cast<size_t>(item)] = true;
      if (p > begin && ivf.list_items[static_cast<size_t>(p) - 1] >= item) {
        return "ivf posting list not ascending";
      }
    }
  }
  return "";
}

}  // namespace

void IvfIndex::CheckConsistent(int64_t num_items, int64_t width) const {
  const std::string problem = IvfProblem(*this, num_items, width);
  GNMR_CHECK(problem.empty()) << problem;
}

float ServingModel::Score(int64_t user, int64_t item) const {
  GNMR_CHECK(user >= 0 && user < num_users);
  GNMR_CHECK(item >= 0 && item < num_items);
  int64_t width = embeddings.cols();
  const float* u = embeddings.data() + user * width;
  const float* v = embeddings.data() + (num_users + item) * width;
  double acc = 0.0;
  for (int64_t c = 0; c < width; ++c) {
    acc += static_cast<double>(u[c]) * v[c];
  }
  return static_cast<float>(acc);
}

std::unique_ptr<eval::Scorer> ServingModel::MakeScorer() const {
  return std::make_unique<ServingScorer>(this, nullptr);
}

std::unique_ptr<eval::Scorer> MakeSharedScorer(
    std::shared_ptr<const ServingModel> model) {
  GNMR_CHECK(model != nullptr);
  const ServingModel* raw = model.get();
  return std::make_unique<ServingScorer>(raw, std::move(model));
}

ServingModel ExportServingModel(const GnmrModel& model) {
  ServingModel out;
  out.num_users = model.num_users();
  out.num_items = model.num_items();
  out.embeddings = model.inference_cache().Clone();
  return out;
}

util::Status BuildIvfIndex(ServingModel* model, int64_t nlist) {
  GNMR_CHECK(model != nullptr);
  if (model->embeddings.empty() ||
      model->embeddings.rows() != model->num_users + model->num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  if (nlist <= 0) nlist = tensor::kIvfDefaultNlist;
  nlist = std::min(nlist, model->num_items);

  const int64_t width = model->embeddings.cols();
  const float* item_rows =
      model->embeddings.data() + model->num_users * width;
  tensor::KMeansOptions options;
  options.max_iters = tensor::kIvfKMeansMaxIters;
  tensor::KMeansResult clusters =
      tensor::KMeansRows(item_rows, model->num_items, width, nlist, options);

  auto ivf = std::make_shared<IvfIndex>();
  ivf->centroids = std::move(clusters.centroids);
  ivf->list_offsets.assign(static_cast<size_t>(nlist) + 1, 0);
  for (int64_t c = 0; c < nlist; ++c) {
    ivf->list_offsets[static_cast<size_t>(c) + 1] =
        ivf->list_offsets[static_cast<size_t>(c)] +
        clusters.sizes[static_cast<size_t>(c)];
  }
  // Counting sort by cluster: walking items in ascending id order makes
  // each posting list ascending by construction.
  ivf->list_items.resize(static_cast<size_t>(model->num_items));
  std::vector<int64_t> cursor(ivf->list_offsets.begin(),
                              ivf->list_offsets.end() - 1);
  for (int64_t item = 0; item < model->num_items; ++item) {
    const int64_t c = clusters.assignments[static_cast<size_t>(item)];
    ivf->list_items[static_cast<size_t>(
        cursor[static_cast<size_t>(c)]++)] = item;
  }
  ivf->CheckConsistent(model->num_items, width);
  model->ivf = std::move(ivf);
  return util::Status::OK();
}

util::Status SaveServingModel(const ServingModel& model,
                              const std::string& path) {
  if (model.embeddings.empty() ||
      model.embeddings.rows() != model.num_users + model.num_items) {
    return util::Status::InvalidArgument("inconsistent serving model");
  }
  if (model.has_ivf()) {
    model.ivf->CheckConsistent(model.num_items, model.embeddings.cols());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IOError("cannot open " + path);
  // A model without an index round-trips as v1, byte-identical to what
  // pre-index builds wrote, so their readers keep working.
  out.write(model.has_ivf() ? kMagicV2 : kMagicV1, sizeof(kMagicV1));
  int64_t header[3] = {model.num_users, model.num_items,
                       model.embeddings.cols()};
  WritePod(out, header, 3);
  WritePod(out, model.embeddings.data(),
           static_cast<size_t>(model.embeddings.numel()));
  if (model.has_ivf()) {
    const IvfIndex& ivf = *model.ivf;
    const int64_t nlist = ivf.nlist();
    WritePod(out, &nlist, 1);
    WritePod(out, ivf.centroids.data(),
             static_cast<size_t>(ivf.centroids.numel()));
    WritePod(out, ivf.list_offsets.data(), ivf.list_offsets.size());
    WritePod(out, ivf.list_items.data(), ivf.list_items.size());
  }
  out.flush();
  if (!out.good()) return util::Status::IOError("write error on " + path);
  return util::Status::OK();
}

util::Result<ServingModel> LoadServingModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IOError("cannot open " + path);
  char magic[8];
  if (!ReadPod(in, magic, sizeof(magic))) {
    return util::Status::ParseError("bad magic in " + path);
  }
  bool has_ivf = false;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    has_ivf = true;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }
  int64_t header[3];
  if (!ReadPod(in, header, 3)) {
    return util::Status::ParseError("truncated header");
  }
  ServingModel model;
  model.num_users = header[0];
  model.num_items = header[1];
  int64_t width = header[2];
  if (model.num_users <= 0 || model.num_items <= 0 || width <= 0) {
    return util::Status::ParseError("invalid dimensions in header");
  }
  int64_t rows = model.num_users + model.num_items;
  model.embeddings = tensor::Tensor({rows, width});
  if (!ReadPod(in, model.embeddings.data(),
               static_cast<size_t>(model.embeddings.numel()))) {
    return util::Status::ParseError("truncated embeddings");
  }
  if (has_ivf) {
    int64_t nlist = 0;
    if (!ReadPod(in, &nlist, 1)) {
      return util::Status::ParseError("truncated ivf header");
    }
    if (nlist < 1 || nlist > model.num_items) {
      return util::Status::ParseError("invalid ivf nlist");
    }
    auto ivf = std::make_shared<IvfIndex>();
    ivf->centroids = tensor::Tensor({nlist, width});
    ivf->list_offsets.resize(static_cast<size_t>(nlist) + 1);
    ivf->list_items.resize(static_cast<size_t>(model.num_items));
    if (!ReadPod(in, ivf->centroids.data(),
                 static_cast<size_t>(ivf->centroids.numel())) ||
        !ReadPod(in, ivf->list_offsets.data(), ivf->list_offsets.size()) ||
        !ReadPod(in, ivf->list_items.data(), ivf->list_items.size())) {
      return util::Status::ParseError("truncated ivf index");
    }
    const std::string problem = IvfProblem(*ivf, model.num_items, width);
    if (!problem.empty()) {
      return util::Status::ParseError("corrupt ivf index: " + problem);
    }
    model.ivf = std::move(ivf);
  }
  // Must be at EOF now.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) return util::Status::ParseError("trailing bytes in " + path);
  return model;
}

}  // namespace core
}  // namespace gnmr
