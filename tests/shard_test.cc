// Tests of the sharded execution layer: zero-copy CsrMatrix row-range
// views, ShardPlan partition invariants (uniform and nnz-balanced), the
// shard pool, bit-identical parity of the "sharded" backend against the
// serial reference at 1/2/7 workers across all eight kernel entry points,
// item-sharded ExactRetriever vs brute force (including exact ties), and
// the per-shard timings surfaced through the trainer's epoch stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/gnmr_trainer.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/serve/seen_items.h"
#include "src/serve/exact_retriever.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/shard_plan.h"
#include "src/tensor/shard_pool.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace gnmr {
namespace {

/// RAII worker-count switch: sets the global pool size, restores on exit
/// so later tests see the default again. Shared by the tensor- and
/// serve-layer sections below.
class ScopedShardWorkers {
 public:
  explicit ScopedShardWorkers(int64_t workers)
      : previous_(tensor::ShardWorkers()) {
    tensor::SetShardWorkers(workers);
  }
  ~ScopedShardWorkers() { tensor::SetShardWorkers(previous_); }

 private:
  int64_t previous_;
};

}  // namespace

namespace tensor {
namespace {

// Random CSR with ~density*cols entries per row; every third row is forced
// empty so ragged layouts are exercised.
CsrMatrix RandomCsr(int64_t rows, int64_t cols, double density,
                    util::Rng* rng, bool with_empty_rows = true) {
  std::vector<Coo> entries;
  for (int64_t r = 0; r < rows; ++r) {
    if (with_empty_rows && r % 3 == 2) continue;
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) {
        entries.push_back({r, c, rng->Normal()});
      }
    }
  }
  return CsrMatrix::FromCoo(rows, cols, entries);
}

// ------------------------------------------------------------ RowRangeView --

// The view of [begin, end) must reproduce the parent's rows entry for
// entry, with extents re-based onto the view's col/val storage.
void ExpectViewMatchesParent(const CsrMatrix& m, int64_t begin, int64_t end) {
  CsrRowRange view = m.RowRangeView(begin, end);
  ASSERT_EQ(view.rows(), end - begin);
  EXPECT_EQ(view.cols(), m.cols());
  EXPECT_EQ(view.first_row(), begin);
  int64_t expected_nnz = 0;
  for (int64_t r = begin; r < end; ++r) expected_nnz += m.RowNnz(r);
  EXPECT_EQ(view.nnz(), expected_nnz);
  for (int64_t r = 0; r < view.rows(); ++r) {
    int64_t parent_row = begin + r;
    ASSERT_EQ(view.RowNnz(r), m.RowNnz(parent_row)) << "row " << parent_row;
    int64_t parent_p = m.row_ptr()[static_cast<size_t>(parent_row)];
    for (int64_t p = view.RowBegin(r); p < view.RowEnd(r); ++p, ++parent_p) {
      EXPECT_EQ(view.col_idx()[p],
                m.col_idx()[static_cast<size_t>(parent_p)]);
      EXPECT_EQ(view.values()[p], m.values()[static_cast<size_t>(parent_p)]);
    }
  }
}

TEST(CsrRowRangeTest, ViewsOfRaggedMatrixMatchParent) {
  util::Rng rng(31);
  CsrMatrix m = RandomCsr(37, 20, 0.3, &rng);
  ExpectViewMatchesParent(m, 0, 37);   // full view
  ExpectViewMatchesParent(m, 0, 1);    // single leading row
  ExpectViewMatchesParent(m, 36, 37);  // single trailing row
  ExpectViewMatchesParent(m, 2, 3);    // a forced-empty row alone
  ExpectViewMatchesParent(m, 5, 23);   // interior span crossing empties
}

TEST(CsrRowRangeTest, EmptyRangesAndEmptyMatrix) {
  util::Rng rng(32);
  CsrMatrix m = RandomCsr(12, 9, 0.4, &rng);
  for (int64_t at : {int64_t{0}, int64_t{5}, int64_t{12}}) {
    CsrRowRange view = m.RowRangeView(at, at);
    EXPECT_EQ(view.rows(), 0);
    EXPECT_EQ(view.nnz(), 0);
  }
  CsrMatrix empty = CsrMatrix::FromCoo(4, 3, {});
  ExpectViewMatchesParent(empty, 0, 4);
  CsrMatrix zero_rows = CsrMatrix::FromCoo(0, 3, {});
  CsrRowRange view = zero_rows.RowRangeView(0, 0);
  EXPECT_EQ(view.rows(), 0);
  EXPECT_EQ(view.nnz(), 0);
}

TEST(CsrRowRangeTest, ViewsTileTheMatrixExactly) {
  // Consecutive views partition the entry list: concatenating their
  // (col, value) streams reproduces the parent's.
  util::Rng rng(33);
  CsrMatrix m = RandomCsr(50, 16, 0.25, &rng);
  std::vector<int64_t> cuts = {0, 7, 8, 23, 50};
  int64_t entries_seen = 0;
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    CsrRowRange view = m.RowRangeView(cuts[c], cuts[c + 1]);
    for (int64_t r = 0; r < view.rows(); ++r) {
      for (int64_t p = view.RowBegin(r); p < view.RowEnd(r); ++p) {
        EXPECT_EQ(view.col_idx()[p],
                  m.col_idx()[static_cast<size_t>(entries_seen)]);
        EXPECT_EQ(view.values()[p],
                  m.values()[static_cast<size_t>(entries_seen)]);
        ++entries_seen;
      }
    }
  }
  EXPECT_EQ(entries_seen, m.nnz());
}

TEST(CsrRowRangeDeathTest, OutOfRangeAborts) {
  CsrMatrix m = CsrMatrix::FromCoo(3, 3, {{0, 0, 1.0f}});
  EXPECT_DEATH(m.RowRangeView(-1, 2), "row range");
  EXPECT_DEATH(m.RowRangeView(2, 1), "row range");
  EXPECT_DEATH(m.RowRangeView(0, 4), "row range");
}

// --------------------------------------------------------------- ShardPlan --

TEST(ShardPlanTest, UniformInvariantsAndClamping) {
  for (int64_t rows : {int64_t{1}, int64_t{7}, int64_t{64}, int64_t{1000}}) {
    for (int64_t shards : {int64_t{1}, int64_t{3}, int64_t{8}}) {
      ShardPlan plan = ShardPlan::Uniform(rows, shards, /*min_rows=*/4);
      plan.CheckInvariants();
      EXPECT_LE(plan.num_shards(), shards);
      EXPECT_LE(plan.num_shards(), std::max<int64_t>(1, rows / 4));
      for (const ShardRange& r : plan.ranges()) {
        if (plan.num_shards() > 1) {
          EXPECT_GE(r.rows(), 4);
        }
      }
    }
  }
  // Zero rows: empty plan, invariants still hold.
  ShardPlan empty = ShardPlan::Uniform(0, 4);
  empty.CheckInvariants();
  EXPECT_EQ(empty.num_shards(), 0);
}

TEST(ShardPlanTest, NnzBalancedInvariantsOnRandomMatrices) {
  util::Rng rng(34);
  for (int64_t rows : {int64_t{10}, int64_t{128}, int64_t{777}}) {
    CsrMatrix m = RandomCsr(rows, 64, 0.2, &rng);
    for (int64_t shards : {int64_t{1}, int64_t{2}, int64_t{7}}) {
      ShardPlan plan = ShardPlan::NnzBalanced(m, shards);
      plan.CheckInvariants();
      EXPECT_EQ(plan.total_rows(), rows);
      // Recorded per-shard nnz matches the matrix.
      int64_t total = 0;
      for (const ShardRange& r : plan.ranges()) {
        int64_t nnz = 0;
        for (int64_t i = r.begin; i < r.end; ++i) nnz += m.RowNnz(i);
        EXPECT_EQ(r.nnz, nnz);
        total += nnz;
      }
      EXPECT_EQ(total, m.nnz());
    }
  }
}

TEST(ShardPlanTest, NnzBalancedBoundsShardWeight) {
  // Bounded-degree rows: every shard stays within one max-degree row of
  // the ideal even split (the greedy cut overshoots by at most one row).
  util::Rng rng(35);
  CsrMatrix m = RandomCsr(500, 100, 0.15, &rng, /*with_empty_rows=*/false);
  int64_t max_row_nnz = 0;
  for (int64_t r = 0; r < m.rows(); ++r) {
    max_row_nnz = std::max(max_row_nnz, m.RowNnz(r));
  }
  for (int64_t shards : {int64_t{2}, int64_t{5}, int64_t{7}}) {
    ShardPlan plan = ShardPlan::NnzBalanced(m, shards);
    ASSERT_EQ(plan.num_shards(), shards);
    int64_t ideal = (m.nnz() + shards - 1) / shards;
    for (const ShardRange& r : plan.ranges()) {
      EXPECT_LE(r.nnz, ideal + max_row_nnz)
          << "shard [" << r.begin << ", " << r.end << ")";
    }
  }
}

TEST(ShardPlanTest, NnzBalancedSurvivesPathologicalSkew) {
  // All mass in one super-heavy row (a power-law hub): the plan must stay
  // a valid partition, with the hub isolated in its own small shard.
  std::vector<Coo> entries;
  for (int64_t c = 0; c < 200; ++c) entries.push_back({100, c, 1.0f});
  for (int64_t r = 0; r < 300; r += 10) entries.push_back({r, 0, 1.0f});
  CsrMatrix m = CsrMatrix::FromCoo(300, 200, entries);
  ShardPlan plan = ShardPlan::NnzBalanced(m, 4);
  plan.CheckInvariants();
  EXPECT_GT(plan.num_shards(), 1);
  // Trailing rows after the hub still get covered (adaptive re-targeting).
  EXPECT_EQ(plan.ranges().back().end, 300);
}

TEST(ShardPlanTest, NnzBalancedRespectsMinRows) {
  util::Rng rng(36);
  CsrMatrix m = RandomCsr(40, 30, 0.3, &rng);
  ShardPlan plan = ShardPlan::NnzBalanced(m, 16, /*min_rows=*/8);
  plan.CheckInvariants();
  EXPECT_LE(plan.num_shards(), 5);  // 40 rows / 8 min
  for (const ShardRange& r : plan.ranges()) EXPECT_GE(r.rows(), 8);
}

// --------------------------------------------------------------- ShardPool --

TEST(ShardPoolTest, RunsEveryTaskExactlyOnce) {
  ScopedShardWorkers workers(3);
  constexpr int64_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  ShardPool::Global()->Run(kTasks,
                          [&](int64_t t) { hits[static_cast<size_t>(t)]++; });
  for (int64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[static_cast<size_t>(t)].load(), 1) << "task " << t;
  }
}

TEST(ShardPoolTest, NestedRunExecutesInline) {
  ScopedShardWorkers workers(2);
  std::atomic<int> inner_runs{0};
  ShardPool::Global()->Run(4, [&](int64_t) {
    // Re-entrant dispatch from a pool worker must not deadlock.
    ShardPool::Global()->Run(3, [&](int64_t) { inner_runs++; });
  });
  EXPECT_EQ(inner_runs.load(), 12);
}

TEST(ShardPoolTest, StatsCountDispatchesAndBusyTime) {
  ScopedShardWorkers workers(2);
  ShardPoolStats before = ShardPool::Global()->stats();
  EXPECT_EQ(before.workers, 2);
  std::atomic<int64_t> sink{0};
  ShardPool::Global()->Run(8, [&](int64_t t) { sink += t; });
  ShardPoolStats after = ShardPool::Global()->stats();
  EXPECT_EQ(after.dispatches, before.dispatches + 1);
  EXPECT_EQ(after.tasks, before.tasks + 8);
  ASSERT_EQ(after.worker_busy_ns.size(), 2u);
}

TEST(ShardPoolTest, WorkerCountFollowsSetShardWorkers) {
  ScopedShardWorkers workers(5);
  EXPECT_EQ(ShardWorkers(), 5);
  SetShardWorkers(2);
  EXPECT_EQ(ShardWorkers(), 2);
  // 0 (and any non-positive count) re-applies the default sizing rather
  // than silently degrading to a single worker.
  SetShardWorkers(0);
  EXPECT_GE(ShardWorkers(), 1);
}

TEST(ShardPoolTest, TaskExceptionRethrownOnDispatcher) {
  // A throwing task must not escape a worker thread (std::terminate): the
  // first exception surfaces on the Run() caller — whose unwind machinery
  // is built for it — and the pool stays fully usable afterwards.
  ScopedShardWorkers workers(3);
  std::shared_ptr<ShardPool> pool = ShardPool::Global();
  EXPECT_THROW(pool->Run(8,
                         [](int64_t t) {
                           if (t == 5) throw std::runtime_error("shard boom");
                         }),
               std::runtime_error);
  std::atomic<int> runs{0};
  pool->Run(8, [&](int64_t) { runs++; });
  EXPECT_EQ(runs.load(), 8);
}

TEST(ShardPoolTest, SnapshotSurvivesSetShardWorkers) {
  // A pool reference obtained before a resize must stay usable: callers
  // hold the Global() snapshot across Run, so the swapped-out pool may
  // not be torn down under them.
  ScopedShardWorkers workers(3);
  std::shared_ptr<ShardPool> before = ShardPool::Global();
  SetShardWorkers(2);
  std::atomic<int> runs{0};
  before->Run(8, [&](int64_t) { runs++; });
  EXPECT_EQ(runs.load(), 8);
  EXPECT_EQ(before->workers(), 3);
  EXPECT_EQ(ShardWorkers(), 2);
}

// Busy-spins so skew is CPU time, not sleep (a sleeping worker would free
// the core for its sibling and mask scheduling effects on 1-core hosts).
void SpinFor(std::chrono::microseconds d) {
  const auto end = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(ShardPoolTest, IdleWorkersStealFromSkewedQueues) {
  // Skewed plan: round-robin dealing alternates tasks between the two
  // workers, but every even-dealt task runs ~2ms while odd ones are nearly
  // free. The light worker drains its queue in well under one heavy task
  // and must then steal from its backlogged sibling — without stealing it
  // would idle for the rest of the dispatch and report (almost) no busy
  // time past its own 16 cheap tasks.
  ScopedShardWorkers workers(2);
  std::shared_ptr<ShardPool> pool = ShardPool::Global();
  constexpr int64_t kTasks = 32;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool->Run(kTasks, [&](int64_t t) {
    hits[static_cast<size_t>(t)]++;
    SpinFor(std::chrono::microseconds(t % 2 == 0 ? 2000 : 20));
  });
  // Exactly-once survives stealing: a task lives in exactly one queue and
  // is popped under that queue's mutex, whoever pops it.
  for (int64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[static_cast<size_t>(t)].load(), 1) << "task " << t;
  }
  ShardPoolStats stats = pool->stats();
  EXPECT_EQ(stats.tasks, static_cast<uint64_t>(kTasks));
  EXPECT_GT(stats.steals, 0u) << "idle worker never stole from the backlog";
  ASSERT_EQ(stats.worker_busy_ns.size(), 2u);
  for (size_t w = 0; w < stats.worker_busy_ns.size(); ++w) {
    EXPECT_GT(stats.worker_busy_ns[w], 0u) << "worker " << w << " idle";
  }
}

TEST(ShardPoolTest, StolenTaskExceptionStillRethrown) {
  // Same skewed shape, with a throwing task buried deep in the backlogged
  // queue — by the time it runs, the light worker is stealing from that
  // queue, so the throw frequently happens on the thief. Either way the
  // exception must surface on the dispatching caller and the pool must
  // stay usable.
  ScopedShardWorkers workers(2);
  std::shared_ptr<ShardPool> pool = ShardPool::Global();
  EXPECT_THROW(
      pool->Run(32,
                [&](int64_t t) {
                  if (t == 30) throw std::runtime_error("stolen boom");
                  SpinFor(std::chrono::microseconds(t % 2 == 0 ? 1000 : 20));
                }),
      std::runtime_error);
  std::atomic<int> runs{0};
  pool->Run(8, [&](int64_t) { runs++; });
  EXPECT_EQ(runs.load(), 8);
}

// ------------------------------------------- sharded backend parity 1/2/7 --

void ExpectBitIdentical(const Tensor& ref, const Tensor& got,
                        const std::string& context) {
  ASSERT_EQ(ref.shape(), got.shape()) << context;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    ASSERT_EQ(ref.data()[i], got.data()[i])
        << context << " at flat index " << i;
  }
}

// Every kernel input is sized past its fan-out threshold so the sharded
// paths actually dispatch (at 1 worker the plans collapse to one inline
// range — that degenerate path must stay bit-identical too).
TEST(ShardedBackendParityTest, AllOpsBitIdenticalToSerialAt127Workers) {
  const KernelBackend* serial = FindBackend("serial");
  const KernelBackend* sharded = FindBackend("sharded");
  ASSERT_NE(sharded, nullptr);
  util::Rng rng(37);

  // MatMul: 128*32*48 = 196k multiply-adds >= kParallelMatMulMinWork.
  const int64_t mm_n = 128, mm_k = 32, mm_m = 48;
  Tensor mm_a = Tensor::RandomNormal({mm_n, mm_k}, &rng);
  Tensor mm_b = Tensor::RandomNormal({mm_k, mm_m}, &rng);
  // SpMM: ~4.8k nnz * 24 cols >= kParallelSpmmMinWork; ragged with empty
  // rows so nnz-balanced shard cuts land mid-matrix.
  CsrMatrix sp = RandomCsr(400, 120, 0.15, &rng);
  Tensor sp_x = Tensor::RandomNormal({120, 24}, &rng);
  // Gather/ScatterAdd/RowDot: 2500 rows * 24 >= kParallelRowsMinWork.
  Tensor table = Tensor::RandomNormal({90, 24}, &rng);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < 2500; ++i) {
    // Zipf-ish duplicates: low rows collide massively.
    idx.push_back(rng.UniformInt(0, rng.UniformInt(0, 89)));
  }
  Tensor src = Tensor::RandomNormal({static_cast<int64_t>(idx.size()), 24},
                                    &rng);
  Tensor rd_a = Tensor::RandomNormal({2500, 24}, &rng);
  Tensor rd_b = Tensor::RandomNormal({2500, 24}, &rng);
  // Eltwise / ReduceSum: 40000 elements >= kParallelEltwiseMinWork, ~10
  // kReduceSumChunk chunks with a ragged tail.
  Tensor ew = Tensor::RandomNormal({40000 + 123}, &rng);
  Tensor ew2 = Tensor::RandomNormal({40000 + 123}, &rng);
  KernelBackend::MapFn relu = [](const float* in, float* out, int64_t len,
                                 float) {
    for (int64_t i = 0; i < len; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  };
  KernelBackend::ZipFn mul = [](const float* x, const float* y, float* out,
                                int64_t len, float) {
    for (int64_t i = 0; i < len; ++i) out[i] = x[i] * y[i];
  };

  // Serial references, computed once.
  Tensor mm_ref({mm_n, mm_m});
  serial->MatMul(mm_a.data(), mm_b.data(), mm_ref.data(), mm_n, mm_k, mm_m);
  Tensor sp_ref({sp.rows(), 24});
  serial->Spmm(sp, sp_x.data(), sp_ref.data(), 24);
  Tensor ga_ref({static_cast<int64_t>(idx.size()), 24});
  serial->GatherRows(table.data(), 24, idx.data(),
                     static_cast<int64_t>(idx.size()), ga_ref.data());
  Tensor sc_ref({90, 24});
  serial->ScatterAddRows(sc_ref.data(), 90, 24, idx.data(),
                         static_cast<int64_t>(idx.size()), src.data());
  Tensor rd_ref({2500, 1});
  serial->RowDot(rd_a.data(), rd_b.data(), rd_ref.data(), 2500, 24);
  Tensor map_ref(ew.shape()), zip_ref(ew.shape());
  serial->EltwiseMap(ew.data(), map_ref.data(), ew.numel(), relu, 0.0f);
  serial->EltwiseZip(ew.data(), ew2.data(), zip_ref.data(), ew.numel(), mul,
                     0.0f);
  double sum_ref = serial->ReduceSum(ew.data(), ew.numel());

  for (int64_t workers : {int64_t{1}, int64_t{2}, int64_t{7}}) {
    ScopedShardWorkers scoped(workers);
    std::string ctx = "sharded@" + std::to_string(workers) + " workers ";

    Tensor mm_got({mm_n, mm_m});
    sharded->MatMul(mm_a.data(), mm_b.data(), mm_got.data(), mm_n, mm_k,
                    mm_m);
    ExpectBitIdentical(mm_ref, mm_got, ctx + "matmul");

    Tensor sp_got({sp.rows(), 24});
    sharded->Spmm(sp, sp_x.data(), sp_got.data(), 24);
    ExpectBitIdentical(sp_ref, sp_got, ctx + "spmm");

    Tensor ga_got({static_cast<int64_t>(idx.size()), 24});
    sharded->GatherRows(table.data(), 24, idx.data(),
                        static_cast<int64_t>(idx.size()), ga_got.data());
    ExpectBitIdentical(ga_ref, ga_got, ctx + "gather");

    Tensor sc_got({90, 24});
    sharded->ScatterAddRows(sc_got.data(), 90, 24, idx.data(),
                            static_cast<int64_t>(idx.size()), src.data());
    ExpectBitIdentical(sc_ref, sc_got, ctx + "scatter-add");

    Tensor rd_got({2500, 1});
    sharded->RowDot(rd_a.data(), rd_b.data(), rd_got.data(), 2500, 24);
    ExpectBitIdentical(rd_ref, rd_got, ctx + "rowdot");

    Tensor map_got(ew.shape()), zip_got(ew.shape());
    sharded->EltwiseMap(ew.data(), map_got.data(), ew.numel(), relu, 0.0f);
    sharded->EltwiseZip(ew.data(), ew2.data(), zip_got.data(), ew.numel(),
                        mul, 0.0f);
    ExpectBitIdentical(map_ref, map_got, ctx + "map");
    ExpectBitIdentical(zip_ref, zip_got, ctx + "zip");

    EXPECT_EQ(sum_ref, sharded->ReduceSum(ew.data(), ew.numel()))
        << ctx << "reduce-sum";
  }
}

TEST(ShardedBackendParityTest, SpmmPlanCacheSurvivesWorkerChanges) {
  // Re-running the same matrix across worker counts must re-plan, not
  // reuse a cached cut built for another pool size.
  const KernelBackend* serial = FindBackend("serial");
  const KernelBackend* sharded = FindBackend("sharded");
  util::Rng rng(38);
  CsrMatrix m = RandomCsr(300, 80, 0.15, &rng);
  Tensor x = Tensor::RandomNormal({80, 32}, &rng);
  Tensor ref({300, 32});
  serial->Spmm(m, x.data(), ref.data(), 32);
  for (int64_t workers : {int64_t{2}, int64_t{7}, int64_t{2}}) {
    ScopedShardWorkers scoped(workers);
    for (int round = 0; round < 2; ++round) {  // second hit uses the cache
      Tensor got({300, 32});
      sharded->Spmm(m, x.data(), got.data(), 32);
      ExpectBitIdentical(ref, got, "plan-cache spmm @" +
                                       std::to_string(workers) + " round " +
                                       std::to_string(round));
    }
  }
}

}  // namespace
}  // namespace tensor

// ---------------------------------------------------- sharded retrieval ----

namespace serve {
namespace {

using tensor::ScopedBackend;

// Serving model big enough for several catalogue shards
// (kShardMinItemsPerShard = 256), with duplicated item rows so exact ties
// cross shard boundaries.
std::shared_ptr<const core::ServingModel> TiedModel(int64_t num_users,
                                                    int64_t num_items,
                                                    int64_t width,
                                                    uint64_t seed) {
  core::ServingModel m;
  m.num_users = num_users;
  m.num_items = num_items;
  util::Rng rng(seed);
  m.embeddings = tensor::Tensor::RandomNormal({num_users + num_items, width},
                                              &rng);
  float* data = m.embeddings.data();
  // Clone item 3's embedding across the catalogue, including into other
  // shards, so the global top-k must break score ties by item id across
  // shard merges.
  for (int64_t clone : {int64_t{700}, int64_t{1400}, int64_t{2741}}) {
    if (clone >= num_items) continue;  // smaller catalogues skip the far clones
    for (int64_t c = 0; c < width; ++c) {
      data[(num_users + clone) * width + c] =
          data[(num_users + 3) * width + c];
    }
  }
  return std::make_shared<const core::ServingModel>(std::move(m));
}

std::vector<RecEntry> BruteForceTopN(const core::ServingModel& m,
                                     int64_t user, int64_t k,
                                     const SeenItems* seen = nullptr) {
  std::vector<RecEntry> all;
  for (int64_t item = 0; item < m.num_items; ++item) {
    if (seen != nullptr && seen->Contains(user, item)) continue;
    all.push_back({item, m.Score(user, item)});
  }
  std::sort(all.begin(), all.end(), BetterThan);
  if (static_cast<int64_t>(all.size()) > k) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

void ExpectExactlyEqual(const std::vector<RecEntry>& got,
                        const std::vector<RecEntry>& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << context << " position " << i;
    EXPECT_EQ(got[i].score, want[i].score)
        << context << " position " << i;  // bitwise
  }
}

TEST(ShardedRetrieverTest, MatchesBruteForceIncludingTies) {
  auto model = TiedModel(12, 3000, 8, 41);
  ExactRetriever unsharded(model, nullptr, ItemShardMode::kOff);
  ExactRetriever sharded(model, nullptr, ItemShardMode::kOn);
  for (int64_t workers : {int64_t{1}, int64_t{2}, int64_t{7}}) {
    ScopedShardWorkers scoped(workers);
    for (int64_t user : {int64_t{0}, int64_t{5}, int64_t{11}}) {
      for (int64_t k : {int64_t{1}, int64_t{10}, int64_t{300}}) {
        std::string ctx = "user " + std::to_string(user) + " k=" +
                          std::to_string(k) + " @" +
                          std::to_string(workers) + " workers";
        std::vector<RecEntry> want = BruteForceTopN(*model, user, k);
        ExpectExactlyEqual(sharded.RetrieveTopN(user, k), want, ctx);
        // The sharded merge must be bit-identical to the unsharded scan.
        ExpectExactlyEqual(sharded.RetrieveTopN(user, k),
                           unsharded.RetrieveTopN(user, k), ctx);
      }
    }
  }
}

TEST(ShardedRetrieverTest, SeenFilteringUnderSharding) {
  const int64_t num_users = 6, num_items = 2000;
  auto model = TiedModel(num_users, num_items, 8, 42);
  // Synthetic seen sets: user u has interacted with every item where
  // item % (u + 2) == 0 under the target behavior.
  data::Dataset d;
  d.name = "shard-seen";
  d.num_users = num_users;
  d.num_items = num_items;
  d.behavior_names = {"buy"};
  d.target_behavior = 0;
  for (int64_t u = 0; u < num_users; ++u) {
    for (int64_t item = 0; item < num_items; item += u + 2) {
      d.interactions.push_back({u, item, 0, item});
    }
  }
  auto seen = std::make_shared<const SeenItems>(SeenItems::FromDataset(d));
  ExactRetriever sharded(model, seen, ItemShardMode::kOn);
  ScopedShardWorkers scoped(3);
  for (int64_t u = 0; u < num_users; ++u) {
    ExpectExactlyEqual(sharded.RetrieveTopN(u, 25),
                       BruteForceTopN(*model, u, 25, seen.get()),
                       "seen user " + std::to_string(u));
  }
}

TEST(ShardedRetrieverTest, AutoModeFollowsActiveBackend) {
  auto model = TiedModel(4, 1500, 8, 43);
  ExactRetriever retriever(model);  // kAuto
  ScopedShardWorkers scoped(3);
  std::vector<RecEntry> serial_out, sharded_out;
  {
    ScopedBackend backend("serial");
    serial_out = retriever.RetrieveTopN(2, 40);
  }
  {
    ScopedBackend backend("sharded");
    sharded_out = retriever.RetrieveTopN(2, 40);
  }
  ExpectExactlyEqual(sharded_out, serial_out, "auto-mode parity");
  ExpectExactlyEqual(serial_out, BruteForceTopN(*model, 2, 40),
                     "serial vs brute force");
}

TEST(ShardedRetrieverTest, BatchMatchesPerUserUnderSharding) {
  auto model = TiedModel(40, 2000, 8, 44);
  ExactRetriever sharded(model, nullptr, ItemShardMode::kOn);
  ExactRetriever unsharded(model, nullptr, ItemShardMode::kOff);
  ScopedShardWorkers scoped(4);
  std::vector<int64_t> users;
  for (int64_t u = 0; u < 40; ++u) users.push_back((u * 17) % 40);
  auto got = sharded.RetrieveBatch(users, 15);
  auto want = unsharded.RetrieveBatch(users, 15);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectExactlyEqual(got[i], want[i], "batch slot " + std::to_string(i));
  }

  // Small batch (n < kUserBlock, a single user block): exercises the path
  // that shards the ITEM range once for the whole block instead of
  // fanning blocks out, including duplicate users and tie merging.
  std::vector<int64_t> small = {3, 11, 3, 25, 39};
  auto got_small = sharded.RetrieveBatch(small, 15);
  auto want_small = unsharded.RetrieveBatch(small, 15);
  ASSERT_EQ(got_small.size(), want_small.size());
  for (size_t i = 0; i < got_small.size(); ++i) {
    ExpectExactlyEqual(got_small[i], want_small[i],
                       "small batch slot " + std::to_string(i));
  }
}

}  // namespace
}  // namespace serve

// ------------------------------------------------- trainer shard timings ----

namespace core {
namespace {

TEST(TrainerShardStatsTest, EpochReportsPerShardTimingsUnderShardedBackend) {
  tensor::ScopedBackend backend("sharded");
  tensor::SetShardWorkers(2);
  data::Dataset full = data::GenerateSynthetic(data::MovieLensLike(0.4));
  data::TrainTestSplit split = data::LeaveLatestOut(full);
  GnmrConfig cfg;
  cfg.use_pretrain = false;
  cfg.num_layers = 1;
  cfg.epochs = 1;
  GnmrTrainer trainer(cfg, split.train);
  TrainStats stats = trainer.TrainEpoch();
  EXPECT_GT(stats.shard.dispatches, 0u)
      << "no kernel fanned out to the shard pool";
  EXPECT_GT(stats.shard.tasks, 0u);
  EXPECT_EQ(stats.shard.workers, 2);
  ASSERT_EQ(stats.shard.busy_seconds.size(), 2u);
  EXPECT_GT(stats.shard.TotalBusySeconds(), 0.0);
  EXPECT_GE(stats.shard.MaxBusySeconds(), 0.0);
}

TEST(TrainerShardStatsTest, LossCurveBitIdenticalToSerialBackend) {
  // Whole-training parity: the sharded backend must reproduce the serial
  // loss trajectory exactly (it reuses the serial kernel bodies per shard
  // and the fixed-chunk ReduceSum association).
  auto run_losses = [](const std::string& backend_name) {
    tensor::ScopedBackend backend(backend_name);
    data::Dataset full = data::GenerateSynthetic(data::MovieLensLike(0.3));
    data::TrainTestSplit split = data::LeaveLatestOut(full);
    GnmrConfig cfg;
    cfg.use_pretrain = false;
    cfg.num_layers = 1;
    cfg.epochs = 2;
    GnmrTrainer trainer(cfg, split.train);
    std::vector<double> losses;
    for (int64_t e = 0; e < cfg.epochs; ++e) {
      losses.push_back(trainer.TrainEpoch().mean_loss);
    }
    return losses;
  };
  tensor::SetShardWorkers(3);
  std::vector<double> serial = run_losses("serial");
  std::vector<double> sharded = run_losses("sharded");
  ASSERT_EQ(serial.size(), sharded.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e], sharded[e]) << "epoch " << e;  // bitwise
  }
}

TEST(TrainerShardStatsTest, OtherBackendsReportZeroShardActivity) {
  tensor::ScopedBackend backend("serial");
  data::Dataset full = data::GenerateSynthetic(data::MovieLensLike(0.3));
  data::TrainTestSplit split = data::LeaveLatestOut(full);
  GnmrConfig cfg;
  cfg.use_pretrain = false;
  cfg.num_layers = 1;
  cfg.epochs = 1;
  GnmrTrainer trainer(cfg, split.train);
  EpochStats stats = trainer.TrainEpoch();
  EXPECT_EQ(stats.shard.dispatches, 0u);
  EXPECT_EQ(stats.shard.tasks, 0u);
}

}  // namespace
}  // namespace core
}  // namespace gnmr
