// Configuration-space tests of the GNMR model: every documented config
// combination must construct, train a step and produce finite scores.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/gnmr_trainer.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"

namespace gnmr {
namespace core {
namespace {

data::Dataset SmallData() {
  return data::GenerateSynthetic(data::YelpLike(0.1, 31));
}

void TrainAndCheckFinite(GnmrConfig cfg, const data::Dataset& train) {
  cfg.epochs = 2;
  cfg.use_pretrain = false;
  GnmrTrainer trainer(cfg, train);
  trainer.Train();
  trainer.model().RefreshInferenceCache();
  for (int64_t u = 0; u < 3; ++u) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isfinite(trainer.model().Score(u, j)))
          << "u=" << u << " j=" << j;
    }
  }
}

struct ConfigCase {
  std::string label;
  GnmrConfig cfg;
};

class GnmrConfigMatrixTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(GnmrConfigMatrixTest, TrainsFinite) {
  TrainAndCheckFinite(GetParam().cfg, SmallData());
}

std::vector<ConfigCase> AllConfigCases() {
  std::vector<ConfigCase> cases;
  auto base = [] {
    GnmrConfig c;
    c.embedding_dim = 8;
    c.num_channels = 4;
    c.num_heads = 2;
    c.batch_users = 64;
    return c;
  };
  {
    ConfigCase c{"single_head", base()};
    c.cfg.num_heads = 1;
    cases.push_back(c);
  }
  {
    ConfigCase c{"four_heads", base()};
    c.cfg.num_heads = 4;
    cases.push_back(c);
  }
  {
    ConfigCase c{"one_channel", base()};
    c.cfg.num_channels = 1;
    cases.push_back(c);
  }
  {
    ConfigCase c{"wide_gate", base()};
    c.cfg.gate_hidden_dim = 32;
    cases.push_back(c);
  }
  {
    ConfigCase c{"sum_norm", base()};
    c.cfg.neighbor_norm = graph::NeighborNorm::kSum;
    cases.push_back(c);
  }
  {
    ConfigCase c{"mean_norm", base()};
    c.cfg.neighbor_norm = graph::NeighborNorm::kMean;
    cases.push_back(c);
  }
  {
    ConfigCase c{"sum_readout", base()};
    c.cfg.readout = GnmrConfig::Readout::kSumLayers;
    cases.push_back(c);
  }
  {
    ConfigCase c{"deep", base()};
    c.cfg.num_layers = 3;
    cases.push_back(c);
  }
  {
    ConfigCase c{"no_clip", base()};
    c.cfg.grad_clip = 0.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"multi_positive", base()};
    c.cfg.positives_per_user = 3;
    c.cfg.negatives_per_positive = 2;
    cases.push_back(c);
  }
  {
    ConfigCase c{"sgd_style_margin", base()};
    c.cfg.margin = 0.2f;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GnmrConfigMatrixTest, ::testing::ValuesIn(AllConfigCases()),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return info.param.label;
    });

TEST(GnmrConfigTest, ReadoutChangesInferenceCacheWidth) {
  data::Dataset train = SmallData();
  GnmrConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_channels = 4;
  cfg.use_pretrain = false;
  cfg.num_layers = 2;

  cfg.readout = GnmrConfig::Readout::kConcat;
  GnmrModel concat_model(cfg, train);
  concat_model.RefreshInferenceCache();
  EXPECT_EQ(concat_model.inference_cache().cols(), 3 * 8);

  cfg.readout = GnmrConfig::Readout::kSumLayers;
  GnmrModel sum_model(cfg, train);
  sum_model.RefreshInferenceCache();
  EXPECT_EQ(sum_model.inference_cache().cols(), 8);
}

TEST(GnmrConfigDeathTest, InvalidConfigsAbort) {
  data::Dataset train = SmallData();
  {
    GnmrConfig cfg;
    cfg.embedding_dim = 10;
    cfg.num_heads = 4;  // does not divide
    EXPECT_DEATH(GnmrModel(cfg, train), "");
  }
  {
    GnmrConfig cfg;
    cfg.num_layers = -1;
    EXPECT_DEATH(GnmrModel(cfg, train), "");
  }
}

TEST(GnmrTrainerTest, EpochStatsArePopulated) {
  data::Dataset train = SmallData();
  GnmrConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_channels = 4;
  cfg.use_pretrain = false;
  GnmrTrainer trainer(cfg, train);
  EpochStats s0 = trainer.TrainEpoch();
  EpochStats s1 = trainer.TrainEpoch();
  EXPECT_EQ(s0.epoch, 0);
  EXPECT_EQ(s1.epoch, 1);
  EXPECT_GT(s0.mean_loss, 0.0);
  EXPECT_GE(s0.grad_norm, 0.0);
  EXPECT_GT(s0.seconds, 0.0);
}

TEST(GnmrTrainerTest, TrainCallbackSeesEveryEpoch) {
  data::Dataset train = SmallData();
  GnmrConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_channels = 4;
  cfg.epochs = 5;
  cfg.use_pretrain = false;
  GnmrTrainer trainer(cfg, train);
  int64_t count = 0;
  trainer.Train([&count](const EpochStats& s) {
    EXPECT_EQ(s.epoch, count);
    ++count;
  });
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace core
}  // namespace gnmr
