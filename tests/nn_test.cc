// Tests for nn layers, optimisers and the autoencoder pre-trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/nn/embedding.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"
#include "src/nn/mlp.h"
#include "src/nn/optimizer.h"
#include "src/nn/pretrain.h"
#include "src/tensor/ad_ops.h"
#include "src/tensor/gradcheck.h"
#include "src/util/rng.h"

namespace gnmr {
namespace nn {
namespace {

using tensor::Tensor;

// -------------------------------------------------------------------- init ----

TEST(InitTest, XavierUniformBounds) {
  util::Rng rng(1);
  Tensor w = XavierUniform(100, 50, &rng);
  float a = std::sqrt(6.0f / 150.0f);
  EXPECT_GE(w.MinValue(), -a);
  EXPECT_LT(w.MaxValue(), a);
  EXPECT_NEAR(w.MeanValue(), 0.0f, 0.01f);
}

TEST(InitTest, HeNormalVariance) {
  util::Rng rng(2);
  Tensor w = HeNormal(200, 100, &rng);
  double var = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    var += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

// ------------------------------------------------------------------ Linear ----

TEST(LinearTest, ForwardShapeAndBias) {
  util::Rng rng(3);
  Linear layer(4, 3, /*use_bias=*/true, &rng);
  ad::Var x = ad::Var::Constant(Tensor::Ones({2, 4}));
  ad::Var y = layer.Forward(x);
  EXPECT_EQ(y.value().rows(), 2);
  EXPECT_EQ(y.value().cols(), 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  util::Rng rng(4);
  Linear layer(4, 3, /*use_bias=*/false, &rng);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, GradCheck) {
  util::Rng rng(5);
  Linear layer(3, 2, true, &rng);
  ad::Var x = ad::Var::Param(Tensor::RandomNormal({4, 3}, &rng));
  std::vector<ad::Var> params = layer.Parameters();
  params.push_back(x);
  auto report = ad::GradCheck(
      [&] { return ad::MeanAll(ad::Square(layer.Forward(x))); }, params);
  EXPECT_TRUE(report.Accept(2e-2, 2e-3)) << report.worst;
}

// --------------------------------------------------------------- Embedding ----

TEST(EmbeddingTest, LookupGathersRows) {
  util::Rng rng(6);
  Embedding emb(5, 3, &rng);
  ad::Var rows = emb.Lookup({1, 1, 4});
  EXPECT_EQ(rows.value().rows(), 3);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(rows.value().at(0, c), emb.table().value().at(1, c));
    EXPECT_EQ(rows.value().at(1, c), emb.table().value().at(1, c));
    EXPECT_EQ(rows.value().at(2, c), emb.table().value().at(4, c));
  }
}

TEST(EmbeddingTest, FromExternalTable) {
  Embedding emb(Tensor::FromData({2, 2}, {1, 2, 3, 4}));
  EXPECT_EQ(emb.count(), 2);
  EXPECT_EQ(emb.dim(), 2);
  EXPECT_EQ(emb.Lookup({1}).value().at(0, 1), 4.0f);
}

TEST(EmbeddingTest, LookupGradientIsSparseScatter) {
  util::Rng rng(7);
  Embedding emb(4, 2, &rng);
  ad::Var rows = emb.Lookup({2, 2});
  ad::Backward(ad::SumAll(rows));
  const Tensor& g = emb.table().grad();
  EXPECT_EQ(g.at(2, 0), 2.0f);  // two lookups accumulate
  EXPECT_EQ(g.at(0, 0), 0.0f);
  EXPECT_EQ(g.at(3, 1), 0.0f);
}

// --------------------------------------------------------------------- MLP ----

TEST(MlpTest, ShapesAndParamCount) {
  util::Rng rng(8);
  Mlp mlp({6, 8, 4, 1}, Activation::kRelu, Activation::kNone, &rng);
  ad::Var x = ad::Var::Constant(Tensor::Ones({3, 6}));
  ad::Var y = mlp.Forward(x);
  EXPECT_EQ(y.value().rows(), 3);
  EXPECT_EQ(y.value().cols(), 1);
  EXPECT_EQ(mlp.NumParameters(), (6 * 8 + 8) + (8 * 4 + 4) + (4 * 1 + 1));
}

TEST(MlpTest, FinalActivationApplied) {
  util::Rng rng(9);
  Mlp mlp({2, 2}, Activation::kNone, Activation::kSigmoid, &rng);
  ad::Var x = ad::Var::Constant(Tensor::RandomNormal({5, 2}, &rng, 0, 10));
  ad::Var y = mlp.Forward(x);
  EXPECT_GE(y.value().MinValue(), 0.0f);
  EXPECT_LE(y.value().MaxValue(), 1.0f);
}

TEST(MlpTest, GradCheckThroughTwoLayers) {
  util::Rng rng(10);
  Mlp mlp({3, 4, 2}, Activation::kTanh, Activation::kNone, &rng);
  ad::Var x = ad::Var::Param(Tensor::RandomNormal({5, 3}, &rng));
  std::vector<ad::Var> params = mlp.Parameters();
  params.push_back(x);
  auto report = ad::GradCheck(
      [&] { return ad::MeanAll(ad::Square(mlp.Forward(x))); }, params);
  EXPECT_TRUE(report.Accept(2e-2, 2e-3)) << report.worst;
}

// -------------------------------------------------------------- Optimisers ----

TEST(SgdTest, ConvergesOnQuadratic) {
  // min (x - 3)^2
  ad::Var x = ad::Var::Param(Tensor::Scalar(0.0f));
  Sgd opt(0.1);
  for (int i = 0; i < 100; ++i) {
    ad::Var loss = ad::SumAll(ad::Square(ad::AddScalar(x, -3.0f)));
    ad::Backward(loss);
    opt.Step({x});
  }
  EXPECT_NEAR(x.value().at(0), 3.0f, 1e-3f);
}

TEST(SgdTest, MomentumAccelerates) {
  ad::Var x1 = ad::Var::Param(Tensor::Scalar(0.0f));
  ad::Var x2 = ad::Var::Param(Tensor::Scalar(0.0f));
  Sgd plain(0.01);
  Sgd momentum(0.01, 0.9);
  for (int i = 0; i < 30; ++i) {
    ad::Backward(ad::SumAll(ad::Square(ad::AddScalar(x1, -3.0f))));
    plain.Step({x1});
    ad::Backward(ad::SumAll(ad::Square(ad::AddScalar(x2, -3.0f))));
    momentum.Step({x2});
  }
  EXPECT_LT(std::fabs(x2.value().at(0) - 3.0f),
            std::fabs(x1.value().at(0) - 3.0f));
}

TEST(AdamTest, ConvergesOnQuadraticBowl) {
  util::Rng rng(11);
  ad::Var x = ad::Var::Param(Tensor::RandomNormal({4, 4}, &rng));
  Adam opt(0.05);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int i = 0; i < 200; ++i) {
    ad::Var loss = ad::MeanAll(ad::Square(ad::AddScalar(x, -1.0f)));
    if (i == 0) first_loss = loss.value().at(0);
    last_loss = loss.value().at(0);
    ad::Backward(loss);
    opt.Step({x});
  }
  EXPECT_LT(last_loss, 1e-4f);
  EXPECT_LT(last_loss, first_loss);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  // With zero gradient signal, decoupled decay pulls weights toward 0.
  ad::Var x = ad::Var::Param(Tensor::Full({3}, 1.0f));
  Adam opt(0.01, 0.9, 0.999, 1e-8, /*weight_decay=*/0.5);
  for (int i = 0; i < 50; ++i) {
    // Constant loss w.r.t. x has zero grad; fabricate a zero grad by using
    // 0 * x so the optimiser still sees the parameter.
    ad::Var loss = ad::SumAll(ad::MulScalar(x, 0.0f));
    ad::Backward(loss);
    opt.Step({x});
  }
  EXPECT_LT(x.value().at(0), 0.9f);
}

TEST(AdamTest, LearningRateDecay) {
  Adam opt(1.0);
  opt.DecayLearningRate(0.96);
  opt.DecayLearningRate(0.96);
  EXPECT_NEAR(opt.learning_rate(), 0.96 * 0.96, 1e-12);
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  ad::Var with_grad = ad::Var::Param(Tensor::Scalar(1.0f));
  ad::Var without_grad = ad::Var::Param(Tensor::Scalar(1.0f));
  ad::Backward(ad::SumAll(ad::Square(with_grad)));
  Sgd opt(0.1);
  opt.Step({with_grad, without_grad});
  EXPECT_NE(with_grad.value().at(0), 1.0f);
  EXPECT_EQ(without_grad.value().at(0), 1.0f);
}

TEST(GradClipTest, ScalesDownLargeGradients) {
  ad::Var x = ad::Var::Param(Tensor::Full({4}, 10.0f));
  ad::Backward(ad::SumAll(ad::Square(x)));  // grad = 20 each, norm = 40
  EXPECT_NEAR(GlobalGradNorm({x}), 40.0, 1e-3);
  ClipGradNorm({x}, 1.0);
  EXPECT_NEAR(GlobalGradNorm({x}), 1.0, 1e-4);
}

TEST(GradClipTest, LeavesSmallGradientsAlone) {
  ad::Var x = ad::Var::Param(Tensor::Full({4}, 0.01f));
  ad::Backward(ad::SumAll(ad::Square(x)));
  double before = GlobalGradNorm({x});
  ClipGradNorm({x}, 1.0);
  EXPECT_NEAR(GlobalGradNorm({x}), before, 1e-9);
}

// ---------------------------------------------------------------- Pretrain ----

TEST(PretrainTest, ShapesAndDeterminism) {
  data::Dataset d = data::GenerateSynthetic(data::MovieLensLike(0.08));
  PretrainConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  util::Rng rng1(42), rng2(42);
  auto a = PretrainEmbeddings(d, cfg, &rng1);
  auto b = PretrainEmbeddings(d, cfg, &rng2);
  EXPECT_EQ(a.user.rows(), d.num_users);
  EXPECT_EQ(a.user.cols(), 8);
  EXPECT_EQ(a.item.rows(), d.num_items);
  for (int64_t i = 0; i < a.user.numel(); ++i) {
    EXPECT_EQ(a.user.data()[i], b.user.data()[i]);
  }
  EXPECT_FALSE(a.user.HasNonFinite());
  EXPECT_FALSE(a.item.HasNonFinite());
}

TEST(PretrainTest, EmbeddingsCarrySignal) {
  // Users sharing many interactions should end up closer in embedding space
  // than users sharing none. Build a two-cluster dataset.
  data::Dataset d;
  d.name = "clusters";
  d.num_users = 20;
  d.num_items = 40;
  d.behavior_names = {"view", "buy"};
  d.target_behavior = 1;
  for (int64_t u = 0; u < 20; ++u) {
    bool cluster_a = u < 10;
    for (int64_t j = 0; j < 12; ++j) {
      int64_t item = cluster_a ? j : 20 + j;
      d.interactions.push_back({u, item, 0, j});
      if (j < 4) d.interactions.push_back({u, item, 1, j});
    }
  }
  PretrainConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 10;
  cfg.learning_rate = 1e-2;
  util::Rng rng(7);
  auto emb = PretrainEmbeddings(d, cfg, &rng);
  auto dist = [&](int64_t a, int64_t b) {
    double s = 0.0;
    for (int64_t c = 0; c < 8; ++c) {
      double diff = emb.user.at(a, c) - emb.user.at(b, c);
      s += diff * diff;
    }
    return s;
  };
  // Average intra-cluster vs inter-cluster distance.
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int64_t a = 0; a < 20; ++a) {
    for (int64_t b = a + 1; b < 20; ++b) {
      if ((a < 10) == (b < 10)) {
        intra += dist(a, b);
        ++n_intra;
      } else {
        inter += dist(a, b);
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

}  // namespace
}  // namespace nn
}  // namespace gnmr
