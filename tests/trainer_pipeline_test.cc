// Determinism regression tests of the pipelined trainer: batch sampling
// comes from per-batch seeded RNG streams, so the producer/consumer
// pipeline must reproduce the serial loop's loss trajectory bit-for-bit,
// and a fixed seed must reproduce itself run to run.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/gnmr_config.h"
#include "src/core/gnmr_trainer.h"
#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/tensor/backend.h"

namespace gnmr {
namespace core {
namespace {

GnmrConfig PipelineTestConfig() {
  GnmrConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_channels = 4;
  cfg.num_layers = 1;
  cfg.use_pretrain = false;
  cfg.epochs = 4;
  // Small batches so every epoch runs several pipeline handoffs.
  cfg.batch_users = 16;
  cfg.positives_per_user = 2;
  cfg.negatives_per_positive = 2;
  return cfg;
}

data::Dataset TestData() {
  return data::GenerateSynthetic(data::MovieLensLike(0.2, 7));
}

std::vector<double> LossCurve(GnmrTrainer* trainer, int64_t epochs) {
  std::vector<double> losses;
  for (int64_t e = 0; e < epochs; ++e) {
    losses.push_back(trainer->TrainEpoch().mean_loss);
  }
  return losses;
}

TEST(TrainerPipelineTest, PipelinedMatchesSerialLossCurveExactly) {
  data::Dataset train = TestData();
  GnmrConfig on = PipelineTestConfig();
  on.pipeline_batches = true;
  GnmrConfig off = PipelineTestConfig();
  off.pipeline_batches = false;

  GnmrTrainer pipelined(on, train);
  GnmrTrainer serial(off, train);
  std::vector<double> pipelined_losses = LossCurve(&pipelined, on.epochs);
  std::vector<double> serial_losses = LossCurve(&serial, off.epochs);

  ASSERT_EQ(pipelined_losses.size(), serial_losses.size());
  for (size_t e = 0; e < serial_losses.size(); ++e) {
    EXPECT_EQ(pipelined_losses[e], serial_losses[e]) << "epoch " << e;
    EXPECT_GT(serial_losses[e], 0.0) << "epoch " << e;
  }

  // The trained models are interchangeable too, not just the summaries.
  pipelined.model().RefreshInferenceCache();
  serial.model().RefreshInferenceCache();
  for (int64_t u = 0; u < 5; ++u) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(pipelined.model().Score(u, j), serial.model().Score(u, j));
    }
  }
}

TEST(TrainerPipelineTest, SameSeedReproducesPipelinedRun) {
  data::Dataset train = TestData();
  GnmrConfig cfg = PipelineTestConfig();
  cfg.pipeline_batches = true;
  GnmrTrainer a(cfg, train), b(cfg, train);
  std::vector<double> la = LossCurve(&a, cfg.epochs);
  std::vector<double> lb = LossCurve(&b, cfg.epochs);
  EXPECT_EQ(la, lb);
}

TEST(TrainerPipelineTest, DifferentSeedsDiverge) {
  data::Dataset train = TestData();
  GnmrConfig cfg = PipelineTestConfig();
  GnmrConfig other = cfg;
  other.seed = cfg.seed + 1;
  GnmrTrainer a(cfg, train), b(other, train);
  std::vector<double> la = LossCurve(&a, cfg.epochs);
  std::vector<double> lb = LossCurve(&b, cfg.epochs);
  EXPECT_NE(la, lb);
}

TEST(TrainerPipelineTest, SingleBatchEpochStillTrains) {
  // batch_users above the user count degenerates to one batch per epoch;
  // the pipeline path must handle the no-overlap case.
  data::Dataset train = TestData();
  GnmrConfig cfg = PipelineTestConfig();
  cfg.batch_users = 1 << 20;
  cfg.pipeline_batches = true;
  GnmrTrainer trainer(cfg, train);
  EpochStats stats = trainer.TrainEpoch();
  EXPECT_GT(stats.mean_loss, 0.0);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
}

TEST(TrainerPipelineTest, PipelineIsDeterministicPerKernelBackend) {
  // The trainer contract holds under every registered kernel backend:
  // pipelined == serial, whatever executes the tensor kernels underneath.
  data::Dataset train = TestData();
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    tensor::ScopedBackend scoped(backend->name());
    GnmrConfig on = PipelineTestConfig();
    on.epochs = 2;
    on.pipeline_batches = true;
    GnmrConfig off = on;
    off.pipeline_batches = false;
    GnmrTrainer pipelined(on, train);
    GnmrTrainer serial(off, train);
    EXPECT_EQ(LossCurve(&pipelined, on.epochs),
              LossCurve(&serial, off.epochs))
        << backend->name();
  }
}

}  // namespace
}  // namespace core
}  // namespace gnmr
