// Tests for datasets, splits, loaders, statistics and the synthetic
// generators (including the statistical properties the reproduction
// depends on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "src/data/dataset.h"
#include "src/util/csv.h"
#include "src/data/loader.h"
#include "src/data/split.h"
#include "src/data/statistics.h"
#include "src/data/synthetic.h"
#include "src/util/rng.h"

namespace gnmr {
namespace data {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.name = "tiny";
  d.num_users = 3;
  d.num_items = 4;
  d.behavior_names = {"view", "buy"};
  d.target_behavior = 1;
  d.interactions = {
      {0, 0, 0, 0}, {0, 1, 0, 1}, {0, 1, 1, 2}, {0, 2, 1, 3},
      {1, 1, 0, 0}, {1, 2, 1, 1}, {1, 3, 1, 2},
      {2, 3, 0, 0}, {2, 3, 1, 1},
  };
  return d;
}

// ----------------------------------------------------------------- Dataset ----

TEST(DatasetTest, ValidatePasses) {
  EXPECT_TRUE(TinyDataset().Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadIds) {
  Dataset d = TinyDataset();
  d.interactions.push_back({5, 0, 0, 0});
  EXPECT_FALSE(d.Validate().ok());
  d = TinyDataset();
  d.interactions.push_back({0, 9, 0, 0});
  EXPECT_FALSE(d.Validate().ok());
  d = TinyDataset();
  d.target_behavior = 7;
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, CountBehavior) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.CountBehavior(0), 4);
  EXPECT_EQ(d.CountBehavior(1), 5);
}

TEST(DatasetTest, BuildGraphMatchesEvents) {
  Dataset d = TinyDataset();
  auto g = d.BuildGraph();
  EXPECT_EQ(g->num_users(), 3);
  EXPECT_EQ(g->NumEdges(1), 5);
  EXPECT_TRUE(g->HasEdge(0, 2, 1));
}

TEST(FilterBehaviorsTest, DropsAndRemaps) {
  Dataset d = TinyDataset();
  Dataset f = FilterBehaviors(d, {false, true});
  EXPECT_EQ(f.num_behaviors(), 1);
  EXPECT_EQ(f.behavior_names[0], "buy");
  EXPECT_EQ(f.target_behavior, 0);
  EXPECT_EQ(static_cast<int64_t>(f.interactions.size()), 5);
  for (const auto& e : f.interactions) EXPECT_EQ(e.behavior, 0);
}

TEST(FilterBehaviorsTest, OnlyTargetHelper) {
  Dataset f = OnlyTargetBehavior(TinyDataset());
  EXPECT_EQ(f.num_behaviors(), 1);
  EXPECT_EQ(f.behavior_names[0], "buy");
}

TEST(FilterBehaviorsDeathTest, CannotDropTarget) {
  Dataset d = TinyDataset();
  EXPECT_DEATH(FilterBehaviors(d, {true, false}), "target");
}

// ------------------------------------------------------------------- Split ----

TEST(SplitTest, HoldsOutLatestTargetInteraction) {
  Dataset d = TinyDataset();
  TrainTestSplit split = LeaveLatestOut(d, /*min_target_interactions=*/2);
  // u0 latest buy: item 2 (ts 3); u1 latest buy: item 3 (ts 2); u2 has only
  // 1 buy -> not held out.
  ASSERT_EQ(split.test.size(), 2u);
  std::map<int64_t, int64_t> held;
  for (const auto& t : split.test) held[t.user] = t.positive_item;
  EXPECT_EQ(held[0], 2);
  EXPECT_EQ(held[1], 3);
  EXPECT_EQ(split.train.interactions.size(), d.interactions.size() - 2);
  // The held-out events are gone from train.
  auto g = split.train.BuildGraph();
  EXPECT_FALSE(g->HasEdge(0, 2, 1));
  EXPECT_FALSE(g->HasEdge(1, 3, 1));
  // Auxiliary behaviors untouched.
  EXPECT_TRUE(g->HasEdge(0, 1, 0));
}

TEST(SplitTest, MinTargetInteractionsRespected) {
  Dataset d = TinyDataset();
  TrainTestSplit split = LeaveLatestOut(d, /*min_target_interactions=*/1);
  EXPECT_EQ(split.test.size(), 3u);  // now u2 also held out
}

TEST(SplitTest, EvalCandidatesExcludePositivesAndDuplicates) {
  Dataset d = TinyDataset();
  TrainTestSplit split = LeaveLatestOut(d, 2);
  util::Rng rng(3);
  auto cands = BuildEvalCandidates(split.train, split.test,
                                   /*num_negatives=*/2, &rng);
  ASSERT_EQ(cands.size(), split.test.size());
  auto g = split.train.BuildGraph();
  for (const auto& c : cands) {
    EXPECT_EQ(c.negatives.size(), 2u);
    std::set<int64_t> uniq(c.negatives.begin(), c.negatives.end());
    EXPECT_EQ(uniq.size(), c.negatives.size());
    for (int64_t neg : c.negatives) {
      EXPECT_NE(neg, c.positive_item);
      EXPECT_FALSE(g->HasEdge(c.user, neg, split.train.target_behavior));
    }
  }
}

// ------------------------------------------------------------------ Loader ----

TEST(LoaderTest, SaveLoadRoundTrip) {
  Dataset d = TinyDataset();
  std::string path = testing::TempDir() + "/gnmr_ds_roundtrip.tsv";
  ASSERT_TRUE(SaveDataset(d, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& l = loaded.value();
  EXPECT_EQ(l.name, d.name);
  EXPECT_EQ(l.num_users, d.num_users);
  EXPECT_EQ(l.num_items, d.num_items);
  EXPECT_EQ(l.behavior_names, d.behavior_names);
  EXPECT_EQ(l.target_behavior, d.target_behavior);
  ASSERT_EQ(l.interactions.size(), d.interactions.size());
  for (size_t i = 0; i < l.interactions.size(); ++i) {
    EXPECT_EQ(l.interactions[i].user, d.interactions[i].user);
    EXPECT_EQ(l.interactions[i].item, d.interactions[i].item);
    EXPECT_EQ(l.interactions[i].behavior, d.interactions[i].behavior);
    EXPECT_EQ(l.interactions[i].timestamp, d.interactions[i].timestamp);
  }
  std::remove(path.c_str());
}

TEST(LoaderTest, RejectsMissingHeader) {
  std::string path = testing::TempDir() + "/gnmr_ds_noheader.tsv";
  ASSERT_TRUE(util::WriteStringToFile(path, "0\t1\t0\t0\n").ok());
  EXPECT_FALSE(LoadDataset(path).ok());
  std::remove(path.c_str());
}

TEST(LoaderTest, LoadRawTsvInfersShape) {
  std::string path = testing::TempDir() + "/gnmr_ds_raw.tsv";
  ASSERT_TRUE(util::WriteStringToFile(
                  path, "# comment\n0\t5\t0\n2\t1\t1\t42\n1\t0\t0\n")
                  .ok());
  auto loaded = LoadRawTsv(path, {"view", "buy"}, 1, "raw-test");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_users, 3);
  EXPECT_EQ(loaded.value().num_items, 6);
  EXPECT_EQ(loaded.value().interactions.size(), 3u);
  EXPECT_EQ(loaded.value().interactions[1].timestamp, 42);
  std::remove(path.c_str());
}

TEST(LoaderTest, LoadRawTsvRejectsBadRows) {
  std::string path = testing::TempDir() + "/gnmr_ds_bad.tsv";
  ASSERT_TRUE(util::WriteStringToFile(path, "0\t1\n").ok());
  EXPECT_FALSE(LoadRawTsv(path, {"a"}, 0).ok());
  std::remove(path.c_str());
}

// -------------------------------------------------------------- Statistics ----

TEST(StatsTest, CountsAndDensity) {
  DatasetStats s = ComputeStats(TinyDataset());
  EXPECT_EQ(s.num_interactions, 9);
  EXPECT_EQ(s.per_behavior[0].second, 4);
  EXPECT_EQ(s.per_behavior[1].second, 5);
  EXPECT_NEAR(s.density, 9.0 / (3 * 4 * 2), 1e-9);
  EXPECT_NEAR(s.avg_interactions_per_user, 3.0, 1e-9);
  EXPECT_NEAR(s.target_user_coverage, 1.0, 1e-9);
}

TEST(StatsTest, GiniZeroForUniform) {
  Dataset d;
  d.name = "uniform";
  d.num_users = 4;
  d.num_items = 4;
  d.behavior_names = {"x"};
  d.target_behavior = 0;
  for (int64_t u = 0; u < 4; ++u)
    for (int64_t j = 0; j < 4; ++j) d.interactions.push_back({u, j, 0, 0});
  DatasetStats s = ComputeStats(d);
  EXPECT_NEAR(s.item_gini, 0.0, 1e-6);
}

TEST(StatsTest, GiniHighForConcentrated) {
  Dataset d;
  d.name = "conc";
  d.num_users = 10;
  d.num_items = 50;
  d.behavior_names = {"x"};
  d.target_behavior = 0;
  for (int64_t u = 0; u < 10; ++u) d.interactions.push_back({u, 0, 0, 0});
  DatasetStats s = ComputeStats(d);
  EXPECT_GT(s.item_gini, 0.9);
}

// --------------------------------------------------------------- Synthetic ----

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig cfg = MovieLensLike(0.1);
  Dataset a = GenerateSynthetic(cfg);
  Dataset b = GenerateSynthetic(cfg);
  ASSERT_EQ(a.interactions.size(), b.interactions.size());
  for (size_t i = 0; i < a.interactions.size(); ++i) {
    EXPECT_EQ(a.interactions[i].user, b.interactions[i].user);
    EXPECT_EQ(a.interactions[i].item, b.interactions[i].item);
    EXPECT_EQ(a.interactions[i].behavior, b.interactions[i].behavior);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  Dataset a = GenerateSynthetic(MovieLensLike(0.1, 1));
  Dataset b = GenerateSynthetic(MovieLensLike(0.1, 2));
  // Counts can coincide at tiny scales; the event content must not.
  size_t n = std::min(a.interactions.size(), b.interactions.size());
  int64_t differing = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a.interactions[i].item != b.interactions[i].item ||
        a.interactions[i].behavior != b.interactions[i].behavior) {
      ++differing;
    }
  }
  EXPECT_GT(differing, static_cast<int64_t>(n / 4));
}

TEST(SyntheticTest, MovieLensShape) {
  Dataset d = GenerateSynthetic(MovieLensLike(0.25));
  ASSERT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.num_behaviors(), 3);
  EXPECT_EQ(d.behavior_names[2], "like");
  EXPECT_EQ(d.target_behavior, 2);
  DatasetStats s = ComputeStats(d);
  // Bucket masses roughly follow the configured quantiles.
  double total = static_cast<double>(s.num_interactions);
  EXPECT_NEAR(s.per_behavior[0].second / total, 0.20, 0.07);  // dislike
  EXPECT_NEAR(s.per_behavior[2].second / total, 0.22, 0.08);  // like
  // Popularity skew present.
  EXPECT_GT(s.item_gini, 0.25);
}

TEST(SyntheticTest, YelpShapeIncludesTip) {
  Dataset d = GenerateSynthetic(YelpLike(0.25));
  ASSERT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.num_behaviors(), 4);
  EXPECT_EQ(d.behavior_names[3], "tip");
  EXPECT_EQ(d.behavior_names[static_cast<size_t>(d.target_behavior)], "like");
  // Tips exist but are rarer than likes.
  EXPECT_GT(d.CountBehavior(3), 0);
  EXPECT_LT(d.CountBehavior(3), d.CountBehavior(2));
}

TEST(SyntheticTest, TaobaoFunnelIsNested) {
  Dataset d = GenerateSynthetic(TaobaoLike(0.25));
  ASSERT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.num_behaviors(), 4);
  EXPECT_EQ(d.behavior_names[3], "purchase");
  EXPECT_EQ(d.target_behavior, 3);
  // Funnel: page views dominate; purchases are rare.
  int64_t pv = d.CountBehavior(0), buy = d.CountBehavior(3);
  EXPECT_GT(pv, 4 * buy);
  // Structural nesting: almost every purchase has a matching page view.
  auto g = d.BuildGraph();
  int64_t nested = 0, total = 0;
  for (const auto& e : d.interactions) {
    if (e.behavior != 3) continue;
    ++total;
    if (g->HasEdge(e.user, e.item, 0)) ++nested;
  }
  ASSERT_GT(total, 0);
  // The funnel leaks (gate_bypass_prob) but most purchases follow a view.
  EXPECT_GT(static_cast<double>(nested) / static_cast<double>(total), 0.55);
}

TEST(SyntheticTest, EveryUserHasMinTargetEvents) {
  for (const SyntheticConfig& cfg :
       {MovieLensLike(0.15), YelpLike(0.15), TaobaoLike(0.15)}) {
    Dataset d = GenerateSynthetic(cfg);
    std::vector<int64_t> count(static_cast<size_t>(d.num_users), 0);
    std::vector<std::set<int64_t>> items(static_cast<size_t>(d.num_users));
    for (const auto& e : d.interactions) {
      if (e.behavior == d.target_behavior &&
          items[static_cast<size_t>(e.user)].insert(e.item).second) {
        count[static_cast<size_t>(e.user)] += 1;
      }
    }
    for (int64_t u = 0; u < d.num_users; ++u) {
      EXPECT_GE(count[static_cast<size_t>(u)], cfg.min_target_per_user)
          << cfg.name << " user " << u;
    }
  }
}

TEST(SyntheticTest, AuxiliaryBehaviorsCorrelateWithTarget) {
  // The reproduction hinges on auxiliary behaviors predicting the target:
  // items a user page-viewed must be far more likely to be purchased than
  // random items. Compute the lift on the Taobao-like funnel.
  Dataset d = GenerateSynthetic(TaobaoLike(0.3));
  auto g = d.BuildGraph();
  int64_t viewed_pairs = 0, viewed_and_bought = 0;
  for (int64_t u = 0; u < d.num_users; ++u) {
    for (int64_t j : g->ItemsOf(u, 0)) {
      ++viewed_pairs;
      if (g->HasEdge(u, j, 3)) ++viewed_and_bought;
    }
  }
  double p_buy_given_view =
      static_cast<double>(viewed_and_bought) / viewed_pairs;
  double p_buy_overall = static_cast<double>(g->NumEdges(3)) /
                         (static_cast<double>(d.num_users) * d.num_items);
  EXPECT_GT(p_buy_given_view, 10.0 * p_buy_overall)
      << "p(buy|view)=" << p_buy_given_view << " p(buy)=" << p_buy_overall;
}

TEST(SyntheticTest, RatingsBucketsAreExclusive) {
  Dataset d = GenerateSynthetic(MovieLensLike(0.2));
  // A (user, item) pair carries at most one rating bucket.
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const auto& e : d.interactions) {
    if (e.behavior > 2) continue;  // buckets only
    auto key = std::make_pair(e.user, e.item);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate rating for user " << e.user << " item " << e.item;
  }
}

TEST(SyntheticTest, ScaleParameterScalesCounts) {
  Dataset small = GenerateSynthetic(MovieLensLike(0.1));
  Dataset big = GenerateSynthetic(MovieLensLike(0.3));
  EXPECT_GT(big.num_users, 2 * small.num_users);
  EXPECT_GT(big.interactions.size(), 2 * small.interactions.size());
}

}  // namespace
}  // namespace data
}  // namespace gnmr
