// Tests for the GNMR core model: layer mechanics, gradient correctness,
// config ablations, and end-to-end learning on synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/gnmr_layers.h"
#include "src/core/gnmr_model.h"
#include "src/core/gnmr_trainer.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/tensor/ad_ops.h"
#include "src/tensor/gradcheck.h"

namespace gnmr {
namespace core {
namespace {

using tensor::Tensor;

data::Dataset TinyTrainSet() {
  data::SyntheticConfig cfg = data::MovieLensLike(0.08, /*seed=*/7);
  return data::GenerateSynthetic(cfg);
}

GnmrConfig FastConfig() {
  GnmrConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_channels = 4;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.epochs = 5;
  cfg.use_pretrain = false;  // keep unit tests fast
  cfg.batch_users = 64;
  cfg.verbose = false;
  return cfg;
}

// ------------------------------------------------------ TypeBehaviorEmbedding

TEST(TypeBehaviorEmbeddingTest, OutputShapeAndParamCount) {
  util::Rng rng(1);
  TypeBehaviorEmbedding eta(8, 4, &rng);
  ad::Var s = ad::Var::Constant(Tensor::RandomNormal({10, 8}, &rng));
  ad::Var out = eta.Forward(s);
  EXPECT_EQ(out.value().rows(), 10);
  EXPECT_EQ(out.value().cols(), 8);
  // W1 [8,4] + b1 [4] + 4x W2 [8,8]
  EXPECT_EQ(eta.NumParameters(), 8 * 4 + 4 + 4 * 64);
}

TEST(TypeBehaviorEmbeddingTest, GradCheck) {
  util::Rng rng(2);
  TypeBehaviorEmbedding eta(4, 3, &rng);
  ad::Var s = ad::Var::Param(Tensor::RandomNormal({5, 4}, &rng));
  std::vector<ad::Var> params = eta.Parameters();
  params.push_back(s);
  auto report = ad::GradCheck(
      [&] { return ad::MeanAll(ad::Square(eta.Forward(s))); }, params);
  EXPECT_TRUE(report.Accept(3e-2, 3e-3)) << report.worst;
}

TEST(TypeBehaviorEmbeddingTest, GateActuallyGates) {
  // With strongly negative pre-activations the ReLU gate closes and the
  // output collapses to zero.
  util::Rng rng(3);
  TypeBehaviorEmbedding eta(4, 2, &rng);
  // Force b1 very negative so alpha = 0 regardless of input.
  eta.Parameters()[1].mutable_value()->Fill(-100.0f);
  ad::Var s = ad::Var::Constant(Tensor::RandomNormal({6, 4}, &rng));
  ad::Var out = eta.Forward(s);
  EXPECT_NEAR(out.value().L2Norm(), 0.0f, 1e-5f);
}

// -------------------------------------------------- BehaviorRelationAttention

TEST(BehaviorRelationAttentionTest, ShapesPreserved) {
  util::Rng rng(4);
  BehaviorRelationAttention xi(8, 2, &rng);
  std::vector<ad::Var> behaviors;
  for (int k = 0; k < 3; ++k) {
    behaviors.push_back(ad::Var::Constant(Tensor::RandomNormal({7, 8}, &rng)));
  }
  auto out = xi.Forward(behaviors);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& o : out) {
    EXPECT_EQ(o.value().rows(), 7);
    EXPECT_EQ(o.value().cols(), 8);
  }
}

TEST(BehaviorRelationAttentionTest, ResidualDominatesAtZeroWeights) {
  // Zeroing Q/K/V collapses attention messages to 0; outputs equal inputs
  // (the residual path).
  util::Rng rng(5);
  BehaviorRelationAttention xi(6, 2, &rng);
  for (ad::Var p : xi.Parameters()) p.mutable_value()->Fill(0.0f);
  std::vector<ad::Var> behaviors = {
      ad::Var::Constant(Tensor::RandomNormal({4, 6}, &rng)),
      ad::Var::Constant(Tensor::RandomNormal({4, 6}, &rng))};
  auto out = xi.Forward(behaviors);
  for (size_t k = 0; k < 2; ++k) {
    for (int64_t i = 0; i < out[k].value().numel(); ++i) {
      EXPECT_FLOAT_EQ(out[k].value().data()[i],
                      behaviors[k].value().data()[i]);
    }
  }
}

TEST(BehaviorRelationAttentionTest, GradCheck) {
  util::Rng rng(6);
  BehaviorRelationAttention xi(4, 2, &rng);
  std::vector<ad::Var> behaviors = {
      ad::Var::Param(Tensor::RandomNormal({3, 4}, &rng)),
      ad::Var::Param(Tensor::RandomNormal({3, 4}, &rng))};
  std::vector<ad::Var> params = xi.Parameters();
  params.push_back(behaviors[0]);
  params.push_back(behaviors[1]);
  auto report = ad::GradCheck(
      [&] {
        auto out = xi.Forward(behaviors);
        ad::Var loss = ad::MeanAll(ad::Square(out[0]));
        return ad::Add(loss, ad::MeanAll(ad::Square(out[1])));
      },
      params);
  EXPECT_TRUE(report.Accept(3e-2, 3e-3)) << report.worst;
}

TEST(BehaviorRelationAttentionDeathTest, HeadsMustDivideDim) {
  util::Rng rng(7);
  EXPECT_DEATH(BehaviorRelationAttention(7, 2, &rng), "divide");
}

// --------------------------------------------------------------- BehaviorGate

TEST(BehaviorGateTest, OutputIsConvexCombinationForSharedInput) {
  // If all K inputs are the same tensor, any softmax weighting returns it.
  util::Rng rng(8);
  BehaviorGate psi(6, 6, &rng);
  ad::Var h = ad::Var::Constant(Tensor::RandomNormal({5, 6}, &rng));
  ad::Var out = psi.Forward({h, h, h});
  for (int64_t i = 0; i < out.value().numel(); ++i) {
    EXPECT_NEAR(out.value().data()[i], h.value().data()[i], 1e-5f);
  }
}

TEST(BehaviorGateTest, GradCheck) {
  util::Rng rng(9);
  BehaviorGate psi(4, 4, &rng);
  std::vector<ad::Var> behaviors = {
      ad::Var::Param(Tensor::RandomNormal({3, 4}, &rng)),
      ad::Var::Param(Tensor::RandomNormal({3, 4}, &rng)),
      ad::Var::Param(Tensor::RandomNormal({3, 4}, &rng))};
  std::vector<ad::Var> params = psi.Parameters();
  for (const auto& b : behaviors) params.push_back(b);
  auto report = ad::GradCheck(
      [&] { return ad::MeanAll(ad::Square(psi.Forward(behaviors))); },
      params);
  EXPECT_TRUE(report.Accept(3e-2, 3e-3)) << report.worst;
}

// ------------------------------------------------------------------ GnmrLayer

TEST(GnmrLayerTest, ForwardShapeAllVariants) {
  data::Dataset train = TinyTrainSet();
  auto graph = train.BuildGraph();
  util::Rng rng(10);
  for (bool eta : {true, false}) {
    for (bool xi : {true, false}) {
      for (bool psi : {true, false}) {
        GnmrConfig cfg = FastConfig();
        cfg.use_type_embedding = eta;
        cfg.use_relation_attention = xi;
        cfg.use_behavior_gate = psi;
        GnmrLayer layer(cfg, graph.get(), &rng);
        ad::Var h = ad::Var::Constant(
            Tensor::RandomNormal({graph->num_nodes(), cfg.embedding_dim},
                                 &rng, 0.0f, 0.1f));
        ad::Var out = layer.Forward(h);
        EXPECT_EQ(out.value().rows(), graph->num_nodes());
        EXPECT_EQ(out.value().cols(), cfg.embedding_dim);
        EXPECT_FALSE(out.value().HasNonFinite());
      }
    }
  }
}

TEST(GnmrLayerTest, AblationsShrinkParameterCount) {
  data::Dataset train = TinyTrainSet();
  auto graph = train.BuildGraph();
  util::Rng rng(11);
  GnmrConfig full = FastConfig();
  GnmrConfig no_eta = full;
  no_eta.use_type_embedding = false;
  GnmrConfig no_xi = full;
  no_xi.use_relation_attention = false;
  GnmrLayer l_full(full, graph.get(), &rng);
  GnmrLayer l_be(no_eta, graph.get(), &rng);
  GnmrLayer l_ma(no_xi, graph.get(), &rng);
  EXPECT_GT(l_full.NumParameters(), l_be.NumParameters());
  EXPECT_GT(l_full.NumParameters(), l_ma.NumParameters());
}

// ------------------------------------------------------------------ GnmrModel

TEST(GnmrModelTest, PropagateReturnsLayersPlusInput) {
  data::Dataset train = TinyTrainSet();
  GnmrConfig cfg = FastConfig();
  GnmrModel model(cfg, train);
  auto layers = model.Propagate();
  EXPECT_EQ(static_cast<int64_t>(layers.size()), cfg.num_layers + 1);
  for (const auto& l : layers) {
    EXPECT_EQ(l.value().rows(), model.graph().num_nodes());
  }
}

TEST(GnmrModelTest, ZeroLayerModelWorks) {
  data::Dataset train = TinyTrainSet();
  GnmrConfig cfg = FastConfig();
  cfg.num_layers = 0;
  GnmrModel model(cfg, train);
  auto layers = model.Propagate();
  EXPECT_EQ(layers.size(), 1u);
  model.RefreshInferenceCache();
  EXPECT_TRUE(std::isfinite(model.Score(0, 0)));
}

TEST(GnmrModelTest, ScorePairsMatchesInferenceCache) {
  data::Dataset train = TinyTrainSet();
  GnmrConfig cfg = FastConfig();
  GnmrModel model(cfg, train);
  auto layers = model.Propagate();
  std::vector<int64_t> users = {0, 1, 2};
  std::vector<int64_t> items = {3, 0, 5};
  ad::Var scores = model.ScorePairs(layers, users, items);
  model.RefreshInferenceCache();
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_NEAR(scores.value().at(static_cast<int64_t>(i), 0),
                model.Score(users[i], items[i]), 1e-4f);
  }
}

TEST(GnmrModelTest, PretrainInitDiffersFromRandom) {
  data::Dataset train = TinyTrainSet();
  GnmrConfig with = FastConfig();
  with.use_pretrain = true;
  with.pretrain_epochs = 1;
  GnmrConfig without = FastConfig();
  without.use_pretrain = false;
  GnmrModel a(with, train), b(without, train);
  // Same seed but different init paths -> different H^0.
  const Tensor& ta = a.Parameters()[0].value();
  const Tensor& tb = b.Parameters()[0].value();
  ASSERT_TRUE(ta.SameShape(tb));
  double diff = 0.0;
  for (int64_t i = 0; i < ta.numel(); ++i) {
    diff += std::fabs(ta.data()[i] - tb.data()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(GnmrModelDeathTest, ScoreWithoutCacheAborts) {
  data::Dataset train = TinyTrainSet();
  GnmrModel model(FastConfig(), train);
  EXPECT_DEATH(model.Score(0, 0), "RefreshInferenceCache");
}

// -------------------------------------------------------------- GnmrTrainer ----

TEST(GnmrTrainerTest, LossDecreasesOverEpochs) {
  data::Dataset train = TinyTrainSet();
  GnmrConfig cfg = FastConfig();
  cfg.epochs = 15;
  cfg.learning_rate = 1e-2;
  GnmrTrainer trainer(cfg, train);
  double first = trainer.TrainEpoch().mean_loss;
  double last = 0.0;
  for (int e = 1; e < cfg.epochs; ++e) last = trainer.TrainEpoch().mean_loss;
  // The hinge loss starts at ~margin and must drop clearly once scores
  // separate.
  EXPECT_LT(last, 0.8 * first);
}

TEST(GnmrTrainerTest, TrainedModelBeatsRandomRanking) {
  data::SyntheticConfig scfg = data::MovieLensLike(0.4, 11);
  data::Dataset full = data::GenerateSynthetic(scfg);
  data::TrainTestSplit split = data::LeaveLatestOut(full);
  util::Rng rng(17);
  auto cands = data::BuildEvalCandidates(split.train, split.test, 99, &rng);

  GnmrConfig cfg = FastConfig();
  cfg.epochs = 15;
  cfg.learning_rate = 5e-3;
  GnmrTrainer trainer(cfg, split.train);
  trainer.Train();
  auto scorer = trainer.MakeScorer();
  eval::RankingMetrics m = eval::EvaluateRanking(scorer.get(), cands, {10});
  // Random ranking gives HR@10 ~= 0.10; the trained model must beat it
  // decisively.
  EXPECT_GT(m.hr[10], 0.2) << "HR@10=" << m.hr[10];
}

TEST(GnmrTrainerTest, DeterministicGivenSeed) {
  data::Dataset train = TinyTrainSet();
  GnmrConfig cfg = FastConfig();
  cfg.epochs = 2;
  GnmrTrainer a(cfg, train), b(cfg, train);
  a.Train();
  b.Train();
  a.model().RefreshInferenceCache();
  b.model().RefreshInferenceCache();
  for (int64_t u = 0; u < 5; ++u) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(a.model().Score(u, j), b.model().Score(u, j));
    }
  }
}

TEST(GnmrTrainerTest, AllAblationVariantsTrain) {
  data::Dataset train = TinyTrainSet();
  for (int variant = 0; variant < 3; ++variant) {
    GnmrConfig cfg = FastConfig();
    cfg.epochs = 2;
    if (variant == 1) cfg.use_type_embedding = false;      // GNMR-be
    if (variant == 2) cfg.use_relation_attention = false;  // GNMR-ma
    GnmrTrainer trainer(cfg, train);
    trainer.Train();
    auto scorer = trainer.MakeScorer();
    float s = 0.0f;
    std::vector<int64_t> items = {0};
    scorer->ScoreItems(0, items, &s);
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(GnmrTrainerTest, DepthSweepRuns) {
  data::Dataset train = TinyTrainSet();
  for (int64_t depth : {0, 1, 2, 3}) {
    GnmrConfig cfg = FastConfig();
    cfg.num_layers = depth;
    cfg.epochs = 2;
    GnmrTrainer trainer(cfg, train);
    trainer.Train();
    trainer.model().RefreshInferenceCache();
    EXPECT_TRUE(std::isfinite(trainer.model().Score(0, 0)));
  }
}

TEST(GnmrTrainerTest, SumNormalizationStaysFinite) {
  // Faithful Eq. 2 sum aggregation must not blow up on a small graph.
  data::Dataset train = TinyTrainSet();
  GnmrConfig cfg = FastConfig();
  cfg.neighbor_norm = graph::NeighborNorm::kSum;
  cfg.epochs = 3;
  GnmrTrainer trainer(cfg, train);
  trainer.Train();
  trainer.model().RefreshInferenceCache();
  EXPECT_TRUE(std::isfinite(trainer.model().Score(0, 0)));
}

}  // namespace
}  // namespace core
}  // namespace gnmr
