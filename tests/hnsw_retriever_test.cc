// Tests for the HNSW graph retrieval tier: deterministic graph
// construction (same data + same seed => the same CSR arrays, on every
// bit-exact backend), the serving-score contract (every returned entry
// carries the bit-identical score the exact scan would give it), the
// pinned recall@10 >= 0.95 gate with the distance-eval budget asserted
// through RetrieverStats, batch/parallel parity, and RecService routing
// through RetrieverKind::kHnsw including hot-swap and the
// build-on-load path for graphless artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/model_io.h"
#include "src/data/dataset.h"
#include "src/eval/retrieval_recall.h"
#include "src/serve/exact_retriever.h"
#include "src/serve/hnsw_retriever.h"
#include "src/serve/rec_service.h"
#include "src/serve/seen_items.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/util/rng.h"

namespace gnmr {
namespace {

using serve::ExactRetriever;
using serve::HnswRetriever;
using serve::ItemShardMode;
using serve::RecEntry;

// ------------------------------------------------------------ test data ----

// Well-separated clustered embeddings, same construction as the IVF
// suite: `num_clusters` centers at a large scale, every row near one of
// them with small noise. Users prefer "their" cluster's items by a wide
// margin — the regime where a proximity graph's greedy walk should zoom
// straight into the right neighborhood.
core::ServingModel ClusteredModel(int64_t num_users, int64_t num_items,
                                  int64_t width, int64_t num_clusters,
                                  uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor centers =
      tensor::Tensor::RandomNormal({num_clusters, width}, &rng, 0.0f, 8.0f);
  core::ServingModel m;
  m.num_users = num_users;
  m.num_items = num_items;
  m.embeddings = tensor::Tensor({num_users + num_items, width});
  float* data = m.embeddings.data();
  for (int64_t r = 0; r < num_users + num_items; ++r) {
    const int64_t c = r < num_users
                          ? r % num_clusters
                          : ((r - num_users) * num_clusters) / num_items;
    const float* center = centers.data() + c * width;
    for (int64_t j = 0; j < width; ++j) {
      data[r * width + j] = center[j] + rng.Normal(0.0f, 0.2f);
    }
  }
  return m;
}

std::shared_ptr<const core::ServingModel> GraphedModel(
    int64_t num_users, int64_t num_items, int64_t width,
    int64_t num_clusters, uint64_t seed, int64_t m_param,
    int64_t ef_construction) {
  core::ServingModel m =
      ClusteredModel(num_users, num_items, width, num_clusters, seed);
  EXPECT_TRUE(core::BuildHnswIndex(&m, m_param, ef_construction).ok());
  return std::make_shared<const core::ServingModel>(std::move(m));
}

void ExpectExactlyEqual(const std::vector<RecEntry>& got,
                        const std::vector<RecEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;  // bitwise
  }
}

void ExpectSameGraph(const core::HnswIndex& a, const core::HnswIndex& b) {
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.ef_construction, b.ef_construction);
  EXPECT_EQ(a.entry_point, b.entry_point);
  EXPECT_EQ(a.num_levels, b.num_levels);
  ASSERT_EQ(a.neighbor_offsets.size(), b.neighbor_offsets.size());
  for (int64_t i = 0; i < a.neighbor_offsets.size(); ++i) {
    ASSERT_EQ(a.neighbor_offsets[static_cast<size_t>(i)],
              b.neighbor_offsets[static_cast<size_t>(i)])
        << "offset " << i;
  }
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (int64_t i = 0; i < a.neighbors.size(); ++i) {
    ASSERT_EQ(a.neighbors[static_cast<size_t>(i)],
              b.neighbors[static_cast<size_t>(i)])
        << "neighbor " << i;
  }
}

serve::SeenItems MakeSeen(int64_t num_users, int64_t num_items) {
  data::Dataset d;
  d.name = "seen";
  d.num_users = num_users;
  d.num_items = num_items;
  d.behavior_names = {"buy"};
  d.target_behavior = 0;
  for (int64_t u = 0; u < num_users; ++u) {
    for (int64_t i = 0; i < 5; ++i) {
      d.interactions.push_back({u, (u * 7 + i * 13) % num_items, 0, i});
    }
  }
  return serve::SeenItems::FromDataset(d, false);
}

// ------------------------------------------------------------ the build ----

TEST(HnswBuildTest, DeterministicGraphSameSeed) {
  core::ServingModel a = ClusteredModel(8, 1500, 8, 8, 31);
  core::ServingModel b = ClusteredModel(8, 1500, 8, 8, 31);
  ASSERT_TRUE(core::BuildHnswIndex(&a, 8, 48).ok());
  ASSERT_TRUE(core::BuildHnswIndex(&b, 8, 48).ok());
  ASSERT_TRUE(a.has_hnsw());
  ASSERT_TRUE(b.has_hnsw());
  a.hnsw->CheckConsistent(a.num_items);
  ExpectSameGraph(*a.hnsw, *b.hnsw);
  EXPECT_EQ(a.hnsw->m, 8);
  EXPECT_EQ(a.hnsw->ef_construction, 48);
  // A 1500-item catalogue should thin into more than one level — the
  // walk has something to descend.
  EXPECT_GT(a.hnsw->num_levels, 1);
}

TEST(HnswBuildTest, DefaultsAppliedAndDegenerateParamsClamped) {
  core::ServingModel m = ClusteredModel(4, 256, 8, 4, 5);
  ASSERT_TRUE(core::BuildHnswIndex(&m, 0, 0).ok());
  ASSERT_TRUE(m.has_hnsw());
  EXPECT_EQ(m.hnsw->m, tensor::kHnswDefaultM);
  EXPECT_EQ(m.hnsw->ef_construction, tensor::kHnswDefaultEfConstruction);
  // m = 1 would make the level distribution degenerate (ln 1 = 0); the
  // builder clamps to 2 rather than dividing by zero.
  core::ServingModel tiny = ClusteredModel(2, 64, 8, 2, 7);
  ASSERT_TRUE(core::BuildHnswIndex(&tiny, 1, 4).ok());
  EXPECT_EQ(tiny.hnsw->m, 2);
  EXPECT_GE(tiny.hnsw->ef_construction, 2);  // ef >= m after clamping
  tiny.hnsw->CheckConsistent(tiny.num_items);
}

TEST(HnswBuildTest, SingleItemCatalogue) {
  core::ServingModel m;
  m.num_users = 1;
  m.num_items = 1;
  util::Rng rng(3);
  m.embeddings = tensor::Tensor::RandomNormal({2, 4}, &rng, 0.0f, 1.0f);
  ASSERT_TRUE(core::BuildHnswIndex(&m, 4, 8).ok());
  ASSERT_TRUE(m.has_hnsw());
  EXPECT_EQ(m.hnsw->entry_point, 0);
  m.hnsw->CheckConsistent(1);
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  HnswRetriever hnsw(model);
  std::vector<RecEntry> top = hnsw.RetrieveTopN(0, 5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 0);
}

TEST(HnswBuildTest, GraphIdenticalAcrossBitExactBackends) {
  // The builder's distances flow through QueryDot/QueryDotIndexed, so
  // every bit-exact backend must grow the identical graph — the same
  // property that makes IVF's k-means portable.
  core::ServingModel reference = ClusteredModel(4, 1200, 8, 8, 47);
  {
    tensor::ScopedBackend scoped("serial");
    ASSERT_TRUE(core::BuildHnswIndex(&reference, 8, 32).ok());
  }
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    if (!backend->bit_exact()) continue;
    tensor::ScopedBackend scoped(backend->name());
    core::ServingModel other = ClusteredModel(4, 1200, 8, 8, 47);
    ASSERT_TRUE(core::BuildHnswIndex(&other, 8, 32).ok());
    SCOPED_TRACE(backend->name());
    ExpectSameGraph(*reference.hnsw, *other.hnsw);
  }
}

// ---------------------------------------------------------- the serving ----

TEST(HnswRetrieverTest, ScoresMatchServingContract) {
  // Approximation lives purely in coverage: whatever the walk returns
  // must carry the bit-identical score the exact scan computes, ranked
  // under the same total order (score desc, id asc).
  auto model = GraphedModel(16, 1500, 8, 8, 91, 8, 48);
  HnswRetriever hnsw(model, nullptr, /*ef_search=*/32);
  for (int64_t user = 0; user < model->num_users; ++user) {
    std::vector<RecEntry> top = hnsw.RetrieveTopN(user, 10);
    ASSERT_EQ(top.size(), 10u);
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].score, model->Score(user, top[i].item))
          << "user " << user << " position " << i;
      if (i > 0) {
        EXPECT_TRUE(serve::BetterThan(top[i - 1], top[i]))
            << "order violated at position " << i;
      }
    }
  }
}

TEST(HnswRetrieverTest, SeenItemsNeverReturned) {
  auto model = GraphedModel(16, 1500, 8, 8, 13, 8, 48);
  auto seen = std::make_shared<const serve::SeenItems>(
      MakeSeen(model->num_users, model->num_items));
  HnswRetriever hnsw(model, seen, /*ef_search=*/32);
  for (int64_t user = 0; user < model->num_users; ++user) {
    for (const RecEntry& e : hnsw.RetrieveTopN(user, 10)) {
      EXPECT_FALSE(seen->Contains(user, e.item))
          << "user " << user << " got seen item " << e.item;
    }
  }
}

TEST(HnswRetrieverTest, BatchMatchesPerUserCalls) {
  auto model = GraphedModel(20, 1500, 8, 8, 59, 8, 48);
  std::vector<int64_t> users;
  for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  HnswRetriever hnsw(model, nullptr, /*ef_search=*/32);
  std::vector<std::vector<RecEntry>> batch = hnsw.RetrieveBatch(users, 10);
  ASSERT_EQ(batch.size(), users.size());
  for (size_t u = 0; u < users.size(); ++u) {
    ExpectExactlyEqual(batch[u], hnsw.RetrieveTopN(users[u], 10));
  }
}

TEST(HnswRetrieverTest, ServingIdenticalAcrossBitExactBackends) {
  auto model = GraphedModel(8, 1200, 8, 8, 83, 8, 32);
  std::vector<std::vector<RecEntry>> want;
  {
    tensor::ScopedBackend scoped("serial");
    HnswRetriever hnsw(model, nullptr, /*ef_search=*/32);
    for (int64_t u = 0; u < model->num_users; ++u) {
      want.push_back(hnsw.RetrieveTopN(u, 10));
    }
  }
  std::vector<int64_t> users;
  for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    if (!backend->bit_exact()) continue;
    tensor::ScopedBackend scoped(backend->name());
    SCOPED_TRACE(backend->name());
    HnswRetriever hnsw(model, nullptr, /*ef_search=*/32);
    for (int64_t u = 0; u < model->num_users; ++u) {
      ExpectExactlyEqual(hnsw.RetrieveTopN(u, 10),
                         want[static_cast<size_t>(u)]);
    }
    std::vector<std::vector<RecEntry>> batch = hnsw.RetrieveBatch(users, 10);
    for (size_t u = 0; u < batch.size(); ++u) {
      ExpectExactlyEqual(batch[u], want[u]);
    }
  }
}

TEST(HnswRetrieverTest, RecallGateAtPinnedConfig) {
  // The acceptance bar from the issue: at the pinned configuration
  // (m=16, ef_construction=128, ef_search=64 on well-clustered data) the
  // graph walk must keep recall@10 >= 0.95 while evaluating distances
  // for at most 10% of the catalogue per query — sub-linear in practice,
  // not just asymptotically.
  auto model = GraphedModel(64, 8192, 16, 64, 67, 16, 128);
  ExactRetriever exact(model, nullptr, ItemShardMode::kOff);
  HnswRetriever hnsw(model, nullptr, /*ef_search=*/64);
  EXPECT_EQ(hnsw.ef_search(), 64);

  std::vector<int64_t> users;
  for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  const double recall = eval::RetrievalRecallAtK(exact, hnsw, users, 10);
  EXPECT_GE(recall, 0.95) << "HNSW recall@10 collapsed";

  serve::RetrieverStats stats = hnsw.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(users.size()));
  EXPECT_GT(stats.hops, stats.requests);  // more than one node per walk
  EXPECT_GT(stats.scanned_items, 0u);
  EXPECT_EQ(stats.scanned_bytes,
            stats.scanned_items *
                static_cast<uint64_t>(model->embeddings.cols()) *
                sizeof(float));
  const double eval_fraction =
      static_cast<double>(stats.scanned_items) /
      (static_cast<double>(users.size()) *
       static_cast<double>(model->num_items));
  EXPECT_LE(eval_fraction, 0.10) << "HNSW evaluated too many distances";
}

TEST(HnswRetrieverTest, WiderBeamNeverScansLess) {
  // ef_search is the quality/latency dial: a wider beam evaluates at
  // least as many candidates and can only improve recall's inputs.
  auto model = GraphedModel(16, 2048, 8, 16, 29, 8, 64);
  uint64_t prev_evals = 0;
  for (int64_t ef : {16, 64, 256}) {
    HnswRetriever hnsw(model, nullptr, ef);
    for (int64_t u = 0; u < model->num_users; ++u) {
      hnsw.RetrieveTopN(u, 10);
    }
    const uint64_t evals = hnsw.Stats().scanned_items;
    EXPECT_GE(evals, prev_evals) << "ef_search=" << ef;
    prev_evals = evals;
  }
}

// ----------------------------------------------------------- the service ----

TEST(RecServiceHnswTest, RoutesThroughConfiguredStrategy) {
  auto model = GraphedModel(16, 1500, 8, 8, 43, 8, 48);
  serve::RecService::Options options;
  options.retriever = serve::RetrieverKind::kHnsw;
  options.ef_search = 32;
  serve::RecService service(model, nullptr, options);
  EXPECT_STREQ(service.retriever()->name(), "hnsw");

  HnswRetriever hnsw(model, nullptr, /*ef_search=*/32);
  ExactRetriever exact(model, nullptr, ItemShardMode::kAuto);
  for (int64_t user = 0; user < 8; ++user) {
    ExpectExactlyEqual(service.Recommend(user, 10),
                       hnsw.RetrieveTopN(user, 10));
  }
  // The per-request exact knob bypasses the graph AND the cache.
  for (int64_t user = 0; user < 8; ++user) {
    ExpectExactlyEqual(service.Recommend(user, 10, /*exact=*/true),
                       exact.RetrieveTopN(user, 10));
  }
  serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.exact_fallbacks, 8u);
  EXPECT_EQ(stats.requests, 16u);
  EXPECT_GT(stats.retrieval.hops, 0u);
  EXPECT_GT(stats.retrieval.scanned_items, 0u);
  EXPECT_EQ(stats.retrieval.probed_clusters, 0u);  // no IVF in the path
}

TEST(RecServiceHnswTest, CacheServesHnswResultsAndSwapInvalidates) {
  auto model = GraphedModel(16, 1500, 8, 8, 19, 8, 48);
  serve::RecService::Options options;
  options.retriever = serve::RetrieverKind::kHnsw;
  options.ef_search = 32;
  serve::RecService service(model, nullptr, options);
  std::vector<RecEntry> first = service.Recommend(5, 10);
  std::vector<RecEntry> second = service.Recommend(5, 10);
  ExpectExactlyEqual(second, first);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  // A snapshot already carrying a graph hot-swaps in; the cache resets.
  service.SwapModel(model);
  EXPECT_EQ(service.model_version(), 1u);
  std::vector<RecEntry> third = service.Recommend(5, 10);
  ExpectExactlyEqual(third, first);
  EXPECT_EQ(service.stats().cache_hits, 1u);  // miss after invalidation
}

TEST(RecServiceHnswTest, LoadAndSwapBuildsGraphForGraphlessArtifacts) {
  // Codeless degradation analog: a v1 artifact has no graph section, so
  // LoadAndSwap must build one on the fly (same deterministic level
  // hashing and prune => the same graph the offline build would persist)
  // rather than reject the file or silently degrade to a scan.
  core::ServingModel base = ClusteredModel(24, 1500, 8, 8, 71);
  std::string path = testing::TempDir() + "/gnmr_v1_for_hnsw.bin";
  ASSERT_TRUE(core::SaveServingModel(base, path).ok());  // v1: no graph

  core::ServingModel with_graph = base;
  ASSERT_TRUE(core::BuildHnswIndex(&with_graph, 8, 0).ok());
  serve::RecService::Options options;
  options.retriever = serve::RetrieverKind::kHnsw;
  options.hnsw_m = 8;
  options.ef_search = 32;
  serve::RecService service(
      std::make_shared<const core::ServingModel>(std::move(with_graph)),
      nullptr, options);
  std::vector<RecEntry> before = service.Recommend(3, 10);
  util::Status s = service.LoadAndSwap(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(service.model_version(), 1u);
  std::vector<RecEntry> after = service.Recommend(3, 10);
  // Same embeddings, same deterministic construction -> same lists.
  ExpectExactlyEqual(after, before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gnmr
