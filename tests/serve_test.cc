// Tests for the src/serve/ retrieval subsystem: exact top-K against brute
// force, seen-item filtering, cache hit/invalidation semantics, snapshot
// hot-swapping under concurrent traffic, and the scorer-adapter fast path
// staying bit-identical to the CachedScorer evaluation path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/gnmr_trainer.h"
#include "src/core/model_io.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/serve/rec_cache.h"
#include "src/serve/rec_service.h"
#include "src/serve/seen_items.h"
#include "src/serve/exact_retriever.h"
#include "src/serve/ivf_retriever.h"
#include "src/tensor/kernel_tunables.h"

namespace gnmr {
namespace serve {

// White-box handle on RecService's single-flight registry: the
// publish/abandon races under test (stale-lease ABA, leader unwind) are
// not reachable deterministically through the public API alone.
class RecServiceTestPeer {
 public:
  using FlightSlot = RecService::FlightSlot;
  static uint64_t Key(int64_t user, int64_t k) {
    return RecService::FlightKey(user, k);
  }
  static FlightSlot JoinOrLead(RecService* service, uint64_t key) {
    return service->JoinOrLead(key);
  }
  static void Publish(RecService* service, uint64_t key,
                      const FlightSlot& slot,
                      const std::vector<RecEntry>& result) {
    service->PublishFlight(key, slot.flight, result);
  }
  static void Abandon(RecService* service, uint64_t key,
                      const FlightSlot& slot) {
    service->AbandonFlight(key, slot.flight);
  }
  // use_count of the flight registered under `key` (0 if none): the map
  // holds one reference and every JoinOrLead caller holds one, so tests
  // can wait deterministically for a waiter thread to have joined.
  static long FlightUseCount(RecService* service, uint64_t key) {
    std::lock_guard<std::mutex> lock(service->flights_mu_);
    auto it = service->flights_.find(key);
    return it == service->flights_.end() ? 0 : it->second.use_count();
  }
  // Erases the registry entry without touching the flight — the torn
  // state PublishFlight leaves behind when it unwinds after its erase
  // but before marking the flight done.
  static void Unregister(RecService* service, uint64_t key) {
    std::lock_guard<std::mutex> lock(service->flights_mu_);
    service->flights_.erase(key);
  }
};

namespace {

// Random serving model with a few duplicated item rows so exact-tie
// handling (break by ascending item id) is actually exercised.
std::shared_ptr<const core::ServingModel> RandomModel(int64_t num_users,
                                                      int64_t num_items,
                                                      int64_t width,
                                                      uint64_t seed) {
  core::ServingModel m;
  m.num_users = num_users;
  m.num_items = num_items;
  util::Rng rng(seed);
  m.embeddings = tensor::Tensor::RandomNormal({num_users + num_items, width},
                                              &rng);
  if (num_items >= 8) {
    float* data = m.embeddings.data();
    // Item rows 1 and 5, and 2 and 7, get identical embeddings -> their
    // scores tie exactly for every user.
    for (int64_t c = 0; c < width; ++c) {
      data[(num_users + 5) * width + c] = data[(num_users + 1) * width + c];
      data[(num_users + 7) * width + c] = data[(num_users + 2) * width + c];
    }
  }
  return std::make_shared<const core::ServingModel>(std::move(m));
}

std::vector<RecEntry> BruteForceTopN(const core::ServingModel& m,
                                     int64_t user, int64_t k,
                                     const SeenItems* seen = nullptr) {
  std::vector<RecEntry> all;
  for (int64_t item = 0; item < m.num_items; ++item) {
    if (seen != nullptr && seen->Contains(user, item)) continue;
    all.push_back({item, m.Score(user, item)});
  }
  std::sort(all.begin(), all.end(), BetterThan);
  if (static_cast<int64_t>(all.size()) > k) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

void ExpectExactlyEqual(const std::vector<RecEntry>& got,
                        const std::vector<RecEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;  // bitwise
  }
}

// ------------------------------------------------------------ seen items ----

data::Dataset TinyDataset() {
  data::Dataset d;
  d.name = "tiny";
  d.num_users = 3;
  d.num_items = 6;
  d.behavior_names = {"view", "buy"};
  d.target_behavior = 1;
  // user 0 bought 0,2 and viewed 4; user 1 bought 1; user 2 nothing.
  d.interactions = {{0, 0, 1, 0}, {0, 2, 1, 1}, {0, 2, 1, 2},  // dup event
                    {0, 4, 0, 3}, {1, 1, 1, 0}};
  return d;
}

TEST(SeenItemsTest, TargetOnlyAndAllBehaviors) {
  data::Dataset d = TinyDataset();
  SeenItems target_only = SeenItems::FromDataset(d, true);
  EXPECT_TRUE(target_only.Contains(0, 0));
  EXPECT_TRUE(target_only.Contains(0, 2));
  EXPECT_FALSE(target_only.Contains(0, 4));  // only viewed
  EXPECT_TRUE(target_only.Contains(1, 1));
  EXPECT_FALSE(target_only.Contains(2, 0));
  EXPECT_EQ(target_only.num_pairs(), 3);  // duplicate event collapsed

  SeenItems all = SeenItems::FromDataset(d, false);
  EXPECT_TRUE(all.Contains(0, 4));
  EXPECT_EQ(all.ItemsOf(0), (std::vector<int64_t>{0, 2, 4}));
}

TEST(SeenItemsTest, OutOfRangeUsersSeeNothing) {
  SeenItems empty;
  EXPECT_FALSE(empty.Contains(0, 0));
  EXPECT_TRUE(empty.ItemsOf(5).empty());
  SeenItems built = SeenItems::FromDataset(TinyDataset(), true);
  EXPECT_FALSE(built.Contains(-1, 0));
  EXPECT_FALSE(built.Contains(99, 0));
}

// -------------------------------------------------------------- retriever ----

TEST(ExactRetrieverTest, MatchesBruteForceExactly) {
  auto model = RandomModel(23, 57, 12, 7);
  ExactRetriever retriever(model);
  for (int64_t k : {1, 3, 10, 57}) {
    for (int64_t user = 0; user < model->num_users; ++user) {
      ExpectExactlyEqual(retriever.RetrieveTopN(user, k),
                         BruteForceTopN(*model, user, k));
    }
  }
}

TEST(ExactRetrieverTest, TiedScoresBreakByItemId) {
  auto model = RandomModel(4, 16, 6, 11);
  ExactRetriever retriever(model);
  std::vector<RecEntry> top = retriever.RetrieveTopN(0, 16);
  // Items (1, 5) and (2, 7) have identical embeddings: equal scores must
  // order the smaller id first.
  auto pos = [&](int64_t item) {
    for (size_t i = 0; i < top.size(); ++i) {
      if (top[i].item == item) return static_cast<int64_t>(i);
    }
    return static_cast<int64_t>(-1);
  };
  EXPECT_EQ(top[static_cast<size_t>(pos(1))].score,
            top[static_cast<size_t>(pos(5))].score);
  EXPECT_LT(pos(1), pos(5));
  EXPECT_EQ(top[static_cast<size_t>(pos(2))].score,
            top[static_cast<size_t>(pos(7))].score);
  EXPECT_LT(pos(2), pos(7));
}

TEST(ExactRetrieverTest, KLargerThanCatalogueIsClamped) {
  auto model = RandomModel(3, 9, 4, 3);
  ExactRetriever retriever(model);
  EXPECT_EQ(retriever.RetrieveTopN(0, 1000).size(), 9u);
}

TEST(ExactRetrieverTest, SpansMultipleItemBlocks) {
  // Catalogue larger than kItemBlock so the blocked scan crosses tiles.
  auto model = RandomModel(5, ExactRetriever::kItemBlock * 2 + 37, 8, 19);
  ExactRetriever retriever(model);
  for (int64_t user = 0; user < model->num_users; ++user) {
    ExpectExactlyEqual(retriever.RetrieveTopN(user, 25),
                       BruteForceTopN(*model, user, 25));
  }
}

TEST(ExactRetrieverTest, SeenItemFiltering) {
  data::Dataset d = TinyDataset();
  auto model = RandomModel(d.num_users, d.num_items, 8, 5);
  auto seen =
      std::make_shared<const SeenItems>(SeenItems::FromDataset(d, true));
  ExactRetriever retriever(model, seen);
  for (int64_t user = 0; user < d.num_users; ++user) {
    std::vector<RecEntry> top = retriever.RetrieveTopN(user, d.num_items);
    for (const RecEntry& e : top) {
      EXPECT_FALSE(seen->Contains(user, e.item))
          << "user " << user << " got seen item " << e.item;
    }
    ExpectExactlyEqual(top,
                       BruteForceTopN(*model, user, d.num_items, seen.get()));
  }
  // User 0 bought 2 of 6 items -> only 4 remain recommendable.
  EXPECT_EQ(retriever.RetrieveTopN(0, d.num_items).size(), 4u);
}

TEST(ExactRetrieverTest, BatchMatchesPerUserCalls) {
  auto model = RandomModel(41, 83, 16, 13);
  ExactRetriever retriever(model);
  std::vector<int64_t> users;
  for (int64_t repeat = 0; repeat < 2; ++repeat) {
    for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  }
  std::vector<std::vector<RecEntry>> batch = retriever.RetrieveBatch(users, 9);
  ASSERT_EQ(batch.size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    ExpectExactlyEqual(batch[i], retriever.RetrieveTopN(users[i], 9));
  }
}

TEST(ExactRetrieverTest, ScorerAdapterOutlivesRetriever) {
  std::unique_ptr<eval::Scorer> scorer;
  float direct = 0.0f;
  {
    auto model = RandomModel(6, 10, 4, 23);
    direct = model->Score(2, 3);
    ExactRetriever retriever(model);
    scorer = retriever.MakeScorer();
    // Both the retriever and the local model handle die here.
  }
  std::vector<int64_t> items = {3};
  float out = 0.0f;
  scorer->ScoreItems(2, items, &out);
  EXPECT_EQ(out, direct);
}

// ----------------------------------------------------- shared scorer (io) ----

TEST(MakeSharedScorerTest, SurvivesOriginalHandleReset) {
  auto model = RandomModel(5, 8, 4, 29);
  float want = model->Score(1, 2);
  std::unique_ptr<eval::Scorer> scorer = core::MakeSharedScorer(model);
  model.reset();  // scorer holds the only remaining reference
  std::vector<int64_t> items = {2};
  float got = 0.0f;
  scorer->ScoreItems(1, items, &got);
  EXPECT_EQ(got, want);
}

// ------------------------------------------------------------------ cache ----

TEST(RecCacheTest, HitMissAndLruEviction) {
  RecCache cache(/*capacity_per_shard=*/2, /*num_shards=*/1);
  std::vector<RecEntry> out;
  EXPECT_FALSE(cache.Get(0, 5, &out));
  cache.Put(0, 5, cache.version(), {{1, 0.5f}});
  cache.Put(1, 5, cache.version(), {{2, 0.4f}});
  EXPECT_TRUE(cache.Get(0, 5, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].item, 1);
  // Touch user 0, insert user 2 -> user 1 is LRU and gets evicted.
  cache.Put(2, 5, cache.version(), {{3, 0.3f}});
  EXPECT_FALSE(cache.Get(1, 5, &out));
  EXPECT_TRUE(cache.Get(0, 5, &out));
  EXPECT_TRUE(cache.Get(2, 5, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(RecCacheTest, DifferentKAreDifferentEntries) {
  RecCache cache(8, 1);
  std::vector<RecEntry> out;
  cache.Put(0, 5, cache.version(), {{1, 1.0f}});
  EXPECT_FALSE(cache.Get(0, 10, &out));
  EXPECT_TRUE(cache.Get(0, 5, &out));
}

TEST(RecCacheTest, InvalidateMakesEverythingMiss) {
  RecCache cache(8, 2);
  std::vector<RecEntry> out;
  cache.Put(0, 5, cache.version(), {{1, 1.0f}});
  cache.Put(1, 5, cache.version(), {{2, 2.0f}});
  EXPECT_TRUE(cache.Get(0, 5, &out));
  uint64_t v = cache.Invalidate();
  EXPECT_EQ(v, cache.version());
  EXPECT_FALSE(cache.Get(0, 5, &out));
  EXPECT_FALSE(cache.Get(1, 5, &out));
  // Refill under the new version works.
  cache.Put(0, 5, cache.version(), {{7, 7.0f}});
  EXPECT_TRUE(cache.Get(0, 5, &out));
  EXPECT_EQ(out[0].item, 7);
}

TEST(RecCacheTest, StaleVersionPutIsDropped) {
  RecCache cache(8, 1);
  uint64_t old_version = cache.version();
  cache.Invalidate();
  // A Put that raced a swap (stamped with the pre-swap version) must never
  // be served.
  cache.Put(0, 5, old_version, {{1, 1.0f}});
  std::vector<RecEntry> out;
  EXPECT_FALSE(cache.Get(0, 5, &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------- service ----

TEST(RecServiceTest, CachesRepeatRequests) {
  auto model = RandomModel(10, 30, 8, 31);
  RecService service(model);
  std::vector<RecEntry> first = service.Recommend(3, 5);
  ExpectExactlyEqual(first, BruteForceTopN(*model, 3, 5));
  EXPECT_EQ(service.stats().cache_hits, 0u);
  std::vector<RecEntry> second = service.Recommend(3, 5);
  ExpectExactlyEqual(second, first);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(service.stats().requests, 2u);
}

TEST(RecServiceTest, OversizedKClampsToCatalogueAndSharesCacheEntry) {
  auto model = RandomModel(6, 20, 4, 71);
  RecService service(model);
  // A huge k must clamp to the catalogue BEFORE the cache key is formed:
  // the clamped and explicit num_items requests share one entry.
  std::vector<RecEntry> a = service.Recommend(0, int64_t{1} << 40);
  EXPECT_EQ(a.size(), 20u);
  std::vector<RecEntry> b = service.Recommend(0, 20);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  ExpectExactlyEqual(a, b);
}

TEST(RecServiceTest, SwapInvalidatesAndServesNewModel) {
  auto model_a = RandomModel(10, 30, 8, 37);
  auto model_b = RandomModel(10, 30, 8, 41);
  RecService service(model_a);
  std::vector<RecEntry> before = service.Recommend(4, 6);
  ExpectExactlyEqual(before, BruteForceTopN(*model_a, 4, 6));
  service.SwapModel(model_b);
  EXPECT_EQ(service.model_version(), 1u);
  EXPECT_EQ(service.stats().swaps, 1u);
  std::vector<RecEntry> after = service.Recommend(4, 6);
  ExpectExactlyEqual(after, BruteForceTopN(*model_b, 4, 6));
  // The post-swap request was a miss (cache was invalidated).
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(RecServiceTest, CacheStatsAggregateAcrossSwaps) {
  auto model_a = RandomModel(10, 30, 8, 83);
  auto model_b = RandomModel(10, 30, 8, 89);
  RecService service(model_a);
  service.Recommend(0, 5);  // miss
  service.Recommend(0, 5);  // hit
  service.Recommend(1, 5);  // miss
  ServiceStats before = service.stats();
  EXPECT_EQ(before.cache.hits, 1u);
  EXPECT_EQ(before.cache.misses, 2u);
  EXPECT_EQ(before.cache.entries, 2u);

  // The swap installs a fresh cache generation (the stale lists are freed
  // eagerly); the outgoing generation's counters must keep aggregating.
  service.SwapModel(model_b);
  ServiceStats after = service.stats();
  EXPECT_EQ(after.cache.hits, 1u);
  EXPECT_EQ(after.cache.misses, 2u);
  EXPECT_EQ(after.cache.entries, 0u);  // retired entries are gone

  service.Recommend(0, 5);  // miss in the new generation
  service.Recommend(0, 5);  // hit
  ServiceStats final_stats = service.stats();
  EXPECT_EQ(final_stats.cache.hits, 2u);
  EXPECT_EQ(final_stats.cache.misses, 3u);
  EXPECT_EQ(final_stats.cache.entries, 1u);
}

TEST(RecServiceTest, CacheCountersSurviveMidTrafficSwaps) {
  // Regression for the per-generation cache: counters must aggregate
  // across generations while swaps retire them mid-traffic, not reset.
  const int64_t num_users = 24, num_items = 64, width = 8;
  auto model_a = RandomModel(num_users, num_items, width, 101);
  auto model_b = RandomModel(num_users, num_items, width, 103);
  constexpr int kReaders = 4;
  constexpr int64_t kPerReader = 400;
  constexpr int kSwaps = 16;

  RecService service(model_a);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(300 + static_cast<uint64_t>(t));
      for (int64_t i = 0; i < kPerReader; ++i) {
        service.Recommend(rng.UniformInt(0, num_users - 1), 10);
      }
    });
  }
  std::thread swapper([&] {
    for (int s = 0; s < kSwaps; ++s) {
      service.SwapModel(s % 2 == 0 ? model_b : model_a);
      std::this_thread::yield();
    }
  });
  for (std::thread& th : readers) th.join();
  swapper.join();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kReaders) * kPerReader);
  EXPECT_EQ(stats.swaps, static_cast<uint64_t>(kSwaps));
  // Every request probes its generation's cache exactly once. A probe that
  // races the retirement of its generation can land after that
  // generation's counters were harvested (at most one in-flight probe per
  // reader per swap), so the aggregate is bounded, not exact.
  const uint64_t probed = stats.cache.hits + stats.cache.misses;
  EXPECT_LE(probed, stats.requests);
  EXPECT_GE(probed + static_cast<uint64_t>(kReaders) * kSwaps,
            stats.requests);
  // Service-level hit counting never loses increments, and a generation
  // hit is only ever recorded for a service-level hit.
  EXPECT_LE(stats.cache.hits, stats.cache_hits);
  EXPECT_LE(stats.cache_hits - stats.cache.hits,
            static_cast<uint64_t>(kReaders) * kSwaps);
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GT(stats.cache.misses, 0u);
}

TEST(RecServiceTest, LatencyNanosFeedTotalsAndHistograms) {
  auto model = RandomModel(10, 30, 8, 97);
  RecService service(model);
  for (int i = 0; i < 6; ++i) service.Recommend(i % 3, 5);
  std::vector<int64_t> users = {0, 1, 5, 6};
  service.RecommendBatch(users, 5);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 10u);
  EXPECT_GT(stats.latency_ns_total, 0u);

  obs::HistogramSnapshot hit =
      service.metrics().HistogramOf("serve.latency.hit").Snapshot();
  obs::HistogramSnapshot miss =
      service.metrics().HistogramOf("serve.latency.miss").Snapshot();
  obs::HistogramSnapshot coalesced =
      service.metrics().HistogramOf("serve.latency.coalesced").Snapshot();
  obs::HistogramSnapshot batch =
      service.metrics().HistogramOf("serve.latency.batch").Snapshot();
  // Users 0,1,2 missed once each, then hit; the batch is one timed unit.
  EXPECT_EQ(miss.count, 3u);
  EXPECT_EQ(hit.count, 3u);
  EXPECT_EQ(coalesced.count, 0u);
  EXPECT_EQ(batch.count, 1u);
  // The histograms record the SAME clock readings that accumulate into
  // latency_ns_total, so the populations agree exactly, not approximately.
  EXPECT_EQ(hit.sum + miss.sum + coalesced.sum + batch.sum,
            stats.latency_ns_total);
}

TEST(RecServiceTest, BatchMixesHitsAndMisses) {
  auto model = RandomModel(12, 40, 8, 43);
  RecService service(model);
  service.Recommend(0, 7);
  service.Recommend(1, 7);
  std::vector<int64_t> users = {0, 1, 2, 3, 0};
  std::vector<std::vector<RecEntry>> got = service.RecommendBatch(users, 7);
  ASSERT_EQ(got.size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    ExpectExactlyEqual(got[i], BruteForceTopN(*model, users[i], 7));
  }
  // Users 0 and 1 were cached; the duplicate trailing 0 also hits.
  EXPECT_EQ(service.stats().cache_hits, 3u);
}

TEST(RecServiceTest, LoadAndSwapFromArtifact) {
  auto model_a = RandomModel(8, 20, 6, 47);
  auto model_b = RandomModel(8, 20, 6, 53);
  std::string path = testing::TempDir() + "/serve_swap.bin";
  ASSERT_TRUE(core::SaveServingModel(*model_b, path).ok());
  RecService service(model_a);
  service.Recommend(1, 4);
  ASSERT_TRUE(service.LoadAndSwap(path).ok());
  ExpectExactlyEqual(service.Recommend(1, 4), BruteForceTopN(*model_b, 1, 4));
  std::remove(path.c_str());

  // Mismatched catalogue shape is refused and leaves the service serving.
  auto model_wrong = RandomModel(9, 20, 6, 59);
  std::string bad = testing::TempDir() + "/serve_swap_bad.bin";
  ASSERT_TRUE(core::SaveServingModel(*model_wrong, bad).ok());
  EXPECT_FALSE(service.LoadAndSwap(bad).ok());
  ExpectExactlyEqual(service.Recommend(2, 4), BruteForceTopN(*model_b, 2, 4));
  std::remove(bad.c_str());
  EXPECT_FALSE(service.LoadAndSwap("/nonexistent/model.bin").ok());
}

// ------------------------------------------------------ quantized routing ----

TEST(RecServiceQuantizedTest, QuantizedOptionsRouteThroughCodeScan) {
  core::ServingModel m = *RandomModel(8, 256, 8, 611);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 8, /*quantize=*/true).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  RecService::Options options;
  options.retriever = RetrieverKind::kIvf;
  options.nprobe = 3;
  options.quantized = true;
  options.rerank_k = 16;
  RecService service(model, nullptr, options);
  EXPECT_STREQ(service.retriever()->name(), "ivf");
  auto ivf =
      std::dynamic_pointer_cast<const IvfRetriever>(service.retriever());
  ASSERT_NE(ivf, nullptr);
  EXPECT_TRUE(ivf->quantized());
  EXPECT_EQ(ivf->rerank_k(), 16);
  // Responses come from the two-phase scan, bitwise.
  IvfRetriever want(model, nullptr, /*nprobe=*/3, ItemShardMode::kAuto,
                    /*quantized=*/true, /*rerank_k=*/16);
  for (int64_t u = 0; u < 8; ++u) {
    ExpectExactlyEqual(service.Recommend(u, 10), want.RetrieveTopN(u, 10));
  }
  ServiceStats stats = service.stats();
  EXPECT_GT(stats.retrieval.scanned_code_bytes, 0u);
  EXPECT_GT(stats.retrieval.reranked_items, 0u);
  EXPECT_GT(stats.retrieval.scanned_bytes,
            stats.retrieval.scanned_code_bytes);
}

TEST(RecServiceQuantizedTest, HotSwapKeepsQuantizedTier) {
  core::ServingModel a = *RandomModel(8, 256, 8, 613);
  ASSERT_TRUE(core::BuildIvfIndex(&a, 8, /*quantize=*/true).ok());
  core::ServingModel b = *RandomModel(8, 256, 8, 617);
  ASSERT_TRUE(core::BuildIvfIndex(&b, 8, /*quantize=*/true).ok());
  auto model_a = std::make_shared<const core::ServingModel>(std::move(a));
  auto model_b = std::make_shared<const core::ServingModel>(std::move(b));
  RecService::Options options;
  options.retriever = RetrieverKind::kIvf;
  options.nprobe = 3;
  options.quantized = true;
  RecService service(model_a, nullptr, options);
  service.Recommend(2, 10);
  service.SwapModel(model_b);
  EXPECT_EQ(service.model_version(), 1u);
  auto ivf =
      std::dynamic_pointer_cast<const IvfRetriever>(service.retriever());
  ASSERT_NE(ivf, nullptr);
  EXPECT_TRUE(ivf->quantized()) << "swap must keep the code-scan tier";
  IvfRetriever want(model_b, nullptr, /*nprobe=*/3, ItemShardMode::kAuto,
                    /*quantized=*/true);
  ExpectExactlyEqual(service.Recommend(2, 10), want.RetrieveTopN(2, 10));

  // A codeless-index snapshot on a quantized service degrades to the
  // float scan silently — serving never stops.
  core::ServingModel c = *RandomModel(8, 256, 8, 619);
  ASSERT_TRUE(core::BuildIvfIndex(&c, 8).ok());
  service.SwapModel(std::make_shared<const core::ServingModel>(std::move(c)));
  auto degraded =
      std::dynamic_pointer_cast<const IvfRetriever>(service.retriever());
  ASSERT_NE(degraded, nullptr);
  EXPECT_FALSE(degraded->quantized());
  EXPECT_FALSE(service.Recommend(2, 10).empty());
}

TEST(RecServiceQuantizedTest, LoadAndSwapAutoQuantizesAtThreshold) {
  // A v1 artifact at the deployment threshold: LoadAndSwap builds the
  // index AND the codes, so the swapped-in snapshot keeps serving the
  // quantized tier.
  const int64_t big_items = tensor::kIvfQuantizeMinItems;
  auto big = RandomModel(4, big_items, 8, 701);
  std::string path = testing::TempDir() + "/serve_quant_v1.bin";
  ASSERT_TRUE(core::SaveServingModel(*big, path).ok());  // v1: no index
  core::ServingModel first = *big;
  ASSERT_TRUE(core::BuildIvfIndex(&first, 8, /*quantize=*/true).ok());
  RecService::Options options;
  options.retriever = RetrieverKind::kIvf;
  options.nlist = 8;
  options.nprobe = 2;
  options.quantized = true;
  RecService service(
      std::make_shared<const core::ServingModel>(std::move(first)), nullptr,
      options);
  ASSERT_TRUE(service.LoadAndSwap(path).ok());
  auto ivf =
      std::dynamic_pointer_cast<const IvfRetriever>(service.retriever());
  ASSERT_NE(ivf, nullptr);
  EXPECT_TRUE(ivf->quantized())
      << "catalogue at kIvfQuantizeMinItems must auto-quantize on reload";
  EXPECT_FALSE(service.Recommend(1, 10).empty());
  std::remove(path.c_str());

  // Below the threshold the rebuilt index carries no codes: the quantized
  // option is deployment policy, not a hard requirement.
  auto small = RandomModel(4, 256, 8, 703);
  std::string small_path = testing::TempDir() + "/serve_quant_small_v1.bin";
  ASSERT_TRUE(core::SaveServingModel(*small, small_path).ok());
  core::ServingModel sfirst = *small;
  ASSERT_TRUE(core::BuildIvfIndex(&sfirst, 8, /*quantize=*/true).ok());
  RecService sservice(
      std::make_shared<const core::ServingModel>(std::move(sfirst)), nullptr,
      options);
  ASSERT_TRUE(sservice.LoadAndSwap(small_path).ok());
  auto sivf =
      std::dynamic_pointer_cast<const IvfRetriever>(sservice.retriever());
  ASSERT_NE(sivf, nullptr);
  EXPECT_FALSE(sivf->quantized());
  EXPECT_FALSE(sservice.Recommend(1, 10).empty());
  std::remove(small_path.c_str());
}

TEST(RecServiceTest, ConcurrentRecommendUnderSwaps) {
  const int64_t num_users = 24, num_items = 64, width = 8;
  auto model_a = RandomModel(num_users, num_items, width, 61);
  auto model_b = RandomModel(num_users, num_items, width, 67);
  const int64_t k = 10;
  // Precompute ground truth under both snapshots: every answer a reader
  // ever observes must exactly match one of them.
  std::vector<std::vector<RecEntry>> want_a, want_b;
  for (int64_t u = 0; u < num_users; ++u) {
    want_a.push_back(BruteForceTopN(*model_a, u, k));
    want_b.push_back(BruteForceTopN(*model_b, u, k));
  }

  RecService service(model_a);
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(100 + static_cast<uint64_t>(t));
      for (int64_t i = 0; i < 400; ++i) {
        int64_t user = rng.UniformInt(0, num_users - 1);
        std::vector<RecEntry> got = service.Recommend(user, k);
        if (got != want_a[static_cast<size_t>(user)] &&
            got != want_b[static_cast<size_t>(user)]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread swapper([&] {
    for (int s = 0; s < 24; ++s) {
      service.SwapModel(s % 2 == 0 ? model_b : model_a);
      std::this_thread::yield();
    }
  });
  for (std::thread& th : readers) th.join();
  swapper.join();
  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 4u * 400u);
  EXPECT_EQ(stats.swaps, 24u);
}

TEST(RecServiceTest, ConcurrentRecommendUnderHeapMmapSwaps) {
  // Alternating LoadAndSwap between a v1 artifact (owned heap storage)
  // and a v3 artifact served zero-copy out of an mmap must stay race-free
  // under concurrent readers: a reader pinning a mapped snapshot keeps the
  // mapping alive through its tensors' keepalives even after the service
  // swaps back to heap storage and drops every other reference.
  const int64_t num_users = 16, num_items = 48, width = 8;
  auto model_a = RandomModel(num_users, num_items, width, 73);
  auto model_b = RandomModel(num_users, num_items, width, 79);
  const int64_t k = 8;
  std::vector<std::vector<RecEntry>> want_a, want_b;
  for (int64_t u = 0; u < num_users; ++u) {
    want_a.push_back(BruteForceTopN(*model_a, u, k));
    want_b.push_back(BruteForceTopN(*model_b, u, k));
  }

  std::string heap_path = testing::TempDir() + "/serve_swap_v1.bin";
  std::string mmap_path = testing::TempDir() + "/serve_swap_v3.bin";
  ASSERT_TRUE(core::SaveServingModel(*model_a, heap_path).ok());
  ASSERT_TRUE(core::SaveServingModelV3(*model_b, mmap_path).ok());

  RecService::Options options;
  options.mmap_artifacts = true;
  RecService service(model_a, nullptr, options);
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(200 + static_cast<uint64_t>(t));
      for (int64_t i = 0; i < 300; ++i) {
        int64_t user = rng.UniformInt(0, num_users - 1);
        std::vector<RecEntry> got = service.Recommend(user, k);
        if (got != want_a[static_cast<size_t>(user)] &&
            got != want_b[static_cast<size_t>(user)]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread swapper([&] {
    for (int s = 0; s < 16; ++s) {
      ASSERT_TRUE(
          service.LoadAndSwap(s % 2 == 0 ? mmap_path : heap_path).ok());
      std::this_thread::yield();
    }
  });
  for (std::thread& th : readers) th.join();
  swapper.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.stats().swaps, 16u);
  // The last swap loaded the v3 artifact's predecessor (heap v1), so the
  // final snapshot is heap-backed; a fresh mmap swap flips it back.
  ASSERT_TRUE(service.LoadAndSwap(mmap_path).ok());
  ExpectExactlyEqual(service.Recommend(3, k),
                     want_b[3]);
  std::remove(heap_path.c_str());
  std::remove(mmap_path.c_str());
}

TEST(RecServiceTest, BatchCoalescesDuplicateMisses) {
  // A cold batch holding the same (user, k) three times misses three
  // times but retrieves once: the first occurrence leads, the other two
  // join its flight (published before any join waits, so no self-wait).
  auto model = RandomModel(8, 32, 8, 71);
  RecService service(model);
  std::vector<int64_t> users = {3, 3, 3, 5};
  auto out = service.RecommendBatch(users, 10);
  ASSERT_EQ(out.size(), 4u);
  std::vector<RecEntry> want = BruteForceTopN(*model, 3, 10);
  ExpectExactlyEqual(out[0], want);
  ExpectExactlyEqual(out[1], want);
  ExpectExactlyEqual(out[2], want);
  ExpectExactlyEqual(out[3], BruteForceTopN(*model, 5, 10));
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(RecServiceTest, ConcurrentMissesForSameKeySingleFlight) {
  // A thundering herd on one cold (user, k): every thread gets the exact
  // list, and each request is accounted as exactly one of {cache hit,
  // coalesced wait, leader retrieval}.
  auto model = RandomModel(8, 128, 8, 73);
  RecService service(model);
  std::vector<RecEntry> want = BruteForceTopN(*model, 2, 10);
  constexpr int kThreads = 8;
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<RecEntry> got = service.Recommend(2, 10);
      if (got != want) mismatches.fetch_add(1);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads));
  // hits + coalesced + leader-retrievals partition the requests; at least
  // one thread had to do the real scan.
  uint64_t retrieved = stats.requests - stats.cache_hits - stats.coalesced;
  EXPECT_GE(retrieved, 1u);
  EXPECT_LE(retrieved, static_cast<uint64_t>(kThreads));
}

// Spin until the flight under `key` has at least `count` holders — the
// registry map holds one reference and every JoinOrLead caller holds one,
// so this observes (without sleeps or timing assumptions) that a waiter
// thread has joined the flight. Once joined, the predicate-based cv wait
// makes publish/abandon wakeups race-free regardless of thread order.
void AwaitJoined(RecService* service, uint64_t key, long count) {
  while (RecServiceTestPeer::FlightUseCount(service, key) < count) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(RecServiceFlightTest, StaleAbandonLeavesReledFlightLive) {
  // ABA regression: a lease whose flight was already published fires its
  // abandon AFTER another thread re-led the same (user, k) key. The stale
  // abandon must be an identity-checked no-op — before the fix it tore
  // down the new live flight (waiters got empty lists) and the new
  // leader's PublishFlight then aborted the process.
  auto model = RandomModel(8, 32, 8, 91);
  RecService service(model);
  const uint64_t key = RecServiceTestPeer::Key(3, 10);
  std::vector<RecEntry> want = BruteForceTopN(*model, 3, 10);

  auto first = RecServiceTestPeer::JoinOrLead(&service, key);
  ASSERT_TRUE(first.leader);
  RecServiceTestPeer::Publish(&service, key, first, want);

  auto second = RecServiceTestPeer::JoinOrLead(&service, key);
  ASSERT_TRUE(second.leader);
  std::vector<RecEntry> got;
  std::thread waiter([&] { got = service.Recommend(3, 10); });
  AwaitJoined(&service, key, 3);  // map + `second` + the parked waiter
  RecServiceTestPeer::Abandon(&service, key, first);  // stale lease firing
  RecServiceTestPeer::Publish(&service, key, second, want);  // must not abort
  waiter.join();
  ExpectExactlyEqual(got, want);
  // The waiter consumed the second leader's published result — the stale
  // abandon neither woke it early nor marked its flight abandoned.
  EXPECT_EQ(service.stats().coalesced, 1u);
}

TEST(RecServiceFlightTest, WaiterOnAbandonedFlightRetrievesItself) {
  // A leader that unwinds before publishing must not feed waiters its
  // empty placeholder as if the user genuinely had zero items: they fall
  // back to doing the retrieval themselves.
  auto model = RandomModel(8, 64, 8, 93);
  RecService service(model);
  const uint64_t key = RecServiceTestPeer::Key(4, 10);
  std::vector<RecEntry> want = BruteForceTopN(*model, 4, 10);

  auto leader = RecServiceTestPeer::JoinOrLead(&service, key);
  ASSERT_TRUE(leader.leader);
  std::vector<RecEntry> got;
  std::thread waiter([&] { got = service.Recommend(4, 10); });
  AwaitJoined(&service, key, 3);  // map + `leader` + the parked waiter
  RecServiceTestPeer::Abandon(&service, key, leader);  // leader unwinds
  waiter.join();
  ExpectExactlyEqual(got, want);
  EXPECT_EQ(service.stats().coalesced, 0u);  // fallback, not a coalesce
  // The fallback also repaired the cache: the next request hits.
  ExpectExactlyEqual(service.Recommend(4, 10), want);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(RecServiceFlightTest, BatchJoinOnAbandonedFlightRetrievesItself) {
  // Same leader-unwind fallback through the RecommendBatch join path.
  auto model = RandomModel(8, 64, 8, 95);
  RecService service(model);
  const uint64_t key = RecServiceTestPeer::Key(5, 10);
  std::vector<RecEntry> want = BruteForceTopN(*model, 5, 10);

  auto leader = RecServiceTestPeer::JoinOrLead(&service, key);
  ASSERT_TRUE(leader.leader);
  std::vector<std::vector<RecEntry>> got;
  std::thread waiter([&] { got = service.RecommendBatch({5, 6}, 10); });
  AwaitJoined(&service, key, 3);  // map + `leader` + the batch's join
  RecServiceTestPeer::Abandon(&service, key, leader);
  waiter.join();
  ASSERT_EQ(got.size(), 2u);
  ExpectExactlyEqual(got[0], want);
  ExpectExactlyEqual(got[1], BruteForceTopN(*model, 6, 10));
  EXPECT_EQ(service.stats().coalesced, 0u);
}

TEST(RecServiceFlightTest, AbandonAfterTornPublishStillReleasesWaiters) {
  // Simulates PublishFlight unwinding between its registry erase and
  // setting done (e.g. the result copy throwing bad_alloc): the lease's
  // abandon no longer finds the key, but must still mark the flight
  // abandoned so waiters wake and re-run the miss path instead of
  // hanging forever on a cv nobody will signal.
  auto model = RandomModel(8, 64, 8, 99);
  RecService service(model);
  const uint64_t key = RecServiceTestPeer::Key(6, 10);
  std::vector<RecEntry> want = BruteForceTopN(*model, 6, 10);

  auto leader = RecServiceTestPeer::JoinOrLead(&service, key);
  ASSERT_TRUE(leader.leader);
  std::vector<RecEntry> got;
  std::thread waiter([&] { got = service.Recommend(6, 10); });
  AwaitJoined(&service, key, 3);
  RecServiceTestPeer::Unregister(&service, key);        // publish's erase…
  RecServiceTestPeer::Abandon(&service, key, leader);   // …then the unwind
  waiter.join();
  ExpectExactlyEqual(got, want);
  EXPECT_EQ(service.stats().coalesced, 0u);
}

TEST(RecServiceDeathTest, UserIdOutsideKeyPackingAborts) {
  // (user, k) share one 64-bit cache/flight key with user in the high 32
  // bits; an id past 2^32 would silently collide with another user's key
  // and serve them each other's lists, so it must abort loudly instead.
  auto model = RandomModel(8, 32, 8, 97);
  RecService service(model);
  EXPECT_DEATH(service.Recommend(int64_t{1} << 32, 5), "key packing");
  EXPECT_DEATH(service.Recommend(-1, 5), "user");
  EXPECT_DEATH(service.RecommendBatch({2, int64_t{1} << 32}, 5),
               "key packing");
}

// ------------------------------------------- evaluator fast-path parity ----

TEST(ServeEvalParityTest, RetrieverScorerBitIdenticalToCachedScorer) {
  // Table-III-style check on synthetic data: HR/NDCG computed through the
  // serving-path scorer must match the training-side CachedScorer path
  // bit for bit.
  data::Dataset full = data::GenerateSynthetic(data::YelpLike(0.08));
  data::TrainTestSplit split = data::LeaveLatestOut(full);
  util::Rng rng(7);
  auto candidates = data::BuildEvalCandidates(split.train, split.test,
                                              std::min<int64_t>(99, full.num_items / 3),
                                              &rng);
  core::GnmrConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_channels = 4;
  cfg.epochs = 2;
  cfg.use_pretrain = false;
  core::GnmrTrainer trainer(cfg, split.train);
  trainer.Train();
  const std::vector<int64_t> cutoffs = {1, 3, 5, 7, 9};

  std::unique_ptr<eval::Scorer> cached = trainer.MakeScorer();
  eval::RankingMetrics want =
      eval::EvaluateRanking(cached.get(), candidates, cutoffs);

  auto serving = std::make_shared<const core::ServingModel>(
      core::ExportServingModel(trainer.model()));
  ExactRetriever retriever(serving);
  std::unique_ptr<eval::Scorer> fast = retriever.MakeScorer();
  eval::RankingMetrics got =
      eval::EvaluateRanking(fast.get(), candidates, cutoffs);

  ASSERT_EQ(got.num_users, want.num_users);
  for (int64_t n : cutoffs) {
    EXPECT_EQ(got.hr[n], want.hr[n]) << "HR@" << n;      // bitwise
    EXPECT_EQ(got.ndcg[n], want.ndcg[n]) << "NDCG@" << n;
  }
}

}  // namespace
}  // namespace serve
}  // namespace gnmr
