// Tests for the multi-behavior interaction graph and samplers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/graph/interaction_graph.h"
#include "src/graph/negative_sampler.h"
#include "src/graph/neighbor_sampler.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace gnmr {
namespace graph {
namespace {

// 3 users, 4 items, 2 behaviors (0 = view, 1 = buy).
// views: u0-{i0,i1}, u1-{i1,i2}, u2-{i3}
// buys:  u0-{i1},    u2-{i3}
std::vector<Interaction> TestEvents() {
  return {
      {0, 0, 0, 0}, {0, 1, 0, 1}, {1, 1, 0, 2}, {1, 2, 0, 3}, {2, 3, 0, 4},
      {0, 1, 1, 5}, {2, 3, 1, 6},
  };
}

MultiBehaviorGraph TestGraph() {
  return MultiBehaviorGraph(3, 4, 2, TestEvents());
}

TEST(GraphTest, BasicCounts) {
  MultiBehaviorGraph g = TestGraph();
  g.CheckInvariants();
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 4);
  EXPECT_EQ(g.num_behaviors(), 2);
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.NumEdges(0), 5);
  EXPECT_EQ(g.NumEdges(1), 2);
  EXPECT_EQ(g.NumEdgesTotal(), 5);  // buys are a subset of views here
}

TEST(GraphTest, DuplicateEventsCollapse) {
  auto events = TestEvents();
  events.push_back({0, 0, 0, 9});  // duplicate view
  MultiBehaviorGraph g(3, 4, 2, events);
  EXPECT_EQ(g.NumEdges(0), 5);
  // Edge value stays binary after collapse.
  EXPECT_FLOAT_EQ(g.UserItem(0).values()[0], 1.0f);
}

TEST(GraphTest, NeighborQueries) {
  MultiBehaviorGraph g = TestGraph();
  EXPECT_EQ(g.ItemsOf(0, 0), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(g.ItemsOf(0, 1), (std::vector<int64_t>{1}));
  EXPECT_EQ(g.UsersOf(1, 0), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(g.UsersOf(3, 1), (std::vector<int64_t>{2}));
  EXPECT_TRUE(g.ItemsOf(2, 1).size() == 1);
}

TEST(GraphTest, EdgeMembership) {
  MultiBehaviorGraph g = TestGraph();
  EXPECT_TRUE(g.HasEdge(0, 1, 0));
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
  EXPECT_FALSE(g.HasEdge(0, 2, 0));
  EXPECT_FALSE(g.HasEdge(1, 1, 1));
  EXPECT_TRUE(g.HasAnyEdge(1, 2));
  EXPECT_FALSE(g.HasAnyEdge(1, 3));
}

TEST(GraphTest, Degrees) {
  MultiBehaviorGraph g = TestGraph();
  EXPECT_EQ(g.UserDegree(0, 0), 2);
  EXPECT_EQ(g.UserDegree(0, 1), 1);
  EXPECT_EQ(g.UserDegree(1, 1), 0);
  EXPECT_EQ(g.ItemDegree(1, 0), 2);
  EXPECT_EQ(g.ItemDegree(0, 1), 0);
}

TEST(GraphTest, UnifiedAdjacencySumNorm) {
  MultiBehaviorGraph g = TestGraph();
  const SparseOp* op = g.UnifiedAdjacency(0, NeighborNorm::kSum);
  op->forward.CheckInvariants();
  op->backward.CheckInvariants();
  EXPECT_EQ(op->forward.rows(), 7);
  // Unified graph has one entry per direction per edge.
  EXPECT_EQ(op->forward.nnz(), 2 * g.NumEdges(0));
  // Propagating all-ones counts neighbors (degree vector).
  tensor::Tensor ones = tensor::Tensor::Ones({7, 1});
  tensor::Tensor deg = tensor::ops::Spmm(op->forward, ones);
  EXPECT_FLOAT_EQ(deg.at(0, 0), 2.0f);  // u0 views 2 items
  EXPECT_FLOAT_EQ(deg.at(3 + 1, 0), 2.0f);  // i1 viewed by 2 users
  EXPECT_FLOAT_EQ(deg.at(3 + 0, 0), 1.0f);  // i0 viewed by u0 only
}

TEST(GraphTest, UnifiedAdjacencyMeanNorm) {
  MultiBehaviorGraph g = TestGraph();
  const SparseOp* op = g.UnifiedAdjacency(0, NeighborNorm::kMean);
  tensor::Tensor ones = tensor::Tensor::Ones({7, 1});
  tensor::Tensor m = tensor::ops::Spmm(op->forward, ones);
  // Mean aggregation of ones is exactly 1 for nodes with neighbors.
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(3 + 3, 0), 1.0f);
}

TEST(GraphTest, UnifiedAdjacencySqrtNormRowSums) {
  MultiBehaviorGraph g = TestGraph();
  const SparseOp* op = g.UnifiedAdjacency(0, NeighborNorm::kSqrtDegree);
  // Row sum for u0 (deg 2, neighbors i0 deg 1 and i1 deg 2):
  // 1/sqrt(2*1) + 1/sqrt(2*2) ~= 0.7071 + 0.5
  auto sums = op->forward.RowSums();
  EXPECT_NEAR(sums[0], 1.0f / std::sqrt(2.0f) + 0.5f, 1e-5f);
}

TEST(GraphTest, UnifiedAdjacencyIsCached) {
  MultiBehaviorGraph g = TestGraph();
  const SparseOp* a = g.UnifiedAdjacency(0, NeighborNorm::kSum);
  const SparseOp* b = g.UnifiedAdjacency(0, NeighborNorm::kSum);
  EXPECT_EQ(a, b);
  const SparseOp* c = g.UnifiedAdjacency(0, NeighborNorm::kMean);
  EXPECT_NE(a, c);
}

TEST(GraphTest, MergedAdjacencyUnionsBehaviors) {
  MultiBehaviorGraph g = TestGraph();
  const SparseOp* op = g.MergedAdjacency(NeighborNorm::kSum);
  EXPECT_EQ(op->forward.nnz(), 2 * g.NumEdgesTotal());
}

TEST(GraphTest, BackwardIsTranspose) {
  MultiBehaviorGraph g = TestGraph();
  const SparseOp* op = g.UnifiedAdjacency(1, NeighborNorm::kMean);
  // backward^T == forward
  tensor::CsrMatrix t = op->backward.Transposed();
  EXPECT_EQ(t.row_ptr(), op->forward.row_ptr());
  EXPECT_EQ(t.col_idx(), op->forward.col_idx());
  EXPECT_EQ(t.values(), op->forward.values());
}

TEST(GraphDeathTest, OutOfRangeInteractionAborts) {
  EXPECT_DEATH(MultiBehaviorGraph(2, 2, 1, {{2, 0, 0, 0}}), "user");
  EXPECT_DEATH(MultiBehaviorGraph(2, 2, 1, {{0, 2, 0, 0}}), "item");
  EXPECT_DEATH(MultiBehaviorGraph(2, 2, 1, {{0, 0, 1, 0}}), "behavior");
}

// ------------------------------------------------------- NegativeSampler ----

TEST(NegativeSamplerTest, NeverReturnsPositives) {
  MultiBehaviorGraph g = TestGraph();
  NegativeSampler sampler(&g, /*target_behavior=*/1);
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    int64_t item = sampler.SampleOne(0, &rng);
    EXPECT_FALSE(g.HasEdge(0, item, 1)) << "sampled positive " << item;
  }
}

TEST(NegativeSamplerTest, AuxiliaryItemsRemainEligible) {
  MultiBehaviorGraph g = TestGraph();
  NegativeSampler sampler(&g, /*target_behavior=*/1);
  util::Rng rng(11);
  // u0 viewed i0 but never bought it: i0 must appear among negatives.
  bool saw_viewed_item = false;
  for (int i = 0; i < 200 && !saw_viewed_item; ++i) {
    saw_viewed_item = sampler.SampleOne(0, &rng) == 0;
  }
  EXPECT_TRUE(saw_viewed_item);
}

TEST(NegativeSamplerTest, DistinctSampling) {
  MultiBehaviorGraph g = TestGraph();
  NegativeSampler sampler(&g, 1);
  util::Rng rng(13);
  auto negs = sampler.Sample(1, 4, /*distinct=*/true, &rng);
  std::set<int64_t> uniq(negs.begin(), negs.end());
  EXPECT_EQ(uniq.size(), 4u);  // u1 has no buys: all 4 items eligible
}

TEST(NegativeSamplerTest, NumEligible) {
  MultiBehaviorGraph g = TestGraph();
  NegativeSampler sampler(&g, 1);
  EXPECT_EQ(sampler.NumEligible(0), 3);
  EXPECT_EQ(sampler.NumEligible(1), 4);
}

// ------------------------------------------------------- NeighborSampler ----

TEST(NeighborSamplerTest, SeedsComeFirstAndEdgesAreValid) {
  MultiBehaviorGraph g = TestGraph();
  NeighborSampler sampler(&g, /*fanout=*/10);
  util::Rng rng(17);
  SampledSubgraph sg = sampler.Sample({0, 1}, {}, /*hops=*/2, &rng);
  ASSERT_GE(sg.nodes.size(), 2u);
  EXPECT_EQ(sg.nodes[0], 0);
  EXPECT_EQ(sg.nodes[1], 1);
  ASSERT_EQ(sg.hop_edges.size(), 2u);
  for (const auto& hop : sg.hop_edges) {
    for (const auto& e : hop) {
      ASSERT_LT(static_cast<size_t>(e.src_pos), sg.nodes.size());
      ASSERT_LT(static_cast<size_t>(e.dst_pos), sg.nodes.size());
      // Bipartite: src and dst on opposite sides.
      bool src_user = sg.nodes[static_cast<size_t>(e.src_pos)] < 3;
      bool dst_user = sg.nodes[static_cast<size_t>(e.dst_pos)] < 3;
      EXPECT_NE(src_user, dst_user);
    }
  }
}

TEST(NeighborSamplerTest, FanoutBoundsNeighbors) {
  // Star graph: one user connected to many items.
  std::vector<Interaction> events;
  for (int64_t j = 0; j < 50; ++j) events.push_back({0, j, 0, j});
  MultiBehaviorGraph g(1, 50, 1, events);
  NeighborSampler sampler(&g, /*fanout=*/5);
  util::Rng rng(19);
  SampledSubgraph sg = sampler.Sample({0}, {}, 1, &rng);
  ASSERT_EQ(sg.hop_edges.size(), 1u);
  EXPECT_EQ(sg.hop_edges[0].size(), 5u);
  // Sampled neighbors are distinct items.
  std::set<int32_t> srcs;
  for (const auto& e : sg.hop_edges[0]) srcs.insert(e.src_pos);
  EXPECT_EQ(srcs.size(), 5u);
}

TEST(NeighborSamplerTest, SmallDegreeKeepsAllNeighbors) {
  MultiBehaviorGraph g = TestGraph();
  NeighborSampler sampler(&g, /*fanout=*/100);
  util::Rng rng(23);
  SampledSubgraph sg = sampler.Sample({0}, {}, 1, &rng);
  // u0 has 2 view edges + 1 buy edge.
  EXPECT_EQ(sg.hop_edges[0].size(), 3u);
}

}  // namespace
}  // namespace graph
}  // namespace gnmr
