// Tests for the retrieval-strategy layer: deterministic k-means parity
// across kernel backends, the v1/v2 ServingModel artifact (IVF index
// round-trip + v1 backward compatibility), IvfRetriever exactness at
// nprobe == nlist (including seen-item filtering and cross-cluster score
// ties), measured recall + scan-fraction at nprobe = nlist/4 on clustered
// synthetic data, and RecService routing through the Retriever interface
// with the per-request exact fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/model_io.h"
#include "src/eval/retrieval_recall.h"
#include "src/serve/exact_retriever.h"
#include "src/serve/ivf_retriever.h"
#include "src/serve/rec_service.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/kmeans.h"
#include "src/tensor/quantize.h"
#include "src/util/rng.h"

namespace gnmr {
namespace {

using serve::BetterThan;
using serve::ExactRetriever;
using serve::IvfRetriever;
using serve::ItemShardMode;
using serve::RecEntry;

// ------------------------------------------------------------ test data ----

// Well-separated clustered embeddings: `num_clusters` centers drawn at a
// large scale, every item (and every user) sitting near one of them with
// small noise. Users prefer the items of "their" cluster by a wide margin,
// which is the regime an IVF index is built for.
core::ServingModel ClusteredModel(int64_t num_users, int64_t num_items,
                                  int64_t width, int64_t num_clusters,
                                  uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor centers =
      tensor::Tensor::RandomNormal({num_clusters, width}, &rng, 0.0f, 8.0f);
  core::ServingModel m;
  m.num_users = num_users;
  m.num_items = num_items;
  m.embeddings = tensor::Tensor({num_users + num_items, width});
  float* data = m.embeddings.data();
  for (int64_t r = 0; r < num_users + num_items; ++r) {
    // Users cycle through clusters; items fill clusters contiguously so
    // every cluster holds about num_items / num_clusters items.
    const int64_t c = r < num_users
                          ? r % num_clusters
                          : ((r - num_users) * num_clusters) / num_items;
    const float* center = centers.data() + c * width;
    for (int64_t j = 0; j < width; ++j) {
      data[r * width + j] = center[j] + rng.Normal(0.0f, 0.2f);
    }
  }
  return m;
}

void ExpectExactlyEqual(const std::vector<RecEntry>& got,
                        const std::vector<RecEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;  // bitwise
  }
}

// --------------------------------------------------------------- k-means ----

TEST(KMeansTest, DeterministicAndCovering) {
  core::ServingModel m = ClusteredModel(4, 256, 8, 8, 11);
  const float* items = m.embeddings.data() + m.num_users * 8;
  tensor::KMeansResult a = tensor::KMeansRows(items, 256, 8, 8);
  tensor::KMeansResult b = tensor::KMeansRows(items, 256, 8, 8);
  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.assignments, b.assignments);
  for (int64_t i = 0; i < a.centroids.numel(); ++i) {
    EXPECT_EQ(a.centroids.data()[i], b.centroids.data()[i]);  // bitwise
  }
  int64_t total = 0;
  for (int64_t s : a.sizes) total += s;
  EXPECT_EQ(total, 256);
  for (int64_t assignment : a.assignments) {
    EXPECT_GE(assignment, 0);
    EXPECT_LT(assignment, 8);
  }
}

TEST(KMeansTest, ConvergedAssignmentsAreNearestCentroid) {
  // Lloyd fixed point: once converged, every row sits in the cluster of
  // its nearest centroid, ties to the lowest centroid id. (Random seeding
  // may split/merge true clusters — purity is NOT guaranteed; recall of
  // the IVF index built on top is what the retriever tests measure.)
  core::ServingModel m = ClusteredModel(4, 128, 8, 4, 23);
  const int64_t width = 8;
  const float* items = m.embeddings.data() + m.num_users * width;
  tensor::KMeansResult r = tensor::KMeansRows(items, 128, width, 4);
  ASSERT_TRUE(r.converged);
  for (int64_t i = 0; i < 128; ++i) {
    int64_t best = -1;
    double best_d = 0.0;
    for (int64_t c = 0; c < 4; ++c) {
      double d = 0.0;
      for (int64_t j = 0; j < width; ++j) {
        const double diff =
            static_cast<double>(items[i * width + j]) -
            static_cast<double>(r.centroids.data()[c * width + j]);
        d += diff * diff;
      }
      if (best < 0 || d < best_d) {
        best = c;
        best_d = d;
      }
    }
    // Allow for the formulation difference (|c|^2 - 2 x.c vs expanded
    // squared distance) only through strict improvement: the assigned
    // centroid's distance must not beat `best` by more than rounding.
    double assigned_d = 0.0;
    const int64_t a = r.assignments[static_cast<size_t>(i)];
    for (int64_t j = 0; j < width; ++j) {
      const double diff =
          static_cast<double>(items[i * width + j]) -
          static_cast<double>(r.centroids.data()[a * width + j]);
      assigned_d += diff * diff;
    }
    EXPECT_LE(assigned_d, best_d * (1.0 + 1e-6) + 1e-9) << "row " << i;
  }
}

TEST(KMeansTest, EmptyClusterKeepsItsCentroid) {
  // Two distinct points, duplicated; k = 3 must leave exactly one cluster
  // empty (ties go to the lowest centroid id) and keep its centroid value.
  tensor::Tensor rows = tensor::Tensor::FromData(
      {4, 2}, {0.0f, 0.0f, 0.0f, 0.0f, 10.0f, 10.0f, 10.0f, 10.0f});
  tensor::KMeansResult r = tensor::KMeansRows(rows, 3);
  std::vector<int64_t> sizes = r.sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<int64_t>{0, 2, 2}));
  for (int64_t i = 0; i < r.centroids.numel(); ++i) {
    const float v = r.centroids.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 10.0f) << v;
  }
}

TEST(KMeansTest, ParityAcrossAllBackends) {
  core::ServingModel m = ClusteredModel(4, 384, 12, 8, 31);
  const float* items = m.embeddings.data() + m.num_users * 12;
  tensor::KMeansResult reference;
  {
    tensor::ScopedBackend scoped("serial");
    reference = tensor::KMeansRows(items, 384, 12, 8);
  }
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    // "blas" (when built) is the one registered backend outside the
    // bit-exact contract — benchmark-only, so it has no place in a
    // bit-compare loop. Every bit-exact backend, including "blocked" and
    // "simd", must match serial exactly: the whole build compiles with
    // -ffp-contract=off, so not even -march=native FMA contraction can
    // introduce slack.
    if (!backend->bit_exact()) continue;
    tensor::ScopedBackend scoped(backend->name());
    tensor::KMeansResult got = tensor::KMeansRows(items, 384, 12, 8);
    EXPECT_EQ(got.assignments, reference.assignments) << backend->name();
    EXPECT_EQ(got.iterations, reference.iterations) << backend->name();
    for (int64_t i = 0; i < reference.centroids.numel(); ++i) {
      EXPECT_EQ(got.centroids.data()[i], reference.centroids.data()[i])
          << backend->name() << " element " << i;
    }
  }
}

TEST(KMeansTest, PlusPlusSeedingDeterministicAndDistinct) {
  core::ServingModel m = ClusteredModel(4, 384, 12, 8, 53);
  const float* items = m.embeddings.data() + m.num_users * 12;
  tensor::KMeansOptions options;
  options.plusplus_init = true;
  tensor::KMeansResult a = tensor::KMeansRows(items, 384, 12, 8, options);
  tensor::KMeansResult b = tensor::KMeansRows(items, 384, 12, 8, options);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  for (int64_t i = 0; i < a.centroids.numel(); ++i) {
    EXPECT_EQ(a.centroids.data()[i], b.centroids.data()[i]);  // bitwise
  }
  // The flag is opt-in: leaving it off must reproduce the historical
  // uniform draw bit-for-bit (persisted IVF indexes depend on it).
  tensor::KMeansResult legacy_a = tensor::KMeansRows(items, 384, 12, 8);
  tensor::KMeansOptions off;
  off.plusplus_init = false;
  tensor::KMeansResult legacy_b = tensor::KMeansRows(items, 384, 12, 8, off);
  EXPECT_EQ(legacy_a.assignments, legacy_b.assignments);
  for (int64_t i = 0; i < legacy_a.centroids.numel(); ++i) {
    EXPECT_EQ(legacy_a.centroids.data()[i], legacy_b.centroids.data()[i]);
  }
}

TEST(KMeansTest, PlusPlusParityAcrossBitExactBackends) {
  // D^2 seeding composes distances from RowDot norms and QueryDot cross
  // terms; both are bit-identical everywhere, so the chosen seeds — and
  // therefore the whole clustering — must match serial on every
  // bit-exact backend.
  core::ServingModel m = ClusteredModel(4, 384, 12, 8, 37);
  const float* items = m.embeddings.data() + m.num_users * 12;
  tensor::KMeansOptions options;
  options.plusplus_init = true;
  tensor::KMeansResult reference;
  {
    tensor::ScopedBackend scoped("serial");
    reference = tensor::KMeansRows(items, 384, 12, 8, options);
  }
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    if (!backend->bit_exact()) continue;
    tensor::ScopedBackend scoped(backend->name());
    tensor::KMeansResult got = tensor::KMeansRows(items, 384, 12, 8, options);
    EXPECT_EQ(got.assignments, reference.assignments) << backend->name();
    EXPECT_EQ(got.iterations, reference.iterations) << backend->name();
    for (int64_t i = 0; i < reference.centroids.numel(); ++i) {
      EXPECT_EQ(got.centroids.data()[i], reference.centroids.data()[i])
          << backend->name() << " element " << i;
    }
  }
}

TEST(KMeansTest, PlusPlusSpreadsSeedsAcrossSeparatedClusters) {
  // On well-separated clusters D^2 sampling should land its k seeds in k
  // distinct true clusters (a uniform draw frequently doubles up), which
  // is the whole point of the init: Lloyd starts near the answer. Assert
  // the within-cluster cost is no worse than the uniform init's — and
  // that on this fixture the seeds cover every true cluster.
  const int64_t n = 512, d = 8, k = 8;
  core::ServingModel m = ClusteredModel(4, n, d, k, 101);
  const float* items = m.embeddings.data() + m.num_users * d;
  auto cost = [&](const tensor::KMeansResult& r) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = r.assignments[static_cast<size_t>(i)];
      for (int64_t j = 0; j < d; ++j) {
        const double diff =
            static_cast<double>(items[i * d + j]) -
            static_cast<double>(r.centroids.data()[c * d + j]);
        total += diff * diff;
      }
    }
    return total;
  };
  tensor::KMeansOptions uniform;
  tensor::KMeansOptions plusplus;
  plusplus.plusplus_init = true;
  tensor::KMeansResult u = tensor::KMeansRows(items, n, d, k, uniform);
  tensor::KMeansResult p = tensor::KMeansRows(items, n, d, k, plusplus);
  EXPECT_LE(cost(p), cost(u) * (1.0 + 1e-9));
  // Items fill true clusters contiguously (ClusteredModel), so an
  // assignment that separates all k of them maps each true cluster onto
  // its own centroid — check the k++ run found every cluster.
  std::vector<char> hit(static_cast<size_t>(k), 0);
  for (int64_t c = 0; c < k; ++c) {
    hit[static_cast<size_t>(
        p.assignments[static_cast<size_t>(c * n / k)])] = 1;
  }
  int64_t distinct = 0;
  for (char h : hit) distinct += h;
  EXPECT_EQ(distinct, k) << "k-means++ seeds missed a true cluster";
}

// ---------------------------------------------------------- the artifact ----

TEST(IvfArtifactTest, BuildIvfIndexStructure) {
  core::ServingModel m = ClusteredModel(16, 512, 8, 8, 41);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 8).ok());
  ASSERT_TRUE(m.has_ivf());
  EXPECT_EQ(m.ivf->nlist(), 8);
  EXPECT_EQ(static_cast<int64_t>(m.ivf->list_items.size()), 512);
  m.ivf->CheckConsistent(m.num_items, m.embeddings.cols());
  // Posting lists ascending within each cluster.
  for (int64_t c = 0; c < 8; ++c) {
    for (int64_t p = m.ivf->list_offsets[static_cast<size_t>(c)] + 1;
         p < m.ivf->list_offsets[static_cast<size_t>(c) + 1]; ++p) {
      EXPECT_LT(m.ivf->list_items[static_cast<size_t>(p) - 1],
                m.ivf->list_items[static_cast<size_t>(p)]);
    }
  }
}

TEST(IvfArtifactTest, NlistClampedToCatalogue) {
  core::ServingModel m = ClusteredModel(4, 16, 4, 2, 43);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 999).ok());
  EXPECT_EQ(m.ivf->nlist(), 16);
}

TEST(IvfArtifactTest, V2RoundTripPreservesIndex) {
  core::ServingModel original = ClusteredModel(16, 512, 8, 8, 47);
  ASSERT_TRUE(core::BuildIvfIndex(&original, 8).ok());
  std::string path = testing::TempDir() + "/gnmr_v2.bin";
  ASSERT_TRUE(core::SaveServingModel(original, path).ok());
  auto loaded = core::LoadServingModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const core::ServingModel& got = loaded.value();
  ASSERT_TRUE(got.has_ivf());
  EXPECT_EQ(got.num_users, original.num_users);
  EXPECT_EQ(got.num_items, original.num_items);
  for (int64_t i = 0; i < original.embeddings.numel(); ++i) {
    EXPECT_EQ(got.embeddings.data()[i], original.embeddings.data()[i]);
  }
  EXPECT_EQ(got.ivf->list_offsets, original.ivf->list_offsets);
  EXPECT_EQ(got.ivf->list_items, original.ivf->list_items);
  ASSERT_TRUE(got.ivf->centroids.SameShape(original.ivf->centroids));
  for (int64_t i = 0; i < original.ivf->centroids.numel(); ++i) {
    EXPECT_EQ(got.ivf->centroids.data()[i],
              original.ivf->centroids.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(IvfArtifactTest, ModelWithoutIndexStillWritesV1) {
  core::ServingModel original = ClusteredModel(8, 32, 4, 2, 53);
  std::string path = testing::TempDir() + "/gnmr_v1_roundtrip.bin";
  ASSERT_TRUE(core::SaveServingModel(original, path).ok());
  // The file must carry the v1 magic: readers that predate the index
  // understand every index-less artifact this build writes.
  std::ifstream in(path, std::ios::binary);
  char magic[8];
  in.read(magic, 8);
  EXPECT_EQ(std::memcmp(magic, "GNMRSM01", 8), 0);
  in.close();
  auto loaded = core::LoadServingModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_ivf());
  std::remove(path.c_str());
}

TEST(IvfArtifactTest, LoadsHandWrittenV1File) {
  // A v1 file written byte-by-byte, as the pre-index format produced it.
  const int64_t num_users = 2, num_items = 3, width = 2;
  std::vector<float> emb(static_cast<size_t>((num_users + num_items) * width));
  for (size_t i = 0; i < emb.size(); ++i) emb[i] = 0.5f * static_cast<float>(i);
  std::string path = testing::TempDir() + "/gnmr_legacy_v1.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("GNMRSM01", 8);
    int64_t header[3] = {num_users, num_items, width};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    out.write(reinterpret_cast<const char*>(emb.data()),
              static_cast<std::streamsize>(emb.size() * sizeof(float)));
  }
  auto loaded = core::LoadServingModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().has_ivf());
  EXPECT_EQ(loaded.value().num_users, num_users);
  EXPECT_EQ(loaded.value().num_items, num_items);
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_EQ(loaded.value().embeddings.data()[i], emb[i]);
  }
  std::remove(path.c_str());
}

TEST(IvfArtifactTest, RejectsCorruptV2Files) {
  core::ServingModel original = ClusteredModel(8, 64, 4, 4, 59);
  ASSERT_TRUE(core::BuildIvfIndex(&original, 4).ok());
  std::string path = testing::TempDir() + "/gnmr_v2_corrupt.bin";
  ASSERT_TRUE(core::SaveServingModel(original, path).ok());

  // Truncated index section.
  {
    std::ifstream in(path, std::ios::binary);
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(),
              static_cast<std::streamsize>(blob.size() - 16));
  }
  EXPECT_FALSE(core::LoadServingModel(path).ok());

  // Out-of-range posting-list entry.
  ASSERT_TRUE(core::SaveServingModel(original, path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-static_cast<std::streamoff>(sizeof(int64_t)), std::ios::end);
    int64_t bogus = original.num_items + 100;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_FALSE(core::LoadServingModel(path).ok());

  // Trailing bytes.
  ASSERT_TRUE(core::SaveServingModel(original, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("junk", 4);
  }
  EXPECT_FALSE(core::LoadServingModel(path).ok());

  // Out-of-range INTERMEDIATE offset: passes the front/back checks but
  // must be rejected before the loader walks list_items (heap over-read
  // otherwise). Offsets live right after nlist + centroids; patch the
  // second entry.
  ASSERT_TRUE(core::SaveServingModel(original, path).ok());
  {
    const std::streamoff offsets_pos =
        8 + 3 * static_cast<std::streamoff>(sizeof(int64_t)) +
        static_cast<std::streamoff>(original.embeddings.numel() *
                                    sizeof(float)) +
        static_cast<std::streamoff>(sizeof(int64_t)) +
        static_cast<std::streamoff>(original.ivf->centroids.numel() *
                                    sizeof(float));
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(offsets_pos + static_cast<std::streamoff>(sizeof(int64_t)));
    int64_t huge = int64_t{1} << 40;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_FALSE(core::LoadServingModel(path).ok());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- the retriever --

// Builds a clustered model + index where two items in DIFFERENT posting
// lists share identical embeddings, so their scores tie exactly for every
// user and the tie must break across clusters by item id.
std::shared_ptr<const core::ServingModel> TiedIvfModel(int64_t* tied_lo,
                                                       int64_t* tied_hi) {
  core::ServingModel m = ClusteredModel(24, 512, 8, 8, 61);
  const int64_t width = m.embeddings.cols();
  GNMR_CHECK(core::BuildIvfIndex(&m, 8).ok());
  // Pick the first item of two different posting lists and duplicate the
  // embedding AFTER the index is built: the lists keep their members, but
  // the two items now score identically everywhere.
  const int64_t a = m.ivf->list_items[static_cast<size_t>(
      m.ivf->list_offsets[0])];
  const int64_t b = m.ivf->list_items[static_cast<size_t>(
      m.ivf->list_offsets[4])];
  float* data = m.embeddings.data();
  for (int64_t c = 0; c < width; ++c) {
    data[(m.num_users + b) * width + c] = data[(m.num_users + a) * width + c];
  }
  *tied_lo = std::min(a, b);
  *tied_hi = std::max(a, b);
  return std::make_shared<const core::ServingModel>(std::move(m));
}

serve::SeenItems MakeSeen(int64_t num_users, int64_t num_items) {
  data::Dataset d;
  d.name = "seen";
  d.num_users = num_users;
  d.num_items = num_items;
  d.behavior_names = {"buy"};
  d.target_behavior = 0;
  for (int64_t u = 0; u < num_users; ++u) {
    for (int64_t i = 0; i < 5; ++i) {
      d.interactions.push_back({u, (u * 7 + i * 13) % num_items, 0, i});
    }
  }
  return serve::SeenItems::FromDataset(d, false);
}

TEST(IvfRetrieverTest, NprobeEqualsNlistBitIdenticalToExact) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  auto seen = std::make_shared<const serve::SeenItems>(
      MakeSeen(model->num_users, model->num_items));
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    tensor::ScopedBackend scoped(backend->name());
    for (ItemShardMode mode : {ItemShardMode::kOff, ItemShardMode::kOn}) {
      ExactRetriever exact(model, seen, mode);
      IvfRetriever ivf(model, seen, /*nprobe=*/8, mode);
      ASSERT_EQ(ivf.nprobe(), ivf.nlist());
      for (int64_t user = 0; user < model->num_users; ++user) {
        for (int64_t k : {1, 10, 64}) {
          std::vector<RecEntry> want = exact.RetrieveTopN(user, k);
          std::vector<RecEntry> got = ivf.RetrieveTopN(user, k);
          ExpectExactlyEqual(got, want);
        }
      }
      // The cross-cluster tie pair must appear adjacent, lower id first,
      // when both make the cut (k = catalogue, no filtering of them).
      std::vector<RecEntry> full = ivf.RetrieveTopN(0, model->num_items);
      int64_t pos_lo = -1, pos_hi = -1;
      for (size_t i = 0; i < full.size(); ++i) {
        if (full[i].item == tied_lo) pos_lo = static_cast<int64_t>(i);
        if (full[i].item == tied_hi) pos_hi = static_cast<int64_t>(i);
      }
      if (pos_lo >= 0 && pos_hi >= 0) {
        EXPECT_EQ(pos_hi, pos_lo + 1) << "tied items not adjacent";
      }
    }
  }
}

TEST(IvfRetrieverTest, BatchMatchesPerUserCalls) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  std::vector<int64_t> users;
  for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  for (ItemShardMode mode : {ItemShardMode::kOff, ItemShardMode::kOn}) {
    IvfRetriever ivf(model, nullptr, /*nprobe=*/3, mode);
    std::vector<std::vector<RecEntry>> batch = ivf.RetrieveBatch(users, 10);
    ASSERT_EQ(batch.size(), users.size());
    for (size_t u = 0; u < users.size(); ++u) {
      ExpectExactlyEqual(batch[u], ivf.RetrieveTopN(users[u], 10));
    }
  }
}

TEST(IvfRetrieverTest, ShardedMatchesUnsharded) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  IvfRetriever off(model, nullptr, /*nprobe=*/3, ItemShardMode::kOff);
  IvfRetriever on(model, nullptr, /*nprobe=*/3, ItemShardMode::kOn);
  for (int64_t user = 0; user < model->num_users; ++user) {
    ExpectExactlyEqual(on.RetrieveTopN(user, 10), off.RetrieveTopN(user, 10));
  }
}

TEST(IvfRetrieverTest, RecallAtQuarterNprobeOnClusteredData) {
  // The acceptance bar: nprobe = nlist/4 on clustered synthetic data must
  // keep recall@10 >= 0.95 while scanning < 40% of the catalogue.
  core::ServingModel m = ClusteredModel(128, 2048, 16, 16, 67);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 16).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  ExactRetriever exact(model, nullptr, ItemShardMode::kOff);
  IvfRetriever ivf(model, nullptr, /*nprobe=*/4, ItemShardMode::kOff);
  ASSERT_EQ(ivf.nprobe(), 4);

  std::vector<int64_t> users;
  for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  const double recall = eval::RetrievalRecallAtK(exact, ivf, users, 10);
  EXPECT_GE(recall, 0.95) << "IVF recall@10 collapsed";

  serve::RetrieverStats stats = ivf.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(users.size()));
  EXPECT_EQ(stats.probed_clusters, static_cast<uint64_t>(users.size()) * 4);
  const double scanned_fraction =
      static_cast<double>(stats.scanned_items) /
      (static_cast<double>(users.size()) *
       static_cast<double>(model->num_items));
  EXPECT_LT(scanned_fraction, 0.40) << "IVF scanned too much";
  EXPECT_GT(scanned_fraction, 0.0);
}

TEST(IvfRetrieverTest, ScannedBytesAccountsForStreamedEmbeddings) {
  // scanned_bytes is the exact memory-bandwidth cost of the scan: item
  // rows streamed, plus (for IVF) the centroid rows every probe reads.
  core::ServingModel m = ClusteredModel(32, 512, 8, 8, 91);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 8).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  const uint64_t width = static_cast<uint64_t>(model->embeddings.cols());
  const std::vector<int64_t> users = {0, 1, 2, 3, 4, 5, 6, 7};

  ExactRetriever exact(model, nullptr, ItemShardMode::kOff);
  exact.RetrieveTopN(0, 10);
  exact.RetrieveBatch(users, 10);
  serve::RetrieverStats es = exact.Stats();
  EXPECT_EQ(es.scanned_items,
            (1 + users.size()) * static_cast<uint64_t>(model->num_items));
  EXPECT_EQ(es.scanned_bytes, es.scanned_items * width * sizeof(float));

  IvfRetriever ivf(model, nullptr, /*nprobe=*/2, ItemShardMode::kOff);
  ivf.RetrieveTopN(0, 10);
  ivf.RetrieveBatch(users, 10);
  serve::RetrieverStats is = ivf.Stats();
  EXPECT_GT(is.scanned_items, 0u);
  EXPECT_LT(is.scanned_items, es.scanned_items);  // probes a subset
  const uint64_t centroid_rows =
      is.requests * static_cast<uint64_t>(ivf.nlist());
  EXPECT_EQ(is.scanned_bytes,
            (is.scanned_items + centroid_rows) * width * sizeof(float));
}

TEST(IvfRetrieverTest, ProbeSelectionDeterministicAcrossBackends) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  IvfRetriever reference(model, nullptr, /*nprobe=*/2, ItemShardMode::kOff);
  std::vector<std::vector<RecEntry>> want;
  for (int64_t u = 0; u < model->num_users; ++u) {
    want.push_back(reference.RetrieveTopN(u, 10));
  }
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    tensor::ScopedBackend scoped(backend->name());
    IvfRetriever ivf(model, nullptr, /*nprobe=*/2, ItemShardMode::kAuto);
    for (int64_t u = 0; u < model->num_users; ++u) {
      ExpectExactlyEqual(ivf.RetrieveTopN(u, 10),
                         want[static_cast<size_t>(u)]);
    }
  }
}

// ------------------------------------------------------ the quantized tier --

TEST(IvfQuantizedTest, BuildAttachesCodesInPostingOrder) {
  core::ServingModel m = ClusteredModel(8, 256, 8, 4, 73);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 4, /*quantize=*/true).ok());
  ASSERT_TRUE(m.ivf->has_codes());
  const int64_t width = m.embeddings.cols();
  ASSERT_EQ(static_cast<int64_t>(m.ivf->codes.size()), m.num_items * width);
  ASSERT_EQ(static_cast<int64_t>(m.ivf->code_scales.size()), m.num_items);
  // The codes at posting position p quantize item list_items[p]'s row —
  // NOT item p's row — so each probed list streams contiguously.
  const float* item_base = m.embeddings.data() + m.num_users * width;
  for (int64_t pos : {int64_t{0}, int64_t{100}, m.num_items - 1}) {
    const int64_t item = m.ivf->list_items[static_cast<size_t>(pos)];
    std::vector<int8_t> want(static_cast<size_t>(width));
    const float scale = tensor::quant::QuantizeRowI8(
        item_base + item * width, width, want.data());
    EXPECT_EQ(scale, m.ivf->code_scales.data()[pos]) << "pos " << pos;
    for (int64_t j = 0; j < width; ++j) {
      EXPECT_EQ(want[static_cast<size_t>(j)],
                m.ivf->codes.data()[pos * width + j])
          << "pos " << pos << " lane " << j;
    }
  }
  // BuildIvfIndex without the flag attaches no codes.
  core::ServingModel plain = ClusteredModel(8, 256, 8, 4, 73);
  ASSERT_TRUE(core::BuildIvfIndex(&plain, 4).ok());
  EXPECT_FALSE(plain.ivf->has_codes());
}

TEST(IvfQuantizedTest, MatchesFloatWhenRerankCoversScan) {
  // With rerank_k >= every scanned candidate, phase 2 re-scores the whole
  // probed set exactly — so the output must be BITWISE identical to the
  // float IVF scan at the same nprobe: quantization only decides who
  // reaches the pool, and here everybody does.
  core::ServingModel m = ClusteredModel(24, 512, 8, 8, 79);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 8, /*quantize=*/true).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  auto seen = std::make_shared<const serve::SeenItems>(
      MakeSeen(model->num_users, model->num_items));
  IvfRetriever floaty(model, seen, /*nprobe=*/3, ItemShardMode::kOff);
  IvfRetriever quant(model, seen, /*nprobe=*/3, ItemShardMode::kOff,
                     /*quantized=*/true, /*rerank_k=*/512);
  ASSERT_TRUE(quant.quantized());
  EXPECT_EQ(quant.rerank_k(), 512);
  for (int64_t user = 0; user < model->num_users; ++user) {
    ExpectExactlyEqual(quant.RetrieveTopN(user, 10),
                       floaty.RetrieveTopN(user, 10));
  }
}

TEST(IvfQuantizedTest, QuantizedDegradesToFloatWithoutCodes) {
  // quantized = true against a codeless index serves the float path (the
  // effective state is exposed, nothing aborts).
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);  // built without codes
  IvfRetriever quant(model, nullptr, /*nprobe=*/3, ItemShardMode::kOff,
                     /*quantized=*/true);
  EXPECT_FALSE(quant.quantized());
  EXPECT_EQ(quant.rerank_k(), tensor::kIvfDefaultRerankK);
  IvfRetriever floaty(model, nullptr, /*nprobe=*/3, ItemShardMode::kOff);
  ExpectExactlyEqual(quant.RetrieveTopN(0, 10), floaty.RetrieveTopN(0, 10));
  EXPECT_EQ(quant.Stats().scanned_code_bytes, 0u);
}

TEST(IvfQuantizedTest, RecallAndBandwidthGateAtPinnedConfig) {
  // The acceptance bar for the quantized tier, at its pinned config:
  // 8192 items x width 32, nlist 64, nprobe 16, rerank_k 64, k 10. The
  // two-phase scan must keep recall@10 >= 0.95 against the EXACT scan
  // while streaming <= 0.35x the bytes of the float IVF scan on the same
  // queries (int8 codes + scales + the small rerank, vs full float rows).
  core::ServingModel m = ClusteredModel(64, 8192, 32, 64, 83);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 64, /*quantize=*/true).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  ExactRetriever exact(model, nullptr, ItemShardMode::kOff);
  IvfRetriever floaty(model, nullptr, /*nprobe=*/16, ItemShardMode::kOff);
  IvfRetriever quant(model, nullptr, /*nprobe=*/16, ItemShardMode::kOff,
                     /*quantized=*/true, /*rerank_k=*/64);
  ASSERT_TRUE(quant.quantized());

  std::vector<int64_t> users;
  for (int64_t u = 0; u < model->num_users; ++u) users.push_back(u);
  const double recall = eval::RetrievalRecallAtK(exact, quant, users, 10);
  EXPECT_GE(recall, 0.95) << "quantized recall@10 collapsed";

  for (int64_t u : users) floaty.RetrieveTopN(u, 10);
  serve::RetrieverStats qs = quant.Stats();
  serve::RetrieverStats fs = floaty.Stats();
  // Identical probe sets (same ProbeClusters) -> identical coverage; the
  // win is pure bytes-per-scanned-item.
  EXPECT_EQ(qs.scanned_items, fs.scanned_items);
  ASSERT_GT(fs.scanned_bytes, 0u);
  const double ratio = static_cast<double>(qs.scanned_bytes) /
                       static_cast<double>(fs.scanned_bytes);
  EXPECT_LE(ratio, 0.35) << "quantized scan streams too many bytes";
  EXPECT_GT(qs.scanned_code_bytes, 0u);
  EXPECT_LT(qs.scanned_code_bytes, qs.scanned_bytes);
}

TEST(IvfQuantizedTest, QuantizedStatsFormulas) {
  // scanned_bytes decomposes exactly: nlist centroid rows per request
  // (the probe) + (width code bytes + one float scale) per scanned item
  // + a full float row per reranked survivor; scanned_code_bytes is the
  // middle term alone.
  core::ServingModel m = ClusteredModel(16, 512, 8, 8, 87);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 8, /*quantize=*/true).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  const uint64_t width = static_cast<uint64_t>(model->embeddings.cols());
  const int64_t rerank_k = 32;
  IvfRetriever quant(model, nullptr, /*nprobe=*/2, ItemShardMode::kOff,
                     /*quantized=*/true, rerank_k);
  const std::vector<int64_t> users = {0, 1, 2, 3};
  for (int64_t u : users) quant.RetrieveTopN(u, 10);
  serve::RetrieverStats s = quant.Stats();
  EXPECT_EQ(s.requests, users.size());
  EXPECT_EQ(s.probed_clusters, users.size() * 2);
  EXPECT_GT(s.scanned_items, 0u);
  EXPECT_EQ(s.scanned_code_bytes,
            s.scanned_items * (width + sizeof(float)));
  EXPECT_EQ(s.scanned_bytes,
            s.requests * static_cast<uint64_t>(quant.nlist()) * width *
                    sizeof(float) +
                s.scanned_code_bytes +
                s.reranked_items * width * sizeof(float));
  EXPECT_LE(s.reranked_items,
            s.requests * static_cast<uint64_t>(rerank_k));
  EXPECT_GE(s.reranked_items, s.requests * 10u);  // pool never below k
}

TEST(IvfQuantizedTest, DeterministicAcrossBackendsAndShardModes) {
  // Integer dots are exact everywhere, the dequantization is one pinned
  // float expression, the pool is a total-order top set, and the rerank
  // is the lane-partial contract — so EVERY registered backend (the
  // non-bit-exact blas backend included: it inherits the serial scan
  // ops), at every shard mode, must reproduce the reference bitwise.
  core::ServingModel m = ClusteredModel(24, 512, 8, 8, 89);
  ASSERT_TRUE(core::BuildIvfIndex(&m, 8, /*quantize=*/true).ok());
  auto model = std::make_shared<const core::ServingModel>(std::move(m));
  auto seen = std::make_shared<const serve::SeenItems>(
      MakeSeen(model->num_users, model->num_items));
  IvfRetriever reference(model, seen, /*nprobe=*/3, ItemShardMode::kOff,
                         /*quantized=*/true);
  ASSERT_TRUE(reference.quantized());
  std::vector<std::vector<RecEntry>> want;
  std::vector<int64_t> all_users;
  for (int64_t u = 0; u < model->num_users; ++u) {
    want.push_back(reference.RetrieveTopN(u, 10));
    all_users.push_back(u);
  }
  for (const tensor::KernelBackend* backend : tensor::AllBackends()) {
    tensor::ScopedBackend scoped(backend->name());
    for (ItemShardMode mode : {ItemShardMode::kOff, ItemShardMode::kOn}) {
      IvfRetriever quant(model, seen, /*nprobe=*/3, mode,
                         /*quantized=*/true);
      for (int64_t u = 0; u < model->num_users; ++u) {
        ExpectExactlyEqual(quant.RetrieveTopN(u, 10),
                           want[static_cast<size_t>(u)]);
      }
      // Batch fan-out must not change per-user results either.
      std::vector<std::vector<RecEntry>> batch =
          quant.RetrieveBatch(all_users, 10);
      for (size_t u = 0; u < batch.size(); ++u) {
        ExpectExactlyEqual(batch[u], want[u]);
      }
    }
  }
}

// ----------------------------------------------------------- the service ----

TEST(RecServiceIvfTest, RoutesThroughConfiguredStrategy) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  serve::RecService::Options options;
  options.retriever = serve::RetrieverKind::kIvf;
  options.nprobe = 3;
  serve::RecService service(model, nullptr, options);
  EXPECT_STREQ(service.retriever()->name(), "ivf");

  IvfRetriever ivf(model, nullptr, /*nprobe=*/3, ItemShardMode::kAuto);
  ExactRetriever exact(model, nullptr, ItemShardMode::kAuto);
  for (int64_t user = 0; user < 8; ++user) {
    ExpectExactlyEqual(service.Recommend(user, 10),
                       ivf.RetrieveTopN(user, 10));
  }
  // The per-request exact knob bypasses index AND cache.
  for (int64_t user = 0; user < 8; ++user) {
    ExpectExactlyEqual(service.Recommend(user, 10, /*exact=*/true),
                       exact.RetrieveTopN(user, 10));
  }
  serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.exact_fallbacks, 8u);
  EXPECT_EQ(stats.requests, 16u);
  EXPECT_GT(stats.retrieval.probed_clusters, 0u);
  EXPECT_GT(stats.retrieval.scanned_items, 0u);

  // Batched exact fallback too.
  std::vector<int64_t> users = {0, 1, 2, 3};
  std::vector<std::vector<RecEntry>> batch =
      service.RecommendBatch(users, 10, /*exact=*/true);
  for (size_t u = 0; u < users.size(); ++u) {
    ExpectExactlyEqual(batch[u], exact.RetrieveTopN(users[u], 10));
  }
  EXPECT_EQ(service.stats().exact_fallbacks, 12u);
}

TEST(RecServiceIvfTest, ExactServiceIgnoresExactKnob) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  serve::RecService service(model, nullptr);
  EXPECT_STREQ(service.retriever()->name(), "exact");
  std::vector<RecEntry> a = service.Recommend(3, 10);
  std::vector<RecEntry> b = service.Recommend(3, 10, /*exact=*/true);
  ExpectExactlyEqual(b, a);
  serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.exact_fallbacks, 0u);
  EXPECT_EQ(stats.cache_hits, 1u);  // the knob is a no-op: cache still used
}

TEST(RecServiceIvfTest, CacheServesIvfResultsAndSwapInvalidates) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  serve::RecService::Options options;
  options.retriever = serve::RetrieverKind::kIvf;
  options.nprobe = 3;
  serve::RecService service(model, nullptr, options);
  std::vector<RecEntry> first = service.Recommend(5, 10);
  std::vector<RecEntry> second = service.Recommend(5, 10);
  ExpectExactlyEqual(second, first);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  // A model carrying an index hot-swaps in; the cache resets.
  service.SwapModel(model);
  EXPECT_EQ(service.model_version(), 1u);
  std::vector<RecEntry> third = service.Recommend(5, 10);
  ExpectExactlyEqual(third, first);
  EXPECT_EQ(service.stats().cache_hits, 1u);  // miss after invalidation
}

TEST(RecServiceIvfTest, LoadAndSwapBuildsIndexForV1Artifacts) {
  core::ServingModel base = ClusteredModel(24, 1024, 8, 8, 71);
  std::string path = testing::TempDir() + "/gnmr_v1_for_ivf.bin";
  ASSERT_TRUE(core::SaveServingModel(base, path).ok());  // v1: no index

  core::ServingModel with_index = base;
  ASSERT_TRUE(core::BuildIvfIndex(&with_index, 8).ok());
  serve::RecService::Options options;
  options.retriever = serve::RetrieverKind::kIvf;
  options.nlist = 8;
  options.nprobe = 2;
  serve::RecService service(
      std::make_shared<const core::ServingModel>(std::move(with_index)),
      nullptr, options);
  std::vector<RecEntry> before = service.Recommend(3, 10);
  // The v1 artifact lacks an index; LoadAndSwap must build one (same
  // nlist, same deterministic k-means) rather than reject the file.
  util::Status s = service.LoadAndSwap(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(service.model_version(), 1u);
  std::vector<RecEntry> after = service.Recommend(3, 10);
  // Same embeddings, same deterministic clustering -> same lists.
  ExpectExactlyEqual(after, before);
  std::remove(path.c_str());
}

TEST(RetrievalRecallTest, ExactAgainstItselfIsPerfect) {
  int64_t tied_lo = 0, tied_hi = 0;
  auto model = TiedIvfModel(&tied_lo, &tied_hi);
  ExactRetriever a(model), b(model);
  std::vector<int64_t> users = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(eval::RetrievalRecallAtK(a, b, users, 10), 1.0);
  EXPECT_DOUBLE_EQ(eval::RetrievalRecallAtK(a, b, {}, 10), 1.0);
}

}  // namespace
}  // namespace gnmr
