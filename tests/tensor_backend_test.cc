// Parity tests of the pluggable kernel backends (backend.h): every
// bit-exact registered backend must match the SerialBackend reference
// bit-for-bit on every kernel (MatMul/SpMM/Gather/Scatter/RowDot/map/zip
// and the fixed-chunk ReduceSum). There is no sanctioned slack: the whole
// build compiles with -ffp-contract=off, so neither the blocked register
// panels nor the simd vector tiles may fuse multiply-adds the serial
// reference keeps separate — even under -march=native.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/tensor/ad_ops.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/backend.h"
#include "src/tensor/backend_simd.h"
#include "src/tensor/element_ops.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/quantize.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/cpu_features.h"
#include "src/util/rng.h"

namespace gnmr {
namespace tensor {
namespace {

// Backends under test, always compared against the serial reference.
// ("sharded" runs here with the pool's default worker count; shard_test
// additionally sweeps explicit 1/2/7-worker pools. "simd" resolves to the
// AVX2/FMA vector kernels where the host supports them and to the serial
// fallback elsewhere — parity must hold either way.)
const char* const kVariants[] = {"omp", "blocked", "sharded", "simd"};

void ExpectBitIdentical(const Tensor& ref, const Tensor& got,
                        const std::string& context) {
  ASSERT_EQ(ref.shape(), got.shape()) << context;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    ASSERT_EQ(ref.data()[i], got.data()[i])
        << context << " at flat index " << i;
  }
}

// Random CSR with the requested shape; row `r` gets ~density*cols entries,
// and every third row is forced empty so ragged layouts are exercised.
CsrMatrix RandomCsr(int64_t rows, int64_t cols, double density,
                    util::Rng* rng, bool with_empty_rows = true) {
  std::vector<Coo> entries;
  for (int64_t r = 0; r < rows; ++r) {
    if (with_empty_rows && r % 3 == 2) continue;
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) {
        entries.push_back({r, c, rng->Normal()});
      }
    }
  }
  return CsrMatrix::FromCoo(rows, cols, entries);
}

// ------------------------------------------------------------------ registry --

TEST(BackendRegistryTest, AllBackendsRegistered) {
  // 5 always; a 6th ("blas") only in GNMR_BLAS builds.
  EXPECT_GE(AllBackends().size(), 5u);
  for (const char* name : {"serial", "omp", "blocked", "sharded", "simd"}) {
    const KernelBackend* b = FindBackend(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_STREQ(b->name(), name);
    EXPECT_TRUE(b->bit_exact()) << name;
  }
  // "blas" is the only backend allowed to break the bit-exact contract.
  for (const KernelBackend* b : AllBackends()) {
    EXPECT_EQ(b->bit_exact(), std::string(b->name()) != "blas")
        << b->name();
  }
  EXPECT_EQ(FindBackend("cuda"), nullptr);
}

TEST(BackendRegistryTest, ScopedBackendSwitchesAndRestores) {
  const char* before = GetBackend().name();
  {
    ScopedBackend scoped("blocked");
    EXPECT_STREQ(GetBackend().name(), "blocked");
  }
  EXPECT_STREQ(GetBackend().name(), before);
}

TEST(BackendRegistryTest, SetBackendSelectsByName) {
  const char* before = GetBackend().name();
  SetBackend("serial");
  EXPECT_STREQ(GetBackend().name(), "serial");
  SetBackend(before);
}

TEST(BackendRegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(SetBackend("no-such-backend"), "unknown backend");
}

// -------------------------------------------------------------------- MatMul --

TEST(BackendParityTest, MatMulAllShapes) {
  // Includes 1-row/1-col panels and sizes that are not multiples of any
  // tile shape — the blocked k-unroll (4) and the simd register tiles
  // (6 rows x 16/32 columns) — so every edge micro-kernel runs: partial
  // row tiles, scalar column tails, and tiles narrower than one vector.
  const struct { int64_t n, k, m; } shapes[] = {
      {1, 1, 1},    {1, 7, 1},     {5, 1, 3},    {3, 5, 7},
      {4, 16, 16},  {33, 17, 29},  {64, 64, 64}, {70, 31, 90},
      {6, 33, 16},  {13, 64, 37},  {65, 128, 96}, {2, 9, 130},
      {12, 8, 32},  {7, 40, 48},   {18, 21, 15},
  };
  const KernelBackend* serial = FindBackend("serial");
  util::Rng rng(11);
  for (const auto& s : shapes) {
    Tensor a = Tensor::RandomNormal({s.n, s.k}, &rng);
    Tensor b = Tensor::RandomNormal({s.k, s.m}, &rng);
    Tensor ref({s.n, s.m});
    serial->MatMul(a.data(), b.data(), ref.data(), s.n, s.k, s.m);
    for (const char* name : kVariants) {
      Tensor got({s.n, s.m});
      FindBackend(name)->MatMul(a.data(), b.data(), got.data(), s.n, s.k,
                                s.m);
      ExpectBitIdentical(ref, got, std::string(name) + " matmul " +
                                       a.ShapeString() + "x" +
                                       b.ShapeString());
    }
  }
}

// Serial's MatMul skips a-elements that are exactly zero, which is
// observable when B holds non-finite values (0 * inf would otherwise
// poison a row with NaN). The simd backend must preserve the skip — its
// zero-scan routes affected row tiles through guarded tile kernels — and
// so must every other backend.
TEST(BackendParityTest, MatMulZeroSkipPreservesNonFinitePolicy) {
  const int64_t n = 13, k = 9, m = 40;  // partial tiles in both directions
  const int64_t kz = 4;                 // the k index whose B row holds inf
  util::Rng rng(22);
  Tensor a = Tensor::RandomNormal({n, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, m}, &rng);
  // Even rows of A skip column kz entirely; odd rows hit it with +1, so
  // their outputs become +inf (never NaN — a NaN would break ASSERT_EQ
  // even between identical tensors).
  for (int64_t i = 0; i < n; ++i) a.at(i, kz) = (i % 2 == 0) ? 0.0f : 1.0f;
  for (int64_t j = 0; j < m; j += 3) {
    b.at(kz, j) = std::numeric_limits<float>::infinity();
  }
  Tensor ref({n, m});
  FindBackend("serial")->MatMul(a.data(), b.data(), ref.data(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(std::isinf(ref.at(i, 0)), i % 2 != 0) << "test setup broken";
  }
  for (const char* name : kVariants) {
    Tensor got({n, m});
    FindBackend(name)->MatMul(a.data(), b.data(), got.data(), n, k, m);
    ExpectBitIdentical(ref, got, std::string(name) + " zero-skip matmul");
  }
}

TEST(BackendParityTest, MatMulAgainstNaiveTripleLoop) {
  util::Rng rng(12);
  int64_t n = 9, k = 13, m = 21;
  Tensor a = Tensor::RandomNormal({n, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, m}, &rng);
  for (const KernelBackend* backend : AllBackends()) {
    Tensor got({n, m});
    backend->MatMul(a.data(), b.data(), got.data(), n, k, m);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        double want = 0.0;
        for (int64_t p = 0; p < k; ++p) {
          want += static_cast<double>(a.at(i, p)) * b.at(p, j);
        }
        EXPECT_NEAR(got.at(i, j), want, 1e-4)
            << backend->name() << " at (" << i << "," << j << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------- SpMM --

TEST(BackendParityTest, SpmmRaggedAndEmptyCsr) {
  util::Rng rng(13);
  // d values straddle the simd column panel (32) and vector width (8):
  // full panels, lone 8-wide chunks, and scalar tails all run.
  const struct { int64_t rows, cols, d; double density; } cases[] = {
      {1, 1, 1, 1.0},    {1, 40, 8, 0.3},      {60, 40, 1, 0.1},
      {60, 40, 9, 0.15}, {200, 100, 17, 0.05}, {40, 30, 32, 0.2},
      {30, 25, 33, 0.2}, {25, 50, 70, 0.15},
  };
  for (const auto& c : cases) {
    CsrMatrix m = RandomCsr(c.rows, c.cols, c.density, &rng);
    Tensor x = Tensor::RandomNormal({c.cols, c.d}, &rng);
    Tensor ref({c.rows, c.d});
    FindBackend("serial")->Spmm(m, x.data(), ref.data(), c.d);
    for (const char* name : kVariants) {
      Tensor got({c.rows, c.d});
      FindBackend(name)->Spmm(m, x.data(), got.data(), c.d);
      ExpectBitIdentical(ref, got, std::string(name) + " spmm nnz=" +
                                       std::to_string(m.nnz()));
    }
  }
  // Fully empty matrix: all outputs stay zero in every backend.
  CsrMatrix empty = CsrMatrix::FromCoo(5, 4, {});
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  for (const KernelBackend* backend : AllBackends()) {
    Tensor got({5, 3});
    backend->Spmm(empty, x.data(), got.data(), 3);
    EXPECT_EQ(got.SumValue(), 0.0f) << backend->name();
  }
}

TEST(BackendParityTest, SpmmSkewedRowsCrossBinBoundaries) {
  // One pathological heavy row plus many light ones: exercises the blocked
  // backend's nnz-binned schedule with bins that split mid-matrix.
  util::Rng rng(14);
  std::vector<Coo> entries;
  int64_t rows = 900, cols = 500, d = 16;
  for (int64_t c = 0; c < cols; ++c) entries.push_back({0, c, rng.Normal()});
  for (int64_t r = 1; r < rows; ++r) {
    for (int64_t k = 0; k < 6; ++k) {
      entries.push_back({r, rng.UniformInt(0, cols - 1), rng.Normal()});
    }
  }
  CsrMatrix m = CsrMatrix::FromCoo(rows, cols, entries);
  ASSERT_GT(m.nnz() * d, kParallelSpmmMinWork) << "case too small to fan out";
  Tensor x = Tensor::RandomNormal({cols, d}, &rng);
  Tensor ref({rows, d});
  FindBackend("serial")->Spmm(m, x.data(), ref.data(), d);
  for (const char* name : kVariants) {
    Tensor got({rows, d});
    FindBackend(name)->Spmm(m, x.data(), got.data(), d);
    ExpectBitIdentical(ref, got, std::string(name) + " skewed spmm");
  }
}

// ----------------------------------------------------------- gather/scatter --

TEST(BackendParityTest, GatherRowsIncludingRepeats) {
  util::Rng rng(15);
  Tensor table = Tensor::RandomNormal({40, 24}, &rng);
  std::vector<int64_t> idx = {0, 39, 7, 7, 7, 12, 0, 39};
  for (int64_t i = 0; i < 400; ++i) idx.push_back(rng.UniformInt(0, 39));
  Tensor ref({static_cast<int64_t>(idx.size()), 24});
  FindBackend("serial")->GatherRows(table.data(), 24, idx.data(),
                                    static_cast<int64_t>(idx.size()),
                                    ref.data());
  for (const char* name : kVariants) {
    Tensor got({static_cast<int64_t>(idx.size()), 24});
    FindBackend(name)->GatherRows(table.data(), 24, idx.data(),
                                  static_cast<int64_t>(idx.size()),
                                  got.data());
    ExpectBitIdentical(ref, got, std::string(name) + " gather");
  }
}

TEST(BackendParityTest, ScatterAddRowsDuplicateDestinations) {
  // Heavy duplication: accumulation order per target row must stay
  // ascending-source-row in every backend, so sums are bit-identical.
  util::Rng rng(16);
  int64_t rows = 50, m = 33;
  std::vector<int64_t> idx;
  for (int64_t r = 0; r < 2000; ++r) {
    // Zipf-ish: low target rows collide massively.
    idx.push_back(rng.UniformInt(0, rng.UniformInt(0, rows - 1)));
  }
  Tensor src = Tensor::RandomNormal({static_cast<int64_t>(idx.size()), m},
                                    &rng);
  Tensor ref({rows, m});
  FindBackend("serial")->ScatterAddRows(ref.data(), rows, m, idx.data(),
                                        static_cast<int64_t>(idx.size()),
                                        src.data());
  for (const char* name : kVariants) {
    Tensor got({rows, m});
    FindBackend(name)->ScatterAddRows(got.data(), rows, m, idx.data(),
                                      static_cast<int64_t>(idx.size()),
                                      src.data());
    ExpectBitIdentical(ref, got, std::string(name) + " scatter-add");
  }
}

// ------------------------------------------------------- rowdot / map / zip --

TEST(BackendParityTest, RowDotAndEltwiseKernels) {
  util::Rng rng(17);
  for (int64_t n : {int64_t{1}, int64_t{7}, int64_t{500}}) {
    Tensor a = Tensor::RandomNormal({n, 65}, &rng);
    Tensor b = Tensor::RandomNormal({n, 65}, &rng);
    Tensor dot_ref({n, 1}), map_ref(a.shape()), zip_ref(a.shape());
    KernelBackend::MapFn relu = [](const float* in, float* out, int64_t len,
                                   float) {
      for (int64_t i = 0; i < len; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    };
    KernelBackend::ZipFn mul = [](const float* x, const float* y, float* out,
                                  int64_t len, float) {
      for (int64_t i = 0; i < len; ++i) out[i] = x[i] * y[i];
    };
    const KernelBackend* serial = FindBackend("serial");
    serial->RowDot(a.data(), b.data(), dot_ref.data(), n, 65);
    serial->EltwiseMap(a.data(), map_ref.data(), a.numel(), relu, 0.0f);
    serial->EltwiseZip(a.data(), b.data(), zip_ref.data(), a.numel(), mul,
                       0.0f);
    for (const char* name : kVariants) {
      const KernelBackend* backend = FindBackend(name);
      Tensor dot({n, 1}), map(a.shape()), zip(a.shape());
      backend->RowDot(a.data(), b.data(), dot.data(), n, 65);
      backend->EltwiseMap(a.data(), map.data(), a.numel(), relu, 0.0f);
      backend->EltwiseZip(a.data(), b.data(), zip.data(), a.numel(), mul,
                          0.0f);
      ExpectBitIdentical(dot_ref, dot, std::string(name) + " rowdot");
      ExpectBitIdentical(map_ref, map, std::string(name) + " map");
      ExpectBitIdentical(zip_ref, zip, std::string(name) + " zip");
    }
  }
}

TEST(BackendParityTest, ReduceSumBitIdenticalAcrossBackends) {
  util::Rng rng(18);
  // Spans multiple kReduceSumChunk chunks plus a ragged tail; the chunked
  // association is part of the contract, so doubles compare with ==.
  for (int64_t n : {int64_t{1}, kReduceSumChunk - 1, kReduceSumChunk + 1,
                    3 * kReduceSumChunk + 123}) {
    Tensor a = Tensor::RandomNormal({n}, &rng);
    double ref = FindBackend("serial")->ReduceSum(a.data(), n);
    for (const char* name : kVariants) {
      EXPECT_EQ(ref, FindBackend(name)->ReduceSum(a.data(), n))
          << name << " n=" << n;
    }
  }
}

TEST(BackendParityTest, RowDotRaggedWidths) {
  // Widths around the kReduceLanes=8 lane group: below one group, exact
  // multiples, and ragged tails of every phase.
  util::Rng rng(23);
  for (int64_t m : {int64_t{1}, int64_t{3}, int64_t{8}, int64_t{9},
                    int64_t{15}, int64_t{16}, int64_t{64}, int64_t{77}}) {
    int64_t n = 13;
    Tensor a = Tensor::RandomNormal({n, m}, &rng);
    Tensor b = Tensor::RandomNormal({n, m}, &rng);
    Tensor ref({n, 1});
    FindBackend("serial")->RowDot(a.data(), b.data(), ref.data(), n, m);
    for (const char* name : kVariants) {
      Tensor got({n, 1});
      FindBackend(name)->RowDot(a.data(), b.data(), got.data(), n, m);
      ExpectBitIdentical(ref, got,
                         std::string(name) + " rowdot m=" + std::to_string(m));
    }
  }
}

// ------------------------------------------------------ serving scan ops --

// QueryDot / QueryDotIndexed are the serving-scan entry points (one query
// row against many item rows); their contract is the same lane-partial
// accumulation as RowDot, so every bit-exact backend — plus the explicit
// serial fallback instance — must match serial bit-for-bit, including at
// widths below one kReduceLanes group and with ragged tails.
TEST(BackendParityTest, QueryDotAllBackendsBitIdentical) {
  util::Rng rng(30);
  const KernelBackend* serial = FindBackend("serial");
  for (int64_t m : {int64_t{1}, int64_t{7}, int64_t{8}, int64_t{32},
                    int64_t{65}}) {
    const int64_t n = 301;  // not a multiple of any scan block
    Tensor q = Tensor::RandomNormal({m}, &rng);
    Tensor rows = Tensor::RandomNormal({n, m}, &rng);
    std::vector<float> ref(n), got(n);
    serial->QueryDot(q.data(), rows.data(), ref.data(), n, m);
    // The plain-loop reference: lane-partial per row.
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[i], static_cast<float>(
                            LanePartialDot(q.data(), rows.data() + i * m, m)))
          << "serial QueryDot breaks the LanePartialDot contract at row "
          << i << " m=" << m;
    }
    for (const char* name : kVariants) {
      FindBackend(name)->QueryDot(q.data(), rows.data(), got.data(), n, m);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(ref[i], got[i]) << name << " querydot m=" << m << " row "
                                  << i;
      }
    }
    SimdFallbackForTest()->QueryDot(q.data(), rows.data(), got.data(), n, m);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[i], got[i]) << "simd-fallback querydot m=" << m;
    }
  }
}

TEST(BackendParityTest, QueryDotIndexedGatherParity) {
  util::Rng rng(31);
  const int64_t rows = 200, m = 33;
  Tensor q = Tensor::RandomNormal({m}, &rng);
  Tensor base = Tensor::RandomNormal({rows, m}, &rng);
  // Repeats and out-of-order indices, like real posting lists.
  std::vector<int64_t> idx = {0, 199, 7, 7, 63, 5, 199, 0};
  for (int64_t i = 0; i < 300; ++i) idx.push_back(rng.UniformInt(0, rows - 1));
  const int64_t n = static_cast<int64_t>(idx.size());
  std::vector<float> ref(idx.size()), got(idx.size());
  FindBackend("serial")->QueryDotIndexed(q.data(), base.data(), idx.data(),
                                         ref.data(), n, m);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(ref[static_cast<size_t>(i)],
              static_cast<float>(
                  LanePartialDot(q.data(), base.data() + idx[i] * m, m)))
        << "indexed scan must score exactly like a direct row dot";
  }
  for (const char* name : kVariants) {
    FindBackend(name)->QueryDotIndexed(q.data(), base.data(), idx.data(),
                                       got.data(), n, m);
    for (size_t i = 0; i < idx.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << name << " querydot-indexed row " << i;
    }
  }
}

// --------------------------------------------------------------- quantizer --

TEST(QuantizeTest, RoundTripDeterministicAndBounded) {
  util::Rng rng(32);
  const int64_t n = 64, m = 37;
  Tensor rows = Tensor::RandomNormal({n, m}, &rng);
  std::vector<int8_t> codes(n * m), codes2(n * m);
  std::vector<float> scales(n), scales2(n);
  quant::QuantizeRowsI8(rows.data(), n, m, codes.data(), scales.data());
  quant::QuantizeRowsI8(rows.data(), n, m, codes2.data(), scales2.data());
  ASSERT_EQ(codes, codes2) << "quantization must be deterministic";
  ASSERT_EQ(scales, scales2);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_GT(scales[static_cast<size_t>(i)], 0.0f);
    float maxabs = 0.0f;
    for (int64_t j = 0; j < m; ++j) {
      const int8_t c = codes[static_cast<size_t>(i * m + j)];
      // The +-127 clamp is the precondition of the AVX2 maddubs kernel.
      ASSERT_GE(c, -kI8QuantMaxCode);
      ASSERT_LE(c, kI8QuantMaxCode);
      // Round trip within half a quantization step.
      EXPECT_NEAR(static_cast<float>(c) * scales[static_cast<size_t>(i)],
                  rows.at(i, j), 0.51f * scales[static_cast<size_t>(i)]);
      maxabs = std::max(maxabs, std::fabs(rows.at(i, j)));
    }
    EXPECT_EQ(scales[static_cast<size_t>(i)],
              maxabs / static_cast<float>(kI8QuantMaxCode));
  }
  // Zero row: scale 0, all-zero codes (the documented degenerate case).
  std::vector<float> zero_row(m, 0.0f);
  std::vector<int8_t> zero_codes(m, 42);
  EXPECT_EQ(quant::QuantizeRowI8(zero_row.data(), m, zero_codes.data()), 0.0f);
  for (int8_t c : zero_codes) EXPECT_EQ(c, 0);
}

TEST(BackendParityTest, I8QueryDotAllBackendsExact) {
  util::Rng rng(33);
  // Widths across the AVX2 32-lane kernel: sub-vector, exact multiples,
  // and ragged tails; plus an extreme row to prove saturation-safety at
  // the +-127 code bound.
  for (int64_t m : {int64_t{1}, int64_t{31}, int64_t{32}, int64_t{33},
                    int64_t{64}, int64_t{100}}) {
    const int64_t n = 129;
    std::vector<int8_t> q(static_cast<size_t>(m));
    std::vector<int8_t> codes(static_cast<size_t>(n * m));
    for (auto& v : q) {
      v = static_cast<int8_t>(rng.UniformInt(-kI8QuantMaxCode,
                                             kI8QuantMaxCode));
    }
    for (auto& v : codes) {
      v = static_cast<int8_t>(rng.UniformInt(-kI8QuantMaxCode,
                                             kI8QuantMaxCode));
    }
    // Row 0: worst case +-127 everywhere (alternating signs).
    for (int64_t j = 0; j < m; ++j) {
      q[static_cast<size_t>(j)] =
          static_cast<int8_t>((j % 2 == 0) ? kI8QuantMaxCode
                                           : -kI8QuantMaxCode);
      codes[static_cast<size_t>(j)] = static_cast<int8_t>(kI8QuantMaxCode);
    }
    std::vector<int32_t> ref(static_cast<size_t>(n));
    std::vector<int32_t> got(static_cast<size_t>(n));
    FindBackend("serial")->I8QueryDot(q.data(), codes.data(), ref.data(), n,
                                      m);
    // Serial must equal the quant::I8Dot reference exactly.
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[static_cast<size_t>(i)],
                quant::I8Dot(q.data(), codes.data() + i * m, m));
    }
    for (const char* name : kVariants) {
      FindBackend(name)->I8QueryDot(q.data(), codes.data(), got.data(), n, m);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(ref[static_cast<size_t>(i)], got[static_cast<size_t>(i)])
            << name << " i8 querydot m=" << m << " row " << i;
      }
    }
    SimdFallbackForTest()->I8QueryDot(q.data(), codes.data(), got.data(), n,
                                      m);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[static_cast<size_t>(i)], got[static_cast<size_t>(i)])
          << "simd-fallback i8 querydot m=" << m;
    }
  }
}

// ------------------------------------------------------------- simd-specific --

// The eltwise bodies the ops layer actually dispatches (the portable
// MapLoop/ZipLoop instantiations over element_ops.h bodies) are the
// pointers the simd backend translates to its AVX2 twins — unlike the
// local lambdas above, which it runs as-given. Cover both translated maps
// and translated zips, at sizes above and below the parallel fan-out
// threshold and with ragged (non-multiple-of-8) lengths.
TEST(BackendParityTest, SimdTranslatesKnownEltwiseBodies) {
  util::Rng rng(24);
  const KernelBackend* serial = FindBackend("serial");
  const KernelBackend* simd = FindBackend("simd");
  for (int64_t n : {int64_t{5}, int64_t{1000}, kParallelEltwiseMinWork + 7}) {
    Tensor a = Tensor::RandomNormal({n}, &rng);
    Tensor b = Tensor::RandomNormal({n}, &rng);
    // Sqrt gets a non-negative input (NaN == NaN is false, so a negative
    // input would fail the comparison even on identical outputs).
    Tensor a_sq(a.shape());
    for (int64_t i = 0; i < n; ++i) a_sq.data()[i] = a.data()[i] * a.data()[i];
    const struct {
      KernelBackend::MapFn f;
      float p;
      const char* tag;
      const Tensor* in;
    } maps[] = {
        {&MapLoop<&elops::ReluEl>, 0.0f, "relu", &a},
        {&MapLoop<&elops::LeakyReluEl>, 0.1f, "leaky-relu", &a},
        {&MapLoop<&elops::AddScalarEl>, 1.75f, "add-scalar", &a},
        {&MapLoop<&elops::SqrtEl>, 0.0f, "sqrt", &a_sq},
    };
    for (const auto& mc : maps) {
      Tensor ref(a.shape()), got(a.shape());
      serial->EltwiseMap(mc.in->data(), ref.data(), n, mc.f, mc.p);
      simd->EltwiseMap(mc.in->data(), got.data(), n, mc.f, mc.p);
      ExpectBitIdentical(ref, got, std::string("simd map ") + mc.tag +
                                       " n=" + std::to_string(n));
    }
    const struct { KernelBackend::ZipFn f; float p; const char* tag; }
        zips[] = {
            {&ZipLoop<&elops::MulEl>, 0.0f, "mul"},
            {&ZipLoop<&elops::SigmoidBwdEl>, 0.0f, "sigmoid-bwd"},
            {&ZipLoop<&elops::TanhBwdEl>, 0.0f, "tanh-bwd"},
            {&ZipLoop<&elops::SqrtBwdEl>, 0.0f, "sqrt-bwd"},
        };
    for (const auto& zc : zips) {
      Tensor ref(a.shape()), got(a.shape());
      serial->EltwiseZip(a.data(), b.data(), ref.data(), n, zc.f, zc.p);
      simd->EltwiseZip(a.data(), b.data(), got.data(), n, zc.f, zc.p);
      ExpectBitIdentical(ref, got, std::string("simd zip ") + zc.tag +
                                       " n=" + std::to_string(n));
    }
  }
}

// On AVX-512 hosts MatMul dispatches 32-column zmm tiles; forcing them
// off covers the AVX2 16-column path in the same run (on non-AVX-512
// hosts this is a no-op and the test re-covers the AVX2 path).
TEST(BackendParityTest, SimdMatMulAvx2TilePathForced) {
  simd::SetSimdAvx512TilesEnabledForTest(false);
  const struct { int64_t n, k, m; } shapes[] = {
      {12, 30, 64}, {13, 16, 37}, {6, 8, 16},
  };
  util::Rng rng(25);
  for (const auto& s : shapes) {
    Tensor a = Tensor::RandomNormal({s.n, s.k}, &rng);
    Tensor b = Tensor::RandomNormal({s.k, s.m}, &rng);
    Tensor ref({s.n, s.m}), got({s.n, s.m});
    FindBackend("serial")->MatMul(a.data(), b.data(), ref.data(), s.n, s.k,
                                  s.m);
    FindBackend("simd")->MatMul(a.data(), b.data(), got.data(), s.n, s.k,
                                s.m);
    ExpectBitIdentical(ref, got, "simd avx2-tile matmul " + a.ShapeString() +
                                     "x" + b.ShapeString());
  }
  simd::SetSimdAvx512TilesEnabledForTest(true);
}

// The serial fallback the "simd" name resolves to on hosts without
// AVX2+FMA: exercised explicitly so the fallback path is tested on every
// host, not just legacy ones. It must behave exactly like serial (it runs
// the serial kernels) while reporting the simd name.
TEST(BackendParityTest, SimdFallbackMatchesSerial) {
  const KernelBackend* fallback = SimdFallbackForTest();
  ASSERT_NE(fallback, nullptr);
  EXPECT_STREQ(fallback->name(), "simd");
  EXPECT_TRUE(fallback->bit_exact());
  util::Rng rng(26);
  int64_t n = 11, k = 19, m = 23;
  Tensor a = Tensor::RandomNormal({n, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, m}, &rng);
  Tensor ref({n, m}), got({n, m});
  FindBackend("serial")->MatMul(a.data(), b.data(), ref.data(), n, k, m);
  fallback->MatMul(a.data(), b.data(), got.data(), n, k, m);
  ExpectBitIdentical(ref, got, "simd-fallback matmul");
  Tensor r2 = Tensor::RandomNormal({n, m}, &rng);
  EXPECT_EQ(FindBackend("serial")->ReduceSum(r2.data(), r2.numel()),
            fallback->ReduceSum(r2.data(), r2.numel()));
  // On hosts with AVX2+FMA the registered "simd" backend is the native
  // one, not this fallback instance.
  const util::CpuFeatures& cpu = util::HostCpuFeatures();
  if (cpu.avx2 && cpu.fma) {
    EXPECT_NE(FindBackend("simd"), fallback);
  } else {
    EXPECT_EQ(FindBackend("simd"), fallback);
  }
}

// --------------------------------------------------------- ops-level dispatch --

TEST(BackendDispatchTest, OpsRouteThroughSelectedBackend) {
  util::Rng rng(19);
  Tensor a = Tensor::RandomNormal({30, 20}, &rng);
  Tensor b = Tensor::RandomNormal({20, 10}, &rng);
  Tensor ref, blocked;
  {
    ScopedBackend scoped("serial");
    ref = ops::MatMul(a, b);
  }
  {
    ScopedBackend scoped("blocked");
    blocked = ops::MatMul(a, b);
  }
  ExpectBitIdentical(ref, blocked, "ops::MatMul dispatch");
}

// The GatherRows gradient is a ScatterAddRows with duplicate destinations;
// gradcheck it with the OpenMP backend active so the parallel (row-
// partitioned) scatter path backs a real autodiff computation.
TEST(BackendDispatchTest, GatherScatterGradCheckUnderOmpBackend) {
  ScopedBackend scoped("omp");
  util::Rng rng(20);
  ad::Var table =
      ad::Var::Param(Tensor::RandomNormal({6, 5}, &rng));
  std::vector<int64_t> idx = {0, 3, 3, 5, 0, 0, 2};
  util::Rng wrng(21);
  Tensor w = Tensor::RandomNormal({static_cast<int64_t>(idx.size()), 5},
                                  &wrng);
  auto report = ad::GradCheck(
      [&] {
        return ad::SumAll(
            ad::Mul(ad::GatherRows(table, idx), ad::Var::Constant(w)));
      },
      {table});
  EXPECT_TRUE(report.Accept(2e-2, 2e-3))
      << "rel=" << report.max_rel_err << " abs=" << report.max_abs_err
      << " at " << report.worst;
}

// End-to-end autodiff under the simd backend: a MatMul + activation chain
// whose backward pass routes through the vector MatMul, the translated
// activation zips, and ReduceSum. Gradcheck's finite differences run
// through the same backend, so this validates the whole vectorized path.
TEST(BackendDispatchTest, MatMulActivationGradCheckUnderSimdBackend) {
  ScopedBackend scoped("simd");
  util::Rng rng(27);
  ad::Var w1 =
      ad::Var::Param(Tensor::RandomNormal({9, 7}, &rng, 0.0f, 0.3f));
  ad::Var w2 =
      ad::Var::Param(Tensor::RandomNormal({7, 5}, &rng, 0.0f, 0.3f));
  Tensor x = Tensor::RandomNormal({11, 9}, &rng);
  auto report = ad::GradCheck(
      [&] {
        ad::Var h = ad::Tanh(ad::MatMul(ad::Var::Constant(x), w1));
        return ad::SumAll(ad::Sigmoid(ad::MatMul(h, w2)));
      },
      {w1, w2});
  EXPECT_TRUE(report.Accept(2e-2, 2e-3))
      << "rel=" << report.max_rel_err << " abs=" << report.max_abs_err
      << " at " << report.worst;
}

}  // namespace
}  // namespace tensor
}  // namespace gnmr
