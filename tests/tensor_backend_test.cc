// Parity tests of the pluggable kernel backends (backend.h): every
// registered backend must match the SerialBackend reference bit-for-bit on
// order-preserving kernels (MatMul/SpMM/Gather/Scatter/RowDot/map/zip and
// the fixed-chunk ReduceSum). The one sanctioned slack is EXPECT_FLOAT_EQ
// (4 ulps) on BlockedBackend MatMul, whose register micro-panels keep the
// serial accumulation order but may legally contract multiply-adds into
// FMAs under -march=native builds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/tensor/ad_ops.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/backend.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/kernel_tunables.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace gnmr {
namespace tensor {
namespace {

// Backends under test, always compared against the serial reference.
// ("sharded" runs here with the pool's default worker count; shard_test
// additionally sweeps explicit 1/2/7-worker pools.)
const char* const kVariants[] = {"omp", "blocked", "sharded"};

void ExpectBitIdentical(const Tensor& ref, const Tensor& got,
                        const std::string& context) {
  ASSERT_EQ(ref.shape(), got.shape()) << context;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    ASSERT_EQ(ref.data()[i], got.data()[i])
        << context << " at flat index " << i;
  }
}

void ExpectFloatEq(const Tensor& ref, const Tensor& got,
                   const std::string& context) {
  ASSERT_EQ(ref.shape(), got.shape()) << context;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    ASSERT_FLOAT_EQ(ref.data()[i], got.data()[i])
        << context << " at flat index " << i;
  }
}

// Random CSR with the requested shape; row `r` gets ~density*cols entries,
// and every third row is forced empty so ragged layouts are exercised.
CsrMatrix RandomCsr(int64_t rows, int64_t cols, double density,
                    util::Rng* rng, bool with_empty_rows = true) {
  std::vector<Coo> entries;
  for (int64_t r = 0; r < rows; ++r) {
    if (with_empty_rows && r % 3 == 2) continue;
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) {
        entries.push_back({r, c, rng->Normal()});
      }
    }
  }
  return CsrMatrix::FromCoo(rows, cols, entries);
}

// ------------------------------------------------------------------ registry --

TEST(BackendRegistryTest, AllFourBackendsRegistered) {
  EXPECT_EQ(AllBackends().size(), 4u);
  for (const char* name : {"serial", "omp", "blocked", "sharded"}) {
    const KernelBackend* b = FindBackend(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_STREQ(b->name(), name);
  }
  EXPECT_EQ(FindBackend("cuda"), nullptr);
}

TEST(BackendRegistryTest, ScopedBackendSwitchesAndRestores) {
  const char* before = GetBackend().name();
  {
    ScopedBackend scoped("blocked");
    EXPECT_STREQ(GetBackend().name(), "blocked");
  }
  EXPECT_STREQ(GetBackend().name(), before);
}

TEST(BackendRegistryTest, SetBackendSelectsByName) {
  const char* before = GetBackend().name();
  SetBackend("serial");
  EXPECT_STREQ(GetBackend().name(), "serial");
  SetBackend(before);
}

TEST(BackendRegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(SetBackend("no-such-backend"), "unknown backend");
}

// -------------------------------------------------------------------- MatMul --

TEST(BackendParityTest, MatMulAllShapes) {
  // Includes 1-row/1-col panels and sizes that are not multiples of the
  // blocked tile shape, so edge micro-kernels run.
  const struct { int64_t n, k, m; } shapes[] = {
      {1, 1, 1},   {1, 7, 1},   {5, 1, 3},    {3, 5, 7},
      {4, 16, 16}, {33, 17, 29}, {64, 64, 64}, {70, 31, 90},
  };
  const KernelBackend* serial = FindBackend("serial");
  util::Rng rng(11);
  for (const auto& s : shapes) {
    Tensor a = Tensor::RandomNormal({s.n, s.k}, &rng);
    Tensor b = Tensor::RandomNormal({s.k, s.m}, &rng);
    Tensor ref({s.n, s.m});
    serial->MatMul(a.data(), b.data(), ref.data(), s.n, s.k, s.m);
    for (const char* name : kVariants) {
      Tensor got({s.n, s.m});
      FindBackend(name)->MatMul(a.data(), b.data(), got.data(), s.n, s.k,
                                s.m);
      std::string context = std::string(name) + " matmul " +
                            a.ShapeString() + "x" + b.ShapeString();
      if (std::string(name) == "blocked") {
        ExpectFloatEq(ref, got, context);
      } else {
        ExpectBitIdentical(ref, got, context);
      }
    }
  }
}

TEST(BackendParityTest, MatMulAgainstNaiveTripleLoop) {
  util::Rng rng(12);
  int64_t n = 9, k = 13, m = 21;
  Tensor a = Tensor::RandomNormal({n, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, m}, &rng);
  for (const KernelBackend* backend : AllBackends()) {
    Tensor got({n, m});
    backend->MatMul(a.data(), b.data(), got.data(), n, k, m);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        double want = 0.0;
        for (int64_t p = 0; p < k; ++p) {
          want += static_cast<double>(a.at(i, p)) * b.at(p, j);
        }
        EXPECT_NEAR(got.at(i, j), want, 1e-4)
            << backend->name() << " at (" << i << "," << j << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------- SpMM --

TEST(BackendParityTest, SpmmRaggedAndEmptyCsr) {
  util::Rng rng(13);
  const struct { int64_t rows, cols, d; double density; } cases[] = {
      {1, 1, 1, 1.0},    {1, 40, 8, 0.3},  {60, 40, 1, 0.1},
      {60, 40, 9, 0.15}, {200, 100, 17, 0.05},
  };
  for (const auto& c : cases) {
    CsrMatrix m = RandomCsr(c.rows, c.cols, c.density, &rng);
    Tensor x = Tensor::RandomNormal({c.cols, c.d}, &rng);
    Tensor ref({c.rows, c.d});
    FindBackend("serial")->Spmm(m, x.data(), ref.data(), c.d);
    for (const char* name : kVariants) {
      Tensor got({c.rows, c.d});
      FindBackend(name)->Spmm(m, x.data(), got.data(), c.d);
      ExpectBitIdentical(ref, got, std::string(name) + " spmm nnz=" +
                                       std::to_string(m.nnz()));
    }
  }
  // Fully empty matrix: all outputs stay zero in every backend.
  CsrMatrix empty = CsrMatrix::FromCoo(5, 4, {});
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  for (const KernelBackend* backend : AllBackends()) {
    Tensor got({5, 3});
    backend->Spmm(empty, x.data(), got.data(), 3);
    EXPECT_EQ(got.SumValue(), 0.0f) << backend->name();
  }
}

TEST(BackendParityTest, SpmmSkewedRowsCrossBinBoundaries) {
  // One pathological heavy row plus many light ones: exercises the blocked
  // backend's nnz-binned schedule with bins that split mid-matrix.
  util::Rng rng(14);
  std::vector<Coo> entries;
  int64_t rows = 900, cols = 500, d = 16;
  for (int64_t c = 0; c < cols; ++c) entries.push_back({0, c, rng.Normal()});
  for (int64_t r = 1; r < rows; ++r) {
    for (int64_t k = 0; k < 6; ++k) {
      entries.push_back({r, rng.UniformInt(0, cols - 1), rng.Normal()});
    }
  }
  CsrMatrix m = CsrMatrix::FromCoo(rows, cols, entries);
  ASSERT_GT(m.nnz() * d, kParallelSpmmMinWork) << "case too small to fan out";
  Tensor x = Tensor::RandomNormal({cols, d}, &rng);
  Tensor ref({rows, d});
  FindBackend("serial")->Spmm(m, x.data(), ref.data(), d);
  for (const char* name : kVariants) {
    Tensor got({rows, d});
    FindBackend(name)->Spmm(m, x.data(), got.data(), d);
    ExpectBitIdentical(ref, got, std::string(name) + " skewed spmm");
  }
}

// ----------------------------------------------------------- gather/scatter --

TEST(BackendParityTest, GatherRowsIncludingRepeats) {
  util::Rng rng(15);
  Tensor table = Tensor::RandomNormal({40, 24}, &rng);
  std::vector<int64_t> idx = {0, 39, 7, 7, 7, 12, 0, 39};
  for (int64_t i = 0; i < 400; ++i) idx.push_back(rng.UniformInt(0, 39));
  Tensor ref({static_cast<int64_t>(idx.size()), 24});
  FindBackend("serial")->GatherRows(table.data(), 24, idx.data(),
                                    static_cast<int64_t>(idx.size()),
                                    ref.data());
  for (const char* name : kVariants) {
    Tensor got({static_cast<int64_t>(idx.size()), 24});
    FindBackend(name)->GatherRows(table.data(), 24, idx.data(),
                                  static_cast<int64_t>(idx.size()),
                                  got.data());
    ExpectBitIdentical(ref, got, std::string(name) + " gather");
  }
}

TEST(BackendParityTest, ScatterAddRowsDuplicateDestinations) {
  // Heavy duplication: accumulation order per target row must stay
  // ascending-source-row in every backend, so sums are bit-identical.
  util::Rng rng(16);
  int64_t rows = 50, m = 33;
  std::vector<int64_t> idx;
  for (int64_t r = 0; r < 2000; ++r) {
    // Zipf-ish: low target rows collide massively.
    idx.push_back(rng.UniformInt(0, rng.UniformInt(0, rows - 1)));
  }
  Tensor src = Tensor::RandomNormal({static_cast<int64_t>(idx.size()), m},
                                    &rng);
  Tensor ref({rows, m});
  FindBackend("serial")->ScatterAddRows(ref.data(), rows, m, idx.data(),
                                        static_cast<int64_t>(idx.size()),
                                        src.data());
  for (const char* name : kVariants) {
    Tensor got({rows, m});
    FindBackend(name)->ScatterAddRows(got.data(), rows, m, idx.data(),
                                      static_cast<int64_t>(idx.size()),
                                      src.data());
    ExpectBitIdentical(ref, got, std::string(name) + " scatter-add");
  }
}

// ------------------------------------------------------- rowdot / map / zip --

TEST(BackendParityTest, RowDotAndEltwiseKernels) {
  util::Rng rng(17);
  for (int64_t n : {int64_t{1}, int64_t{7}, int64_t{500}}) {
    Tensor a = Tensor::RandomNormal({n, 65}, &rng);
    Tensor b = Tensor::RandomNormal({n, 65}, &rng);
    Tensor dot_ref({n, 1}), map_ref(a.shape()), zip_ref(a.shape());
    KernelBackend::MapFn relu = [](const float* in, float* out, int64_t len,
                                   float) {
      for (int64_t i = 0; i < len; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    };
    KernelBackend::ZipFn mul = [](const float* x, const float* y, float* out,
                                  int64_t len, float) {
      for (int64_t i = 0; i < len; ++i) out[i] = x[i] * y[i];
    };
    const KernelBackend* serial = FindBackend("serial");
    serial->RowDot(a.data(), b.data(), dot_ref.data(), n, 65);
    serial->EltwiseMap(a.data(), map_ref.data(), a.numel(), relu, 0.0f);
    serial->EltwiseZip(a.data(), b.data(), zip_ref.data(), a.numel(), mul,
                       0.0f);
    for (const char* name : kVariants) {
      const KernelBackend* backend = FindBackend(name);
      Tensor dot({n, 1}), map(a.shape()), zip(a.shape());
      backend->RowDot(a.data(), b.data(), dot.data(), n, 65);
      backend->EltwiseMap(a.data(), map.data(), a.numel(), relu, 0.0f);
      backend->EltwiseZip(a.data(), b.data(), zip.data(), a.numel(), mul,
                          0.0f);
      ExpectBitIdentical(dot_ref, dot, std::string(name) + " rowdot");
      ExpectBitIdentical(map_ref, map, std::string(name) + " map");
      ExpectBitIdentical(zip_ref, zip, std::string(name) + " zip");
    }
  }
}

TEST(BackendParityTest, ReduceSumBitIdenticalAcrossBackends) {
  util::Rng rng(18);
  // Spans multiple kReduceSumChunk chunks plus a ragged tail; the chunked
  // association is part of the contract, so doubles compare with ==.
  for (int64_t n : {int64_t{1}, kReduceSumChunk - 1, kReduceSumChunk + 1,
                    3 * kReduceSumChunk + 123}) {
    Tensor a = Tensor::RandomNormal({n}, &rng);
    double ref = FindBackend("serial")->ReduceSum(a.data(), n);
    for (const char* name : kVariants) {
      EXPECT_EQ(ref, FindBackend(name)->ReduceSum(a.data(), n))
          << name << " n=" << n;
    }
  }
}

// --------------------------------------------------------- ops-level dispatch --

TEST(BackendDispatchTest, OpsRouteThroughSelectedBackend) {
  util::Rng rng(19);
  Tensor a = Tensor::RandomNormal({30, 20}, &rng);
  Tensor b = Tensor::RandomNormal({20, 10}, &rng);
  Tensor ref, blocked;
  {
    ScopedBackend scoped("serial");
    ref = ops::MatMul(a, b);
  }
  {
    ScopedBackend scoped("blocked");
    blocked = ops::MatMul(a, b);
  }
  ExpectFloatEq(ref, blocked, "ops::MatMul dispatch");
}

// The GatherRows gradient is a ScatterAddRows with duplicate destinations;
// gradcheck it with the OpenMP backend active so the parallel (row-
// partitioned) scatter path backs a real autodiff computation.
TEST(BackendDispatchTest, GatherScatterGradCheckUnderOmpBackend) {
  ScopedBackend scoped("omp");
  util::Rng rng(20);
  ad::Var table =
      ad::Var::Param(Tensor::RandomNormal({6, 5}, &rng));
  std::vector<int64_t> idx = {0, 3, 3, 5, 0, 0, 2};
  util::Rng wrng(21);
  Tensor w = Tensor::RandomNormal({static_cast<int64_t>(idx.size()), 5},
                                  &wrng);
  auto report = ad::GradCheck(
      [&] {
        return ad::SumAll(
            ad::Mul(ad::GatherRows(table, idx), ad::Var::Constant(w)));
      },
      {table});
  EXPECT_TRUE(report.Accept(2e-2, 2e-3))
      << "rel=" << report.max_rel_err << " abs=" << report.max_abs_err
      << " at " << report.worst;
}

}  // namespace
}  // namespace tensor
}  // namespace gnmr
