// Property-based tests of the tensor algebra: algebraic identities that
// must hold for random inputs across shapes and seeds. These complement
// the example-based tests in tensor_test.cc and the finite-difference
// checks in tensor_grad_test.cc.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/sparse.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace gnmr {
namespace tensor {
namespace {

namespace top = ops;

void ExpectNear(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

class AlgebraPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

TEST_P(AlgebraPropertyTest, AddIsCommutativeAndAssociative) {
  Tensor a = Tensor::RandomNormal({5, 7}, &rng_);
  Tensor b = Tensor::RandomNormal({5, 7}, &rng_);
  Tensor c = Tensor::RandomNormal({5, 7}, &rng_);
  ExpectNear(top::Add(a, b), top::Add(b, a));
  ExpectNear(top::Add(top::Add(a, b), c), top::Add(a, top::Add(b, c)));
}

TEST_P(AlgebraPropertyTest, MulDistributesOverAdd) {
  Tensor a = Tensor::RandomNormal({4, 6}, &rng_);
  Tensor b = Tensor::RandomNormal({4, 6}, &rng_);
  Tensor c = Tensor::RandomNormal({4, 6}, &rng_);
  ExpectNear(top::Mul(a, top::Add(b, c)),
             top::Add(top::Mul(a, b), top::Mul(a, c)), 1e-3f);
}

TEST_P(AlgebraPropertyTest, MatMulAssociative) {
  Tensor a = Tensor::RandomNormal({3, 4}, &rng_);
  Tensor b = Tensor::RandomNormal({4, 5}, &rng_);
  Tensor c = Tensor::RandomNormal({5, 2}, &rng_);
  ExpectNear(top::MatMul(top::MatMul(a, b), c),
             top::MatMul(a, top::MatMul(b, c)), 1e-3f);
}

TEST_P(AlgebraPropertyTest, MatMulDistributesOverAdd) {
  Tensor a = Tensor::RandomNormal({3, 4}, &rng_);
  Tensor b = Tensor::RandomNormal({4, 5}, &rng_);
  Tensor c = Tensor::RandomNormal({4, 5}, &rng_);
  ExpectNear(top::MatMul(a, top::Add(b, c)),
             top::Add(top::MatMul(a, b), top::MatMul(a, c)), 1e-3f);
}

TEST_P(AlgebraPropertyTest, TransposeIsInvolution) {
  Tensor a = Tensor::RandomNormal({6, 3}, &rng_);
  ExpectNear(top::Transpose(top::Transpose(a)), a, 0.0f);
}

TEST_P(AlgebraPropertyTest, SoftmaxIsShiftInvariant) {
  Tensor a = Tensor::RandomNormal({5, 8}, &rng_);
  Tensor shifted = top::AddScalar(a, 42.0f);
  ExpectNear(top::SoftmaxRows(a), top::SoftmaxRows(shifted), 1e-5f);
}

TEST_P(AlgebraPropertyTest, SigmoidSymmetry) {
  // sigmoid(-x) == 1 - sigmoid(x)
  Tensor a = Tensor::RandomNormal({4, 4}, &rng_, 0.0f, 3.0f);
  Tensor lhs = top::Sigmoid(top::Neg(a));
  Tensor rhs = top::AddScalar(top::Neg(top::Sigmoid(a)), 1.0f);
  ExpectNear(lhs, rhs, 1e-5f);
}

TEST_P(AlgebraPropertyTest, ExpLogRoundTrip) {
  Tensor a = Tensor::RandomUniform({4, 5}, &rng_, 0.1f, 4.0f);
  ExpectNear(top::Exp(top::Log(a)), a, 1e-3f);
}

TEST_P(AlgebraPropertyTest, SoftplusMatchesLogOnePlusExp) {
  Tensor a = Tensor::RandomNormal({4, 4}, &rng_, 0.0f, 2.0f);
  Tensor direct = top::Softplus(a);
  Tensor naive = top::Log(top::AddScalar(top::Exp(a), 1.0f));
  ExpectNear(direct, naive, 1e-4f);
}

TEST_P(AlgebraPropertyTest, SumAxesComposeToSumAll) {
  Tensor a = Tensor::RandomNormal({7, 9}, &rng_);
  Tensor by_rows = top::SumAxis(top::SumAxis(a, 0).Reshaped({1, 9}), 1);
  EXPECT_NEAR(by_rows.at(0, 0), a.SumValue(), 1e-3f);
}

TEST_P(AlgebraPropertyTest, ReduceToShapeInvertsBroadcast) {
  // Broadcasting b up then reducing back is n * b for row vectors.
  Tensor b = Tensor::RandomNormal({1, 6}, &rng_);
  Tensor big = top::Add(Tensor({5, 6}), b);  // broadcast to [5, 6]
  Tensor reduced = top::ReduceToShape(big, {1, 6});
  ExpectNear(reduced, top::MulScalar(b, 5.0f), 1e-4f);
}

TEST_P(AlgebraPropertyTest, SpmmIsLinear) {
  std::vector<Coo> entries;
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      if (rng_.Bernoulli(0.3)) entries.push_back({i, j, rng_.Normal()});
    }
  }
  CsrMatrix m = CsrMatrix::FromCoo(8, 6, entries);
  Tensor x = Tensor::RandomNormal({6, 4}, &rng_);
  Tensor y = Tensor::RandomNormal({6, 4}, &rng_);
  // A(x + 2y) == Ax + 2Ay
  Tensor lhs = top::Spmm(m, top::Add(x, top::MulScalar(y, 2.0f)));
  Tensor rhs = top::Add(top::Spmm(m, x), top::MulScalar(top::Spmm(m, y), 2.0f));
  ExpectNear(lhs, rhs, 1e-4f);
}

TEST_P(AlgebraPropertyTest, SpmmTransposeAdjoint) {
  // <Ax, y> == <x, A^T y>  (the identity the autodiff backward relies on).
  std::vector<Coo> entries;
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      if (rng_.Bernoulli(0.4)) entries.push_back({i, j, rng_.Normal()});
    }
  }
  CsrMatrix m = CsrMatrix::FromCoo(7, 5, entries);
  Tensor x = Tensor::RandomNormal({5, 3}, &rng_);
  Tensor y = Tensor::RandomNormal({7, 3}, &rng_);
  float lhs = top::Mul(top::Spmm(m, x), y).SumValue();
  float rhs = top::Mul(x, top::Spmm(m.Transposed(), y)).SumValue();
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

TEST_P(AlgebraPropertyTest, RowDotMatchesMatMulDiagonal) {
  Tensor a = Tensor::RandomNormal({5, 4}, &rng_);
  Tensor b = Tensor::RandomNormal({5, 4}, &rng_);
  Tensor rd = top::RowDot(a, b);
  Tensor full = top::MatMul(a, top::Transpose(b));  // [5,5]
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(rd.at(i, 0), full.at(i, i), 1e-4f);
  }
}

TEST_P(AlgebraPropertyTest, GatherScatterRoundTrip) {
  Tensor table = Tensor::RandomNormal({10, 3}, &rng_);
  std::vector<int64_t> idx = {2, 7, 2, 9};
  Tensor gathered = top::GatherRows(table, idx);
  Tensor scattered({10, 3});
  top::ScatterAddRows(&scattered, idx, gathered);
  // Row 2 was gathered twice, so it accumulates to 2x.
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(scattered.at(2, c), 2.0f * table.at(2, c), 1e-5f);
    EXPECT_NEAR(scattered.at(7, c), table.at(7, c), 1e-5f);
    EXPECT_NEAR(scattered.at(0, c), 0.0f, 1e-6f);
  }
}

TEST_P(AlgebraPropertyTest, ConcatSliceRoundTripFuzz) {
  int64_t w1 = 1 + static_cast<int64_t>(rng_.UniformUint32(5));
  int64_t w2 = 1 + static_cast<int64_t>(rng_.UniformUint32(5));
  Tensor a = Tensor::RandomNormal({4, w1}, &rng_);
  Tensor b = Tensor::RandomNormal({4, w2}, &rng_);
  Tensor cat = top::ConcatCols({&a, &b});
  ExpectNear(top::SliceCols(cat, 0, w1), a, 0.0f);
  ExpectNear(top::SliceCols(cat, w1, w2), b, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace tensor
}  // namespace gnmr
