// Tests for all Table-II baselines: construction, training smoke, ranking
// sanity (every learned model must beat random ranking on learnable
// synthetic data), and model-specific behaviors.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/baselines/recommender.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/graph/negative_sampler.h"

namespace gnmr {
namespace baselines {
namespace {

struct Bench {
  data::TrainTestSplit split;
  std::vector<data::EvalCandidates> cands;
};

// Shared learnable dataset: built once for the whole test binary.
const Bench& SharedBench() {
  static const Bench* bench = [] {
    auto* b = new Bench();
    data::Dataset full =
        data::GenerateSynthetic(data::MovieLensLike(0.5, 21));
    b->split = data::LeaveLatestOut(full);
    util::Rng rng(5);
    b->cands = data::BuildEvalCandidates(b->split.train, b->split.test, 99,
                                         &rng);
    return b;
  }();
  return *bench;
}

BaselineConfig FastConfig() {
  BaselineConfig cfg;
  cfg.embedding_dim = 8;
  cfg.epochs = 16;
  cfg.learning_rate = 1e-2;
  cfg.batch_size = 512;
  cfg.hidden_dims = {16, 8};
  cfg.max_sequence_length = 6;
  return cfg;
}

// ------------------------------------------------------------ common utils ----

TEST(CommonTest, TripletEpochCoversUsersOnce) {
  const Bench& bench = SharedBench();
  auto graph = bench.split.train.BuildGraph();
  graph::NegativeSampler sampler(graph.get(),
                                 bench.split.train.target_behavior);
  util::Rng rng(3);
  auto batches = SampleTripletEpoch(*graph, sampler,
                                    bench.split.train.target_behavior, 128,
                                    /*negatives_per_positive=*/2, &rng);
  int64_t total = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 128u);
    EXPECT_EQ(b.users.size(), b.pos_items.size());
    EXPECT_EQ(b.users.size(), b.neg_items.size());
    total += static_cast<int64_t>(b.size());
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_TRUE(graph->HasEdge(b.users[i], b.pos_items[i],
                                 bench.split.train.target_behavior));
      EXPECT_FALSE(graph->HasEdge(b.users[i], b.neg_items[i],
                                  bench.split.train.target_behavior));
    }
  }
  // 2 triplets per trainable user.
  EXPECT_EQ(total % 2, 0);
  EXPECT_GT(total, 0);
}

TEST(CommonTest, PointEpochLabelsConsistent) {
  const Bench& bench = SharedBench();
  auto graph = bench.split.train.BuildGraph();
  graph::NegativeSampler sampler(graph.get(),
                                 bench.split.train.target_behavior);
  util::Rng rng(4);
  auto batches = SamplePointEpoch(*graph, sampler,
                                  bench.split.train.target_behavior, 256, 1,
                                  &rng);
  for (const auto& b : batches) {
    for (size_t i = 0; i < b.size(); ++i) {
      bool has = graph->HasEdge(b.users[i], b.items[i],
                                bench.split.train.target_behavior);
      EXPECT_EQ(b.labels[i] == 1.0f, has);
    }
  }
}

TEST(CommonTest, UserRowsMatchGraph) {
  const Bench& bench = SharedBench();
  auto graph = bench.split.train.BuildGraph();
  std::vector<int64_t> users = {0, 5};
  tensor::Tensor rows =
      UserRows(*graph, users, bench.split.train.target_behavior);
  for (size_t r = 0; r < users.size(); ++r) {
    for (int64_t j = 0; j < graph->num_items(); ++j) {
      bool has =
          graph->HasEdge(users[r], j, bench.split.train.target_behavior);
      EXPECT_EQ(rows.at(static_cast<int64_t>(r), j) == 1.0f, has);
    }
  }
}

// --------------------------------------------------------------- registry ----

TEST(RegistryTest, AllNamesConstruct) {
  for (const std::string& name : AllBaselineNames()) {
    auto model = MakeBaseline(name, FastConfig());
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
}

TEST(RegistryTest, TrivialModelsConstruct) {
  EXPECT_EQ(MakeBaseline("Random", FastConfig())->name(), "Random");
  EXPECT_EQ(MakeBaseline("MostPop", FastConfig())->name(), "MostPop");
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeBaseline("GPT-9", FastConfig()), "unknown baseline");
}

// ------------------------------------------------------------ MostPop exact ----

TEST(MostPopTest, ScoresAreTargetCounts) {
  const Bench& bench = SharedBench();
  auto model = MakeBaseline("MostPop", FastConfig());
  model->Fit(bench.split.train);
  auto graph = bench.split.train.BuildGraph();
  std::vector<int64_t> items = {0, 1, 2, 3};
  std::vector<float> scores(items.size());
  model->ScoreItems(0, items, scores.data());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(scores[i],
              static_cast<float>(graph->ItemDegree(
                  items[i], bench.split.train.target_behavior)));
  }
}

TEST(RandomTest, DeterministicAndUserDependent) {
  auto model = MakeBaseline("Random", FastConfig());
  model->Fit(SharedBench().split.train);
  std::vector<int64_t> items = {0, 1, 2};
  std::vector<float> a(3), b(3), c(3);
  model->ScoreItems(0, items, a.data());
  model->ScoreItems(0, items, b.data());
  model->ScoreItems(1, items, c.data());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ------------------------------------------------- parameterised training ----

class BaselineRankingTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineRankingTest, TrainsAndBeatsRandomRanking) {
  const Bench& bench = SharedBench();
  auto model = MakeBaseline(GetParam(), FastConfig());
  model->Fit(bench.split.train);
  eval::RankingMetrics m =
      eval::EvaluateRanking(model.get(), bench.cands, {10});
  // 99 negatives + 1 positive: random ranking yields HR@10 ~ 0.10. Every
  // learned baseline must clear it with margin; scores must be finite.
  EXPECT_GT(m.hr[10], 0.15) << GetParam() << " HR@10=" << m.hr[10];
  std::vector<int64_t> probe = {0, 1};
  std::vector<float> scores(probe.size());
  model->ScoreItems(0, probe, scores.data());
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineRankingTest,
    ::testing::Values("BiasMF", "DMF", "NCF-M", "NCF-G", "NCF-N", "AutoRec",
                      "CDAE", "NADE", "CF-UIcA", "NGCF", "NMTR", "DIPN"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------- model-specific checks ----

TEST(NmtrTest, UsesAuxiliaryBehaviors) {
  // NMTR trained with all behaviors should beat the same NMTR trained on
  // target-only data (the cascade is its whole point). Weak assertion:
  // both train, and multi-behavior version is at least comparable.
  const Bench& bench = SharedBench();
  BaselineConfig cfg = FastConfig();
  auto multi = MakeBaseline("NMTR", cfg);
  multi->Fit(bench.split.train);
  auto single = MakeBaseline("NMTR", cfg);
  single->Fit(data::OnlyTargetBehavior(bench.split.train));
  auto m_multi = eval::EvaluateRanking(multi.get(), bench.cands, {10});
  auto m_single = eval::EvaluateRanking(single.get(), bench.cands, {10});
  EXPECT_GT(m_multi.hr[10] + 0.05, m_single.hr[10]);
}

TEST(DipnTest, HandlesUsersWithShortSequences) {
  // A dataset where one user has a single event: sequences shorter than
  // max_sequence_length must not crash or produce NaN.
  data::Dataset d;
  d.name = "short-seq";
  d.num_users = 4;
  d.num_items = 30;
  d.behavior_names = {"view", "buy"};
  d.target_behavior = 1;
  for (int64_t u = 0; u < 4; ++u) {
    for (int64_t j = 0; j <= u * 2; ++j) {
      d.interactions.push_back({u, (u * 3 + j) % 30, 0, j});
    }
    d.interactions.push_back({u, u, 1, 100});
  }
  BaselineConfig cfg = FastConfig();
  cfg.epochs = 2;
  auto model = MakeBaseline("DIPN", cfg);
  model->Fit(d);
  std::vector<int64_t> items = {0, 5, 10};
  std::vector<float> scores(items.size());
  model->ScoreItems(0, items, scores.data());
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(NgcfTest, IgnoresAuxiliaryBehaviors) {
  // NGCF is a single-behavior model: training on the full dataset and on
  // target-only data must produce identical scores (it filters internally).
  const Bench& bench = SharedBench();
  BaselineConfig cfg = FastConfig();
  cfg.epochs = 2;
  auto a = MakeBaseline("NGCF", cfg);
  a->Fit(bench.split.train);
  auto b = MakeBaseline("NGCF", cfg);
  b->Fit(data::OnlyTargetBehavior(bench.split.train));
  std::vector<int64_t> items = {0, 1, 2, 3, 4};
  std::vector<float> sa(items.size()), sb(items.size());
  a->ScoreItems(3, items, sa.data());
  b->ScoreItems(3, items, sb.data());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 1e-5f);
  }
}

}  // namespace
}  // namespace baselines
}  // namespace gnmr
