// Tests for ranking metrics and the leave-one-out evaluator.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/eval/evaluator.h"
#include "src/eval/metrics.h"

namespace gnmr {
namespace eval {
namespace {

// ----------------------------------------------------------------- metrics ----

TEST(MetricsTest, HitRatioBoundary) {
  EXPECT_EQ(HitRatioAtN(0, 10), 1.0);
  EXPECT_EQ(HitRatioAtN(9, 10), 1.0);
  EXPECT_EQ(HitRatioAtN(10, 10), 0.0);
  EXPECT_EQ(HitRatioAtN(0, 1), 1.0);
  EXPECT_EQ(HitRatioAtN(1, 1), 0.0);
}

TEST(MetricsTest, NdcgValues) {
  EXPECT_NEAR(NdcgAtN(0, 10), 1.0, 1e-12);               // 1/log2(2)
  EXPECT_NEAR(NdcgAtN(1, 10), 1.0 / std::log2(3.0), 1e-12);
  EXPECT_NEAR(NdcgAtN(9, 10), 1.0 / std::log2(11.0), 1e-12);
  EXPECT_EQ(NdcgAtN(10, 10), 0.0);
}

TEST(MetricsTest, NdcgMonotonicInRank) {
  for (int64_t r = 0; r + 1 < 10; ++r) {
    EXPECT_GT(NdcgAtN(r, 10), NdcgAtN(r + 1, 10));
  }
}

TEST(MetricsTest, RankOfPositiveStrict) {
  EXPECT_EQ(RankOfPositive(5.0f, {1.0f, 2.0f, 3.0f}), 0);
  EXPECT_EQ(RankOfPositive(2.5f, {1.0f, 2.0f, 3.0f}), 1);
  EXPECT_EQ(RankOfPositive(0.0f, {1.0f, 2.0f, 3.0f}), 3);
}

TEST(MetricsTest, RankOfPositiveTiesSplit) {
  // 4 ties -> rank credit of 2.
  EXPECT_EQ(RankOfPositive(1.0f, {1.0f, 1.0f, 1.0f, 1.0f}), 2);
  // 1 greater + 2 ties -> 1 + 1 = 2.
  EXPECT_EQ(RankOfPositive(1.0f, {2.0f, 1.0f, 1.0f}), 2);
}

// --------------------------------------------------------------- evaluator ----

// Scores items by a fixed per-(user, item) table; unknown pairs get 0.
class TableScorer : public Scorer {
 public:
  void Set(int64_t user, int64_t item, float score) {
    table_[{user, item}] = score;
  }
  void ScoreItems(int64_t user, const std::vector<int64_t>& items,
                  float* out) override {
    for (size_t i = 0; i < items.size(); ++i) {
      auto it = table_.find({user, items[i]});
      out[i] = it == table_.end() ? 0.0f : it->second;
    }
  }

 private:
  std::map<std::pair<int64_t, int64_t>, float> table_;
};

std::vector<data::EvalCandidates> TwoUsers() {
  data::EvalCandidates a;
  a.user = 0;
  a.positive_item = 10;
  a.negatives = {11, 12, 13, 14};
  data::EvalCandidates b;
  b.user = 1;
  b.positive_item = 20;
  b.negatives = {21, 22, 23, 24};
  return {a, b};
}

TEST(EvaluatorTest, PerfectScorerGetsFullMarks) {
  TableScorer scorer;
  scorer.Set(0, 10, 10.0f);
  scorer.Set(1, 20, 10.0f);
  RankingMetrics m = EvaluateRanking(&scorer, TwoUsers(), {1, 5});
  EXPECT_EQ(m.num_users, 2);
  EXPECT_NEAR(m.hr[1], 1.0, 1e-12);
  EXPECT_NEAR(m.ndcg[1], 1.0, 1e-12);
  EXPECT_NEAR(m.hr[5], 1.0, 1e-12);
}

TEST(EvaluatorTest, WorstScorerGetsZeroAtSmallN) {
  TableScorer scorer;
  // Positive scored below all negatives for user 0; user 1 perfect.
  for (int64_t neg : {11, 12, 13, 14}) scorer.Set(0, neg, 5.0f);
  scorer.Set(0, 10, -1.0f);
  scorer.Set(1, 20, 10.0f);
  RankingMetrics m = EvaluateRanking(&scorer, TwoUsers(), {1, 3, 5});
  EXPECT_NEAR(m.hr[1], 0.5, 1e-12);   // only user 1 hits at 1
  EXPECT_NEAR(m.hr[3], 0.5, 1e-12);   // user 0 at rank 4
  EXPECT_NEAR(m.hr[5], 1.0, 1e-12);   // both within 5 candidates
  EXPECT_NEAR(m.ndcg[1], 0.5, 1e-12);
}

TEST(EvaluatorTest, MidRankComputedCorrectly) {
  TableScorer scorer;
  scorer.Set(0, 10, 5.0f);
  scorer.Set(0, 11, 9.0f);
  scorer.Set(0, 12, 7.0f);  // two negatives above positive -> rank 2
  scorer.Set(1, 20, 1.0f);  // all negatives at 0 -> rank 0
  RankingMetrics m = EvaluateRanking(&scorer, TwoUsers(), {3});
  EXPECT_NEAR(m.hr[3], 1.0, 1e-12);
  double expected_ndcg = (1.0 / std::log2(4.0) + 1.0) / 2.0;
  EXPECT_NEAR(m.ndcg[3], expected_ndcg, 1e-12);
}

TEST(EvaluatorTest, EmptyTestSetYieldsZeros) {
  TableScorer scorer;
  RankingMetrics m = EvaluateRanking(&scorer, {}, {10});
  EXPECT_EQ(m.num_users, 0);
  EXPECT_EQ(m.hr[10], 0.0);
}

TEST(EvaluatorTest, ParallelEvaluationIsDeterministic) {
  // The per-user loop fans out across threads under OpenMP; per-user
  // partials reduced in index order must make the result bit-identical at
  // any thread count (under serial builds this degenerates to a
  // repeatability check).
  TableScorer scorer;
  std::vector<data::EvalCandidates> tests;
  for (int64_t u = 0; u < 64; ++u) {
    data::EvalCandidates c;
    c.user = u;
    c.positive_item = 1000 + u;
    for (int64_t j = 0; j < 9; ++j) c.negatives.push_back(2000 + 9 * u + j);
    scorer.Set(u, c.positive_item, 0.1f * static_cast<float>(u % 7));
    for (int64_t j = 0; j < 9; ++j) {
      scorer.Set(u, c.negatives[static_cast<size_t>(j)],
                 0.05f * static_cast<float>((u + j) % 11));
    }
    tests.push_back(c);
  }
  const std::vector<int64_t> cutoffs = {1, 3, 5};
#ifdef _OPENMP
  int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  RankingMetrics serial = EvaluateRanking(&scorer, tests, cutoffs);
#ifdef _OPENMP
  omp_set_num_threads(saved > 1 ? saved : 4);
#endif
  RankingMetrics parallel = EvaluateRanking(&scorer, tests, cutoffs);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  ASSERT_EQ(serial.num_users, parallel.num_users);
  for (int64_t n : cutoffs) {
    EXPECT_EQ(serial.hr[n], parallel.hr[n]);      // bitwise, not NEAR
    EXPECT_EQ(serial.ndcg[n], parallel.ndcg[n]);
  }
}

TEST(EvaluatorTest, ToStringContainsAllCutoffs) {
  TableScorer scorer;
  scorer.Set(0, 10, 1.0f);
  scorer.Set(1, 20, 1.0f);
  RankingMetrics m = EvaluateRanking(&scorer, TwoUsers(), {1, 10});
  std::string s = m.ToString();
  EXPECT_NE(s.find("HR@1="), std::string::npos);
  EXPECT_NE(s.find("HR@10="), std::string::npos);
  EXPECT_NE(s.find("NDCG@10="), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace gnmr
