// Forward-op tests for the dense tensor library.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace gnmr {
namespace tensor {
namespace {

namespace top = ops;

Tensor T2(std::vector<float> v, int64_t n, int64_t m) {
  return Tensor::FromData({n, m}, std::move(v));
}

// ---------------------------------------------------------- construction ----

TEST(TensorTest, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(t.at(i, j), 0.0f);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_EQ(Tensor::Ones({3}).SumValue(), 3.0f);
  EXPECT_EQ(Tensor::Full({2, 2}, 2.5f).SumValue(), 10.0f);
  EXPECT_EQ(Tensor::Scalar(7.0f).numel(), 1);
  EXPECT_EQ(Tensor::Scalar(7.0f).at(0), 7.0f);
}

TEST(TensorTest, FromDataTakesOwnership) {
  Tensor t = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, RandomNormalStatistics) {
  util::Rng rng(5);
  Tensor t = Tensor::RandomNormal({200, 50}, &rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.MeanValue(), 1.0f, 0.05f);
}

TEST(TensorTest, RandomUniformBounds) {
  util::Rng rng(5);
  Tensor t = Tensor::RandomUniform({100, 10}, &rng, -1.0f, 1.0f);
  EXPECT_GE(t.MinValue(), -1.0f);
  EXPECT_LT(t.MaxValue(), 1.0f);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.at(0, 1), 2.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Ones({2, 2});
  Tensor c = t.Clone();
  c.at(0, 0) = 5.0f;
  EXPECT_EQ(t.at(0, 0), 1.0f);
}

TEST(TensorTest, Rank3Access) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.at(1, 2, 3), 9.0f);
  EXPECT_EQ(t.numel(), 24);
}

TEST(TensorTest, ReductionHelpers) {
  Tensor t = T2({1, -2, 3, 4}, 2, 2);
  EXPECT_EQ(t.SumValue(), 6.0f);
  EXPECT_EQ(t.MeanValue(), 1.5f);
  EXPECT_EQ(t.MaxValue(), 4.0f);
  EXPECT_EQ(t.MinValue(), -2.0f);
  EXPECT_NEAR(t.L2Norm(), std::sqrt(30.0f), 1e-5f);
}

TEST(TensorTest, HasNonFiniteDetectsNanAndInf) {
  Tensor t = Tensor::Ones({2, 2});
  EXPECT_FALSE(t.HasNonFinite());
  t.at(0, 1) = std::nanf("");
  EXPECT_TRUE(t.HasNonFinite());
  t.at(0, 1) = INFINITY;
  EXPECT_TRUE(t.HasNonFinite());
}

TEST(TensorDeathTest, ShapeViolationsAbort) {
  EXPECT_DEATH(Tensor({0, 2}), "positive");
  EXPECT_DEATH(Tensor::FromData({2, 2}, {1.0f}), "");
  Tensor t({2, 2});
  EXPECT_DEATH(t.at(2, 0), "");
}

// ----------------------------------------------------------------- views ----

TEST(TensorViewTest, FromViewReadsExternalMemory) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f});
  Tensor v = Tensor::FromView({2, 3}, backing->data(), backing);
  EXPECT_FALSE(v.owns_storage());
  EXPECT_EQ(v.numel(), 6);
  EXPECT_EQ(std::as_const(v).data(), backing->data());  // zero-copy
  EXPECT_FLOAT_EQ(std::as_const(v).at(1, 2), 6.0f);
  EXPECT_FLOAT_EQ(v.SumValue(), 21.0f);
  EXPECT_FLOAT_EQ(v.MaxValue(), 6.0f);
}

TEST(TensorViewTest, KeepaliveOutlivesEveryCopy) {
  std::weak_ptr<std::vector<float>> observer;
  Tensor copy;
  {
    auto backing =
        std::make_shared<std::vector<float>>(std::vector<float>{7.0f, 8.0f});
    observer = backing;
    Tensor v = Tensor::FromView({2}, backing->data(), backing);
    copy = v.Clone();  // O(1); shares the keepalive
  }
  // The original handle and view are gone; the copy still pins the memory.
  EXPECT_FALSE(observer.expired());
  EXPECT_FLOAT_EQ(std::as_const(copy).at(1), 8.0f);
  copy = Tensor();
  EXPECT_TRUE(observer.expired());
}

TEST(TensorViewTest, ReshapedViewSharesBuffer) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  Tensor v = Tensor::FromView({2, 2}, backing->data(), backing);
  Tensor r = v.Reshaped({4});
  EXPECT_FALSE(r.owns_storage());
  EXPECT_EQ(std::as_const(r).data(), backing->data());
  EXPECT_FLOAT_EQ(std::as_const(r).at(3), 4.0f);
}

TEST(TensorViewTest, OwnedCopyDetachesFromView) {
  auto backing =
      std::make_shared<std::vector<float>>(std::vector<float>{1.0f, 2.0f});
  Tensor v = Tensor::FromView({2}, backing->data(), backing);
  Tensor owned = v.OwnedCopy();
  EXPECT_TRUE(owned.owns_storage());
  EXPECT_NE(std::as_const(owned).data(), backing->data());
  owned.at(0) = 9.0f;  // mutable again
  EXPECT_FLOAT_EQ(std::as_const(v).at(0), 1.0f);
}

TEST(TensorViewDeathTest, MutationAborts) {
  auto backing =
      std::make_shared<std::vector<float>>(std::vector<float>{1.0f, 2.0f});
  Tensor v = Tensor::FromView({2}, backing->data(), backing);
  EXPECT_DEATH(v.Fill(0.0f), "view");
  EXPECT_DEATH(v.data(), "view");
  EXPECT_DEATH(v.at(0) = 1.0f, "view");
}

// ------------------------------------------------------------ arithmetic ----

TEST(OpsTest, AddSameShape) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  Tensor b = T2({10, 20, 30, 40}, 2, 2);
  Tensor c = top::Add(a, b);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 1), 44.0f);
}

TEST(OpsTest, SubMulDiv) {
  Tensor a = T2({4, 9, 16, 25}, 2, 2);
  Tensor b = T2({2, 3, 4, 5}, 2, 2);
  EXPECT_EQ(top::Sub(a, b).at(1, 1), 20.0f);
  EXPECT_EQ(top::Mul(a, b).at(0, 1), 27.0f);
  EXPECT_EQ(top::Div(a, b).at(1, 0), 4.0f);
}

TEST(OpsTest, BroadcastRowVector) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor row = Tensor::FromData({1, 3}, {10, 20, 30});
  Tensor c = top::Add(a, row);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 2), 36.0f);
}

TEST(OpsTest, BroadcastRank1AsRow) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor row = Tensor::FromData({3}, {10, 20, 30});
  Tensor c = top::Mul(a, row);
  EXPECT_EQ(c.at(1, 0), 40.0f);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 3}));
}

TEST(OpsTest, BroadcastColVector) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor col = Tensor::FromData({2, 1}, {10, 100});
  Tensor c = top::Mul(a, col);
  EXPECT_EQ(c.at(0, 2), 30.0f);
  EXPECT_EQ(c.at(1, 0), 400.0f);
}

TEST(OpsTest, BroadcastScalar) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  Tensor s = Tensor::Scalar(5.0f);
  EXPECT_EQ(top::Add(a, s).at(1, 1), 9.0f);
  // Scalar on the left too.
  EXPECT_EQ(top::Sub(s, a).at(0, 0), 4.0f);
}

TEST(OpsTest, ScalarHelpers) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  EXPECT_EQ(top::AddScalar(a, 1.0f).at(0, 0), 2.0f);
  EXPECT_EQ(top::MulScalar(a, -2.0f).at(1, 1), -8.0f);
  EXPECT_EQ(top::Neg(a).at(0, 1), -2.0f);
}

TEST(OpsDeathTest, IncompatibleBroadcastAborts) {
  Tensor a({2, 3});
  Tensor b({2, 4});
  EXPECT_DEATH(top::Add(a, b), "incompatible");
}

struct BroadcastCase {
  std::vector<int64_t> a, b, expected;
};

class BroadcastShapeTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastShapeTest, ShapeInference) {
  const auto& p = GetParam();
  EXPECT_EQ(top::BroadcastShapes(p.a, p.b), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastShapeTest,
    ::testing::Values(BroadcastCase{{2, 3}, {2, 3}, {2, 3}},
                      BroadcastCase{{2, 3}, {1, 3}, {2, 3}},
                      BroadcastCase{{2, 3}, {3}, {2, 3}},
                      BroadcastCase{{2, 3}, {2, 1}, {2, 3}},
                      BroadcastCase{{2, 3}, {1}, {2, 3}},
                      BroadcastCase{{1}, {5}, {5}},
                      BroadcastCase{{4, 1}, {1, 7}, {4, 7}}));

// --------------------------------------------------------- ReduceToShape ----

TEST(ReduceToShapeTest, IdentityWhenSameShape) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  Tensor r = top::ReduceToShape(a, {2, 2});
  EXPECT_EQ(r.at(1, 0), 3.0f);
}

TEST(ReduceToShapeTest, SumOverRows) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor r = top::ReduceToShape(a, {1, 3});
  EXPECT_EQ(r.at(0, 0), 5.0f);
  EXPECT_EQ(r.at(0, 2), 9.0f);
}

TEST(ReduceToShapeTest, SumOverCols) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor r = top::ReduceToShape(a, {2, 1});
  EXPECT_EQ(r.at(0, 0), 6.0f);
  EXPECT_EQ(r.at(1, 0), 15.0f);
}

TEST(ReduceToShapeTest, SumToScalar) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor r = top::ReduceToShape(a, {1});
  EXPECT_EQ(r.numel(), 1);
  EXPECT_EQ(r.at(0), 21.0f);
}

TEST(ReduceToShapeTest, Rank1ToRank1Scalar) {
  Tensor a = Tensor::FromData({4}, {1, 2, 3, 4});
  Tensor r = top::ReduceToShape(a, {1});
  EXPECT_EQ(r.at(0), 10.0f);
}

TEST(ReduceToShapeTest, ReduceToRank1Row) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor r = top::ReduceToShape(a, {3});
  EXPECT_EQ(r.rank(), 1);
  EXPECT_EQ(r.at(1), 7.0f);
}

// --------------------------------------------------------- linear algebra ----

TEST(OpsTest, MatMulMatchesManual) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor b = T2({7, 8, 9, 10, 11, 12}, 3, 2);
  Tensor c = top::MatMul(a, b);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  util::Rng rng(3);
  Tensor a = Tensor::RandomNormal({4, 4}, &rng);
  Tensor eye({4, 4});
  for (int64_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Tensor c = top::MatMul(a, eye);
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(c.at(i, j), a.at(i, j));
}

TEST(OpsDeathTest, MatMulShapeMismatchAborts) {
  EXPECT_DEATH(top::MatMul(Tensor({2, 3}), Tensor({2, 3})), "");
}

TEST(OpsTest, TransposeRoundTrip) {
  util::Rng rng(9);
  Tensor a = Tensor::RandomNormal({3, 5}, &rng);
  Tensor t = top::Transpose(a);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  Tensor tt = top::Transpose(t);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 5; ++j) EXPECT_EQ(tt.at(i, j), a.at(i, j));
}

// ------------------------------------------------------ elementwise unary ----

TEST(OpsTest, ReluClampsNegatives) {
  Tensor a = T2({-1, 0, 2, -3}, 2, 2);
  Tensor r = top::Relu(a);
  EXPECT_EQ(r.at(0, 0), 0.0f);
  EXPECT_EQ(r.at(0, 1), 0.0f);
  EXPECT_EQ(r.at(1, 0), 2.0f);
}

TEST(OpsTest, LeakyReluSlope) {
  Tensor a = T2({-10, 10, -1, 1}, 2, 2);
  Tensor r = top::LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(r.at(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(r.at(0, 1), 10.0f);
}

TEST(OpsTest, SigmoidValuesAndStability) {
  Tensor a = T2({0, 100, -100, 1}, 2, 2);
  Tensor r = top::Sigmoid(a);
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.5f);
  EXPECT_NEAR(r.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(r.at(1, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(r.at(1, 1), 0.731058f, 1e-5f);
  EXPECT_FALSE(r.HasNonFinite());
}

TEST(OpsTest, TanhExpLogSqrtSquare) {
  Tensor a = T2({1, 4, 9, 16}, 2, 2);
  EXPECT_NEAR(top::Tanh(a).at(0, 0), std::tanh(1.0f), 1e-6f);
  EXPECT_NEAR(top::Exp(a).at(0, 0), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(top::Log(a).at(0, 1), std::log(4.0f), 1e-6f);
  EXPECT_FLOAT_EQ(top::Sqrt(a).at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(top::Square(a).at(0, 1), 16.0f);
}

TEST(OpsTest, LogClampsAtEps) {
  Tensor a = T2({0, -5, 1, 2}, 2, 2);
  Tensor r = top::Log(a, 1e-6f);
  EXPECT_NEAR(r.at(0, 0), std::log(1e-6f), 1e-3f);
  EXPECT_NEAR(r.at(0, 1), std::log(1e-6f), 1e-3f);
  EXPECT_FALSE(r.HasNonFinite());
}

TEST(OpsTest, SoftplusStableForLargeInputs) {
  Tensor a = T2({-100, 100, 0, 1}, 2, 2);
  Tensor r = top::Softplus(a);
  EXPECT_NEAR(r.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(r.at(0, 1), 100.0f, 1e-4f);
  EXPECT_NEAR(r.at(1, 0), std::log(2.0f), 1e-6f);
  EXPECT_FALSE(r.HasNonFinite());
}

// ----------------------------------------------------------------- softmax ----

TEST(OpsTest, SoftmaxRowsSumToOne) {
  util::Rng rng(13);
  Tensor a = Tensor::RandomNormal({5, 7}, &rng);
  Tensor s = top::SoftmaxRows(a);
  for (int64_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      sum += s.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxMatchesManual) {
  Tensor a = T2({0, std::log(3.0f)}, 1, 2);
  Tensor s = top::SoftmaxRows(a);
  EXPECT_NEAR(s.at(0, 0), 0.25f, 1e-6f);
  EXPECT_NEAR(s.at(0, 1), 0.75f, 1e-6f);
}

TEST(OpsTest, SoftmaxStableWithLargeLogits) {
  Tensor a = T2({1000, 1001, -1000, 0}, 2, 2);
  Tensor s = top::SoftmaxRows(a);
  EXPECT_FALSE(s.HasNonFinite());
  EXPECT_NEAR(s.at(0, 0) + s.at(0, 1), 1.0f, 1e-5f);
}

TEST(OpsTest, LogSoftmaxConsistentWithSoftmax) {
  util::Rng rng(17);
  Tensor a = Tensor::RandomNormal({4, 6}, &rng);
  Tensor ls = top::LogSoftmaxRows(a);
  Tensor s = top::SoftmaxRows(a);
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 6; ++j)
      EXPECT_NEAR(std::exp(ls.at(i, j)), s.at(i, j), 1e-5f);
}

// -------------------------------------------------------------- reductions ----

TEST(OpsTest, SumAxisBoth) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor s0 = top::SumAxis(a, 0);
  EXPECT_EQ(s0.shape(), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(s0.at(0, 1), 7.0f);
  Tensor s1 = top::SumAxis(a, 1);
  EXPECT_EQ(s1.shape(), (std::vector<int64_t>{2, 1}));
  EXPECT_EQ(s1.at(1, 0), 15.0f);
}

TEST(OpsTest, MeanAxisBoth) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_FLOAT_EQ(top::MeanAxis(a, 0).at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(top::MeanAxis(a, 1).at(0, 0), 2.0f);
}

TEST(OpsTest, SumAllMeanAll) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  EXPECT_EQ(top::SumAll(a).at(0), 10.0f);
  EXPECT_EQ(top::MeanAll(a).at(0), 2.5f);
}

// ------------------------------------------------------- shape manipulation ----

TEST(OpsTest, ConcatColsAndSliceRoundTrip) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  Tensor b = T2({5, 6, 7, 8, 9, 10}, 2, 3);
  Tensor c = top::ConcatCols({&a, &b});
  EXPECT_EQ(c.cols(), 5);
  EXPECT_EQ(c.at(0, 2), 5.0f);
  EXPECT_EQ(c.at(1, 4), 10.0f);
  Tensor back = top::SliceCols(c, 2, 3);
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(back.at(i, j), b.at(i, j));
}

TEST(OpsTest, ConcatRowsAndSliceRoundTrip) {
  Tensor a = T2({1, 2}, 1, 2);
  Tensor b = T2({3, 4, 5, 6}, 2, 2);
  Tensor c = top::ConcatRows({&a, &b});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.at(2, 1), 6.0f);
  Tensor back = top::SliceRows(c, 1, 2);
  EXPECT_EQ(back.at(0, 0), 3.0f);
}

// ------------------------------------------------------------ indexed ops ----

TEST(OpsTest, GatherRowsBasic) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 3, 2);
  Tensor g = top::GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
  EXPECT_EQ(g.at(2, 0), 5.0f);
}

TEST(OpsTest, ScatterAddAccumulatesDuplicates) {
  Tensor target({3, 2});
  Tensor src = T2({1, 1, 2, 2, 4, 4}, 3, 2);
  top::ScatterAddRows(&target, {1, 1, 0}, src);
  EXPECT_EQ(target.at(1, 0), 3.0f);  // 1 + 2
  EXPECT_EQ(target.at(0, 0), 4.0f);
  EXPECT_EQ(target.at(2, 0), 0.0f);
}

TEST(OpsDeathTest, GatherOutOfRangeAborts) {
  Tensor a({2, 2});
  EXPECT_DEATH(top::GatherRows(a, {5}), "");
}

TEST(OpsTest, RowDotMatchesManual) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  Tensor b = T2({5, 6, 7, 8}, 2, 2);
  Tensor d = top::RowDot(a, b);
  EXPECT_EQ(d.at(0, 0), 17.0f);
  EXPECT_EQ(d.at(1, 0), 53.0f);
}

// A parameterised consistency sweep: (A*B)^T == B^T * A^T for random shapes.
class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulPropertyTest, TransposeIdentity) {
  auto [n, k, m] = GetParam();
  util::Rng rng(n * 100 + k * 10 + m);
  Tensor a = Tensor::RandomNormal({n, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, m}, &rng);
  Tensor left = top::Transpose(top::MatMul(a, b));
  Tensor right = top::MatMul(top::Transpose(b), top::Transpose(a));
  ASSERT_TRUE(left.SameShape(right));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulPropertyTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(7, 5, 3),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(1, 32, 8)));

}  // namespace
}  // namespace tensor
}  // namespace gnmr
